#!/usr/bin/env python3
"""CI perf gate for the simulator hot path.

Compares a fresh BENCH_sim.json (written by bench/abl_sim_speed) against the
committed baseline and fails when host throughput at any vthread count drops
more than --tolerance below the baseline. The gate exists to catch
order-of-magnitude hot-path regressions (e.g. a syscall or allocation creeping
back into charge()/mem access), not single-digit jitter — hence a generous
default tolerance and a deliberately conservative committed baseline.

Beyond the per-point baseline comparison, --scaling-anchor (default 64)
checks the high-vthread tail of the *current* run: throughput at N > anchor
vthreads must not fall below anchor-throughput / (N / anchor), i.e. the
per-sim-op cost may grow at most linearly in the thread count. A superlinear
cliff there means the ThreadSet / dispatcher scale-out regressed (e.g. a scan
over all kMaxThreads slots crept back into the per-access path).

Usage:
  check_sim_speed.py BASELINE CURRENT [--tolerance 0.25] [--key host_ops_per_sec]
                     [--scaling-anchor 64]

Exit status: 0 when every matched point is within tolerance and the scaling
check holds, 1 otherwise.
"""

import argparse
import json
import sys


def load_points(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("bench") != "abl_sim_speed":
        raise SystemExit(f"{path}: not an abl_sim_speed dump")
    return {p["vthreads"]: p for p in doc.get("points", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional drop below baseline (default 0.25)",
    )
    ap.add_argument(
        "--key",
        default="host_ops_per_sec",
        help="throughput field to compare (default host_ops_per_sec)",
    )
    ap.add_argument(
        "--scaling-anchor",
        type=int,
        default=64,
        help="vthread count anchoring the high-vthread linear-slowdown check "
        "(default 64; 0 disables)",
    )
    args = ap.parse_args()

    base = load_points(args.baseline)
    cur = load_points(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        raise SystemExit("no common vthread points between baseline and current")

    failed = []
    print(f"{'vthreads':>8} {'baseline':>14} {'current':>14} {'ratio':>7} {'floor':>7}")
    for vt in shared:
        b = float(base[vt][args.key])
        c = float(cur[vt][args.key])
        if b <= 0:
            raise SystemExit(f"baseline {args.key} at vthreads={vt} is not positive")
        ratio = c / b
        floor = 1.0 - args.tolerance
        mark = "" if ratio >= floor else "  << FAIL"
        print(f"{vt:>8} {b:>14.3e} {c:>14.3e} {ratio:>7.2f} {floor:>7.2f}{mark}")
        if ratio < floor:
            failed.append((vt, ratio))

    if failed:
        worst = min(failed, key=lambda x: x[1])
        print(
            f"\nFAIL: {len(failed)} point(s) below {1.0 - args.tolerance:.2f}x "
            f"baseline (worst: vthreads={worst[0]} at {worst[1]:.2f}x). "
            "The simulator hot path regressed; see bench/abl_sim_speed.cpp.",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: all {len(shared)} points within {args.tolerance:.0%} of baseline.")

    anchor = args.scaling_anchor
    if anchor and anchor in cur:
        anchor_tp = float(cur[anchor][args.key])
        tails = [vt for vt in sorted(cur) if vt > anchor]
        scaling_failed = []
        for vt in tails:
            c = float(cur[vt][args.key])
            # Linear-in-N per-op slowdown bound, with the same jitter
            # tolerance the baseline comparison uses.
            floor_tp = anchor_tp / (vt / anchor) * (1.0 - args.tolerance)
            mark = "" if c >= floor_tp else "  << FAIL"
            print(
                f"scaling vthreads={vt}: {c:.3e} vs linear floor "
                f"{floor_tp:.3e} (anchor {anchor} at {anchor_tp:.3e}){mark}"
            )
            if c < floor_tp:
                scaling_failed.append(vt)
        if scaling_failed:
            print(
                f"\nFAIL: per-sim-op cost grows superlinearly past "
                f"{anchor} vthreads (at {scaling_failed}); the high-vthread "
                "hot path regressed.",
                file=sys.stderr,
            )
            return 1
        if tails:
            print(f"OK: {len(tails)} high-vthread point(s) within the linear bound.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
