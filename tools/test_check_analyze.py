#!/usr/bin/env python3
"""Unit tests for the pure logic in tools/check_analyze.py (baseline diff,
site-count cross-check, fixture set equality, annotation format). Runs with
no clang and no built analyzer -- registered unconditionally as the
`check_analyze_unit` ctest so the gate's policy logic is exercised on every
tier-1 run, not only in CI's static-analysis job."""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_analyze  # noqa: E402


def finding(fid, file="src/ds/queue/ms_queue.h", line=10, message="m"):
    kind, site, subject = fid.split(":", 2)
    return {"id": fid, "kind": kind, "site": site, "subject": subject,
            "file": file, "line": line, "message": message}


class DiffFindings(unittest.TestCase):
    def test_clean(self):
        self.assertEqual(check_analyze.diff_findings([], []), ([], []))

    def test_unexpected_and_stale(self):
        unexpected, stale = check_analyze.diff_findings(
            ["a:x:1", "b:y:2"], ["b:y:2", "c:z:3"])
        self.assertEqual(unexpected, ["a:x:1"])
        self.assertEqual(stale, ["c:z:3"])

    def test_exact_match(self):
        unexpected, stale = check_analyze.diff_findings(
            ["a:x:1"], ["a:x:1"])
        self.assertEqual((unexpected, stale), ([], []))


class CompareSiteCounts(unittest.TestCase):
    def test_agreement(self):
        counts = {"src/ds/queue/ms_queue.h": 2, "src/ds/tle/tle.h": 1}
        self.assertEqual(
            check_analyze.compare_site_counts(counts, dict(counts)), [])

    def test_mismatch_reported_both_directions(self):
        out = check_analyze.compare_site_counts(
            {"src/ds/a.h": 2}, {"src/ds/a.h": 1, "src/ds/b.h": 1})
        self.assertEqual(len(out), 2)
        self.assertIn("src/ds/a.h", out[0])
        self.assertIn("src/ds/b.h", out[1])

    def test_files_outside_prefix_ignored(self):
        out = check_analyze.compare_site_counts(
            {"tools/analyze/fixtures/helper_alloc.h": 1}, {})
        self.assertEqual(out, [])


class LoadBaseline(unittest.TestCase):
    def write(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        json.dump(doc, f)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name

    def test_roundtrip(self):
        path = self.write({"version": 1, "findings": [
            {"id": "doomed-deref:queue.dequeue:next", "reason": "benign"}]})
        self.assertEqual(check_analyze.load_baseline(path),
                         ["doomed-deref:queue.dequeue:next"])

    def test_missing_reason_rejected(self):
        path = self.write({"version": 1,
                           "findings": [{"id": "a:b:c"}]})
        with self.assertRaises(RuntimeError):
            check_analyze.load_baseline(path)

    def test_bad_version_rejected(self):
        path = self.write({"version": 2, "findings": []})
        with self.assertRaises(RuntimeError):
            check_analyze.load_baseline(path)

    def test_committed_baseline_loads(self):
        committed = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                 "analyze", "baseline.json")
        ids = check_analyze.load_baseline(committed)
        self.assertEqual(ids, sorted(ids), "keep the baseline sorted")
        for fid in ids:
            self.assertEqual(len(fid.split(":")), 3, fid)


class CheckFixtures(unittest.TestCase):
    def doc(self, ids):
        return {"findings": [finding(i) for i in ids],
                "sites": [None] * 4, "site_counts": {}}

    def run_check(self, ids):
        buf = io.StringIO()
        with redirect_stdout(buf):
            ok = check_analyze.check_fixtures(self.doc(ids), gh=False)
        return ok, buf.getvalue()

    ALL_FOUR = [
        "allocation:fixture.helper_alloc:make_node",
        "blind-store:fixture.blind_store:next",
        "over-capacity:fixture.over_capacity:writes",
        "doomed-deref:fixture.doomed_deref:cur",
    ]

    def test_all_four_pass(self):
        ok, out = self.run_check(self.ALL_FOUR)
        self.assertTrue(ok, out)

    def test_missing_class_fails(self):
        ok, out = self.run_check(self.ALL_FOUR[:3])
        self.assertFalse(ok)
        self.assertIn("doomed-deref", out)

    def test_extra_class_fails(self):
        ok, out = self.run_check(
            self.ALL_FOUR + ["syscall:fixture.helper_alloc:printf"])
        self.assertFalse(ok)
        self.assertIn("EXTRA", out)


class CheckDs(unittest.TestCase):
    def test_baselined_findings_and_matching_counts_pass(self):
        doc = {"findings": [finding("doomed-deref:queue.dequeue:next")],
               "sites": [None] * 3,
               "site_counts": {"src/ds/queue/ms_queue.h": 2,
                               "src/ds/tle/tle.h": 1}}
        lint = {"site_counts": dict(doc["site_counts"])}
        buf = io.StringIO()
        with redirect_stdout(buf):
            ok = check_analyze.check_ds(
                doc, ["doomed-deref:queue.dequeue:next"], lint, gh=False)
        self.assertTrue(ok, buf.getvalue())

    def test_unexpected_finding_fails(self):
        doc = {"findings": [finding("blind-store:queue.enqueue:next")],
               "sites": [], "site_counts": {}}
        buf = io.StringIO()
        with redirect_stdout(buf):
            ok = check_analyze.check_ds(doc, [], {"site_counts": {}},
                                        gh=False)
        self.assertFalse(ok)
        self.assertIn("UNEXPECTED", buf.getvalue())

    def test_stale_baseline_warns_but_passes(self):
        doc = {"findings": [], "sites": [], "site_counts": {}}
        buf = io.StringIO()
        with redirect_stdout(buf):
            ok = check_analyze.check_ds(doc, ["a:b:c"], {"site_counts": {}},
                                        gh=False)
        self.assertTrue(ok)
        self.assertIn("stale", buf.getvalue())

    def test_count_drift_fails(self):
        doc = {"findings": [], "sites": [],
               "site_counts": {"src/ds/tle/tle.h": 1}}
        buf = io.StringIO()
        with redirect_stdout(buf):
            ok = check_analyze.check_ds(
                doc, [], {"site_counts": {"src/ds/tle/tle.h": 2}}, gh=False)
        self.assertFalse(ok)
        self.assertIn("SITE-COUNT MISMATCH", buf.getvalue())


class Annotate(unittest.TestCase):
    def test_format(self):
        line = check_analyze.annotate(
            finding("blind-store:queue.enqueue:next",
                    file="src/ds/queue/ms_queue.h", line=212,
                    message="plain store publishes next"))
        self.assertTrue(line.startswith(
            "::error file=src/ds/queue/ms_queue.h,line=212::"), line)
        self.assertIn("blind-store:queue.enqueue:next", line)


if __name__ == "__main__":
    unittest.main()
