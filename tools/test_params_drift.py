#!/usr/bin/env python3
"""Cross-language drift test for the HTM capacity parameters.

tools/htm_params.py (Python, used by pto_lint.py) and
tools/analyze/htm_params.cpp (C++, used by pto-analyze; probed here through
the always-built pto-htm-params-dump binary) both parse `struct HtmConfig`
out of src/sim/sim.h at runtime. This test fails if either parser breaks or
if the two implementations ever disagree on a single field -- the
"no duplicated constants" satellite's enforcement.

Usage: test_params_drift.py <pto-htm-params-dump binary> <path/to/sim.h>
(registered as the `htm_params_drift` ctest).
"""

import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from htm_params import FIELDS, parse_htm_params  # noqa: E402


def main(argv):
    if len(argv) != 2:
        print("usage: test_params_drift.py <dump-binary> <sim.h>",
              file=sys.stderr)
        return 2
    dump, header = argv

    py = parse_htm_params(header)

    proc = subprocess.run([dump, header], capture_output=True, text=True)
    if proc.returncode != 0:
        print("htm_params_drift: %s exited %d:\n%s"
              % (dump, proc.returncode, proc.stderr), file=sys.stderr)
        return 1
    cpp = json.loads(proc.stdout)

    ok = True
    for field in FIELDS:
        if field not in cpp:
            print("DRIFT: C++ parser emitted no %r" % field)
            ok = False
        elif cpp[field] != py[field]:
            print("DRIFT: %s: python=%d c++=%d"
                  % (field, py[field], cpp[field]))
            ok = False
    extra = set(cpp) - set(FIELDS)
    if extra:
        print("DRIFT: C++ parser emitted unknown field(s): %s"
              % ", ".join(sorted(extra)))
        ok = False

    if ok:
        print("htm_params_drift: OK -- %s"
              % ", ".join("%s=%d" % (f, py[f]) for f in FIELDS))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
