#!/usr/bin/env python3
"""Parse and render a PTO_FLIGHT flight-recorder dump (pto_flight.bin).

The dump (format documented in src/obs/flight.h, written by flight_dump at
process exit or on a fatal signal) holds the last N transaction events per
thread: prefix attempts, commits, aborts (with decoded cause), and fallback
acquisitions, each stamped with the raw TSC.

Default output: per-thread ring occupancy, per-site event counts with the
abort-cause breakdown, and a validation summary ("malformed records: K") —
CI asserts K == 0. `--timeline N` additionally prints the last N events
across all threads, merged by timestamp, with times relative to the newest
event.

Usage:
  pto_flight.py [FILE] [--timeline N]     # FILE defaults to pto_flight.bin
  pto_flight.py FILE --since 500          # only events in the last 500us
  pto_flight.py FILE --last 100 --csv     # newest 100 events as CSV
"""

import argparse
import os
import struct
import sys

MAGIC = b"PTOFLT01"
REC_SIZE = 16
EVENT_NAMES = {1: "attempt", 2: "commit", 3: "abort", 4: "fallback"}
# Mirrors htm/txcode.h TxAbort (abort event arg).
CAUSE_NAMES = {1: "conflict", 2: "capacity", 3: "explicit", 4: "duration",
               5: "spurious", 6: "other"}


class Truncated(Exception):
    pass


class Reader:
    def __init__(self, data):
        self.data = data
        self.off = 0

    def take(self, n):
        if self.off + n > len(self.data):
            raise Truncated(f"need {n} bytes at offset {self.off}, "
                            f"file has {len(self.data)}")
        b = self.data[self.off:self.off + n]
        self.off += n
        return b

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]


def parse(data):
    """Parse a dump into {tsc_hz, sites, rings}; raises Truncated/ValueError.

    Each ring is {thread, total, records}; each record is a dict with a
    `malformed` reason (None when clean). Malformed records are kept so the
    timeline still shows them, flagged.
    """
    r = Reader(data)
    if r.take(8) != MAGIC:
        raise ValueError("not a PTO_FLIGHT dump (bad magic)")
    version = r.u32()
    if version != 1:
        raise ValueError(f"unsupported dump version {version}")
    tsc_hz = r.u64()
    nsites = r.u32()
    sites = []
    for _ in range(nsites):
        ln = r.u32()
        sites.append(r.take(ln).decode("utf-8", errors="replace"))
    nrings = r.u32()
    rings = []
    for _ in range(nrings):
        thread = r.u32()
        total = r.u64()
        nrec = r.u32()
        records = []
        prev_tsc = 0
        for _ in range(nrec):
            tsc, site, event, pad, arg = struct.unpack(
                "<QHBBI", r.take(REC_SIZE))
            bad = None
            if event not in EVENT_NAMES:
                bad = f"unknown event {event}"
            elif pad != 0:
                bad = f"nonzero pad byte {pad}"
            elif site != 0xFFFF and site >= max(nsites, 1):
                bad = f"site id {site} out of range"
            elif event == 3 and arg not in CAUSE_NAMES:
                bad = f"abort cause {arg} out of range"
            # A backwards TSC within one thread is a hardware artifact
            # (core migration on a non-invariant TSC), not a parse error:
            # note it but do not count it malformed.
            warp = tsc < prev_tsc
            prev_tsc = max(prev_tsc, tsc)
            records.append({"tsc": tsc, "site": site, "event": event,
                            "arg": arg, "malformed": bad, "warp": warp})
        rings.append({"thread": thread, "total": total, "records": records})
    if r.off != len(data):
        raise Truncated(f"{len(data) - r.off} trailing bytes after last ring")
    return {"tsc_hz": tsc_hz, "sites": sites, "rings": rings}


def site_name(dump, sid):
    if sid == 0xFFFF:
        return "(overflow)"
    if sid < len(dump["sites"]):
        return dump["sites"][sid] or f"site#{sid}"
    return f"site#{sid}"


def print_summary(dump):
    hz = dump["tsc_hz"]
    print(f"tsc: {hz} ticks/s ({hz / 1e9:.3f} GHz)")
    print(f"sites: {len(dump['sites'])}, threads with rings: "
          f"{len(dump['rings'])}")
    print()
    print("per-thread rings:")
    for ring in dump["rings"]:
        kept = len(ring["records"])
        dropped = ring["total"] - kept
        print(f"  thread {ring['thread']}: {ring['total']} recorded, "
              f"{kept} kept, {dropped} overwritten")
    # site -> {event -> count}; abort causes broken out.
    per_site = {}
    for ring in dump["rings"]:
        for rec in ring["records"]:
            if rec["malformed"]:
                continue
            key = site_name(dump, rec["site"])
            ev = EVENT_NAMES[rec["event"]]
            if ev == "abort":
                ev = "abort." + CAUSE_NAMES[rec["arg"]]
            per_site.setdefault(key, {})
            per_site[key][ev] = per_site[key].get(ev, 0) + 1
    print()
    print("per-site event counts (surviving window only):")
    if not per_site:
        print("  (no records)")
    for site in sorted(per_site):
        evs = per_site[site]
        parts = ", ".join(f"{k}={evs[k]}" for k in sorted(evs))
        print(f"  {site}: {parts}")


def window_records(dump, since_us=None, last=None):
    """Merge all rings by timestamp and trim to a window.

    `since_us` keeps only events within that many microseconds of the newest
    event across all threads (inclusive at the boundary); `last` then keeps
    the newest N of those. Both default to "no trimming". Pure function of
    the parsed dump — unit-tested against a synthetic fixture.
    """
    events = []
    for ring in dump["rings"]:
        for rec in ring["records"]:
            events.append((rec["tsc"], ring["thread"], rec))
    events.sort(key=lambda e: e[0])
    if since_us is not None and events:
        hz = dump["tsc_hz"] or 10**9
        cutoff = events[-1][0] - int(since_us * hz / 1e6)
        events = [e for e in events if e[0] >= cutoff]
    if last is not None:
        events = events[len(events) - last:] if last < len(events) else events
    return events


def print_csv(dump, events, out=sys.stdout):
    out.write("rel_us,thread,site,event,cause,malformed\n")
    t_end = events[-1][0] if events else 0
    hz = dump["tsc_hz"] or 10**9
    for tsc, thread, rec in events:
        rel_us = (t_end - tsc) / hz * 1e6
        ev = EVENT_NAMES.get(rec["event"], f"ev{rec['event']}")
        cause = CAUSE_NAMES.get(rec["arg"], "") if rec["event"] == 3 else ""
        bad = rec["malformed"] or ""
        out.write(f"{rel_us:.3f},{thread},{site_name(dump, rec['site'])},"
                  f"{ev},{cause},{bad}\n")


def print_timeline(dump, n):
    events = window_records(dump, last=n)
    if not events:
        print("timeline: (no records)")
        return
    t_end = events[-1][0]
    hz = dump["tsc_hz"] or 10**9
    print(f"timeline (last {len(events)} events, time before end of trace):")
    for tsc, thread, rec in events:
        dt_us = (t_end - tsc) / hz * 1e6
        ev = EVENT_NAMES.get(rec["event"], f"ev{rec['event']}")
        detail = ""
        if rec["event"] == 3:
            detail = f" cause={CAUSE_NAMES.get(rec['arg'], rec['arg'])}"
        flag = f"  [MALFORMED: {rec['malformed']}]" if rec["malformed"] else ""
        print(f"  -{dt_us:10.1f}us  t{thread}  "
              f"{site_name(dump, rec['site'])}  {ev}{detail}{flag}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", nargs="?", default="pto_flight.bin",
                    help="flight dump (default pto_flight.bin)")
    ap.add_argument("--timeline", type=int, metavar="N", default=0,
                    help="also print the last N events across threads")
    ap.add_argument("--since", type=float, metavar="US", default=None,
                    help="restrict to events within US microseconds of the "
                         "newest event")
    ap.add_argument("--last", type=int, metavar="N", default=None,
                    help="restrict to the newest N events (after --since)")
    ap.add_argument("--csv", action="store_true",
                    help="emit the selected window as CSV instead of the "
                         "summary")
    args = ap.parse_args()

    with open(args.file, "rb") as f:
        data = f.read()
    try:
        dump = parse(data)
    except (Truncated, ValueError) as e:
        raise SystemExit(f"error: {e}")

    if args.csv:
        print_csv(dump, window_records(dump, args.since, args.last))
        return 0

    print_summary(dump)
    if args.since is not None or args.last is not None:
        n = len(window_records(dump, args.since, args.last))
        print()
        print(f"window: {n} events selected "
              f"(--since {args.since} --last {args.last})")
    if args.timeline:
        print()
        print_timeline(dump, args.timeline)

    malformed = sum(1 for ring in dump["rings"]
                    for rec in ring["records"] if rec["malformed"])
    warps = sum(1 for ring in dump["rings"]
                for rec in ring["records"] if rec["warp"])
    total = sum(len(ring["records"]) for ring in dump["rings"])
    print()
    if warps:
        print(f"note: {warps} backwards timestamps (non-invariant TSC?)")
    print(f"records parsed: {total}, malformed records: {malformed}")
    return 1 if malformed else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed early; not an error worth a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
