#!/usr/bin/env python3
"""Pretty-print PTO telemetry dumps: PTO_PROF records and PTO_STATS points.

For the profiler's end-of-run JSON record (PTO_PROF=json, optionally
redirected with PTO_PROF_OUT) it renders, per scope:

  * the top-N hot lines: cache line -> region/owner site, conflict-abort
    count, doomed cycles;
  * the site x site conflict matrix (victim rows, aggressor columns) as an
    aligned text table;
  * the per-site savings ledger: where the PTO speedup came from, by latency
    class, plus the costs paid (tx overhead, retry waste).

For PTO_STATS=json bench_point records (schema v2) it renders:

  * a throughput/latency table with the PTO_OBS percentile columns
    (p50/p90/p99/p999/max, nanoseconds) per measured point;
  * the per-cause abort breakdown (prefix_aborts buckets) with attempt,
    commit, and fallback totals.

Input may be a bare JSON object or a mixed log; every line is scanned. The
last pto_prof record wins; every bench_point record is shown.

Usage:
  pto_report.py [FILE] [--topn 10]          # FILE defaults to stdin
"""

import argparse
import json
import os
import sys


def find_record(text):
    """Return the last pto_prof record in `text` (whole-doc or per-line)."""
    try:
        doc = json.loads(text)
        if isinstance(doc, dict) and doc.get("type") == "pto_prof":
            return doc
    except ValueError:
        pass
    rec = None
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if isinstance(doc, dict) and doc.get("type") == "pto_prof":
            rec = doc
    return rec


def find_bench_points(text):
    """Return every bench_point record in `text`, in input order."""
    points = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if isinstance(doc, dict) and doc.get("type") == "bench_point":
            points.append(doc)
    return points


def table(rows, headers, align_left):
    """Render rows as an aligned text table; align_left is a per-column bool."""
    cols = [[h] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(c) for c in col) for col in cols]
    out = []
    for r in range(len(rows) + 1):
        cells = []
        for i, col in enumerate(cols):
            cells.append(col[r].ljust(widths[i]) if align_left[i] else col[r].rjust(widths[i]))
        out.append("  ".join(cells).rstrip())
        if r == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def print_hot_lines(scope, topn):
    lines = scope.get("hot_lines", [])[:topn]
    print(f"  top {min(topn, len(lines))} hot lines "
          f"(of {len(scope.get('hot_lines', []))}):")
    if not lines:
        print("    (no conflict aborts recorded)")
        return
    rows = [
        (f"0x{int(h['line']):x}", h["region"], h["owner"], h["aborts"],
         h["doomed_cycles"])
        for h in lines
    ]
    txt = table(rows, ["line", "region", "owner", "aborts", "doomed_cycles"],
                [True, False, True, False, False])
    print("    " + txt.replace("\n", "\n    "))


def print_matrix(scope):
    cells = scope.get("matrix", [])
    print("  conflict matrix (victim rows x aggressor columns, abort counts):")
    if not cells:
        print("    (no conflicts)")
        return
    victims = sorted({c["victim"] for c in cells})
    aggressors = sorted({c["aggressor"] for c in cells})
    counts = {(c["victim"], c["aggressor"]): c["count"] for c in cells}
    rows = []
    for v in victims:
        row = [v] + [counts.get((v, a), 0) or "." for a in aggressors]
        row.append(sum(counts.get((v, a), 0) for a in aggressors))
        rows.append(row)
    headers = ["victim \\ aggressor"] + aggressors + ["total"]
    txt = table(rows, headers, [True] + [False] * (len(aggressors) + 1))
    print("    " + txt.replace("\n", "\n    "))


def print_ledger(scope):
    sites = scope.get("sites", [])
    explained = [s for s in sites if s.get("fallback_count", 0) > 0
                 and s.get("fast_count", 0) > 0]
    if not sites:
        return
    print("  cycle ledger (per committed op, savings vs own fallback profile):")
    rows = []
    for s in sites:
        sv = s.get("savings", {})
        rows.append((
            s["site"], s["fast_count"], s["fallback_count"],
            f"{sv.get('fence_removed', 0):.0f}",
            f"{sv.get('second_read_collapsed', 0):.0f}",
            f"{sv.get('store_sync_removed', 0):.0f}",
            f"{sv.get('alloc_avoided', 0):.0f}",
            f"{sv.get('tx_overhead', 0):.0f}",
            f"{sv.get('retry_waste', 0):.0f}",
            f"{sv.get('explained', 0):.0f}",
        ))
    txt = table(
        rows,
        ["site", "commits", "fallbacks", "fence", "2nd_read", "store/sync",
         "alloc", "-txov", "-retry", "explained"],
        [True] + [False] * 9,
    )
    print("    " + txt.replace("\n", "\n    "))
    if not explained:
        print("    (no site has both fast and fallback populations; "
              "class savings undefined)")


ABORT_BUCKETS = ["conflict", "capacity", "explicit", "duration", "spurious",
                 "other"]


def print_bench_latency(points):
    print("bench points (latency, ns; samples from PTO_OBS histograms):")
    rows = []
    for p in points:
        lat = p.get("latency", {})
        rows.append((
            p.get("bench", "?"), p.get("series", "?"), p.get("threads", 0),
            f"{p.get('ops_per_ms', 0):.1f}", lat.get("samples", 0),
            lat.get("p50_ns", 0), lat.get("p90_ns", 0), lat.get("p99_ns", 0),
            lat.get("p999_ns", 0), lat.get("max_ns", 0),
        ))
    txt = table(rows, ["bench", "series", "threads", "ops/ms", "samples",
                       "p50", "p90", "p99", "p999", "max"],
                [True, True] + [False] * 8)
    print("  " + txt.replace("\n", "\n  "))


def print_bench_aborts(points):
    print("abort breakdown (prefix attempts, by decoded cause):")
    rows = []
    for p in points:
        ab = p.get("prefix_aborts", {})
        rows.append((
            p.get("bench", "?"), p.get("series", "?"), p.get("threads", 0),
            p.get("prefix_attempts", 0), p.get("prefix_commits", 0),
            p.get("prefix_fallbacks", 0),
        ) + tuple(ab.get(b, 0) for b in ABORT_BUCKETS))
    txt = table(rows, ["bench", "series", "threads", "attempts", "commits",
                       "fallbacks"] + ABORT_BUCKETS,
                [True, True] + [False] * 10)
    print("  " + txt.replace("\n", "\n  "))


def print_bench_points(points):
    print_bench_latency(points)
    print()
    print_bench_aborts(points)
    print()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", nargs="?", help="PTO_PROF=json dump (default stdin)")
    ap.add_argument("--topn", type=int, default=10,
                    help="hot lines to show per scope (default 10)")
    args = ap.parse_args()

    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    rec = find_record(text)
    points = find_bench_points(text)
    if rec is None and not points:
        raise SystemExit("no pto_prof or bench_point records found in input "
                         "(run with PTO_PROF=json and/or PTO_STATS=json)")

    if points:
        print_bench_points(points)
    if rec is None:
        return 0

    for scope in rec.get("scopes", []):
        empty = (not scope.get("sites") and not scope.get("matrix")
                 and not scope.get("hot_lines")
                 and not any(scope.get("unattributed", {}).values()))
        if empty:
            continue
        label = scope.get("label") or "(default scope)"
        print(f"scope: {label}")
        print_ledger(scope)
        print_hot_lines(scope, args.topn)
        print_matrix(scope)
        print()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed early; not an error worth a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
