#!/usr/bin/env python3
"""Golden-output test for pto_report.py's bench_point rendering.

Runs the report over tools/report_fixtures/bench_points.json and diffs the
output against bench_points.golden.txt byte for byte, so table layout and
column selection are pinned. Registered as a ctest (`report_golden`); rerun
with a refreshed golden after an intentional format change:

  python3 tools/pto_report.py tools/report_fixtures/bench_points.json \\
      > tools/report_fixtures/bench_points.golden.txt
"""

import difflib
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
FIXTURE = HERE / "report_fixtures" / "bench_points.json"
GOLDEN = HERE / "report_fixtures" / "bench_points.golden.txt"


def main():
    got = subprocess.run(
        [sys.executable, str(HERE / "pto_report.py"), str(FIXTURE)],
        capture_output=True, text=True, check=True).stdout
    want = GOLDEN.read_text(encoding="utf-8")
    if got == want:
        print("report_golden: OK")
        return 0
    sys.stdout.writelines(difflib.unified_diff(
        want.splitlines(keepends=True), got.splitlines(keepends=True),
        fromfile=str(GOLDEN), tofile="pto_report.py output"))
    print("report_golden: FAIL (see diff; refresh the golden if intended)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
