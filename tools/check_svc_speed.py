#!/usr/bin/env python3
"""CI perf gate for the sharded KV service.

Compares a fresh BENCH_svc.json (written by bench/svc_kv) against the
committed baseline, matching points on (series, threads), and fails when
throughput drops more than --tolerance below the baseline. Like
check_sim_speed.py this exists to catch structural regressions (a lock or
allocation creeping into the service hot path, a pinning or batching bug
serializing the shards), not single-digit jitter — the committed baseline is
deliberately conservative.

--require T:S:MIN adds an absolute floor, independent of the baseline: the
current run must contain at least one point with threads=T and shards=S whose
ops_per_sec is >= MIN. CI uses this to enforce the service's headline
acceptance number (1M ops/sec aggregate at 4 shards / 4 threads) rather than
just relative drift.

Usage:
  check_svc_speed.py BASELINE CURRENT [--tolerance 0.4]
                     [--require 4:4:1000000] ...

Exit status: 0 when every matched point is within tolerance and every
--require floor holds, 1 otherwise.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("bench") != "svc_kv":
        raise SystemExit(f"{path}: not a svc_kv dump")
    return doc


def points_by_key(doc):
    return {(p["series"], int(p["threads"])): p for p in doc.get("points", [])}


def parse_require(spec):
    try:
        t, s, m = spec.split(":")
        return int(t), int(s), float(m)
    except ValueError:
        raise SystemExit(f"bad --require spec '{spec}' (want THREADS:SHARDS:MIN)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.4,
        help="maximum allowed fractional drop below baseline (default 0.4: "
        "wall-clock service throughput on shared CI runners is noisy)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="T:S:MIN",
        help="absolute floor: current run must have a point with threads=T, "
        "shards=S and ops_per_sec >= MIN (repeatable)",
    )
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base = points_by_key(base_doc)
    cur = points_by_key(cur_doc)

    failed = []
    shared = sorted(set(base) & set(cur))
    if shared:
        print(f"{'series':>28} {'t':>3} {'baseline':>12} {'current':>12} {'ratio':>6}")
        for key in shared:
            b = float(base[key]["ops_per_sec"])
            c = float(cur[key]["ops_per_sec"])
            if b <= 0:
                raise SystemExit(f"baseline ops_per_sec at {key} is not positive")
            ratio = c / b
            floor = 1.0 - args.tolerance
            mark = "" if ratio >= floor else "  << FAIL"
            print(f"{key[0]:>28} {key[1]:>3} {b:>12.3e} {c:>12.3e} {ratio:>6.2f}{mark}")
            if ratio < floor:
                failed.append((key, ratio))
    elif base:
        # Different geometry (shards/skew env overrides) yields disjoint series
        # labels; that's a config error in the CI invocation, not a perf pass.
        raise SystemExit("no common (series, threads) points between baseline and current")

    if failed:
        worst = min(failed, key=lambda x: x[1])
        print(
            f"\nFAIL: {len(failed)} point(s) below {1.0 - args.tolerance:.2f}x "
            f"baseline (worst: {worst[0]} at {worst[1]:.2f}x). "
            "The service hot path regressed; see bench/svc_kv.cpp.",
            file=sys.stderr,
        )
        return 1
    if shared:
        print(f"\nOK: all {len(shared)} points within {args.tolerance:.0%} of baseline.")

    ok = True
    for spec in args.require:
        t, s, floor = parse_require(spec)
        best = max(
            (
                float(p["ops_per_sec"])
                for p in cur_doc.get("points", [])
                if int(p["threads"]) == t and int(p.get("shards", -1)) == s
            ),
            default=None,
        )
        if best is None:
            print(
                f"FAIL: no point with threads={t} shards={s} in current run",
                file=sys.stderr,
            )
            ok = False
        elif best < floor:
            print(
                f"FAIL: best ops_per_sec at threads={t} shards={s} is "
                f"{best:.3e}, below the required {floor:.3e}",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"require {spec}: best {best:.3e} >= {floor:.3e}  OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
