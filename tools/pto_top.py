#!/usr/bin/env python3
"""Live top-like view of a pto::metrics NDJSON stream.

Follows the stream file (the default PTO_METRICS_OUT name when no argument
is given), redrawing once per new interval: a header with the run mode and
bench point, headline rates with sparkline history, the watchdog state, and
a per-site table sorted by attempts in the latest interval.

Usage:
  pto_top.py [STREAM.ndjson] [--once] [--history N] [--interval S]

  --once       render the current end of the stream and exit (no follow);
               also the mode to use in scripts/CI.
  --history N  sparkline width in intervals (default 32)
  --interval S poll period while following, seconds (default 0.25)
"""

import argparse
import json
import os
import sys
import time

SPARKS = "▁▂▃▄▅▆▇█"  # one to full


def spark(values, width):
    vals = list(values)[-width:]
    if not vals:
        return ""
    top = max(vals)
    if top <= 0:
        return SPARKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int(v / top * (len(SPARKS) - 1) + 0.5)
        out.append(SPARKS[max(0, min(idx, len(SPARKS) - 1))])
    return "".join(out)


class View:
    def __init__(self, history):
        self.history = history
        self.meta = None
        self.last = None
        self.watch = []          # most recent watch events
        self.warnings = []
        self.flush = None
        self.commits = []        # per-interval history
        self.aborts = []
        self.fallbacks = []
        self.intervals = 0

    def feed(self, rec):
        t = rec.get("type")
        if t == "metrics_meta":
            # A new meta means the producer re-armed; start over.
            self.__init__(self.history)
            self.meta = rec
        elif t == "metrics_interval":
            self.last = rec
            self.intervals += 1
            p = rec.get("prefix", {})
            self.commits.append(p.get("commits", 0))
            self.aborts.append(p.get("aborts_total", 0))
            self.fallbacks.append(p.get("fallbacks", 0))
            del self.commits[:-self.history]
            del self.aborts[:-self.history]
            del self.fallbacks[:-self.history]
        elif t == "watch":
            self.watch.append(rec)
            del self.watch[:-5]
        elif t == "warning":
            self.warnings.append(rec)
            del self.warnings[:-5]
        elif t == "metrics_flush":
            self.flush = rec

    def span_label(self, r):
        if r.get("mode") == "sim":
            return (f"sim run {r.get('run')} "
                    f"vt [{r.get('vt0')}, {r.get('vt1')}] cyc")
        return f"wall [{r.get('t0_ms', 0):.1f}, {r.get('t1_ms', 0):.1f}] ms"

    def render(self, out=sys.stdout):
        lines = []
        if self.meta:
            lines.append(
                f"pto_top — {self.meta.get('hostname', '?')} "
                f"sha {self.meta.get('git_sha', '?')} "
                f"interval {self.meta.get('interval_ms', '?')}ms "
                f"({self.intervals} intervals)")
        r = self.last
        if r is None:
            lines.append("(no intervals yet)")
        else:
            point = r.get("bench") or "(unlabeled)"
            if r.get("series"):
                point += f"/{r['series']}"
            lines.append(f"point: {point}  threads {r.get('threads', '?')}  "
                         f"{self.span_label(r)}")
            p = r.get("prefix", {})
            w = self.history
            lines.append(f"  commits   {p.get('commits', 0):>10}  "
                         f"{spark(self.commits, w)}")
            lines.append(f"  aborts    {p.get('aborts_total', 0):>10}  "
                         f"{spark(self.aborts, w)}")
            lines.append(f"  fallbacks {p.get('fallbacks', 0):>10}  "
                         f"rate {r.get('fallback_rate', 0):.4f}  "
                         f"{spark(self.fallbacks, w)}")
            if "obs" in r:
                o = r["obs"]
                lines.append(f"  latency   p50 {o.get('p50_ns', 0)}ns  "
                             f"p99 {o.get('p99_ns', 0)}ns  "
                             f"max {o.get('max_ns', 0)}ns  "
                             f"({o.get('samples', 0)} samples)")
            if r.get("reclaim_backlog"):
                lines.append(f"  reclaim backlog {r['reclaim_backlog']}")
            sites = sorted(r.get("sites", []),
                           key=lambda s: s.get("attempts", 0), reverse=True)
            if sites:
                lines.append("  site                        attempts"
                             "   commits  fallbacks    aborts")
                for s in sites[:10]:
                    lines.append(
                        f"  {s.get('site', '?'):<26}"
                        f"{s.get('attempts', 0):>10}"
                        f"{s.get('commits', 0):>10}"
                        f"{s.get('fallbacks', 0):>11}"
                        f"{s.get('aborts_total', 0):>10}")
        for w in self.watch[-3:]:
            lines.append(f"  WATCH {w.get('rule')}: {w.get('value'):.3g} > "
                         f"{w.get('threshold'):.3g}")
        for w in self.warnings[-3:]:
            lines.append(f"  warning[{w.get('key')}]: {w.get('msg')}")
        if self.flush:
            lines.append(f"stream closed: {self.flush.get('intervals')} "
                         f"intervals, {self.flush.get('violations')} "
                         f"violations")
        out.write("\n".join(lines) + "\n")


def follow(path, view, poll_s, out=sys.stdout):
    """Tail the stream, redrawing the screen on every new record batch."""
    pos = 0
    buf = ""
    while True:
        try:
            size = os.path.getsize(path)
        except OSError:
            time.sleep(poll_s)
            continue
        if size < pos:  # truncated / rewritten: start over
            pos = 0
            buf = ""
        new = False
        if size > pos:
            with open(path) as f:
                f.seek(pos)
                buf += f.read()
                pos = f.tell()
            while "\n" in buf:
                line, buf = buf.split("\n", 1)
                if line.strip():
                    try:
                        view.feed(json.loads(line))
                        new = True
                    except json.JSONDecodeError:
                        pass  # partial write; next poll completes it
        if new:
            out.write("\x1b[2J\x1b[H")  # clear + home
            view.render(out)
            out.flush()
        if view.flush is not None:
            return
        time.sleep(poll_s)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("stream", nargs="?", default="pto_metrics.ndjson",
                    help="NDJSON stream (default pto_metrics.ndjson)")
    ap.add_argument("--once", action="store_true",
                    help="render current state and exit")
    ap.add_argument("--history", type=int, default=32, metavar="N",
                    help="sparkline width in intervals (default 32)")
    ap.add_argument("--interval", type=float, default=0.25, metavar="S",
                    help="poll period in seconds while following")
    args = ap.parse_args()

    view = View(max(1, args.history))
    if args.once:
        try:
            with open(args.stream) as f:
                for line in f:
                    if line.strip():
                        try:
                            view.feed(json.loads(line))
                        except json.JSONDecodeError:
                            pass
        except OSError as e:
            raise SystemExit(f"error: {e}")
        view.render()
        return 0
    try:
        follow(args.stream, view, max(0.01, args.interval))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
