#!/usr/bin/env python3
"""htm_params.py -- single source of truth for the HTM capacity parameters.

The simulator's best-effort HTM limits live in `struct HtmConfig` in
src/sim/sim.h. Both static tools (tools/pto_lint.py and the clang-based
tools/analyze/ pto-analyze binary, via its C++ twin of this parser in
tools/analyze/htm_params.cpp) parse that header at runtime instead of
duplicating the constants, so a capacity change in the simulator is
immediately reflected in every footprint check.

The parse is deliberately strict: if the struct or a field cannot be found,
HtmParamsError is raised and the calling tool exits with a hard error rather
than silently falling back to stale numbers. A ctest (tools/test_lint.py,
plus the htm_params_drift test when pto-analyze is built) fails if the parse
breaks or if the two language implementations ever disagree.

Usage as a script:  python3 tools/htm_params.py [path/to/sim.h]
prints the parsed parameters as JSON (the same shape pto-htm-params-dump
emits), which the drift ctest compares byte-for-byte after key sorting.
"""

import json
import os
import re
import sys

# Fields of HtmConfig the static tools consume, in declaration order.
FIELDS = ("max_write_lines", "max_read_lines", "max_duration")

STRUCT_RE = re.compile(r"struct\s+HtmConfig\s*\{")


class HtmParamsError(RuntimeError):
    pass


def default_sim_header(root=None):
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(root, "src", "sim", "sim.h")


def parse_htm_params(path=None):
    """Parse HtmConfig's default member initializers out of sim.h.

    Returns a dict {field: int}. Raises HtmParamsError when the struct, a
    field, or its integer initializer cannot be found -- never guesses.
    """
    if path is None:
        path = default_sim_header()
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise HtmParamsError("cannot read %s: %s" % (path, e))

    m = STRUCT_RE.search(text)
    if not m:
        raise HtmParamsError("struct HtmConfig not found in %s" % path)
    # Body: up to the matching close brace (HtmConfig contains no nested
    # braces today; a depth scan keeps this robust if it ever does).
    depth = 0
    start = text.index("{", m.start())
    end = -1
    for i in range(start, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                end = i
                break
    if end < 0:
        raise HtmParamsError("unterminated HtmConfig struct in %s" % path)
    body = text[start:end]

    params = {}
    for field in FIELDS:
        fm = re.search(
            r"\b%s\s*=\s*([0-9][0-9']*)\s*;" % re.escape(field), body)
        if not fm:
            raise HtmParamsError(
                "field '%s' with an integer default initializer not found "
                "in HtmConfig (%s)" % (field, path))
        params[field] = int(fm.group(1).replace("'", ""))

    if params["max_write_lines"] <= 0 or params["max_read_lines"] <= 0:
        raise HtmParamsError("HtmConfig capacities must be positive: %r"
                             % params)
    if params["max_write_lines"] > params["max_read_lines"]:
        raise HtmParamsError(
            "HtmConfig write capacity exceeds tracked read capacity: %r"
            % params)
    return params


def main(argv):
    path = argv[0] if argv else None
    try:
        params = parse_htm_params(path)
    except HtmParamsError as e:
        print("htm_params: %s" % e, file=sys.stderr)
        return 2
    json.dump(params, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
