#!/usr/bin/env python3
"""Unit test for pto_flight.py window math against a synthetic dump.

Builds a well-formed PTOFLT01 image in memory (format: src/obs/flight.h)
with a known event spacing, then checks window_records() boundary behavior:
--since inclusivity at the cutoff tick, --last trimming, their composition,
and CSV emission. Run directly or via ctest (flight_window).
"""

import io
import struct
import sys

sys.path.insert(0, __import__("os").path.dirname(__file__))
import pto_flight  # noqa: E402

MAGIC = b"PTOFLT01"
TSC_HZ = 1_000_000_000  # 1 GHz: 1 tick == 1 ns, 1000 ticks == 1 us


def build_dump():
    """Two threads, one site; events at t = 0us, 1us, ..., 9us.

    Even microseconds land on thread 0, odd on thread 1, so the merged
    timeline interleaves the rings.
    """
    out = bytearray()
    out += MAGIC
    out += struct.pack("<I", 1)        # version
    out += struct.pack("<Q", TSC_HZ)
    out += struct.pack("<I", 1)        # nsites
    name = b"synthetic.site"
    out += struct.pack("<I", len(name)) + name
    out += struct.pack("<I", 2)        # nrings
    for thread in (0, 1):
        ticks = [us * 1000 for us in range(10) if us % 2 == thread]
        out += struct.pack("<I", thread)
        out += struct.pack("<Q", len(ticks))  # total == kept (no overwrite)
        out += struct.pack("<I", len(ticks))
        for t in ticks:
            # event 2 == commit, arg unused
            out += struct.pack("<QHBBI", t, 0, 2, 0, 0)
    return bytes(out)


def check(cond, msg):
    if not cond:
        raise SystemExit(f"FAIL: {msg}")


def main():
    dump = pto_flight.parse(build_dump())
    check(len(dump["rings"]) == 2, "two rings parsed")
    check(dump["sites"] == ["synthetic.site"], "site table parsed")

    allev = pto_flight.window_records(dump)
    check(len(allev) == 10, f"no-trim keeps all 10 events, got {len(allev)}")
    check([e[0] for e in allev] == sorted(e[0] for e in allev),
          "merged window is sorted by tsc")

    # Newest event is at 9us. --since 3 keeps events with tsc >= 6000:
    # 6us, 7us, 8us, 9us — the cutoff tick itself is included.
    w = pto_flight.window_records(dump, since_us=3)
    check([e[0] for e in w] == [6000, 7000, 8000, 9000],
          f"--since 3us window, got {[e[0] for e in w]}")

    # since=0 degenerates to exactly the newest event.
    w = pto_flight.window_records(dump, since_us=0)
    check([e[0] for e in w] == [9000], "--since 0 keeps only the newest")

    w = pto_flight.window_records(dump, last=3)
    check([e[0] for e in w] == [7000, 8000, 9000], "--last 3 trims oldest")

    w = pto_flight.window_records(dump, last=99)
    check(len(w) == 10, "--last larger than the dump keeps everything")

    # Composition: --since first, then --last within the survivors.
    w = pto_flight.window_records(dump, since_us=5, last=2)
    check([e[0] for e in w] == [8000, 9000], "--since then --last compose")

    # Threads interleave in the merged view (even us -> t0, odd -> t1).
    w = pto_flight.window_records(dump, since_us=3)
    check([e[1] for e in w] == [0, 1, 0, 1], "threads interleave by tsc")

    buf = io.StringIO()
    pto_flight.print_csv(dump, pto_flight.window_records(dump, last=2),
                         out=buf)
    lines = buf.getvalue().strip().splitlines()
    check(lines[0] == "rel_us,thread,site,event,cause,malformed",
          "csv header")
    check(len(lines) == 3, "csv emits header + 2 rows")
    check(lines[2].startswith("0.000,1,synthetic.site,commit"),
          f"newest row is relative time zero, got {lines[2]}")
    check(lines[1].startswith("1.000,0,synthetic.site,commit"),
          f"older row is 1us before end, got {lines[1]}")

    print("flight window: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
