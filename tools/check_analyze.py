#!/usr/bin/env python3
"""Gate around the pto-analyze LibTooling binary (tools/analyze/).

Two modes, both driven by a configured build directory that contains
compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is on by default):

  --mode fixtures   Run the analyzer over the seeded-defect fixture TU
                    (tools/analyze/fixtures/fixtures_tu.cpp) and require the
                    (kind, site) finding set to be EXACTLY the four defect
                    classes the fixtures seed. If the analyzer stops seeing
                    one, it lost a detector; if it reports extra kinds, a
                    pass regressed into false positives. Fail either way.

  --mode ds         Run the analyzer over the pinned data-structure closure
                    TU (tools/analyze/ds_closure.cpp), restricted to src/ds,
                    and
                      * diff findings against tools/analyze/baseline.json:
                        unexpected findings are errors, stale baseline
                        entries are warnings (prune them);
                      * cross-check per-file prefix-site counts against
                        tools/pto_lint.py --json. A drifting count means one
                        of the two extractors went blind to a site.

  --expect ID       (repeatable) require these exact finding IDs to be
                    present, and treat them as baselined in ds mode. CI's
                    seeded-defect build (-DPTO_SEEDED_BUGS=ON) uses this to
                    assert blind-store:queue.enqueue:next is caught without
                    polluting the clean-tree baseline.

--gh-annotations prints GitHub workflow error annotations for unexpected
findings next to the human report. Exit: 0 clean, 1 gate failure, 2 tool
breakage. On failure the raw analyzer JSON is dumped for debugging.
"""

import argparse
import json
import os
import subprocess
import sys

FIXTURE_TU = os.path.join("tools", "analyze", "fixtures", "fixtures_tu.cpp")
DS_TU = os.path.join("tools", "analyze", "ds_closure.cpp")

# (kind, site) pairs the fixture TU seeds, one per defect class. Subjects
# (the third ID component) are deliberately not pinned here: renaming a
# helper inside a fixture should not break the gate, losing a detector must.
EXPECTED_FIXTURE_FINDINGS = {
    ("allocation", "fixture.helper_alloc"),
    ("blind-store", "fixture.blind_store"),
    ("over-capacity", "fixture.over_capacity"),
    ("doomed-deref", "fixture.doomed_deref"),
}


def run_analyzer(analyzer, build, root, tus, restrict):
    """Run pto-analyze --json over the given TUs; return the parsed doc."""
    cmd = [
        analyzer, "-p", build,
        "--sim-header", os.path.join(root, "src", "sim", "sim.h"),
        "--root", root, "--json",
    ]
    for r in restrict:
        cmd += ["--restrict", r]
    cmd += [os.path.join(root, t) for t in tus]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError("pto-analyze exited %d: %s"
                           % (proc.returncode, " ".join(cmd)))
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        sys.stderr.write(proc.stdout)
        raise RuntimeError("pto-analyze emitted unparsable JSON: %s" % e)


def run_lint(root):
    """Run tools/pto_lint.py --json over its default src/ds set."""
    cmd = [sys.executable, os.path.join(root, "tools", "pto_lint.py"),
           "--json", "--root", root]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # Violations give exit 1 but still emit the document; the lint gate
    # proper is a separate CI step -- here we only need site counts.
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise RuntimeError("pto_lint.py emitted unparsable JSON: %s" % e)


def diff_findings(actual_ids, baseline_ids):
    """Return (unexpected, stale): findings not in the baseline, and
    baseline entries the analyzer no longer reports."""
    actual = set(actual_ids)
    base = set(baseline_ids)
    return sorted(actual - base), sorted(base - actual)


def compare_site_counts(analyzer_counts, lint_counts, prefix="src/ds"):
    """Compare per-file prefix-site counts for files under `prefix`.
    Returns a list of human-readable mismatch lines (empty == agree)."""
    norm = prefix.rstrip("/") + "/"
    a = {f: n for f, n in analyzer_counts.items() if f.startswith(norm)}
    l = {f: n for f, n in lint_counts.items() if f.startswith(norm)}
    out = []
    for f in sorted(set(a) | set(l)):
        if a.get(f, 0) != l.get(f, 0):
            out.append("%s: pto-analyze saw %d prefix site(s), pto_lint.py "
                       "saw %d" % (f, a.get(f, 0), l.get(f, 0)))
    return out


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("version") != 1:
        raise RuntimeError("%s: unsupported baseline version %r"
                           % (path, doc.get("version")))
    ids = [e["id"] for e in doc.get("findings", [])]
    for e in doc.get("findings", []):
        if not e.get("reason"):
            raise RuntimeError("%s: baseline entry %r has no reason"
                               % (path, e.get("id")))
    return ids


def annotate(finding):
    """One GitHub workflow error annotation for a finding dict."""
    return ("::error file=%s,line=%d::pto-analyze [%s] %s"
            % (finding["file"], finding["line"], finding["id"],
               finding["message"]))


def check_fixtures(doc, gh):
    actual = {(f["kind"], f["site"]) for f in doc["findings"]}
    missing = EXPECTED_FIXTURE_FINDINGS - actual
    extra = actual - EXPECTED_FIXTURE_FINDINGS
    ok = True
    for kind, site in sorted(missing):
        print("MISSING: fixture defect not flagged: %s at site %s"
              % (kind, site))
        ok = False
    for kind, site in sorted(extra):
        print("EXTRA: unexpected fixture finding: %s at site %s"
              % (kind, site))
        if gh:
            for f in doc["findings"]:
                if (f["kind"], f["site"]) == (kind, site):
                    print(annotate(f))
        ok = False
    if ok:
        print("check_analyze: fixtures OK -- %d finding(s) over %d site(s), "
              "all four defect classes flagged"
              % (len(doc["findings"]), len(doc["sites"])))
    return ok


def check_ds(doc, baseline_ids, lint_doc, gh):
    ok = True
    unexpected, stale = diff_findings([f["id"] for f in doc["findings"]],
                                      baseline_ids)
    by_id = {f["id"]: f for f in doc["findings"]}
    for fid in unexpected:
        f = by_id[fid]
        print("UNEXPECTED: %s:%d: [%s] %s"
              % (f["file"], f["line"], fid, f["message"]))
        if gh:
            print(annotate(f))
        ok = False
    for fid in stale:
        print("warning: stale baseline entry (no longer reported, prune from "
              "tools/analyze/baseline.json): %s" % fid)

    mismatches = compare_site_counts(doc["site_counts"],
                                     lint_doc["site_counts"])
    for m in mismatches:
        print("SITE-COUNT MISMATCH: %s" % m)
        ok = False

    if ok:
        print("check_analyze: src/ds OK -- %d prefix site(s), %d finding(s) "
              "all baselined (%d stale), site counts agree with pto_lint.py "
              "across %d file(s)"
              % (len(doc["sites"]), len(doc["findings"]), len(stale),
                 len({f for f in doc["site_counts"]
                      if f.startswith("src/ds/")})))
    return ok


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--analyzer", required=True,
                    help="path to the built pto-analyze binary")
    ap.add_argument("--build", required=True,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--mode", choices=("fixtures", "ds"), required=True)
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (ds mode; default "
                         "tools/analyze/baseline.json)")
    ap.add_argument("--expect", action="append", default=[],
                    help="require this exact finding ID to be present "
                         "(repeatable)")
    ap.add_argument("--gh-annotations", action="store_true",
                    help="emit GitHub ::error annotations for failures")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    try:
        if args.mode == "fixtures":
            doc = run_analyzer(args.analyzer, args.build, root,
                               [FIXTURE_TU], ["tools/analyze/fixtures"])
            ok = check_fixtures(doc, args.gh_annotations)
        else:
            baseline = args.baseline or os.path.join(
                root, "tools", "analyze", "baseline.json")
            doc = run_analyzer(args.analyzer, args.build, root,
                               [DS_TU], ["src/ds"])
            lint_doc = run_lint(root)
            ok = check_ds(doc, load_baseline(baseline) + args.expect,
                          lint_doc, args.gh_annotations)
    except RuntimeError as e:
        print("check_analyze: %s" % e, file=sys.stderr)
        return 2

    have = {f["id"] for f in doc["findings"]}
    for fid in args.expect:
        if fid in have:
            print("expected finding present: %s" % fid)
        else:
            print("MISSING: expected finding not reported: %s" % fid)
            ok = False

    if not ok:
        print("---- analyzer document ----")
        json.dump(doc, sys.stdout, indent=2)
        print()
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
