#!/usr/bin/env python3
"""Validate a pto::metrics NDJSON stream (and optional Prometheus file).

Structural gate for CI: every record must parse, carry the right fields for
its type, and the stream-level invariants must hold —

  * the first record is metrics_meta (schema 1) and the last metrics_flush;
  * seq increases by exactly 1 across all records;
  * wall-mode intervals tile time: each t0_ms equals the previous t1_ms and
    t1_ms > t0_ms; sim-mode intervals are monotone in (run, vt0, vt1);
  * every counter delta is a nonnegative integer, aborts_total equals the
    sum of its per-cause breakdown, and fallback_rate lies in [0, 1];
  * obs quantiles are monotone (p50 <= p90 <= p99 <= p999 <= max);
  * metrics_flush.intervals equals the number of interval records seen and
    .violations equals the number of watch records.

Usage:
  check_metrics.py STREAM.ndjson [--prom FILE] [--min-intervals N]

Exit status: 0 clean, 1 on any violation (all violations are listed).
"""

import argparse
import json
import sys

WATCH_RULES = {"fallback_rate", "abort_storm", "reclaim_backlog"}
ABORT_CAUSES = ["conflict", "capacity", "explicit", "duration", "spurious",
                "other"]


class Checker:
    def __init__(self):
        self.errors = []

    def err(self, line_no, msg):
        self.errors.append(f"line {line_no}: {msg}")

    def expect(self, cond, line_no, msg):
        if not cond:
            self.err(line_no, msg)
        return cond


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_prefix(c, n, p):
    if not c.expect(isinstance(p, dict), n, "prefix is not an object"):
        return
    for k in ("attempts", "commits", "fallbacks", "aborts_total"):
        c.expect(is_uint(p.get(k)), n, f"prefix.{k} not a nonneg integer")
    ab = p.get("aborts")
    if c.expect(isinstance(ab, dict), n, "prefix.aborts missing"):
        for cause in ABORT_CAUSES:
            c.expect(is_uint(ab.get(cause)), n,
                     f"prefix.aborts.{cause} not a nonneg integer")
        total = sum(v for v in ab.values() if is_uint(v))
        c.expect(total == p.get("aborts_total"), n,
                 f"aborts_total {p.get('aborts_total')} != per-cause sum "
                 f"{total}")


def check_obs(c, n, o):
    for k in ("samples", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns"):
        c.expect(is_uint(o.get(k)), n, f"obs.{k} not a nonneg integer")
    q = [o.get(k, 0) for k in ("p50_ns", "p90_ns", "p99_ns", "p999_ns",
                               "max_ns")]
    if all(is_uint(v) for v in q):
        c.expect(q == sorted(q), n, f"obs quantiles not monotone: {q}")


def check_interval(c, n, r, prev_wall_t1, prev_sim):
    mode = r.get("mode")
    if not c.expect(mode in ("wall", "sim"), n, f"bad mode {mode!r}"):
        return prev_wall_t1, prev_sim
    if mode == "wall":
        t0, t1 = r.get("t0_ms"), r.get("t1_ms")
        c.expect(is_num(t0) and is_num(t1), n, "t0_ms/t1_ms not numeric")
        if is_num(t0) and is_num(t1):
            c.expect(t1 > t0 >= 0, n, f"wall interval not forward: "
                     f"[{t0}, {t1}]")
            if prev_wall_t1 is not None:
                c.expect(abs(t0 - prev_wall_t1) < 1e-9, n,
                         f"wall intervals do not tile: t0 {t0} != "
                         f"previous t1 {prev_wall_t1}")
            prev_wall_t1 = t1
    else:
        run, v0, v1 = r.get("run"), r.get("vt0"), r.get("vt1")
        c.expect(is_uint(run) and is_uint(v0) and is_uint(v1), n,
                 "run/vt0/vt1 not nonneg integers")
        if is_uint(run) and is_uint(v0) and is_uint(v1):
            c.expect(v1 >= v0, n, f"sim interval backwards: vt [{v0},{v1}]")
            prun, pv1 = prev_sim
            if prun is not None:
                c.expect(run >= prun, n, f"run id went backwards "
                         f"{prun}->{run}")
                if run == prun:
                    c.expect(v0 == pv1, n, f"sim intervals do not tile "
                             f"within run {run}: vt0 {v0} != prev vt1 {pv1}")
            prev_sim = (run, v1)
    c.expect(is_uint(r.get("threads")), n, "threads not a nonneg integer")
    check_prefix(c, n, r.get("prefix"))
    fr = r.get("fallback_rate")
    c.expect(is_num(fr) and 0.0 <= fr <= 1.0, n,
             f"fallback_rate {fr!r} outside [0, 1]")
    sites = r.get("sites")
    if c.expect(isinstance(sites, list), n, "sites not a list"):
        for s in sites:
            c.expect(isinstance(s.get("site"), str) and s["site"] != "", n,
                     "site entry without a name")
            for k in ("attempts", "commits", "fallbacks", "aborts_total"):
                c.expect(is_uint(s.get(k)), n,
                         f"site {s.get('site')!r} {k} not a nonneg integer")
    if "obs" in r:
        check_obs(c, n, r["obs"])
    if "prof" in r:
        for k, v in r["prof"].items():
            c.expect(is_uint(v), n, f"prof.{k} not a nonneg integer")
    c.expect(is_uint(r.get("reclaim_backlog", 0)) or
             isinstance(r.get("reclaim_backlog"), int), n,
             "reclaim_backlog not an integer")
    return prev_wall_t1, prev_sim


def check_stream(lines):
    c = Checker()
    records = []
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            r = json.loads(line)
        except json.JSONDecodeError as e:
            c.err(i, f"not valid JSON: {e}")
            continue
        records.append((i, r))

    if not records:
        c.err(0, "empty stream")
        return c, 0, 0

    n0, first = records[0]
    c.expect(first.get("type") == "metrics_meta", n0,
             f"first record is {first.get('type')!r}, want metrics_meta")
    c.expect(first.get("schema") == 1, n0, "meta schema != 1")
    c.expect(is_num(first.get("interval_ms")) and first["interval_ms"] > 0,
             n0, "meta interval_ms not positive")

    nl, last = records[-1]
    c.expect(last.get("type") == "metrics_flush", nl,
             f"last record is {last.get('type')!r}, want metrics_flush")

    seq = 0
    intervals = 0
    watches = 0
    prev_wall_t1 = None
    prev_sim = (None, None)
    for n, r in records[1:]:
        c.expect(r.get("schema") == 1, n, "schema != 1")
        got = r.get("seq")
        c.expect(got == seq + 1, n, f"seq {got} not contiguous (want "
                 f"{seq + 1})")
        seq = got if is_uint(got) else seq + 1
        t = r.get("type")
        if t == "metrics_interval":
            intervals += 1
            prev_wall_t1, prev_sim = check_interval(c, n, r, prev_wall_t1,
                                                    prev_sim)
        elif t == "watch":
            watches += 1
            c.expect(r.get("rule") in WATCH_RULES, n,
                     f"unknown watch rule {r.get('rule')!r}")
            c.expect(is_num(r.get("value")) and is_num(r.get("threshold")),
                     n, "watch value/threshold not numeric")
        elif t == "warning":
            c.expect(isinstance(r.get("key"), str), n, "warning without key")
            c.expect(isinstance(r.get("msg"), str), n, "warning without msg")
        elif t == "metrics_flush":
            c.expect((n, r) == records[-1], n,
                     "metrics_flush before end of stream")
            c.expect(r.get("intervals") == intervals, n,
                     f"flush.intervals {r.get('intervals')} != counted "
                     f"{intervals}")
            c.expect(r.get("violations") == watches, n,
                     f"flush.violations {r.get('violations')} != watch "
                     f"records {watches}")
        else:
            c.err(n, f"unknown record type {t!r}")
    return c, intervals, watches


def check_prom(path, c):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        c.err(0, f"prom: cannot read {path}: {e}")
        return
    families = 0
    samples = 0
    for i, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            families += 1
            continue
        if line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            c.err(i, f"prom: unparseable sample line {line!r}")
            continue
        name, value = parts
        try:
            v = float(value)
        except ValueError:
            c.err(i, f"prom: non-numeric value {value!r}")
            continue
        samples += 1
        if "_total" in name and v < 0:
            c.err(i, f"prom: negative counter {line!r}")
        if "{" in name and not name.endswith("}"):
            c.err(i, f"prom: malformed labels in {name!r}")
    if families == 0:
        c.err(0, "prom: no # TYPE families found")
    if samples == 0:
        c.err(0, "prom: no samples found")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("stream", help="NDJSON metrics stream to validate")
    ap.add_argument("--prom", metavar="FILE", default=None,
                    help="also validate a Prometheus text-exposition file")
    ap.add_argument("--min-intervals", type=int, metavar="N", default=1,
                    help="require at least N interval records (default 1)")
    args = ap.parse_args()

    with open(args.stream) as f:
        lines = f.readlines()
    c, intervals, watches = check_stream(lines)
    if intervals < args.min_intervals:
        c.err(0, f"only {intervals} interval records, want >= "
              f"{args.min_intervals}")
    if args.prom:
        check_prom(args.prom, c)

    if c.errors:
        for e in c.errors:
            print(f"check_metrics: {e}", file=sys.stderr)
        print(f"check_metrics: FAIL ({len(c.errors)} violations, "
              f"{intervals} intervals, {watches} watch events)",
              file=sys.stderr)
        return 1
    print(f"check_metrics: OK ({intervals} intervals, {watches} watch "
          f"events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
