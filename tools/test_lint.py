#!/usr/bin/env python3
"""Unit tests for tools/pto_lint.py and tools/htm_params.py.

Registered in ctest as `lint_unit` (tests/CMakeLists.txt). Covers:
  - HtmConfig parsing out of src/sim/sim.h (the single source of truth for
    HTM capacity): a parse break or a nonsense value must fail loudly;
  - the lint's values match the parser's (no drift back to constants);
  - the multi-line loop regression fixture (do-while tail phantom,
    annotations on multi-line header lines);
  - the seeded-defect fixture is still rejected with the expected kinds;
  - src/ds is clean and the per-file site counts are emitted (the CI
    static-analysis job cross-checks them against pto-analyze's).

When the PTO_PARAMS_DUMP environment variable names a built
pto-htm-params-dump binary (tools/analyze/), the C++ and python parsers are
compared field-for-field -- the drift half of the htm-params ctest.
"""

import json
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
sys.path.insert(0, HERE)

from htm_params import FIELDS, HtmParamsError, parse_htm_params  # noqa: E402


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, os.path.join(HERE, "pto_lint.py"), "--no-clang",
         "--json"] + list(args),
        capture_output=True, text=True, cwd=ROOT)
    doc = json.loads(proc.stdout) if proc.stdout.strip() else None
    return proc.returncode, doc, proc.stderr


class HtmParamsTest(unittest.TestCase):
    def test_parse_succeeds_with_sane_values(self):
        params = parse_htm_params()
        self.assertEqual(set(params), set(FIELDS))
        self.assertGreater(params["max_write_lines"], 0)
        self.assertGreaterEqual(params["max_read_lines"],
                                params["max_write_lines"])
        self.assertGreater(params["max_duration"], 0)

    def test_parse_failure_is_loud(self):
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".h") as f:
            f.write("struct HtmConfig { int unrelated = 3; };\n")
            f.flush()
            with self.assertRaises(HtmParamsError):
                parse_htm_params(f.name)
        with self.assertRaises(HtmParamsError):
            parse_htm_params("/nonexistent/sim.h")

    def test_lint_reports_parsed_params(self):
        rc, doc, _ = run_lint()
        self.assertEqual(rc, 0)
        params = parse_htm_params()
        self.assertEqual(doc["htm_params"], params)
        self.assertEqual(doc["max_write_lines"], params["max_write_lines"])
        self.assertEqual(doc["max_read_lines"], params["max_read_lines"])

    def test_no_drift_against_cpp_parser(self):
        """Compare with tools/analyze's C++ parser when it is built."""
        dump = os.environ.get("PTO_PARAMS_DUMP")
        if not dump:
            self.skipTest("PTO_PARAMS_DUMP not set (pto-analyze not built)")
        proc = subprocess.run(
            [dump, os.path.join(ROOT, "src", "sim", "sim.h")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        cpp = json.loads(proc.stdout)
        self.assertEqual(cpp, parse_htm_params())


class MultilineLoopTest(unittest.TestCase):
    FIXTURE = os.path.join(HERE, "lint_fixtures", "multiline_loops.h")

    def setUp(self):
        rc, doc, err = run_lint(self.FIXTURE)
        self.rc, self.doc, self.err = rc, doc, err
        self.assertIsNotNone(doc, err)
        self.assertEqual(len(self.doc["sites"]), 2, self.doc)

    def test_annotated_multiline_loops_are_clean(self):
        good = self.doc["sites"][0]
        self.assertEqual(good["violations"], [], good)
        # bounded(8) on the while's continuation line multiplies its body.
        self.assertGreaterEqual(good["est_write_lines"], 1)

    def test_unannotated_do_while_flagged_once_at_do_line(self):
        bad = self.doc["sites"][1]
        self.assertEqual(self.rc, 1)
        self.assertEqual(len(bad["violations"]), 1, bad)
        v = bad["violations"][0]
        self.assertEqual(v["kind"], "unbounded-loop")
        # The `do` keyword's line -- not the trailing while's. Locate it in
        # the fixture text so the assertion survives edits above it.
        with open(self.FIXTURE) as f:
            lines = f.read().splitlines()
        do_lines = [i + 1 for i, l in enumerate(lines)
                    if l.strip().startswith("do {")]
        self.assertIn(v["line"], do_lines)
        tail_lines = [i + 1 for i, l in enumerate(lines)
                      if l.strip().startswith("} while")]
        self.assertNotIn(v["line"], tail_lines)


class FixtureRejectionTest(unittest.TestCase):
    def test_bad_prefix_fixture_rejected(self):
        rc, doc, _ = run_lint(
            os.path.join(HERE, "lint_fixtures", "bad_prefix.h"))
        self.assertEqual(rc, 1)
        kinds = {v["kind"] for s in doc["sites"] for v in s["violations"]}
        self.assertLessEqual({"allocation", "raw-fence", "unbounded-loop"},
                             kinds)


class DsCleanTest(unittest.TestCase):
    def test_src_ds_clean_with_site_counts(self):
        rc, doc, err = run_lint()
        self.assertEqual(rc, 0, err)
        self.assertTrue(doc["ok"])
        self.assertGreaterEqual(len(doc["sites"]), 20)
        counts = doc["site_counts"]
        self.assertEqual(sum(counts.values()), len(doc["sites"]))
        for path in counts:
            self.assertTrue(path.startswith("src/ds/"), path)


if __name__ == "__main__":
    unittest.main(verbosity=2)
