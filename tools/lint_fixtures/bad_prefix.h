// Seeded-defect fixture for tools/pto_lint.py. NOT compiled into the build:
// this prefix body commits every HTM-safety sin the lint knows about, and CI
// asserts the lint rejects it (see .github/workflows/ci.yml). Keep the sins
// in sync with the checks if you extend the lint.
#pragma once

#include <atomic>
#include <cstdlib>

#include "core/prefix.h"

namespace pto::lint_fixture {

template <class P>
int bad_prefix_everything(std::atomic<int>& shared) {
  return prefix<P>(
      1,
      [&]() -> int {
        int* leak = new int(7);                              // allocation
        void* raw = std::malloc(64);                         // allocation
        std::atomic_thread_fence(std::memory_order_seq_cst); // raw fence
        while (shared.load(std::memory_order_relaxed) != 0) {
          // unbounded: spins on another thread's store inside the tx
        }
        shared.store(*leak, std::memory_order_relaxed);
        std::free(raw);
        delete leak;
        return 1;
      },
      [&]() -> int { return 0; });
}

}  // namespace pto::lint_fixture
