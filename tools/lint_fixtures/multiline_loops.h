// Regression fixture for tools/pto_lint.py's multi-line loop handling.
// NOT compiled into the build; consumed by tools/test_lint.py (ctest
// "lint_unit").
//
// Historical defects pinned here:
//   - a do-while's trailing `while (cond);` was re-matched as a phantom
//     standalone while loop, flagged unbounded at a line the annotation on
//     the `do` could never cover (worst with a multi-line tail condition);
//   - bounded() annotations only matched the loop keyword's line or the
//     line before it, so a header spanning several lines could not carry
//     its annotation on any later header line.
//
// Site 1 (good_multiline) must lint clean; site 2 (bad_do_while) must
// produce exactly one unbounded-loop violation, attributed to the `do`
// keyword's line, not to the trailing while's.
#pragma once

#include <atomic>

#include "core/prefix.h"

namespace pto::lint_fixture {

template <class P>
int good_multiline(std::atomic<int>& a, std::atomic<int>& b) {
  return prefix<P>(
      1,
      [&]() -> int {
        int sum = 0;
        // Annotation on the line before a do loop whose tail condition
        // spans two lines; the tail must not become a phantom while.
        // pto-lint: bounded(two half-words; each iteration clears one)
        do {
          sum += a.load(std::memory_order_relaxed);
        } while (a.load(std::memory_order_relaxed) != 0 &&
                 b.load(std::memory_order_relaxed) != 0);
        // Annotation on a continuation line of a multi-line while header.
        while (a.load(std::memory_order_relaxed) +
               b.load(std::memory_order_relaxed) >  // pto-lint: bounded(8)
               0) {
          sum -= 1;
        }
        // for(;;) needs an annotation; header spans three lines and the
        // annotation sits on the line before the keyword.
        // pto-lint: bounded(4 retries; i advances every iteration)
        for (int i = 0;
             ;
             ++i) {
          if (i >= 4) break;
          sum += i;
        }
        b.store(sum, std::memory_order_relaxed);
        return sum;
      },
      [&]() -> int { return 0; });
}

template <class P>
int bad_do_while(std::atomic<int>& a) {
  return prefix<P>(
      1,
      [&]() -> int {
        int sum = 0;
        do {
          sum += a.load(std::memory_order_relaxed);
        } while (a.load(std::memory_order_relaxed) != 0 &&
                 sum < 100);
        return sum;
      },
      [&]() -> int { return 0; });
}

}  // namespace pto::lint_fixture
