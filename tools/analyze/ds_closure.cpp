// Translation unit that instantiates every shipped data structure with the
// simulator platform, compiled unconditionally into the (never-run) static
// closure library.
//
// pto-analyze works from build/compile_commands.json, and templates only
// show up in an AST where some TU instantiates them. The regular test
// binaries do instantiate everything, but which TU instantiates what is an
// accident of test layout; this file pins a single, stable TU whose job is
// to materialize all `prefix<P>(...)` fast/fallback bodies under
// SimPlatform so the analyzer (and the CI static-analysis gate) sees every
// site regardless of how the test suite evolves. Adding a data structure?
// Add its header and explicit instantiation here, or the analyzer's
// site-count cross-check against pto_lint.py will fail the build.
#include "ds/bst/ellen_bst.h"
#include "ds/hashtable/fset_hash.h"
#include "ds/list/harris_list.h"
#include "ds/mindicator/mindicator.h"
#include "ds/mound/mound.h"
#include "ds/ptoset/pto_array_set.h"
#include "ds/queue/ms_queue.h"
#include "ds/skiplist/skiplist.h"
#include "ds/skiplist/skipqueue.h"
#include "ds/tle/tle.h"
#include "platform/sim_platform.h"

namespace {

// TLE<P, Seq>::execute is a member template; explicit class instantiation
// below does not materialize it. One concrete call pins its prefix site
// (tle.execute) into this TU's AST. Never executed.
[[maybe_unused]] bool materialize_tle_execute(
    pto::TLE<pto::SimPlatform, pto::SeqHashSet<pto::SimPlatform>>& t) {
  return t.execute(
      [](pto::SeqHashSet<pto::SimPlatform>& s) { return s.insert(1); });
}

}  // namespace

template class pto::EllenBST<pto::SimPlatform>;
template class pto::FSetHash<pto::SimPlatform>;
template class pto::HarrisList<pto::SimPlatform>;
template class pto::Mindicator<pto::SimPlatform>;
template class pto::Mound<pto::SimPlatform>;
template class pto::PTOArraySet<pto::SimPlatform>;
template class pto::MSQueue<pto::SimPlatform>;
template class pto::SkipList<pto::SimPlatform>;
template class pto::SkipQueue<pto::SimPlatform>;
template class pto::SeqHashSet<pto::SimPlatform>;
