#include "htm_params.h"

#include <cstddef>
#include <fstream>
#include <regex>
#include <sstream>

namespace pto::analyze {

namespace {

std::uint64_t parse_field(const std::string& body, const std::string& field,
                          const std::string& path) {
  // `field = 123;` or `field = 200'000;` (digit separators allowed).
  std::regex re("\\b" + field + "\\s*=\\s*([0-9][0-9']*)\\s*;");
  std::smatch m;
  if (!std::regex_search(body, m, re)) {
    throw HtmParamsError("field '" + field +
                         "' with an integer default initializer not found "
                         "in HtmConfig (" + path + ")");
  }
  std::uint64_t v = 0;
  for (char c : m[1].str()) {
    if (c == '\'') continue;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

HtmParams parse_htm_params(const std::string& sim_header_path) {
  std::ifstream in(sim_header_path);
  if (!in) {
    throw HtmParamsError("cannot read " + sim_header_path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::regex struct_re("struct\\s+HtmConfig\\s*\\{");
  std::smatch sm;
  if (!std::regex_search(text, sm, struct_re)) {
    throw HtmParamsError("struct HtmConfig not found in " + sim_header_path);
  }
  // Body: up to the matching close brace (depth scan, matching the python
  // parser's tolerance for nested braces).
  std::size_t start = text.find('{', static_cast<std::size_t>(sm.position()));
  int depth = 0;
  std::size_t end = std::string::npos;
  for (std::size_t i = start; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      if (--depth == 0) {
        end = i;
        break;
      }
    }
  }
  if (end == std::string::npos) {
    throw HtmParamsError("unterminated HtmConfig struct in " +
                         sim_header_path);
  }
  const std::string body = text.substr(start, end - start);

  HtmParams p;
  p.max_write_lines = parse_field(body, "max_write_lines", sim_header_path);
  p.max_read_lines = parse_field(body, "max_read_lines", sim_header_path);
  p.max_duration = parse_field(body, "max_duration", sim_header_path);

  if (p.max_write_lines == 0 || p.max_read_lines == 0) {
    throw HtmParamsError("HtmConfig capacities must be positive");
  }
  if (p.max_write_lines > p.max_read_lines) {
    throw HtmParamsError(
        "HtmConfig write capacity exceeds tracked read capacity");
  }
  return p;
}

std::string to_json(const HtmParams& p) {
  std::ostringstream os;
  os << "{\n"
     << "  \"max_duration\": " << p.max_duration << ",\n"
     << "  \"max_read_lines\": " << p.max_read_lines << ",\n"
     << "  \"max_write_lines\": " << p.max_write_lines << "\n"
     << "}";
  return os.str();
}

}  // namespace pto::analyze
