// HtmParams: the C++ twin of tools/htm_params.py.
//
// Both pto-analyze and pto_lint.py check static footprint estimates against
// the simulator's HTM capacity. Those limits live in exactly one place --
// `struct HtmConfig` in src/sim/sim.h -- and every consumer parses that
// header at runtime. A parse failure is a hard error (HtmParamsError), never
// a silent fallback to stale constants; the `htm_params_drift` ctest runs
// both parsers over the header and fails on any disagreement.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace pto::analyze {

struct HtmParams {
  std::uint64_t max_write_lines = 0;
  std::uint64_t max_read_lines = 0;
  std::uint64_t max_duration = 0;
};

class HtmParamsError : public std::runtime_error {
 public:
  explicit HtmParamsError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parse HtmConfig's default member initializers out of `sim_header_path`
/// (normally <repo>/src/sim/sim.h). Throws HtmParamsError when the struct,
/// a field, or its integer initializer cannot be found, or when the values
/// are nonsensical (non-positive, write capacity above read capacity) --
/// mirroring tools/htm_params.py field-for-field.
HtmParams parse_htm_params(const std::string& sim_header_path);

/// The parameters as a JSON object with sorted keys, matching the shape
/// `python3 tools/htm_params.py` prints (the drift test compares the two).
std::string to_json(const HtmParams& p);

}  // namespace pto::analyze
