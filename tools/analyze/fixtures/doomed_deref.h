// pto-analyze seeded-defect fixture: DOOMED POINTER DEREFERENCED WITHOUT
// REVALIDATION.
//
// Inside a best-effort transaction a pointer loaded from shared state stays
// self-consistent -- any racing writer aborts us. The hazard is the
// *fallback-shaped* idiom in a fast body under SoftHTM's lazy conflict
// detection, and in the slow path proper: after a SECOND shared load, the
// first pointer may belong to a node that was unlinked (and, without safe
// reclamation, freed) between the two loads. Dereferencing it afterwards
// without re-checking it against the structure is a use-after-free window.
// find_tail() below loads `head_`, then loads `version_` (a second shared
// location), then walks `cur->next` -- with no revalidation between the
// staleness point and the dereference. The legal pattern re-loads or
// re-checks the pointer (see src/ds/queue/ms_queue.h dequeue, whose one
// intentional instance is carried in tools/analyze/baseline.json with a
// written rationale).
//
// Expected finding: kind=doomed-deref, site=fixture.doomed_deref,
// subject=cur.
#pragma once

#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "telemetry/registry.h"

namespace pto::analyze_fixture {

template <class P>
class DoomedWalkList {
 public:
  struct Node {
    std::int64_t key;
    Atom<P, Node*> next;
  };

  std::int64_t tail_key() {
    return prefix<P>(
        1,
        [&]() -> std::int64_t { return find_tail(); },
        [&]() -> std::int64_t { return find_tail(); },
        PTO_TELEMETRY_SITE("fixture.doomed_deref"));
  }

 private:
  std::int64_t find_tail() {
    Node* cur = head_.load(std::memory_order_acquire);
    if (cur == nullptr) return -1;
    // A second shared load: after this, `cur` may point at an unlinked
    // node. DEFECT: it is dereferenced below without revalidation.
    std::uint64_t v = version_.load(std::memory_order_acquire);
    // pto-lint: bounded(traversal)
    while (cur->next.load(std::memory_order_acquire) != nullptr) {
      cur = cur->next.load(std::memory_order_acquire);
    }
    return cur->key + static_cast<std::int64_t>(v & 1);
  }

  Atom<P, Node*> head_;
  Atom<P, std::uint64_t> version_;
};

}  // namespace pto::analyze_fixture
