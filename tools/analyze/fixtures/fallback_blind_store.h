// pto-analyze seeded-defect fixture: FALLBACK PUBLISHES WITH A BLIND STORE.
//
// The fast body links a new node transactionally -- inside the transaction
// plain stores are atomic, so `tail->next.store(n)` is correct there. The
// paired lock-free fallback must publish the same location with a CAS (two
// fallback enqueues racing in the load/store window would otherwise both
// see next == nullptr and the second blind store silently drops the first
// thread's node). This clones the PR 5 seeded MSQueue defect that schedule
// exploration finds dynamically; pto-analyze's fast/fallback write-set
// consistency check must catch it statically: field `next` is written
// transactionally in the fast body and blind-stored through a shared-loaded
// pointer in the fallback.
//
// Expected finding: kind=blind-store, site=fixture.blind_store,
// subject=next.
#pragma once

#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "telemetry/registry.h"

namespace pto::analyze_fixture {

template <class P>
class BlindStoreQueue {
 public:
  struct Node {
    std::int64_t value;
    Atom<P, Node*> next;
  };

  void enqueue(Node* n) {
    bool done = prefix<P>(
        1,
        [&]() -> bool {
          Node* tail = tail_.load(std::memory_order_relaxed);
          if (tail->next.load(std::memory_order_relaxed) != nullptr) {
            P::template tx_abort<TX_CODE_HELPING>();
          }
          tail->next.store(n, std::memory_order_relaxed);  // tx: fine
          tail_.store(n);
          return true;
        },
        [&]() -> bool { return false; },
        PTO_TELEMETRY_SITE("fixture.blind_store"));
    if (!done) enqueue_fallback(n);
  }

 private:
  void enqueue_fallback(Node* n) {
    for (;;) {
      Node* tail = tail_.load();
      Node* next = tail->next.load();
      if (next != nullptr) {
        Node* expect = tail;
        tail_.compare_exchange_strong(expect, next);
        continue;
      }
      // DEFECT: the link must be a compare_exchange_strong(nullptr, n);
      // a blind store races with a concurrent fallback enqueue.
      tail->next.store(n);
      Node* expect = tail;
      tail_.compare_exchange_strong(expect, n);
      return;
    }
  }

  Atom<P, Node*> tail_;
};

}  // namespace pto::analyze_fixture
