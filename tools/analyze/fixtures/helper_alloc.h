// pto-analyze seeded-defect fixture: ALLOCATION REACHED THROUGH A HELPER.
//
// The fast body itself is spotless -- every line pto_lint.py can see is
// legal. The sin is one call deep: grow_chain() allocates with P::make,
// which a hardware abort cannot unwind (the tx's stores roll back, the
// allocator's host-level bookkeeping does not). Only the interprocedural
// call-graph closure of the fast body can catch this; the token-level lint
// is blind past the lambda's braces, which is exactly why this fixture
// exists (ctest `analyze_fixtures` asserts pto-analyze flags it).
//
// Expected finding: kind=allocation, site=fixture.helper_alloc,
// subject=grow_chain (the helper on the path to the allocation).
#pragma once

#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "telemetry/registry.h"

namespace pto::analyze_fixture {

template <class P>
class HelperAllocSet {
 public:
  struct Node {
    std::int64_t key;
    Atom<P, Node*> next;
  };

  bool insert(std::int64_t key) {
    return prefix<P>(
        1,
        [&]() -> bool {
          Node* head = head_.load(std::memory_order_relaxed);
          if (head != nullptr && head->key == key) return false;
          grow_chain(key, head);  // <- allocates, one call deep
          return true;
        },
        [&]() -> bool { return insert_lf(key); },
        PTO_TELEMETRY_SITE("fixture.helper_alloc"));
  }

 private:
  void grow_chain(std::int64_t key, Node* head) {
    Node* n = P::template make<Node>();  // allocation inside the fast path
    n->key = key;
    n->next.init(head);
    head_.store(n, std::memory_order_relaxed);
  }

  bool insert_lf(std::int64_t key) {
    Node* n = P::template make<Node>();
    n->key = key;
    for (;;) {
      Node* head = head_.load();
      n->next.init(head);
      Node* expect = head;
      if (head_.compare_exchange_strong(expect, n)) return true;
    }
  }

  Atom<P, Node*> head_;
};

}  // namespace pto::analyze_fixture
