// pto-analyze seeded-defect fixture: BOUNDED LOOP THAT OVERFLOWS THE HTM
// WRITE SET.
//
// The loop is annotated and literally bounded, so pto_lint.py's unbounded-
// loop check is satisfied -- but the *bound itself* is the bug: 128
// iterations, each dirtying a distinct cache line through touch_slot(),
// against HtmConfig::max_write_lines = 64 (parsed from src/sim/sim.h at
// analyzer runtime, never hard-coded). Every attempt of this transaction
// aborts with TX_ABORT_CAPACITY and the structure silently degenerates to
// its fallback. pto-analyze's footprint pass multiplies the literal trip
// count by the lines written per iteration (interprocedurally, through the
// helper) and flags the product.
//
// Expected finding: kind=over-capacity, site=fixture.over_capacity,
// subject=writes.
#pragma once

#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "telemetry/registry.h"

namespace pto::analyze_fixture {

template <class P>
class WideClearTable {
 public:
  static constexpr int kSlots = 128;  // 128 distinct lines > 64-line HTM cap

  struct Slot {
    Atom<P, std::int64_t> value;
    char pad[56];  // one slot per cache line
  };

  void clear_all() {
    prefix<P>(
        1,
        [&]() -> bool {
          // pto-lint: bounded(128)
          for (int i = 0; i < kSlots; ++i) {
            touch_slot(i);  // one store, one fresh cache line, per iteration
          }
          return true;
        },
        [&]() -> bool { return clear_lf(); },
        PTO_TELEMETRY_SITE("fixture.over_capacity"));
  }

 private:
  void touch_slot(int i) { slots_[i].value.store(0); }

  bool clear_lf() {
    for (int i = 0; i < kSlots; ++i) {
      slots_[i].value.store(0);
    }
    return true;
  }

  Slot slots_[kSlots];
};

}  // namespace pto::analyze_fixture
