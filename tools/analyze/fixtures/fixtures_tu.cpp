// Translation unit that instantiates every seeded-defect fixture with the
// simulator platform. It is compiled unconditionally (plain g++/clang++, no
// LibTooling needed) for two reasons:
//   1. it keeps the fixtures honest -- they must stay real, compiling C++
//      against the live prefix/platform API, not pseudo-code;
//   2. it lands in build/compile_commands.json, which is how pto-analyze
//      finds and analyzes the fixtures (the `analyze_fixtures` ctest runs
//      the analyzer over exactly this TU and asserts all four defect
//      classes are reported).
// Nothing here ever executes; the explicit instantiation definitions exist
// only so the template bodies are materialized in the AST.
#include "fixtures/doomed_deref.h"
#include "fixtures/fallback_blind_store.h"
#include "fixtures/helper_alloc.h"
#include "fixtures/over_capacity_loop.h"
#include "platform/sim_platform.h"

template class pto::analyze_fixture::HelperAllocSet<pto::SimPlatform>;
template class pto::analyze_fixture::BlindStoreQueue<pto::SimPlatform>;
template class pto::analyze_fixture::WideClearTable<pto::SimPlatform>;
template class pto::analyze_fixture::DoomedWalkList<pto::SimPlatform>;
