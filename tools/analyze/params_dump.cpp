// pto-htm-params-dump: print the HTM capacity parameters parsed from
// src/sim/sim.h as JSON. Built unconditionally (no clang dependency) so the
// `htm_params_drift` ctest can compare this parser against
// tools/htm_params.py even on hosts where pto-analyze itself cannot build.
#include <cstdio>
#include <string>

#include "htm_params.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s path/to/sim.h\n", argv[0]);
    return 2;
  }
  try {
    const auto params = pto::analyze::parse_htm_params(argv[1]);
    std::printf("%s\n", pto::analyze::to_json(params).c_str());
  } catch (const pto::analyze::HtmParamsError& e) {
    std::fprintf(stderr, "pto-htm-params-dump: %s\n", e.what());
    return 2;
  }
  return 0;
}
