// pto-analyze: interprocedural HTM-safety and fast/fallback-consistency
// analyzer for prefix transactions (the clang LibTooling successor to the
// token-level tools/pto_lint.py; both stay -- the lint is the no-clang
// fallback and the two tools' per-file site counts are cross-checked in CI).
//
// Driven by a build's compile_commands.json (-p <builddir>), it locates
// every `pto::prefix<P>(policy, fast, slow, stats)` call site in the
// requested TUs and runs four passes (DESIGN.md section 12):
//
//   1. HTM-safety      walk the call-graph closure of the fast body and
//                      reject allocation, syscalls/IO, raw fences, and
//                      unannotated unbounded loops, whitelisting the
//                      tx-aware platform/sim/htm layers.
//   2. Footprint       lower-bound read/write cache-line estimate across
//                      calls (literal and `pto-lint: bounded(N)` trip
//                      counts multiply), checked against HtmConfig parsed
//                      from src/sim/sim.h at runtime -- never duplicated
//                      constants.
//   3. Fast/fallback   a location written transactionally in the fast body
//      write-set       but published with a plain/blind store through a
//                      shared-loaded pointer in the paired fallback closure
//                      is flagged (the seeded MSQueue defect class).
//   4. Doomed pointer  a pointer loaded from shared state in the fast body
//                      and field-dereferenced after a later, unrelated
//                      shared load without reassignment is flagged (in a
//                      doomed transaction the pointee may be recycled).
//
// Findings carry stable human-readable IDs `<kind>:<site>:<subject>` so the
// checked-in baseline (tools/analyze/baseline.json) can be reviewed and
// even authored by hand. Suppressions:
//   // pto-analyze: allow(kind, ...)   within 8 lines above the prefix call
//   // pto-analyze: revalidated        on (or right above) a flagged deref
//
// Output: --json for the machine document consumed by tools/check_analyze.py
// (sites, per-file site counts, findings), default text mode for humans
// (exit 1 when any finding survives suppression; --json always exits 0 and
// leaves policy to the gate).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/Stmt.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Lex/Lexer.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/Error.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

#include "htm_params.h"

using namespace clang;

namespace {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

llvm::cl::OptionCategory PtoCat("pto-analyze options");

llvm::cl::opt<bool> OptJson("json",
                            llvm::cl::desc("emit machine-readable JSON"),
                            llvm::cl::cat(PtoCat));

llvm::cl::opt<std::string> OptSimHeader(
    "sim-header",
    llvm::cl::desc("path to src/sim/sim.h (HtmConfig capacity source)"),
    llvm::cl::Required, llvm::cl::cat(PtoCat));

llvm::cl::list<std::string> OptRestrict(
    "restrict",
    llvm::cl::desc("only report sites whose repo-relative file path starts "
                   "with this prefix (repeatable)"),
    llvm::cl::ZeroOrMore, llvm::cl::cat(PtoCat));

llvm::cl::opt<std::string> OptRoot(
    "root",
    llvm::cl::desc("repository root for relative paths (default: three "
                   "levels above --sim-header)"),
    llvm::cl::cat(PtoCat));

// ---------------------------------------------------------------------------
// Findings and sites (accumulated across every analyzed TU)
// ---------------------------------------------------------------------------

struct Finding {
  std::string kind;     // allocation | syscall | raw-fence | unbounded-loop |
                        // over-capacity | blind-store | doomed-deref
  std::string site;     // telemetry site name (or file:line fallback)
  std::string subject;  // helper / field / variable the finding is about
  std::string file;     // repo-relative path of the *finding* location
  unsigned line = 0;
  std::string message;

  std::string id() const { return kind + ":" + site + ":" + subject; }
};

struct SiteRec {
  std::string file;  // repo-relative
  unsigned line = 0;
  std::string name;
};

std::string g_root;                       // absolute repo root, '/'-ended
std::map<std::string, SiteRec> g_sites;   // "file:line" -> site
std::map<std::string, Finding> g_findings;  // id -> finding (dedup)
pto::analyze::HtmParams g_params;

std::string relPath(llvm::StringRef abs) {
  llvm::SmallString<256> s(abs);
  if (!llvm::sys::path::is_absolute(s)) llvm::sys::fs::make_absolute(s);
  llvm::sys::path::remove_dots(s, /*remove_dot_dot=*/true);
  std::string p(s.str());
  if (!g_root.empty() && p.rfind(g_root, 0) == 0) p = p.substr(g_root.size());
  return p;
}

std::string jsonEscape(const std::string& s) {
  std::string o;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      o += '\\';
      o += c;
    } else if (c == '\n') {
      o += "\\n";
    } else {
      o += c;
    }
  }
  return o;
}

// ---------------------------------------------------------------------------
// Source-line annotation lookup (pto-lint / pto-analyze comment directives)
// ---------------------------------------------------------------------------

class SourceLines {
 public:
  explicit SourceLines(const SourceManager& sm) : sm_(sm) {}

  // 1-indexed line text; empty when out of range or unreadable.
  llvm::StringRef line(FileID fid, unsigned ln) {
    auto& lines = cache(fid);
    if (ln == 0 || ln > lines.size()) return {};
    return lines[ln - 1];
  }

  bool anyLineContains(FileID fid, unsigned lo, unsigned hi,
                       llvm::StringRef needle) {
    for (unsigned ln = lo; ln <= hi; ++ln) {
      if (line(fid, ln).contains(needle)) return true;
    }
    return false;
  }

  // `// pto-lint: bounded(EXPR)` on any line in [lo, hi]; returns the
  // annotation text or empty. Numeric EXPR doubles as a trip count.
  std::string boundedAnnotation(FileID fid, unsigned lo, unsigned hi) {
    for (unsigned ln = lo; ln <= hi; ++ln) {
      llvm::StringRef l = line(fid, ln);
      size_t at = l.find("pto-lint: bounded(");
      if (at == llvm::StringRef::npos) continue;
      llvm::StringRef rest = l.substr(at + strlen("pto-lint: bounded("));
      size_t close = rest.find(')');
      // A multi-line annotation comment may not close on this line; the
      // directive still counts, with the visible prefix as its text.
      return std::string(close == llvm::StringRef::npos ? rest
                                                        : rest.take_front(close));
    }
    return {};
  }

  // `// pto-analyze: allow(a, b)` in [lo, hi] listing `kind`.
  bool allows(FileID fid, unsigned lo, unsigned hi, llvm::StringRef kind) {
    for (unsigned ln = lo; ln <= hi; ++ln) {
      llvm::StringRef l = line(fid, ln);
      size_t at = l.find("pto-analyze: allow(");
      if (at == llvm::StringRef::npos) continue;
      llvm::StringRef rest = l.substr(at + strlen("pto-analyze: allow("));
      size_t close = rest.find(')');
      if (close != llvm::StringRef::npos) rest = rest.take_front(close);
      llvm::SmallVector<llvm::StringRef, 4> kinds;
      rest.split(kinds, ',', -1, /*KeepEmpty=*/false);
      for (llvm::StringRef k : kinds) {
        if (k.trim() == kind) return true;
      }
    }
    return false;
  }

 private:
  llvm::SmallVector<llvm::StringRef, 0>& cache(FileID fid) {
    auto it = lines_.find(fid);
    if (it != lines_.end()) return it->second;
    auto& v = lines_[fid];
    bool invalid = false;
    llvm::StringRef buf = sm_.getBufferData(fid, &invalid);
    if (!invalid) buf.split(v, '\n');
    return v;
  }

  const SourceManager& sm_;
  std::map<FileID, llvm::SmallVector<llvm::StringRef, 0>> lines_;
};

// ---------------------------------------------------------------------------
// Small AST helpers
// ---------------------------------------------------------------------------

const LambdaExpr* findLambda(const Stmt* s) {
  if (s == nullptr) return nullptr;
  if (const auto* l = dyn_cast<LambdaExpr>(s)) return l;
  for (const Stmt* c : s->children()) {
    if (const LambdaExpr* l = findLambda(c)) return l;
  }
  return nullptr;
}

const StringLiteral* findStringLiteral(const Stmt* s) {
  if (s == nullptr) return nullptr;
  if (const auto* sl = dyn_cast<StringLiteral>(s)) return sl;
  for (const Stmt* c : s->children()) {
    if (const StringLiteral* sl = findStringLiteral(c)) return sl;
  }
  return nullptr;
}

bool isAtomicMemberCall(const CXXMemberCallExpr* mc) {
  const CXXRecordDecl* rd = mc->getRecordDecl();
  return rd != nullptr && rd->getName() == "atomic";
}

enum class AtomicOp { kNone, kLoad, kStore, kInit, kCas, kRmw };

AtomicOp atomicOpOf(const CXXMemberCallExpr* mc) {
  if (!isAtomicMemberCall(mc)) return AtomicOp::kNone;
  const CXXMethodDecl* md = mc->getMethodDecl();
  if (md == nullptr) return AtomicOp::kNone;
  llvm::StringRef n = md->getName();
  if (n == "load") return AtomicOp::kLoad;
  if (n == "store") return AtomicOp::kStore;
  if (n == "init") return AtomicOp::kInit;
  if (n.startswith("compare_exchange")) return AtomicOp::kCas;
  if (n.startswith("fetch_") || n == "exchange") return AtomicOp::kRmw;
  return AtomicOp::kNone;
}

bool subtreeContainsAtomicLoad(const Stmt* s) {
  if (s == nullptr) return false;
  if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
    if (atomicOpOf(mc) == AtomicOp::kLoad) return true;
  }
  for (const Stmt* c : s->children()) {
    if (subtreeContainsAtomicLoad(c)) return true;
  }
  return false;
}

// `e` is an atomic load itself, at most cast/paren-wrapped. Wrapper *calls*
// (`ptr(hw)`, `block_of(w)`) deliberately do not count: the wrapped value has
// already been laundered through arithmetic and tracking it would flood the
// doomed-pointer and blind-store passes with mask/tag idioms.
bool isDirectAtomicLoad(const Expr* e) {
  if (e == nullptr) return false;
  const Expr* inner = e->IgnoreParenCasts();
  const auto* mc = dyn_cast<CXXMemberCallExpr>(inner);
  return mc != nullptr && atomicOpOf(mc) == AtomicOp::kLoad;
}

// The implicit-object argument expression of a member call (`x->next` in
// `x->next.store(v)`), with implicit nodes stripped.
const Expr* memberCallBase(const CXXMemberCallExpr* mc) {
  const Expr* e = mc->getImplicitObjectArgument();
  return e == nullptr ? nullptr : e->IgnoreParenImpCasts();
}

std::string sourceText(const Stmt* s, const SourceManager& sm,
                       const LangOptions& lo) {
  if (s == nullptr) return {};
  CharSourceRange r = sm.getExpansionRange(s->getSourceRange());
  return Lexer::getSourceText(r, sm, lo).str();
}

bool mentionsName(const std::string& text, llvm::StringRef name) {
  // Identifier-boundary search, so `p` is not found inside `pupdate`.
  size_t at = 0;
  auto isIdent = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  while ((at = text.find(name.str(), at)) != std::string::npos) {
    bool lok = at == 0 || !isIdent(text[at - 1]);
    size_t end = at + name.size();
    bool rok = end >= text.size() || !isIdent(text[end]);
    if (lok && rok) return true;
    at = end;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Callee classification (whitelist policy -- DESIGN.md section 12)
// ---------------------------------------------------------------------------

enum class CalleeClass {
  kAllocation,
  kSyscall,
  kRawFence,
  kWhitelisted,  // tx-aware platform/sim/htm layers, std::, builtins
  kRecurse,      // user code with a visible body: walk into it
  kOpaque,       // no body and not classified: skipped (conservative quiet)
};

bool startsWithAny(llvm::StringRef s, std::initializer_list<const char*> ps) {
  for (const char* p : ps) {
    if (s.startswith(p)) return true;
  }
  return false;
}

CalleeClass classifyCallee(const FunctionDecl* fd) {
  std::string qn = fd->getQualifiedNameAsString();
  llvm::StringRef name = fd->getDeclName().isIdentifier()
                             ? fd->getName()
                             : llvm::StringRef(qn);

  // Allocation wins over everything: the platform layer is tx-aware, but
  // its allocator entry points still must not run inside a transaction.
  if (fd->getOverloadedOperator() == OO_New ||
      fd->getOverloadedOperator() == OO_Array_New ||
      fd->getOverloadedOperator() == OO_Delete ||
      fd->getOverloadedOperator() == OO_Array_Delete) {
    return CalleeClass::kAllocation;
  }
  static const char* kAllocNames[] = {"malloc",        "calloc",
                                      "realloc",       "free",
                                      "aligned_alloc", "posix_memalign",
                                      "strdup"};
  for (const char* a : kAllocNames) {
    if (name == a) return CalleeClass::kAllocation;
  }
  if (qn.rfind("pto::", 0) == 0 &&
      (name == "make" || name == "destroy" || name == "alloc_bytes" ||
       name == "free_bytes")) {
    return CalleeClass::kAllocation;
  }

  // Raw fences abort (RTM) or corrupt (sim) the transaction; P::fence() is
  // the tx-aware spelling and lands in the whitelist below.
  static const char* kFenceNames[] = {"atomic_thread_fence",
                                      "atomic_signal_fence",
                                      "__sync_synchronize", "_mm_mfence",
                                      "_mm_sfence", "_mm_lfence"};
  for (const char* f : kFenceNames) {
    if (name == f || qn == std::string("std::") + f) {
      return CalleeClass::kRawFence;
    }
  }

  // Kernel entries and stdio: any syscall aborts the transaction.
  static const char* kIoNames[] = {
      "printf", "fprintf", "vfprintf", "puts",  "fputs",  "putchar",
      "fwrite", "fread",   "fopen",    "fclose", "fflush", "open",
      "close",  "read",    "write",    "ioctl", "mmap",   "munmap",
      "usleep", "sleep",   "nanosleep", "sched_yield"};
  for (const char* io : kIoNames) {
    if (name == io) return CalleeClass::kSyscall;
  }
  if (qn.find("basic_ostream") != std::string::npos ||
      qn.find("basic_istream") != std::string::npos ||
      qn.rfind("std::this_thread", 0) == 0 ||
      qn.rfind("std::mutex", 0) == 0 ||
      qn.rfind("std::condition_variable", 0) == 0 ||
      qn.rfind("pthread_", 0) == 0) {
    return CalleeClass::kSyscall;
  }

  // The tx-aware layers: the simulator and HTM runtimes participate in the
  // transaction protocol by construction, telemetry interning is outside
  // the measured path, and platform statics (pause, fence, rnd, tx_*) are
  // the sanctioned in-tx primitives. `assert` only fires on an invariant
  // violation that already dooms the run. std:: and builtins: value-only
  // helpers (optional, min, tuple, ...) -- their allocating/IO entry points
  // were classified above, before this catch-all.
  if (startsWithAny(qn, {"pto::sim::", "pto::htm", "pto::softhtm",
                         "pto::telemetry", "pto::SimPlatform",
                         "pto::NativePlatform", "pto::prefix",
                         "pto::PrefixPolicy", "pto::StatsHandle"}) ||
      name == "__assert_fail" || name == "assert" ||
      fd->getBuiltinID() != 0 || qn.rfind("std::", 0) == 0 ||
      qn.rfind("__gnu_cxx::", 0) == 0 || name.startswith("__builtin")) {
    return CalleeClass::kWhitelisted;
  }

  const FunctionDecl* def = fd->getDefinition();
  if (def != nullptr && def->hasBody()) return CalleeClass::kRecurse;
  return CalleeClass::kOpaque;
}

// ---------------------------------------------------------------------------
// Loop utilities
// ---------------------------------------------------------------------------

bool condHasComparison(const Stmt* s) {
  if (s == nullptr) return false;
  if (const auto* bo = dyn_cast<BinaryOperator>(s)) {
    if (bo->isComparisonOp()) return true;
  }
  if (const auto* oc = dyn_cast<CXXOperatorCallExpr>(s)) {
    switch (oc->getOperator()) {
      case OO_Less:
      case OO_LessEqual:
      case OO_Greater:
      case OO_GreaterEqual:
      case OO_ExclaimEqual:
      case OO_EqualEqual:
      case OO_Spaceship:
        return true;
      default:
        break;
    }
  }
  for (const Stmt* c : s->children()) {
    if (condHasComparison(c)) return true;
  }
  return false;
}

// Mirror of pto_lint.loop_is_syntactically_bounded: a for loop whose own
// header compares the induction variable against a bound proves progress;
// while/do/for(;;)/range-for need an annotation.
bool loopSyntacticallyBounded(const Stmt* loop) {
  const auto* fs = dyn_cast<ForStmt>(loop);
  return fs != nullptr && condHasComparison(fs->getCond());
}

// Literal trip count of `for (i = A; i < B; ...)` when both A and B fold to
// integer constants; 0 when unknown.
std::uint64_t literalTripCount(const Stmt* loop, ASTContext& ctx) {
  const auto* fs = dyn_cast<ForStmt>(loop);
  if (fs == nullptr || fs->getCond() == nullptr) return 0;
  const auto* bo =
      dyn_cast<BinaryOperator>(fs->getCond()->IgnoreParenImpCasts());
  if (bo == nullptr) return 0;
  if (bo->getOpcode() != BO_LT && bo->getOpcode() != BO_LE) return 0;
  Expr::EvalResult hi;
  if (!bo->getRHS()->EvaluateAsInt(hi, ctx)) return 0;
  std::uint64_t b = hi.Val.getInt().getLimitedValue(1ull << 32);
  std::uint64_t a = 0;
  if (const auto* ds = dyn_cast_or_null<DeclStmt>(fs->getInit())) {
    if (ds->isSingleDecl()) {
      if (const auto* vd = dyn_cast<VarDecl>(ds->getSingleDecl())) {
        if (vd->hasInit()) {
          Expr::EvalResult lo;
          if (vd->getInit()->EvaluateAsInt(lo, ctx)) {
            a = lo.Val.getInt().getLimitedValue(1ull << 32);
          }
        }
      }
    }
  }
  if (b < a) return 0;
  std::uint64_t trip = b - a;
  if (bo->getOpcode() == BO_LE) trip += 1;
  return trip;
}

// ---------------------------------------------------------------------------
// Per-site analysis
// ---------------------------------------------------------------------------

struct SiteCtx {
  ASTContext* ast = nullptr;
  SourceLines* lines = nullptr;
  std::string siteName;
  std::string siteFile;  // repo-relative
  unsigned siteLine = 0;
  FileID siteFid;

  bool siteAllows(llvm::StringRef kind) const {
    unsigned lo = siteLine > 8 ? siteLine - 8 : 1;
    return lines->allows(siteFid, lo, siteLine, kind);
  }

  void report(const char* kind, const std::string& subject,
              SourceLocation where, const std::string& message) {
    if (siteAllows(kind)) return;
    const SourceManager& sm = ast->getSourceManager();
    SourceLocation x = sm.getExpansionLoc(where);
    Finding f;
    f.kind = kind;
    f.site = siteName;
    f.subject = subject;
    f.file = relPath(sm.getFilename(x));
    f.line = sm.getExpansionLineNumber(x);
    f.message = message;
    g_findings.emplace(f.id(), std::move(f));
  }
};

// Annotation window for a loop statement: the line before the loop through
// the line its body (or do-while condition) starts on.
struct LoopLines {
  FileID fid;
  unsigned lo = 0, hi = 0;
};

LoopLines loopAnnotationWindow(const Stmt* loop, const SourceManager& sm) {
  LoopLines w;
  SourceLocation b = sm.getExpansionLoc(loop->getBeginLoc());
  w.fid = sm.getFileID(b);
  unsigned begin = sm.getExpansionLineNumber(b);
  w.lo = begin > 1 ? begin - 1 : 1;
  unsigned end = begin;
  const Stmt* body = nullptr;
  if (const auto* fs = dyn_cast<ForStmt>(loop)) body = fs->getBody();
  if (const auto* ws = dyn_cast<WhileStmt>(loop)) body = ws->getBody();
  if (const auto* rs = dyn_cast<CXXForRangeStmt>(loop)) body = rs->getBody();
  if (body != nullptr) {
    end = sm.getExpansionLineNumber(sm.getExpansionLoc(body->getBeginLoc()));
  }
  if (const auto* ds = dyn_cast<DoStmt>(loop)) {
    // do-while: `do` line (and the one before) plus the trailing while
    // condition's lines -- matching pto_lint's annotation_for.
    unsigned wl = sm.getExpansionLineNumber(sm.getExpansionLoc(ds->getWhileLoc()));
    unsigned ce = sm.getExpansionLineNumber(
        sm.getExpansionLoc(ds->getCond()->getEndLoc()));
    w.hi = std::max({begin, wl, ce});
    return w;
  }
  w.hi = std::max(begin, end);
  return w;
}

// --- Pass 1: HTM-safety over the fast closure ------------------------------

class SafetyWalker {
 public:
  SafetyWalker(SiteCtx& site, const LangOptions& lo) : site_(site), lo_(lo) {}

  void run(const FunctionDecl* fast) { walkFunction(fast, "fast-body"); }

 private:
  void walkFunction(const FunctionDecl* fd, llvm::StringRef pathTop) {
    const FunctionDecl* def = fd->getDefinition();
    if (def == nullptr || !def->hasBody()) return;
    if (!visited_.insert(def->getCanonicalDecl()).second) return;
    walkStmt(def->getBody(), pathTop);
  }

  void walkStmt(const Stmt* s, llvm::StringRef pathTop) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;  // nested lambda: not called here

    if (isa<CXXNewExpr>(s) || isa<CXXDeleteExpr>(s)) {
      site_.report("allocation", pathTop.str(), s->getBeginLoc(),
                   "operator new/delete reachable from the fast body via '" +
                       pathTop.str() + "'");
    }
    if (isa<GCCAsmStmt>(s) || isa<MSAsmStmt>(s)) {
      site_.report("raw-fence", pathTop.str(), s->getBeginLoc(),
                   "inline asm in the fast-body closure (via '" +
                       pathTop.str() + "')");
    }

    if (isa<WhileStmt>(s) || isa<DoStmt>(s) || isa<ForStmt>(s) ||
        isa<CXXForRangeStmt>(s)) {
      checkLoop(s, pathTop);
    }

    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
      if (atomicOpOf(mc) != AtomicOp::kNone) {
        // Atomic accesses are leaves; still walk argument subtrees so a
        // call buried in an argument is not missed.
        for (const Stmt* c : mc->children()) walkStmt(c, pathTop);
        return;
      }
    }
    if (const auto* ce = dyn_cast<CallExpr>(s)) {
      if (const FunctionDecl* callee = ce->getDirectCallee()) {
        dispatchCallee(callee, ce, pathTop);
      }
    } else if (const auto* cc = dyn_cast<CXXConstructExpr>(s)) {
      if (const CXXConstructorDecl* ctor = cc->getConstructor()) {
        dispatchCallee(ctor, cc, pathTop);
      }
    }
    for (const Stmt* c : s->children()) walkStmt(c, pathTop);
  }

  void dispatchCallee(const FunctionDecl* callee, const Stmt* at,
                      llvm::StringRef pathTop) {
    std::string name = callee->getNameAsString();
    switch (classifyCallee(callee)) {
      case CalleeClass::kAllocation:
        site_.report("allocation",
                     pathTop == "fast-body" ? name : pathTop.str(),
                     at->getBeginLoc(),
                     "allocation '" + callee->getQualifiedNameAsString() +
                         "' reachable from the fast body via '" +
                         pathTop.str() + "'");
        break;
      case CalleeClass::kSyscall:
        site_.report("syscall", pathTop == "fast-body" ? name : pathTop.str(),
                     at->getBeginLoc(),
                     "syscall/IO '" + callee->getQualifiedNameAsString() +
                         "' reachable from the fast body");
        break;
      case CalleeClass::kRawFence:
        site_.report("raw-fence",
                     pathTop == "fast-body" ? name : pathTop.str(),
                     at->getBeginLoc(),
                     "raw fence '" + name + "' in the fast-body closure; "
                     "use P::fence()");
        break;
      case CalleeClass::kWhitelisted:
      case CalleeClass::kOpaque:
        break;
      case CalleeClass::kRecurse:
        walkFunction(callee, pathTop == "fast-body"
                                 ? llvm::StringRef(nameStore_.emplace_back(name))
                                 : pathTop);
        break;
    }
  }

  void checkLoop(const Stmt* loop, llvm::StringRef pathTop) {
    if (loopSyntacticallyBounded(loop)) return;
    const SourceManager& sm = site_.ast->getSourceManager();
    LoopLines w = loopAnnotationWindow(loop, sm);
    if (!site_.lines->boundedAnnotation(w.fid, w.lo, w.hi).empty()) return;
    std::string subject = pathTop == "fast-body"
                              ? "loop-l" + std::to_string(w.lo + 1)
                              : pathTop.str();
    site_.report("unbounded-loop", subject, loop->getBeginLoc(),
                 "loop without a syntactic bound or 'pto-lint: bounded(...)' "
                 "annotation in the fast-body closure (via '" +
                     pathTop.str() + "')");
  }

  SiteCtx& site_;
  const LangOptions& lo_;
  std::set<const FunctionDecl*> visited_;
  std::deque<std::string> nameStore_;  // stable storage for pathTop refs
};

// --- Pass 2: footprint lower bound over the fast closure -------------------

class FootprintWalker {
 public:
  explicit FootprintWalker(SiteCtx& site, const LangOptions& lo)
      : site_(site), lo_(lo) {}

  void run(const FunctionDecl* fast, const Stmt* fastBody) {
    walkStmt(fastBody, 1, fast);
    std::uint64_t writes = fixedWrites_.size() + scaledWrites_;
    std::uint64_t reads = fixedReads_.size() + scaledReads_;
    if (writes > g_params.max_write_lines) {
      site_.report("over-capacity", "writes",
                   fastBody != nullptr ? fastBody->getBeginLoc()
                                       : SourceLocation(),
                   "static write-set lower bound " + std::to_string(writes) +
                       " lines exceeds HtmConfig max_write_lines=" +
                       std::to_string(g_params.max_write_lines));
    }
    if (reads > g_params.max_read_lines) {
      site_.report("over-capacity", "reads",
                   fastBody != nullptr ? fastBody->getBeginLoc()
                                       : SourceLocation(),
                   "static read-set lower bound " + std::to_string(reads) +
                       " lines exceeds HtmConfig max_read_lines=" +
                       std::to_string(g_params.max_read_lines));
    }
  }

 private:
  // Per-function summary: accesses whose location depends on a parameter
  // scale with the caller's loop trip count; the rest dedup by source text.
  struct FnSummary {
    unsigned paramWrites = 0, paramReads = 0;
    std::set<std::string> fixedWrites, fixedReads;
  };

  const FnSummary& summarize(const FunctionDecl* fd) {
    const FunctionDecl* def = fd->getDefinition();
    auto it = summaries_.find(def);
    if (it != summaries_.end()) return it->second;
    FnSummary& s = summaries_[def];  // insert first: cycles terminate at {}
    if (def != nullptr && def->hasBody()) {
      summarizeStmt(def->getBody(), def, s, /*mult=*/1);
    }
    return summaries_[def];
  }

  bool dependsOnParam(const Stmt* e, const FunctionDecl* fn) {
    if (e == nullptr || fn == nullptr) return false;
    if (const auto* dr = dyn_cast<DeclRefExpr>(e)) {
      if (isa<ParmVarDecl>(dr->getDecl())) return true;
    }
    for (const Stmt* c : e->children()) {
      if (dependsOnParam(c, fn)) return true;
    }
    return false;
  }

  void recordAccess(const CXXMemberCallExpr* mc, AtomicOp op,
                    const FunctionDecl* fn, FnSummary* summary,
                    std::uint64_t mult) {
    const SourceManager& sm = site_.ast->getSourceManager();
    std::string loc = sourceText(memberCallBase(mc), sm, lo_);
    bool w = op == AtomicOp::kStore || op == AtomicOp::kInit ||
             op == AtomicOp::kCas || op == AtomicOp::kRmw;
    bool r = op == AtomicOp::kLoad || op == AtomicOp::kCas ||
             op == AtomicOp::kRmw;
    bool mentionsLoopVar = false;
    for (const std::string& lv : loopVarHit_) {
      if (mentionsName(loc, lv)) mentionsLoopVar = true;
    }
    bool scales = mult > 1 && mentionsLoopVar;
    if (summary != nullptr) {
      bool param = dependsOnParam(memberCallBase(mc), fn);
      if (w) {
        if (param) summary->paramWrites += 1;
        else summary->fixedWrites.insert(loc);
      }
      if (r) {
        if (param) summary->paramReads += 1;
        else summary->fixedReads.insert(loc);
      }
      return;
    }
    if (w) {
      if (scales) scaledWrites_ += mult;
      else fixedWrites_.insert(loc);
    }
    if (r) {
      if (scales) scaledReads_ += mult;
      else fixedReads_.insert(loc);
    }
  }

  // Shared walker; when `summary` is null, accumulates into the site-level
  // totals, else into the callee summary.
  void walkInto(const Stmt* s, const FunctionDecl* fn, FnSummary* summary,
                std::uint64_t mult) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;

    if (isa<ForStmt>(s) || isa<WhileStmt>(s) || isa<DoStmt>(s) ||
        isa<CXXForRangeStmt>(s)) {
      std::uint64_t trip = literalTripCount(s, *site_.ast);
      if (trip == 0) {
        const SourceManager& sm = site_.ast->getSourceManager();
        LoopLines w = loopAnnotationWindow(s, sm);
        std::string ann = site_.lines->boundedAnnotation(w.fid, w.lo, w.hi);
        if (!ann.empty()) {
          std::uint64_t n = 0;
          for (char c : ann) {
            if (c >= '0' && c <= '9') n = n * 10 + (c - '0');
            else { n = 0; break; }
          }
          trip = n;
        }
      }
      const Stmt* body = nullptr;
      std::string loopVar;
      if (const auto* fs = dyn_cast<ForStmt>(s)) {
        body = fs->getBody();
        if (const auto* ds = dyn_cast_or_null<DeclStmt>(fs->getInit())) {
          if (ds->isSingleDecl()) {
            if (const auto* vd = dyn_cast<VarDecl>(ds->getSingleDecl())) {
              loopVar = vd->getNameAsString();
            }
          }
        }
      } else if (const auto* ws = dyn_cast<WhileStmt>(s)) {
        body = ws->getBody();
      } else if (const auto* ds2 = dyn_cast<DoStmt>(s)) {
        body = ds2->getBody();
      } else if (const auto* rs = dyn_cast<CXXForRangeStmt>(s)) {
        body = rs->getBody();
      }
      std::uint64_t inner = trip > 1 ? mult * std::min<std::uint64_t>(
                                                  trip, 1ull << 20)
                                     : mult;
      if (!loopVar.empty() && inner > 1) loopVarHit_.insert(loopVar);
      walkInto(body, fn, summary, inner);
      if (!loopVar.empty()) loopVarHit_.erase(loopVar);
      return;  // loop header exprs contribute no distinct lines
    }

    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
      AtomicOp op = atomicOpOf(mc);
      if (op != AtomicOp::kNone) {
        recordAccess(mc, op, fn, summary, mult);
        for (const Stmt* c : mc->children()) walkInto(c, fn, summary, mult);
        return;
      }
    }
    if (const auto* ce = dyn_cast<CallExpr>(s)) {
      if (const FunctionDecl* callee = ce->getDirectCallee()) {
        if (classifyCallee(callee) == CalleeClass::kRecurse &&
            inStack_.insert(callee->getCanonicalDecl()).second) {
          const FnSummary& cs = summarize(callee);
          inStack_.erase(callee->getCanonicalDecl());
          bool argScales = false;
          for (const Expr* a : ce->arguments()) {
            std::string t = sourceText(a, site_.ast->getSourceManager(), lo_);
            for (const std::string& lv : loopVarHit_) {
              if (mentionsName(t, lv)) argScales = true;
            }
            if (summary != nullptr && dependsOnParam(a, fn)) argScales = true;
          }
          std::uint64_t m = argScales ? mult : 1;
          if (summary != nullptr) {
            summary->paramWrites += cs.paramWrites;
            summary->paramReads += cs.paramReads;
            for (auto& x : cs.fixedWrites) summary->fixedWrites.insert(x);
            for (auto& x : cs.fixedReads) summary->fixedReads.insert(x);
          } else {
            scaledWrites_ += cs.paramWrites * m;
            scaledReads_ += cs.paramReads * m;
            for (auto& x : cs.fixedWrites) fixedWrites_.insert(x);
            for (auto& x : cs.fixedReads) fixedReads_.insert(x);
          }
        }
      }
    }
    for (const Stmt* c : s->children()) walkInto(c, fn, summary, mult);
  }

  void summarizeStmt(const Stmt* s, const FunctionDecl* fn, FnSummary& out,
                     std::uint64_t mult) {
    walkInto(s, fn, &out, mult);
  }

  void walkStmt(const Stmt* s, std::uint64_t mult, const FunctionDecl* fn) {
    walkInto(s, fn, nullptr, mult);
  }

  SiteCtx& site_;
  const LangOptions& lo_;
  std::map<const FunctionDecl*, FnSummary> summaries_;
  std::set<const FunctionDecl*> inStack_;
  std::set<std::string> loopVarHit_;
  std::set<std::string> fixedWrites_, fixedReads_;
  std::uint64_t scaledWrites_ = 0, scaledReads_ = 0;
};

// --- Pass 3: fast/fallback write-set consistency ---------------------------

class ConsistencyWalker {
 public:
  ConsistencyWalker(SiteCtx& site, const LangOptions& lo)
      : site_(site), lo_(lo) {}

  // Collect the fields written (atomically or plainly) in the fast closure.
  void collectTxWrites(const FunctionDecl* fast) {
    collect_(fast);
  }

  // Walk the fallback universe: the slow lambda closure plus the enclosing
  // function (minus lambda subtrees), flagging blind stores through
  // shared-loaded pointers to tx-written fields.
  void checkFallback(const FunctionDecl* slow, const FunctionDecl* enclosing,
                     const LambdaExpr* fastL, const LambdaExpr* slowL) {
    if (slow != nullptr && slow->hasBody()) {
      checkFunction_(slow->getBody(), slow);
      closeOver_(slow->getBody());
    }
    if (enclosing != nullptr && enclosing->hasBody()) {
      checkFunction_(enclosing->getBody(), enclosing);
      closeOver_(enclosing->getBody());
    }
    (void)fastL;
    (void)slowL;
  }

 private:
  void collect_(const FunctionDecl* fd) {
    const FunctionDecl* def = fd == nullptr ? nullptr : fd->getDefinition();
    if (def == nullptr || !def->hasBody()) return;
    if (!txVisited_.insert(def->getCanonicalDecl()).second) return;
    collectStmt_(def->getBody());
  }

  void collectStmt_(const Stmt* s) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
      AtomicOp op = atomicOpOf(mc);
      if (op == AtomicOp::kStore || op == AtomicOp::kInit ||
          op == AtomicOp::kCas || op == AtomicOp::kRmw) {
        if (const FieldDecl* f = writtenField_(mc)) {
          txWritten_.insert(f->getCanonicalDecl());
        }
      }
    }
    if (const auto* bo = dyn_cast<BinaryOperator>(s)) {
      if (bo->isAssignmentOp()) {
        if (const auto* me = dyn_cast<MemberExpr>(
                bo->getLHS()->IgnoreParenImpCasts())) {
          if (const auto* f = dyn_cast<FieldDecl>(me->getMemberDecl())) {
            txWritten_.insert(f->getCanonicalDecl());
          }
        }
      }
    }
    if (const auto* ce = dyn_cast<CallExpr>(s)) {
      if (const FunctionDecl* callee = ce->getDirectCallee()) {
        if (classifyCallee(callee) == CalleeClass::kRecurse) collect_(callee);
      }
    }
    for (const Stmt* c : s->children()) collectStmt_(c);
  }

  const FieldDecl* writtenField_(const CXXMemberCallExpr* mc) {
    const Expr* base = memberCallBase(mc);
    if (const auto* me = dyn_cast_or_null<MemberExpr>(base)) {
      return dyn_cast<FieldDecl>(me->getMemberDecl());
    }
    return nullptr;
  }

  void closeOver_(const Stmt* s) {
    if (s == nullptr) return;
    if (const auto* ce = dyn_cast<CallExpr>(s)) {
      if (const FunctionDecl* callee = ce->getDirectCallee()) {
        if (classifyCallee(callee) == CalleeClass::kRecurse &&
            fbVisited_.insert(callee->getCanonicalDecl()).second) {
          const FunctionDecl* def = callee->getDefinition();
          checkFunction_(def->getBody(), def);
          closeOver_(def->getBody());
        }
      }
    }
    for (const Stmt* c : s->children()) {
      if (!isa<LambdaExpr>(c)) closeOver_(c);
    }
  }

  // Locals assigned from an atomic load within `fn` (shared-loaded
  // pointers), then blind stores through them to tx-written fields.
  void checkFunction_(const Stmt* body, const FunctionDecl* fn) {
    if (body == nullptr) return;
    std::set<const VarDecl*> shared;
    gatherShared_(body, shared);
    flagStores_(body, shared, fn);
  }

  void gatherShared_(const Stmt* s, std::set<const VarDecl*>& shared) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;
    if (const auto* ds = dyn_cast<DeclStmt>(s)) {
      for (const Decl* d : ds->decls()) {
        if (const auto* vd = dyn_cast<VarDecl>(d)) {
          if (vd->getType()->isPointerType() && vd->hasInit() &&
              isDirectAtomicLoad(vd->getInit())) {
            shared.insert(vd);
          }
        }
      }
    }
    if (const auto* bo = dyn_cast<BinaryOperator>(s)) {
      if (bo->getOpcode() == BO_Assign) {
        if (const auto* dr = dyn_cast<DeclRefExpr>(
                bo->getLHS()->IgnoreParenImpCasts())) {
          if (const auto* vd = dyn_cast<VarDecl>(dr->getDecl())) {
            if (vd->getType()->isPointerType() &&
                isDirectAtomicLoad(bo->getRHS())) {
              shared.insert(vd);
            }
          }
        }
      }
    }
    for (const Stmt* c : s->children()) gatherShared_(c, shared);
  }

  void flagStores_(const Stmt* s, const std::set<const VarDecl*>& shared,
                   const FunctionDecl* fn) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
      AtomicOp op = atomicOpOf(mc);
      // CAS and fetch-ops are guarded publications; store/init are blind.
      if (op == AtomicOp::kStore || op == AtomicOp::kInit) {
        const Expr* base = memberCallBase(mc);
        if (const auto* me = dyn_cast_or_null<MemberExpr>(base)) {
          const auto* field = dyn_cast<FieldDecl>(me->getMemberDecl());
          const Expr* obj = me->getBase()->IgnoreParenImpCasts();
          const auto* dr = dyn_cast<DeclRefExpr>(obj);
          if (field != nullptr && dr != nullptr && me->isArrow() &&
              txWritten_.count(field->getCanonicalDecl()) != 0) {
            if (const auto* vd = dyn_cast<VarDecl>(dr->getDecl())) {
              if (shared.count(vd) != 0) {
                const SourceManager& sm = site_.ast->getSourceManager();
                SourceLocation x = sm.getExpansionLoc(mc->getBeginLoc());
                unsigned ln = sm.getExpansionLineNumber(x);
                FileID fid = sm.getFileID(x);
                if (!site_.lines->allows(fid, ln > 1 ? ln - 1 : 1, ln,
                                         "blind-store")) {
                  site_.report(
                      "blind-store", field->getNameAsString(),
                      mc->getBeginLoc(),
                      "field '" + field->getNameAsString() +
                          "' is written transactionally in the fast body "
                          "but published with a blind " +
                          (op == AtomicOp::kStore ? "store" : "init") +
                          " through shared-loaded pointer '" +
                          vd->getNameAsString() +
                          "' in the fallback; publish with a CAS");
                }
              }
            }
          }
        }
      }
    }
    // Plain `=` publication through a shared-loaded pointer to a field the
    // fast body writes transactionally -- same defect class, no atomics.
    if (const auto* bo = dyn_cast<BinaryOperator>(s)) {
      if (bo->getOpcode() == BO_Assign) {
        if (const auto* me = dyn_cast<MemberExpr>(
                bo->getLHS()->IgnoreParenImpCasts())) {
          const auto* field = dyn_cast<FieldDecl>(me->getMemberDecl());
          const auto* dr = dyn_cast<DeclRefExpr>(
              me->getBase()->IgnoreParenImpCasts());
          if (field != nullptr && dr != nullptr && me->isArrow() &&
              txWritten_.count(field->getCanonicalDecl()) != 0) {
            if (const auto* vd = dyn_cast<VarDecl>(dr->getDecl())) {
              if (shared.count(vd) != 0) {
                const SourceManager& sm = site_.ast->getSourceManager();
                SourceLocation x = sm.getExpansionLoc(bo->getBeginLoc());
                unsigned ln = sm.getExpansionLineNumber(x);
                FileID fid = sm.getFileID(x);
                if (!site_.lines->allows(fid, ln > 1 ? ln - 1 : 1, ln,
                                         "blind-store")) {
                  site_.report(
                      "blind-store", field->getNameAsString(),
                      bo->getBeginLoc(),
                      "field '" + field->getNameAsString() +
                          "' is written transactionally in the fast body "
                          "but published with a plain store through "
                          "shared-loaded pointer '" + vd->getNameAsString() +
                          "' in the fallback; publish with a CAS");
                }
              }
            }
          }
        }
      }
    }
    (void)fn;
    for (const Stmt* c : s->children()) flagStores_(c, shared, fn);
  }

  SiteCtx& site_;
  const LangOptions& lo_;
  std::set<const FunctionDecl*> txVisited_, fbVisited_;
  std::set<const FieldDecl*> txWritten_;
};

// --- Pass 4: doomed-pointer revalidation -----------------------------------

class DoomedWalker {
 public:
  DoomedWalker(SiteCtx& site, const LangOptions& lo) : site_(site), lo_(lo) {}

  void run(const FunctionDecl* fast) { walkFunction_(fast); }

 private:
  struct Event {
    unsigned offset;
    int type;  // 0 assign, 1 shared load (staleness candidate), 2 deref
    const VarDecl* var;     // assign/deref target (null for loads)
    std::string loadBase;   // load base text
    SourceLocation loc;
  };

  void walkFunction_(const FunctionDecl* fd) {
    const FunctionDecl* def = fd == nullptr ? nullptr : fd->getDefinition();
    if (def == nullptr || !def->hasBody()) return;
    if (!visited_.insert(def->getCanonicalDecl()).second) return;

    std::vector<Event> events;
    std::set<const VarDecl*> tracked;
    std::vector<const FunctionDecl*> callees;
    gather_(def->getBody(), events, tracked, callees);
    simulate_(events, tracked);
    // The fast closure: helpers called from the fast body get their own
    // per-function simulation (the fixture defect sits one call deep).
    for (const FunctionDecl* c : callees) walkFunction_(c);
  }

  // An assignment event is anchored at the END of its right-hand side, so a
  // variable's own initializing load (which textually follows the variable
  // name) is sequenced before the assignment, not after it.
  void gather_(const Stmt* s, std::vector<Event>& ev,
               std::set<const VarDecl*>& tracked,
               std::vector<const FunctionDecl*>& callees) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;
    const SourceManager& sm = site_.ast->getSourceManager();

    if (const auto* ds = dyn_cast<DeclStmt>(s)) {
      for (const Decl* d : ds->decls()) {
        if (const auto* vd = dyn_cast<VarDecl>(d)) {
          if (vd->getType()->isPointerType() && vd->hasInit()) {
            if (isDirectAtomicLoad(vd->getInit())) tracked.insert(vd);
            ev.push_back({sm.getFileOffset(sm.getExpansionLoc(
                              vd->getInit()->getEndLoc())),
                          0, vd, "", vd->getLocation()});
          }
        }
      }
    }
    if (const auto* bo = dyn_cast<BinaryOperator>(s)) {
      if (bo->getOpcode() == BO_Assign) {
        if (const auto* dr = dyn_cast<DeclRefExpr>(
                bo->getLHS()->IgnoreParenImpCasts())) {
          if (const auto* vd = dyn_cast<VarDecl>(dr->getDecl())) {
            if (vd->getType()->isPointerType()) {
              if (isDirectAtomicLoad(bo->getRHS())) tracked.insert(vd);
              ev.push_back({sm.getFileOffset(sm.getExpansionLoc(
                                bo->getRHS()->getEndLoc())),
                            0, vd, "", bo->getBeginLoc()});
            }
          }
        }
      }
    }
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
      if (atomicOpOf(mc) == AtomicOp::kLoad) {
        std::string base = sourceText(memberCallBase(mc), sm, lo_);
        ev.push_back({sm.getFileOffset(sm.getExpansionLoc(mc->getBeginLoc())),
                      1, nullptr, base, mc->getBeginLoc()});
      }
    }
    if (const auto* me = dyn_cast<MemberExpr>(s)) {
      if (me->isArrow() && isa<FieldDecl>(me->getMemberDecl())) {
        if (const auto* dr = dyn_cast<DeclRefExpr>(
                me->getBase()->IgnoreParenImpCasts())) {
          if (const auto* vd = dyn_cast<VarDecl>(dr->getDecl())) {
            ev.push_back({sm.getFileOffset(sm.getExpansionLoc(
                              me->getBeginLoc())),
                          2, vd, "", me->getBeginLoc()});
          }
        }
      }
    }
    if (const auto* ce = dyn_cast<CallExpr>(s)) {
      if (const FunctionDecl* callee = ce->getDirectCallee()) {
        const auto* asMember = dyn_cast<CXXMemberCallExpr>(ce);
        bool isAtomic =
            asMember != nullptr && atomicOpOf(asMember) != AtomicOp::kNone;
        if (!isAtomic && classifyCallee(callee) == CalleeClass::kRecurse) {
          callees.push_back(callee);
        }
      }
    }
    for (const Stmt* c : s->children()) gather_(c, ev, tracked, callees);
  }

  void simulate_(std::vector<Event>& ev, const std::set<const VarDecl*>& tracked) {
    std::sort(ev.begin(), ev.end(),
              [](const Event& a, const Event& b) { return a.offset < b.offset; });
    std::map<const VarDecl*, bool> assigned, stale, reported;
    for (const Event& e : ev) {
      if (e.type == 0 && e.var != nullptr) {
        assigned[e.var] = true;
        stale[e.var] = false;
      } else if (e.type == 1) {
        for (const VarDecl* v : tracked) {
          if (assigned[v] && !mentionsName(e.loadBase, v->getName())) {
            stale[v] = true;
          }
        }
      } else if (e.type == 2 && e.var != nullptr) {
        if (tracked.count(e.var) != 0 && stale[e.var] && !reported[e.var]) {
          const SourceManager& sm = site_.ast->getSourceManager();
          SourceLocation x = sm.getExpansionLoc(e.loc);
          unsigned ln = sm.getExpansionLineNumber(x);
          FileID fid = sm.getFileID(x);
          if (site_.lines->anyLineContains(fid, ln > 1 ? ln - 1 : 1, ln,
                                           "pto-analyze: revalidated")) {
            continue;
          }
          reported[e.var] = true;
          site_.report(
              "doomed-deref", e.var->getNameAsString(), e.loc,
              "pointer '" + e.var->getNameAsString() +
                  "' was loaded from shared state, a later unrelated shared "
                  "load may leave it doomed, and it is dereferenced without "
                  "revalidation");
        }
      }
    }
  }

  SiteCtx& site_;
  const LangOptions& lo_;
  std::set<const FunctionDecl*> visited_;
};

// ---------------------------------------------------------------------------
// Site discovery
// ---------------------------------------------------------------------------

class PrefixSiteVisitor : public RecursiveASTVisitor<PrefixSiteVisitor> {
 public:
  explicit PrefixSiteVisitor(ASTContext& ctx) : ctx_(ctx), lines_(ctx.getSourceManager()) {}

  bool shouldVisitTemplateInstantiations() const { return true; }
  bool shouldVisitImplicitCode() const { return true; }

  bool VisitFunctionDecl(FunctionDecl* fd) {
    if (!fd->hasBody() || fd->isDependentContext()) return true;
    findSites(fd->getBody(), fd);
    return true;
  }

 private:
  void findSites(const Stmt* s, FunctionDecl* enclosing) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;  // prefix sites never nest in lambdas
    if (const auto* ce = dyn_cast<CallExpr>(s)) {
      const FunctionDecl* callee = ce->getDirectCallee();
      if (callee != nullptr &&
          callee->getQualifiedNameAsString() == "pto::prefix") {
        analyzeSite(ce, enclosing);
      }
    }
    for (const Stmt* c : s->children()) findSites(c, enclosing);
  }

  void analyzeSite(const CallExpr* ce, FunctionDecl* enclosing) {
    const SourceManager& sm = ctx_.getSourceManager();
    SourceLocation loc = sm.getExpansionLoc(ce->getBeginLoc());
    std::string file = relPath(sm.getFilename(loc));
    unsigned line = sm.getExpansionLineNumber(loc);
    std::string key = file + ":" + std::to_string(line);

    if (!OptRestrict.empty()) {
      bool keep = false;
      for (const std::string& p : OptRestrict) {
        if (file.rfind(p, 0) == 0) keep = true;
      }
      if (!keep) return;
    }

    if (ce->getNumArgs() < 3) return;
    const LambdaExpr* fastL = findLambda(ce->getArg(1));
    const LambdaExpr* slowL = findLambda(ce->getArg(2));
    if (fastL == nullptr) return;

    std::string name = key;
    if (ce->getNumArgs() >= 4) {
      if (const StringLiteral* sl = findStringLiteral(ce->getArg(3))) {
        name = sl->getString().str();
      }
    }

    bool firstSeen = g_sites.emplace(key, SiteRec{file, line, name}).second;
    if (!firstSeen) return;  // another TU/instantiation already analyzed it

    SiteCtx site;
    site.ast = &ctx_;
    site.lines = &lines_;
    site.siteName = name;
    site.siteFile = file;
    site.siteLine = line;
    site.siteFid = sm.getFileID(loc);

    const CXXMethodDecl* fast = fastL->getCallOperator();
    const CXXMethodDecl* slow = slowL != nullptr ? slowL->getCallOperator()
                                                 : nullptr;
    const LangOptions& lo = ctx_.getLangOpts();

    SafetyWalker(site, lo).run(fast);
    FootprintWalker(site, lo).run(fast, fast->getBody());
    ConsistencyWalker cons(site, lo);
    cons.collectTxWrites(fast);
    cons.checkFallback(slow, enclosing, fastL, slowL);
    DoomedWalker(site, lo).run(fast);
  }

  ASTContext& ctx_;
  SourceLines lines_;
};

class AnalyzeConsumer : public ASTConsumer {
 public:
  void HandleTranslationUnit(ASTContext& ctx) override {
    PrefixSiteVisitor v(ctx);
    v.TraverseDecl(ctx.getTranslationUnitDecl());
  }
};

class AnalyzeAction : public ASTFrontendAction {
 public:
  std::unique_ptr<ASTConsumer> CreateASTConsumer(CompilerInstance&,
                                                 llvm::StringRef) override {
    return std::make_unique<AnalyzeConsumer>();
  }
};

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

void emitJson(llvm::raw_ostream& os) {
  os << "{\n  \"tool\": \"pto-analyze\",\n";
  os << "  \"htm_params\": " << pto::analyze::to_json(g_params) << ",\n";
  os << "  \"sites\": [\n";
  bool first = true;
  std::map<std::string, unsigned> counts;
  for (const auto& [key, s] : g_sites) {
    counts[s.file] += 1;
    os << (first ? "" : ",\n") << "    {\"file\": \"" << jsonEscape(s.file)
       << "\", \"line\": " << s.line << ", \"name\": \""
       << jsonEscape(s.name) << "\"}";
    first = false;
  }
  os << "\n  ],\n  \"site_counts\": {";
  first = true;
  for (const auto& [f, n] : counts) {
    os << (first ? "" : ", ") << "\"" << jsonEscape(f) << "\": " << n;
    first = false;
  }
  os << "},\n  \"findings\": [\n";
  first = true;
  for (const auto& [id, f] : g_findings) {
    os << (first ? "" : ",\n") << "    {\"id\": \"" << jsonEscape(id)
       << "\", \"kind\": \"" << jsonEscape(f.kind) << "\", \"site\": \""
       << jsonEscape(f.site) << "\", \"subject\": \"" << jsonEscape(f.subject)
       << "\", \"file\": \"" << jsonEscape(f.file)
       << "\", \"line\": " << f.line << ", \"message\": \""
       << jsonEscape(f.message) << "\"}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

void emitText(llvm::raw_ostream& os) {
  os << "pto-analyze: " << g_sites.size() << " prefix site(s), "
     << g_findings.size() << " finding(s)  [max_write_lines="
     << g_params.max_write_lines << " max_read_lines="
     << g_params.max_read_lines << "]\n";
  for (const auto& [id, f] : g_findings) {
    os << f.file << ":" << f.line << ": [" << id << "] " << f.message << "\n";
  }
}

}  // namespace

int main(int argc, const char** argv) {
  auto expected =
      tooling::CommonOptionsParser::create(argc, argv, PtoCat);
  if (!expected) {
    llvm::errs() << llvm::toString(expected.takeError()) << "\n";
    return 2;
  }
  tooling::CommonOptionsParser& op = expected.get();

  try {
    g_params = pto::analyze::parse_htm_params(OptSimHeader);
  } catch (const pto::analyze::HtmParamsError& e) {
    llvm::errs() << "pto-analyze: " << e.what() << "\n";
    return 2;
  }

  if (!OptRoot.empty()) {
    g_root = OptRoot;
  } else {
    llvm::SmallString<256> abs(OptSimHeader.getValue());
    llvm::sys::fs::make_absolute(abs);
    llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
    // <root>/src/sim/sim.h -> <root>
    llvm::StringRef r = llvm::sys::path::parent_path(
        llvm::sys::path::parent_path(llvm::sys::path::parent_path(abs)));
    g_root = r.str();
  }
  if (!g_root.empty() && g_root.back() != '/') g_root += '/';

  tooling::ClangTool tool(op.getCompilations(), op.getSourcePathList());
  int rc = tool.run(
      tooling::newFrontendActionFactory<AnalyzeAction>().get());
  if (rc != 0) {
    llvm::errs() << "pto-analyze: tool run failed (rc=" << rc << ")\n";
    return 2;
  }

  if (OptJson) {
    emitJson(llvm::outs());
    return 0;
  }
  emitText(llvm::outs());
  return g_findings.empty() ? 0 : 1;
}
