#!/usr/bin/env python3
"""Gate the observability stack's overhead against a baseline run.

Reads two PTO_STATS=json logs of the SAME bench invocation — one with the
pto::obs knobs off (baseline) and one with them armed — matches bench_point
records by (bench, series, threads), and fails if the instrumented run's
throughput falls more than --tolerance below baseline.

De-noising, because shared CI runners drift by more than the tolerance:
  * within a file, duplicate keys keep the BEST throughput, so callers can
    interleave several baseline/instrumented process runs (B I B I ...) and
    append each side to one log — interleaving cancels frequency drift;
  * across points, the gate compares the geometric mean of the per-point
    ratios, so a systematic slowdown fails while one noisy point does not.

Usage:
  check_obs_overhead.py baseline.json instrumented.json [--tolerance 0.05]
"""

import argparse
import json
import math
import sys


def load_points(path):
    points = {}
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if doc.get("type") != "bench_point":
                continue
            key = (doc.get("bench"), doc.get("series"), doc.get("threads"))
            if (key not in points
                    or doc.get("ops_per_ms", 0.0)
                    > points[key].get("ops_per_ms", 0.0)):
                points[key] = doc
    return points


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("instrumented")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional slowdown (default 0.05 = 5%%)")
    args = ap.parse_args()

    base = load_points(args.baseline)
    inst = load_points(args.instrumented)
    common = sorted(set(base) & set(inst))
    if not common:
        raise SystemExit("error: no matching bench_point records "
                         "(check that both runs used PTO_STATS=json)")

    log_sum = 0.0
    n = 0
    for key in common:
        b = base[key].get("ops_per_ms", 0.0)
        i = inst[key].get("ops_per_ms", 0.0)
        if b <= 0 or i <= 0:
            print(f"  skip {key}: non-positive throughput (base={b}, "
                  f"instrumented={i})")
            continue
        ratio = i / b
        log_sum += math.log(ratio)
        n += 1
        print(f"  {key[0]}/{key[1]} t={key[2]}: base={b:.1f} "
              f"obs={i:.1f} ops/ms  ratio={ratio:.3f}")
    if n == 0:
        raise SystemExit("error: no comparable points")

    geomean = math.exp(log_sum / n)
    overhead = 1.0 - geomean
    print(f"geomean ratio over {n} points: {geomean:.4f} "
          f"(overhead {overhead * 100:+.2f}%, tolerance "
          f"{args.tolerance * 100:.1f}%)")
    if geomean < 1.0 - args.tolerance:
        print("FAIL: observability overhead exceeds tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
