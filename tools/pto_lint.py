#!/usr/bin/env python3
"""pto_lint.py -- static HTM-safety lint for prefix transaction bodies.

Every pto data structure funnels its speculative work through the
prefix<P>(policy, fast, slow, stats) combinator (src/core/prefix.h). The
*fast* lambda is TxCode: it runs inside a best-effort hardware transaction,
so it must not do anything a hardware abort cannot unwind. This lint walks
every prefix call site under src/ds/ (or the files given on the command
line), extracts the fast body, and rejects:

  - allocation / reclamation   new, delete, malloc/free, make_unique, ...
                               (an abort rolls back the tx's stores but not
                               the allocator's host-level bookkeeping)
  - syscalls and I/O           any kernel entry aborts the transaction
  - raw std::atomic_thread_fence  mfence aborts HTM; use P::fence(), whose
                               sim/native implementations are tx-aware
  - unbounded loops            a loop the lint cannot bound will eventually
                               blow the duration budget; annotate loops that
                               are bounded for non-syntactic reasons with
                                 // pto-lint: bounded(EXPR)
                               on the loop's line or the line before it

and emits a per-site static read/write-set footprint estimate checked
against the HTM capacity, parsed at startup from HtmConfig in src/sim/sim.h
via tools/htm_params.py (shared with tools/analyze/'s pto-analyze; a parse
failure is a hard error, never a silent fallback to stale constants). The
estimate is structural -- each .load()/.store()/RMW site
counts as one cache line, loop bodies multiply by the trip count when it is
a literal (or a numeric bounded() annotation) and count once otherwise --
so it is a lower bound, useful for catching prefixes that are over capacity
by construction.

Site extraction is driven by clang's JSON AST dump when a clang binary is
available (exact lambda source ranges); otherwise a token-level fallback
parses the balanced-paren argument list directly. Both feed the same
checks. The fallback is authoritative: if clang extraction finds fewer
sites than the fallback for a file, the fallback's sites are used.

Usage:
  tools/pto_lint.py [--json] [--root DIR] [--no-clang] [files...]

Exit status: 0 clean, 1 violations found, 2 bad invocation.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from htm_params import HtmParamsError, parse_htm_params  # noqa: E402

# HTM capacity limits, parsed from HtmConfig in src/sim/sim.h at startup
# (tools/htm_params.py is the single source of truth shared with
# tools/analyze/). Populated by main(); the placeholders keep lint_file
# usable from tests that set them explicitly.
MAX_WRITE_LINES = None
MAX_READ_LINES = None

ANNOT_RE = re.compile(r"//\s*pto-lint:\s*bounded\(([^)]*)\)")

ALLOC_RE = re.compile(
    r"(?:(?<![\w.:>])\bnew\b(?!\s*\())|"        # new-expression (allow fn named new_())
    r"(?<![\w.:>])\bdelete\b|"
    r"(?<![\w.>])\b(?:malloc|calloc|realloc|aligned_alloc|posix_memalign|"
    r"strdup|free)\s*\(|"
    r"\bmake_(?:unique|shared)\b|"
    r"\bP\s*::\s*(?:template\s+)?(?:make|create|destroy)\b|"
    r"\balloc_node\s*\("
)
SYSCALL_RE = re.compile(
    r"(?<![\w.>])\b(?:open|close|read|write|pread|pwrite|lseek|mmap|munmap|"
    r"ioctl|fcntl|fork|execve?|nanosleep|usleep|sleep|syscall|sched_yield|"
    r"gettimeofday|clock_gettime|printf|fprintf|sprintf|snprintf|puts|fputs|"
    r"fwrite|fread|fopen|fclose|perror|abort|exit)\s*\(|"
    r"\bstd\s*::\s*c(?:out|err|log)\b"
)
FENCE_RE = re.compile(r"\batomic_thread_fence\b")

READ_RE = re.compile(r"\.\s*load\s*\(")
WRITE_RE = re.compile(r"\.\s*store\s*\(")
RMW_RE = re.compile(r"\.\s*(?:compare_exchange_\w+|fetch_\w+|exchange)\s*\(")

SITE_NAME_RE = re.compile(r'PTO_TELEMETRY_SITE\s*\(\s*"([^"]+)"\s*\)')

PREFIX_CALL_RE = re.compile(r"\bprefix\s*(?:<[^;(){}]*>)?\s*\(")

INT_RE = re.compile(r"^\s*(\d+)\s*$")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving offsets and
    newlines so line numbers survive. Annotations are collected separately
    before stripping."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == q:
                    break
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n - 1) + 1
        else:
            i += 1
    return "".join(out)


def line_of(text, off):
    return text.count("\n", 0, off) + 1


def match_paren(text, open_off):
    """Return offset one past the parenthesis/brace/bracket that closes the
    one at open_off, or -1. Assumes comments/strings already stripped."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    close = pairs[text[open_off]]
    depth = 0
    i = open_off
    n = len(text)
    while i < n:
        c = text[i]
        if c in pairs:
            depth += 1
        elif c in ")}]":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def split_top_args(text):
    """Split an argument-list body on top-level commas. `text` excludes the
    surrounding parens; comments/strings already stripped. Handles template
    angle brackets well enough for this codebase (no shift operators at arg
    top level)."""
    args = []
    depth = 0
    angle = 0
    start = 0
    for i, c in enumerate(text):
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        elif c == "<" and depth == 0:
            angle += 1
        elif c == ">" and depth == 0 and angle > 0:
            angle -= 1
        elif c == "," and depth == 0 and angle == 0:
            args.append(text[start:i])
            start = i + 1
    args.append(text[start:])
    return args


def lambda_body(arg):
    """Given an argument that should be a lambda, return (body, body_off)
    where body excludes the braces and body_off is the offset of the text
    after '{' within `arg`. Returns (None, -1) if not a lambda."""
    s = arg
    i = 0
    n = len(s)
    while i < n and s[i].isspace():
        i += 1
    if i >= n or s[i] != "[":
        return None, -1
    i = match_paren(s, i)  # capture list
    if i < 0:
        return None, -1
    brace = s.find("{", i)
    if brace < 0:
        return None, -1
    end = match_paren(s, brace)
    if end < 0:
        return None, -1
    return s[brace + 1 : end - 1], brace + 1


class Loop:
    __slots__ = ("kind", "line", "head", "body", "body_line", "trip", "annot",
                 "head_end_line", "tail_line")

    def __init__(self, kind, line, head, body, body_line, head_end_line=None,
                 tail_line=None):
        self.kind = kind
        self.line = line
        self.head = head
        self.body = body
        self.body_line = body_line
        self.trip = None   # numeric trip count when derivable
        self.annot = None  # bounded(...) annotation text when present
        # Last line of the loop's header construct: the closing paren of a
        # for/while head, or the closing paren of a do-while's trailing
        # condition. Annotations may sit on any header line (headers that
        # span lines put the "loop's line" several lines before the body).
        self.head_end_line = head_end_line if head_end_line is not None \
            else line
        # do-while only: line of the trailing `while` keyword. The header
        # lines of a do loop are disjoint from its body lines; tracking the
        # tail separately keeps a nested loop's annotation inside the body
        # from being misread as the do's.
        self.tail_line = tail_line


LOOP_HEAD_RE = re.compile(r"(?<![\w.:>])\b(for|while|do)\b")


def find_loops(body, base_line):
    """Top-level loops in `body` (stripped text). Returns a list of Loop with
    nested loops discoverable by recursing on loop.body."""
    loops = []
    i = 0
    n = len(body)
    while i < n:
        m = LOOP_HEAD_RE.search(body, i)
        if not m:
            break
        kind = m.group(1)
        at = m.start()
        line = base_line + body.count("\n", 0, at)
        if kind == "do":
            bo = body.find("{", m.end())
            if bo < 0:
                i = m.end()
                continue
            be = match_paren(body, bo)
            if be < 0:
                i = m.end()
                continue
            # Consume the trailing `while (cond);` too: left in the stream it
            # would be re-matched as a phantom standalone while loop (whose
            # own line the annotation on the `do` can never cover).
            body_end = be
            head = ""
            head_end = bo
            tail_at = None
            j = be
            while j < n and body[j].isspace():
                j += 1
            if body.startswith("while", j):
                tail_at = j
                po = body.find("(", j + 5)
                pe = match_paren(body, po) if po >= 0 else -1
                if pe >= 0:
                    head = body[po + 1 : pe - 1]
                    head_end = pe - 1
                    j = pe
                    while j < n and body[j].isspace():
                        j += 1
                    if j < n and body[j] == ";":
                        j += 1
                    be = j
            loops.append(Loop("do", line, head, body[bo + 1 : body_end - 1],
                              base_line + body.count("\n", 0, bo),
                              base_line + body.count("\n", 0, head_end),
                              None if tail_at is None else
                              base_line + body.count("\n", 0, tail_at)))
            i = be
            continue
        po = body.find("(", m.end())
        if po < 0:
            i = m.end()
            continue
        pe = match_paren(body, po)
        if pe < 0:
            i = m.end()
            continue
        head = body[po + 1 : pe - 1]
        head_end_line = base_line + body.count("\n", 0, pe - 1)
        # Loop body: next '{' block, or single statement up to ';'.
        j = pe
        while j < n and body[j].isspace():
            j += 1
        if j < n and body[j] == "{":
            be = match_paren(body, j)
            if be < 0:
                i = pe
                continue
            lb = body[j + 1 : be - 1]
            lb_line = base_line + body.count("\n", 0, j)
            i = be
        else:
            semi = body.find(";", j)
            semi = n if semi < 0 else semi
            lb = body[j:semi]
            lb_line = base_line + body.count("\n", 0, j)
            i = semi + 1
        loops.append(Loop(kind, line, head, lb, lb_line, head_end_line))
    return loops


def for_trip_count(head):
    """Literal trip count of a canonical `for (T i = A; i < B; ++i)` head
    when A and B are integer literals; else None. `for (;;)` returns -1
    (unbounded marker)."""
    parts = head.split(";")
    if len(parts) != 3:
        return None
    init, cond, _ = (p.strip() for p in parts)
    if cond == "":
        return -1
    m = re.search(r"(\w+)\s*(<=|<|!=)\s*(.+)$", cond)
    if not m:
        return None
    bound = m.group(3).strip()
    mb = INT_RE.match(bound)
    if not mb:
        return None
    b = int(mb.group(1))
    mi = re.search(r"=\s*(\d+)\s*$", init)
    if not mi:
        return None
    a = int(mi.group(1))
    trip = b - a
    if m.group(1 if False else 2) == "<=":
        trip += 1
    return max(trip, 0)


def loop_is_syntactically_bounded(loop):
    """True when the loop's own header proves termination: a for loop with a
    non-empty condition comparing the induction variable against a bound.
    while/do and for(;;) need an annotation."""
    if loop.kind != "for":
        return False
    parts = loop.head.split(";")
    if len(parts) != 3:
        return False  # range-for etc.: treat as needing annotation
    cond = parts[1].strip()
    return cond != "" and re.search(r"(<=|<|>=|>|!=)", cond) is not None


def annotation_for(annots, loop):
    """bounded() annotation on the line before the loop or on any of its
    header lines. Headers may span lines (a multi-line for/while head, or a
    do-while whose condition trails the body), so matching only the keyword
    line would attribute the annotation to the wrong line."""
    if loop.kind == "do":
        # Header lines of a do loop: `do` itself (and the line before), plus
        # the trailing `while (cond);` -- but not the body lines in between.
        lines = [loop.line - 1, loop.line]
        if loop.tail_line is not None:
            lines.extend(range(loop.tail_line, loop.head_end_line + 1))
    else:
        lines = range(loop.line - 1, loop.head_end_line + 1)
    for ln in lines:
        if ln in annots:
            return annots[ln]
    return None


def count_accesses(body, base_line, annots, problems, site_label):
    """Recursive footprint estimate: (reads, writes) with loop multipliers.
    Also flags unbounded loops into `problems`."""
    loops = find_loops(body, base_line)
    # Mask loop bodies out of the flat text so top-level accesses are counted
    # exactly once.
    flat = body
    for lp in loops:
        idx = flat.find(lp.body)
        if idx >= 0:
            flat = flat[:idx] + " " * len(lp.body) + flat[idx + len(lp.body):]
    reads = len(READ_RE.findall(flat))
    writes = len(WRITE_RE.findall(flat))
    rmws = len(RMW_RE.findall(flat))
    reads += rmws
    writes += rmws
    for lp in loops:
        lp.annot = annotation_for(annots, lp)
        trip = for_trip_count(lp.head) if lp.kind == "for" else None
        if trip == -1:
            trip = None
        if lp.annot is not None:
            m = INT_RE.match(lp.annot)
            if m:
                trip = int(m.group(1))
        bounded = lp.annot is not None or loop_is_syntactically_bounded(lp)
        if not bounded:
            problems.append({
                "kind": "unbounded-loop",
                "line": lp.line,
                "site": site_label,
                "detail": "%s loop has no syntactic bound; annotate with "
                          "// pto-lint: bounded(EXPR)" % lp.kind,
            })
        mult = trip if trip is not None else 1
        r, w = count_accesses(lp.body, lp.body_line, annots, problems,
                              site_label)
        reads += mult * r
        writes += mult * w
    return reads, writes


class Site:
    def __init__(self, path, line, name, fast_body, fast_line):
        self.path = path
        self.line = line
        self.name = name
        self.fast_body = fast_body
        self.fast_line = fast_line
        self.problems = []
        self.reads = 0
        self.writes = 0


def check_site(site, annots):
    body = site.fast_body
    for regex, kind, why in (
        (ALLOC_RE, "allocation",
         "allocation/reclamation inside a prefix body; aborts cannot unwind "
         "host allocator state"),
        (SYSCALL_RE, "syscall",
         "syscall or I/O inside a prefix body; any kernel entry aborts the "
         "transaction"),
        (FENCE_RE, "raw-fence",
         "raw std::atomic_thread_fence inside a prefix body; use P::fence()"),
    ):
        for m in regex.finditer(body):
            line = site.fast_line + body.count("\n", 0, m.start())
            site.problems.append({
                "kind": kind,
                "line": line,
                "site": site.name,
                "detail": "%s (matched '%s')" % (why, m.group(0).strip()),
            })
    site.reads, site.writes = count_accesses(
        body, site.fast_line, annots, site.problems, site.name)
    if site.writes > MAX_WRITE_LINES:
        site.problems.append({
            "kind": "over-capacity",
            "line": site.line,
            "site": site.name,
            "detail": "static write-set estimate %d lines exceeds HTM "
                      "capacity %d" % (site.writes, MAX_WRITE_LINES),
        })
    if site.reads + site.writes > MAX_READ_LINES:
        site.problems.append({
            "kind": "over-capacity",
            "line": site.line,
            "site": site.name,
            "detail": "static footprint estimate %d lines exceeds tracked "
                      "read-set capacity %d" % (site.reads + site.writes,
                                                MAX_READ_LINES),
        })


def collect_annotations(raw):
    annots = {}
    for i, text_line in enumerate(raw.splitlines(), start=1):
        m = ANNOT_RE.search(text_line)
        if m:
            annots[i] = m.group(1).strip()
    return annots


def extract_sites_regex(path, raw, stripped):
    sites = []
    for m in PREFIX_CALL_RE.finditer(stripped):
        open_off = m.end() - 1
        end = match_paren(stripped, open_off)
        if end < 0:
            continue
        call_line = line_of(stripped, m.start())
        args = split_top_args(stripped[open_off + 1 : end - 1])
        if len(args) < 3:
            continue  # not the combinator (e.g. a doc-comment mention)
        body, rel = lambda_body(args[1])
        if body is None:
            continue
        # Offset of the fast arg within the call text.
        args_off = open_off + 1
        fast_off = args_off + len(args[0]) + 1 + rel
        fast_line = line_of(stripped, fast_off)
        name = None
        mname = SITE_NAME_RE.search(raw[m.start():end])
        if mname:
            name = mname.group(1)
        if name is None:
            name = "%s:%d" % (os.path.basename(path), call_line)
        sites.append(Site(path, call_line, name, body, fast_line))
    return sites


def find_clang():
    for c in ("clang++", "clang", "clang++-18", "clang++-17", "clang++-16"):
        if shutil.which(c):
            return c
    return None


def extract_sites_clang(clang, path, raw, stripped, root):
    """Best-effort clang -ast-dump=json extraction: locate prefix CallExprs
    and slice the fast lambda's source range. Any failure returns None and
    the caller uses the regex extractor."""
    try:
        proc = subprocess.run(
            [clang, "-x", "c++", "-std=c++20", "-fsyntax-only",
             "-I", os.path.join(root, "src"),
             "-Xclang", "-ast-dump=json", path],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0 or not proc.stdout:
            return None
        ast = json.loads(proc.stdout)
    except Exception:
        return None

    sites = []

    def walk(node):
        if not isinstance(node, dict):
            return
        if node.get("kind") == "CallExpr":
            inner = node.get("inner", [])
            callee_txt = json.dumps(inner[0]) if inner else ""
            if '"prefix"' in callee_txt and len(inner) >= 3:
                lam = None
                for cand in inner[1:]:
                    t = json.dumps(cand)
                    if '"LambdaExpr"' in t:
                        lam = cand
                        break
                rng = (lam or {}).get("range", {})
                b = rng.get("begin", {}).get("offset")
                e = rng.get("end", {}).get("offset")
                if b is not None and e is not None and e > b:
                    text = stripped[b : e + 1]
                    body, rel = lambda_body(text)
                    if body is not None:
                        call_line = line_of(stripped, b)
                        mname = SITE_NAME_RE.search(
                            raw[b : b + 4096])
                        name = mname.group(1) if mname else (
                            "%s:%d" % (os.path.basename(path), call_line))
                        sites.append(Site(path, call_line, name, body,
                                          line_of(stripped, b + rel)))
        for child in node.get("inner", []) or []:
            walk(child)

    try:
        walk(ast)
    except RecursionError:
        return None
    return sites


def lint_file(path, root, clang):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    stripped = strip_comments_and_strings(raw)
    annots = collect_annotations(raw)
    sites = extract_sites_regex(path, raw, stripped)
    if clang:
        csites = extract_sites_clang(clang, path, raw, stripped, root)
        # The regex extractor is authoritative on coverage: only prefer the
        # clang result when it found at least as many call sites.
        if csites is not None and len(csites) >= len(sites):
            sites = csites
    for s in sites:
        check_site(s, annots)
    return sites


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: all headers in src/ds/)")
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON on stdout")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--no-clang", action="store_true",
                    help="skip clang AST extraction even if clang is present")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    # HTM capacity limits come from the simulator's HtmConfig, never from
    # constants duplicated here (tools/htm_params.py; drift is a hard error).
    global MAX_WRITE_LINES, MAX_READ_LINES
    sim_header = os.path.join(root, "src", "sim", "sim.h")
    try:
        params = parse_htm_params(sim_header)
    except HtmParamsError as e:
        print("pto_lint: %s" % e, file=sys.stderr)
        return 2
    MAX_WRITE_LINES = params["max_write_lines"]
    MAX_READ_LINES = params["max_read_lines"]

    files = args.files
    if not files:
        ds = os.path.join(root, "src", "ds")
        files = sorted(
            os.path.join(dp, f)
            for dp, _, fs in os.walk(ds)
            for f in fs if f.endswith((".h", ".hpp", ".cc", ".cpp")))
    if not files:
        print("pto_lint: no input files", file=sys.stderr)
        return 2

    clang = None if args.no_clang else find_clang()
    all_sites = []
    for path in files:
        if not os.path.isfile(path):
            print("pto_lint: no such file: %s" % path, file=sys.stderr)
            return 2
        all_sites.extend(lint_file(path, root, clang))

    violations = [dict(p, file=s.path) for s in all_sites for p in s.problems]

    if args.json:
        site_counts = {}
        for s in all_sites:
            rel = os.path.relpath(s.path, root)
            site_counts[rel] = site_counts.get(rel, 0) + 1
        doc = {
            "tool": "pto_lint",
            "extractor": "clang" if clang else "regex",
            "htm_params": params,
            "htm_params_source": os.path.relpath(sim_header, root),
            "max_write_lines": MAX_WRITE_LINES,
            "max_read_lines": MAX_READ_LINES,
            "files": len(files),
            "site_counts": site_counts,
            "sites": [{
                "file": os.path.relpath(s.path, root),
                "line": s.line,
                "site": s.name,
                "est_read_lines": s.reads,
                "est_write_lines": s.writes,
                "violations": s.problems,
            } for s in all_sites],
            "violation_count": len(violations),
            "ok": not violations,
        }
        json.dump(doc, sys.stdout, indent=2)
        print()
    else:
        print("pto_lint: %d prefix site(s) in %d file(s) [%s extractor]"
              % (len(all_sites), len(files), "clang" if clang else "regex"))
        for s in all_sites:
            print("  %-28s %s:%d  est footprint: %d read / %d write lines"
                  % (s.name, os.path.relpath(s.path, root), s.line,
                     s.reads, s.writes))
        for v in violations:
            print("%s:%d: error: [%s] %s (site %s)"
                  % (os.path.relpath(v["file"], root), v["line"], v["kind"],
                     v["detail"], v["site"]))
        print("pto_lint: %d violation(s)" % len(violations))

    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
