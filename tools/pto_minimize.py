#!/usr/bin/env python3
"""pto_minimize.py -- delta-debug a failing explored schedule to a minimal witness.

A failing explored run (PTO_SCHED=pct/rand) dumps its decision list via
PTO_SCHED_DUMP=<file>; each non-comment line is one "step tid" scheduling
decision. Replaying the file (PTO_SCHED=replay:<file>) reproduces the run
byte-identically, and -- because the replay policy falls back to the incumbent
thread at steps with no recorded decision -- any *subset* of the decision list
is still a valid schedule. That makes the list ddmin-able: this tool shrinks
it to a 1-minimal set of preemptions that still fails, which is usually a
handful of context switches one can read as a bug narrative.

Usage:
  pto_minimize.py --schedule dump.txt [--out minimal.txt] [--grep REGEX]
                  [--timeout 120] -- <failing command...>

The command is re-run with PTO_SCHED=replay:<candidate> injected into its
environment (PTO_HTM_FAULTS etc. pass through untouched, so export the rest
of the failure's replay token before invoking). "Failing" means nonzero exit
status (a timeout counts), or -- with --grep -- the regex appearing in the
combined stdout+stderr.

Exit status: 0 with the minimal schedule written/printed, 1 when the full
schedule does not reproduce the failure, 2 on usage errors.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile


def parse_args(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--schedule", required=True,
                    help="PTO_SCHED_DUMP file of the failing run")
    ap.add_argument("--out", default=None,
                    help="write the minimal schedule here (default: "
                         "<schedule>.min)")
    ap.add_argument("--grep", default=None,
                    help="failure predicate: regex over combined output "
                         "(default: nonzero exit status)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-run timeout in seconds; a timeout counts as a "
                         "failure (default 120)")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress per-probe progress lines")
    if "--" not in argv:
        ap.error("missing '--' separator before the failing command")
    split = argv.index("--")
    args = ap.parse_args(argv[:split])
    args.command = argv[split + 1:]
    if not args.command:
        ap.error("no command given after '--'")
    return args


def load_schedule(path):
    """Returns (header_lines, decision_lines)."""
    header, decisions = [], []
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line.strip():
                continue
            if line.lstrip().startswith("#"):
                header.append(line)
            else:
                decisions.append(line)
    return header, decisions


class Prober:
    def __init__(self, args, header):
        self.args = args
        self.header = header
        self.runs = 0
        self.pattern = re.compile(args.grep) if args.grep else None

    def fails(self, decisions):
        """Run the command against this candidate decision list."""
        self.runs += 1
        fd, path = tempfile.mkstemp(prefix="pto_min_", suffix=".txt")
        try:
            with os.fdopen(fd, "w") as f:
                for line in self.header:
                    f.write(line + "\n")
                for line in decisions:
                    f.write(line + "\n")
            env = dict(os.environ)
            env["PTO_SCHED"] = "replay:" + path
            env.pop("PTO_SCHED_DUMP", None)  # don't clobber the evidence
            try:
                proc = subprocess.run(
                    self.args.command, env=env, timeout=self.args.timeout,
                    stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
            except subprocess.TimeoutExpired:
                return True
            if self.pattern is not None:
                return bool(self.pattern.search(
                    proc.stdout.decode("utf-8", "replace")))
            return proc.returncode != 0
        finally:
            os.unlink(path)

    def note(self, msg):
        if not self.args.quiet:
            print(f"[pto_minimize] {msg}", file=sys.stderr)


def ddmin(prober, decisions):
    """Classic ddmin: shrink to a 1-minimal failing subset."""
    n = 2
    while len(decisions) >= 2:
        chunk = max(1, len(decisions) // n)
        chunks = [decisions[i:i + chunk]
                  for i in range(0, len(decisions), chunk)]
        reduced = False
        # Try each chunk alone, then each complement.
        for candidate_set in ([c for c in chunks] +
                              [sum(chunks[:i] + chunks[i + 1:], [])
                               for i in range(len(chunks))]):
            if len(candidate_set) == len(decisions) or not candidate_set:
                continue
            if prober.fails(candidate_set):
                prober.note(
                    f"reduced {len(decisions)} -> {len(candidate_set)} "
                    f"decisions (probe {prober.runs})")
                decisions = candidate_set
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(decisions):
                break
            n = min(len(decisions), 2 * n)
    # Final 1-minimality pass: drop single decisions.
    i = 0
    while i < len(decisions):
        candidate = decisions[:i] + decisions[i + 1:]
        if candidate and prober.fails(candidate):
            decisions = candidate
        else:
            i += 1
    return decisions


def main(argv):
    args = parse_args(argv)
    header, decisions = load_schedule(args.schedule)
    if not decisions:
        print("[pto_minimize] schedule has no decisions; nothing to shrink",
              file=sys.stderr)
        return 2
    prober = Prober(args, header)
    prober.note(f"{len(decisions)} decisions; verifying the failure "
                f"reproduces under replay...")
    if not prober.fails(decisions):
        print("[pto_minimize] full schedule does not reproduce the failure "
              "(is the rest of the replay token -- PTO_HTM_FAULTS, seeds -- "
              "exported?)", file=sys.stderr)
        return 1
    minimal = ddmin(prober, decisions)
    out = args.out or args.schedule + ".min"
    with open(out, "w") as f:
        for line in header:
            f.write(line + "\n")
        f.write(f"# minimized: {len(decisions)} -> {len(minimal)} decisions "
                f"in {prober.runs} probes\n")
        for line in minimal:
            f.write(line + "\n")
    print(f"[pto_minimize] minimal witness: {len(minimal)} decisions "
          f"({prober.runs} probes) -> {out}")
    for line in minimal:
        print(f"  {line}")
    print(f"replay with: PTO_SCHED=replay:{out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
