// Minimal ucontext-based fiber. The simulator multiplexes all virtual
// threads on the single host thread, switching only at instrumented points,
// so no host synchronization is required.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace pto::sim {

class Fiber {
 public:
  /// Creates a fiber that will execute `fn` when first switched to and
  /// resume `return_to` when fn returns.
  Fiber(std::size_t stack_bytes, std::function<void()> fn,
        ucontext_t* return_to);
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  ucontext_t* context() { return &ctx_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);

  ucontext_t ctx_{};
  std::unique_ptr<char[]> stack_;
  std::function<void()> fn_;
};

}  // namespace pto::sim
