// Fibers for the simulator: all virtual threads are multiplexed on the single
// host thread, switching only at instrumented points, so no host
// synchronization is required.
//
// Two interchangeable context-switch backends sit behind ExecContext:
//
//  * PTO_FAST_FIBER (x86-64, CMake option, default on): a hand-rolled
//    callee-saved-register switch — ~15 instructions, no syscalls. glibc's
//    swapcontext makes a sigprocmask syscall per switch, which dominates the
//    simulator's yield cost; the simulator never changes signal masks, so the
//    fast path simply doesn't touch them.
//  * ucontext fallback (portable, and required under ASan, whose fake-stack
//    bookkeeping only understands the intercepted ucontext API).
//
// Yielding fibers switch directly to their successor (scheduler.cpp picks
// it); the host context is entered only at run() start and teardown.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#if !PTO_FAST_FIBER
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define PTO_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PTO_ASAN_FIBERS 1
#endif
#endif
#if PTO_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#endif

namespace pto::sim {

#if PTO_FAST_FIBER

/// Saved execution state: just the stack pointer — everything else lives on
/// the owning stack (callee-saved registers, mxcsr, x87 control word).
struct ExecContext {
  void* sp = nullptr;
};

extern "C" void pto_ctx_switch(void** save_sp, void* resume_sp);

/// Suspend the current context into `save` and resume `resume`.
inline void ctx_switch(ExecContext& save, ExecContext& resume) {
  pto_ctx_switch(&save.sp, resume.sp);
}

#else  // ucontext fallback

struct ExecContext {
  ucontext_t uc{};
};

inline void ctx_switch(ExecContext& save, ExecContext& resume) {
  swapcontext(&save.uc, &resume.uc);
}

#endif

class Fiber {
 public:
  /// Creates a fiber that will execute `fn` when first switched to. `fn` must
  /// never return: a finishing virtual thread hands control to the scheduler
  /// (Runtime::on_fiber_done), which switches away forever.
  Fiber(std::size_t stack_bytes, std::function<void()> fn);
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  ExecContext& context() { return ctx_; }

  /// Erase ASan shadow poison over the whole fiber stack. Call before a
  /// longjmp taken while running on this fiber: ASan's no-return handler
  /// unpoisons the *host* thread stack (it cannot know execution is on a
  /// heap-allocated stack), so the redzones of the frames the jump abandons
  /// would otherwise linger here as stale poison and fault later, unrelated
  /// frames — including the sanitizer runtime's own uninstrumented ones.
  /// No-op outside ASan builds.
  void unpoison_stack() {
#if PTO_ASAN_FIBERS
    __asan_unpoison_memory_region(stack_.get(), stack_bytes_);
#endif
  }

 private:
#if PTO_FAST_FIBER
  static void entry(void* self);
#else
  static void trampoline(unsigned hi, unsigned lo);
#endif

  ExecContext ctx_{};
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_ = 0;
  std::function<void()> fn_;
};

}  // namespace pto::sim
