// Fibers for the simulator: all virtual threads are multiplexed on the single
// host thread, switching only at instrumented points, so no host
// synchronization is required.
//
// Two interchangeable context-switch backends sit behind ExecContext:
//
//  * PTO_FAST_FIBER (x86-64, CMake option, default on): a hand-rolled
//    callee-saved-register switch — ~15 instructions, no syscalls. glibc's
//    swapcontext makes a sigprocmask syscall per switch, which dominates the
//    simulator's yield cost; the simulator never changes signal masks, so the
//    fast path simply doesn't touch them.
//  * ucontext fallback (portable, and required under ASan, whose fake-stack
//    bookkeeping only understands the intercepted ucontext API).
//
// Yielding fibers switch directly to their successor (scheduler.cpp picks
// it); the host context is entered only at run() start and teardown.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#if !PTO_FAST_FIBER
#include <ucontext.h>
#endif

namespace pto::sim {

#if PTO_FAST_FIBER

/// Saved execution state: just the stack pointer — everything else lives on
/// the owning stack (callee-saved registers, mxcsr, x87 control word).
struct ExecContext {
  void* sp = nullptr;
};

extern "C" void pto_ctx_switch(void** save_sp, void* resume_sp);

/// Suspend the current context into `save` and resume `resume`.
inline void ctx_switch(ExecContext& save, ExecContext& resume) {
  pto_ctx_switch(&save.sp, resume.sp);
}

#else  // ucontext fallback

struct ExecContext {
  ucontext_t uc{};
};

inline void ctx_switch(ExecContext& save, ExecContext& resume) {
  swapcontext(&save.uc, &resume.uc);
}

#endif

class Fiber {
 public:
  /// Creates a fiber that will execute `fn` when first switched to. `fn` must
  /// never return: a finishing virtual thread hands control to the scheduler
  /// (Runtime::on_fiber_done), which switches away forever.
  Fiber(std::size_t stack_bytes, std::function<void()> fn);
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  ExecContext& context() { return ctx_; }

 private:
#if PTO_FAST_FIBER
  static void entry(void* self);
#else
  static void trampoline(unsigned hi, unsigned lo);
#endif

  ExecContext ctx_{};
  std::unique_ptr<char[]> stack_;
  std::function<void()> fn_;
};

}  // namespace pto::sim
