#include "sim/fiber.h"

#include <cstdint>
#include <cstdlib>

namespace pto::sim {

#if PTO_FAST_FIBER

// System V AMD64 switch: save the callee-saved registers and FP control state
// on the current stack, swap stack pointers, restore, return on the new
// stack. A freshly made fiber's fabricated frame "returns" into
// pto_ctx_entry, which forwards the argument planted in rbx to the function
// planted in r12.
asm(R"(
.text
.p2align 4
.globl pto_ctx_switch
.type pto_ctx_switch, @function
pto_ctx_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
.size pto_ctx_switch, .-pto_ctx_switch

.globl pto_ctx_entry
.type pto_ctx_entry, @function
pto_ctx_entry:
    movq %rbx, %rdi
    jmp *%r12
.size pto_ctx_entry, .-pto_ctx_entry
)");

extern "C" void pto_ctx_entry();

void Fiber::entry(void* self) {
  static_cast<Fiber*>(self)->fn_();
  std::abort();  // fn must switch away forever instead of returning
}

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> fn)
    : stack_(new char[stack_bytes]), stack_bytes_(stack_bytes),
      fn_(std::move(fn)) {
  // Fabricate the frame pto_ctx_switch restores from. Memory layout, from
  // sp upward: [mxcsr:4][fcw:2][pad:2] r15 r14 r13 r12 rbx rbp [ret addr].
  // The restore sequence pops six registers and `ret`s into pto_ctx_entry
  // with rsp = sp+64; the ABI wants rsp ≡ 8 (mod 16) at function entry, so
  // sp ≡ 8 (mod 16), placed 56 bytes below the aligned stack top.
  auto top = (reinterpret_cast<std::uintptr_t>(stack_.get()) + stack_bytes) &
             ~std::uintptr_t{15};
  auto sp = top - 120;  // ≡ 8 (mod 16); entry runs with rsp = top-56
  auto* words = reinterpret_cast<std::uint64_t*>(sp);
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  *reinterpret_cast<std::uint32_t*>(sp) = mxcsr;
  *reinterpret_cast<std::uint16_t*>(sp + 4) = fcw;
  words[1] = 0;                                             // r15
  words[2] = 0;                                             // r14
  words[3] = 0;                                             // r13
  words[4] = reinterpret_cast<std::uint64_t>(&Fiber::entry);  // r12: target
  words[5] = reinterpret_cast<std::uint64_t>(this);           // rbx: argument
  words[6] = 0;                                             // rbp
  words[7] = reinterpret_cast<std::uint64_t>(&pto_ctx_entry);  // return addr
  ctx_.sp = reinterpret_cast<void*>(sp);
}

#else  // ucontext fallback

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
             static_cast<std::uintptr_t>(lo);
  auto* self = reinterpret_cast<Fiber*>(ptr);
  self->fn_();
  std::abort();  // fn must switch away forever instead of returning
}

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> fn)
    : stack_(new char[stack_bytes]), stack_bytes_(stack_bytes),
      fn_(std::move(fn)) {
  if (getcontext(&ctx_.uc) != 0) std::abort();
  ctx_.uc.uc_stack.ss_sp = stack_.get();
  ctx_.uc.uc_stack.ss_size = stack_bytes;
  ctx_.uc.uc_link = nullptr;
  auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_.uc, reinterpret_cast<void (*)()>(&trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xFFFFFFFFu));
}

#endif

}  // namespace pto::sim
