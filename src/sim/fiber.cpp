#include "sim/fiber.h"

#include <cstdint>
#include <cstdlib>

namespace pto::sim {

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
             static_cast<std::uintptr_t>(lo);
  auto* self = reinterpret_cast<Fiber*>(ptr);
  self->fn_();
  // Returning lets ucontext resume ctx_.uc_link (the scheduler).
}

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> fn,
             ucontext_t* return_to)
    : stack_(new char[stack_bytes]), fn_(std::move(fn)) {
  if (getcontext(&ctx_) != 0) std::abort();
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = return_to;
  auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xFFFFFFFFu));
}

}  // namespace pto::sim
