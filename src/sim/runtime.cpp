// Runtime construction, the public run() entry point, and thin hook wrappers.
#include "sim/runtime_internal.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "check/check.h"
#include "common/warn.h"
#include "metrics/metrics.h"
#include "telemetry/prof.h"
#include "telemetry/trace.h"

namespace pto::sim {

namespace prof = ::pto::telemetry::prof;
namespace check = ::pto::check;

namespace internal {

Runtime* g_rt = nullptr;
GlobalMemory g_mem;

Runtime::Runtime(unsigned nthreads, const Config& c)
    : cfg(c), xopts(explore::resolved(c.explore)), threads([&] {
        // Per-line conflict tracking is a kMaxThreads-bit ThreadSet and the
        // dispatcher packs the tid into 10 key bits, so reject early with a
        // clear message rather than corrupting line state.
        if (nthreads == 0 || nthreads > kMaxThreads) {
          throw std::invalid_argument(
              "sim::Runtime: nthreads must be in [1, 1024] (per-line thread "
              "sets are kMaxThreads = 1024 bits wide)");
        }
        return nthreads;
      }()) {
  // Lines persist across runs (fixtures built in a setup run stay valid), so
  // the per-line scan width is the widest any run has needed since the last
  // reset_memory() — a narrow run after a wide one must still see (and
  // clear) the high words the wide run populated.
  const unsigned want_words = (nthreads + 63) / 64;
  if (want_words > g_mem.line_words) g_mem.line_words = want_words;
  nwords = g_mem.line_words;
  if (xopts.adversarial()) {
    explorer =
        std::make_unique<explore::internal::Explorer>(xopts, nthreads);
  }
  for (unsigned i = 0; i < nthreads; ++i) {
    threads[i].rng.reseed(c.seed * 0x9E3779B97F4A7C15ull + i + 1);
    if (xopts.fault_rate > 0.0) {
      threads[i].fault_rng.reseed(xopts.fault_seed * 0x9E3779B97F4A7C15ull +
                                  i + 0xFA17ull);
    }
    // Pre-reserve transaction footprints to the configured HTM limits so
    // the first transactions never reallocate mid-speculation.
    TxDesc& tx = threads[i].tx;
    tx.rlines.reserve(c.htm.max_read_lines);
    tx.wlines.reserve(c.htm.max_write_lines);
    tx.undo.reserve(c.htm.max_write_lines);
  }
}

std::size_t fiber_stack_bytes(unsigned nthreads) {
  if (const char* v = std::getenv("PTO_SIM_STACK_KB");
      v != nullptr && *v != '\0') {
    char* end = nullptr;
    auto kb = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0' && kb >= 16) {
      return static_cast<std::size_t>(kb) * 1024;
    }
    warn_once("env.PTO_SIM_STACK_KB",
              "ignoring invalid PTO_SIM_STACK_KB='%s' (want an integer >= 16)",
              v);
  }
  return nthreads <= kFiberStackSmallCutoff ? kFiberStack : kFiberStackLarge;
}

}  // namespace internal

using namespace internal;

void ThreadStats::accumulate(const ThreadStats& o) {
  dispatches += o.dispatches;
  loads += o.loads;
  stores += o.stores;
  cas_ops += o.cas_ops;
  rmws += o.rmws;
  fences += o.fences;
  fences_elided += o.fences_elided;
  allocs += o.allocs;
  frees += o.frees;
  tx_started += o.tx_started;
  tx_commits += o.tx_commits;
  for (unsigned i = 0; i < kTxCodeCount; ++i) tx_aborts[i] += o.tx_aborts[i];
  tx_cycles += o.tx_cycles;
  ops_completed += o.ops_completed;
}

std::uint64_t RunResult::makespan() const {
  std::uint64_t m = 0;
  for (auto c : clocks) m = std::max(m, c);
  return m;
}

ThreadStats RunResult::totals() const {
  ThreadStats t;
  for (const auto& s : stats) t.accumulate(s);
  return t;
}

double RunResult::ops_per_msec() const {
  std::uint64_t ms = makespan();
  if (ms == 0) return 0.0;
  // 3.4 GHz, the paper's i7-4770: 3.4e6 cycles per millisecond.
  return static_cast<double>(totals().ops_completed) /
         (static_cast<double>(ms) / 3.4e6);
}

RunResult run(unsigned nthreads, const Config& cfg,
              const std::function<void(unsigned)>& body) {
  if (nthreads == 0 || nthreads > kMaxThreads) {
    throw std::invalid_argument("sim::run: thread count out of range");
  }
  if (g_rt != nullptr) {
    throw std::logic_error("sim::run: nested simulations are not supported");
  }
  Runtime rt(nthreads, cfg);
  const std::uint64_t uaf_before = g_mem.uaf_count;
  if (PTO_UNLIKELY(telemetry::trace_on())) {
    telemetry::trace_run_begin(nthreads, cfg.seed);
  }
  g_rt = &rt;
  if (PTO_UNLIKELY(check::on())) check::on_run_begin(nthreads);
  if (PTO_UNLIKELY(metrics::armed())) metrics::sim_run_begin(nthreads);
  const std::size_t stack_bytes = fiber_stack_bytes(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    rt.threads[i].fiber =
        std::make_unique<Fiber>(stack_bytes, [i, &body, &rt] {
          body(i);
          rt.on_fiber_done();  // switches away forever
        });
  }
  rt.run_all();
  if (PTO_UNLIKELY(check::on())) check::on_run_end();
  if (PTO_UNLIKELY(metrics::armed())) {
    std::uint64_t final_vt = 0;
    for (const auto& t : rt.threads) final_vt = std::max(final_vt, t.clock);
    metrics::sim_run_end(final_vt);
  }
  g_rt = nullptr;
  // Rewrite the trace file at every run boundary so a partially-finished
  // bench still leaves a loadable trace behind.
  if (PTO_UNLIKELY(telemetry::trace_on())) telemetry::trace_flush();

  RunResult res;
  res.uaf_count = g_mem.uaf_count - uaf_before;
  for (auto& t : rt.threads) {
    res.stats.push_back(t.stats);
    res.clocks.push_back(t.clock);
  }
  return res;
}

bool active() { return g_rt != nullptr; }
unsigned thread_id() { return g_rt ? g_rt->cur : 0; }
unsigned num_threads() {
  return g_rt ? static_cast<unsigned>(g_rt->threads.size()) : 1;
}
std::uint64_t now() { return g_rt ? g_rt->me().clock : 0; }

std::uint64_t rnd() {
  if (g_rt) return g_rt->me().rng.next();
  static SplitMix64 host_rng(0xF1C5EEDull);  // host-side setup code
  return host_rng.next();
}

namespace {
std::uint64_t g_seq = 0;
}  // namespace

std::uint64_t global_seq() { return ++g_seq; }

void op_done(std::uint64_t n) {
  if (g_rt == nullptr) return;
  g_rt->me().stats.ops_completed += n;
  if (PTO_UNLIKELY(check::on())) check::on_op_done(g_rt->cur);
  if (PTO_UNLIKELY(prof::on())) {
    prof::on_charge(prof::kClassBench, n * g_rt->cfg.cost.bench_op_overhead);
  }
  g_rt->charge(n * g_rt->cfg.cost.bench_op_overhead);
  g_rt->check_doom();
}

void cpu_pause() {
  if (!g_rt) return;
  if (PTO_UNLIKELY(prof::on())) {
    prof::on_charge(prof::kClassPause, g_rt->cfg.cost.pause);
  }
  if (PTO_UNLIKELY(g_rt->explorer != nullptr)) {
    // Under strict-priority PCT a spinning thread would monopolize the
    // schedule; a pause deprioritizes it so the threads it waits on can run.
    g_rt->explorer->on_pause(g_rt->cur);
  }
  g_rt->charge(g_rt->cfg.cost.pause);
  g_rt->check_doom();
}

// Outside a simulation (fixture setup/teardown on the host), memory hooks
// degrade to raw accesses: no costs, no conflicts, no stats — but frees still
// poison lines so a later in-simulation use-after-free is caught.

std::uint64_t mem_load(const void* addr, unsigned size, unsigned order) {
  if (g_rt) return g_rt->do_load(addr, size, order);
  return raw_read(addr, size);
}
void mem_store(void* addr, unsigned size, std::uint64_t val, unsigned order) {
  if (g_rt) {
    g_rt->do_store(addr, size, val, order);
    return;
  }
  raw_write(addr, size, val);
}
bool mem_cas(void* addr, unsigned size, std::uint64_t& expected,
             std::uint64_t desired) {
  if (g_rt) return g_rt->do_cas(addr, size, expected, desired);
  std::uint64_t cur = raw_read(addr, size);
  if (cur == expected) {
    raw_write(addr, size, desired);
    return true;
  }
  expected = cur;
  return false;
}
std::uint64_t mem_fetch_add(void* addr, unsigned size, std::uint64_t delta) {
  if (g_rt) return g_rt->do_fetch_add(addr, size, delta);
  std::uint64_t old = raw_read(addr, size);
  raw_write(addr, size, old + delta);
  return old;
}
void fence() {
  if (g_rt) g_rt->do_fence();
}

void* alloc(std::size_t bytes) {
  if (g_rt) return g_rt->do_alloc(bytes);
  return g_mem.arena.allocate(bytes);
}

void dealloc(void* p, std::size_t bytes) {
  if (g_rt) {
    g_rt->do_dealloc(p, bytes);
    return;
  }
  auto first = reinterpret_cast<std::uintptr_t>(p) / kCacheLine;
  auto last =
      (reinterpret_cast<std::uintptr_t>(p) + (bytes ? bytes - 1 : 0)) /
      kCacheLine;
  for (auto la = first; la <= last; ++la) {
    LineState& L = g_mem.lines.line_by_index(la);
    L.freed = true;
    L.sharers.reset(g_mem.line_words);
  }
  std::memset(p, 0xDD, bytes);
}

void reset_memory() {
  assert(g_rt == nullptr && "reset_memory during a simulation");
  g_mem.lines.clear();
  g_mem.arena.reset();
  g_mem.line_words = 1;
  g_mem.alloc_word = 0;
}

std::uint64_t uaf_count() { return g_mem.uaf_count; }

}  // namespace pto::sim
