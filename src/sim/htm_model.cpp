// Best-effort HTM model: flat nesting, in-place writes with an undo log,
// requester-wins conflict resolution, capacity/duration/spurious aborts.
#include "sim/runtime_internal.h"

#include "check/check.h"
#include "telemetry/prof.h"
#include "telemetry/trace.h"

namespace pto::sim::internal {

namespace prof = ::pto::telemetry::prof;
namespace check = ::pto::check;

void Runtime::release_tx_footprint(TxDesc& tx, unsigned tid) {
  // Tracked lines are held as direct LineState pointers (regions never move
  // and are only reclaimed by reset_memory, which cannot run mid-tx).
  for (LineState* l : tx.rlines) l->tx_readers.clear(tid);
  for (LineState* l : tx.wlines) {
    if (l->tx_writer == tid) l->tx_writer = kNobody;
  }
  tx.rlines.clear();
  tx.wlines.clear();
  tx.undo.clear();
}

void Runtime::doom(unsigned victim, unsigned cause, std::uintptr_t line) {
  VThread& vt = threads[victim];
  TxDesc& tx = vt.tx;
  assert(tx.active && !tx.doomed && victim != cur);
  // Roll back in-place writes so the requester (and everyone else) observes
  // pre-transaction state immediately.
  for (auto it = tx.undo.rbegin(); it != tx.undo.rend(); ++it) {
    raw_write(it->addr, it->size, it->old_val);
  }
  release_tx_footprint(tx, victim);
  if (PTO_UNLIKELY(check::on())) {
    // After the rollback, before the aggressor's own write lands: the
    // checker compares the victim's logged reads against restored memory.
    check::on_tx_doomed(victim, line);
  }
  tx.doomed = true;
  tx.doom_cause = cause;
  vt.clock += cfg.cost.tx_abort_penalty;
  // The victim sits in the ready heap (it is suspended); its key and the
  // cached yield threshold must track the penalty. Under an adversarial
  // policy there is no heap to fix — the Explorer ignores clocks.
  if (PTO_LIKELY(explorer == nullptr)) on_clock_raised(victim);
  vt.stats.tx_aborts[cause]++;
  vt.stats.tx_cycles += vt.clock - tx.start;
  if (PTO_UNLIKELY(telemetry::trace_on())) {
    telemetry::trace_tx_abort(victim, tx.start, vt.clock, cause);
  }
  if (PTO_UNLIKELY(prof::on())) {
    // The current thread is the aggressor whose access doomed the victim;
    // everything since the victim's outermost begin (penalty included) is
    // wasted speculative work.
    prof::on_conflict(victim, cur, line, vt.clock - tx.start);
  }
}

void Runtime::check_doom() {
  VThread& t = me();
  if (PTO_LIKELY(!t.tx.doomed)) return;
  TxDesc& tx = t.tx;
  unsigned cause = tx.doom_cause;
  tx.doomed = false;
  tx.active = false;
  tx.depth = 0;
  if (PTO_UNLIKELY(prof::on())) prof::on_abort_unwind();
  // This longjmp runs on a fiber stack; ASan's no-return handler only knows
  // how to unpoison the host thread stack, so clear the abandoned frames'
  // redzones ourselves (no-op outside ASan builds).
  t.fiber->unpoison_stack();
  std::longjmp(tx.env, static_cast<int>(cause));
}

void Runtime::self_abort(unsigned cause, unsigned char user_code) {
  VThread& t = me();
  TxDesc& tx = t.tx;
  assert(tx.active && !tx.doomed);
  for (auto it = tx.undo.rbegin(); it != tx.undo.rend(); ++it) {
    raw_write(it->addr, it->size, it->old_val);
  }
  if (PTO_UNLIKELY(check::on())) {
    check::on_tx_self_abort(cur, cause, tx.rlines.size(), tx.wlines.size());
  }
  release_tx_footprint(tx, cur);
  t.last_user_code = user_code;
  t.stats.tx_aborts[cause]++;
  t.clock += cfg.cost.tx_abort_penalty;
  t.stats.tx_cycles += t.clock - tx.start;
  if (PTO_UNLIKELY(telemetry::trace_on())) {
    telemetry::trace_tx_abort(cur, tx.start, t.clock, cause);
  }
  tx.active = false;
  tx.depth = 0;
  if (PTO_UNLIKELY(prof::on())) prof::on_abort_unwind();
  // See check_doom(): unpoison the fiber stack before longjmp under ASan.
  t.fiber->unpoison_stack();
  std::longjmp(tx.env, static_cast<int>(cause));
}

void Runtime::tx_access_checks() {
  VThread& t = me();
  if (t.clock - t.tx.start > cfg.htm.max_duration) {
    self_abort(TX_ABORT_DURATION, TX_CODE_NONE);
  }
  if (PTO_UNLIKELY(cfg.htm.spurious_abort_prob > 0.0)) {
    // Deterministic per-thread coin flip.
    double u = static_cast<double>(t.rng.next() >> 11) * 0x1.0p-53;
    if (u < cfg.htm.spurious_abort_prob) {
      self_abort(TX_ABORT_SPURIOUS, TX_CODE_NONE);
    }
  }
  if (PTO_UNLIKELY(xopts.fault_rate > 0.0)) {
    // Injected spurious/interrupt abort (explore fault model). Drawn from
    // the dedicated fault stream so the workload RNG is untouched.
    double u = static_cast<double>(t.fault_rng.next() >> 11) * 0x1.0p-53;
    if (u < xopts.fault_rate) {
      self_abort(TX_ABORT_SPURIOUS, TX_CODE_NONE);
    }
  }
}

}  // namespace pto::sim::internal

namespace pto::sim {

using namespace internal;

unsigned tx_begin() {
  // Outside a simulation there is no HTM: report a non-retryable abort so
  // prefix() immediately runs the fallback (host-side setup code).
  if (g_rt == nullptr) return TX_ABORT_OTHER;
  Runtime& rt = *g_rt;
  VThread& t = rt.me();
  if (t.tx.active) {
    ++t.tx.depth;
    return TX_STARTED;
  }
  if (PTO_UNLIKELY(prof::on())) {
    prof::on_charge(prof::kClassTxOverhead, rt.cfg.cost.tx_begin);
  }
  rt.charge(rt.cfg.cost.tx_begin);
  // Cannot be doomed here: tx was not active while we were switched out.
  TxDesc& tx = t.tx;
  tx.active = true;
  tx.doomed = false;
  tx.start = t.clock;
  tx.user_code = TX_CODE_NONE;
  tx.rcap = rt.cfg.htm.max_read_lines;
  tx.wcap = rt.cfg.htm.max_write_lines;
  if (PTO_UNLIKELY(rt.xopts.fault_rate > 0.0)) {
    // Capacity jitter: with the fault probability, this transaction runs
    // with a uniformly reduced footprint budget — the best-effort "your
    // capacity varies with cache pressure" failure mode, driving workloads
    // through their capacity-abort fallback paths.
    double u = static_cast<double>(t.fault_rng.next() >> 11) * 0x1.0p-53;
    if (u < rt.xopts.fault_rate) {
      tx.rcap = 1 + static_cast<unsigned>(t.fault_rng.next_below(tx.rcap));
      tx.wcap = 1 + static_cast<unsigned>(t.fault_rng.next_below(tx.wcap));
    }
  }
  t.stats.tx_started++;
  if (PTO_UNLIKELY(check::on())) check::on_tx_begin(rt.cur);
  if (PTO_UNLIKELY(prof::on())) prof::on_tx_begin();
  return TX_STARTED;
}

void tx_end() {
  Runtime& rt = *g_rt;
  VThread& t = rt.me();
  TxDesc& tx = t.tx;
  assert(tx.active);
  if (tx.depth > 0) {
    --tx.depth;
    return;
  }
  // Between the last instrumented access and here only thread-local
  // computation ran, so the tx cannot have been doomed.
  assert(!tx.doomed);
  rt.release_tx_footprint(tx, rt.cur);
  tx.active = false;
  if (PTO_UNLIKELY(check::on())) check::on_tx_commit(rt.cur);
  t.stats.tx_commits++;
  t.stats.tx_cycles += t.clock - tx.start;
  if (PTO_UNLIKELY(telemetry::trace_on())) {
    telemetry::trace_tx_commit(rt.cur, tx.start, t.clock);
  }
  if (PTO_UNLIKELY(prof::on())) {
    prof::on_tx_commit();
    prof::on_charge(prof::kClassTxOverhead, rt.cfg.cost.tx_commit);
  }
  rt.charge(rt.cfg.cost.tx_commit);
}

void tx_abort(unsigned char user_code) {
  Runtime& rt = *g_rt;
  assert(rt.me().tx.active);
  rt.self_abort(TX_ABORT_EXPLICIT, user_code);
}

bool in_tx() { return g_rt != nullptr && g_rt->me().tx.active; }

std::jmp_buf& tx_checkpoint() {
  if (g_rt) return g_rt->me().tx.env;
  static std::jmp_buf dummy;  // armed but never longjmp'd outside a sim
  return dummy;
}

unsigned char last_user_code() {
  if (g_rt == nullptr) return TX_CODE_NONE;
  return g_rt->me().last_user_code;
}

}  // namespace pto::sim
