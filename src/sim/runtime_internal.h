// Internal state of the simulator runtime, shared by runtime.cpp,
// scheduler.cpp, memory.cpp, htm_model.cpp and allocator.cpp. Not part of the
// public API — include sim/sim.h instead.
#pragma once

#include <csetjmp>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/defs.h"
#include "common/rng.h"
#include "sim/fiber.h"
#include "sim/sim.h"

namespace pto::sim::internal {

inline constexpr unsigned kNobody = 0xFFFFFFFFu;
inline constexpr std::size_t kFiberStack = 512 * 1024;

inline std::uint64_t bit(unsigned tid) { return std::uint64_t{1} << tid; }

struct LineState {
  std::uint64_t sharers = 0;       ///< threads with this line "cached"
  std::uint64_t tx_readers = 0;    ///< txs with this line in their read set
  unsigned tx_writer = kNobody;    ///< at most one tx writer (requester-wins)
  bool freed = false;
};

struct UndoEntry {
  void* addr;
  unsigned size;
  std::uint64_t old_val;
};

struct TxDesc {
  bool active = false;
  bool doomed = false;
  int depth = 0;  ///< flat-nesting depth beyond outermost begin
  unsigned doom_cause = 0;
  unsigned char user_code = TX_CODE_NONE;
  std::uint64_t start = 0;
  std::jmp_buf env;
  std::vector<UndoEntry> undo;
  std::vector<std::uintptr_t> rlines;
  std::vector<std::uintptr_t> wlines;
};

struct VThread {
  std::unique_ptr<Fiber> fiber;
  std::uint64_t clock = 0;
  bool done = false;
  TxDesc tx;
  SplitMix64 rng;
  ThreadStats stats;
  unsigned char last_user_code = TX_CODE_NONE;
  /// Thread-cache model (glibc tcache / tcmalloc): only every
  /// kTcacheRefill-th allocation touches the shared allocator word.
  unsigned alloc_tick = 0;
};

inline constexpr unsigned kTcacheRefill = 64;

/// Simple bump arena; never reuses memory within a run, so freed lines stay
/// poisoned and use-after-free is detectable.
class Arena {
 public:
  void* allocate(std::size_t bytes);
  void reset() {
    chunks_.clear();
    cur_ = nullptr;
    left_ = 0;
  }

 private:
  static constexpr std::size_t kChunk = 4u << 20;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;
  std::size_t left_ = 0;
};

/// Process-global memory state. Global (not per-run) so that benchmark
/// fixtures built outside sim::run() — or across a setup run and a measure
/// run — stay valid; sim::reset_memory() reclaims everything between
/// measurement points.
struct GlobalMemory {
  std::unordered_map<std::uintptr_t, LineState> lines;
  Arena arena;
  std::uint64_t uaf_count = 0;
  /// Shared allocator-metadata word: every alloc/free RMWs it through the
  /// normal coherence/conflict machinery, modeling allocator contention (and
  /// the real-world hazard that malloc inside a transaction conflicts).
  std::uint64_t alloc_word = 0;

  LineState& line_of(const void* addr) {
    return lines[reinterpret_cast<std::uintptr_t>(addr) / kCacheLine];
  }
};

extern GlobalMemory g_mem;

class Runtime {
 public:
  Runtime(unsigned nthreads, const Config& cfg);

  Config cfg;
  std::vector<VThread> threads;
  unsigned cur = 0;
  ucontext_t main_ctx{};

  VThread& me() { return threads[cur]; }
  LineState& line_of(const void* addr) { return g_mem.line_of(addr); }

  // scheduler.cpp
  void dispatch_loop();
  /// Charge `cost` cycles to the current thread and yield if another
  /// runnable thread is now strictly behind.
  void charge(std::uint64_t cost);

  // htm_model.cpp
  /// Roll back and doom the transaction of `victim` (requester wins).
  void doom(unsigned victim, unsigned cause);
  /// Abort the *current* thread's transaction and longjmp out. Never returns.
  [[noreturn]] void self_abort(unsigned cause, unsigned char user_code);
  /// If the current thread's tx was doomed while it was switched out,
  /// finish the abort (longjmp). Call at hook entry and after any charge().
  void check_doom();
  /// Clear per-line registrations and the undo log of thread `t`'s tx.
  void release_tx_footprint(TxDesc& tx, unsigned tid);
  void tx_access_checks();  ///< duration + spurious aborts for current tx

  // memory.cpp — hook bodies (public wrappers in sim.h forward here)
  std::uint64_t do_load(const void* addr, unsigned size);
  void do_store(void* addr, unsigned size, std::uint64_t val);
  bool do_cas(void* addr, unsigned size, std::uint64_t& expected,
              std::uint64_t desired);
  std::uint64_t do_fetch_add(void* addr, unsigned size, std::uint64_t delta);
  void do_fence();

  // allocator.cpp
  void* do_alloc(std::size_t bytes);
  void do_dealloc(void* p, std::size_t bytes);
};

extern Runtime* g_rt;

std::uint64_t raw_read(const void* addr, unsigned size);
void raw_write(void* addr, unsigned size, std::uint64_t val);

}  // namespace pto::sim::internal
