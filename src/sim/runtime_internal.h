// Internal state of the simulator runtime, shared by runtime.cpp,
// scheduler.cpp, memory.cpp, htm_model.cpp and allocator.cpp. Not part of the
// public API — include sim/sim.h instead.
#pragma once

#include <csetjmp>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/defs.h"
#include "common/rng.h"
#include "common/threadset.h"
#include "explore/explorer.h"
#include "metrics/metrics.h"
#include "sim/fiber.h"
#include "sim/sim.h"

namespace pto::sim::internal {

inline constexpr unsigned kNobody = 0xFFFFFFFFu;
/// Fiber stack size. Runs of <= kFiberStackSmallCutoff threads get the
/// roomy classic stacks; larger fleets drop to kFiberStackLarge so a
/// 1024-vthread run costs ~128 MB of stacks, not 512 MB. Overridable with
/// PTO_SIM_STACK_KB (runtime.cpp).
inline constexpr std::size_t kFiberStack = 512 * 1024;
inline constexpr std::size_t kFiberStackLarge = 128 * 1024;
inline constexpr unsigned kFiberStackSmallCutoff = 64;
std::size_t fiber_stack_bytes(unsigned nthreads);

struct LineState {
  ThreadSet sharers;       ///< threads with this line "cached"
  ThreadSet tx_readers;    ///< txs with this line in their read set
  unsigned tx_writer = kNobody;    ///< at most one tx writer (requester-wins)
  bool freed = false;
};

struct UndoEntry {
  void* addr;
  unsigned size;
  std::uint64_t old_val;
};

struct TxDesc {
  bool active = false;
  bool doomed = false;
  int depth = 0;  ///< flat-nesting depth beyond outermost begin
  unsigned doom_cause = 0;
  unsigned char user_code = TX_CODE_NONE;
  /// Effective read/write capacities for this transaction, set at the
  /// outermost tx_begin: the HtmConfig limits, jittered downward when HTM
  /// fault injection is active (explore::Options::fault_rate).
  unsigned rcap = 0;
  unsigned wcap = 0;
  std::uint64_t start = 0;
  std::jmp_buf env;
  std::vector<UndoEntry> undo;
  // Footprint as direct LineState pointers (stable: pages never move), so
  // releasing a footprint is pure pointer chasing with no table lookups.
  std::vector<LineState*> rlines;
  std::vector<LineState*> wlines;
};

struct VThread {
  std::unique_ptr<Fiber> fiber;
  std::uint64_t clock = 0;
  bool done = false;
  TxDesc tx;
  SplitMix64 rng;
  /// Fault-injection stream (explore), separate from the workload RNG so
  /// enabling PTO_HTM_FAULTS never perturbs workload key sequences.
  SplitMix64 fault_rng;
  ThreadStats stats;
  unsigned char last_user_code = TX_CODE_NONE;
  /// Thread-cache model (glibc tcache / tcmalloc): only every
  /// kTcacheRefill-th allocation touches the shared allocator word.
  unsigned alloc_tick = 0;
};

inline constexpr unsigned kTcacheRefill = 64;

/// Simple bump arena; never reuses memory within a run, so freed lines stay
/// poisoned and use-after-free is detectable.
class Arena {
 public:
  void* allocate(std::size_t bytes);
  void reset() {
    chunks_.clear();
    cur_ = nullptr;
    left_ = 0;
  }

 private:
  static constexpr std::size_t kChunk = 4u << 20;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;
  std::size_t left_ = 0;
};

// ---------------------------------------------------------------------------
// Line-metadata table. The previous std::unordered_map<line, LineState> cost
// a hash + bucket chase on *every* instrumented access; this is a two-level
// structure instead: an open-addressed probe table over 256 KB regions (one
// expected probe), each region backed by a flat dense LineState[4096] indexed
// by line offset. Arena traffic — the bulk of all accesses — lands in a
// handful of regions; stack and global addresses get regions lazily through
// the same probe path.
// ---------------------------------------------------------------------------

inline constexpr unsigned kRegionShift = 18;  ///< 256 KB regions
inline constexpr unsigned kLinesPerRegion =
    (1u << kRegionShift) / kCacheLine;  // 4096

struct LineRegion {
  LineState lines[kLinesPerRegion];
};

class LineTable {
 public:
  LineTable() { init_table(64); }
  ~LineTable() { destroy(); }
  LineTable(const LineTable&) = delete;
  LineTable& operator=(const LineTable&) = delete;

  LineState& line_of(const void* addr) {
    auto a = reinterpret_cast<std::uintptr_t>(addr);
    return region_for(a >> kRegionShift)
        ->lines[(a / kCacheLine) & (kLinesPerRegion - 1)];
  }

  /// Lookup by line index (addr / kCacheLine).
  LineState& line_by_index(std::uintptr_t la) {
    return region_for(la >> (kRegionShift - 6))
        ->lines[la & (kLinesPerRegion - 1)];
  }

  /// Drop all regions and metadata (reset_memory).
  void clear() {
    destroy();
    init_table(64);
  }

 private:
  static constexpr std::uintptr_t kEmpty = ~std::uintptr_t{0};

  LineRegion* region_for(std::uintptr_t region) {
    std::size_t i = probe_start(region);
    for (;;) {
      if (keys_[i] == region) return vals_[i];
      if (keys_[i] == kEmpty) return create_region(region);
      i = (i + 1) & mask_;
    }
  }

  std::size_t probe_start(std::uintptr_t region) const {
    return (region * 0x9E3779B97F4A7C15ull >> 40) & mask_;
  }

  // Cold path: materialize a region (memory.cpp).
  LineRegion* create_region(std::uintptr_t region);
  void grow();
  void init_table(std::size_t cap);
  void destroy();

  std::vector<std::uintptr_t> keys_;
  std::vector<LineRegion*> vals_;
  std::size_t mask_ = 0;
  std::size_t used_ = 0;
};

/// Process-global memory state. Global (not per-run) so that benchmark
/// fixtures built outside sim::run() — or across a setup run and a measure
/// run — stay valid; sim::reset_memory() reclaims everything between
/// measurement points.
struct GlobalMemory {
  LineTable lines;
  Arena arena;
  /// Active ThreadSet word count: the monotonic max of (nthreads+63)/64 over
  /// every run since the last reset_memory(). Lines persist across runs, so
  /// a run after a wide run must keep scanning the high words its
  /// predecessor may have populated; reset_memory() drops it back to 1.
  unsigned line_words = 1;
  std::uint64_t uaf_count = 0;
  /// Shared allocator-metadata word: every alloc/free RMWs it through the
  /// normal coherence/conflict machinery, modeling allocator contention (and
  /// the real-world hazard that malloc inside a transaction conflicts).
  std::uint64_t alloc_word = 0;

  LineState& line_of(const void* addr) { return lines.line_of(addr); }
};

extern GlobalMemory g_mem;

class Runtime {
 public:
  /// Throws std::invalid_argument for nthreads outside [1, kMaxThreads]:
  /// per-line conflict tracking is a kMaxThreads-bit ThreadSet and the
  /// packed dispatcher key reserves 10 bits for the tid.
  Runtime(unsigned nthreads, const Config& cfg);

  Config cfg;
  /// ThreadSet words every per-line scan covers this run (g_mem.line_words
  /// at construction: wide enough for this run *and* for any stale bits a
  /// wider earlier run may have left on persisting lines). 1 for <= 64
  /// threads, which keeps every mask operation the old single-word sequence.
  unsigned nwords = 1;
  /// cfg.explore resolved against the environment (explore::resolved).
  explore::Options xopts;
  /// Non-null iff xopts is an adversarial policy (pct/rand/replay); with rr
  /// the dispatcher below runs exactly the classic min-clock schedule.
  std::unique_ptr<explore::internal::Explorer> explorer;
  std::vector<VThread> threads;
  unsigned cur = 0;
  ExecContext main_ctx{};

  VThread& me() { return threads[cur]; }
  LineState& line_of(const void* addr) { return g_mem.line_of(addr); }

  // scheduler.cpp — O(1) min-clock dispatch with direct fiber switches.
  //
  // Invariant: the running thread `cur` is a clock minimum over runnable
  // threads (ties keep the incumbent running); every other runnable thread
  // sits in a binary min-heap of (clock << 10 | tid) keys, so the lowest-
  // index-on-tie dispatch order of the original scan is preserved by plain
  // integer comparison. `next_min_clock_` caches the heap root's clock, so
  // the per-access yield decision in charge() is a single compare.
  /// Run all fibers to completion; returns when every virtual thread is done.
  void run_all();
  /// Charge `cost` cycles to the current thread and yield if another
  /// runnable thread is now strictly behind.
  void charge(std::uint64_t cost) {
    VThread& t = me();
    t.clock += cost;
    // Virtual-time metrics ticker (PTO_METRICS on simx). The running thread
    // is a clock minimum over runnable threads, so its clock is virtual
    // "now"; the tick emits from host memory only — no cycles charged, no
    // simulated allocation, no schedule perturbation. One compare against a
    // sentinel (~0 when off) on the hot path.
    if (PTO_UNLIKELY(t.clock >= metrics::detail::g_sim_next_tick)) {
      metrics::detail::sim_tick(t.clock);
    }
    if (PTO_UNLIKELY(explorer != nullptr)) {
      explore_step();
      return;
    }
    if (PTO_LIKELY(t.clock <= next_min_clock_)) return;
    yield_to_next();
  }
  /// Switch directly to the minimum-clock runnable thread (callee of
  /// charge() when the current thread fell strictly behind).
  void yield_to_next();
  /// Current fiber finished its body: leave the runnable set and switch to
  /// the next runnable fiber, or back to the host when none remain.
  [[noreturn]] void on_fiber_done();
  /// Re-sift `tid` after its clock increased while suspended (doom penalty)
  /// and refresh the cached yield threshold.
  void on_clock_raised(unsigned tid);
  /// Doom-storm batching: between begin/end, doom() rewrites each victim's
  /// heap key in place and defers the re-sift; end_doom_batch() restores the
  /// heap with one deepest-first sift pass and a single threshold refresh,
  /// so a store that dooms k readers costs one heap repair, not k. The pop
  /// order of a binary min-heap over distinct keys is layout-independent,
  /// so batching cannot change the schedule. Batches must not span a
  /// charge() or a longjmp (callers keep them tight around the doom loops).
  void begin_doom_batch() {
    assert(!doom_batch_);
    doom_batch_ = true;
  }
  void end_doom_batch();
  /// Preemption point under an adversarial policy: consult the Explorer and
  /// switch fibers when it picks a different thread (callee of charge()).
  void explore_step();

  // htm_model.cpp
  /// Roll back and doom the transaction of `victim` (requester wins).
  /// `line` is the faulting line index (addr / kCacheLine) for conflict
  /// attribution (telemetry/prof.h); pass 0 for non-conflict causes.
  void doom(unsigned victim, unsigned cause, std::uintptr_t line);
  /// Abort the *current* thread's transaction and longjmp out. Never returns.
  [[noreturn]] void self_abort(unsigned cause, unsigned char user_code);
  /// If the current thread's tx was doomed while it was switched out,
  /// finish the abort (longjmp). Call at hook entry and after any charge().
  void check_doom();
  /// Clear per-line registrations and the undo log of thread `t`'s tx.
  void release_tx_footprint(TxDesc& tx, unsigned tid);
  void tx_access_checks();  ///< duration + spurious aborts for current tx

  // memory.cpp — hook bodies (public wrappers in sim.h forward here)
  std::uint64_t do_load(const void* addr, unsigned size, unsigned order);
  void do_store(void* addr, unsigned size, std::uint64_t val, unsigned order);
  bool do_cas(void* addr, unsigned size, std::uint64_t& expected,
              std::uint64_t desired);
  std::uint64_t do_fetch_add(void* addr, unsigned size, std::uint64_t delta);
  void do_fence();

  // allocator.cpp
  void* do_alloc(std::size_t bytes);
  void do_dealloc(void* p, std::size_t bytes);

 private:
  /// Packed-key geometry: low kTidBits hold the tid, the rest the clock.
  static constexpr unsigned kTidBits = 10;
  static_assert((1u << kTidBits) >= kMaxThreads);
  static constexpr unsigned kTidMask = (1u << kTidBits) - 1;
  static constexpr std::uint16_t kNoPos = 0xFFFF;

  static std::uint64_t pack(std::uint64_t clock, unsigned tid) {
    assert(clock < (std::uint64_t{1} << (64 - kTidBits)));
    return (clock << kTidBits) | tid;
  }
  static unsigned key_tid(std::uint64_t key) {
    return static_cast<unsigned>(key & kTidMask);
  }

  void refresh_threshold() {
    next_min_clock_ =
        ready_size_ != 0 ? (ready_[0] >> kTidBits) : ~std::uint64_t{0};
  }
  void heap_sift_down(unsigned i);
  void heap_sift_up(unsigned i);
  void heap_push(std::uint64_t key);
  /// Pop the minimum; returns its tid.
  unsigned heap_pop_min();
  /// Pop the minimum and insert `key` in a single sift; returns popped tid.
  unsigned heap_replace_min(std::uint64_t key);

  /// Binary min-heap of packed (clock, tid) keys over runnable threads other
  /// than `cur`, with a tid -> slot index for doom()'s increase-key.
  std::uint64_t ready_[kMaxThreads];
  unsigned ready_size_ = 0;
  std::uint16_t heap_pos_[kMaxThreads];
  /// Clock of the heap root: the single threshold charge() compares against.
  std::uint64_t next_min_clock_ = ~std::uint64_t{0};
  /// Runnable-thread set, maintained only under an adversarial policy
  /// (the Explorer picks among these; the heap above is untouched).
  ThreadSet runnable_;
  /// Doom-batch state: heap positions whose keys doom() rewrote in place.
  bool doom_batch_ = false;
  unsigned dirty_count_ = 0;
  std::uint16_t dirty_[kMaxThreads];
};

extern Runtime* g_rt;

std::uint64_t raw_read(const void* addr, unsigned size);
void raw_write(void* addr, unsigned size, std::uint64_t val);

}  // namespace pto::sim::internal
