// Line-granular memory hooks: cost charging, MESI-ish sharer tracking, HTM
// conflict detection (requester-wins, strong atomicity), undo logging.
#include "sim/runtime_internal.h"

#include <cstring>

#include "check/check.h"
#include "telemetry/prof.h"
#include "telemetry/trace.h"

namespace pto::sim::internal {

namespace prof = ::pto::telemetry::prof;
namespace check = ::pto::check;

// ---------------------------------------------------------------------------
// LineTable cold paths. The hot lookup (runtime_internal.h) is a single
// probe; these run only on first touch of a 256 KB region.
// ---------------------------------------------------------------------------

void LineTable::init_table(std::size_t cap) {
  keys_.assign(cap, kEmpty);
  vals_.assign(cap, nullptr);
  mask_ = cap - 1;
  used_ = 0;
}

void LineTable::destroy() {
  for (LineRegion* r : vals_) delete r;
  vals_.clear();
  keys_.clear();
}

LineRegion* LineTable::create_region(std::uintptr_t region) {
  if (used_ * 2 >= keys_.size()) grow();
  // new LineRegion runs LineState's member initializers (tx_writer =
  // kNobody), so a plain zeroed page would be wrong here.
  auto* r = new LineRegion();
  std::size_t i = probe_start(region);
  while (keys_[i] != kEmpty) i = (i + 1) & mask_;
  keys_[i] = region;
  vals_[i] = r;
  ++used_;
  return r;
}

void LineTable::grow() {
  std::vector<std::uintptr_t> old_keys = std::move(keys_);
  std::vector<LineRegion*> old_vals = std::move(vals_);
  init_table(old_keys.size() * 2);
  for (std::size_t j = 0; j < old_keys.size(); ++j) {
    if (old_keys[j] == kEmpty) continue;
    std::size_t i = probe_start(old_keys[j]);
    while (keys_[i] != kEmpty) i = (i + 1) & mask_;
    keys_[i] = old_keys[j];
    vals_[i] = old_vals[j];
    ++used_;
  }
}

std::uint64_t raw_read(const void* addr, unsigned size) {
  std::uint64_t v = 0;
  std::memcpy(&v, addr, size);
  return v;
}

void raw_write(void* addr, unsigned size, std::uint64_t val) {
  std::memcpy(addr, &val, size);
}

namespace {

std::uintptr_t line_addr(const void* addr) {
  return reinterpret_cast<std::uintptr_t>(addr) / kCacheLine;
}

/// Doom every transactional reader of L other than `self`. Each word of the
/// reader set is snapshotted before its victims are doomed (for_each_other),
/// matching the old snapshot-then-ctzll loop: dooming a victim clears only
/// that victim's own bits, so later words are never perturbed mid-scan.
void doom_other_readers(Runtime& rt, LineState& L, unsigned self,
                        std::uintptr_t la) {
  L.tx_readers.for_each_other(self, rt.nwords, [&](unsigned v) {
    rt.doom(v, TX_ABORT_CONFLICT, la);
  });
}

void doom_other_writer(Runtime& rt, LineState& L, unsigned self,
                       std::uintptr_t la) {
  if (L.tx_writer != kNobody && L.tx_writer != self) {
    rt.doom(L.tx_writer, TX_ABORT_CONFLICT, la);
  }
}

/// Register a transactional read of the line; capacity-aborts if the read
/// set is full. The limit is the per-transaction budget set at tx_begin
/// (the HtmConfig limit, jittered down under HTM fault injection).
void tx_track_read(Runtime& rt, LineState& L) {
  VThread& t = rt.me();
  if (L.tx_readers.test(rt.cur)) return;
  if (t.tx.rlines.size() >= t.tx.rcap) {
    rt.self_abort(TX_ABORT_CAPACITY, TX_CODE_NONE);
  }
  L.tx_readers.set(rt.cur);
  t.tx.rlines.push_back(&L);
}

void tx_track_write(Runtime& rt, LineState& L) {
  VThread& t = rt.me();
  if (L.tx_writer == rt.cur) return;
  if (t.tx.wlines.size() >= t.tx.wcap) {
    rt.self_abort(TX_ABORT_CAPACITY, TX_CODE_NONE);
  }
  L.tx_writer = rt.cur;
  t.tx.wlines.push_back(&L);
}

}  // namespace

std::uint64_t Runtime::do_load(const void* addr, unsigned size,
                               unsigned order) {
  check_doom();
  VThread& t = me();
  LineState& L = line_of(addr);
  if (PTO_UNLIKELY(L.freed)) ++g_mem.uaf_count;
  std::uintptr_t la = line_addr(addr);
  std::uint64_t cost = cfg.cost.load_hit;
  if (!L.sharers.test(cur)) {
    cost += cfg.cost.coherence_miss;
    L.sharers.set(cur);
    if (PTO_UNLIKELY(telemetry::trace_on())) {
      telemetry::trace_miss(cur, t.clock, la);
    }
  }
  if (t.tx.active) {
    tx_access_checks();
    doom_other_writer(*this, L, cur, la);  // requester wins
    tx_track_read(*this, L);
  } else {
    // Strong atomicity: a non-transactional read of a transactionally
    // written line aborts the transaction (Intel requester-wins, paper §4.3).
    doom_other_writer(*this, L, cur, la);
  }
  ++t.stats.loads;
  std::uint64_t v = raw_read(addr, size);
  if (PTO_UNLIKELY(check::on())) {
    check::on_load(cur, addr, size, v, order, t.tx.active);
  }
  if (PTO_UNLIKELY(prof::on())) prof::on_charge(prof::kClassLoad, cost);
  charge(cost);
  check_doom();  // doomed while yielded => value invalid; longjmps
  return v;
}

void Runtime::do_store(void* addr, unsigned size, std::uint64_t val,
                       unsigned order) {
  check_doom();
  VThread& t = me();
  LineState& L = line_of(addr);
  if (PTO_UNLIKELY(L.freed)) ++g_mem.uaf_count;
  std::uintptr_t la = line_addr(addr);
  std::uint64_t cost = cfg.cost.store_hit;
  if (L.sharers.any_other(cur, nwords)) {
    cost += cfg.cost.coherence_miss;
    if (PTO_UNLIKELY(telemetry::trace_on())) {
      telemetry::trace_miss(cur, t.clock, la);
    }
  }
  L.sharers.assign_single(cur, nwords);
  if (t.tx.active) {
    tx_access_checks();
    begin_doom_batch();
    doom_other_writer(*this, L, cur, la);
    doom_other_readers(*this, L, cur, la);
    end_doom_batch();
    tx_track_write(*this, L);
    t.tx.undo.push_back({addr, size, raw_read(addr, size)});
  } else {
    begin_doom_batch();
    doom_other_writer(*this, L, cur, la);
    doom_other_readers(*this, L, cur, la);
    end_doom_batch();
  }
  ++t.stats.stores;
  raw_write(addr, size, val);
  if (PTO_UNLIKELY(check::on())) {
    check::on_store(cur, addr, size, val, order, t.tx.active);
  }
  if (PTO_UNLIKELY(prof::on())) prof::on_charge(prof::kClassStore, cost);
  charge(cost);
  check_doom();
}

bool Runtime::do_cas(void* addr, unsigned size, std::uint64_t& expected,
                     std::uint64_t desired) {
  check_doom();
  VThread& t = me();
  LineState& L = line_of(addr);
  if (PTO_UNLIKELY(L.freed)) ++g_mem.uaf_count;
  std::uint64_t la = line_addr(addr);
  bool ok;
  std::uint64_t cost;
  if (t.tx.active) {
    // Inside a transaction a CAS degenerates to load + branch + store
    // (paper §2.3, "Eliminating Synchronization").
    tx_access_checks();
    doom_other_writer(*this, L, cur, la);
    tx_track_read(*this, L);
    std::uint64_t curv = raw_read(addr, size);
    ok = (curv == expected);
    if (ok) {
      begin_doom_batch();
      doom_other_readers(*this, L, cur, la);
      end_doom_batch();
      tx_track_write(*this, L);
      t.tx.undo.push_back({addr, size, curv});
      raw_write(addr, size, desired);
      cost = cfg.cost.load_hit + cfg.cost.store_hit;
    } else {
      expected = curv;
      cost = cfg.cost.load_hit;
    }
    if (PTO_UNLIKELY(prof::on())) {
      prof::on_cas_collapsed(cfg.cost.cas > cost ? cfg.cost.cas - cost : 0);
    }
    if (!L.sharers.test(cur)) {
      cost += cfg.cost.coherence_miss;
      if (PTO_UNLIKELY(telemetry::trace_on())) {
        telemetry::trace_miss(cur, t.clock, la);
      }
    }
    L.sharers.set(cur);
  } else {
    // A CAS takes the line exclusive whether or not it succeeds.
    begin_doom_batch();
    doom_other_writer(*this, L, cur, la);
    doom_other_readers(*this, L, cur, la);
    end_doom_batch();
    cost = cfg.cost.cas;
    if (L.sharers.any_other(cur, nwords)) {
      cost += cfg.cost.coherence_miss;
      if (PTO_UNLIKELY(telemetry::trace_on())) {
        telemetry::trace_miss(cur, t.clock, la);
      }
    }
    L.sharers.assign_single(cur, nwords);
    std::uint64_t curv = raw_read(addr, size);
    ok = (curv == expected);
    if (ok) {
      raw_write(addr, size, desired);
    } else {
      expected = curv;
    }
  }
  ++t.stats.cas_ops;
  if (PTO_UNLIKELY(check::on())) {
    // `expected` holds the observed value either way: unchanged on success,
    // updated to the current value on failure.
    check::on_rmw(cur, addr, size, expected, ok, t.tx.active);
  }
  if (PTO_UNLIKELY(prof::on())) prof::on_charge(prof::kClassSync, cost);
  charge(cost);
  check_doom();
  return ok;
}

std::uint64_t Runtime::do_fetch_add(void* addr, unsigned size,
                                    std::uint64_t delta) {
  check_doom();
  VThread& t = me();
  LineState& L = line_of(addr);
  if (PTO_UNLIKELY(L.freed)) ++g_mem.uaf_count;
  std::uint64_t la = line_addr(addr);
  std::uint64_t cost;
  if (t.tx.active) {
    tx_access_checks();
    begin_doom_batch();
    doom_other_writer(*this, L, cur, la);
    doom_other_readers(*this, L, cur, la);
    end_doom_batch();
    tx_track_read(*this, L);
    tx_track_write(*this, L);
    t.tx.undo.push_back({addr, size, raw_read(addr, size)});
    cost = cfg.cost.load_hit + cfg.cost.store_hit;
    if (PTO_UNLIKELY(prof::on())) {
      prof::on_cas_collapsed(cfg.cost.cas > cost ? cfg.cost.cas - cost : 0);
    }
  } else {
    begin_doom_batch();
    doom_other_writer(*this, L, cur, la);
    doom_other_readers(*this, L, cur, la);
    end_doom_batch();
    cost = cfg.cost.cas;
  }
  if (L.sharers.any_other(cur, nwords)) {
    cost += cfg.cost.coherence_miss;
    if (PTO_UNLIKELY(telemetry::trace_on())) {
      telemetry::trace_miss(cur, t.clock, la);
    }
  }
  L.sharers.assign_single(cur, nwords);
  std::uint64_t old = raw_read(addr, size);
  raw_write(addr, size, old + delta);
  ++t.stats.rmws;
  if (PTO_UNLIKELY(check::on())) {
    check::on_rmw(cur, addr, size, old, true, t.tx.active);
  }
  // Classed kClassSync unless we are inside the allocator bracket, where
  // prof::on_charge reclasses it as allocation traffic.
  if (PTO_UNLIKELY(prof::on())) prof::on_charge(prof::kClassSync, cost);
  charge(cost);
  check_doom();
  return old;
}

void Runtime::do_fence() {
  check_doom();
  VThread& t = me();
  if (t.tx.active && !cfg.fences_in_tx) {
    ++t.stats.fences_elided;
    if (PTO_UNLIKELY(prof::on())) prof::on_fence_elided(cfg.cost.fence);
    return;
  }
  ++t.stats.fences;
  if (PTO_UNLIKELY(check::on())) check::on_fence(cur);
  if (PTO_UNLIKELY(prof::on())) {
    prof::on_charge(prof::kClassFence, cfg.cost.fence);
  }
  charge(cfg.cost.fence);
  check_doom();
}

}  // namespace pto::sim::internal
