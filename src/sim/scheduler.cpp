// Min-virtual-clock dispatch: the runnable thread with the smallest clock
// executes next. Ties break toward the lowest index, making runs a pure
// function of the configuration — no host-level nondeterminism leaks in.
//
// The schedule is identical to the original O(T)-scan dispatcher, computed
// incrementally: runnable threads other than the running one live in a
// binary min-heap of packed (clock << 10 | tid) keys (lexicographic
// clock-then-index order == integer order), the heap root's clock is cached
// as the yield threshold charge() compares against, and a yielding fiber
// swaps itself with the heap root and switches straight to it — the host
// context is touched only at run start and teardown.
#include "sim/runtime_internal.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "telemetry/trace.h"

namespace pto::sim::internal {

void Runtime::heap_sift_up(unsigned i) {
  std::uint64_t key = ready_[i];
  while (i > 0) {
    unsigned parent = (i - 1) / 2;
    if (ready_[parent] <= key) break;
    ready_[i] = ready_[parent];
    heap_pos_[key_tid(ready_[i])] = static_cast<std::uint16_t>(i);
    i = parent;
  }
  ready_[i] = key;
  heap_pos_[key_tid(key)] = static_cast<std::uint16_t>(i);
}

void Runtime::heap_sift_down(unsigned i) {
  std::uint64_t key = ready_[i];
  for (;;) {
    unsigned child = 2 * i + 1;
    if (child >= ready_size_) break;
    if (child + 1 < ready_size_ && ready_[child + 1] < ready_[child]) ++child;
    if (ready_[child] >= key) break;
    ready_[i] = ready_[child];
    heap_pos_[key_tid(ready_[i])] = static_cast<std::uint16_t>(i);
    i = child;
  }
  ready_[i] = key;
  heap_pos_[key_tid(key)] = static_cast<std::uint16_t>(i);
}

void Runtime::heap_push(std::uint64_t key) {
  ready_[ready_size_++] = key;
  heap_sift_up(ready_size_ - 1);
}

unsigned Runtime::heap_pop_min() {
  unsigned tid = key_tid(ready_[0]);
  heap_pos_[tid] = kNoPos;
  --ready_size_;
  if (ready_size_ != 0) {
    ready_[0] = ready_[ready_size_];
    heap_sift_down(0);
  }
  return tid;
}

unsigned Runtime::heap_replace_min(std::uint64_t key) {
  unsigned tid = key_tid(ready_[0]);
  heap_pos_[tid] = kNoPos;
  ready_[0] = key;
  heap_sift_down(0);
  return tid;
}

void Runtime::run_all() {
  if (PTO_UNLIKELY(explorer != nullptr)) {
    // Adversarial dispatch: the Explorer owns every scheduling decision and
    // the min-clock heap stays unused.
    runnable_.set_first_n(static_cast<unsigned>(threads.size()), nwords);
    unsigned first = explorer->pick_first(runnable_);
    cur = first;
    ++threads[first].stats.dispatches;
    if (PTO_UNLIKELY(telemetry::trace_sched_on())) {
      telemetry::trace_sched(first, threads[first].clock);
    }
    ctx_switch(main_ctx, threads[first].fiber->context());
    return;  // resumed by on_fiber_done() of the last finishing fiber
  }
  ready_size_ = 0;
  for (unsigned i = 0; i < threads.size(); ++i) heap_pos_[i] = kNoPos;
  // Ascending (clock=0, tid) keys already satisfy the heap property.
  for (unsigned i = 1; i < threads.size(); ++i) {
    ready_[ready_size_] = pack(0, i);
    heap_pos_[i] = static_cast<std::uint16_t>(ready_size_);
    ++ready_size_;
  }
  cur = 0;
  refresh_threshold();
  ++threads[0].stats.dispatches;
  if (PTO_UNLIKELY(telemetry::trace_sched_on())) {
    telemetry::trace_sched(0, threads[0].clock);
  }
  ctx_switch(main_ctx, threads[0].fiber->context());
  // Resumed by on_fiber_done() of the last finishing fiber.
}

void Runtime::explore_step() {
  unsigned prev = cur;
  unsigned next = explorer->pick(prev, runnable_);
  if (PTO_LIKELY(next == prev)) return;
  cur = next;
  ++threads[next].stats.dispatches;
  if (PTO_UNLIKELY(telemetry::trace_sched_on())) {
    telemetry::trace_sched(next, threads[next].clock);
  }
  ctx_switch(threads[prev].fiber->context(), threads[next].fiber->context());
}

void Runtime::yield_to_next() {
  unsigned prev = cur;
  VThread& t = threads[prev];
  // The root is strictly behind us (charge checked), so it is the global
  // minimum; swap ourselves in with our advanced clock.
  unsigned next = heap_replace_min(pack(t.clock, prev));
  cur = next;
  refresh_threshold();
  ++threads[next].stats.dispatches;
  if (PTO_UNLIKELY(telemetry::trace_sched_on())) {
    telemetry::trace_sched(next, threads[next].clock);
  }
  ctx_switch(t.fiber->context(), threads[next].fiber->context());
}

void Runtime::on_fiber_done() {
  VThread& t = threads[cur];
  t.done = true;
  if (PTO_UNLIKELY(explorer != nullptr)) {
    runnable_.clear(cur);
    if (runnable_.empty(nwords)) {
      ctx_switch(t.fiber->context(), main_ctx);  // back to run() teardown
    } else {
      unsigned next = explorer->pick_first(runnable_);
      cur = next;
      ++threads[next].stats.dispatches;
      if (PTO_UNLIKELY(telemetry::trace_sched_on())) {
        telemetry::trace_sched(next, threads[next].clock);
      }
      ctx_switch(t.fiber->context(), threads[next].fiber->context());
    }
    std::abort();  // a finished fiber is never rescheduled
  }
  if (ready_size_ == 0) {
    ctx_switch(t.fiber->context(), main_ctx);  // back to run() teardown
  } else {
    unsigned next = heap_pop_min();
    cur = next;
    refresh_threshold();
    ++threads[next].stats.dispatches;
    if (PTO_UNLIKELY(telemetry::trace_sched_on())) {
      telemetry::trace_sched(next, threads[next].clock);
    }
    ctx_switch(t.fiber->context(), threads[next].fiber->context());
  }
  std::abort();  // a finished fiber is never rescheduled
}

void Runtime::on_clock_raised(unsigned tid) {
  assert(tid != cur && heap_pos_[tid] != kNoPos);
  unsigned i = heap_pos_[tid];
  ready_[i] = pack(threads[tid].clock, tid);
  if (PTO_UNLIKELY(doom_batch_)) {
    // Key rewritten in place; the heap is repaired once at end_doom_batch().
    // No sifting happens inside a batch, so this recorded position stays
    // the victim's position until then.
    dirty_[dirty_count_++] = static_cast<std::uint16_t>(i);
    return;
  }
  heap_sift_down(i);  // clocks only increase
  refresh_threshold();
}

void Runtime::end_doom_batch() {
  assert(doom_batch_);
  doom_batch_ = false;
  if (dirty_count_ == 0) return;
  if (dirty_count_ == 1) {
    heap_sift_down(dirty_[0]);
  } else {
    // Restricted Floyd heapify: only the recorded positions hold increased
    // keys, an increase can only violate the heap property against the
    // node's *descendants*, and a descendant's array index is always larger
    // than its ancestor's — so sifting the dirty positions in decreasing
    // index order meets every one of them with valid subheaps below it.
    std::sort(dirty_, dirty_ + dirty_count_,
              std::greater<std::uint16_t>());
    for (unsigned i = 0; i < dirty_count_; ++i) heap_sift_down(dirty_[i]);
  }
  dirty_count_ = 0;
  refresh_threshold();
}

}  // namespace pto::sim::internal
