// Min-virtual-clock dispatch: the runnable thread with the smallest clock
// executes next. Ties break toward the lowest index, making runs a pure
// function of the configuration — no host-level nondeterminism leaks in.
#include "sim/runtime_internal.h"

#include "telemetry/trace.h"

namespace pto::sim::internal {

namespace {

/// Index of the runnable thread with minimum clock, or kNobody.
unsigned min_clock_thread(const std::vector<VThread>& ts) {
  unsigned best = kNobody;
  std::uint64_t best_clock = ~std::uint64_t{0};
  for (unsigned i = 0; i < ts.size(); ++i) {
    if (!ts[i].done && ts[i].clock < best_clock) {
      best = i;
      best_clock = ts[i].clock;
    }
  }
  return best;
}

}  // namespace

void Runtime::dispatch_loop() {
  unsigned prev = kNobody;
  for (;;) {
    unsigned next = min_clock_thread(threads);
    if (next == kNobody) return;  // all virtual threads finished
    if (PTO_UNLIKELY(telemetry::trace_sched_on()) && next != prev) {
      telemetry::trace_sched(next, threads[next].clock);
    }
    prev = next;
    cur = next;
    swapcontext(&main_ctx, threads[next].fiber->context());
  }
}

void Runtime::charge(std::uint64_t cost) {
  VThread& t = me();
  t.clock += cost;
  // Yield if some other runnable thread is now strictly behind us; the
  // dispatcher will pick it (or us again, if we remain the minimum).
  for (unsigned i = 0; i < threads.size(); ++i) {
    if (i != cur && !threads[i].done && threads[i].clock < t.clock) {
      swapcontext(t.fiber->context(), &main_ctx);
      return;
    }
  }
}

}  // namespace pto::sim::internal
