// simx: a deterministic simulated multicore for evaluating concurrent data
// structures and best-effort HTM on machines without many cores (or without
// TSX). See DESIGN.md §2 and §5.
//
// Model
// -----
// Each virtual thread is a ucontext fiber with its own virtual clock
// (cycles). At every instrumented shared-memory access the runtime charges a
// cost from the CostModel and then lets the *globally least-advanced* thread
// run — a discrete-event approximation of true parallel overlap. Scheduling
// is a pure function of clocks and thread indices, so a run is exactly
// reproducible.
//
// Memory is modeled at cache-line (64 B) granularity: a per-line sharer
// bitmask approximates MESI (first access after a remote write costs a
// coherence miss), and per-line transactional reader/writer sets implement a
// best-effort HTM with *requester-wins* conflict detection and strong
// atomicity, mirroring Intel TSX as characterized in the paper (§4.3).
// Transactional writes are performed in place with an undo log; a doomed
// transaction is rolled back synchronously by the conflicting access (legal:
// one host thread) and the victim longjmps to its checkpoint when next
// scheduled.
//
// The allocator is an arena that never reuses memory within a run; freed
// lines are marked and (optionally) trapped on later non-transactional
// access, which both detects use-after-free bugs in tests and makes
// *epoch elision inside transactions* safe, exactly as real strong atomicity
// does (paper §5).
#pragma once

#include <csetjmp>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/defs.h"
#include "explore/explore.h"
#include "htm/txcode.h"

namespace pto::sim {

/// Cycle costs charged per event. Defaults are calibrated to commodity x86
/// (DESIGN.md §5.3); every figure's shape claims are driven by *ratios* of
/// these, and the ablation bench abl_htm_boundary sweeps tx_begin/tx_commit.
struct CostModel {
  std::uint64_t load_hit = 1;
  std::uint64_t store_hit = 1;
  std::uint64_t coherence_miss = 40;  ///< first access to a remotely-written line
  std::uint64_t cas = 24;             ///< non-transactional CAS / RMW
  std::uint64_t fence = 33;           ///< seq_cst fence (MFENCE / XCHG)
  std::uint64_t tx_begin = 25;        ///< XBEGIN (Haswell ~45 cycles round trip)
  std::uint64_t tx_commit = 20;       ///< XEND
  std::uint64_t tx_abort_penalty = 15;
  std::uint64_t alloc = 80;           ///< malloc fast path + metadata
  std::uint64_t dealloc = 40;
  std::uint64_t pause = 5;
  /// Charged per op_done(): the benchmark loop itself (RNG, branch, call
  /// overhead) — keeps transactional sections a realistic fraction of the
  /// op, which governs abort rates under contention.
  std::uint64_t bench_op_overhead = 30;
};

/// Best-effort HTM limits (abort causes (a)–(c) from the paper's §1).
struct HtmConfig {
  unsigned max_write_lines = 64;          ///< ~4 KB write set
  unsigned max_read_lines = 512;          ///< tracked read set
  std::uint64_t max_duration = 200'000;   ///< cycles before a duration abort
  double spurious_abort_prob = 0.0;       ///< per-access injected abort rate
};

struct Config {
  CostModel cost;
  HtmConfig htm;
  std::uint64_t seed = 1;
  /// Fig 5(b,c) ablation: when true, fences *inside* transactions still cost
  /// CostModel::fence (the "PTO(Fence)" variants).
  bool fences_in_tx = false;
  /// Detect non-transactional access to freed lines (tests).
  bool trap_use_after_free = true;
  /// Schedule exploration and HTM fault injection (explore/explore.h). The
  /// default (Policy::kEnv) resolves PTO_SCHED / PTO_HTM_FAULTS at run
  /// start; with the resulting rr policy the dispatcher — and so every
  /// simulated cycle — is bit-for-bit the plain deterministic one.
  explore::Options explore;
};

struct ThreadStats {
  /// Times this virtual thread was switched to (including its first
  /// dispatch); the scheduler-invariant tests key off this.
  std::uint64_t dispatches = 0;
  std::uint64_t loads = 0, stores = 0, cas_ops = 0, rmws = 0;
  std::uint64_t fences = 0, fences_elided = 0;
  std::uint64_t allocs = 0, frees = 0;
  std::uint64_t tx_started = 0, tx_commits = 0;
  std::uint64_t tx_aborts[kTxCodeCount] = {};
  /// Virtual cycles spent inside transactions, committed or aborted
  /// (outermost begin to commit/abort, abort penalty included).
  std::uint64_t tx_cycles = 0;
  std::uint64_t ops_completed = 0;  ///< benchmark-level operations (op_done)

  std::uint64_t total_aborts() const {
    std::uint64_t n = 0;
    for (auto a : tx_aborts) n += a;
    return n;
  }
  void accumulate(const ThreadStats& o);
};

struct RunResult {
  std::vector<ThreadStats> stats;
  std::vector<std::uint64_t> clocks;
  std::uint64_t uaf_count = 0;  ///< use-after-free accesses detected

  /// Virtual time at which the last thread finished.
  std::uint64_t makespan() const;
  ThreadStats totals() const;
  /// Benchmark throughput in operations per simulated millisecond, assuming
  /// the paper's 3.4 GHz clock (so numbers share units with the figures).
  double ops_per_msec() const;
};

/// Execute body(tid) on `nthreads` virtual threads until all return.
/// Reentrant runs are not allowed (one simulation at a time per process).
RunResult run(unsigned nthreads, const Config& cfg,
              const std::function<void(unsigned)>& body);

// ---------------------------------------------------------------------------
// Hooks — valid only while inside run(), i.e. on a virtual thread.
// ---------------------------------------------------------------------------

bool active();          ///< true when called from inside a simulation
unsigned thread_id();
unsigned num_threads();
std::uint64_t now();    ///< current virtual thread's clock
std::uint64_t rnd();    ///< deterministic per-thread random value
/// Strictly increasing per call, process-global. Under an adversarial
/// schedule (explore::Policy) per-thread clocks no longer order observable
/// events — a deprioritized thread's clock lags arbitrarily — so history
/// recorders (tests/linearizability.h) timestamp invocations and responses
/// with this counter instead: the simulator serializes every event on one
/// host thread, making call order exactly the observable real-time order
/// under every scheduling policy.
std::uint64_t global_seq();
void op_done(std::uint64_t n = 1);
void cpu_pause();       ///< backoff hint; charges CostModel::pause

/// `order` is the C++ memory order of the access as a plain unsigned
/// (std::memory_order_relaxed == 0 ... seq_cst == 5). It never affects
/// costs or scheduling — the simulated machine is TSO and SimPlatform
/// charges fences separately — but pto::check uses it to distinguish
/// plain (relaxed) accesses from synchronizing ones.
std::uint64_t mem_load(const void* addr, unsigned size, unsigned order = 5);
void mem_store(void* addr, unsigned size, std::uint64_t val,
               unsigned order = 5);
/// On failure, `expected` is updated with the observed value.
bool mem_cas(void* addr, unsigned size, std::uint64_t& expected,
             std::uint64_t desired);
std::uint64_t mem_fetch_add(void* addr, unsigned size, std::uint64_t delta);
void fence();

/// The checkpoint must be armed with setjmp before calling tx_begin (done by
/// pto::prefix). Returns TX_STARTED; aborts longjmp the checkpoint with a
/// TxAbort cause.
unsigned tx_begin();
void tx_end();
[[noreturn]] void tx_abort(unsigned char user_code);
bool in_tx();
std::jmp_buf& tx_checkpoint();
unsigned char last_user_code();

void* alloc(std::size_t bytes);
void dealloc(void* p, std::size_t bytes);

/// Free the process-global arena and line table (invalid while a simulation
/// is running). Call between benchmark points; everything allocated through
/// sim::alloc so far becomes invalid.
void reset_memory();

/// Total use-after-free accesses detected since process start / last run.
std::uint64_t uaf_count();

}  // namespace pto::sim
