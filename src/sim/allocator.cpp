// Arena allocator with line-aligned carving and quarantined frees.
#include "sim/runtime_internal.h"

#include <cstring>

#include "telemetry/prof.h"

namespace pto::sim::internal {

namespace prof = ::pto::telemetry::prof;

void* Arena::allocate(std::size_t bytes) {
  // Round to whole cache lines so distinct allocations never share a line
  // (keeps conflict detection per-object and makes freed-line tracking exact).
  bytes = (bytes + kCacheLine - 1) & ~(kCacheLine - 1);
  if (left_ < bytes) {
    std::size_t chunk = bytes > kChunk ? bytes + kCacheLine : kChunk;
    chunks_.emplace_back(new char[chunk + kCacheLine]);
    auto base = reinterpret_cast<std::uintptr_t>(chunks_.back().get());
    auto aligned = (base + kCacheLine - 1) & ~(kCacheLine - 1);
    cur_ = reinterpret_cast<char*>(aligned);
    left_ = chunk;
  }
  void* p = cur_;
  cur_ += bytes;
  left_ -= bytes;
  return p;
}

void* Runtime::do_alloc(std::size_t bytes) {
  check_doom();
  VThread& t = me();
  ++t.stats.allocs;
  // The prof bracket reclasses the refill RMW below as allocator traffic;
  // an abort longjmp through do_fetch_add clears it via on_abort_unwind.
  if (PTO_UNLIKELY(prof::on())) prof::on_alloc_enter();
  // Thread-cached allocator model: the fast path costs cost.alloc; every
  // kTcacheRefill-th allocation refills from the shared arena, modeled as an
  // RMW on a global word — concurrent refills pay coherence misses, and a
  // refill inside a transaction adds the word to the write set (the reason
  // malloc-heavy transactions conflict — paper §4.5).
  if (++t.alloc_tick % kTcacheRefill == 0) {
    std::uint64_t unused = do_fetch_add(&g_mem.alloc_word, 8, 1);
    (void)unused;
  }
  void* p = g_mem.arena.allocate(bytes);
  if (PTO_UNLIKELY(prof::on())) {
    prof::on_charge(prof::kClassAlloc, cfg.cost.alloc);
    prof::on_alloc_exit();
  }
  charge(cfg.cost.alloc);
  check_doom();
  return p;
}

void Runtime::do_dealloc(void* p, std::size_t bytes) {
  check_doom();
  VThread& t = me();
  // Library convention: transactions never free (PTO fast paths retire after
  // commit; fallbacks retire through epochs, outside transactions).
  assert(!t.tx.active && "dealloc inside a transaction is not supported");
  ++t.stats.frees;
  if (PTO_UNLIKELY(prof::on())) prof::on_alloc_enter();
  if (++t.alloc_tick % kTcacheRefill == 0) {
    std::uint64_t unused = do_fetch_add(&g_mem.alloc_word, 8, 1);
    (void)unused;
  }
  auto first = reinterpret_cast<std::uintptr_t>(p) / kCacheLine;
  auto last = (reinterpret_cast<std::uintptr_t>(p) + (bytes ? bytes - 1 : 0)) /
              kCacheLine;
  // One doom batch for the whole free: a multi-line free that dooms k
  // transactions repairs the dispatch heap once, not k times. A victim
  // doomed on an early line has its reader/writer registrations on later
  // lines already released, so no victim is visited twice.
  begin_doom_batch();
  for (auto la = first; la <= last; ++la) {
    LineState& L = g_mem.lines.line_by_index(la);
    // Freeing is a write: any transaction still holding the line is the
    // victim (this is what makes epoch elision inside transactions safe).
    if (L.tx_writer != kNobody && L.tx_writer != cur) {
      doom(L.tx_writer, TX_ABORT_CONFLICT, la);
    }
    L.tx_readers.for_each_other(cur, nwords, [&](unsigned v) {
      doom(v, TX_ABORT_CONFLICT, la);
    });
    L.freed = true;
    L.sharers.assign_single(cur, nwords);
  }
  end_doom_batch();
  if (cfg.trap_use_after_free) std::memset(p, 0xDD, bytes);
  if (PTO_UNLIKELY(prof::on())) {
    prof::on_charge(prof::kClassAlloc, cfg.cost.dealloc);
    prof::on_alloc_exit();
  }
  charge(cfg.cost.dealloc);
  check_doom();
}

}  // namespace pto::sim::internal
