// pto::service load generator: deterministic per-thread operation streams
// over a configurable key-popularity model, in the shape of STO's zipfian
// microbenchmarks (test_zipf.cc) and YCSB's core workloads.
//
// Everything here is a pure function of (WorkloadSpec, tid): the stream for
// thread t is byte-identical across runs, across thread counts, and across
// platforms — which is what lets the same spec drive real std::threads in
// bench/svc_kv and virtual threads in simx (the deterministic twin) for
// differential debugging. Key popularity supports uniform, zipfian (exact
// inverse-CDF sampling, so tests can chi-square it against the analytic
// distribution), and hot-set (a fraction of the keyspace absorbing a
// configured share of accesses).
//
// Closed-loop mode issues the next op as soon as the previous one returns;
// open-loop mode pre-draws Poisson arrival times and the worker launches each
// op at its scheduled instant, so recorded latency includes queueing delay
// (the standard coordinated-omission-free setup).
//
// Environment knobs (ServiceOptions::from_env; malformed values warn once
// via pto::warn_once and fall back to defaults — never silently):
//   PTO_SVC_SHARDS    shard count (default 4)
//   PTO_SVC_STRUCT    per-shard structure: skip|hash (default skip)
//   PTO_SVC_BATCH     per-shard request batch size, 0 = unbatched (default)
//   PTO_SVC_PIN       0|1 pin worker threads round-robin to cores (default 1)
//   PTO_SVC_KEYS      keyspace size (default 65536)
//   PTO_SVC_DIST      uniform|zipf|hotset (default zipf)
//   PTO_SVC_SKEW      zipf theta in [0,1) (default 0.99, the YCSB zipfian)
//   PTO_SVC_HOTFRAC   hotset: hot fraction of the keyspace (default 0.01)
//   PTO_SVC_HOTPROB   hotset: probability an op is hot (default 0.9)
//   PTO_SVC_READPCT   get percentage (default 50)
//   PTO_SVC_PUTPCT    put percentage (default 25; remainder = del)
//   PTO_SVC_OPENLOOP  per-thread Poisson arrival rate, ops/sec; 0 = closed
//   PTO_SVC_SEED      workload seed (default 42)
#pragma once

#include <cstdint>
#include <vector>

#include "benchutil/zipf.h"
#include "common/rng.h"

namespace pto::service {

enum class Dist { kUniform, kZipf, kHotset };
enum class Structure { kSkiplist, kHash };

enum class OpKind : std::uint8_t { kGet, kPut, kDel };

struct Op {
  OpKind kind;
  std::int64_t key;
};

struct WorkloadSpec {
  std::uint64_t keyspace = 1u << 16;
  Dist dist = Dist::kZipf;
  double theta = 0.99;         ///< zipf skew; 0 degenerates to uniform
  double hot_fraction = 0.01;  ///< hotset: fraction of keyspace that is hot
  double hot_prob = 0.9;       ///< hotset: probability an op is hot
  unsigned get_pct = 50;
  unsigned put_pct = 25;  ///< remainder after get+put is del
  std::uint64_t seed = 42;
  double openloop_rate = 0.0;  ///< per-thread arrivals/sec; 0 = closed loop
};

/// Per-thread stream seed: depends only on (seed, tid, salt), so streams are
/// stable under thread-count changes and independent between the key stream
/// and the arrival-time stream.
std::uint64_t derive_stream_seed(std::uint64_t seed, unsigned tid,
                                 std::uint64_t salt = 0);

/// Key-popularity sampler for one WorkloadSpec. Zipf uses the exact
/// inverse-CDF (benchutil/zipf.h), so sampled frequencies converge to the
/// analytic pmf — tests chi-square this.
class KeySampler {
 public:
  explicit KeySampler(const WorkloadSpec& spec);

  std::int64_t next(SplitMix64& rng) const;

  /// Hotset geometry (valid for Dist::kHotset): keys [0, hot_keys()) are hot.
  std::uint64_t hot_keys() const { return hot_n_; }

 private:
  Dist dist_;
  std::uint64_t n_;
  std::uint64_t hot_n_ = 0;
  double hot_prob_ = 0.0;
  bench::ZipfGenerator zipf_;  ///< trivial (n=1) unless dist is zipf
};

/// Deterministic op-stream factory; one instance amortizes the zipf CDF
/// across every thread's fill.
class OpStream {
 public:
  explicit OpStream(const WorkloadSpec& spec) : spec_(spec), keys_(spec) {}

  const WorkloadSpec& spec() const { return spec_; }

  /// Append `n` ops of thread `tid`'s stream to `out`.
  void fill(unsigned tid, std::uint64_t n, std::vector<Op>& out) const;

  /// Append `n` open-loop inter-arrival gaps (nanoseconds, exponential with
  /// mean 1e9/openloop_rate) of thread `tid`'s arrival process to `out`.
  /// Drawn from an independent stream so the op sequence is identical in
  /// open- and closed-loop runs of the same spec.
  void fill_arrivals_ns(unsigned tid, std::uint64_t n,
                        std::vector<std::uint64_t>& out) const;

 private:
  WorkloadSpec spec_;
  KeySampler keys_;
};

/// Full service configuration for bench/svc_kv and the native tests.
struct ServiceOptions {
  unsigned shards = 4;
  Structure structure = Structure::kSkiplist;
  unsigned batch = 0;  ///< per-shard batch size; 0 = apply ops directly
  bool pin = true;     ///< pin runtime workers round-robin to cores
  WorkloadSpec workload;

  /// Apply PTO_SVC_* environment overrides. Malformed or out-of-range
  /// values keep the default and warn once per variable (pto::warn_once),
  /// mirroring RunnerOptions::from_env.
  static ServiceOptions from_env();
};

const char* structure_name(Structure s);
const char* dist_name(Dist d);

}  // namespace pto::service
