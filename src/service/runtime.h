// pto::service::Runtime — the real-threads counterpart of simx's virtual
// thread pool: a persistent set of std::threads, optionally pinned
// round-robin over the CPUs the process is allowed on, launched into
// parallel sections with a spin barrier so every worker starts the measured
// region together (the same start discipline as benchutil/native_runner).
//
// The pool is deliberately thin: per-thread epoch/hazard state lives in the
// data structures' own domains (src/reclaim) via the per-shard ThreadCtx
// objects a ShardedKV client registers, so the runtime only has to hand out
// stable worker ids and a tight start edge. Workers park on a condition
// variable between sections — a Runtime can run many sections (bench trials)
// without re-spawning threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pto::service {

struct RuntimeOptions {
  unsigned threads = 4;
  bool pin = true;  ///< pin worker t to the t-th allowed CPU (round-robin)
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions opts);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  unsigned threads() const { return opts_.threads; }

  /// Run body(tid) once on every worker. All workers leave a spin barrier
  /// together; returns the wall-clock makespan in nanoseconds (barrier
  /// release -> last worker done). Not reentrant.
  std::uint64_t run(const std::function<void(unsigned)>& body);

  /// Pin the calling thread to the tid-th CPU of the process affinity mask,
  /// round-robin. Warns once (pto::warn_once) and becomes a no-op when the
  /// platform has no affinity API or the syscall fails.
  static void pin_to_cpu(unsigned tid);

 private:
  void worker(unsigned tid);

  RuntimeOptions opts_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;       ///< workers park here between sections
  std::condition_variable done_cv_;  ///< run() waits here for completion
  const std::function<void(unsigned)>* body_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped by run() to wake workers
  unsigned armed_ = 0;            ///< workers awake and spinning on go_
  unsigned pending_ = 0;          ///< workers still executing the body
  bool stop_ = false;

  /// Spin-barrier release flag: holds the generation whose body may start.
  std::atomic<std::uint64_t> go_{0};
};

}  // namespace pto::service
