#include "service/loadgen.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/warn.h"

namespace pto::service {

namespace {

/// Uniform double in [0, 1) from the top 53 bits of a SplitMix64 draw.
double unit_uniform(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr) return dflt;
  char* end = nullptr;
  auto parsed = std::strtoull(v, &end, 10);
  if (end != v && *end == '\0' && parsed > 0) return parsed;
  warn_once(name,
            "ignoring invalid %s='%s' (want a positive integer); using "
            "default %llu",
            name, v, static_cast<unsigned long long>(dflt));
  return dflt;
}

/// Double knob in [lo, hi]; `lo_exclusive_hint` only shapes the message.
double env_double(const char* name, double dflt, double lo, double hi) {
  const char* v = std::getenv(name);
  if (v == nullptr) return dflt;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end != v && *end == '\0' && parsed >= lo && parsed <= hi) return parsed;
  warn_once(name,
            "ignoring invalid %s='%s' (want a number in [%g, %g]); using "
            "default %g",
            name, v, lo, hi, dflt);
  return dflt;
}

unsigned env_pct(const char* name, unsigned dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr) return dflt;
  char* end = nullptr;
  auto parsed = std::strtoull(v, &end, 10);
  if (end != v && *end == '\0' && parsed <= 100) {
    return static_cast<unsigned>(parsed);
  }
  warn_once(name,
            "ignoring invalid %s='%s' (want a percentage 0..100); using "
            "default %u",
            name, v, dflt);
  return dflt;
}

}  // namespace

std::uint64_t derive_stream_seed(std::uint64_t seed, unsigned tid,
                                 std::uint64_t salt) {
  // One mixing round per component: adjacent (seed, tid) pairs land far
  // apart, and the arrival stream (salt != 0) is decorrelated from the key
  // stream of the same thread.
  SplitMix64 g(seed ^ (0x9E3779B97F4A7C15ull * (tid + 1)) ^
               (salt * 0xBF58476D1CE4E5B9ull));
  return g.next();
}

KeySampler::KeySampler(const WorkloadSpec& spec)
    : dist_(spec.dist),
      n_(spec.keyspace),
      zipf_(spec.dist == Dist::kZipf ? spec.keyspace : 1,
            spec.dist == Dist::kZipf ? spec.theta : 0.0) {
  if (dist_ == Dist::kHotset) {
    hot_n_ = static_cast<std::uint64_t>(
        std::ceil(spec.hot_fraction * static_cast<double>(n_)));
    if (hot_n_ == 0) hot_n_ = 1;
    if (hot_n_ > n_) hot_n_ = n_;
    hot_prob_ = spec.hot_prob;
  }
}

std::int64_t KeySampler::next(SplitMix64& rng) const {
  switch (dist_) {
    case Dist::kUniform:
      return static_cast<std::int64_t>(rng.next_below(n_));
    case Dist::kZipf:
      return static_cast<std::int64_t>(zipf_.next(rng));
    case Dist::kHotset: {
      // The hot draw consumes one rng value, the key another, regardless of
      // outcome — keeps the stream length per op fixed.
      const bool hot = unit_uniform(rng) < hot_prob_;
      const std::uint64_t cold_n = n_ - hot_n_;
      if (hot || cold_n == 0) {
        return static_cast<std::int64_t>(rng.next_below(hot_n_));
      }
      return static_cast<std::int64_t>(hot_n_ + rng.next_below(cold_n));
    }
  }
  return 0;  // unreachable
}

void OpStream::fill(unsigned tid, std::uint64_t n,
                    std::vector<Op>& out) const {
  SplitMix64 rng(derive_stream_seed(spec_.seed, tid));
  out.reserve(out.size() + n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const unsigned pct = rng.next_percent();
    const OpKind kind = pct < spec_.get_pct                  ? OpKind::kGet
                        : pct < spec_.get_pct + spec_.put_pct ? OpKind::kPut
                                                              : OpKind::kDel;
    out.push_back({kind, keys_.next(rng)});
  }
}

void OpStream::fill_arrivals_ns(unsigned tid, std::uint64_t n,
                                std::vector<std::uint64_t>& out) const {
  SplitMix64 rng(derive_stream_seed(spec_.seed, tid, /*salt=*/0x0A11));
  const double mean_ns =
      spec_.openloop_rate > 0.0 ? 1e9 / spec_.openloop_rate : 0.0;
  out.reserve(out.size() + n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (mean_ns == 0.0) {
      out.push_back(0);
      continue;
    }
    // Inverse-CDF exponential; 1-u keeps the argument strictly positive.
    const double u = unit_uniform(rng);
    out.push_back(
        static_cast<std::uint64_t>(-std::log(1.0 - u) * mean_ns));
  }
}

ServiceOptions ServiceOptions::from_env() {
  ServiceOptions o;
  o.shards = static_cast<unsigned>(env_u64("PTO_SVC_SHARDS", o.shards));
  if (const char* v = std::getenv("PTO_SVC_STRUCT");
      v != nullptr && *v != '\0') {
    if (std::strcmp(v, "skip") == 0) {
      o.structure = Structure::kSkiplist;
    } else if (std::strcmp(v, "hash") == 0) {
      o.structure = Structure::kHash;
    } else {
      warn_once("PTO_SVC_STRUCT",
                "ignoring invalid PTO_SVC_STRUCT='%s' (want skip|hash); "
                "using skip",
                v);
    }
  }
  if (const char* v = std::getenv("PTO_SVC_BATCH");
      v != nullptr && *v != '\0') {
    char* end = nullptr;
    auto parsed = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0') {  // 0 is a valid "unbatched" setting
      o.batch = static_cast<unsigned>(parsed);
    } else {
      warn_once("PTO_SVC_BATCH",
                "ignoring invalid PTO_SVC_BATCH='%s' (want a non-negative "
                "integer); using default %u",
                v, o.batch);
    }
  }
  if (const char* v = std::getenv("PTO_SVC_PIN"); v != nullptr && *v != '\0') {
    if (std::strcmp(v, "0") == 0) {
      o.pin = false;
    } else if (std::strcmp(v, "1") != 0) {
      warn_once("PTO_SVC_PIN",
                "ignoring invalid PTO_SVC_PIN='%s' (want 0|1); using %d", v,
                o.pin ? 1 : 0);
    }
  }
  WorkloadSpec& w = o.workload;
  w.keyspace = env_u64("PTO_SVC_KEYS", w.keyspace);
  if (w.keyspace < 2) {
    warn_once("PTO_SVC_KEYS.min", "PTO_SVC_KEYS=%llu too small; using 2",
              static_cast<unsigned long long>(w.keyspace));
    w.keyspace = 2;
  }
  if (const char* v = std::getenv("PTO_SVC_DIST");
      v != nullptr && *v != '\0') {
    if (std::strcmp(v, "uniform") == 0) {
      w.dist = Dist::kUniform;
    } else if (std::strcmp(v, "zipf") == 0) {
      w.dist = Dist::kZipf;
    } else if (std::strcmp(v, "hotset") == 0) {
      w.dist = Dist::kHotset;
    } else {
      warn_once("PTO_SVC_DIST",
                "ignoring invalid PTO_SVC_DIST='%s' (want "
                "uniform|zipf|hotset); using zipf",
                v);
    }
  }
  // theta = 1 divides the harmonic normalization; keep strictly below.
  w.theta = env_double("PTO_SVC_SKEW", w.theta, 0.0, 0.9999);
  w.hot_fraction = env_double("PTO_SVC_HOTFRAC", w.hot_fraction, 1e-6, 1.0);
  w.hot_prob = env_double("PTO_SVC_HOTPROB", w.hot_prob, 0.0, 1.0);
  w.get_pct = env_pct("PTO_SVC_READPCT", w.get_pct);
  w.put_pct = env_pct("PTO_SVC_PUTPCT", w.put_pct);
  if (w.get_pct + w.put_pct > 100) {
    warn_once("PTO_SVC_MIX",
              "PTO_SVC_READPCT=%u + PTO_SVC_PUTPCT=%u exceed 100; using "
              "defaults 50/25",
              w.get_pct, w.put_pct);
    w.get_pct = 50;
    w.put_pct = 25;
  }
  w.openloop_rate = env_double("PTO_SVC_OPENLOOP", w.openloop_rate, 0.0, 1e9);
  w.seed = env_u64("PTO_SVC_SEED", w.seed);
  return o;
}

const char* structure_name(Structure s) {
  return s == Structure::kSkiplist ? "skip" : "hash";
}

const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kZipf: return "zipf";
    case Dist::kHotset: return "hotset";
  }
  return "?";
}

}  // namespace pto::service
