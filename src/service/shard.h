// pto::service shard router: a key-value (key-set) service front end over
// per-shard instances of the paper's structures, templated on Platform so the
// exact same router runs on real std::threads (NativePlatform, bench/svc_kv)
// and on simx virtual threads (SimPlatform — the deterministic twin the
// differential tests replay a WorkloadSpec under).
//
// Keys hash to shards through a SplitMix64-style finalizer, so contiguous or
// zipf-clustered hot keys spread across shards instead of piling onto shard
// 0. Each shard is an independent structure with its own epoch domain
// (src/reclaim); a Client registers one ThreadCtx per shard and must be used
// by a single thread, mirroring the per-thread ctx discipline of the
// underlying structures.
//
// BatchingClient adds optional per-shard request batching: ops buffer
// per shard and apply when a shard's buffer reaches the batch size. Per-key
// program order is preserved (a key always maps to the same shard and a
// shard's buffer drains in order); cross-shard program order is relaxed —
// the usual pipelined-client contract. Recorded latency spans enqueue to
// completion, so buffering delay is charged to the op.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ds/hashtable/fset_hash.h"
#include "ds/skiplist/skiplist.h"
#include "obs/obs.h"
#include "obs/tsc.h"
#include "service/loadgen.h"

namespace pto::service {

/// SplitMix64 finalizer: full-avalanche key -> shard spreading.
inline std::uint64_t mix_key(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

// ---------------------------------------------------------------------------
// Structure adapters: normalize each src/ds structure to get/put/del.
// ---------------------------------------------------------------------------

template <class P>
struct SkipAdapter {
  using DS = SkipList<P>;
  using Ctx = typename DS::ThreadCtx;
  static constexpr Structure kStructure = Structure::kSkiplist;

  bool pto = true;  ///< PTO-accelerated ops vs the plain lock-free baseline

  bool put(DS& d, Ctx& c, std::int64_t k) const {
    return pto ? d.insert_pto(c, k) : d.insert_lf(c, k);
  }
  bool del(DS& d, Ctx& c, std::int64_t k) const {
    return pto ? d.remove_pto(c, k) : d.remove_lf(c, k);
  }
  bool get(DS& d, Ctx& c, std::int64_t k) const { return d.contains(c, k); }
};

template <class P>
struct HashAdapter {
  using DS = FSetHash<P>;
  using Ctx = typename DS::ThreadCtx;
  using Mode = typename DS::Mode;
  static constexpr Structure kStructure = Structure::kHash;

  /// kPto by default: transactional lookups with elided epoch fences, CoW
  /// updates — safe to mix with every other mode's updates.
  Mode mode = Mode::kPto;

  bool put(DS& d, Ctx& c, std::int64_t k) const {
    return d.insert(c, k, mode);
  }
  bool del(DS& d, Ctx& c, std::int64_t k) const {
    return d.remove(c, k, mode);
  }
  bool get(DS& d, Ctx& c, std::int64_t k) const {
    return d.contains(c, k, mode);
  }
};

/// Latency sites shared by every service driver; interned once.
struct SvcSites {
  obs::LatencySite* get;
  obs::LatencySite* put;
  obs::LatencySite* del;

  static SvcSites intern() {
    return {obs::intern_latency_site("svc.get"),
            obs::intern_latency_site("svc.put"),
            obs::intern_latency_site("svc.del")};
  }
  obs::LatencySite* of(OpKind k) const {
    return k == OpKind::kGet ? get : k == OpKind::kPut ? put : del;
  }
};

// ---------------------------------------------------------------------------
// The router
// ---------------------------------------------------------------------------

template <class P, class A>
class ShardedKV {
 public:
  using DS = typename A::DS;
  using Ctx = typename A::Ctx;

  explicit ShardedKV(unsigned nshards, A adapter = {}) : adapter_(adapter) {
    shards_.reserve(nshards);
    for (unsigned s = 0; s < nshards; ++s) {
      shards_.push_back(std::make_unique<DS>());
    }
  }

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  static unsigned shard_of(std::int64_t key, unsigned nshards) {
    return static_cast<unsigned>(mix_key(static_cast<std::uint64_t>(key)) %
                                 nshards);
  }

  /// Per-thread access handle: one ThreadCtx (epoch registration) per shard.
  /// Single-thread use only; destroy to release the epoch slots (thread
  /// churn in the service maps to client churn here).
  class Client {
   public:
    explicit Client(ShardedKV& kv) : kv_(&kv) {
      ctxs_.reserve(kv.shards());
      for (unsigned s = 0; s < kv.shards(); ++s) {
        ctxs_.emplace_back(kv.shards_[s]->make_ctx());
      }
    }

    bool put(std::int64_t k) {
      const unsigned s = shard_of(k, kv_->shards());
      const bool ok = kv_->adapter_.put(*kv_->shards_[s], ctxs_[s], k);
      puts_ok += ok;
      return ok;
    }
    bool del(std::int64_t k) {
      const unsigned s = shard_of(k, kv_->shards());
      const bool ok = kv_->adapter_.del(*kv_->shards_[s], ctxs_[s], k);
      dels_ok += ok;
      return ok;
    }
    bool get(std::int64_t k) {
      const unsigned s = shard_of(k, kv_->shards());
      return kv_->adapter_.get(*kv_->shards_[s], ctxs_[s], k);
    }

    bool exec(const Op& op) {
      switch (op.kind) {
        case OpKind::kGet: return get(op.key);
        case OpKind::kPut: return put(op.key);
        case OpKind::kDel: return del(op.key);
      }
      return false;  // unreachable
    }

    /// Conservation counters: for set semantics, final service size must
    /// equal sum over clients of (puts_ok - dels_ok) plus the prefill.
    std::uint64_t puts_ok = 0;
    std::uint64_t dels_ok = 0;

   private:
    ShardedKV* kv_;
    std::vector<Ctx> ctxs_;
  };

  Client make_client() { return Client(*this); }

  std::size_t size_slow() {
    std::size_t n = 0;
    for (auto& s : shards_) n += s->size_slow();
    return n;
  }

  bool check_invariants() {
    for (auto& s : shards_) {
      if (!s->check_invariants()) return false;
    }
    return true;
  }

 private:
  friend class Client;
  A adapter_;
  std::vector<std::unique_ptr<DS>> shards_;
};

/// Per-shard batching wrapper around Client. exec() buffers; a shard's
/// buffer applies in enqueue order once it reaches `batch` ops (flush_all()
/// drains the tails). With PTO_OBS armed, each op's recorded latency runs
/// from enqueue to its batched completion.
template <class KV>
class BatchingClient {
 public:
  BatchingClient(KV& kv, unsigned batch, const SvcSites* sites = nullptr)
      : c_(kv.make_client()),
        nshards_(kv.shards()),
        batch_(batch == 0 ? 1 : batch),
        sites_(sites),
        bufs_(nshards_) {
    for (auto& b : bufs_) b.reserve(batch_);
  }

  void exec(const Op& op) {
    const unsigned s = KV::shard_of(op.key, nshards_);
    const std::uint64_t t0 =
        sites_ != nullptr && obs::hist_on() ? obs::now_ticks() : 0;
    bufs_[s].push_back({op, t0});
    if (bufs_[s].size() >= batch_) flush(s);
  }

  void flush_all() {
    for (unsigned s = 0; s < nshards_; ++s) {
      if (!bufs_[s].empty()) flush(s);
    }
  }

  typename KV::Client& client() { return c_; }

 private:
  struct Pending {
    Op op;
    std::uint64_t enqueue_ticks;
  };

  void flush(unsigned s) {
    for (const Pending& p : bufs_[s]) {
      const std::uint64_t fb0 = obs::fallbacks_now();
      c_.exec(p.op);
      if (p.enqueue_ticks != 0) {
        const std::uint64_t t1 = obs::now_ticks();
        obs::record_latency(sites_->of(p.op.kind),
                            obs::fallbacks_now() != fb0,
                            t1 > p.enqueue_ticks ? t1 - p.enqueue_ticks : 0);
      }
    }
    bufs_[s].clear();
  }

  typename KV::Client c_;
  unsigned nshards_;
  std::size_t batch_;
  const SvcSites* sites_;
  std::vector<std::vector<Pending>> bufs_;
};

}  // namespace pto::service
