#include "service/runtime.h"

#include <atomic>

#include "common/warn.h"
#include "htm/htm.h"
#include "obs/tsc.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pto::service {

void Runtime::pin_to_cpu(unsigned tid) {
#if defined(__linux__)
  // Enumerate the CPUs this process may run on (a cgroup/taskset-restricted
  // mask is common on CI runners) and pin round-robin over that set, not
  // over raw CPU numbers that may be outside it.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
    warn_once("service.pin", "sched_getaffinity failed; running unpinned");
    return;
  }
  const int navail = CPU_COUNT(&allowed);
  if (navail <= 0) {
    warn_once("service.pin", "empty CPU affinity mask; running unpinned");
    return;
  }
  int want = static_cast<int>(tid) % navail;
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    if (want-- == 0) {
      cpu = c;
      break;
    }
  }
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  if (pthread_setaffinity_np(pthread_self(), sizeof(one), &one) != 0) {
    warn_once("service.pin", "pthread_setaffinity_np failed; running unpinned");
  }
#else
  (void)tid;
  warn_once("service.pin", "no CPU affinity API on this platform; unpinned");
#endif
}

Runtime::Runtime(RuntimeOptions opts) : opts_(opts) {
  // Resolve the HTM backend before any worker can race the probe
  // (htm.h requires selection before concurrent transactions).
  (void)htm::backend();
  workers_.reserve(opts_.threads);
  for (unsigned t = 0; t < opts_.threads; ++t) {
    workers_.emplace_back([this, t] { worker(t); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& th : workers_) th.join();
}

void Runtime::worker(unsigned tid) {
  if (opts_.pin) pin_to_cpu(tid);
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      ++armed_;
    }
    done_cv_.notify_all();  // run() counts armed workers
    // Tight start edge: every worker leaves this spin in the same release.
    while (go_.load(std::memory_order_acquire) != seen) {
    }
    (*body)(tid);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --pending_;
    }
    done_cv_.notify_all();
  }
}

std::uint64_t Runtime::run(const std::function<void(unsigned)>& body) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    body_ = &body;
    armed_ = 0;
    pending_ = opts_.threads;
    ++generation_;
  }
  cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return armed_ == opts_.threads; });
  }
  const std::uint64_t t0 = obs::steady_ns();
  go_.store(generation_, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return pending_ == 0; });
  }
  return obs::steady_ns() - t0;
}

}  // namespace pto::service
