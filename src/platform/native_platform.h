// NativePlatform: Platform implementation for real threads, backed by
// std::atomic plus the native HTM facade (RTM when available, SoftHTM
// otherwise). Under SoftHTM every access is routed through the strongly-
// atomic accessors (see htm/softhtm.h); under RTM accesses compile to plain
// std::atomic operations.
#pragma once

#include <atomic>
#include <csetjmp>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "htm/htm.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pto {

struct NativePlatform {
  static bool soft_backend() { return htm::backend() == htm::Backend::kSoft; }

  template <class T>
  class atomic {
   public:
    atomic() : a_{} {}
    explicit atomic(T v) : a_(v) {}
    atomic(const atomic&) = delete;
    atomic& operator=(const atomic&) = delete;

    T load(std::memory_order mo = std::memory_order_seq_cst) const {
      if (PTO_UNLIKELY(soft_backend())) {
        if (softhtm::in_tx()) return softhtm::tx_load(a_);
        return softhtm::nt_load(a_);
      }
      return a_.load(mo);
    }

    void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
      if (PTO_UNLIKELY(soft_backend())) {
        if (softhtm::in_tx()) {
          softhtm::tx_store(a_, v);
        } else {
          softhtm::nt_store(a_, v);
        }
        return;
      }
      a_.store(v, mo);
    }

    bool compare_exchange_strong(
        T& expected, T desired,
        std::memory_order mo = std::memory_order_seq_cst) {
      if (PTO_UNLIKELY(soft_backend())) {
        if (softhtm::in_tx()) {
          T cur = softhtm::tx_load(a_);
          if (cur != expected) {
            expected = cur;
            return false;
          }
          softhtm::tx_store(a_, desired);
          return true;
        }
        return softhtm::nt_cas(a_, expected, desired);
      }
      return a_.compare_exchange_strong(expected, desired, mo);
    }

    T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst)
      requires std::is_integral_v<T>
    {
      if (PTO_UNLIKELY(soft_backend())) {
        if (softhtm::in_tx()) {
          T cur = softhtm::tx_load(a_);
          softhtm::tx_store(a_, static_cast<T>(cur + delta));
          return cur;
        }
        return softhtm::nt_fetch_add(a_, delta);
      }
      return a_.fetch_add(delta, mo);
    }

    void init(T v) { a_.store(v, std::memory_order_relaxed); }

   private:
    std::atomic<T> a_;
  };

  /// Fences inside hardware transactions are skipped: they are subsumed by
  /// TxBegin/TxEnd (and MFENCE may abort an RTM transaction outright).
  static void fence() {
    if (htm::in_tx()) return;
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  static unsigned tx_begin() { return htm::tx_begin(); }
  static void tx_end() { htm::tx_end(); }
  template <unsigned char C>
  [[noreturn]] static void tx_abort() {
    htm::tx_abort<C>();
  }
  static bool in_tx() { return htm::in_tx(); }
  static std::jmp_buf& tx_checkpoint() { return htm::checkpoint(); }
  static unsigned char last_user_code() { return htm::last_user_code(); }

  /// Only real RTM gives strong atomicity; under SoftHTM value-based
  /// validation could be fooled by memory reuse, so epoch reservations are
  /// NOT elided there (reclaim/epoch.h consults this).
  static bool strongly_atomic() { return htm::strongly_atomic(); }

  static std::uint64_t rnd();
  static void pause() {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#endif
  }

  template <class T, class... A>
  static T* make(A&&... args) {
    return ::new T(std::forward<A>(args)...);
  }

  template <class T>
  static void destroy(T* p) {
    delete p;
  }

  static void* alloc_bytes(std::size_t n) { return ::operator new(n); }
  static void free_bytes(void* p, std::size_t) { ::operator delete(p); }
};

}  // namespace pto
