// The Platform policy: the single template parameter every data structure,
// the epoch reclaimer, and the kcas substrate are written against.
//
// A Platform provides:
//   - atomic<T>         instrumented atomic cell (load/store/CAS/fetch_add)
//   - fence()           seq_cst fence (elided inside transactions)
//   - tx_begin/tx_end/tx_abort<code>/in_tx/tx_checkpoint
//   - strongly_atomic() whether tx vs non-tx interaction is safe enough to
//                       elide epoch reservations inside transactions
//   - make<T>/destroy<T>, alloc_bytes/free_bytes
//   - rnd(), pause()
//
// Two models exist: NativePlatform (std::atomic + RTM or SoftHTM) and
// SimPlatform (the simulated multicore). Transactional code must be
// longjmp-safe: no non-trivially-destructible locals live across a tx body.
#pragma once

#include <atomic>
#include <concepts>
#include <csetjmp>
#include <cstdint>

namespace pto {

template <class P>
concept Platform = requires(unsigned char code) {
  typename P::template atomic<int>;
  { P::fence() } -> std::same_as<void>;
  { P::tx_begin() } -> std::convertible_to<unsigned>;
  { P::tx_end() } -> std::same_as<void>;
  { P::in_tx() } -> std::convertible_to<bool>;
  { P::strongly_atomic() } -> std::convertible_to<bool>;
  { P::rnd() } -> std::convertible_to<std::uint64_t>;
  { P::pause() } -> std::same_as<void>;
};

/// Convenience alias: Atom<P, T> is P's instrumented atomic<T>.
template <class P, class T>
using Atom = typename P::template atomic<T>;

}  // namespace pto
