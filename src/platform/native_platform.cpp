#include "platform/native_platform.h"

#include <chrono>

#include "common/rng.h"

namespace pto {

namespace {
thread_local SplitMix64 tls_rng = [] {
  static std::atomic<std::uint64_t> counter{0x5eed};
  return SplitMix64(counter.fetch_add(0x9E3779B97F4A7C15ull) ^
                    static_cast<std::uint64_t>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch()
                            .count()));
}();
}  // namespace

std::uint64_t NativePlatform::rnd() { return tls_rng.next(); }

}  // namespace pto
