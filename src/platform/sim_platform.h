// SimPlatform: Platform implementation backed by the simulated multicore.
// All operations are valid only on a virtual thread (inside sim::run).
#pragma once

#include <atomic>
#include <csetjmp>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/bits.h"
#include "sim/sim.h"

namespace pto {

struct SimPlatform {
  template <class T>
  class atomic {
   public:
    atomic() : v_{} {}
    explicit atomic(T v) : v_(v) {}
    atomic(const atomic&) = delete;
    atomic& operator=(const atomic&) = delete;

    T load(std::memory_order mo = std::memory_order_seq_cst) const {
      return narrow<T>(
          sim::mem_load(&v_, sizeof(T), static_cast<unsigned>(mo)));
    }

    /// seq_cst stores pay the fence cost (x86 XCHG); weaker orders do not.
    /// Inside a transaction the fence is elided automatically.
    void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
      sim::mem_store(&v_, sizeof(T), widen(v), static_cast<unsigned>(mo));
      if (mo == std::memory_order_seq_cst) sim::fence();
    }

    bool compare_exchange_strong(
        T& expected, T desired,
        std::memory_order = std::memory_order_seq_cst) {
      std::uint64_t e = widen(expected);
      bool ok = sim::mem_cas(&v_, sizeof(T), e, widen(desired));
      if (!ok) expected = narrow<T>(e);
      return ok;
    }

    T fetch_add(T delta, std::memory_order = std::memory_order_seq_cst)
      requires std::is_integral_v<T>
    {
      return narrow<T>(
          sim::mem_fetch_add(&v_, sizeof(T), widen(delta)));
    }

    /// Uninstrumented initialization, for constructing objects before they
    /// are published (costs nothing, participates in no conflict detection).
    void init(T v) { v_ = v; }

   private:
    T v_;
  };

  static void fence() { sim::fence(); }

  static unsigned tx_begin() { return sim::tx_begin(); }
  static void tx_end() { sim::tx_end(); }
  template <unsigned char C>
  [[noreturn]] static void tx_abort() {
    sim::tx_abort(C);
  }
  static bool in_tx() { return sim::in_tx(); }
  static std::jmp_buf& tx_checkpoint() { return sim::tx_checkpoint(); }
  static unsigned char last_user_code() { return sim::last_user_code(); }
  static bool strongly_atomic() { return true; }

  static std::uint64_t rnd() { return sim::rnd(); }
  static void pause() { sim::cpu_pause(); }

  template <class T, class... A>
  static T* make(A&&... args) {
    void* p = sim::alloc(sizeof(T));
    return ::new (p) T(std::forward<A>(args)...);
  }

  template <class T>
  static void destroy(T* p) {
    p->~T();
    sim::dealloc(p, sizeof(T));
  }

  static void* alloc_bytes(std::size_t n) { return sim::alloc(n); }
  static void free_bytes(void* p, std::size_t n) { sim::dealloc(p, n); }
};

}  // namespace pto
