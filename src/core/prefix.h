// The Prefix Transaction combinator — the paper's Definition 1 as a library.
//
//   prefix<P>(policy, fast, slow)
//
// attempts to run `fast` inside a hardware transaction up to policy.attempts
// times, then runs `slow` (the unmodified lock-free code) outside any
// transaction. Both callables must return the same type. `fast` runs under
// transactional semantics: it may call P::tx_abort<code>() to bail out (the
// paper's §2.4 "avoid helping" pattern), must not allocate host resources
// that need unwinding (aborts longjmp / hardware-rollback past it), and its
// shared accesses go through P::atomic.
//
// Progress (paper Theorems 2 & 3): attempts are finite and the fallback is
// the original algorithm, so the composition preserves lock-/wait-freedom.
//
// Composition (paper §2.5): nest by making `slow` itself call prefix —
// e.g. BST PTO1+PTO2 is prefix(2, wholeOp, [&]{ return insertPTO2(...); }).
#pragma once

#include <csetjmp>
#include <cstdint>
#include <type_traits>

#include "htm/txcode.h"
#include "platform/platform.h"

namespace pto {

/// Per-call-site statistics. Not thread-safe: keep one per thread and sum.
struct PrefixStats {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t aborts[kTxCodeCount] = {};

  std::uint64_t total_aborts() const {
    std::uint64_t n = 0;
    for (auto a : aborts) n += a;
    return n;
  }
  void accumulate(const PrefixStats& o) {
    attempts += o.attempts;
    commits += o.commits;
    fallbacks += o.fallbacks;
    for (unsigned i = 0; i < kTxCodeCount; ++i) aborts[i] += o.aborts[i];
  }
};

struct PrefixPolicy {
  int attempts = 1;
  /// Explicit aborts signal "this situation wants the fallback" (§2.4);
  /// retrying them is usually wasted work.
  bool retry_on_explicit = false;
  /// Capacity/duration aborts will recur; retry only if asked.
  bool retry_on_capacity = false;

  constexpr PrefixPolicy() = default;
  constexpr explicit PrefixPolicy(int n) : attempts(n) {}
};

namespace telemetry {
class Site;
// Telemetry hooks, defined in telemetry/registry.cpp (declared here to keep
// the core header free of the registry dependency). Each is a no-op unless
// telemetry is enabled (PTO_STATS / PTO_TRACE / PTO_TELEMETRY env vars or
// telemetry::set_enabled).
void site_attempt(Site* site);
void site_commit(Site* site);
void site_abort(Site* site, unsigned cause);
void site_fallback(Site* site);
void site_fallback_end(Site* site);
}  // namespace telemetry

/// Statistics sink for prefix(): an optional exact per-thread PrefixStats
/// plus an optional process-wide telemetry Site (see telemetry/registry.h).
/// Implicitly constructible from a bare PrefixStats* so existing call sites
/// keep working; data structures pass {local, PTO_TELEMETRY_SITE("name")} so
/// every prefix call site reports into the registry without extra plumbing.
class StatsHandle {
 public:
  constexpr StatsHandle() = default;
  constexpr StatsHandle(PrefixStats* local) : local_(local) {}
  constexpr StatsHandle(telemetry::Site* site) : site_(site) {}
  constexpr StatsHandle(PrefixStats* local, telemetry::Site* site)
      : local_(local), site_(site) {}

  void attempt() const {
    if (local_ != nullptr) ++local_->attempts;
    if (site_ != nullptr) telemetry::site_attempt(site_);
  }
  void commit() const {
    if (local_ != nullptr) ++local_->commits;
    if (site_ != nullptr) telemetry::site_commit(site_);
  }
  void abort(unsigned cause) const {
    if (local_ != nullptr) ++local_->aborts[cause];
    if (site_ != nullptr) telemetry::site_abort(site_, cause);
  }
  void fallback() const {
    if (local_ != nullptr) ++local_->fallbacks;
    if (site_ != nullptr) telemetry::site_fallback(site_);
  }
  /// Closes the fallback/fallback_done bracket so the profiler
  /// (telemetry/prof.h) can attribute the slow path's cycles; counts nothing.
  void fallback_done() const {
    if (site_ != nullptr) telemetry::site_fallback_end(site_);
  }

 private:
  PrefixStats* local_ = nullptr;
  telemetry::Site* site_ = nullptr;
};

template <class P, class Fast, class Slow>
auto prefix(PrefixPolicy pol, Fast&& fast, Slow&& slow,
            StatsHandle st = {}) -> std::invoke_result_t<Slow&> {
  using R = std::invoke_result_t<Slow&>;
  static_assert(std::is_same_v<R, std::invoke_result_t<Fast&>>,
                "fast and slow paths must return the same type");
  // volatile: locals modified between setjmp and longjmp are otherwise
  // indeterminate after an abort returns through the checkpoint.
  volatile int vi = 0;
  for (;;) {
    const int i = vi;
    if (i >= pol.attempts) break;
    vi = i + 1;
    st.attempt();
    unsigned s;
    if (!P::in_tx()) {
      // Software backends abort via longjmp; arm the checkpoint in THIS
      // frame, which stays live for the whole transaction. RTM ignores it.
      int j = setjmp(P::tx_checkpoint());
      s = (j == 0) ? P::tx_begin() : static_cast<unsigned>(j);
    } else {
      s = P::tx_begin();  // flat-nested inside an enclosing transaction
    }
    if (s == TX_STARTED) {
      if constexpr (std::is_void_v<R>) {
        fast();
        P::tx_end();
        st.commit();
        return;
      } else {
        R r = fast();
        P::tx_end();
        st.commit();
        return r;
      }
    }
    // Normalize first: a backend may surface a status outside our enum (an
    // unmapped RTM bit pattern, a stray longjmp payload); those land in the
    // OTHER bucket and are retried like transient aborts. Gating on the
    // normalized cause keeps the retry policy identical across backends —
    // DURATION is budget-gated exactly like CAPACITY whether it arrives from
    // the simulator's quantum check or from a software backend's longjmp.
    const unsigned cause = (s >= 1 && s < kTxCodeCount) ? s : TX_ABORT_OTHER;
    st.abort(cause);
    if (cause == TX_ABORT_EXPLICIT && !pol.retry_on_explicit) break;
    if ((cause == TX_ABORT_CAPACITY || cause == TX_ABORT_DURATION) &&
        !pol.retry_on_capacity) {
      break;
    }
  }
  st.fallback();
  if constexpr (std::is_void_v<R>) {
    slow();
    st.fallback_done();
    return;
  } else {
    R r = slow();
    st.fallback_done();
    return r;
  }
}

/// Convenience overload: attempts only.
template <class P, class Fast, class Slow>
auto prefix(int attempts, Fast&& fast, Slow&& slow,
            StatsHandle st = {}) -> std::invoke_result_t<Slow&> {
  return prefix<P>(PrefixPolicy(attempts), static_cast<Fast&&>(fast),
                   static_cast<Slow&&>(slow), st);
}

}  // namespace pto
