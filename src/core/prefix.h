// The Prefix Transaction combinator — the paper's Definition 1 as a library.
//
//   prefix<P>(policy, fast, slow)
//
// attempts to run `fast` inside a hardware transaction up to policy.attempts
// times, then runs `slow` (the unmodified lock-free code) outside any
// transaction. Both callables must return the same type. `fast` runs under
// transactional semantics: it may call P::tx_abort<code>() to bail out (the
// paper's §2.4 "avoid helping" pattern), must not allocate host resources
// that need unwinding (aborts longjmp / hardware-rollback past it), and its
// shared accesses go through P::atomic.
//
// Progress (paper Theorems 2 & 3): attempts are finite and the fallback is
// the original algorithm, so the composition preserves lock-/wait-freedom.
//
// Composition (paper §2.5): nest by making `slow` itself call prefix —
// e.g. BST PTO1+PTO2 is prefix(2, wholeOp, [&]{ return insertPTO2(...); }).
#pragma once

#include <csetjmp>
#include <cstdint>
#include <type_traits>

#include "htm/txcode.h"
#include "platform/platform.h"

namespace pto {

/// Per-call-site statistics. Not thread-safe: keep one per thread and sum.
struct PrefixStats {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t aborts[kTxCodeCount] = {};

  std::uint64_t total_aborts() const {
    std::uint64_t n = 0;
    for (auto a : aborts) n += a;
    return n;
  }
  void accumulate(const PrefixStats& o) {
    attempts += o.attempts;
    commits += o.commits;
    fallbacks += o.fallbacks;
    for (unsigned i = 0; i < kTxCodeCount; ++i) aborts[i] += o.aborts[i];
  }
};

struct PrefixPolicy {
  int attempts = 1;
  /// Explicit aborts signal "this situation wants the fallback" (§2.4);
  /// retrying them is usually wasted work.
  bool retry_on_explicit = false;
  /// Capacity/duration aborts will recur; retry only if asked.
  bool retry_on_capacity = false;

  constexpr PrefixPolicy() = default;
  constexpr explicit PrefixPolicy(int n) : attempts(n) {}
};

template <class P, class Fast, class Slow>
auto prefix(PrefixPolicy pol, Fast&& fast, Slow&& slow,
            PrefixStats* st = nullptr) -> std::invoke_result_t<Slow&> {
  using R = std::invoke_result_t<Slow&>;
  static_assert(std::is_same_v<R, std::invoke_result_t<Fast&>>,
                "fast and slow paths must return the same type");
  // volatile: locals modified between setjmp and longjmp are otherwise
  // indeterminate after an abort returns through the checkpoint.
  volatile int vi = 0;
  for (;;) {
    const int i = vi;
    if (i >= pol.attempts) break;
    vi = i + 1;
    if (st) ++st->attempts;
    unsigned s;
    if (!P::in_tx()) {
      // Software backends abort via longjmp; arm the checkpoint in THIS
      // frame, which stays live for the whole transaction. RTM ignores it.
      int j = setjmp(P::tx_checkpoint());
      s = (j == 0) ? P::tx_begin() : static_cast<unsigned>(j);
    } else {
      s = P::tx_begin();  // flat-nested inside an enclosing transaction
    }
    if (s == TX_STARTED) {
      if constexpr (std::is_void_v<R>) {
        fast();
        P::tx_end();
        if (st) ++st->commits;
        return;
      } else {
        R r = fast();
        P::tx_end();
        if (st) ++st->commits;
        return r;
      }
    }
    if (st) ++st->aborts[s < kTxCodeCount ? s : TX_ABORT_OTHER];
    if (s == TX_ABORT_EXPLICIT && !pol.retry_on_explicit) break;
    if ((s == TX_ABORT_CAPACITY || s == TX_ABORT_DURATION) &&
        !pol.retry_on_capacity) {
      break;
    }
  }
  if (st) ++st->fallbacks;
  return slow();
}

/// Convenience overload: attempts only.
template <class P, class Fast, class Slow>
auto prefix(int attempts, Fast&& fast, Slow&& slow,
            PrefixStats* st = nullptr) -> std::invoke_result_t<Slow&> {
  return prefix<P>(PrefixPolicy(attempts), static_cast<Fast&&>(fast),
                   static_cast<Slow&&>(slow), st);
}

}  // namespace pto
