// pto::telemetry — process-wide transaction telemetry registry.
//
// A *site* is a named aggregation point for PrefixStats-shaped counters
// ("bst.insert.pto1", "queue.enqueue", ...). Call sites obtain a site once
// with PTO_TELEMETRY_SITE("name") (a cached intern) and pass it to
// pto::prefix() through a StatsHandle; the native HTM facade (htm/htm.h) and
// the simulator report through the same sites, so native stress runs and
// simx runs share one schema.
//
// Counters are thread-sharded: each thread bumps its own cache-line-padded
// shard (virtual thread id inside a simulation, a thread-local slot on native
// threads), using relaxed atomics, so recording is lock-free and snapshotting
// never blocks writers. Snapshots sum the shards and may observe a record
// mid-flight — exact totals are guaranteed only at quiescence (which is when
// benches and tests read them).
//
// Zero overhead when off: recording is gated on a single relaxed bool that
// defaults to false and is flipped by PTO_STATS / PTO_TRACE / PTO_TELEMETRY
// or telemetry::set_enabled(). Inside the simulator no counter update ever
// charges virtual cycles, so enabling telemetry cannot change a simulated
// result — simx determinism doubles as the zero-overhead proof.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/defs.h"
#include "core/prefix.h"
#include "htm/txcode.h"

namespace pto::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when sites record events. Initialized from the environment
/// (PTO_STATS / PTO_TRACE / PTO_TELEMETRY, any non-empty value).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// One thread's slot of a site. Padded so concurrent native threads never
/// false-share.
struct alignas(kCacheLine) SiteShard {
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> fallbacks{0};
  std::atomic<std::uint64_t> aborts[kTxCodeCount]{};
};

class Site {
 public:
  explicit Site(std::string name, unsigned id = 0)
      : name_(std::move(name)), id_(id) {}
  ~Site();
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const { return name_; }
  /// Dense registration index (assigned by Registry::intern); used as the
  /// compact site key in flight-recorder records (obs/flight.h).
  unsigned id() const { return id_; }

  // Hot-path recorders; the enabled() gate lives in the site_* free functions
  // so pto::prefix() pays only a null check plus one branch when off.
  void record_attempt() {
    shard().attempts.fetch_add(1, std::memory_order_relaxed);
  }
  void record_commit() {
    shard().commits.fetch_add(1, std::memory_order_relaxed);
  }
  void record_fallback() {
    shard().fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  void record_abort(unsigned cause) {
    shard().aborts[cause < kTxCodeCount ? cause : TX_ABORT_OTHER].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Sum of all shards as a plain PrefixStats.
  PrefixStats snapshot() const;
  void reset();

 private:
  // Shard storage is segmented: the first kShardSeg slots (every slot a
  // <= 64-thread run ever touches) are embedded in the Site, so the common
  // case stays a single indexed access with no extra indirection branch
  // mispredicts; the remaining kMaxThreads - kShardSeg slots live in
  // lazily-allocated segments, so a site costs ~8 KB until a run actually
  // exceeds 64 live threads (eagerly sizing every site for 1024 threads
  // would be ~128 KB per site).
  static constexpr unsigned kShardSeg = 64;
  static constexpr unsigned kShardSegs = kMaxThreads / kShardSeg;

  SiteShard& shard();
  SiteShard& shard_at(unsigned slot);
  /// Cold path: materialize extension segment `seg` (registry.cpp).
  SiteShard* ext_segment(unsigned seg);

  std::string name_;
  unsigned id_;
  SiteShard shards_[kShardSeg];
  std::atomic<SiteShard*> ext_[kShardSegs - 1]{};
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create the site named `name`. Pointers are stable for the
  /// process lifetime (sites are never removed).
  Site* intern(std::string_view name);

  /// Stable pointers to every registered site, in registration order.
  std::vector<Site*> sites();

  /// Sum over every site.
  PrefixStats totals();

  /// Zero every shard of every site (tests / between measurement phases).
  void reset_all();

  /// Human-readable per-site table (the PTO_TELEMETRY_REPORT exit dump).
  void report(std::ostream& os);

 private:
  Registry() = default;
  std::mutex mu_;
  std::vector<std::unique_ptr<Site>> sites_;
};

/// Registry::instance().totals(), and its delta against an earlier snapshot.
PrefixStats registry_totals();
PrefixStats registry_delta(const PrefixStats& before);

}  // namespace pto::telemetry

/// Interns a telemetry site once per call site and returns the cached
/// Site*. Usable in any expression context, including template headers.
#define PTO_TELEMETRY_SITE(name)                             \
  ([]() -> ::pto::telemetry::Site* {                         \
    static ::pto::telemetry::Site* const pto_site_ =         \
        ::pto::telemetry::Registry::instance().intern(name); \
    return pto_site_;                                        \
  }())
