#include "telemetry/emit.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <ostream>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/buildinfo.h"
#include "telemetry/registry.h"

namespace pto::telemetry {

namespace {

StatsFormat format_from_env() {
  const char* v = std::getenv("PTO_STATS");
  if (v == nullptr || *v == '\0') return StatsFormat::kOff;
  if (std::strcmp(v, "csv") == 0) return StatsFormat::kCsv;
  if (std::strcmp(v, "json") == 0) return StatsFormat::kJson;
  std::fprintf(stderr, "PTO_STATS=%s not recognized (json|csv); ignoring\n",
               v);
  return StatsFormat::kOff;
}

struct State {
  StatsFormat format = format_from_env();
  std::ostream* os = nullptr;  ///< nullptr = stdout
  bool csv_header_done = false;
};

State& state() {
  static State s;
  return s;
}

std::ostream& out() {
  State& s = state();
  return s.os != nullptr ? *s.os : std::cout;
}

/// JSON string escaping for the label fields (quotes/backslashes/control).
void json_str(std::ostream& os, const std::string& v) {
  os << '"';
  for (char c : v) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void num(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

double fallback_fraction(const PrefixStats& p) {
  const std::uint64_t done = p.commits + p.fallbacks;
  return done == 0 ? 0.0
                   : static_cast<double>(p.fallbacks) /
                         static_cast<double>(done);
}

double tx_cycle_share(const BenchPoint& p) {
  return p.cpu_cycles == 0 ? 0.0
                           : static_cast<double>(p.sim.tx_cycles) /
                                 static_cast<double>(p.cpu_cycles);
}

/// RFC 4180 CSV field quoting: fields containing comma, quote, or newline
/// are wrapped in quotes with embedded quotes doubled.
void csv_str(std::ostream& os, const std::string& v) {
  if (v.find_first_of(",\"\n\r") == std::string::npos) {
    os << v;
    return;
  }
  os << '"';
  for (char c : v) {
    if (c == '"') os << "\"\"";
    else os << c;
  }
  os << '"';
}

const std::string& or_default(const std::string& v, const char* dflt) {
  static thread_local std::string tmp;
  if (!v.empty()) return v;
  tmp = dflt;
  return tmp;
}

/// The summary's fields without the enclosing braces, so the top-level
/// "latency" object can append the fast/fallback/sites members after them.
void json_summary_fields(std::ostream& os, const obs::HistSummary& s) {
  os << "\"samples\":" << s.samples << ",\"p50_ns\":" << s.p50
     << ",\"p90_ns\":" << s.p90 << ",\"p99_ns\":" << s.p99
     << ",\"p999_ns\":" << s.p999 << ",\"max_ns\":" << s.max;
}

void json_summary(std::ostream& os, const obs::HistSummary& s) {
  os << "{";
  json_summary_fields(os, s);
  os << "}";
}

void emit_json(std::ostream& os, const BenchPoint& p) {
  os << "{\"type\":\"bench_point\",\"schema_version\":" << kStatsSchemaVersion
     << ",\"bench\":";
  json_str(os, p.bench);
  os << ",\"series\":";
  json_str(os, p.series);
  os << ",\"threads\":" << p.threads << ",\"trials\":" << p.trials
     << ",\"ops\":" << p.sim.ops_completed << ",\"ops_per_ms\":";
  num(os, p.ops_per_ms);
  os << ",\"makespan_cycles\":" << p.makespan
     << ",\"cpu_cycles\":" << p.cpu_cycles
     << ",\"tx_started\":" << p.sim.tx_started
     << ",\"tx_commits\":" << p.sim.tx_commits
     << ",\"tx_cycles\":" << p.sim.tx_cycles << ",\"tx_cycle_share\":";
  num(os, tx_cycle_share(p));
  os << ",\"aborts\":{";
  for (unsigned c = 0; c < kTxCodeCount; ++c) {
    os << (c == 0 ? "\"" : ",\"") << tx_code_name(c)
       << "\":" << p.sim.tx_aborts[c];
  }
  os << "},\"abort_total\":" << p.sim.total_aborts()
     << ",\"fences\":" << p.sim.fences
     << ",\"fences_elided\":" << p.sim.fences_elided
     << ",\"allocs\":" << p.sim.allocs << ",\"frees\":" << p.sim.frees
     << ",\"prefix_attempts\":" << p.prefix.attempts
     << ",\"prefix_commits\":" << p.prefix.commits
     << ",\"prefix_fallbacks\":" << p.prefix.fallbacks
     << ",\"fallback_fraction\":";
  num(os, fallback_fraction(p.prefix));
  // v2: per-cause prefix abort buckets — on native runs this is where the
  // decoded RTM/SoftHTM abort causes land (sim.tx_aborts stays zero there).
  os << ",\"prefix_aborts\":{";
  for (unsigned c = 1; c < kTxCodeCount; ++c) {
    os << (c == 1 ? "\"" : ",\"") << tx_code_name(c)
       << "\":" << p.prefix.aborts[c];
  }
  os << "},\"latency\":{";
  json_summary_fields(os, p.lat);
  os << ",\"fast\":";
  json_summary(os, p.lat_fast);
  os << ",\"fallback\":";
  json_summary(os, p.lat_fallback);
  if (!p.lat_sites.empty()) {
    os << ",\"sites\":[";
    for (std::size_t i = 0; i < p.lat_sites.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"site\":";
      json_str(os, p.lat_sites[i].site);
      os << ",\"fast\":";
      json_summary(os, p.lat_sites[i].fast);
      os << ",\"fallback\":";
      json_summary(os, p.lat_sites[i].fallback);
      os << "}";
    }
    os << "]";
  }
  os << "}";
  if (p.perf.valid) {
    os << ",\"perf\":{\"cycles\":" << p.perf.cycles
       << ",\"instructions\":" << p.perf.instructions
       << ",\"llc_misses\":" << p.perf.llc_misses;
    if (p.perf.tsx_valid) {
      os << ",\"tx_start\":" << p.perf.tx_start
         << ",\"tx_abort\":" << p.perf.tx_abort
         << ",\"tx_capacity\":" << p.perf.tx_capacity
         << ",\"tx_conflict\":" << p.perf.tx_conflict;
    }
    os << "}";
  }
  os << ",\"git_sha\":";
  json_str(os, or_default(p.git_sha, build_git_sha()));
  os << ",\"build_type\":";
  json_str(os, or_default(p.build_type, build_type()));
  os << ",\"fiber_backend\":";
  json_str(os, or_default(p.fiber_backend, fiber_backend()));
  const std::string now = iso8601_now();
  os << ",\"ts_start\":";
  json_str(os, or_default(p.ts_start, now.c_str()));
  os << ",\"ts_end\":";
  json_str(os, or_default(p.ts_end, now.c_str()));
  os << ",\"hostname\":";
  json_str(os, or_default(p.hostname, host_name().c_str()));
  os << ",\"intervals\":" << p.intervals;
  os << "}\n";
}

void csv_summary_header(std::ostream& os, const char* prefix) {
  os << ',' << prefix << "_samples," << prefix << "_p50_ns," << prefix
     << "_p90_ns," << prefix << "_p99_ns," << prefix << "_p999_ns," << prefix
     << "_max_ns";
}

void csv_summary(std::ostream& os, const obs::HistSummary& s) {
  os << ',' << s.samples << ',' << s.p50 << ',' << s.p90 << ',' << s.p99
     << ',' << s.p999 << ',' << s.max;
}

void emit_csv(std::ostream& os, const BenchPoint& p, bool header) {
  if (header) {
    os << "bench,series,threads,trials,ops,ops_per_ms,makespan_cycles,"
          "cpu_cycles,tx_started,tx_commits,tx_cycles,tx_cycle_share";
    for (unsigned c = 0; c < kTxCodeCount; ++c) {
      os << ",aborts_" << tx_code_name(c);
    }
    os << ",abort_total,fences,fences_elided,allocs,frees,prefix_attempts,"
          "prefix_commits,prefix_fallbacks,fallback_fraction";
    for (unsigned c = 1; c < kTxCodeCount; ++c) {
      os << ",prefix_aborts_" << tx_code_name(c);
    }
    csv_summary_header(os, "lat");
    csv_summary_header(os, "lat_fast");
    csv_summary_header(os, "lat_fallback");
    // Perf cells stay empty (not zero) when counters were unavailable, so
    // "sampled as zero" and "not sampled" are distinguishable.
    os << ",perf_cycles,perf_instructions,perf_llc_misses,perf_tx_start,"
          "perf_tx_abort,perf_tx_capacity,perf_tx_conflict";
    os << ",schema_version,git_sha,build_type,fiber_backend,ts_start,ts_end,"
          "hostname,intervals\n";
  }
  csv_str(os, p.bench);
  os << ',';
  csv_str(os, p.series);
  os << ',' << p.threads << ',' << p.trials
     << ',' << p.sim.ops_completed << ',';
  num(os, p.ops_per_ms);
  os << ',' << p.makespan << ',' << p.cpu_cycles << ',' << p.sim.tx_started
     << ',' << p.sim.tx_commits << ',' << p.sim.tx_cycles << ',';
  num(os, tx_cycle_share(p));
  for (unsigned c = 0; c < kTxCodeCount; ++c) os << ',' << p.sim.tx_aborts[c];
  os << ',' << p.sim.total_aborts() << ',' << p.sim.fences << ','
     << p.sim.fences_elided << ',' << p.sim.allocs << ',' << p.sim.frees
     << ',' << p.prefix.attempts << ',' << p.prefix.commits << ','
     << p.prefix.fallbacks << ',';
  num(os, fallback_fraction(p.prefix));
  for (unsigned c = 1; c < kTxCodeCount; ++c) {
    os << ',' << p.prefix.aborts[c];
  }
  csv_summary(os, p.lat);
  csv_summary(os, p.lat_fast);
  csv_summary(os, p.lat_fallback);
  if (p.perf.valid) {
    os << ',' << p.perf.cycles << ',' << p.perf.instructions << ','
       << p.perf.llc_misses;
    if (p.perf.tsx_valid) {
      os << ',' << p.perf.tx_start << ',' << p.perf.tx_abort << ','
         << p.perf.tx_capacity << ',' << p.perf.tx_conflict;
    } else {
      os << ",,,,";
    }
  } else {
    os << ",,,,,,,";
  }
  os << ',' << kStatsSchemaVersion << ',';
  csv_str(os, or_default(p.git_sha, build_git_sha()));
  os << ',';
  csv_str(os, or_default(p.build_type, build_type()));
  os << ',';
  csv_str(os, or_default(p.fiber_backend, fiber_backend()));
  const std::string now = iso8601_now();
  os << ',';
  csv_str(os, or_default(p.ts_start, now.c_str()));
  os << ',';
  csv_str(os, or_default(p.ts_end, now.c_str()));
  os << ',';
  csv_str(os, or_default(p.hostname, host_name().c_str()));
  os << ',' << p.intervals << '\n';
}

}  // namespace

StatsFormat stats_format() { return state().format; }

void set_stats_format(StatsFormat f) {
  state().format = f;
  state().csv_header_done = false;
  if (f != StatsFormat::kOff) set_enabled(true);
}

void set_stats_stream(std::ostream* os) { state().os = os; }

std::string iso8601_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  const auto ms = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ms);
  return buf;
}

const std::string& host_name() {
  static const std::string h = [] {
#if defined(_WIN32)
    return std::string("unknown");
#else
    char buf[256];
    if (::gethostname(buf, sizeof buf) == 0) {
      buf[sizeof buf - 1] = '\0';
      return std::string(buf);
    }
    return std::string("unknown");
#endif
  }();
  return h;
}

void emit_bench_point(const BenchPoint& p) {
  State& s = state();
  switch (s.format) {
    case StatsFormat::kOff:
      return;
    case StatsFormat::kJson:
      emit_json(out(), p);
      break;
    case StatsFormat::kCsv:
      emit_csv(out(), p, !s.csv_header_done);
      s.csv_header_done = true;
      break;
  }
  out().flush();
}

}  // namespace pto::telemetry
