// simx event tracing: a bounded ring-buffer recorder for simulator events
// (transaction commit/abort with cause and cycle timestamps, coherence
// misses, fiber scheduling), exported as Chrome trace_event JSON so a run can
// be opened in chrome://tracing or https://ui.perfetto.dev.
//
//   PTO_TRACE=out.json     enable; the file is (re)written at the end of
//                          every sim::run() and holds all events recorded
//                          since the process started (bounded by the ring)
//   PTO_TRACE_CAP=N        ring capacity in events (default 262144); when
//                          full the oldest events are dropped and the drop
//                          count is reported in the file's otherData
//   PTO_TRACE_SCHED=1      also record fiber dispatch switches (high volume)
//
// Timestamps are virtual cycles converted to microseconds at the paper's
// 3.4 GHz, so trace timelines share units with the figures. Each sim::run()
// gets its own trace pid; virtual threads map to tids.
//
// The recorder is intentionally simulator-only and therefore single-host-
// threaded (sim::run is not reentrant); recording charges no virtual cycles,
// so tracing never perturbs a simulated result.
#pragma once

#include <atomic>
#include <cstdint>

namespace pto::telemetry {

namespace trace_detail {
extern std::atomic<bool> g_on;
extern std::atomic<bool> g_sched_on;
}  // namespace trace_detail

/// Cheap gate for instrumentation points.
inline bool trace_on() {
  return trace_detail::g_on.load(std::memory_order_relaxed);
}
inline bool trace_sched_on() {
  return trace_detail::g_sched_on.load(std::memory_order_relaxed);
}

/// Programmatic control (tests). Path nullptr or "" disables tracing and
/// clears the buffer; a non-empty path enables it.
void trace_set_path(const char* path);
void trace_set_sched(bool on);
void trace_set_capacity(std::uint64_t events);

// Recording hooks, called by the simulator (guard with trace_on()).
void trace_run_begin(unsigned nthreads, std::uint64_t seed);
void trace_tx_commit(unsigned tid, std::uint64_t start_cycle,
                     std::uint64_t end_cycle);
void trace_tx_abort(unsigned tid, std::uint64_t start_cycle,
                    std::uint64_t end_cycle, unsigned cause);
void trace_miss(unsigned tid, std::uint64_t cycle, std::uint64_t line);
void trace_sched(unsigned tid, std::uint64_t cycle);
/// Counter-track sample ("ph":"C"): cumulative `value` on the counter named
/// by `counter_id` (0 = conflict_aborts, 1 = doomed_cycles). Fed by the
/// profiler (telemetry/prof.h) when both PTO_TRACE and PTO_PROF are on.
void trace_counter(std::uint64_t cycle, unsigned counter_id,
                   std::uint64_t value);

/// Write the Chrome trace JSON file (truncates and rewrites). Called
/// automatically at the end of each sim::run() while tracing is on.
void trace_flush();

}  // namespace pto::telemetry
