#include "telemetry/prof.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/defs.h"
#include "common/warn.h"
#include "sim/sim.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace pto::telemetry::prof {

namespace detail {
std::atomic<bool> g_on{false};
}  // namespace detail

namespace {

constexpr unsigned kMaxSpans = 32;
constexpr unsigned kDefaultTopN = 10;

const char* kClassNames[kClassCount] = {
    "load",  "store",       "sync",  "fence", "alloc",
    "tx_overhead", "pause", "bench", "other"};

/// One open prefix attempt or fallback execution on a virtual thread.
struct Span {
  const Site* site = nullptr;
  bool fallback = false;
  std::uint64_t start = 0;  ///< thread virtual clock at push
  std::uint64_t classed[kClassCount] = {};
  std::uint64_t fence_elided_count = 0;
  std::uint64_t fence_elided_cycles = 0;
  std::uint64_t cas_collapsed_cycles = 0;
  void open(const Site* s, bool fb, std::uint64_t now) {
    *this = Span{};
    site = s;
    fallback = fb;
    start = now;
  }
};

/// Per-virtual-thread profiling state. The simulator multiplexes all virtual
/// threads onto one host thread, so no synchronization is needed.
struct ThreadProf {
  Span stack[kMaxSpans];
  unsigned depth = 0;
  /// Identity of the thread's live transaction for conflict attribution:
  /// the attempt span that was on top at the outermost tx_begin (the span
  /// whose site will record the CONFLICT abort after the longjmp).
  const Site* tx_site = nullptr;
  /// Non-zero while inside do_alloc/do_dealloc: nested charges (the shared
  /// refill RMW) class as allocation traffic.
  unsigned alloc_depth = 0;

  void clear() {
    depth = 0;
    tx_site = nullptr;
    alloc_depth = 0;
  }
};

struct LedgerData {
  SpanProfile fast;
  SpanProfile fallback;
  std::uint64_t fence_elided_count = 0;
  std::uint64_t fence_elided_cycles = 0;
  std::uint64_t cas_collapsed_cycles = 0;
  std::uint64_t retry_waste_cycles = 0;
  std::uint64_t aborts[kTxCodeCount] = {};
};

struct MatrixEntry {
  const Site* victim;
  const Site* aggressor;
  std::uint64_t count = 0;
  std::uint64_t doomed_cycles = 0;
};

struct LineData {
  std::uint64_t aborts = 0;
  std::uint64_t doomed_cycles = 0;
  /// Victim-site histogram; small, linear scan (first touch keeps order).
  std::vector<std::pair<const Site*, std::uint64_t>> victims;
};

struct ScopeData {
  std::string label;
  /// First-touch order; site count is small, linear find.
  std::vector<std::pair<const Site*, LedgerData>> sites;
  std::vector<MatrixEntry> matrix;
  std::map<std::uint64_t, LineData> lines;  ///< keyed by line index
  std::uint64_t unattributed[kClassCount] = {};

  explicit ScopeData(std::string l) : label(std::move(l)) {}

  LedgerData& ledger(const Site* s) {
    for (auto& e : sites) {
      if (e.first == s) return e.second;
    }
    sites.emplace_back(s, LedgerData{});
    return sites.back().second;
  }
};

struct ProfState {
  std::vector<std::unique_ptr<ScopeData>> scopes;
  ScopeData* cur = nullptr;
  /// Per-virtual-thread profiles, grown on demand (~4 KB each: sizing for
  /// kMaxThreads = 1024 eagerly would be ~4 MB; runs of <= 64 threads never
  /// grow past the initial 64). References into this vector are invalidated
  /// by growth — call ensure_threads() before taking any.
  std::vector<ThreadProf> threads = std::vector<ThreadProf>(64);
  /// Cumulative process-wide counters feeding the perfetto counter tracks.
  std::uint64_t conflicts_total = 0;
  std::uint64_t doomed_total = 0;

  Format fmt = Format::kText;
  std::string out_path;  ///< empty = stderr
  unsigned topn = kDefaultTopN;
  bool report_at_exit = false;

  ProfState() {
    scopes.push_back(std::make_unique<ScopeData>(""));
    cur = scopes.front().get();
    if (const char* v = std::getenv("PTO_PROF"); v != nullptr && *v != '\0') {
      if (std::strcmp(v, "json") == 0) {
        fmt = Format::kJson;
      } else if (std::strcmp(v, "text") != 0) {
        warn_once("env.PTO_PROF",
                  "PTO_PROF=%s not recognized (text|json); using text", v);
      }
      detail::g_on.store(true, std::memory_order_relaxed);
      report_at_exit = true;
    }
    if (const char* v = std::getenv("PTO_PROF_OUT");
        v != nullptr && *v != '\0') {
      out_path = v;
    }
    if (const char* v = std::getenv("PTO_PROF_TOPN")) {
      char* end = nullptr;
      auto parsed = std::strtoull(v, &end, 10);
      if (end != v && parsed > 0) topn = static_cast<unsigned>(parsed);
    }
  }
};

ProfState& state() {
  static ProfState s;
  return s;
}

// Force the env scan at startup (hooks are gated on g_on, which only the
// ProfState constructor sets) and register the end-of-run report.
const bool g_env_scanned = [] {
  if (state().report_at_exit) {
    std::atexit([] { report_if_enabled(); });
  }
  return true;
}();

/// Grow the per-thread profile vector to cover `tid` (invalidates earlier
/// ThreadProf references; callers take refs only after all growth). Warn
/// once on an out-of-range id instead of silently aliasing a shared slot.
ThreadProf& thread_prof(ProfState& ps, unsigned tid) {
  if (PTO_UNLIKELY(tid >= kMaxThreads)) {
    warn_once("prof.thread_id_overflow",
              "prof thread id %u >= kMaxThreads (%u); profile slots are "
              "being reused",
              tid, kMaxThreads);
    tid %= kMaxThreads;
  }
  if (PTO_UNLIKELY(tid >= ps.threads.size())) {
    ps.threads.resize(tid + 1);
  }
  return ps.threads[tid];
}

ThreadProf& me() { return thread_prof(state(), sim::thread_id()); }

/// Pop the innermost span matching (site, kind), discarding any spans above
/// it — those are attempts abandoned when an abort longjmp'd through their
/// frames. Returns nullptr (stack untouched) when no span matches.
Span* pop_match(ThreadProf& tp, const Site* site, bool fallback) {
  for (unsigned i = tp.depth; i-- > 0;) {
    Span& s = tp.stack[i];
    if (s.site == site && s.fallback == fallback) {
      tp.depth = i;  // storage stays valid until the next push
      return &s;
    }
  }
  return nullptr;
}

void fold(SpanProfile& p, const Span& s) {
  ++p.count;
  for (unsigned c = 0; c < kClassCount; ++c) p.classed[c] += s.classed[c];
}

std::string site_name(const Site* s) {
  return s != nullptr ? s->name() : std::string("(none)");
}

// ---------------------------------------------------------------------------
// Reporting helpers.
// ---------------------------------------------------------------------------

void json_str(std::ostream& os, const std::string& v) {
  os << '"';
  for (char c : v) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_num(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void json_classes(std::ostream& os, const std::uint64_t (&cl)[kClassCount]) {
  os << '{';
  for (unsigned c = 0; c < kClassCount; ++c) {
    os << (c == 0 ? "\"" : ",\"") << kClassNames[c] << "\":" << cl[c];
  }
  os << '}';
}

void report_json(std::ostream& os, const std::vector<ScopeSnapshot>& scopes) {
  os << "{\"type\":\"pto_prof\",\"scopes\":[";
  bool first_scope = true;
  for (const auto& sc : scopes) {
    os << (first_scope ? "" : ",") << "{\"label\":";
    first_scope = false;
    json_str(os, sc.label);
    os << ",\"sites\":[";
    for (std::size_t i = 0; i < sc.sites.size(); ++i) {
      const SiteLedger& l = sc.sites[i];
      os << (i == 0 ? "" : ",") << "{\"site\":";
      json_str(os, l.site);
      os << ",\"fast_count\":" << l.fast.count << ",\"fast_classes\":";
      json_classes(os, l.fast.classed);
      os << ",\"fallback_count\":" << l.fallback.count
         << ",\"fallback_classes\":";
      json_classes(os, l.fallback.classed);
      os << ",\"fence_elided_count\":" << l.fence_elided_count
         << ",\"fence_elided_cycles\":" << l.fence_elided_cycles
         << ",\"cas_collapsed_cycles\":" << l.cas_collapsed_cycles
         << ",\"retry_waste_cycles\":" << l.retry_waste_cycles
         << ",\"aborts\":{";
      for (unsigned c = 0; c < kTxCodeCount; ++c) {
        os << (c == 0 ? "\"" : ",\"") << tx_code_name(c) << "\":"
           << l.aborts[c];
      }
      SavingsBreakdown sv = derive_savings(l);
      os << "},\"savings\":{\"fence_removed\":";
      json_num(os, sv.fence_removed);
      os << ",\"second_read_collapsed\":";
      json_num(os, sv.second_read_collapsed);
      os << ",\"store_sync_removed\":";
      json_num(os, sv.store_sync_removed);
      os << ",\"alloc_avoided\":";
      json_num(os, sv.alloc_avoided);
      os << ",\"other_removed\":";
      json_num(os, sv.other_removed);
      os << ",\"tx_overhead\":";
      json_num(os, sv.tx_overhead);
      os << ",\"retry_waste\":";
      json_num(os, sv.retry_waste);
      os << ",\"explained\":";
      json_num(os, sv.explained());
      os << "}}";
    }
    os << "],\"matrix\":[";
    for (std::size_t i = 0; i < sc.matrix.size(); ++i) {
      const ConflictCell& c = sc.matrix[i];
      os << (i == 0 ? "" : ",") << "{\"victim\":";
      json_str(os, c.victim);
      os << ",\"aggressor\":";
      json_str(os, c.aggressor);
      os << ",\"count\":" << c.count
         << ",\"doomed_cycles\":" << c.doomed_cycles << "}";
    }
    os << "],\"hot_lines\":[";
    for (std::size_t i = 0; i < sc.hot_lines.size(); ++i) {
      const HotLine& h = sc.hot_lines[i];
      os << (i == 0 ? "" : ",") << "{\"line\":" << h.line
         << ",\"region\":" << h.region << ",\"owner\":";
      json_str(os, h.owner);
      os << ",\"aborts\":" << h.aborts
         << ",\"doomed_cycles\":" << h.doomed_cycles << "}";
    }
    os << "],\"unattributed\":";
    json_classes(os, sc.unattributed);
    os << "}";
  }
  os << "]}\n";
}

void report_text(std::ostream& os, const std::vector<ScopeSnapshot>& scopes,
                 unsigned topn) {
  os << "== pto prof ==\n";
  for (const auto& sc : scopes) {
    bool empty = sc.sites.empty() && sc.matrix.empty() && sc.hot_lines.empty();
    std::uint64_t unattr = 0;
    for (auto u : sc.unattributed) unattr += u;
    if (empty && unattr == 0) continue;
    os << "-- scope \"" << sc.label << "\" --\n";
    if (!sc.sites.empty()) {
      os << "cycle ledger:\n";
      os << std::left << std::setw(24) << "  site" << std::right
         << std::setw(10) << "commits" << std::setw(12) << "cyc/commit"
         << std::setw(10) << "fallbacks" << std::setw(12) << "cyc/fb"
         << std::setw(12) << "retrywaste" << std::setw(12) << "fence_elide"
         << std::setw(10) << "cas_save" << "\n";
      for (const SiteLedger& l : sc.sites) {
        auto per = [](std::uint64_t tot, std::uint64_t n) {
          return n == 0 ? 0.0
                        : static_cast<double>(tot) / static_cast<double>(n);
        };
        os << "  " << std::left << std::setw(22) << l.site << std::right
           << std::setw(10) << l.fast.count << std::setw(12) << std::fixed
           << std::setprecision(1) << per(l.fast.total(), l.fast.count)
           << std::setw(10) << l.fallback.count << std::setw(12)
           << per(l.fallback.total(), l.fallback.count) << std::setw(12)
           << l.retry_waste_cycles << std::setw(12) << l.fence_elided_cycles
           << std::setw(10) << l.cas_collapsed_cycles << "\n";
        os.unsetf(std::ios::fixed);
        SavingsBreakdown sv = derive_savings(l);
        if (l.fallback.count > 0 && l.fast.count > 0) {
          os << "    savings: fence=" << std::llround(sv.fence_removed)
             << " second_read=" << std::llround(sv.second_read_collapsed)
             << " store_sync=" << std::llround(sv.store_sync_removed)
             << " alloc=" << std::llround(sv.alloc_avoided)
             << " other=" << std::llround(sv.other_removed)
             << " - txov=" << std::llround(sv.tx_overhead)
             << " - retry=" << std::llround(sv.retry_waste)
             << " => explained=" << std::llround(sv.explained()) << "\n";
        }
      }
    }
    if (!sc.matrix.empty()) {
      os << "conflict matrix (victim <- aggressor):\n";
      for (const ConflictCell& c : sc.matrix) {
        os << "  " << std::left << std::setw(22) << c.victim << " <- "
           << std::setw(22) << c.aggressor << std::right << std::setw(8)
           << c.count << " aborts" << std::setw(12) << c.doomed_cycles
           << " doomed cycles\n";
      }
    }
    if (!sc.hot_lines.empty()) {
      os << "hot lines (top " << std::min<std::size_t>(topn,
                                                       sc.hot_lines.size())
         << " of " << sc.hot_lines.size() << "):\n";
      unsigned shown = 0;
      for (const HotLine& h : sc.hot_lines) {
        if (shown++ >= topn) break;
        os << "  line 0x" << std::hex << h.line << std::dec << " region "
           << h.region << " owner " << std::left << std::setw(22) << h.owner
           << std::right << std::setw(8) << h.aborts << " aborts"
           << std::setw(12) << h.doomed_cycles << " doomed cycles\n";
      }
    }
    if (unattr != 0) {
      os << "unattributed cycles:";
      for (unsigned c = 0; c < kClassCount; ++c) {
        if (sc.unattributed[c] != 0) {
          os << " " << kClassNames[c] << "=" << sc.unattributed[c];
        }
      }
      os << "\n";
    }
  }
  os.flush();
}

}  // namespace

const char* cycle_class_name(unsigned cls) {
  return cls < kClassCount ? kClassNames[cls] : "?";
}

void set_enabled(bool on) {
  detail::g_on.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Simulator-side hooks.
// ---------------------------------------------------------------------------

void on_charge(unsigned cls, std::uint64_t cycles) {
  ProfState& ps = state();
  ThreadProf& tp = me();
  if (tp.alloc_depth > 0) cls = kClassAlloc;
  if (cls >= kClassCount) cls = kClassOther;
  if (tp.depth > 0) {
    tp.stack[tp.depth - 1].classed[cls] += cycles;
  } else {
    ps.cur->unattributed[cls] += cycles;
  }
}

void on_fence_elided(std::uint64_t cycles) {
  ThreadProf& tp = me();
  if (tp.depth == 0) return;
  Span& s = tp.stack[tp.depth - 1];
  ++s.fence_elided_count;
  s.fence_elided_cycles += cycles;
}

void on_cas_collapsed(std::uint64_t saved) {
  ThreadProf& tp = me();
  if (tp.depth == 0) return;
  tp.stack[tp.depth - 1].cas_collapsed_cycles += saved;
}

void on_alloc_enter() { ++me().alloc_depth; }

void on_alloc_exit() {
  ThreadProf& tp = me();
  if (tp.alloc_depth > 0) --tp.alloc_depth;
}

void on_tx_begin() {
  ThreadProf& tp = me();
  tp.tx_site = (tp.depth > 0 && !tp.stack[tp.depth - 1].fallback)
                   ? tp.stack[tp.depth - 1].site
                   : nullptr;
}

void on_tx_commit() { me().tx_site = nullptr; }

void on_conflict(unsigned victim, unsigned aggressor, std::uintptr_t line,
                 std::uint64_t doomed_cycles) {
  ProfState& ps = state();
  // Grow for both ids before taking either reference: a resize between the
  // two would invalidate the first.
  thread_prof(ps, victim);
  thread_prof(ps, aggressor);
  ThreadProf& vp = thread_prof(ps, victim);
  ThreadProf& ap = thread_prof(ps, aggressor);
  const Site* vs = vp.tx_site;
  // The aggressor attributes from its innermost open span, attempt or
  // fallback — "fallback of X doomed the fast path of Y" is a real and
  // interesting cell.
  const Site* as = ap.depth > 0 ? ap.stack[ap.depth - 1].site : nullptr;
  vp.tx_site = nullptr;  // the victim's transaction is dead

  MatrixEntry* cell = nullptr;
  for (auto& e : ps.cur->matrix) {
    if (e.victim == vs && e.aggressor == as) {
      cell = &e;
      break;
    }
  }
  if (cell == nullptr) {
    ps.cur->matrix.push_back(MatrixEntry{vs, as, 0, 0});
    cell = &ps.cur->matrix.back();
  }
  ++cell->count;
  cell->doomed_cycles += doomed_cycles;

  LineData& ld = ps.cur->lines[static_cast<std::uint64_t>(line)];
  ++ld.aborts;
  ld.doomed_cycles += doomed_cycles;
  bool found = false;
  for (auto& v : ld.victims) {
    if (v.first == vs) {
      ++v.second;
      found = true;
      break;
    }
  }
  if (!found) ld.victims.emplace_back(vs, 1);

  ++ps.conflicts_total;
  ps.doomed_total += doomed_cycles;
  if (PTO_UNLIKELY(trace_on())) {
    trace_counter(sim::now(), 0, ps.conflicts_total);
    trace_counter(sim::now(), 1, ps.doomed_total);
  }
}

void on_abort_unwind() {
  ThreadProf& tp = me();
  tp.alloc_depth = 0;
  tp.tx_site = nullptr;
}

// ---------------------------------------------------------------------------
// Prefix-side hooks. Spans only exist inside a simulation: the host-side
// prefix calls (fixture setup) immediately fall back and carry no cycles.
// ---------------------------------------------------------------------------

void on_site_attempt(Site* site) {
  if (!sim::active()) return;
  ThreadProf& tp = me();
  if (tp.depth >= kMaxSpans) return;  // beyond-plausible nesting: drop
  tp.stack[tp.depth++].open(site, false, sim::now());
}

void on_site_commit(Site* site) {
  if (!sim::active()) return;
  ThreadProf& tp = me();
  Span* s = pop_match(tp, site, false);
  if (s == nullptr) return;
  LedgerData& l = state().cur->ledger(site);
  fold(l.fast, *s);
  l.fence_elided_count += s->fence_elided_count;
  l.fence_elided_cycles += s->fence_elided_cycles;
  l.cas_collapsed_cycles += s->cas_collapsed_cycles;
}

void on_site_abort(Site* site, unsigned cause) {
  if (!sim::active()) return;
  ThreadProf& tp = me();
  Span* s = pop_match(tp, site, false);
  if (s == nullptr) return;
  LedgerData& l = state().cur->ledger(site);
  ++l.aborts[cause < kTxCodeCount ? cause : TX_ABORT_OTHER];
  // Everything since the attempt opened was thrown away: accesses, the
  // tx_begin charge, and the abort penalty the doom added while the victim
  // was suspended. Classed cycles of the doomed work are deliberately
  // discarded — they never produced anything.
  l.retry_waste_cycles += sim::now() - s->start;
}

void on_site_fallback(Site* site) {
  if (!sim::active()) return;
  ThreadProf& tp = me();
  if (tp.depth >= kMaxSpans) return;
  tp.stack[tp.depth++].open(site, true, sim::now());
}

void on_site_fallback_end(Site* site) {
  if (!sim::active()) return;
  ThreadProf& tp = me();
  Span* s = pop_match(tp, site, true);
  if (s == nullptr) return;
  fold(state().cur->ledger(site).fallback, *s);
}

// ---------------------------------------------------------------------------
// Control, snapshot, reporting.
// ---------------------------------------------------------------------------

void set_scope(std::string_view label) {
  ProfState& ps = state();
  for (auto& s : ps.scopes) {
    if (s->label == label) {
      ps.cur = s.get();
      return;
    }
  }
  ps.scopes.push_back(std::make_unique<ScopeData>(std::string(label)));
  ps.cur = ps.scopes.back().get();
}

void reset() {
  ProfState& ps = state();
  ps.scopes.clear();
  ps.scopes.push_back(std::make_unique<ScopeData>(""));
  ps.cur = ps.scopes.front().get();
  for (auto& t : ps.threads) t.clear();
  ps.conflicts_total = 0;
  ps.doomed_total = 0;
}

SavingsBreakdown derive_savings(const SiteLedger& l) {
  SavingsBreakdown sv;
  sv.retry_waste = static_cast<double>(l.retry_waste_cycles);
  sv.tx_overhead = static_cast<double>(l.fast.classed[kClassTxOverhead]);
  if (l.fast.count == 0 || l.fallback.count == 0) {
    // Without a fallback population there is no baseline profile to diff
    // against; only the paid costs are known.
    return sv;
  }
  const double commits = static_cast<double>(l.fast.count);
  double d[kClassCount];
  for (unsigned c = 0; c < kClassCount; ++c) {
    d[c] = static_cast<double>(l.fallback.classed[c]) /
               static_cast<double>(l.fallback.count) -
           static_cast<double>(l.fast.classed[c]) /
               static_cast<double>(l.fast.count);
  }
  // TxOverhead is excluded from the diffs (the fallback never pays it); it is
  // reported as the absolute cost side instead.
  sv.fence_removed = d[kClassFence] * commits;
  sv.second_read_collapsed = d[kClassLoad] * commits;
  sv.store_sync_removed = (d[kClassStore] + d[kClassSync]) * commits;
  sv.alloc_avoided = d[kClassAlloc] * commits;
  sv.other_removed =
      (d[kClassPause] + d[kClassBench] + d[kClassOther]) * commits;
  return sv;
}

LedgerTotals ledger_totals() {
  ProfState& ps = state();
  LedgerTotals t;
  for (const auto& sc : ps.scopes) {
    for (unsigned c = 0; c < kClassCount; ++c) {
      t.classed[c] += sc->unattributed[c];
    }
    for (const auto& [site, l] : sc->sites) {
      (void)site;
      for (unsigned c = 0; c < kClassCount; ++c) {
        t.classed[c] += l.fast.classed[c] + l.fallback.classed[c];
      }
      t.fast_spans += l.fast.count;
      t.fallback_spans += l.fallback.count;
      t.retry_waste_cycles += l.retry_waste_cycles;
    }
  }
  return t;
}

std::vector<ScopeSnapshot> snapshot() {
  ProfState& ps = state();
  std::vector<ScopeSnapshot> out;
  out.reserve(ps.scopes.size());
  for (const auto& sc : ps.scopes) {
    ScopeSnapshot snap;
    snap.label = sc->label;
    for (const auto& [site, l] : sc->sites) {
      SiteLedger sl;
      sl.site = site_name(site);
      sl.fast = l.fast;
      sl.fallback = l.fallback;
      sl.fence_elided_count = l.fence_elided_count;
      sl.fence_elided_cycles = l.fence_elided_cycles;
      sl.cas_collapsed_cycles = l.cas_collapsed_cycles;
      sl.retry_waste_cycles = l.retry_waste_cycles;
      for (unsigned c = 0; c < kTxCodeCount; ++c) sl.aborts[c] = l.aborts[c];
      snap.sites.push_back(std::move(sl));
    }
    for (const auto& e : sc->matrix) {
      ConflictCell c;
      c.victim = site_name(e.victim);
      c.aggressor = site_name(e.aggressor);
      c.count = e.count;
      c.doomed_cycles = e.doomed_cycles;
      snap.matrix.push_back(std::move(c));
    }
    std::sort(snap.matrix.begin(), snap.matrix.end(),
              [](const ConflictCell& a, const ConflictCell& b) {
                if (a.victim != b.victim) return a.victim < b.victim;
                return a.aggressor < b.aggressor;
              });
    for (const auto& [line, ld] : sc->lines) {
      HotLine h;
      h.line = line;
      h.region = line >> (18 - 6);  // line index -> 256 KB region ordinal
      h.aborts = ld.aborts;
      h.doomed_cycles = ld.doomed_cycles;
      const Site* owner = nullptr;
      std::uint64_t best = 0;
      for (const auto& [vs, n] : ld.victims) {
        if (n > best) {
          best = n;
          owner = vs;
        }
      }
      h.owner = site_name(owner);
      snap.hot_lines.push_back(std::move(h));
    }
    std::sort(snap.hot_lines.begin(), snap.hot_lines.end(),
              [](const HotLine& a, const HotLine& b) {
                if (a.aborts != b.aborts) return a.aborts > b.aborts;
                return a.line < b.line;
              });
    for (unsigned c = 0; c < kClassCount; ++c) {
      snap.unattributed[c] = sc->unattributed[c];
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void report(std::ostream& os, Format f) {
  std::vector<ScopeSnapshot> scopes = snapshot();
  if (f == Format::kJson) {
    report_json(os, scopes);
  } else {
    report_text(os, scopes, state().topn);
  }
}

void report_if_enabled() {
  ProfState& ps = state();
  if (!on()) return;
  if (!ps.out_path.empty()) {
    std::ofstream os(ps.out_path, std::ios::trunc);
    if (os) {
      report(os, ps.fmt);
      return;
    }
    warn_once("env.PTO_PROF_OUT", "cannot open PTO_PROF_OUT=%s",
              ps.out_path.c_str());
  }
  report(std::cerr, ps.fmt);
}

}  // namespace pto::telemetry::prof
