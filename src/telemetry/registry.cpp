#include "telemetry/registry.h"

#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <ostream>

#include "check/check.h"
#include "common/warn.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "sim/sim.h"
#include "telemetry/prof.h"

namespace pto::telemetry {

namespace detail {

namespace {
bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0';
}

bool enabled_from_env() {
  // PTO_METRICS counts too: the interval stream samples these counters, and
  // static-init order across translation units means metrics::configure()
  // cannot reliably flip the gate before this initializer runs.
  return env_set("PTO_TELEMETRY") || env_set("PTO_STATS") ||
         env_set("PTO_TRACE") || env_set("PTO_METRICS");
}
}  // namespace

std::atomic<bool> g_enabled{enabled_from_env()};

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Site::~Site() {
  for (auto& e : ext_) delete[] e.load(std::memory_order_relaxed);
}

SiteShard* Site::ext_segment(unsigned seg) {
  SiteShard* p = ext_[seg].load(std::memory_order_acquire);
  if (p != nullptr) return p;
  // Cold path, taken at most kShardSegs - 1 times per site over the process
  // lifetime; one process-wide mutex is plenty.
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  p = ext_[seg].load(std::memory_order_relaxed);
  if (p == nullptr) {
    p = new SiteShard[kShardSeg];
    ext_[seg].store(p, std::memory_order_release);
  }
  return p;
}

SiteShard& Site::shard_at(unsigned slot) {
  if (PTO_LIKELY(slot < kShardSeg)) return shards_[slot];
  return ext_segment(slot / kShardSeg - 1)[slot % kShardSeg];
}

SiteShard& Site::shard() {
  // Virtual threads within a simulation map to their thread id (they all run
  // on one host thread, so the slots are exclusive). Native threads get a
  // slot from a process-wide counter; past kMaxThreads live threads slots
  // are reused, which stays correct because shards are atomic — but warn
  // once, because aliased shards make per-thread attribution lie silently.
  if (sim::active()) return shard_at(sim::thread_id());
  static std::atomic<unsigned> next_slot{0};
  thread_local unsigned slot = [] {
    unsigned raw = next_slot.fetch_add(1, std::memory_order_relaxed);
    if (PTO_UNLIKELY(raw >= kMaxThreads)) {
      warn_once("registry.slot_overflow",
                "more than %u live threads; telemetry shard slots are being "
                "reused (counters stay correct, per-thread attribution "
                "aliases)",
                kMaxThreads);
    }
    return raw % kMaxThreads;
  }();
  return shard_at(slot);
}

namespace {
void accumulate_shard(PrefixStats& s, const SiteShard& sh) {
  s.attempts += sh.attempts.load(std::memory_order_relaxed);
  s.commits += sh.commits.load(std::memory_order_relaxed);
  s.fallbacks += sh.fallbacks.load(std::memory_order_relaxed);
  for (unsigned i = 0; i < kTxCodeCount; ++i) {
    s.aborts[i] += sh.aborts[i].load(std::memory_order_relaxed);
  }
}

void zero_shard(SiteShard& sh) {
  sh.attempts.store(0, std::memory_order_relaxed);
  sh.commits.store(0, std::memory_order_relaxed);
  sh.fallbacks.store(0, std::memory_order_relaxed);
  for (unsigned i = 0; i < kTxCodeCount; ++i) {
    sh.aborts[i].store(0, std::memory_order_relaxed);
  }
}
}  // namespace

PrefixStats Site::snapshot() const {
  PrefixStats s;
  for (const SiteShard& sh : shards_) accumulate_shard(s, sh);
  for (const auto& e : ext_) {
    if (const SiteShard* seg = e.load(std::memory_order_acquire)) {
      for (unsigned i = 0; i < kShardSeg; ++i) accumulate_shard(s, seg[i]);
    }
  }
  return s;
}

void Site::reset() {
  for (SiteShard& sh : shards_) zero_shard(sh);
  for (auto& e : ext_) {
    if (SiteShard* seg = e.load(std::memory_order_acquire)) {
      for (unsigned i = 0; i < kShardSeg; ++i) zero_shard(seg[i]);
    }
  }
}

Registry& Registry::instance() {
  static Registry* r = [] {
    auto* reg = new Registry();
    if (const char* v = std::getenv("PTO_TELEMETRY_REPORT");
        v != nullptr && *v != '\0') {
      detail::g_enabled.store(true, std::memory_order_relaxed);
      std::atexit([] { Registry::instance().report(std::cerr); });
    }
    return reg;
  }();
  return *r;
}

Site* Registry::intern(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sites_) {
    if (s->name() == name) return s.get();
  }
  const unsigned id = static_cast<unsigned>(sites_.size());
  sites_.push_back(std::make_unique<Site>(std::string(name), id));
  // Publish the name into the flight recorder's lock-free table so a
  // fatal-signal dump can label records without touching mu_.
  obs::flight_register_site(id, sites_.back()->name().c_str());
  return sites_.back().get();
}

std::vector<Site*> Registry::sites() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Site*> out;
  out.reserve(sites_.size());
  for (const auto& s : sites_) out.push_back(s.get());
  return out;
}

PrefixStats Registry::totals() {
  PrefixStats t;
  for (Site* s : sites()) t.accumulate(s->snapshot());
  return t;
}

void Registry::reset_all() {
  for (Site* s : sites()) s->reset();
}

void Registry::report(std::ostream& os) {
  os << "== pto telemetry ==\n";
  os << std::left << std::setw(24) << "site" << std::right << std::setw(12)
     << "attempts" << std::setw(12) << "commits" << std::setw(12)
     << "fallbacks";
  for (unsigned c = 1; c < kTxCodeCount; ++c) {
    os << std::setw(10) << tx_code_name(c);
  }
  os << "\n";
  for (Site* s : sites()) {
    PrefixStats st = s->snapshot();
    // The native facade sites record only commits and aborts (attempts can't
    // be counted inside a speculative region), so filter on every counter.
    if (st.attempts == 0 && st.commits == 0 && st.fallbacks == 0 &&
        st.total_aborts() == 0) {
      continue;
    }
    os << std::left << std::setw(24) << s->name() << std::right
       << std::setw(12) << st.attempts << std::setw(12) << st.commits
       << std::setw(12) << st.fallbacks;
    for (unsigned c = 1; c < kTxCodeCount; ++c) {
      os << std::setw(10) << st.aborts[c];
    }
    os << "\n";
  }
  os.flush();
}

PrefixStats registry_totals() { return Registry::instance().totals(); }

PrefixStats registry_delta(const PrefixStats& before) {
  PrefixStats now = registry_totals();
  PrefixStats d;
  d.attempts = now.attempts - before.attempts;
  d.commits = now.commits - before.commits;
  d.fallbacks = now.fallbacks - before.fallbacks;
  for (unsigned i = 0; i < kTxCodeCount; ++i) {
    d.aborts[i] = now.aborts[i] - before.aborts[i];
  }
  return d;
}

// Hooks referenced from core/prefix.h (declared there to avoid an include
// cycle). Each is a no-op unless telemetry is enabled. The profiler
// (telemetry/prof.h) taps the same stream under its own independent gate so
// PTO_PROF works without PTO_TELEMETRY.

namespace {
/// Flight-recorder tap. Native-only by contract: simulated runs already have
/// PTO_TRACE with virtual-time fidelity, so PTO_FLIGHT is ignored there.
inline void flight(Site* site, unsigned char event, std::uint32_t arg = 0) {
  if (sim::active()) return;
  obs::flight_record(
      static_cast<std::uint16_t>(site->id() < 0xffffu ? site->id() : 0xffffu),
      event, arg);
}
}  // namespace

void site_attempt(Site* site) {
  if (enabled()) site->record_attempt();
  if (PTO_UNLIKELY(obs::flight_on())) flight(site, obs::kFlightAttempt);
  if (PTO_UNLIKELY(prof::on())) prof::on_site_attempt(site);
  if (PTO_UNLIKELY(check::on())) check::on_site_attempt(site);
}
void site_commit(Site* site) {
  if (enabled()) site->record_commit();
  if (PTO_UNLIKELY(obs::flight_on())) flight(site, obs::kFlightCommit);
  if (PTO_UNLIKELY(prof::on())) prof::on_site_commit(site);
  if (PTO_UNLIKELY(check::on())) check::on_site_commit(site);
}
void site_abort(Site* site, unsigned cause) {
  if (enabled()) site->record_abort(cause);
  if (PTO_UNLIKELY(obs::flight_on())) flight(site, obs::kFlightAbort, cause);
  if (PTO_UNLIKELY(prof::on())) prof::on_site_abort(site, cause);
  if (PTO_UNLIKELY(check::on())) check::on_site_abort(site, cause);
}
void site_fallback(Site* site) {
  if (enabled()) site->record_fallback();
  if (PTO_UNLIKELY(obs::hist_on())) obs::note_fallback();
  if (PTO_UNLIKELY(obs::flight_on())) flight(site, obs::kFlightFallback);
  if (PTO_UNLIKELY(prof::on())) prof::on_site_fallback(site);
  if (PTO_UNLIKELY(check::on())) check::on_site_fallback(site);
}
void site_fallback_end(Site* site) {
  if (PTO_UNLIKELY(prof::on())) prof::on_site_fallback_end(site);
  if (PTO_UNLIKELY(check::on())) check::on_site_fallback_end(site);
}

}  // namespace pto::telemetry
