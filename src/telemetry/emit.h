// Structured bench emission: per-measurement-point records with the full
// telemetry schema (throughput, abort counts by cause, fallback fraction,
// fence elisions, transactional cycle share) instead of a bare mean.
//
//   PTO_STATS=json   one JSON object per line ("bench_point" records)
//   PTO_STATS=csv    one CSV row per point (header emitted once)
//
// With PTO_STATS unset nothing is emitted and bench output stays byte-
// identical to a telemetry-free build. Records go to stdout by default;
// tests can redirect with set_stats_stream().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/prefix.h"
#include "obs/obs.h"
#include "obs/perf_counters.h"
#include "sim/sim.h"

namespace pto::telemetry {

enum class StatsFormat { kOff, kJson, kCsv };

/// Emitted as `schema_version` in every record. History:
///   1  (implicit, PR 1): throughput + abort buckets + prefix counters
///   2  (PR 6): explicit schema_version, per-cause prefix abort buckets,
///      native latency percentiles (lat/lat_fast/lat_fallback blocks), and
///      optional hardware perf counter fields.
inline constexpr unsigned kStatsSchemaVersion = 2;

/// Active format. Initialized once from PTO_STATS; overridable for tests.
StatsFormat stats_format();

/// Override the format. Selecting kJson/kCsv also enables telemetry
/// recording (set_enabled(true)) so fallback fractions are populated.
void set_stats_format(StatsFormat f);

/// Redirect emission (tests); nullptr restores stdout.
void set_stats_stream(std::ostream* os);

/// One measured bench point, summed over its trials.
struct BenchPoint {
  std::string bench;   ///< e.g. "fig3a"
  std::string series;  ///< e.g. "Tree(PTO)"
  unsigned threads = 0;
  unsigned trials = 0;
  double ops_per_ms = 0.0;
  std::uint64_t makespan = 0;    ///< virtual cycles, summed over trials
  std::uint64_t cpu_cycles = 0;  ///< sum of final per-thread clocks
  sim::ThreadStats sim;          ///< simulator totals, summed over trials
  PrefixStats prefix;            ///< telemetry-registry delta for the point
  // Native observability (pto::obs); all-zero / invalid on simulated points
  // and when PTO_OBS / PTO_PERF are off — the fields still emit (as zeros or
  // empty CSV cells) so the v2 schema is stable across configurations.
  obs::HistSummary lat;           ///< op latency, ns, all paths merged
  obs::HistSummary lat_fast;      ///< ops served entirely by the fast path
  obs::HistSummary lat_fallback;  ///< ops that took at least one fallback
  std::vector<obs::LatencySiteSummary> lat_sites;  ///< JSON-only detail
  obs::PerfSample perf;           ///< hardware counters (PTO_PERF=1)
  // Run provenance; left empty they are filled from common/buildinfo.h at
  // emission so every record names the commit/build/backend that produced it.
  std::string git_sha;
  std::string build_type;
  std::string fiber_backend;
  // Wall-clock provenance (additive to schema v2; older readers ignore the
  // extra fields/columns). Runners stamp ts_start when the point begins;
  // empty timestamps/hostname fill with now()/gethostname() at emission.
  std::string ts_start;  ///< ISO-8601 UTC, point start
  std::string ts_end;    ///< ISO-8601 UTC, emission time
  std::string hostname;
  /// metrics_interval records pto::metrics emitted within this point
  /// (0 when PTO_METRICS is off).
  std::uint64_t intervals = 0;
};

/// Emit `p` in the active format; no-op when stats_format() == kOff.
void emit_bench_point(const BenchPoint& p);

/// UTC wall clock as ISO-8601 with millisecond precision
/// ("2026-08-07T12:34:56.789Z"); the BenchPoint / pto::metrics timestamp.
std::string iso8601_now();

/// Cached gethostname(); "unknown" when unavailable.
const std::string& host_name();

}  // namespace pto::telemetry
