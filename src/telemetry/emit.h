// Structured bench emission: per-measurement-point records with the full
// telemetry schema (throughput, abort counts by cause, fallback fraction,
// fence elisions, transactional cycle share) instead of a bare mean.
//
//   PTO_STATS=json   one JSON object per line ("bench_point" records)
//   PTO_STATS=csv    one CSV row per point (header emitted once)
//
// With PTO_STATS unset nothing is emitted and bench output stays byte-
// identical to a telemetry-free build. Records go to stdout by default;
// tests can redirect with set_stats_stream().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/prefix.h"
#include "sim/sim.h"

namespace pto::telemetry {

enum class StatsFormat { kOff, kJson, kCsv };

/// Active format. Initialized once from PTO_STATS; overridable for tests.
StatsFormat stats_format();

/// Override the format. Selecting kJson/kCsv also enables telemetry
/// recording (set_enabled(true)) so fallback fractions are populated.
void set_stats_format(StatsFormat f);

/// Redirect emission (tests); nullptr restores stdout.
void set_stats_stream(std::ostream* os);

/// One measured bench point, summed over its trials.
struct BenchPoint {
  std::string bench;   ///< e.g. "fig3a"
  std::string series;  ///< e.g. "Tree(PTO)"
  unsigned threads = 0;
  unsigned trials = 0;
  double ops_per_ms = 0.0;
  std::uint64_t makespan = 0;    ///< virtual cycles, summed over trials
  std::uint64_t cpu_cycles = 0;  ///< sum of final per-thread clocks
  sim::ThreadStats sim;          ///< simulator totals, summed over trials
  PrefixStats prefix;            ///< telemetry-registry delta for the point
  // Run provenance; left empty they are filled from common/buildinfo.h at
  // emission so every record names the commit/build/backend that produced it.
  std::string git_sha;
  std::string build_type;
  std::string fiber_backend;
};

/// Emit `p` in the active format; no-op when stats_format() == kOff.
void emit_bench_point(const BenchPoint& p);

}  // namespace pto::telemetry
