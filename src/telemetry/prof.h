// pto::telemetry::prof — conflict attribution and latency-class cycle
// accounting for simx runs.
//
// The deterministic simulator knows exactly what real HTM cannot tell you:
// every conflict abort has a known aggressor thread and faulting cache line,
// and every virtual cycle is charged through the CostModel. This layer turns
// that knowledge into a causal profile:
//
//  * a **who-dooms-whom conflict matrix**: each doom() in the HTM model is
//    tagged with the victim's prefix site (the transaction that died), the
//    aggressor's site (the access that killed it — a rival fast path, a
//    fallback, or "(none)" for un-sited code), and the faulting line;
//  * a **hot-line table**: per cache line, how many transactions it doomed,
//    how many cycles of speculative work were thrown away, and which site
//    owns the line (the dominant victim);
//  * a **latency-class cycle ledger**: per prefix site, every charged virtual
//    cycle is classed (load / store / sync / fence / alloc / tx-overhead /
//    pause / bench / other) and attributed to the innermost active span — a
//    committed fast-path attempt, an aborted attempt (retry waste), or a
//    fallback execution. Comparing the fallback profile against the committed
//    fast profile at the same site decomposes the PTO speedup into the
//    paper's four latency classes (fences elided, second reads collapsed,
//    store/descriptor traffic removed, allocation avoided) minus the
//    transaction overhead and retry waste it paid for them — see
//    derive_savings().
//
// Site identity flows in through the existing StatsHandle telemetry hooks
// (core/prefix.h): st.attempt()/commit()/abort()/fallback()/fallback_done()
// bracket the spans, so every PTO_TELEMETRY_SITE-wired call site is profiled
// with no per-data-structure changes.
//
//   PTO_PROF=text|json   enable profiling; dump a report at process exit
//   PTO_PROF_OUT=path    write the report to a file (default: stderr)
//   PTO_PROF_TOPN=N      hot lines kept in the report (default 10)
//
// Zero overhead when off: every hook is gated on one relaxed bool, and no
// hook ever charges virtual cycles — simulated results are byte-identical
// with profiling on or off (pinned by tests/test_prof.cpp against the golden
// cycle counts). The recorder is simulator-only and therefore single-host-
// threaded; hooks called outside a simulation are no-ops.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "htm/txcode.h"

namespace pto::telemetry {

class Site;

namespace prof {

namespace detail {
extern std::atomic<bool> g_on;
}  // namespace detail

/// Cheap gate for every instrumentation point.
inline bool on() { return detail::g_on.load(std::memory_order_relaxed); }

/// Programmatic control (tests). Enabling does not clear accumulated data;
/// call reset() for a clean slate.
void set_enabled(bool on);

enum class Format { kText, kJson };

/// Classes a charged virtual cycle can belong to. Coherence-miss surcharges
/// stay with the access that paid them.
enum CycleClass : unsigned {
  kClassLoad = 0,    ///< load_hit (+miss)
  kClassStore,       ///< store_hit (+miss)
  kClassSync,        ///< CAS / RMW, incl. the collapsed in-tx load+store form
  kClassFence,       ///< charged fences (elisions are tracked separately)
  kClassAlloc,       ///< alloc + dealloc + allocator refill traffic
  kClassTxOverhead,  ///< tx_begin + tx_commit
  kClassPause,       ///< cpu_pause backoff
  kClassBench,       ///< op_done loop overhead
  kClassOther,       ///< anything unclassed (defensive; should stay 0)
  kClassCount
};
const char* cycle_class_name(unsigned cls);

// ---------------------------------------------------------------------------
// Simulator-side hooks. Call only when on(), from a virtual thread. None of
// these charge cycles.
// ---------------------------------------------------------------------------

/// `cycles` were charged to the current thread; attribute to its innermost
/// open span (or the scope's unattributed bucket).
void on_charge(unsigned cls, std::uint64_t cycles);
/// A fence inside a transaction was elided (would have cost `cycles`).
void on_fence_elided(std::uint64_t cycles);
/// An in-tx CAS degenerated to load(+store), saving `saved` cycles vs the
/// non-transactional CAS cost.
void on_cas_collapsed(std::uint64_t saved);
/// Bracket allocator internals so nested charges (the refill RMW) class as
/// kClassAlloc rather than kClassSync.
void on_alloc_enter();
void on_alloc_exit();
/// Outermost tx_begin on the current thread: latch its attempt-span site as
/// the transaction's identity for conflict attribution.
void on_tx_begin();
/// Outermost tx_end on the current thread.
void on_tx_commit();
/// The current thread (`aggressor`) doomed `victim`'s transaction on `line`
/// (address / kCacheLine); `doomed_cycles` is the speculative work thrown
/// away (outermost begin to doom, abort penalty included).
void on_conflict(unsigned victim, unsigned aggressor, std::uintptr_t line,
                 std::uint64_t doomed_cycles);
/// The current thread is about to longjmp out of an abort (doomed tx or
/// self-abort): clear unwind-sensitive state (the allocator bracket).
void on_abort_unwind();

// ---------------------------------------------------------------------------
// Prefix-side hooks, forwarded by the StatsHandle telemetry hooks in
// telemetry/registry.cpp. No-ops outside a simulation.
// ---------------------------------------------------------------------------

void on_site_attempt(Site* site);
void on_site_commit(Site* site);
void on_site_abort(Site* site, unsigned cause);
void on_site_fallback(Site* site);
void on_site_fallback_end(Site* site);

// ---------------------------------------------------------------------------
// Control and reporting.
// ---------------------------------------------------------------------------

/// Switch the accumulation scope (find-or-create by label). Benches label
/// scopes "<fig>/<series>" so the report answers "where did the speedup come
/// from" per series; the default scope is "".
void set_scope(std::string_view label);

/// Drop all accumulated data and per-thread state.
void reset();

/// Write a report of everything accumulated so far.
void report(std::ostream& os, Format f);

/// Honor PTO_PROF / PTO_PROF_OUT (the atexit path; callable manually).
void report_if_enabled();

// ---------------------------------------------------------------------------
// Snapshot API (tests and tools).
// ---------------------------------------------------------------------------

/// Classed cycle profile of one span population (committed fast attempts, or
/// fallback executions) at one site.
struct SpanProfile {
  std::uint64_t count = 0;
  std::uint64_t classed[kClassCount] = {};
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : classed) t += c;
    return t;
  }
};

struct SiteLedger {
  std::string site;
  SpanProfile fast;      ///< committed prefix attempts (incl. tx begin/commit)
  SpanProfile fallback;  ///< fallback executions (st.fallback → fallback_done)
  std::uint64_t fence_elided_count = 0;
  std::uint64_t fence_elided_cycles = 0;  ///< exact, committed attempts only
  std::uint64_t cas_collapsed_cycles = 0; ///< exact, committed attempts only
  std::uint64_t retry_waste_cycles = 0;   ///< aborted attempts, begin→abort
  std::uint64_t aborts[kTxCodeCount] = {};
  std::uint64_t aborted_attempts() const {
    std::uint64_t n = 0;
    for (auto a : aborts) n += a;
    return n;
  }
};

/// The paper's four latency classes plus what PTO paid for them, estimated
/// from the ledger: per-committed-op savings are the difference between the
/// site's mean fallback profile and its mean committed-fast profile, scaled
/// by commits. All-zero when the site recorded no fallbacks (no baseline to
/// compare against).
struct SavingsBreakdown {
  double fence_removed = 0;        ///< fence cycles elided
  double second_read_collapsed = 0;///< load traffic removed (double-checks)
  double store_sync_removed = 0;   ///< store + CAS/descriptor traffic removed
  double alloc_avoided = 0;        ///< allocation cycles avoided
  double other_removed = 0;        ///< pause/bench/other diff (≈0 normally)
  double tx_overhead = 0;          ///< tx begin/commit cycles paid (committed)
  double retry_waste = 0;          ///< cycles burned in aborted attempts
  /// Net virtual cycles this site's PTO saved vs running every committed op
  /// down the fallback path.
  double explained() const {
    return fence_removed + second_read_collapsed + store_sync_removed +
           alloc_avoided + other_removed - tx_overhead - retry_waste;
  }
};
SavingsBreakdown derive_savings(const SiteLedger& l);

struct ConflictCell {
  std::string victim;     ///< site whose transaction died ("(none)" if un-sited)
  std::string aggressor;  ///< site whose access killed it
  std::uint64_t count = 0;
  std::uint64_t doomed_cycles = 0;
};

struct HotLine {
  std::uint64_t line = 0;    ///< address / kCacheLine
  std::uint64_t region = 0;  ///< 256 KB region ordinal (line / 4096)
  std::uint64_t aborts = 0;
  std::uint64_t doomed_cycles = 0;
  std::string owner;  ///< dominant victim site ("(none)" if un-sited)
};

struct ScopeSnapshot {
  std::string label;
  std::vector<SiteLedger> sites;       ///< registration order
  std::vector<ConflictCell> matrix;    ///< victim-major order
  std::vector<HotLine> hot_lines;      ///< sorted by aborts desc (all lines)
  std::uint64_t unattributed[kClassCount] = {};  ///< charges outside any span
};

/// Copy of everything accumulated, in scope-creation order.
std::vector<ScopeSnapshot> snapshot();

/// Cheap monotone roll-up across every scope and site: total classed cycles
/// (fast + fallback spans + unattributed charges), span counts, and retry
/// waste. O(scopes × sites), no conflict matrix or hot-line copying — this
/// is the pto::metrics sampling primitive, called once per interval tick.
/// Monotone non-decreasing except across an explicit reset() (metrics
/// re-baselines on shrink).
struct LedgerTotals {
  std::uint64_t classed[kClassCount] = {};
  std::uint64_t fast_spans = 0;
  std::uint64_t fallback_spans = 0;
  std::uint64_t retry_waste_cycles = 0;
  std::uint64_t total_cycles() const {
    std::uint64_t t = 0;
    for (auto c : classed) t += c;
    return t;
  }
};
LedgerTotals ledger_totals();

}  // namespace prof
}  // namespace pto::telemetry
