#include "telemetry/trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "htm/txcode.h"

namespace pto::telemetry {

namespace trace_detail {
std::atomic<bool> g_on{false};
std::atomic<bool> g_sched_on{false};
}  // namespace trace_detail

namespace {

// The paper's i7-4770: 3.4e3 cycles per microsecond.
constexpr double kCyclesPerUs = 3400.0;
constexpr std::uint64_t kDefaultCap = 1u << 18;

enum Kind : std::uint8_t {
  kRunBegin,
  kTxCommit,
  kTxAbort,
  kMiss,
  kSched,
  kCounter,
};

const char* counter_name(unsigned id) {
  switch (id) {
    case 0: return "conflict_aborts";
    case 1: return "doomed_cycles";
    default: return "counter";
  }
}

struct Rec {
  std::uint64_t ts;   ///< cycles (start cycle for tx events)
  std::uint64_t dur;  ///< cycles (tx events only)
  std::uint64_t arg;  ///< cause / line address / seed
  std::uint32_t run;  ///< sim::run() ordinal, becomes the trace pid
  std::uint16_t tid;
  std::uint8_t kind;
};

struct State {
  std::string path;
  std::vector<Rec> buf;
  std::uint64_t cap = kDefaultCap;
  std::uint64_t count = 0;  ///< total events ever pushed
  std::uint32_t run = 0;    ///< current run ordinal

  State() {
    if (const char* v = std::getenv("PTO_TRACE_CAP")) {
      char* end = nullptr;
      auto parsed = std::strtoull(v, &end, 10);
      if (end != v && parsed > 0) cap = parsed;
    }
    if (const char* v = std::getenv("PTO_TRACE_SCHED");
        v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0) {
      trace_detail::g_sched_on.store(true, std::memory_order_relaxed);
    }
    if (const char* v = std::getenv("PTO_TRACE"); v != nullptr && *v != '\0') {
      path = v;
      trace_detail::g_on.store(true, std::memory_order_relaxed);
    }
  }
};

State& state() {
  static State s;
  return s;
}

// Force the env scan at startup: the recording hooks are gated on g_on, which
// only State's constructor sets, so PTO_TRACE must not wait for a first call.
const bool g_env_scanned = (state(), true);

void push(Rec r) {
  State& s = state();
  r.run = s.run;
  if (s.buf.size() < s.cap) {
    s.buf.push_back(r);
  } else {
    s.buf[s.count % s.cap] = r;
  }
  ++s.count;
}

void write_event(std::ofstream& os, const Rec& r, bool& first) {
  char head[160];
  auto emit = [&](const char* name, const char* ph, std::uint64_t ts) {
    std::snprintf(head, sizeof head,
                  "%s{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%u,"
                  "\"tid\":%u",
                  first ? "" : ",\n", name, ph,
                  static_cast<double>(ts) / kCyclesPerUs, r.run, r.tid);
    os << head;
    first = false;
  };
  switch (r.kind) {
    case kRunBegin:
      emit("process_name", "M", 0);
      os << ",\"args\":{\"name\":\"simx run " << r.run << " (" << r.ts
         << " threads, seed " << r.arg << ")\"}}";
      break;
    case kTxCommit:
    case kTxAbort: {
      emit("tx", "X", r.ts);
      char tail[128];
      std::snprintf(tail, sizeof tail, ",\"dur\":%.3f",
                    static_cast<double>(r.dur) / kCyclesPerUs);
      os << tail << ",\"args\":{\"outcome\":\""
         << (r.kind == kTxCommit ? "commit" : "abort") << "\"";
      if (r.kind == kTxAbort) {
        os << ",\"cause\":\"" << tx_code_name(static_cast<unsigned>(r.arg))
           << "\"";
      }
      os << ",\"start_cycle\":" << r.ts << ",\"end_cycle\":" << (r.ts + r.dur)
         << "}}";
      break;
    }
    case kMiss:
      emit("coherence_miss", "i", r.ts);
      os << ",\"s\":\"t\",\"args\":{\"line\":" << r.arg << "}}";
      break;
    case kSched:
      emit("sched", "i", r.ts);
      os << ",\"s\":\"t\",\"args\":{}}";
      break;
    case kCounter:
      emit(counter_name(r.tid), "C", r.ts);
      os << ",\"args\":{\"value\":" << r.arg << "}}";
      break;
  }
}

}  // namespace

void trace_set_path(const char* path) {
  State& s = state();
  s.path = (path != nullptr) ? path : "";
  s.buf.clear();
  s.count = 0;
  s.run = 0;
  trace_detail::g_on.store(!s.path.empty(), std::memory_order_relaxed);
}

void trace_set_sched(bool on) {
  trace_detail::g_sched_on.store(on, std::memory_order_relaxed);
}

void trace_set_capacity(std::uint64_t events) {
  State& s = state();
  s.cap = events > 0 ? events : 1;
  s.buf.clear();
  s.count = 0;
}

void trace_run_begin(unsigned nthreads, std::uint64_t seed) {
  State& s = state();
  ++s.run;
  push(Rec{nthreads, 0, seed, 0, 0, kRunBegin});
}

void trace_tx_commit(unsigned tid, std::uint64_t start_cycle,
                     std::uint64_t end_cycle) {
  push(Rec{start_cycle, end_cycle - start_cycle, 0, 0,
           static_cast<std::uint16_t>(tid), kTxCommit});
}

void trace_tx_abort(unsigned tid, std::uint64_t start_cycle,
                    std::uint64_t end_cycle, unsigned cause) {
  push(Rec{start_cycle, end_cycle - start_cycle, cause, 0,
           static_cast<std::uint16_t>(tid), kTxAbort});
}

void trace_miss(unsigned tid, std::uint64_t cycle, std::uint64_t line) {
  push(Rec{cycle, 0, line, 0, static_cast<std::uint16_t>(tid), kMiss});
}

void trace_sched(unsigned tid, std::uint64_t cycle) {
  push(Rec{cycle, 0, 0, 0, static_cast<std::uint16_t>(tid), kSched});
}

void trace_counter(std::uint64_t cycle, unsigned counter_id,
                   std::uint64_t value) {
  push(Rec{cycle, 0, value, 0, static_cast<std::uint16_t>(counter_id),
           kCounter});
}

void trace_flush() {
  State& s = state();
  if (s.path.empty()) return;
  std::ofstream os(s.path, std::ios::trunc);
  if (!os) return;
  const std::uint64_t kept = s.count < s.cap ? s.count : s.cap;
  const std::uint64_t dropped = s.count - kept;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Oldest-first: after a wrap the oldest record sits at count % cap.
  const std::uint64_t begin = s.count < s.cap ? 0 : s.count % s.cap;
  for (std::uint64_t i = 0; i < kept; ++i) {
    write_event(os, s.buf[(begin + i) % s.cap], first);
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" << dropped
     << ",\"cycles_per_us\":" << kCyclesPerUs << "}}\n";
  if (dropped > 0) {
    // A truncated trace silently read as complete misleads every analysis
    // downstream; say so once per flush.
    std::fprintf(stderr,
                 "[pto] warning: trace ring full, dropped %llu of %llu events "
                 "(raise PTO_TRACE_CAP, currently %llu)\n",
                 static_cast<unsigned long long>(dropped),
                 static_cast<unsigned long long>(s.count),
                 static_cast<unsigned long long>(s.cap));
  }
}

}  // namespace pto::telemetry
