// Internal policy engine for pto::explore — one instance per adversarial
// sim::run. The simulator runtime consults it at every preemption point
// (Runtime::charge) and at the start/finish decision points; with the default
// rr policy no Explorer exists and the dispatcher is untouched.
//
// Decision model: a global `step` counter increments at every decision point
// — each charge() on the running thread, the initial dispatch, and each
// thread-finish handoff. A decision that picks a thread other than the
// incumbent is recorded as pack_decision(step, tid); the recorded list is
// what PTO_SCHED_DUMP writes, what PTO_SCHED=replay:<file> consumes, and
// what tools/pto_minimize.py delta-debugs. Decisions depend only on
// (Options, nthreads, the observed sequence of decision points), so a run
// replays byte-identically from its token.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/defs.h"
#include "common/rng.h"
#include "common/threadset.h"
#include "explore/explore.h"

namespace pto::explore::internal {

class Explorer {
 public:
  Explorer(const Options& opts, unsigned nthreads);
  ~Explorer();
  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Decision at a preemption point: `cur` is running and runnable, `mask`
  /// is the runnable-thread set (cur is a member). Returns the thread to
  /// run next (== cur: no preemption).
  unsigned pick(unsigned cur, const ThreadSet& mask);

  /// Decision at the initial dispatch or after a thread finished: no
  /// incumbent; `mask` is nonempty.
  unsigned pick_first(const ThreadSet& mask);

  /// The running thread executed a backoff pause. Under PCT a strict-
  /// priority spinner would otherwise monopolize the schedule (livelock on
  /// barriers / wait loops), so a pause drops the spinner below every other
  /// priority until the rest of the system progresses past it.
  void on_pause(unsigned tid);

  const std::vector<std::uint64_t>& decisions() const { return decisions_; }

 private:
  unsigned choose(unsigned incumbent, const ThreadSet& mask);
  void record(unsigned tid);
  unsigned lowest(const ThreadSet& mask) const;
  unsigned max_priority(const ThreadSet& mask) const;

  Options opts_;
  SplitMix64 rng_;
  /// ThreadSet words covering this run's thread count (single word <= 64).
  unsigned nwords_ = 1;
  std::uint64_t step_ = 0;

  // PCT state: strict distinct priorities (higher runs); change point i
  // re-assigns the incumbent priority d-i, below every initial priority.
  std::vector<std::int64_t> prio_;
  std::vector<std::uint64_t> change_steps_;  ///< sorted, next at change_idx_
  std::size_t change_idx_ = 0;
  std::int64_t pause_floor_ = 0;  ///< descends below all other priorities

  // Replay state.
  std::vector<std::uint64_t> replay_;  ///< packed decisions from the file
  std::size_t replay_idx_ = 0;

  std::vector<std::uint64_t> decisions_;
  std::FILE* dump_ = nullptr;  ///< PTO_SCHED_DUMP sink (flushed per line)
};

}  // namespace pto::explore::internal
