#include "explore/explorer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/defs.h"

namespace pto::explore::internal {

Explorer::Explorer(const Options& opts, unsigned nthreads) : opts_(opts) {
  rng_.reseed(opts_.seed * 0x9E3779B97F4A7C15ull + 0xE5CAFEull);
  nwords_ = (nthreads + 63) / 64;
  prio_.assign(nthreads, 0);
  if (opts_.policy == Policy::kPCT) {
    // Initial priorities: a random permutation of [d+1, d+n], so every
    // change-point priority d-i (i < d) sits strictly below all of them.
    const auto d = static_cast<std::int64_t>(opts_.change_points);
    std::vector<std::int64_t> perm(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) perm[i] = d + 1 + i;
    for (unsigned i = nthreads; i > 1; --i) {
      auto j = static_cast<unsigned>(rng_.next_below(i));
      std::swap(perm[i - 1], perm[j]);
    }
    for (unsigned i = 0; i < nthreads; ++i) prio_[i] = perm[i];
    for (unsigned i = 0; i < opts_.change_points; ++i) {
      change_steps_.push_back(1 + rng_.next_below(opts_.horizon));
    }
    std::sort(change_steps_.begin(), change_steps_.end());
  }
  if (opts_.policy == Policy::kReplay) {
    std::FILE* f = std::fopen(opts_.replay_path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "[pto] warning: PTO_SCHED replay file '%s' unreadable; "
                   "running with an empty decision list\n",
                   opts_.replay_path.c_str());
    } else {
      char line[128];
      while (std::fgets(line, sizeof line, f) != nullptr) {
        if (line[0] == '#' || line[0] == '\n') continue;
        unsigned long long step = 0;
        unsigned tid = 0;
        if (std::sscanf(line, "%llu %u", &step, &tid) == 2 &&
            tid < kMaxThreads) {
          replay_.push_back(pack_decision(step, tid));
        }
      }
      std::fclose(f);
    }
  }
  if (const char* path = std::getenv("PTO_SCHED_DUMP");
      path != nullptr && *path != '\0') {
    dump_ = std::fopen(path, "w");
    if (dump_ == nullptr) {
      std::fprintf(stderr, "[pto] warning: cannot open PTO_SCHED_DUMP='%s'\n",
                   path);
    } else {
      std::fprintf(dump_, "# %s\n# step tid\n", token(opts_).c_str());
      std::fflush(dump_);
    }
  }
}

Explorer::~Explorer() {
  if (dump_ != nullptr) std::fclose(dump_);
}

unsigned Explorer::lowest(const ThreadSet& mask) const {
  return mask.first(nwords_);
}

unsigned Explorer::max_priority(const ThreadSet& mask) const {
  unsigned best = kMaxThreads;
  mask.for_each(nwords_, [&](unsigned t) {
    if (best == kMaxThreads || prio_[t] > prio_[best]) best = t;
  });
  return best;
}

void Explorer::record(unsigned tid) {
  std::uint64_t d = pack_decision(step_, tid);
  if (opts_.schedule_out != nullptr) opts_.schedule_out->push_back(d);
  decisions_.push_back(d);
  if (dump_ != nullptr) {
    std::fprintf(dump_, "%llu %u\n", static_cast<unsigned long long>(step_),
                 tid);
    // Flushed per decision so a crashed run leaves its prefix for the
    // minimizer; adversarial runs are test-sized, never benched.
    std::fflush(dump_);
  }
}

unsigned Explorer::choose(unsigned incumbent, const ThreadSet& mask) {
  assert(!mask.empty(nwords_));
  switch (opts_.policy) {
    case Policy::kPCT: {
      // Apply any change points due at this step to the incumbent (when
      // there is none — a finish decision — the point is consumed against
      // the thread about to be picked, keeping the stream aligned).
      while (change_idx_ < change_steps_.size() &&
             change_steps_[change_idx_] <= step_) {
        unsigned target =
            incumbent != kMaxThreads ? incumbent : max_priority(mask);
        prio_[target] = static_cast<std::int64_t>(opts_.change_points) -
                        static_cast<std::int64_t>(change_idx_);
        ++change_idx_;
      }
      return max_priority(mask);
    }
    case Policy::kRandom: {
      unsigned n = mask.popcount(nwords_);
      auto k = static_cast<unsigned>(rng_.next_below(n));
      unsigned picked = kMaxThreads;
      mask.for_each(nwords_, [&](unsigned t) {
        if (k-- == 0) picked = t;
      });
      return picked;
    }
    case Policy::kReplay: {
      while (replay_idx_ < replay_.size() &&
             decision_step(replay_[replay_idx_]) < step_) {
        ++replay_idx_;  // stale entries (earlier steps already passed)
      }
      if (replay_idx_ < replay_.size() &&
          decision_step(replay_[replay_idx_]) == step_) {
        unsigned t = decision_tid(replay_[replay_idx_]);
        ++replay_idx_;
        if (t < kMaxThreads && mask.test(t)) return t;
      }
      // No entry for this step: stay on the incumbent; on a finish
      // decision fall back to the lowest-index runnable thread.
      return incumbent != kMaxThreads ? incumbent : lowest(mask);
    }
    case Policy::kEnv:
    case Policy::kRR:
      break;  // unreachable: rr runs without an Explorer
  }
  return incumbent != kMaxThreads ? incumbent : lowest(mask);
}

unsigned Explorer::pick(unsigned cur, const ThreadSet& mask) {
  ++step_;
  unsigned next = choose(cur, mask);
  if (next != cur) record(next);
  return next;
}

unsigned Explorer::pick_first(const ThreadSet& mask) {
  ++step_;
  unsigned next = choose(kMaxThreads, mask);
  record(next);
  return next;
}

void Explorer::on_pause(unsigned tid) {
  if (opts_.policy != Policy::kPCT) return;
  // Drop the spinner below everything currently schedulable (initial and
  // change-point priorities are all >= 1); floors are distinct so
  // priorities stay a strict order.
  prio_[tid] = --pause_floor_;
}

}  // namespace pto::explore::internal
