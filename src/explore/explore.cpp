// Option parsing, replay tokens, and seed derivation for pto::explore.
#include "explore/explore.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/warn.h"

namespace pto::explore {

namespace {

/// Parse a decimal u64 from [s, end-of-field); returns false on junk.
bool parse_u64(const char* s, const char* end, std::uint64_t& out) {
  if (s == end) return false;
  std::uint64_t v = 0;
  for (; s != end; ++s) {
    if (*s < '0' || *s > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(*s - '0');
  }
  out = v;
  return true;
}

const char* field_end(const char* s) {
  while (*s != '\0' && *s != ':') ++s;
  return s;
}

}  // namespace

bool parse_sched(const char* s, Options& o) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "rr") == 0) {
    o.policy = Policy::kRR;
    return true;
  }
  if (std::strncmp(s, "replay:", 7) == 0 && s[7] != '\0') {
    o.policy = Policy::kReplay;
    o.replay_path = s + 7;
    return true;
  }
  Policy pol;
  const char* rest;
  if (std::strncmp(s, "pct:", 4) == 0) {
    pol = Policy::kPCT;
    rest = s + 4;
  } else if (std::strncmp(s, "rand:", 5) == 0) {
    pol = Policy::kRandom;
    rest = s + 5;
  } else {
    return false;
  }
  Options tmp = o;
  const char* e = field_end(rest);
  if (!parse_u64(rest, e, tmp.seed)) return false;
  if (pol == Policy::kPCT && *e == ':') {
    rest = e + 1;
    e = field_end(rest);
    std::uint64_t d;
    if (!parse_u64(rest, e, d) || d > 64) return false;
    tmp.change_points = static_cast<unsigned>(d);
    if (*e == ':') {
      rest = e + 1;
      e = field_end(rest);
      if (!parse_u64(rest, e, tmp.horizon) || tmp.horizon == 0) return false;
    }
  }
  if (*e != '\0') return false;
  tmp.policy = pol;
  o = tmp;
  return true;
}

bool parse_faults(const char* s, Options& o) {
  if (s == nullptr) return false;
  const char* colon = std::strchr(s, ':');
  if (colon == nullptr) return false;
  std::uint64_t seed;
  if (!parse_u64(s, colon, seed)) return false;
  char* end = nullptr;
  double rate = std::strtod(colon + 1, &end);
  if (end == colon + 1 || *end != '\0' || !(rate >= 0.0) || rate > 1.0) {
    return false;
  }
  o.fault_seed = seed;
  o.fault_rate = rate;
  return true;
}

Options resolved(const Options& o) {
  Options r = o;
  if (r.policy == Policy::kEnv) {
    r.policy = Policy::kRR;
    const char* s = std::getenv("PTO_SCHED");
    if (s != nullptr && *s != '\0' && !parse_sched(s, r)) {
      warn_once("env.PTO_SCHED",
                "ignoring invalid PTO_SCHED='%s' (want rr | "
                "pct:<seed>[:d[:k]] | rand:<seed> | replay:<file>); using rr",
                s);
    }
  }
  if (r.fault_rate == 0.0) {
    const char* f = std::getenv("PTO_HTM_FAULTS");
    if (f != nullptr && *f != '\0' && !parse_faults(f, r)) {
      warn_once("env.PTO_HTM_FAULTS",
                "ignoring invalid PTO_HTM_FAULTS='%s' (want <seed>:<rate> "
                "with rate in [0,1])",
                f);
    }
  }
  return r;
}

std::string token(const Options& o) {
  char buf[160];
  std::string t;
  switch (o.policy) {
    case Policy::kEnv:
    case Policy::kRR:
      t = "PTO_SCHED=rr";
      break;
    case Policy::kPCT:
      std::snprintf(buf, sizeof buf, "PTO_SCHED=pct:%llu:%u:%llu",
                    static_cast<unsigned long long>(o.seed), o.change_points,
                    static_cast<unsigned long long>(o.horizon));
      t = buf;
      break;
    case Policy::kRandom:
      std::snprintf(buf, sizeof buf, "PTO_SCHED=rand:%llu",
                    static_cast<unsigned long long>(o.seed));
      t = buf;
      break;
    case Policy::kReplay:
      t = "PTO_SCHED=replay:" + o.replay_path;
      break;
  }
  if (o.fault_rate > 0.0) {
    std::snprintf(buf, sizeof buf, " PTO_HTM_FAULTS=%llu:%g",
                  static_cast<unsigned long long>(o.fault_seed), o.fault_rate);
    t += buf;
  }
  return t;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt) {
  // SplitMix64 finalizer over (base, salt): distinct trials get
  // well-separated schedule streams while staying a pure function of the
  // pair, so multi-trial benches remain deterministic.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace pto::explore
