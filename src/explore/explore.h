// pto::explore — adversarial schedule exploration and HTM fault injection
// for the simx simulator (DESIGN.md §9).
//
// The default simx dispatcher always runs the least-advanced virtual thread,
// so every workload sees exactly one interleaving. The paper's correctness
// claims (Thms 1–3) quantify over *all* interleavings and *all* best-effort
// abort patterns; this module supplies seeded adversarial versions of both:
//
//   PTO_SCHED=rr                 the classic min-clock schedule (default;
//                                bit-for-bit identical to the plain dispatcher)
//   PTO_SCHED=pct:<seed>[:d[:k]] PCT-style priority scheduling (Burckhardt et
//                                al., ASPLOS'10): random strict priorities,
//                                d priority change points sampled over a
//                                k-step horizon (defaults d=3, k=100000)
//   PTO_SCHED=rand:<seed>        uniform-random runnable thread at every
//                                preemption point
//   PTO_SCHED=replay:<file>      follow a recorded decision list (see
//                                PTO_SCHED_DUMP and tools/pto_minimize.py)
//
//   PTO_HTM_FAULTS=<seed>:<rate> inject spurious/interrupt aborts with
//                                probability <rate> per transactional access,
//                                and with the same probability give a
//                                transaction a jittered (reduced) capacity at
//                                begin — exercising every fallback path
//
//   PTO_SCHED_DUMP=<file>        write the decision list of each simulated
//                                run (truncated at run start, flushed per
//                                decision, so a crashed run leaves its
//                                prefix behind for the minimizer)
//
// Preemption points are exactly the simulator's instrumented events: every
// shared-memory access, fence, RMW, allocation, tx begin/commit, pause and
// op boundary charges cycles through Runtime::charge(), and under an
// exploration policy every charge() is a scheduling decision. A run is a
// pure function of (workload, Options), so any failure is replayed exactly
// by its one-line token (`explore::token()`).
//
// This header is standalone (no sim.h dependency) so sim::Config can embed
// Options by value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pto::explore {

enum class Policy : unsigned char {
  kEnv = 0,  ///< resolve from PTO_SCHED / PTO_HTM_FAULTS at run start
  kRR,       ///< deterministic min-clock dispatch (the classic simx schedule)
  kPCT,      ///< PCT random priorities with d change points
  kRandom,   ///< uniform-random runnable thread at every preemption point
  kReplay,   ///< follow an explicit decision list from a file
};

struct Options {
  Policy policy = Policy::kEnv;
  std::uint64_t seed = 1;        ///< schedule seed (pct / rand)
  unsigned change_points = 3;    ///< PCT d: priority change points per run
  std::uint64_t horizon = 100'000;  ///< PCT k: step horizon the d change
                                    ///< points are sampled from
  std::string replay_path;       ///< kReplay: decision-list file

  /// HTM fault injection; rate 0 disables. Independent of the scheduling
  /// policy (and of HtmConfig::spurious_abort_prob, which draws from the
  /// workload RNG — the fault injector has its own stream so enabling it
  /// never perturbs workload key sequences).
  std::uint64_t fault_seed = 0;
  double fault_rate = 0.0;

  /// Test hook: when set, every scheduling decision that picked a thread
  /// other than the incumbent is appended as pack(step, tid) — the replay
  /// identity tests compare these across runs.
  std::vector<std::uint64_t>* schedule_out = nullptr;

  bool adversarial() const {
    return policy == Policy::kPCT || policy == Policy::kRandom ||
           policy == Policy::kReplay;
  }
};

/// One recorded scheduling decision: `step` is the index of the decision
/// point (every preemption point increments it), `tid` the chosen thread.
/// The tid field is 16 bits so thread ids up to kMaxThreads (1024) fit with
/// headroom; steps use the remaining 48 bits.
constexpr std::uint64_t pack_decision(std::uint64_t step, unsigned tid) {
  return (step << 16) | tid;
}
constexpr std::uint64_t decision_step(std::uint64_t d) { return d >> 16; }
constexpr unsigned decision_tid(std::uint64_t d) {
  return static_cast<unsigned>(d & 0xFFFF);
}

/// Parse a PTO_SCHED value into `o` (policy/seed/d/k/replay_path only).
/// Returns false (leaving `o` untouched) on a malformed value.
bool parse_sched(const char* s, Options& o);

/// Parse a PTO_HTM_FAULTS value ("<seed>:<rate>") into `o`.
bool parse_faults(const char* s, Options& o);

/// Resolve kEnv against PTO_SCHED / PTO_HTM_FAULTS (each consulted at every
/// call — no caching, so tests may setenv between runs). Options with an
/// explicit policy pass through unchanged except that a zero fault_rate
/// still picks up PTO_HTM_FAULTS.
Options resolved(const Options& o);

/// The one-line replay token reproducing a run: "PTO_SCHED=pct:7:3:100000"
/// plus " PTO_HTM_FAULTS=9:0.01" when fault injection is active. Pasting it
/// into the environment of the same binary reproduces the schedule (and the
/// injected faults) byte-identically.
std::string token(const Options& o);

/// Derive a per-trial / per-test schedule seed from a base seed, matching
/// how the bench runner keeps multi-trial sweeps deterministic.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt);

}  // namespace pto::explore
