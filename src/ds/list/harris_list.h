// Lock-free sorted linked-list set (Harris, "A Pragmatic Implementation of
// Non-Blocking Linked Lists", DISC 2001 — the paper's reference [14], whose
// mark-bit technique it singles out as an "unused bits embedded in the data
// fields" intermediate state, §2.3).
//
// PTO application follows the paper's recipe for search structures (§2.3,
// "many search data structures employ a search phase, followed by an update
// phase that performs its writes after validating selected locations"):
// search non-transactionally, then one prefix transaction validates
// pred->next and performs the link (insert) or the mark+unlink (remove) —
// replacing the CAS (insert) or the two-CAS mark/unlink dance (remove).
// Lookups can run entirely inside a transaction, eliding the epoch guard.
//
// This structure is not in the paper's evaluation; it is included as the
// canonical "simple application" of the methodology and is exercised by the
// abl_list ablation bench.
#pragma once

#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"
#include "telemetry/registry.h"

namespace pto {

template <class P>
class HarrisList {
 public:
  static constexpr PrefixPolicy kDefaultPolicy{4};

  struct Node {
    std::int64_t key;
    Atom<P, std::uintptr_t> next;  // mark bit = bit 0
  };

  struct ThreadCtx {
    explicit ThreadCtx(HarrisList& l) : epoch(l.dom_.register_thread()) {}
    typename EpochDomain<P>::Handle epoch;
    PrefixStats ins_stats, rem_stats, lookup_stats;
  };

  HarrisList() {
    head_ = P::template make<Node>();
    tail_ = P::template make<Node>();
    head_->key = INT64_MIN;
    tail_->key = INT64_MAX;
    head_->next.init(word(tail_));
    tail_->next.init(0);
  }

  ~HarrisList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = ptr(n->next.load(std::memory_order_relaxed));
      P::template destroy<Node>(n);
      n = nx;
    }
  }

  HarrisList(const HarrisList&) = delete;
  HarrisList& operator=(const HarrisList&) = delete;

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  // -- lookups ---------------------------------------------------------------

  bool contains_lf(ThreadCtx& ctx, std::int64_t key) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    return contains_walk(key);
  }

  /// PTO lookup: the transaction subsumes the epoch guard (§5).
  bool contains_pto(ThreadCtx& ctx, std::int64_t key,
                    PrefixPolicy pol = kDefaultPolicy) {
    if (!P::strongly_atomic()) return contains_lf(ctx, key);
    return prefix<P>(
        pol, [&]() -> bool { return contains_walk(key); },
        [&]() -> bool { return contains_lf(ctx, key); },
        {&ctx.lookup_stats, PTO_TELEMETRY_SITE("list.lookup")});
  }

  // -- lock-free baseline (Harris) ---------------------------------------------

  bool insert_lf(ThreadCtx& ctx, std::int64_t key) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* n = nullptr;
    bool ok = insert_impl(ctx, key, &n);
    if (!ok && n != nullptr) P::template destroy<Node>(n);
    return ok;
  }

  bool remove_lf(ThreadCtx& ctx, std::int64_t key) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    return remove_impl(ctx, key);
  }

  // -- PTO ---------------------------------------------------------------------

  bool insert_pto(ThreadCtx& ctx, std::int64_t key,
                  PrefixPolicy pol = kDefaultPolicy) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* n = nullptr;
    for (int a = 0; a < pol.attempts; ++a) {
      Node* pred;
      Node* curr;
      if (search(ctx, key, &pred, &curr)) {
        if (n != nullptr) P::template destroy<Node>(n);
        return false;
      }
      if (n == nullptr) {
        n = P::template make<Node>();
        n->key = key;
        n->next.init(0);
      }
      int r = prefix<P>(
          1,
          [&]() -> int {
            if (pred->next.load(std::memory_order_relaxed) != word(curr)) {
              P::template tx_abort<TX_CODE_VALIDATION>();
            }
            n->next.store(word(curr), std::memory_order_relaxed);
            pred->next.store(word(n));
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.ins_stats, PTO_TELEMETRY_SITE("list.insert")});
      if (r == 1) return true;
    }
    bool ok = insert_impl(ctx, key, &n);
    if (!ok && n != nullptr) P::template destroy<Node>(n);
    return ok;
  }

  bool remove_pto(ThreadCtx& ctx, std::int64_t key,
                  PrefixPolicy pol = kDefaultPolicy) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    for (int a = 0; a < pol.attempts; ++a) {
      Node* pred;
      Node* curr;
      if (!search(ctx, key, &pred, &curr)) return false;
      // One transaction replaces the mark CAS + unlink CAS, and the
      // intermediate marked state never becomes visible (§2.3, "Eliminating
      // Redundant Stores").
      int r = prefix<P>(
          1,
          [&]() -> int {
            std::uintptr_t cn = curr->next.load(std::memory_order_relaxed);
            if (is_marked(cn)) return 2;  // already logically deleted
            if (pred->next.load(std::memory_order_relaxed) != word(curr)) {
              P::template tx_abort<TX_CODE_VALIDATION>();
            }
            curr->next.store(mark(cn), std::memory_order_relaxed);
            pred->next.store(cn);
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.rem_stats, PTO_TELEMETRY_SITE("list.remove")});
      if (r == 1) {
        ctx.epoch.retire(curr);
        return true;
      }
      if (r == 2) return false;
    }
    return remove_impl(ctx, key);
  }

  bool check_invariants() {
    std::int64_t last = INT64_MIN;
    Node* n = ptr(head_->next.load(std::memory_order_relaxed));
    while (n != tail_) {
      if (n->key <= last) return false;
      if (is_marked(n->next.load(std::memory_order_relaxed))) return false;
      last = n->key;
      n = ptr(n->next.load(std::memory_order_relaxed));
    }
    return true;
  }

  std::size_t size_slow() {
    std::size_t c = 0;
    for (Node* n = ptr(head_->next.load(std::memory_order_relaxed));
         n != tail_; n = ptr(n->next.load(std::memory_order_relaxed))) {
      ++c;
    }
    return c;
  }

 private:
  static std::uintptr_t word(Node* n) {
    return reinterpret_cast<std::uintptr_t>(n);
  }
  static Node* ptr(std::uintptr_t w) {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) { return (w & 1) != 0; }
  static std::uintptr_t mark(std::uintptr_t w) { return w | 1; }
  static std::uintptr_t strip(std::uintptr_t w) { return w & ~std::uintptr_t{1}; }

  bool contains_walk(std::int64_t key) {
    Node* curr = ptr(head_->next.load());
    // pto-lint: bounded(sorted traversal; the tail sentinel key is +inf)
    while (curr->key < key) {
      curr = ptr(curr->next.load());
    }
    return curr->key == key && !is_marked(curr->next.load());
  }

  /// Harris search: positions (pred, curr) with pred->key < key <= curr->key,
  /// physically unlinking marked nodes along the way. Returns whether curr
  /// holds the key. Caller holds an epoch guard.
  bool search(ThreadCtx& ctx, std::int64_t key, Node** out_pred,
              Node** out_curr) {
    (void)ctx;
  retry:
    Node* pred = head_;
    Node* curr = ptr(pred->next.load());
    for (;;) {
      std::uintptr_t cn = curr->next.load();
      while (is_marked(cn)) {
        // curr is logically deleted: unlink it.
        std::uintptr_t expect = word(curr);
        if (!pred->next.compare_exchange_strong(expect, strip(cn))) {
          goto retry;
        }
        curr = ptr(strip(cn));
        cn = curr->next.load();
      }
      if (curr->key >= key) break;
      pred = curr;
      curr = ptr(cn);
    }
    *out_pred = pred;
    *out_curr = curr;
    return curr->key == key;
  }

  bool insert_impl(ThreadCtx& ctx, std::int64_t key, Node** node) {
    for (;;) {
      Node* pred;
      Node* curr;
      if (search(ctx, key, &pred, &curr)) return false;
      Node* n = *node;
      if (n == nullptr) {
        n = P::template make<Node>();
        n->key = key;
        n->next.init(0);
        *node = n;
      }
      n->next.store(word(curr), std::memory_order_relaxed);
      std::uintptr_t expect = word(curr);
      if (pred->next.compare_exchange_strong(expect, word(n))) {
        *node = nullptr;
        return true;
      }
    }
  }

  bool remove_impl(ThreadCtx& ctx, std::int64_t key) {
    for (;;) {
      Node* pred;
      Node* curr;
      if (!search(ctx, key, &pred, &curr)) return false;
      std::uintptr_t cn = curr->next.load();
      if (is_marked(cn)) return false;
      // Logical deletion: mark curr's next pointer.
      if (!curr->next.compare_exchange_strong(cn, mark(cn))) continue;
      // Physical deletion: best effort; search() finishes it otherwise.
      std::uintptr_t expect = word(curr);
      if (pred->next.compare_exchange_strong(expect, strip(cn))) {
        ctx.epoch.retire(curr);
      } else {
        Node* p2;
        Node* c2;
        search(ctx, key, &p2, &c2);  // helps unlink, then safe to retire
        ctx.epoch.retire(curr);
      }
      return true;
    }
  }

  EpochDomain<P> dom_;
  Node* head_;
  Node* tail_;
};

}  // namespace pto
