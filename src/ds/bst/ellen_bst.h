// Non-blocking binary search tree of Ellen, Fatourou, Ruppert & van Breugel
// (PODC 2010), transliterated to C++ with sequentially consistent atomics
// and epoch-based reclamation, exactly as the paper describes (§4.4) — plus
// the paper's PTO variants:
//
//   PTO1   the whole insert/remove/lookup runs in one prefix transaction:
//          no Info descriptor is allocated, no flagging CASes, lookups elide
//          the epoch guard and double-checking;
//   PTO2   only the update phase runs in a transaction, after a
//          non-transactional search: smaller contention window, but lookups
//          keep their overhead;
//   PTO1+PTO2  hierarchical composition (§2.5): 2 attempts of PTO1, then 16
//          of PTO2, then the original lock-free algorithm.
//
// Removal inside a transaction still needs the removed internal node's update
// field to be permanently non-CLEAN (otherwise a stale fallback insert could
// flag it and splice into a detached subtree); the paper's fix — a unique,
// statically allocated dummy descriptor that helpers simply ignore — is
// implemented as `dummy_` (§3.2).
//
// Structure: leaf-oriented BST. Internal nodes route with "k < key ? left :
// right"; leaves carry the keys. Sentinels: root(inf2) -> left child
// internal(inf1) under which the user subtree grows, so every user leaf has
// an internal parent and grandparent. User keys must be < kInf1.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"
#include "telemetry/registry.h"

namespace pto {

template <class P>
class EllenBST {
 public:
  static constexpr std::int64_t kInf2 = INT64_MAX;
  static constexpr std::int64_t kInf1 = INT64_MAX - 1;

  enum class Mode { kLockfree, kPto1, kPto2, kPto12 };

 private:
  struct Node;  // defined below; ThreadCtx caches unpublished shells

 public:

  static constexpr PrefixPolicy kPto1Policy{2};   // paper §4.4: fail 2x ...
  static constexpr PrefixPolicy kPto2Policy{16};  // ... then 16x in PTO2

  struct ThreadCtx {
    explicit ThreadCtx(EllenBST& t) : epoch(t.dom_.register_thread()) {}
    ThreadCtx(ThreadCtx&& o) noexcept
        : epoch(std::move(o.epoch)), spare_leaf(o.spare_leaf),
          spare_sibling(o.spare_sibling), spare_internal(o.spare_internal) {
      o.spare_leaf = o.spare_sibling = o.spare_internal = nullptr;
    }
    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;
    ~ThreadCtx() {
      if (spare_leaf != nullptr) P::template destroy<Node>(spare_leaf);
      if (spare_sibling != nullptr) P::template destroy<Node>(spare_sibling);
      if (spare_internal != nullptr) {
        P::template destroy<Node>(spare_internal);
      }
    }
    typename EpochDomain<P>::Handle epoch;
    PrefixStats pto1_stats, pto2_stats, lookup_stats;
    /// Unpublished node shells cached between PTO insert attempts, so an
    /// insert that finds its key already present costs no allocator round
    /// trip (otherwise PTO1 would pay three wasted allocations per no-op
    /// insert and lose its edge over PTO2 — see fig5a).
    Node* spare_leaf = nullptr;
    Node* spare_sibling = nullptr;
    Node* spare_internal = nullptr;
  };

  EllenBST() {
    // Ellen et al.'s initial tree: root(inf2) with sentinel leaves inf1 and
    // inf2. User keys are < inf1, so every user leaf acquires an internal
    // parent on first insert and an internal grandparent thereafter; the
    // sentinel leaves are never removed, so gp is always non-null when a
    // user key is deleted.
    root_ = make_internal(kInf2, make_leaf(kInf1), make_leaf(kInf2));
  }

  ~EllenBST() { destroy_rec(root_); }
  EllenBST(const EllenBST&) = delete;
  EllenBST& operator=(const EllenBST&) = delete;

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  /// Override the transaction retry budgets (paper defaults: 2 and 16).
  void set_policies(PrefixPolicy pto1, PrefixPolicy pto2) {
    pto1_policy_ = pto1;
    pto2_policy_ = pto2;
  }

  // -- public operations ------------------------------------------------------

  bool contains(ThreadCtx& ctx, std::int64_t key, Mode mode = Mode::kLockfree) {
    if (mode == Mode::kLockfree || mode == Mode::kPto2 ||
        !P::strongly_atomic()) {
      // PTO2 leaves the search phase out of transactions (paper §4.4); under
      // SoftHTM guard elision is unsafe, so everything takes the guard.
      typename EpochDomain<P>::Guard g(ctx.epoch);
      Search s = search(key);
      return s.l->key == key;
    }
    // PTO1 lookup: the transaction subsumes the epoch guard and fences.
    return prefix<P>(
        pto1_policy_,
        [&]() -> bool {
          Node* l = root_;
          // pto-lint: bounded(tree height; leaf reached in <= depth steps)
          while (!l->leaf) {
            l = (key < l->key ? l->left : l->right)
                    .load(std::memory_order_relaxed);
          }
          return l->key == key;
        },
        [&]() -> bool {
          typename EpochDomain<P>::Guard g(ctx.epoch);
          Search s = search(key);
          return s.l->key == key;
        },
        {&ctx.lookup_stats, PTO_TELEMETRY_SITE("bst.lookup")});
  }

  bool insert(ThreadCtx& ctx, std::int64_t key, Mode mode = Mode::kLockfree) {
    assert(key < kInf1);
    switch (mode) {
      case Mode::kLockfree: {
        typename EpochDomain<P>::Guard g(ctx.epoch);
        return insert_lf(ctx, key);
      }
      case Mode::kPto1:
        return insert_pto1(ctx, key, [&] {
          typename EpochDomain<P>::Guard g(ctx.epoch);
          return insert_lf(ctx, key);
        });
      case Mode::kPto2:
        return insert_pto2(ctx, key, pto2_policy_);
      case Mode::kPto12:
        return insert_pto1(
            ctx, key, [&] { return insert_pto2(ctx, key, pto2_policy_); });
    }
    return false;
  }

  bool remove(ThreadCtx& ctx, std::int64_t key, Mode mode = Mode::kLockfree) {
    switch (mode) {
      case Mode::kLockfree: {
        typename EpochDomain<P>::Guard g(ctx.epoch);
        return remove_lf(ctx, key);
      }
      case Mode::kPto1:
        return remove_pto1(ctx, key, [&] {
          typename EpochDomain<P>::Guard g(ctx.epoch);
          return remove_lf(ctx, key);
        });
      case Mode::kPto2:
        return remove_pto2(ctx, key, pto2_policy_);
      case Mode::kPto12:
        return remove_pto1(
            ctx, key, [&] { return remove_pto2(ctx, key, pto2_policy_); });
    }
    return false;
  }

  /// Quiescent checks: leaves strictly sorted, internal routing consistent,
  /// reachable update fields CLEAN (or the dummy mark is unreachable).
  bool check_invariants() {
    std::int64_t last = INT64_MIN;
    return check_rec(root_, INT64_MIN, kInf2, last);
  }

  std::size_t size_slow() { return count_user_leaves(root_); }

 private:
  // -- representation ----------------------------------------------------------

  enum State : std::uintptr_t {
    kClean = 0,
    kIFlag = 1,
    kDFlag = 2,
    kMark = 3,
  };
  static constexpr std::uintptr_t kStateMask = 3;
  /// Bit 2 set = a CLEAN word carrying a PTO version counter instead of an
  /// Info pointer. The lock-free protocol's safety rests on "update word
  /// unchanged => children unchanged"; PTO transactions modify child slots
  /// without installing descriptors, so they must still produce a *fresh*
  /// update word on every node whose child slot they write — otherwise a
  /// stale fallback flag/mark CAS could succeed against a changed subtree
  /// and splice wrongly (found by the simulator stress tests).
  static constexpr std::uintptr_t kPtoCleanBit = 4;

  struct Info {
    bool is_insert;
    Node* gp = nullptr;        // delete only
    Node* p = nullptr;
    Node* l = nullptr;
    Node* new_internal = nullptr;  // insert only
    std::uintptr_t pupdate = 0;    // delete only
  };

  struct Node {
    std::int64_t key;
    bool leaf;
    Atom<P, std::uintptr_t> update;  // Info* | State (internal nodes)
    Atom<P, Node*> left;
    Atom<P, Node*> right;
  };

  static State state_of(std::uintptr_t u) {
    return static_cast<State>(u & kStateMask);
  }
  static Info* info_of(std::uintptr_t u) {
    if (u & kPtoCleanBit) return nullptr;  // counter word, no descriptor
    return reinterpret_cast<Info*>(u & ~kStateMask);
  }
  static std::uintptr_t pack(Info* i, State s) {
    return reinterpret_cast<std::uintptr_t>(i) | s;
  }
  /// Globally unique CLEAN word. A simple per-node counter is not enough:
  /// it would restart whenever a real descriptor cycles through the field,
  /// and a stale fallback CAS could then observe a *recycled* counter value
  /// (ABA) and succeed against a changed subtree. Threads draw 2^20-value
  /// blocks from one process-wide counter, so values never repeat and the
  /// shared fetch_add is touched (inside a transaction) only once per block.
  static std::uintptr_t fresh_clean_word() {
    struct Block {
      std::uint64_t next = 0, end = 0;
    };
    thread_local Block b;
    if (b.next == b.end) {
      static std::atomic<std::uint64_t> source{1};
      b.next = source.fetch_add(std::uint64_t{1} << 20);
      b.end = b.next + (std::uint64_t{1} << 20);
    }
    return static_cast<std::uintptr_t>((b.next++ << 3)) | kPtoCleanBit |
           kClean;
  }

  Node* make_leaf(std::int64_t key) {
    Node* n = P::template make<Node>();
    n->key = key;
    n->leaf = true;
    n->update.init(0);
    n->left.init(nullptr);
    n->right.init(nullptr);
    return n;
  }

  Node* make_internal(std::int64_t key, Node* l, Node* r) {
    Node* n = P::template make<Node>();
    n->key = key;
    n->leaf = false;
    n->update.init(0);
    n->left.init(l);
    n->right.init(r);
    return n;
  }

  void destroy_rec(Node* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      destroy_rec(n->left.load(std::memory_order_relaxed));
      destroy_rec(n->right.load(std::memory_order_relaxed));
      std::uintptr_t u = n->update.load(std::memory_order_relaxed);
      Info* i = info_of(u);
      if (i != nullptr && i != &dummy_) P::template destroy<Info>(i);
    }
    P::template destroy<Node>(n);
  }

  // -- original lock-free algorithm -------------------------------------------

  struct Search {
    Node* gp;
    Node* p;
    Node* l;
    std::uintptr_t gpupdate;
    std::uintptr_t pupdate;
  };

  Search search(std::int64_t key) {
    Search s{nullptr, nullptr, root_, 0, 0};
    while (!s.l->leaf) {
      s.gp = s.p;
      s.p = s.l;
      s.gpupdate = s.pupdate;
      s.pupdate = s.p->update.load();
      s.l = (key < s.p->key ? s.p->left : s.p->right).load();
    }
    return s;
  }

  /// CAS the child slot of `parent` on the side where `old` belongs.
  void cas_child(Node* parent, Node* old, Node* nw) {
    auto& slot = old->key < parent->key ? parent->left : parent->right;
    Node* expect = old;
    slot.compare_exchange_strong(expect, nw);
  }

  void help(ThreadCtx& ctx, std::uintptr_t u) {
    Info* i = info_of(u);
    if (i == nullptr || i == &dummy_) return;  // dummy: nothing to finish
    switch (state_of(u)) {
      case kIFlag: help_insert(ctx, i); break;
      case kMark: help_marked(ctx, i); break;
      case kDFlag: help_delete(ctx, i); break;
      case kClean: break;
    }
  }

  void help_insert(ThreadCtx& ctx, Info* op) {
    (void)ctx;
    cas_child(op->p, op->l, op->new_internal);
    std::uintptr_t expect = pack(op, kIFlag);
    op->p->update.compare_exchange_strong(expect, pack(op, kClean));
  }

  bool help_delete(ThreadCtx& ctx, Info* op) {
    // Try to mark the parent with this operation.
    std::uintptr_t expect = op->pupdate;
    bool marked =
        op->p->update.compare_exchange_strong(expect, pack(op, kMark));
    // The winning mark displaced p's old Clean Info, which nothing
    // references afterwards (p itself is about to be unlinked and its final
    // update word keeps `op`, not the old record) — retire it here, the one
    // place that knows the CAS won. The transactional remove path retires
    // its `displaced_p` the same way.
    // PTO_SEEDED_BUGS reintroduces a historical defect (the Clean-Info
    // leak: the displaced record is never retired) so the exploration test
    // suite can prove it finds real bugs. Never define it in normal builds.
#ifndef PTO_SEEDED_BUGS
    if (marked) retire_displaced(ctx, op->pupdate);
#endif
    if (marked || expect == pack(op, kMark)) {
      help_marked(ctx, op);
      return true;
    }
    // Failed: help whoever is there, then backtrack (unflag the grandparent).
    help(ctx, op->p->update.load());
    std::uintptr_t e2 = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(e2, pack(op, kClean));
    return false;
  }

  void help_marked(ThreadCtx& ctx, Info* op) {
    (void)ctx;
    Node* l = op->p->left.load();
    Node* other = (l == op->l) ? op->p->right.load() : l;
    cas_child(op->gp, op->p, other);
    std::uintptr_t expect = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(expect, pack(op, kClean));
  }

  /// Retire the Info displaced by a successful flagging CAS (exactly once:
  /// only the CAS winner calls this).
  void retire_displaced(ThreadCtx& ctx, std::uintptr_t old_update) {
    Info* i = info_of(old_update);
    if (i != nullptr && i != &dummy_) ctx.epoch.retire(i);
  }

  bool insert_lf(ThreadCtx& ctx, std::int64_t key) {
    for (;;) {
      Search s = search(key);
      if (s.l->key == key) return false;
      if (state_of(s.pupdate) != kClean) {
        help(ctx, s.pupdate);
        continue;
      }
      Node* new_leaf = make_leaf(key);
      Node* sibling = make_leaf(s.l->key);
      Node* internal =
          key < s.l->key
              ? make_internal(s.l->key, new_leaf, sibling)
              : make_internal(key, sibling, new_leaf);
      Info* op = P::template make<Info>();
      op->is_insert = true;
      op->p = s.p;
      op->l = s.l;
      op->new_internal = internal;
      std::uintptr_t expect = s.pupdate;
      if (s.p->update.compare_exchange_strong(expect, pack(op, kIFlag))) {
        retire_displaced(ctx, s.pupdate);
        help_insert(ctx, op);
        ctx.epoch.retire(s.l);  // the replaced leaf
        return true;
      }
      // Lost the flag race: clean up and help whoever beat us.
      P::template destroy<Node>(new_leaf);
      P::template destroy<Node>(sibling);
      P::template destroy<Node>(internal);
      P::template destroy<Info>(op);
      help(ctx, expect);
    }
  }

  bool remove_lf(ThreadCtx& ctx, std::int64_t key) {
    for (;;) {
      Search s = search(key);
      if (s.l->key != key) return false;
      if (state_of(s.gpupdate) != kClean) {
        help(ctx, s.gpupdate);
        continue;
      }
      if (state_of(s.pupdate) != kClean) {
        help(ctx, s.pupdate);
        continue;
      }
      Info* op = P::template make<Info>();
      op->is_insert = false;
      op->gp = s.gp;
      op->p = s.p;
      op->l = s.l;
      op->pupdate = s.pupdate;
      std::uintptr_t expect = s.gpupdate;
      if (s.gp->update.compare_exchange_strong(expect, pack(op, kDFlag))) {
        retire_displaced(ctx, s.gpupdate);
        if (help_delete(ctx, op)) {
          ctx.epoch.retire(s.p);
          ctx.epoch.retire(s.l);
          return true;
        }
        continue;  // backtracked; op stays reachable via gp's old update
      }
      P::template destroy<Info>(op);
      help(ctx, expect);
    }
  }

  // -- PTO1: whole operation in a transaction (paper §4.4) ---------------------

  /// Take the per-thread shell triple (allocating on first use).
  void take_shells(ThreadCtx& ctx, std::int64_t key, Node*& leaf,
                   Node*& sibling, Node*& internal) {
    leaf = ctx.spare_leaf != nullptr ? ctx.spare_leaf : make_leaf(key);
    leaf->key = key;
    sibling = ctx.spare_sibling != nullptr ? ctx.spare_sibling : make_leaf(0);
    internal = ctx.spare_internal != nullptr
                   ? ctx.spare_internal
                   : make_internal(0, nullptr, nullptr);
    ctx.spare_leaf = ctx.spare_sibling = ctx.spare_internal = nullptr;
  }

  void stash_shells(ThreadCtx& ctx, Node* leaf, Node* sibling,
                    Node* internal) {
    ctx.spare_leaf = leaf;
    ctx.spare_sibling = sibling;
    ctx.spare_internal = internal;
  }

  template <class Slow>
  bool insert_pto1(ThreadCtx& ctx, std::int64_t key, Slow&& slow) {
    // Node shells come from the thread cache, filled inside the transaction
    // (keys depend on the search); the Info descriptor is gone entirely.
    Node* new_leaf;
    Node* sibling;
    Node* internal;
    take_shells(ctx, key, new_leaf, sibling, internal);
    Node* replaced = nullptr;
    std::uintptr_t displaced = 0;
    // 1 = inserted, 2 = key already present, 0 = fell back.
    int r = prefix<P>(
        pto1_policy_,
        [&]() -> int {
          Node* p = nullptr;
          Node* l = root_;
          // pto-lint: bounded(tree height; leaf reached in <= depth steps)
          while (!l->leaf) {
            p = l;
            l = (key < p->key ? p->left : p->right)
                    .load(std::memory_order_relaxed);
          }
          if (l->key == key) return 2;
          std::uintptr_t pu = p->update.load(std::memory_order_relaxed);
          if (state_of(pu) != kClean) {
            P::template tx_abort<TX_CODE_HELPING>();
          }
          sibling->key = l->key;
          if (key < l->key) {
            internal->key = l->key;
            internal->left.store(new_leaf, std::memory_order_relaxed);
            internal->right.store(sibling, std::memory_order_relaxed);
          } else {
            internal->key = key;
            internal->left.store(sibling, std::memory_order_relaxed);
            internal->right.store(new_leaf, std::memory_order_relaxed);
          }
          // Shared-location stores keep their original seq_cst order; the
          // fences are subsumed by the transaction (charged only in the
          // Fig 5(c) ablation).
          (key < p->key ? p->left : p->right).store(internal);
          // Invalidate stale flag/mark CASes on p (see kPtoCleanBit).
          p->update.store(fresh_clean_word());
          displaced = pu;
          replaced = l;
          return 1;
        },
        [&]() -> int { return 0; }, {&ctx.pto1_stats, PTO_TELEMETRY_SITE("bst.insert.pto1")});
    if (r == 1) {
      retire_displaced(ctx, displaced);
      ctx.epoch.retire(replaced);
      return true;
    }
    stash_shells(ctx, new_leaf, sibling, internal);
    if (r == 2) return false;  // key present (decided inside the transaction)
    return slow();
  }

  template <class Slow>
  bool remove_pto1(ThreadCtx& ctx, std::int64_t key, Slow&& slow) {
    Node* removed_p = nullptr;
    Node* removed_l = nullptr;
    std::uintptr_t displaced_gp = 0, displaced_p = 0;
    // 1 = removed, 2 = key absent, 0 = fell back.
    int r = prefix<P>(
        pto1_policy_,
        [&]() -> int {
          Node* gp = nullptr;
          Node* p = nullptr;
          Node* l = root_;
          // pto-lint: bounded(tree height; leaf reached in <= depth steps)
          while (!l->leaf) {
            gp = p;
            p = l;
            l = (key < p->key ? p->left : p->right)
                    .load(std::memory_order_relaxed);
          }
          if (l->key != key) return 2;
          std::uintptr_t gpu = gp->update.load(std::memory_order_relaxed);
          std::uintptr_t pu = p->update.load(std::memory_order_relaxed);
          if (state_of(gpu) != kClean || state_of(pu) != kClean) {
            P::template tx_abort<TX_CODE_HELPING>();
          }
          Node* pl = p->left.load(std::memory_order_relaxed);
          Node* other =
              (pl == l) ? p->right.load(std::memory_order_relaxed) : pl;
          (p->key < gp->key ? gp->left : gp->right).store(other);
          // gp's child slot changed: invalidate stale CASes on gp.
          gp->update.store(fresh_clean_word());
          // Permanently poison the removed internal node with the static
          // dummy descriptor so stale fallback CASes on it must fail (§3.2).
          p->update.store(pack(&dummy_, kMark));
          displaced_gp = gpu;
          displaced_p = pu;
          removed_p = p;
          removed_l = l;
          return 1;
        },
        [&]() -> int { return 0; }, {&ctx.pto1_stats, PTO_TELEMETRY_SITE("bst.remove.pto1")});
    if (r == 1) {
      retire_displaced(ctx, displaced_gp);
      retire_displaced(ctx, displaced_p);
      ctx.epoch.retire(removed_p);
      ctx.epoch.retire(removed_l);
      return true;
    }
    if (r == 2) return false;
    return slow();
  }

  // -- PTO2: transactional update phase after a plain search (paper §4.4) ------

  bool insert_pto2(ThreadCtx& ctx, std::int64_t key, PrefixPolicy pol) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* new_leaf = nullptr;
    Node* sibling = nullptr;
    Node* internal = nullptr;
    for (int a = 0; a < pol.attempts; ++a) {
      Search s = search(key);
      if (s.l->key == key) {
        if (new_leaf != nullptr) stash_shells(ctx, new_leaf, sibling, internal);
        return false;
      }
      if (state_of(s.pupdate) != kClean) {
        help(ctx, s.pupdate);
        continue;
      }
      if (new_leaf == nullptr) {
        take_shells(ctx, key, new_leaf, sibling, internal);
      }
      int r = prefix<P>(
          1,
          [&]() -> int {
            if (s.p->update.load(std::memory_order_relaxed) != s.pupdate) {
              P::template tx_abort<TX_CODE_VALIDATION>();
            }
            auto& slot = key < s.p->key ? s.p->left : s.p->right;
            if (slot.load(std::memory_order_relaxed) != s.l) {
              P::template tx_abort<TX_CODE_VALIDATION>();
            }
            sibling->key = s.l->key;
            if (key < s.l->key) {
              internal->key = s.l->key;
              internal->left.store(new_leaf, std::memory_order_relaxed);
              internal->right.store(sibling, std::memory_order_relaxed);
            } else {
              internal->key = key;
              internal->left.store(sibling, std::memory_order_relaxed);
              internal->right.store(new_leaf, std::memory_order_relaxed);
            }
            slot.store(internal);
            // p's child slot changed: invalidate stale CASes on p.
            s.p->update.store(fresh_clean_word());
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.pto2_stats, PTO_TELEMETRY_SITE("bst.insert.pto2")});
      if (r == 1) {
        retire_displaced(ctx, s.pupdate);
        ctx.epoch.retire(s.l);
        return true;
      }
    }
    if (new_leaf != nullptr) stash_shells(ctx, new_leaf, sibling, internal);
    return insert_lf(ctx, key);
  }

  bool remove_pto2(ThreadCtx& ctx, std::int64_t key, PrefixPolicy pol) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    for (int a = 0; a < pol.attempts; ++a) {
      Search s = search(key);
      if (s.l->key != key) return false;
      if (state_of(s.gpupdate) != kClean) {
        help(ctx, s.gpupdate);
        continue;
      }
      if (state_of(s.pupdate) != kClean) {
        help(ctx, s.pupdate);
        continue;
      }
      int r = prefix<P>(
          1,
          [&]() -> int {
            if (s.gp->update.load(std::memory_order_relaxed) != s.gpupdate ||
                s.p->update.load(std::memory_order_relaxed) != s.pupdate) {
              P::template tx_abort<TX_CODE_VALIDATION>();
            }
            auto& gslot = s.p->key < s.gp->key ? s.gp->left : s.gp->right;
            if (gslot.load(std::memory_order_relaxed) != s.p) {
              P::template tx_abort<TX_CODE_VALIDATION>();
            }
            auto& pslot = key < s.p->key ? s.p->left : s.p->right;
            if (pslot.load(std::memory_order_relaxed) != s.l) {
              P::template tx_abort<TX_CODE_VALIDATION>();
            }
            Node* pl = s.p->left.load(std::memory_order_relaxed);
            Node* other =
                (pl == s.l) ? s.p->right.load(std::memory_order_relaxed) : pl;
            gslot.store(other);
            // gp's child slot changed: invalidate stale CASes on gp.
            s.gp->update.store(fresh_clean_word());
            s.p->update.store(pack(&dummy_, kMark));
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.pto2_stats, PTO_TELEMETRY_SITE("bst.remove.pto2")});
      if (r == 1) {
        retire_displaced(ctx, s.gpupdate);
        retire_displaced(ctx, s.pupdate);
        ctx.epoch.retire(s.p);
        ctx.epoch.retire(s.l);
        return true;
      }
    }
    return remove_lf(ctx, key);
  }

  bool check_rec(Node* n, std::int64_t lo, std::int64_t hi,
                 std::int64_t& last) {
    if (n->leaf) {
      if (n->key < lo || n->key > hi) return false;
      if (n->key != kInf1 && n->key != kInf2) {
        if (n->key <= last) return false;
        last = n->key;
      }
      return true;
    }
    if (state_of(n->update.load(std::memory_order_relaxed)) == kMark) {
      return false;  // a marked node must be unreachable at quiescence
    }
    return check_rec(n->left.load(std::memory_order_relaxed), lo,
                     n->key, last) &&
           check_rec(n->right.load(std::memory_order_relaxed), n->key, hi,
                     last);
  }

  std::size_t count_user_leaves(Node* n) {
    if (n->leaf) return (n->key < kInf1) ? 1u : 0u;
    return count_user_leaves(n->left.load(std::memory_order_relaxed)) +
           count_user_leaves(n->right.load(std::memory_order_relaxed));
  }

  EpochDomain<P> dom_;
  Node* root_;
  PrefixPolicy pto1_policy_ = kPto1Policy;
  PrefixPolicy pto2_policy_ = kPto2Policy;
  Info dummy_{};  ///< shared sentinel descriptor for PTO removals (§3.2)
};

}  // namespace pto
