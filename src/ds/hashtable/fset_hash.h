// Dynamic-sized nonblocking hash table in the style of Liu, Zhang & Spear
// ("Dynamic-Sized Nonblocking Hash Tables", PODC 2014): each bucket holds a
// freezable set — an array updated by copy-on-write — and resizing freezes
// the old buckets and splits them lazily into a table of twice the size
// (growth only in this implementation; see DESIGN.md §3).
//
// Variants (paper §3.3, §4.5, Fig 4):
//   kLockfree    CoW updates (alloc + copy + CAS), wait-free lookups.
//   kPto         the same CoW algorithm accelerated with prefix
//                transactions: lookups run in a transaction that elides the
//                epoch guard entirely ("all interaction with the epoch-based
//                reclaimer can be elided"); updates gain little — the CoW
//                allocation dominates, as the paper observes.
//   kPtoInplace  the algorithm-specific optimization: updates speculatively
//                mutate the bucket array in place inside a transaction and
//                bump a counter packed into the bucket word; non-
//                transactional lookups are degraded from wait-free to
//                lock-free by double-checking the bucket word (paper §5,
//                "Progress vs. Optimization Trade-off"). Fallback is CoW.
//
// kPtoInplace must not run concurrently with kLockfree/kPto *lookups* on the
// same instance (those skip the double-check); mixing the update paths is
// safe, and kPtoInplace's own fallback is exactly the CoW path.
//
// Bucket word layout: [counter:15 | pointer:48 | frozen:1]. The counter
// makes in-place mutations visible to optimistic readers; the frozen bit
// makes a bucket immutable during migration.
#pragma once

#include <cstdint>
#include <new>

#include "core/prefix.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"
#include "telemetry/registry.h"

namespace pto {

template <class P>
class FSetHash {
 public:
  enum class Mode { kLockfree, kPto, kPtoInplace };

  static constexpr unsigned kBucketThreshold = 8;  ///< resize trigger
  static constexpr unsigned kInitialBuckets = 16;
  static constexpr PrefixPolicy kDefaultPolicy{4};

  struct ThreadCtx {
    explicit ThreadCtx(FSetHash& h) : epoch(h.dom_.register_thread()) {}
    typename EpochDomain<P>::Handle epoch;
    PrefixStats lookup_stats, update_stats;
  };

  FSetHash() { head_.init(make_table(kInitialBuckets, nullptr)); }

  ~FSetHash() {
    Table* t = head_.load(std::memory_order_relaxed);
    while (t != nullptr) {
      Table* pred = t->pred.load(std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < t->len; ++i) {
        std::uint64_t w = t->buckets()[i].load(std::memory_order_relaxed);
        if (node_of(w) != nullptr) destroy_node(node_of(w), nullptr);
      }
      destroy_table(t, nullptr);
      t = pred;
    }
  }

  FSetHash(const FSetHash&) = delete;
  FSetHash& operator=(const FSetHash&) = delete;

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  // -- lookups -----------------------------------------------------------------

  bool contains(ThreadCtx& ctx, std::int64_t key, Mode mode = Mode::kLockfree) {
    switch (mode) {
      case Mode::kLockfree: {
        // Wait-free: one bucket read, immutable CoW arrays.
        typename EpochDomain<P>::Guard g(ctx.epoch);
        return lookup_once(key);
      }
      case Mode::kPto:
      case Mode::kPtoInplace: {
        if (!P::strongly_atomic()) {
          typename EpochDomain<P>::Guard g(ctx.epoch);
          return lookup_double_check(key);
        }
        // The transaction subsumes the epoch guard, the reclaimer fences,
        // and (for in-place mode) the double-check.
        return prefix<P>(
            kDefaultPolicy, [&]() -> bool { return lookup_once(key); },
            [&]() -> bool {
              typename EpochDomain<P>::Guard g(ctx.epoch);
              return lookup_double_check(key);
            },
            {&ctx.lookup_stats, PTO_TELEMETRY_SITE("hash.lookup")});
      }
    }
    return false;
  }

  // -- updates -----------------------------------------------------------------

  bool insert(ThreadCtx& ctx, std::int64_t key, Mode mode = Mode::kLockfree) {
    return update(ctx, key, true, mode);
  }
  bool remove(ThreadCtx& ctx, std::int64_t key, Mode mode = Mode::kLockfree) {
    return update(ctx, key, false, mode);
  }

  bool update(ThreadCtx& ctx, std::int64_t key, bool is_insert, Mode mode) {
    switch (mode) {
      case Mode::kLockfree: {
        typename EpochDomain<P>::Guard g(ctx.epoch);
        return update_cow(ctx, key, is_insert, /*use_tx=*/false, nullptr);
      }
      case Mode::kPto: {
        typename EpochDomain<P>::Guard g(ctx.epoch);
        return update_cow(ctx, key, is_insert, /*use_tx=*/true,
                          &ctx.update_stats);
      }
      case Mode::kPtoInplace:
        // The transactional attempts need no epoch guard under strong
        // atomicity (a racing free aborts the transaction); the fallback
        // takes its own guard. SoftHTM lacks that property, so guard the
        // whole operation there.
        if (!P::strongly_atomic()) {
          typename EpochDomain<P>::Guard g(ctx.epoch);
          return update_inplace(ctx, key, is_insert);
        }
        return update_inplace(ctx, key, is_insert);
    }
    return false;
  }

  /// Quiescent checks: no frozen buckets reachable from the head table, no
  /// duplicate keys, every key hashed to its bucket.
  bool check_invariants() {
    Table* t = head_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < t->len; ++i) {
      std::uint64_t w = bucket_or_pred(t, i);
      FSetNode* n = node_of(w);
      if (n == nullptr) continue;
      std::uint32_t sz = n->size.load(std::memory_order_relaxed);
      if (sz > n->cap) return false;
      for (std::uint32_t a = 0; a < sz; ++a) {
        std::int64_t k = n->keys()[a].load(std::memory_order_relaxed);
        if ((hash(k) & (t->len - 1)) != i) return false;
        for (std::uint32_t b = a + 1; b < sz; ++b) {
          if (n->keys()[b].load(std::memory_order_relaxed) == k) return false;
        }
      }
    }
    return true;
  }

  std::size_t size_slow() {
    Table* t = head_.load(std::memory_order_relaxed);
    std::size_t total = 0;
    for (std::uint32_t i = 0; i < t->len; ++i) {
      FSetNode* n = node_of(bucket_or_pred(t, i));
      if (n != nullptr) total += n->size.load(std::memory_order_relaxed);
    }
    return total;
  }

  std::uint32_t table_len() {
    return head_.load(std::memory_order_relaxed)->len;
  }

 private:
  // -- representation ----------------------------------------------------------

  static constexpr std::uint64_t kFrozen = 1;
  static constexpr std::uint64_t kPtrMask = 0x0000FFFFFFFFFFFEull;
  static constexpr unsigned kCtrShift = 48;

  struct FSetNode {
    Atom<P, std::uint32_t> size;
    std::uint32_t cap;
    Atom<P, std::int64_t>* keys() {
      return reinterpret_cast<Atom<P, std::int64_t>*>(this + 1);
    }
    static std::size_t bytes(std::uint32_t cap) {
      return sizeof(FSetNode) + cap * sizeof(Atom<P, std::int64_t>);
    }
  };

  struct Table {
    std::uint32_t len;
    Atom<P, Table*> pred;
    Atom<P, std::uint64_t>* buckets() {
      return reinterpret_cast<Atom<P, std::uint64_t>*>(this + 1);
    }
    static std::size_t bytes(std::uint32_t len) {
      return sizeof(Table) + len * sizeof(Atom<P, std::uint64_t>);
    }
  };

  static FSetNode* node_of(std::uint64_t w) {
    return reinterpret_cast<FSetNode*>(w & kPtrMask);
  }
  static bool is_frozen(std::uint64_t w) { return (w & kFrozen) != 0; }
  static std::uint64_t pack(FSetNode* n, std::uint64_t ctr) {
    return (reinterpret_cast<std::uint64_t>(n) & kPtrMask) |
           (ctr << kCtrShift);
  }
  static std::uint64_t ctr_of(std::uint64_t w) { return w >> kCtrShift; }
  static std::uint64_t bump(std::uint64_t w) {
    return pack(node_of(w), (ctr_of(w) + 1) & 0x7FFF);
  }

  static std::uint64_t hash(std::int64_t k) {
    auto z = static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    return z ^ (z >> 31);
  }

  FSetNode* make_node(std::uint32_t cap) {
    void* p = P::alloc_bytes(FSetNode::bytes(cap));
    auto* n = ::new (p) FSetNode();
    n->size.init(0);
    n->cap = cap;
    for (std::uint32_t i = 0; i < cap; ++i) {
      ::new (&n->keys()[i]) Atom<P, std::int64_t>();
    }
    return n;
  }

  static void destroy_node(void* p, void*) {
    auto* n = static_cast<FSetNode*>(p);
    P::free_bytes(n, FSetNode::bytes(n->cap));
  }

  Table* make_table(std::uint32_t len, Table* pred) {
    void* p = P::alloc_bytes(Table::bytes(len));
    auto* t = ::new (p) Table();
    t->len = len;
    t->pred.init(pred);
    for (std::uint32_t i = 0; i < len; ++i) {
      ::new (&t->buckets()[i]) Atom<P, std::uint64_t>();
      t->buckets()[i].init(0);
    }
    return t;
  }

  static void destroy_table(void* p, void*) {
    auto* t = static_cast<Table*>(p);
    P::free_bytes(t, Table::bytes(t->len));
  }

  // -- bucket management -------------------------------------------------------

  /// Current bucket word, or the (frozen) predecessor's if not yet migrated.
  /// Read-only: never initializes a bucket (used by wait-free lookups).
  std::uint64_t bucket_or_pred(Table* t, std::uint32_t i) {
    std::uint64_t w = t->buckets()[i].load();
    if (w != 0) return w;
    Table* p = t->pred.load();
    // pto-lint: bounded(pred chain; migration unlinks tables, so the chain
    // only ever holds the constant number of unmigrated predecessors)
    while (p != nullptr) {
      std::uint64_t wp = p->buckets()[i & (p->len - 1)].load();
      if (wp != 0) return wp;
      p = p->pred.load();
    }
    return 0;
  }

  /// Freeze the bucket (makes its node immutable) and return the word.
  std::uint64_t freeze_bucket(Table* t, std::uint32_t i) {
    for (;;) {
      std::uint64_t w = t->buckets()[i].load();
      if (is_frozen(w)) return w;
      std::uint64_t expect = w;
      if (t->buckets()[i].compare_exchange_strong(expect, w | kFrozen)) {
        return w | kFrozen;
      }
    }
  }

  /// Initialize bucket i of t from its predecessor; returns a non-zero word.
  std::uint64_t ensure_bucket(ThreadCtx& ctx, Table* t, std::uint32_t i) {
    std::uint64_t w = t->buckets()[i].load();
    if (w != 0) return w;
    Table* p = t->pred.load();
    FSetNode* nn;
    if (p == nullptr) {
      nn = make_node(4);
    } else {
      std::uint32_t j = i & (p->len - 1);
      ensure_bucket(ctx, p, j);  // chains resolve depth-first
      std::uint64_t wp = freeze_bucket(p, j);
      FSetNode* src = node_of(wp);
      std::uint32_t sz =
          src == nullptr ? 0 : src->size.load(std::memory_order_relaxed);
      nn = make_node(sz + 4);
      std::uint32_t out = 0;
      for (std::uint32_t a = 0; a < sz; ++a) {
        std::int64_t k = src->keys()[a].load(std::memory_order_relaxed);
        if ((hash(k) & (t->len - 1)) == i) {
          nn->keys()[out++].store(k, std::memory_order_relaxed);
        }
      }
      nn->size.store(out, std::memory_order_relaxed);
    }
    std::uint64_t expect = 0;
    std::uint64_t neww = pack(nn, 0);
    if (t->buckets()[i].compare_exchange_strong(expect, neww)) {
      return neww;
    }
    destroy_node(nn, nullptr);  // never published
    return t->buckets()[i].load();
  }

  /// Install a doubled table and migrate everything, then retire the old one.
  void resize(ThreadCtx& ctx, Table* t) {
    if (head_.load() != t) return;
    Table* nt = make_table(t->len * 2, t);
    Table* expect = t;
    if (!head_.compare_exchange_strong(expect, nt)) {
      destroy_table(nt, nullptr);
      return;
    }
    for (std::uint32_t i = 0; i < nt->len; ++i) ensure_bucket(ctx, nt, i);
    // Every bucket of nt is populated; nobody needs t anymore.
    nt->pred.store(nullptr);
    for (std::uint32_t j = 0; j < t->len; ++j) {
      FSetNode* old = node_of(t->buckets()[j].load());
      if (old != nullptr) ctx.epoch.retire_custom(old, &destroy_node, nullptr);
    }
    ctx.epoch.retire_custom(t, &destroy_table, nullptr);
  }

  // -- lookups -----------------------------------------------------------------

  bool node_contains(FSetNode* n, std::int64_t key) {
    if (n == nullptr) return false;
    std::uint32_t sz = n->size.load(std::memory_order_relaxed);
    if (sz > n->cap) return false;  // torn optimistic read; caller re-checks
    for (std::uint32_t a = 0; a < sz; ++a) {
      if (n->keys()[a].load(std::memory_order_relaxed) == key) return true;
    }
    return false;
  }

  bool lookup_once(std::int64_t key) {
    Table* t = head_.load(std::memory_order_relaxed);
    std::uint64_t w = bucket_or_pred(t, static_cast<std::uint32_t>(
                                            hash(key) & (t->len - 1)));
    return node_contains(node_of(w), key);
  }

  /// Lock-free lookup for in-place mode: re-read the bucket word to detect
  /// a concurrent transactional mutation (counter bump) — paper §3.3.
  bool lookup_double_check(std::int64_t key) {
    for (;;) {
      Table* t = head_.load();
      auto i = static_cast<std::uint32_t>(hash(key) & (t->len - 1));
      std::uint64_t w = bucket_or_pred(t, i);
      bool found = node_contains(node_of(w), key);
      if (bucket_or_pred(t, i) == w &&
          head_.load(std::memory_order_relaxed) == t) {
        return found;
      }
      P::pause();
    }
  }

  // -- updates -----------------------------------------------------------------

  bool update_cow(ThreadCtx& ctx, std::int64_t key, bool is_insert,
                  bool use_tx, PrefixStats* st) {
    for (;;) {
      Table* t = head_.load();
      auto i = static_cast<std::uint32_t>(hash(key) & (t->len - 1));
      std::uint64_t w = ensure_bucket(ctx, t, i);
      if (is_frozen(w)) {
        // A resize is migrating this table; chase the new head.
        P::pause();
        continue;
      }
      FSetNode* n = node_of(w);
      std::uint32_t sz = n->size.load(std::memory_order_relaxed);
      bool present = node_contains(n, key);
      if (is_insert && present) return false;
      if (!is_insert && !present) return false;

      // Build the updated copy (the allocation the paper §4.5 blames for
      // CoW's cost).
      FSetNode* nn = make_node((is_insert ? sz + 1 : sz) + 4);
      std::uint32_t out = 0;
      for (std::uint32_t a = 0; a < sz; ++a) {
        std::int64_t k = n->keys()[a].load(std::memory_order_relaxed);
        if (!is_insert && k == key) continue;
        nn->keys()[out++].store(k, std::memory_order_relaxed);
      }
      if (is_insert) nn->keys()[out++].store(key, std::memory_order_relaxed);
      nn->size.store(out, std::memory_order_relaxed);
      std::uint64_t neww = pack(nn, ctr_of(w) + 1);

      bool swapped;
      if (use_tx) {
        // PTO: the CAS becomes a validated load + store in a transaction
        // (little gain — the copy above dominates, as the paper reports).
        swapped = prefix<P>(
            kDefaultPolicy,
            [&]() -> bool {
              if (t->buckets()[i].load(std::memory_order_relaxed) != w) {
                P::template tx_abort<TX_CODE_VALIDATION>();
              }
              t->buckets()[i].store(neww, std::memory_order_relaxed);
              return true;
            },
            [&]() -> bool {
              std::uint64_t expect = w;
              bool ok =
                  t->buckets()[i].compare_exchange_strong(expect, neww);
              return ok;
            },
            {st, PTO_TELEMETRY_SITE("hash.update.cow")});
      } else {
        std::uint64_t expect = w;
        swapped = t->buckets()[i].compare_exchange_strong(expect, neww);
      }
      if (!swapped) {
        destroy_node(nn, nullptr);
        continue;
      }
      ctx.epoch.retire_custom(n, &destroy_node, nullptr);
      if (is_insert && out >= kBucketThreshold) resize(ctx, t);
      return true;
    }
  }

  bool update_inplace(ThreadCtx& ctx, std::int64_t key, bool is_insert) {
    auto i_hash = hash(key);
    for (int a = 0; a < kDefaultPolicy.attempts; ++a) {
      bool want_resize = false;
      Table* seen_table = nullptr;
      // 1 = done, 2 = no-op (present/absent), 0 = fall back to CoW.
      int r = prefix<P>(
          1,
          [&]() -> int {
            Table* t = head_.load(std::memory_order_relaxed);
            auto i = static_cast<std::uint32_t>(i_hash & (t->len - 1));
            std::uint64_t w =
                t->buckets()[i].load(std::memory_order_relaxed);
            if (w == 0 || is_frozen(w)) {
              P::template tx_abort<TX_CODE_HELPING>();
            }
            FSetNode* n = node_of(w);
            std::uint32_t sz = n->size.load(std::memory_order_relaxed);
            std::uint32_t pos = sz;
            for (std::uint32_t x = 0; x < sz; ++x) {
              if (n->keys()[x].load(std::memory_order_relaxed) == key) {
                pos = x;
                break;
              }
            }
            if (is_insert) {
              if (pos != sz) return 2;  // already present
              if (sz == n->cap) {
                P::template tx_abort<TX_CODE_POLICY>();  // needs CoW growth
              }
              n->keys()[sz].store(key, std::memory_order_relaxed);
              n->size.store(sz + 1, std::memory_order_relaxed);
              if (sz + 1 >= kBucketThreshold) {
                want_resize = true;
                seen_table = t;
              }
            } else {
              if (pos == sz) return 2;  // absent
              n->keys()[pos].store(
                  n->keys()[sz - 1].load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
              n->size.store(sz - 1, std::memory_order_relaxed);
            }
            // Bump the counter so optimistic readers revalidate (§3.3).
            t->buckets()[i].store(bump(w), std::memory_order_relaxed);
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.update_stats, PTO_TELEMETRY_SITE("hash.update.inplace")});
      if (r == 1) {
        if (want_resize) {
          typename EpochDomain<P>::Guard g(ctx.epoch);
          resize(ctx, seen_table);
        }
        return true;
      }
      if (r == 2) return false;
    }
    // Original CoW algorithm as the fallback.
    typename EpochDomain<P>::Guard g(ctx.epoch);
    return update_cow(ctx, key, is_insert, /*use_tx=*/false, nullptr);
  }

  EpochDomain<P> dom_;
  Atom<P, Table*> head_;
};

}  // namespace pto
