// Mindicator: a static tree that maintains the minimum of the values
// announced by a set of threads (Liu, Luchangco & Spear, "Mindicators: A
// Scalable Approach to Quiescence", ICDCS 2013). Threads `arrive` with a
// value and later `depart`; `query` returns the minimum announced value (or
// kEmpty). Used by the paper as the simplest PTO case study (§3.1, Fig 2a).
//
// This implementation is a re-derivation of the SOSI structure rather than a
// line-by-line port (DESIGN.md §3): each node is a single 64-bit word packing
// a 32-bit version counter with a 32-bit value, and every operation makes two
// passes over its leaf-to-root path:
//
//   ascent  ("marking"):   versioned CAS installs the new per-node minimum,
//                          bumping the counter, up to the first node whose
//                          value is unaffected (which is still counter-bumped
//                          so racing recomputations observe the visit);
//   descent ("unmarking"): a second counter bump per visited node, walking
//                          back down to the leaf.
//
// Every visited node therefore costs two CASes (plus a double-checked
// child-pair read during depart's recomputation). This mirrors the original
// algorithm's mark/unmark increments and is exactly the redundancy PTO
// removes (paper §3.1): the PTO operation makes ONE pass, writes each node
// once with the counter advanced by two, and needs no double-checking — the
// transaction guarantees a consistent view.
//
// Variants:
//   *_lf   the lock-free baseline;
//   *_pto  prefix transaction (3 attempts, the paper's tuned value), falling
//          back to *_lf;
//   *_tle  transactional lock elision over the *sequential* tree (global
//          spinlock fallback) — the comparison baseline in Fig 2(a).
//
// The tree is static: no allocation, no reclamation (paper: "the tree is
// static and hence there is no memory allocation").
#pragma once

#include <cstdint>
#include <new>

#include "common/defs.h"
#include "core/prefix.h"
#include "platform/platform.h"
#include "telemetry/registry.h"

namespace pto {

template <class P>
class Mindicator {
 public:
  static constexpr std::int32_t kEmpty = INT32_MAX;
  static constexpr PrefixPolicy kDefaultPolicy{3};  // paper §3.1: 3 retries

  /// `leaves` must be a power of two >= 2. Thread t uses leaf (t % leaves).
  explicit Mindicator(unsigned leaves = 64) : leaves_(leaves) {
    assert(leaves >= 2 && (leaves & (leaves - 1)) == 0);
    nodes_ = static_cast<PaddedWord*>(
        P::alloc_bytes(sizeof(PaddedWord) * 2 * leaves_));
    for (unsigned i = 0; i < 2 * leaves_; ++i) {
      ::new (&nodes_[i]) PaddedWord();
      node(i).init(pack(0, kEmpty));
    }
    lock_.init(0);
  }

  ~Mindicator() {
    for (unsigned i = 0; i < 2 * leaves_; ++i) nodes_[i].~PaddedWord();
    P::free_bytes(nodes_, sizeof(PaddedWord) * 2 * leaves_);
  }

  Mindicator(const Mindicator&) = delete;
  Mindicator& operator=(const Mindicator&) = delete;

  unsigned leaves() const { return leaves_; }

  /// Minimum currently-announced value, kEmpty if none. Wait-free: one load.
  std::int32_t query() const { return val(node(1).load()); }

  // -- lock-free baseline ---------------------------------------------------

  void arrive_lf(unsigned leaf, std::int32_t v) {
    assert(v < kEmpty);
    unsigned i = leaf_index(leaf);
    set_word(i, v);
    unsigned top = ascend_lf(i, v);
    descend_lf(top, i);
  }

  void depart_lf(unsigned leaf) {
    unsigned i = leaf_index(leaf);
    set_word(i, kEmpty);
    unsigned top = ascend_recompute_lf(i);
    descend_lf(top, i);
  }

  // -- PTO (paper §3.1) -----------------------------------------------------

  void arrive_pto(unsigned leaf, std::int32_t v, PrefixStats* st = nullptr,
                  PrefixPolicy pol = kDefaultPolicy) {
    assert(v < kEmpty);
    prefix<P>(
        pol,
        [&] {
          // One pass, one plain store per node, counter advanced by the two
          // increments at once, no downward traversal (paper §3.1).
          unsigned i = leaf_index(leaf);
          std::uint64_t w = node(i).load(std::memory_order_relaxed);
          node(i).store(pack(ctr(w) + 2, v), std::memory_order_relaxed);
          // pto-lint: bounded(log2 leaves; i halves every iteration)
          while (i > 1) {
            i >>= 1;
            w = node(i).load(std::memory_order_relaxed);
            std::int32_t nv = v < val(w) ? v : val(w);
            node(i).store(pack(ctr(w) + 2, nv), std::memory_order_relaxed);
            if (nv == val(w)) break;
          }
        },
        [&] { arrive_lf(leaf, v); }, {st, PTO_TELEMETRY_SITE("mindicator.arrive")});
  }

  void depart_pto(unsigned leaf, PrefixStats* st = nullptr,
                  PrefixPolicy pol = kDefaultPolicy) {
    prefix<P>(
        pol,
        [&] {
          unsigned i = leaf_index(leaf);
          std::uint64_t w = node(i).load(std::memory_order_relaxed);
          node(i).store(pack(ctr(w) + 2, kEmpty),
                          std::memory_order_relaxed);
          // pto-lint: bounded(log2 leaves; i halves every iteration)
          while (i > 1) {
            i >>= 1;
            // Children read once each: the transaction makes the pair
            // consistent without double-checking.
            std::int32_t l =
                val(node(2 * i).load(std::memory_order_relaxed));
            std::int32_t r =
                val(node(2 * i + 1).load(std::memory_order_relaxed));
            std::int32_t m = l < r ? l : r;
            w = node(i).load(std::memory_order_relaxed);
            node(i).store(pack(ctr(w) + 2, m), std::memory_order_relaxed);
            if (m == val(w)) break;
          }
        },
        [&] { depart_lf(leaf); }, {st, PTO_TELEMETRY_SITE("mindicator.depart")});
  }

  // -- TLE baseline (Fig 2a) ------------------------------------------------

  void arrive_tle(unsigned leaf, std::int32_t v, PrefixStats* st = nullptr,
                  PrefixPolicy pol = kDefaultPolicy) {
    run_tle([&] { sequential_arrive(leaf, v); }, st, pol);
  }

  void depart_tle(unsigned leaf, PrefixStats* st = nullptr,
                  PrefixPolicy pol = kDefaultPolicy) {
    run_tle([&] { sequential_depart(leaf); }, st, pol);
  }

  /// Quiescent invariant: every internal node's value equals the minimum of
  /// its children. Call only when no operations are in flight.
  bool check_invariants() const {
    for (unsigned i = 1; i < leaves_; ++i) {
      std::int32_t l = val(node(2 * i).load());
      std::int32_t r = val(node(2 * i + 1).load());
      if (val(node(i).load()) != (l < r ? l : r)) return false;
    }
    return true;
  }

 private:
  using Word = Atom<P, std::uint64_t>;
  /// One tree node per cache line: sibling nodes would otherwise share a
  /// line and turn into false-sharing transaction aborts under HTM (the
  /// original Mindicator's multi-field nodes are naturally line-sized).
  struct alignas(kCacheLine) PaddedWord {
    Word w;
  };
  Word& node(unsigned i) const { return nodes_[i].w; }

  static std::uint64_t pack(std::uint32_t c, std::int32_t v) {
    return (std::uint64_t{c} << 32) |
           static_cast<std::uint32_t>(v);
  }
  static std::uint32_t ctr(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 32);
  }
  static std::int32_t val(std::uint64_t w) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(w));
  }

  unsigned leaf_index(unsigned leaf) const {
    return leaves_ + (leaf & (leaves_ - 1));
  }

  /// Versioned overwrite of a leaf word (CAS loop; leaf may be shared when
  /// threads outnumber leaves).
  void set_word(unsigned i, std::int32_t v) {
    std::uint64_t w = node(i).load();
    for (;;) {
      if (node(i).compare_exchange_strong(w, pack(ctr(w) + 1, v))) return;
    }
  }

  /// Marking ascent for arrive: install min(value, v) with a counter bump at
  /// every visited node, stopping after the first node whose value is
  /// unchanged (its counter is still bumped so concurrent recomputations
  /// observe the visit — see the race discussion in tests). Returns the top
  /// visited index.
  unsigned ascend_lf(unsigned i, std::int32_t v) {
    while (i > 1) {
      i >>= 1;
      std::uint64_t w = node(i).load();
      for (;;) {
        std::int32_t nv = v < val(w) ? v : val(w);
        if (node(i).compare_exchange_strong(w, pack(ctr(w) + 1, nv))) {
          if (nv == val(w)) return i;  // value unchanged: ancestors unaffected
          break;
        }
      }
    }
    return 1;
  }

  /// Recomputation ascent for depart: each node takes min of its children,
  /// read as a double-checked consistent pair, then re-validated after the
  /// install — a child may have changed between the pair read and the CAS,
  /// and without the re-check a stale minimum could overwrite a fresher one
  /// (found by the simulator stress tests). This is precisely the
  /// double-checking redundancy that PTO's transactional snapshot removes
  /// (§2.3).
  unsigned ascend_recompute_lf(unsigned i) {
    while (i > 1) {
      i >>= 1;
      for (;;) {
        std::uint64_t lw = node(2 * i).load();
        std::uint64_t rw = node(2 * i + 1).load();
        if (node(2 * i).load() != lw) continue;  // double-check the pair
        std::int32_t m = val(lw) < val(rw) ? val(lw) : val(rw);
        std::uint64_t w = node(i).load();
        if (!node(i).compare_exchange_strong(w, pack(ctr(w) + 1, m))) {
          continue;
        }
        // Post-install validation: if the children moved meanwhile, redo.
        std::int32_t l2 = val(node(2 * i).load());
        std::int32_t r2 = val(node(2 * i + 1).load());
        if ((l2 < r2 ? l2 : r2) != m) continue;
        if (m == val(w)) return i;
        break;
      }
    }
    return 1;
  }

  /// Unmarking descent: second counter bump on each node of the path from
  /// `top` back to leaf index `i`.
  void descend_lf(unsigned top, unsigned leaf_i) {
    // Recover the path: ancestors of leaf_i from top down to the leaf.
    for (unsigned i = leaf_i; i >= top && i >= 1; i >>= 1) {
      std::uint64_t w = node(i).load();
      while (!node(i).compare_exchange_strong(w, pack(ctr(w) + 1, val(w)))) {
      }
      if (i == top) break;
    }
  }

  void sequential_arrive(unsigned leaf, std::int32_t v) {
    unsigned i = leaf_index(leaf);
    node(i).store(pack(0, v), std::memory_order_relaxed);
    // pto-lint: bounded(log2 leaves; i halves every iteration)
    while (i > 1) {
      i >>= 1;
      std::uint64_t w = node(i).load(std::memory_order_relaxed);
      std::int32_t nv = v < val(w) ? v : val(w);
      if (nv == val(w)) break;
      node(i).store(pack(0, nv), std::memory_order_relaxed);
    }
  }

  void sequential_depart(unsigned leaf) {
    unsigned i = leaf_index(leaf);
    node(i).store(pack(0, kEmpty), std::memory_order_relaxed);
    // pto-lint: bounded(log2 leaves; i halves every iteration)
    while (i > 1) {
      i >>= 1;
      std::int32_t l = val(node(2 * i).load(std::memory_order_relaxed));
      std::int32_t r = val(node(2 * i + 1).load(std::memory_order_relaxed));
      std::int32_t m = l < r ? l : r;
      std::uint64_t w = node(i).load(std::memory_order_relaxed);
      if (m == val(w)) break;
      node(i).store(pack(0, m), std::memory_order_relaxed);
    }
  }

  template <class Fn>
  void run_tle(Fn&& seq, PrefixStats* st, PrefixPolicy pol) {
    prefix<P>(
        pol,
        [&] {
          // Lock subscription: reading the lock puts it in the read set, so
          // a fallback acquisition aborts all concurrent elided sections.
          if (lock_.load(std::memory_order_relaxed) != 0) {
            P::template tx_abort<TX_CODE_VALIDATION>();
          }
          seq();
        },
        [&] {
          std::uint32_t expect = 0;
          while (!lock_.compare_exchange_strong(expect, 1)) {
            expect = 0;
            P::pause();
          }
          seq();
          lock_.store(0, std::memory_order_seq_cst);
        },
        {st, PTO_TELEMETRY_SITE("mindicator.tle")});
  }

  unsigned leaves_;
  PaddedWord* nodes_;  ///< 1-indexed binary tree; leaves at [L, 2L)
  Atom<P, std::uint32_t> lock_;
};

}  // namespace pto
