// Lock-free skiplist set with marked next-pointers (Fraser's design as
// presented by Herlihy & Shavit), plus PTO-accelerated insert/remove
// (paper §3.1 "Skip Lists"): after a non-transactional search, a single
// prefix transaction validates the predecessor links and performs all
// level updates at once, replacing the per-level CAS sequences.
//
// Memory is reclaimed through epoch-based reclamation. A subtle interaction
// (remove retires a node whose upper levels a lagging insert can still link —
// "resurrection") is closed by the inserter's post-link check: if its node
// became marked during linking, it runs one more find() inside its own epoch
// guard to physically unlink every level before the node can be freed.
//
// Keys are int64; head/tail sentinels use the extreme values, so user keys
// must lie strictly in (INT64_MIN, INT64_MAX).
#pragma once

#include <cstdint>
#include <optional>

#include "core/prefix.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"
#include "telemetry/registry.h"

namespace pto {

template <class P>
class SkipList {
 public:
  static constexpr int kMaxLevel = 16;
  static constexpr PrefixPolicy kDefaultPolicy{4};

  struct Node {
    std::int64_t key;
    int toplevel;
    Atom<P, std::uintptr_t> next[kMaxLevel];
  };

  /// Per-thread context: epoch handle plus per-operation PTO statistics.
  struct ThreadCtx {
    explicit ThreadCtx(SkipList& s) : epoch(s.dom_.register_thread()) {}
    typename EpochDomain<P>::Handle epoch;
    PrefixStats ins_stats, rem_stats, pop_stats;
  };

  SkipList() {
    head_ = P::template make<Node>();
    tail_ = P::template make<Node>();
    head_->key = INT64_MIN;
    head_->toplevel = kMaxLevel;
    tail_->key = INT64_MAX;
    tail_->toplevel = kMaxLevel;
    for (int l = 0; l < kMaxLevel; ++l) {
      head_->next[l].init(word(tail_));
      tail_->next[l].init(word(nullptr));
    }
  }

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = ptr(n->next[0].load(std::memory_order_relaxed));
      P::template destroy<Node>(n);
      n = nx;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  // -- wait-free-traversal lookup (shared by all variants) ------------------

  bool contains(ThreadCtx& ctx, std::int64_t key) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* pred = head_;
    Node* curr = nullptr;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      curr = ptr(pred->next[lvl].load());
      for (;;) {
        std::uintptr_t sw = curr->next[lvl].load();
        while (is_marked(sw)) {  // skip logically deleted nodes
          curr = ptr(sw);
          sw = curr->next[lvl].load();
        }
        if (curr->key < key) {
          pred = curr;
          curr = ptr(sw);
        } else {
          break;
        }
      }
    }
    return curr->key == key && !is_marked(curr->next[0].load());
  }

  // -- lock-free baseline ----------------------------------------------------

  bool insert_lf(ThreadCtx& ctx, std::int64_t key) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* n = nullptr;
    bool ok = insert_impl(ctx, key, &n);
    if (!ok && n != nullptr) P::template destroy<Node>(n);
    return ok;
  }

  bool remove_lf(ThreadCtx& ctx, std::int64_t key) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    return remove_impl(ctx, key);
  }

  // -- PTO (paper §3.1) -------------------------------------------------------

  bool insert_pto(ThreadCtx& ctx, std::int64_t key,
                  PrefixPolicy pol = kDefaultPolicy) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    Node* n = nullptr;
    for (int a = 0; a < pol.attempts; ++a) {
      if (find(ctx, key, preds, succs)) {
        if (n != nullptr) P::template destroy<Node>(n);
        return false;
      }
      if (n == nullptr) n = alloc_node(key);
      const int top = n->toplevel;
      // One transaction validates every predecessor link and performs all
      // the level insertions at once.
      int r = prefix<P>(
          1,
          [&]() -> int {
            for (int l = 0; l < top; ++l) {
              if (preds[l]->next[l].load(std::memory_order_relaxed) !=
                  word(succs[l])) {
                P::template tx_abort<TX_CODE_VALIDATION>();
              }
            }
            for (int l = 0; l < top; ++l) {
              n->next[l].store(word(succs[l]), std::memory_order_relaxed);
            }
            for (int l = 0; l < top; ++l) {
              preds[l]->next[l].store(word(n), std::memory_order_relaxed);
            }
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.ins_stats, PTO_TELEMETRY_SITE("skiplist.insert")});
      if (r == 1) return true;
    }
    // Lock-free fallback, reusing the already-allocated node.
    bool ok = insert_impl(ctx, key, &n);
    if (!ok && n != nullptr) P::template destroy<Node>(n);
    return ok;
  }

  bool remove_pto(ThreadCtx& ctx, std::int64_t key,
                  PrefixPolicy pol = kDefaultPolicy) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    for (int a = 0; a < pol.attempts; ++a) {
      if (!find(ctx, key, preds, succs)) return false;
      Node* victim = succs[0];
      const int top = victim->toplevel;
      // One transaction marks every level and unlinks the node, replacing
      // the top-down CAS marking sequence plus the cleanup search.
      int r = prefix<P>(
          1,
          [&]() -> int {
            std::uintptr_t succ_words[kMaxLevel];
            for (int l = 0; l < top; ++l) {
              std::uintptr_t sw =
                  victim->next[l].load(std::memory_order_relaxed);
              if (is_marked(sw)) {
                // Concurrent removal in progress: bottom level marked means
                // the victim is already logically gone.
                if (l == 0) return 2;
                P::template tx_abort<TX_CODE_HELPING>();
              }
              if (preds[l]->next[l].load(std::memory_order_relaxed) !=
                  word(victim)) {
                P::template tx_abort<TX_CODE_VALIDATION>();
              }
              succ_words[l] = sw;
            }
            for (int l = 0; l < top; ++l) {
              victim->next[l].store(mark(succ_words[l]),
                                    std::memory_order_relaxed);
              preds[l]->next[l].store(succ_words[l],
                                      std::memory_order_relaxed);
            }
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.rem_stats, PTO_TELEMETRY_SITE("skiplist.remove")});
      if (r == 1) {
        ctx.epoch.retire(victim);
        return true;
      }
      if (r == 2) return false;
    }
    return remove_impl(ctx, key);
  }

  /// Quiescent check: walk level 0 and verify sorted unique keys and that
  /// every upper-level list is a sublist of level 0.
  bool check_invariants() {
    Node* n = ptr(head_->next[0].load());
    std::int64_t last = INT64_MIN;
    while (n != tail_) {
      if (n->key <= last || is_marked(n->next[0].load())) return false;
      last = n->key;
      n = ptr(n->next[0].load());
    }
    for (int l = 1; l < kMaxLevel; ++l) {
      Node* u = ptr(head_->next[l].load());
      Node* b = ptr(head_->next[0].load());
      while (u != tail_) {
        while (b != tail_ && b != u) b = ptr(b->next[0].load());
        if (b == tail_) return false;  // upper node not on the bottom list
        u = ptr(u->next[l].load());
      }
    }
    return true;
  }

  std::size_t size_slow() {
    std::size_t n = 0;
    for (Node* p = ptr(head_->next[0].load()); p != tail_;
         p = ptr(p->next[0].load())) {
      ++n;
    }
    return n;
  }

 protected:
  // -- shared internals (also used by SkipQueue) -----------------------------

  static std::uintptr_t word(Node* n) {
    return reinterpret_cast<std::uintptr_t>(n);
  }
  static Node* ptr(std::uintptr_t w) {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) { return (w & 1) != 0; }
  static std::uintptr_t mark(std::uintptr_t w) { return w | 1; }
  static std::uintptr_t strip(std::uintptr_t w) { return w & ~std::uintptr_t{1}; }

  Node* alloc_node(std::int64_t key) {
    Node* n = P::template make<Node>();
    n->key = key;
    int lvl = 1;
    std::uint64_t r = P::rnd();
    while ((r & 1) != 0 && lvl < kMaxLevel) {
      ++lvl;
      r >>= 1;
    }
    n->toplevel = lvl;
    for (int l = 0; l < kMaxLevel; ++l) n->next[l].init(0);
    return n;
  }

  /// Harris-style search: returns whether a node with `key` is present in
  /// the bottom list; fills preds/succs at every level; physically unlinks
  /// marked nodes encountered on the way. Caller holds an epoch guard.
  bool find(ThreadCtx& ctx, std::int64_t key, Node** preds, Node** succs) {
    (void)ctx;
  retry:
    Node* pred = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      Node* curr = ptr(pred->next[lvl].load());
      for (;;) {
        std::uintptr_t sw = curr->next[lvl].load();
        while (is_marked(sw)) {
          std::uintptr_t expect = word(curr);
          if (!pred->next[lvl].compare_exchange_strong(expect, strip(sw))) {
            goto retry;
          }
          curr = ptr(strip(sw));
          sw = curr->next[lvl].load();
        }
        if (curr->key < key) {
          pred = curr;
          curr = ptr(sw);
        } else {
          break;
        }
      }
      preds[lvl] = pred;
      succs[lvl] = curr;
    }
    return succs[0]->key == key;
  }

  /// Lock-free insert; *node (allocated by caller or lazily here) is consumed
  /// on success. Returns false if the key is already present.
  bool insert_impl(ThreadCtx& ctx, std::int64_t key, Node** node) {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    for (;;) {
      if (find(ctx, key, preds, succs)) return false;
      Node* n = *node;
      if (n == nullptr) {
        n = alloc_node(key);
        *node = n;
      }
      const int top = n->toplevel;
      for (int l = 0; l < top; ++l) {
        n->next[l].store(word(succs[l]), std::memory_order_relaxed);
      }
      std::uintptr_t expect = word(succs[0]);
      if (!preds[0]->next[0].compare_exchange_strong(expect, word(n))) {
        continue;  // bottom-level contention: re-search
      }
      // Link the upper levels best-effort.
      for (int l = 1; l < top; ++l) {
        for (;;) {
          std::uintptr_t nw = n->next[l].load();
          if (is_marked(nw)) goto linked;  // being removed already
          if (ptr(nw) != succs[l]) {
            // Refresh our node's forward pointer before exposing it.
            if (!n->next[l].compare_exchange_strong(nw, word(succs[l]))) {
              continue;
            }
          }
          expect = word(succs[l]);
          if (preds[l]->next[l].compare_exchange_strong(expect, word(n))) {
            break;
          }
          find(ctx, key, preds, succs);
          if (succs[0] != n) goto linked;  // node removed concurrently
        }
      }
    linked:
      // Anti-resurrection pass: if a concurrent remove marked us while we
      // were linking upper levels, physically unlink everything now — inside
      // our guard, before the remover's retirement can mature.
      if (is_marked(n->next[0].load())) {
        find(ctx, key, preds, succs);
      }
      *node = nullptr;  // consumed
      return true;
    }
  }

  /// Lock-free remove. Returns false if not present (or lost the race).
  bool remove_impl(ThreadCtx& ctx, std::int64_t key) {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (!find(ctx, key, preds, succs)) return false;
    Node* victim = succs[0];
    return remove_node(ctx, key, victim);
  }

  /// Mark `victim` top-down; the winner of the bottom-level mark unlinks and
  /// retires it. Returns whether this thread was the logical remover.
  bool remove_node(ThreadCtx& ctx, std::int64_t key, Node* victim) {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    for (int l = victim->toplevel - 1; l >= 1; --l) {
      std::uintptr_t sw = victim->next[l].load();
      while (!is_marked(sw)) {
        victim->next[l].compare_exchange_strong(sw, mark(sw));
      }
    }
    std::uintptr_t sw = victim->next[0].load();
    for (;;) {
      if (is_marked(sw)) return false;  // someone else removed it
      if (victim->next[0].compare_exchange_strong(sw, mark(sw))) {
        find(ctx, key, preds, succs);  // physical unlink of all levels
        ctx.epoch.retire(victim);
        return true;
      }
    }
  }

  EpochDomain<P> dom_;
  Node* head_;
  Node* tail_;
};

}  // namespace pto
