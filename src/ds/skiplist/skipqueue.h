// SkipQueue: a skiplist-based priority queue in the style of Lotan & Shavit,
// made linearizable by disallowing pops from traversing past a marked node
// (they help complete its removal and restart from the head instead), as the
// paper does in §4.3.
//
// Duplicate priorities are supported by uniquifying keys: the skiplist key is
// (priority << 28) | (ctx uniquifier << 20) | per-ctx counter, so equal
// priorities become distinct keys that order FIFO-ish by insertion.
//
// PTO (paper §3.1/§4.3): pop attempts one transaction that marks every level
// of the first node and unlinks it from the head; push reuses the skiplist's
// PTO insert. The paper reports PTO yields little benefit here — traversal
// cache misses dominate and poppers conflict at the head — which is exactly
// the behaviour Fig 2(b) reproduces.
#pragma once

#include <optional>

#include "ds/skiplist/skiplist.h"
#include "telemetry/registry.h"

namespace pto {

template <class P>
class SkipQueue : private SkipList<P> {
  using Base = SkipList<P>;
  using Node = typename Base::Node;
  using Base::find;
  using Base::head_;
  using Base::is_marked;
  using Base::mark;
  using Base::ptr;
  using Base::remove_node;
  using Base::tail_;
  using Base::word;

 public:
  static constexpr int kPrioShift = 28;
  static constexpr PrefixPolicy kDefaultPolicy{4};

  struct ThreadCtx {
    explicit ThreadCtx(SkipQueue& q)
        : base(static_cast<Base&>(q)),
          uniq(q.next_uniq_.fetch_add(1) & 0xFF) {}
    typename Base::ThreadCtx base;
    std::uint32_t uniq;
    std::uint32_t counter = 0;
  };

  SkipQueue() { next_uniq_.init(0); }

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  bool empty() {
    return ptr(head_->next[0].load()) == tail_;
  }

  std::size_t size_slow() { return Base::size_slow(); }

  // -- lock-free baseline ----------------------------------------------------

  void push_lf(ThreadCtx& ctx, std::int32_t prio) {
    while (!Base::insert_lf(ctx.base, make_key(ctx, prio))) {
    }
  }

  std::optional<std::int32_t> pop_min_lf(ThreadCtx& ctx) {
    typename EpochDomain<P>::Guard g(ctx.base.epoch);
    typename Base::Node* preds[Base::kMaxLevel];
    typename Base::Node* succs[Base::kMaxLevel];
    for (;;) {
      Node* first = ptr(head_->next[0].load());
      if (first == tail_) return std::nullopt;
      std::int64_t k = first->key;
      if (is_marked(first->next[0].load())) {
        // Linearizable variant: never traverse past a marked node — help
        // finish its removal and restart from the head.
        find(ctx.base, k, preds, succs);
        continue;
      }
      if (remove_node(ctx.base, k, first)) {
        return static_cast<std::int32_t>(k >> kPrioShift);
      }
    }
  }

  // -- PTO -------------------------------------------------------------------

  void push_pto(ThreadCtx& ctx, std::int32_t prio,
                PrefixPolicy pol = kDefaultPolicy) {
    while (!Base::insert_pto(ctx.base, make_key(ctx, prio), pol)) {
    }
  }

  std::optional<std::int32_t> pop_min_pto(ThreadCtx& ctx,
                                          PrefixPolicy pol = kDefaultPolicy) {
    typename EpochDomain<P>::Guard g(ctx.base.epoch);
    for (int a = 0; a < pol.attempts; ++a) {
      Node* victim = nullptr;
      std::int64_t key = 0;
      // 1 = popped, 2 = empty, 0 = fall through to a retry / LF path.
      int r = prefix<P>(
          1,
          [&]() -> int {
            std::uintptr_t hw = head_->next[0].load(std::memory_order_relaxed);
            Node* first = ptr(hw);
            if (first == tail_) return 2;
            const int top = first->toplevel;
            std::uintptr_t succ_words[Base::kMaxLevel];
            for (int l = 0; l < top; ++l) {
              std::uintptr_t sw =
                  first->next[l].load(std::memory_order_relaxed);
              if (is_marked(sw)) {
                // A concurrent pop owns this node: back off to the fallback
                // rather than helping inside the transaction (§2.4).
                P::template tx_abort<TX_CODE_HELPING>();
              }
              succ_words[l] = sw;
            }
            for (int l = 0; l < top; ++l) {
              first->next[l].store(mark(succ_words[l]),
                                   std::memory_order_relaxed);
              if (head_->next[l].load(std::memory_order_relaxed) ==
                  word(first)) {
                head_->next[l].store(succ_words[l],
                                     std::memory_order_relaxed);
              }
            }
            victim = first;
            key = first->key;
            return 1;
          },
          [&]() -> int { return 0; }, {&ctx.base.pop_stats, PTO_TELEMETRY_SITE("skipqueue.pop")});
      if (r == 1) {
        ctx.base.epoch.retire(victim);
        return static_cast<std::int32_t>(key >> kPrioShift);
      }
      if (r == 2) return std::nullopt;
    }
    return pop_min_lf(ctx);
  }

 private:
  std::int64_t make_key(ThreadCtx& ctx, std::int32_t prio) {
    std::int64_t k = (static_cast<std::int64_t>(prio) << kPrioShift) |
                     (static_cast<std::int64_t>(ctx.uniq) << 20) |
                     (ctx.counter++ & 0xFFFFF);
    return k;
  }

  Atom<P, std::uint32_t> next_uniq_;
};

}  // namespace pto
