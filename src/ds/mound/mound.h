// Mound: an array-based tree of sorted lists implementing a concurrent
// min-priority queue (Liu & Spear, "Mounds: Array-Based Concurrent Priority
// Queues", ICPP 2012). The paper's §3.1 uses it to evaluate applying PTO
// *locally* to sub-operations: every multi-word step is a DCSS (insert) or a
// DCAS (moundify swap) built from the kcas substrate, and the PTO variant
// simply routes those through pto_dcss/pto_dcas with the paper's tuned
// retry value of 4 — the rest of the algorithm is untouched.
//
// Representation: a 1-indexed complete binary tree of words managed by kcas
// (so user payloads keep their low two bits zero):
//
//   word = [ counter:16 | LNode*:bits 6..47 | dirty:bit 2 | 00 ]
//
// Each node's list is sorted ascending from the head; the node's value is
// its head (or +inf when empty). Invariant: a *clean* node's value is >= its
// parent's value. extractMin pops the root head, marks the root dirty, and
// moundify() swaps smaller child lists upward (re-dirtying the child),
// recursively. A pop never proceeds past a dirty root: it helps moundify
// first, which is what keeps the root the global minimum.
//
// Inserts probe random leaves for one with value >= v, binary-search the
// root-to-leaf path for the highest node n with val(n) >= v >= val(parent),
// and push v with a DCSS that validates the parent word. List nodes are
// reclaimed through epochs; kcas descriptors are pooled (the paper notes
// Mound descriptors are reused, so allocation plays no role — Fig 5(b)).
#pragma once

#include <cstdint>
#include <optional>

#include "common/defs.h"
#include "core/prefix.h"
#include "kcas/kcas.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"

namespace pto {

template <class P>
class Mound {
 public:
  static constexpr PrefixPolicy kDcasPolicy{4};  // paper §4.2: retry = 4
  static constexpr unsigned kLeafProbes = 8;

  struct ThreadCtx {
    explicit ThreadCtx(Mound& m) : kctx(m.dom_) {}
    kcas::Ctx<P> kctx;
    PrefixStats dcas_stats;
  };

  /// max_depth bounds capacity at 2^max_depth - 1 nodes' worth of lists.
  explicit Mound(unsigned max_depth = 15) : max_depth_(max_depth) {
    assert(max_depth >= 2 && max_depth <= 28);
    const std::size_t n = std::size_t{1} << max_depth_;
    nodes_ = static_cast<PaddedWord*>(
        P::alloc_bytes(sizeof(PaddedWord) * n));
    for (std::size_t i = 0; i < n; ++i) {
      ::new (&node_word(i)) PaddedWord();
      node_word(i).init(0);
    }
    depth_.init(2);
  }

  ~Mound() {
    const std::size_t n = std::size_t{1} << max_depth_;
    for (std::size_t i = 1; i < n; ++i) {
      LNode* l = lnode_of(node_word(i).load(std::memory_order_relaxed));
      while (l != nullptr) {
        LNode* nx = l->next;
        P::template destroy<LNode>(l);
        l = nx;
      }
    }
    P::free_bytes(nodes_, sizeof(PaddedWord) * n);
  }

  Mound(const Mound&) = delete;
  Mound& operator=(const Mound&) = delete;

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  /// Override the DCAS/DCSS transaction retry budget (paper default: 4).
  void set_dcas_policy(PrefixPolicy pol) { dcas_policy_ = pol; }

  void insert_lf(ThreadCtx& ctx, std::int32_t v) { insert(ctx, v, false); }
  void insert_pto(ThreadCtx& ctx, std::int32_t v) { insert(ctx, v, true); }

  std::optional<std::int32_t> extract_min_lf(ThreadCtx& ctx) {
    return extract_min(ctx, false);
  }
  std::optional<std::int32_t> extract_min_pto(ThreadCtx& ctx) {
    return extract_min(ctx, true);
  }

  /// Quiescent invariant: every clean node's value >= its parent's value,
  /// every list sorted ascending, dirty bits clear after drain... (dirty
  /// nodes may persist transiently; callers drain or moundify first).
  bool check_invariants() {
    unsigned d = depth_.load(std::memory_order_relaxed);
    for (std::size_t i = 2; i < (std::size_t{1} << d); ++i) {
      std::uint64_t w = node_word(i).load(std::memory_order_relaxed);
      std::uint64_t pw = node_word(i / 2).load(std::memory_order_relaxed);
      if (!is_dirty(w) && !is_dirty(pw) && value_of(w) < value_of(pw)) {
        return false;
      }
    }
    for (std::size_t i = 1; i < (std::size_t{1} << d); ++i) {
      LNode* l = lnode_of(node_word(i).load(std::memory_order_relaxed));
      while (l != nullptr && l->next != nullptr) {
        if (l->next->value < l->value) return false;
        l = l->next;
      }
    }
    return true;
  }

  std::size_t size_slow() {
    std::size_t n = 0;
    unsigned d = depth_.load(std::memory_order_relaxed);
    for (std::size_t i = 1; i < (std::size_t{1} << d); ++i) {
      for (LNode* l = lnode_of(node_word(i).load(std::memory_order_relaxed));
           l != nullptr; l = l->next) {
        ++n;
      }
    }
    return n;
  }

 private:
  using Word = kcas::Word<P>;
  /// One node word per cache line: packed sibling words would false-share
  /// and abort each other's DCAS/DCSS transactions.
  struct alignas(kCacheLine) PaddedWord {
    Word w;
  };
  Word& node_word(std::size_t i) const { return nodes_[i].w; }
  static constexpr std::int64_t kInf = INT64_MAX;
  static constexpr std::uint64_t kDirty = 4;
  static constexpr std::uint64_t kPtrMask = 0x0000FFFFFFFFFFC0ull;
  static constexpr unsigned kCtrShift = 48;

  /// List node. alignas(64): node words store the pointer in bits 6..47
  /// (kPtrMask), so the allocation must be cache-line aligned on every
  /// platform — the simulator's arena guarantees it, native `new` does not.
  struct alignas(kCacheLine) LNode {
    std::int32_t value;
    LNode* next;
  };

  static LNode* lnode_of(std::uint64_t w) {
    return reinterpret_cast<LNode*>(w & kPtrMask);
  }
  static bool is_dirty(std::uint64_t w) { return (w & kDirty) != 0; }
  static std::uint64_t pack(std::uint64_t old, LNode* list, bool dirty) {
    std::uint64_t ctr = ((old >> kCtrShift) + 1) & 0xFFFF;
    return (ctr << kCtrShift) |
           (reinterpret_cast<std::uint64_t>(list) & kPtrMask) |
           (dirty ? kDirty : 0);
  }
  /// Node value: head of the list, +inf when empty.
  static std::int64_t value_of(std::uint64_t w) {
    LNode* l = lnode_of(w);
    return l == nullptr ? kInf : l->value;
  }

  /// Read a node word, helping any in-flight kcas operation. Requires an
  /// epoch guard.
  std::uint64_t read_node(ThreadCtx& ctx, std::size_t i) {
    return kcas::read(ctx.kctx, node_word(i));
  }

  void insert(ThreadCtx& ctx, std::int32_t v, bool use_pto) {
    typename EpochDomain<P>::Guard g(ctx.kctx.epoch);
    LNode* ln = P::template make<LNode>();
    ln->value = v;
    for (;;) {
      unsigned d = depth_.load();
      std::size_t leaf = 0;
      std::uint64_t leaf_w = 0;
      bool found = false;
      // Randomized leaf probing (paper: "insertion entails a log-log-depth
      // traversal"; we keep the simpler log-depth binary search).
      for (unsigned probe = 0; probe < kLeafProbes; ++probe) {
        std::size_t lo = std::size_t{1} << (d - 1);
        std::size_t idx = lo + (P::rnd() & (lo - 1));
        std::uint64_t w = read_node(ctx, idx);
        if (value_of(w) >= v) {
          leaf = idx;
          leaf_w = w;
          found = true;
          break;
        }
      }
      if (!found) {
        // All probes were smaller than v: deepen the mound and retry.
        if (d < max_depth_) {
          std::uint32_t expect = d;
          depth_.compare_exchange_strong(expect, d + 1);
          continue;
        }
        // Bounded-depth overflow: insert v at its sorted position inside a
        // leaf list, copying the (strictly smaller) prefix persistently.
        // The head is unchanged, so no heap invariant is disturbed. The
        // unbounded Mound of the original paper grows instead; see
        // DESIGN.md §3.
        if (insert_sorted_at_leaf(ctx, d, v, ln)) return;
        continue;
      }
      // Binary search the root->leaf path for the highest insertion point.
      std::size_t n = leaf;
      std::uint64_t wn = leaf_w;
      for (unsigned lvl = 0; lvl + 1 < d; ++lvl) {
        std::size_t anc = leaf >> (d - 1 - lvl);
        std::uint64_t wa = read_node(ctx, anc);
        if (value_of(wa) >= v) {
          n = anc;
          wn = wa;
          break;
        }
      }
      ln->next = lnode_of(wn);
      std::uint64_t neww = pack(wn, ln, is_dirty(wn));
      bool ok;
      if (n == 1) {
        // The root has no parent: a single CAS suffices.
        std::uint64_t expect = wn;
        ok = node_word(1).compare_exchange_strong(expect, neww);
      } else {
        std::uint64_t wp = read_node(ctx, n / 2);
        if (value_of(wp) > v) continue;  // parent moved; retry
        ok = use_pto
                 ? kcas::pto_dcss<P>(ctx.kctx, node_word(n / 2), wp, node_word(n),
                                     wn, neww, dcas_policy_, &ctx.dcas_stats)
                 : kcas::dcss<P>(ctx.kctx, node_word(n / 2), wp, node_word(n), wn,
                                 neww);
      }
      if (ok) return;
    }
  }

  /// Overflow path: splice `ln` (value v) into a random leaf's list at its
  /// sorted position. Prefix nodes are copied (lists are immutable once
  /// published); the displaced prefix copies are epoch-retired on success.
  bool insert_sorted_at_leaf(ThreadCtx& ctx, unsigned d, std::int32_t v,
                             LNode* ln) {
    std::size_t lo = std::size_t{1} << (d - 1);
    std::size_t idx = lo + (P::rnd() & (lo - 1));
    std::uint64_t w = read_node(ctx, idx);
    LNode* src = lnode_of(w);
    // Copy the strictly-smaller prefix.
    LNode* new_head = nullptr;
    LNode** tail = &new_head;
    LNode* cur = src;
    while (cur != nullptr && cur->value < v) {
      LNode* c = P::template make<LNode>();
      c->value = cur->value;
      *tail = c;
      tail = &c->next;
      cur = cur->next;
    }
    *tail = ln;
    ln->next = cur;
    std::uint64_t neww = pack(w, new_head == nullptr ? ln : new_head,
                              is_dirty(w));
    // The head (and thus the parent invariant) is unchanged, so a plain
    // versioned CAS on the node word suffices — no DCSS needed.
    std::uint64_t expect = w;
    bool ok = node_word(idx).compare_exchange_strong(expect, neww);
    LNode* walk = (new_head == nullptr) ? nullptr : new_head;
    if (ok) {
      // Retire the displaced original prefix.
      for (LNode* o = src; o != nullptr && o != cur;) {
        LNode* nx = o->next;
        ctx.kctx.epoch.retire(o);
        o = nx;
      }
      return true;
    }
    // Never published: free the copies immediately.
    while (walk != nullptr && walk != ln) {
      LNode* nx = walk->next;
      P::template destroy<LNode>(walk);
      walk = nx;
    }
    return false;
  }

  std::optional<std::int32_t> extract_min(ThreadCtx& ctx, bool use_pto) {
    typename EpochDomain<P>::Guard g(ctx.kctx.epoch);
    for (;;) {
      std::uint64_t w = read_node(ctx, 1);
      if (is_dirty(w)) {
        moundify(ctx, 1, use_pto);
        continue;
      }
      LNode* head = lnode_of(w);
      if (head == nullptr) return std::nullopt;  // clean + empty = empty
      std::uint64_t neww = pack(w, head->next, /*dirty=*/true);
      std::uint64_t expect = w;
      if (node_word(1).compare_exchange_strong(expect, neww)) {
        std::int32_t v = head->value;
        ctx.kctx.epoch.retire(head);
        moundify(ctx, 1, use_pto);
        return v;
      }
    }
  }

  /// Restore the invariant at node i (paper: DCAS swaps the smaller child's
  /// list upward, re-dirtying the child, recursively).
  void moundify(ThreadCtx& ctx, std::size_t i, bool use_pto) {
    for (;;) {
      std::uint64_t w = read_node(ctx, i);
      if (!is_dirty(w)) return;
      unsigned d = depth_.load();
      if (i >= (std::size_t{1} << (d - 1))) {
        // Leaf (at the current depth): nothing below can violate.
        std::uint64_t expect = w;
        if (node_word(i).compare_exchange_strong(
                expect, pack(w, lnode_of(w), false))) {
          return;
        }
        continue;
      }
      // Children must be clean before their heads are comparable: a dirty
      // child's head may exceed values hidden in its own subtree, and
      // comparing against it could wrongly certify this node as the minimum
      // (caught by the pop-ordering tests). Help finish their chains first,
      // as the original algorithm requires.
      std::uint64_t wl = read_node(ctx, 2 * i);
      if (is_dirty(wl)) {
        moundify(ctx, 2 * i, use_pto);
        continue;
      }
      std::uint64_t wr = read_node(ctx, 2 * i + 1);
      if (is_dirty(wr)) {
        moundify(ctx, 2 * i + 1, use_pto);
        continue;
      }
      std::int64_t vl = value_of(wl);
      std::int64_t vr = value_of(wr);
      std::int64_t vi = value_of(w);
      std::size_t c = (vl <= vr) ? 2 * i : 2 * i + 1;
      std::uint64_t wc = (vl <= vr) ? wl : wr;
      if (std::min(vl, vr) < vi) {
        // Swap lists with the smaller child; the child inherits the dirt.
        std::uint64_t new_i = pack(w, lnode_of(wc), false);
        std::uint64_t new_c = pack(wc, lnode_of(w), true);
        bool ok = use_pto
                      ? kcas::pto_dcas<P>(ctx.kctx, node_word(i), w, new_i,
                                          node_word(c), wc, new_c,
                                          dcas_policy_, &ctx.dcas_stats)
                      : kcas::dcas<P>(ctx.kctx, node_word(i), w, new_i,
                                      node_word(c), wc, new_c);
        if (ok) {
          moundify(ctx, c, use_pto);
          return;
        }
      } else {
        std::uint64_t expect = w;
        if (node_word(i).compare_exchange_strong(
                expect, pack(w, lnode_of(w), false))) {
          return;
        }
      }
    }
  }

  PrefixPolicy dcas_policy_ = kDcasPolicy;
  unsigned max_depth_;
  PaddedWord* nodes_;  ///< 1-indexed; index 0 unused
  Atom<P, std::uint32_t> depth_;
  EpochDomain<P> dom_;
};

}  // namespace pto
