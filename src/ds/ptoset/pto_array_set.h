// PTOArraySet: a small ordered set *designed for PTO*, implementing the
// paper's concluding proposal (§5, §7): "a slow-path that bears these costs,
// coupled with an unencumbered fast-path, may provide a 'sweet spot' for
// algorithm designers ... encourages the design of nonblocking data
// structures with slower slow-paths, as long as they afford faster
// fast-paths."
//
// Design, deliberately inverted from classic lock-free engineering:
//
//   fast path (expected): one prefix transaction does an in-place sorted
//     array edit (memmove-style shifts, version bump). No CAS, no
//     allocation, no descriptor, no fence — nothing but plain accesses.
//
//   slow path (rare): whole-array copy-on-write published with a single CAS
//     on a (version | pointer) word — trivially correct and nonblocking,
//     costing an allocation + O(n) copy per update. Nobody optimized it,
//     exactly as §5 recommends: its job is to exist so the fast path may be
//     simple.
//
//   lookups: fast path reads the array inside a transaction (consistent
//     snapshot, epoch elided); fallback double-checks the version word
//     (lock-free, not wait-free — §5's "Progress vs. Optimization
//     Trade-off" applied on purpose).
//
// Capacity-bounded (the fast path's write set must fit HTM); intended for
// small *low-contention* hot sets: routing tables, watch lists, quota sets.
// Being one centralized array, every concurrent update conflicts — under
// heavy multi-writer contention the hash table's per-bucket parallelism
// wins (abl_ptoset quantifies the crossover). This is §5's precondition in
// action: the fast/slow sweet spot exists "if the prefix succeeds with high
// probability".
#pragma once

#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"
#include "telemetry/registry.h"

namespace pto {

template <class P, unsigned Capacity = 48>
class PTOArraySet {
  static_assert(Capacity >= 2 && Capacity <= 256,
                "fast-path write set must fit best-effort HTM");

 public:
  static constexpr PrefixPolicy kDefaultPolicy{4};

  struct ThreadCtx {
    explicit ThreadCtx(PTOArraySet& s) : epoch(s.dom_.register_thread()) {}
    typename EpochDomain<P>::Handle epoch;
    PrefixStats stats;
  };

  PTOArraySet() { word_.init(pack(make_block(), 0)); }

  ~PTOArraySet() {
    destroy_block(block_of(word_.load(std::memory_order_relaxed)), nullptr);
  }

  PTOArraySet(const PTOArraySet&) = delete;
  PTOArraySet& operator=(const PTOArraySet&) = delete;

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  bool contains(ThreadCtx& ctx, std::int64_t key,
                PrefixPolicy pol = kDefaultPolicy) {
    if (!P::strongly_atomic()) {
      typename EpochDomain<P>::Guard g(ctx.epoch);
      return lookup_double_check(key);
    }
    return prefix<P>(
        pol,
        [&]() -> bool {
          Block* b = block_of(word_.load(std::memory_order_relaxed));
          return search(b, key) >= 0;
        },
        [&]() -> bool {
          typename EpochDomain<P>::Guard g(ctx.epoch);
          return lookup_double_check(key);
        },
        {&ctx.stats, PTO_TELEMETRY_SITE("ptoset.lookup")});
  }

  bool insert(ThreadCtx& ctx, std::int64_t key,
              PrefixPolicy pol = kDefaultPolicy) {
    return update(ctx, key, /*is_insert=*/true, pol);
  }
  bool remove(ThreadCtx& ctx, std::int64_t key,
              PrefixPolicy pol = kDefaultPolicy) {
    return update(ctx, key, /*is_insert=*/false, pol);
  }

  std::size_t size_slow() {
    Block* b = block_of(word_.load(std::memory_order_relaxed));
    return b->size.load(std::memory_order_relaxed);
  }

  bool check_invariants() {
    Block* b = block_of(word_.load(std::memory_order_relaxed));
    std::uint32_t n = b->size.load(std::memory_order_relaxed);
    if (n > Capacity) return false;
    for (std::uint32_t i = 1; i < n; ++i) {
      if (b->keys[i - 1].load(std::memory_order_relaxed) >=
          b->keys[i].load(std::memory_order_relaxed)) {
        return false;
      }
    }
    return true;
  }

  /// True when the set is at capacity (inserts of new keys will fail).
  bool full() { return size_slow() == Capacity; }

 private:
  struct Block {
    Atom<P, std::uint32_t> size;
    Atom<P, std::int64_t> keys[Capacity];
  };

  // (version:16 | Block*:48). The version makes in-place fast-path edits
  // visible to optimistic double-checking readers; the pointer swings on
  // slow-path copy-on-write.
  static constexpr std::uint64_t kPtrMask = 0x0000FFFFFFFFFFFFull;
  static std::uint64_t pack(Block* b, std::uint64_t ver) {
    return (reinterpret_cast<std::uint64_t>(b) & kPtrMask) | (ver << 48);
  }
  static Block* block_of(std::uint64_t w) {
    return reinterpret_cast<Block*>(w & kPtrMask);
  }
  static std::uint64_t bump(std::uint64_t w) {
    return pack(block_of(w), ((w >> 48) + 1) & 0xFFFF);
  }

  Block* make_block() {
    auto* b = static_cast<Block*>(P::alloc_bytes(sizeof(Block)));
    ::new (b) Block();
    b->size.init(0);
    for (auto& k : b->keys) ::new (&k) Atom<P, std::int64_t>();
    return b;
  }
  static void destroy_block(void* b, void*) {
    P::free_bytes(b, sizeof(Block));
  }

  /// Binary search; returns index or -(insertion_point+1).
  int search(Block* b, std::int64_t key) {
    int lo = 0;
    int hi = static_cast<int>(b->size.load(std::memory_order_relaxed)) - 1;
    // pto-lint: bounded(log2 Capacity; binary search halves [lo, hi])
    while (lo <= hi) {
      int mid = (lo + hi) / 2;
      std::int64_t k = b->keys[mid].load(std::memory_order_relaxed);
      if (k == key) return mid;
      if (k < key) {
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    return -(lo + 1);
  }

  bool lookup_double_check(std::int64_t key) {
    for (;;) {
      std::uint64_t w = word_.load();
      bool found = search(block_of(w), key) >= 0;
      if (word_.load() == w) return found;
      P::pause();
    }
  }

  bool update(ThreadCtx& ctx, std::int64_t key, bool is_insert,
              PrefixPolicy pol) {
    // Fast path: one transaction, in-place shift, version bump.
    // 1 = done, 2 = no-op, 3 = full, 0 = fall back.
    int r = prefix<P>(
        pol,
        [&]() -> int {
          std::uint64_t w = word_.load(std::memory_order_relaxed);
          Block* b = block_of(w);
          std::uint32_t n = b->size.load(std::memory_order_relaxed);
          int pos = search(b, key);
          if (is_insert) {
            if (pos >= 0) return 2;
            if (n == Capacity) return 3;
            int at = -pos - 1;
            for (int i = static_cast<int>(n); i > at; --i) {
              b->keys[i].store(
                  b->keys[i - 1].load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
            }
            b->keys[at].store(key, std::memory_order_relaxed);
            b->size.store(n + 1, std::memory_order_relaxed);
          } else {
            if (pos < 0) return 2;
            for (std::uint32_t i = static_cast<std::uint32_t>(pos) + 1;
                 i < n; ++i) {
              b->keys[i - 1].store(
                  b->keys[i].load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
            }
            b->size.store(n - 1, std::memory_order_relaxed);
          }
          word_.store(bump(w), std::memory_order_relaxed);
          return 1;
        },
        [&]() -> int { return 0; }, {&ctx.stats, PTO_TELEMETRY_SITE("ptoset.update")});
    if (r == 1) return true;
    if (r == 2) return false;
    if (r == 3) return false;  // full: insert rejected (bounded set)
    // Slow path: unoptimized copy-on-write, one CAS. Deliberately naive.
    typename EpochDomain<P>::Guard g(ctx.epoch);
    for (;;) {
      std::uint64_t w = word_.load();
      Block* b = block_of(w);
      std::uint32_t n = b->size.load(std::memory_order_relaxed);
      int pos = search(b, key);
      if (is_insert && pos >= 0) return false;
      if (!is_insert && pos < 0) return false;
      if (is_insert && n == Capacity) return false;

      Block* nb = make_block();
      std::uint32_t out = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::int64_t k = b->keys[i].load(std::memory_order_relaxed);
        if (!is_insert && k == key) continue;
        if (is_insert && out == static_cast<std::uint32_t>(-pos - 1)) {
          // insertion point handled below via full rebuild
        }
        nb->keys[out++].store(k, std::memory_order_relaxed);
      }
      if (is_insert) {
        // Rebuild in sorted order with the new key included.
        out = 0;
        bool placed = false;
        for (std::uint32_t i = 0; i < n; ++i) {
          std::int64_t k = b->keys[i].load(std::memory_order_relaxed);
          if (!placed && key < k) {
            nb->keys[out++].store(key, std::memory_order_relaxed);
            placed = true;
          }
          nb->keys[out++].store(k, std::memory_order_relaxed);
        }
        if (!placed) nb->keys[out++].store(key, std::memory_order_relaxed);
      }
      nb->size.store(out, std::memory_order_relaxed);

      std::uint64_t neww = pack(nb, (w >> 48) + 1);
      std::uint64_t expect = w;
      if (word_.compare_exchange_strong(expect, neww)) {
        ctx.epoch.retire_custom(b, &destroy_block, nullptr);
        return true;
      }
      destroy_block(nb, nullptr);
    }
  }

  EpochDomain<P> dom_;
  Atom<P, std::uint64_t> word_;
};

}  // namespace pto
