// Generic Transactional Lock Elision (Rajwar & Goodman [40]; Dice et al.
// [7]) — the technique the paper uses as its comparison baseline in
// Fig 2(a): a sequential data structure protected by one global lock, where
// critical sections first attempt to run as a hardware transaction that
// merely *subscribes* to the lock (reads it and aborts if held).
//
// The contrast with PTO is the fallback: TLE's is a lock (serializing, and
// subject to the lemming effect — one abort convoy degrades everyone), while
// PTO's is the original lock-free algorithm. The paper's §6 discussion of
// lazy-subscription pitfalls is moot here: we subscribe eagerly, first thing
// in the transaction.
//
// The wrapped sequential structure must perform all shared accesses through
// Atom<P, T> (so the simulator can track conflicts and roll back aborted
// transactions) and must be written for single-threaded execution — the
// lock/transaction provides all isolation.
#pragma once

#include <cstdint>

#include "core/prefix.h"
#include "platform/platform.h"
#include "telemetry/registry.h"

namespace pto {

template <class P, class Seq>
class TLE {
 public:
  static constexpr PrefixPolicy kDefaultPolicy{3};

  template <class... A>
  explicit TLE(A&&... args) : seq_(static_cast<A&&>(args)...) {
    lock_.init(0);
  }

  /// Run fn(sequential_structure) atomically: elided first, locked fallback.
  template <class Fn>
  auto execute(Fn&& fn, PrefixStats* st = nullptr,
               PrefixPolicy pol = kDefaultPolicy)
      -> decltype(fn(*static_cast<Seq*>(nullptr))) {
    // TLE runs *unmodified* sequential code under elision -- whatever fn
    // allocates, it allocates inside the critical section. That is the
    // documented conflict-and-capacity hazard the Fig 2 baseline exists to
    // measure (see SeqHashSet::insert), not a discipline violation to fix,
    // so the allocation check is suppressed for this one site.
    // pto-analyze: allow(allocation)
    return prefix<P>(
        pol,
        [&] {
          // Eager lock subscription: the lock word joins the read set, so a
          // fallback acquisition aborts every elided section immediately.
          if (lock_.load(std::memory_order_relaxed) != 0) {
            P::template tx_abort<TX_CODE_VALIDATION>();
          }
          return fn(seq_);
        },
        [&] {
          std::uint32_t expect = 0;
          while (!lock_.compare_exchange_strong(expect, 1)) {
            expect = 0;
            P::pause();
          }
          if constexpr (std::is_void_v<decltype(fn(seq_))>) {
            fn(seq_);
            lock_.store(0);
            return;
          } else {
            auto r = fn(seq_);
            lock_.store(0);
            return r;
          }
        },
        {st, PTO_TELEMETRY_SITE("tle.execute")});
  }

  /// Unsynchronized access for setup/teardown/inspection at quiescence.
  Seq& unsafe_seq() { return seq_; }

 private:
  Seq seq_;
  Atom<P, std::uint32_t> lock_;
};

// ---------------------------------------------------------------------------
// A sequential chaining hash set over instrumented atomics, suitable for
// wrapping in TLE<P, SeqHashSet<P>>.
// ---------------------------------------------------------------------------

template <class P>
class SeqHashSet {
 public:
  explicit SeqHashSet(std::uint32_t buckets = 1024) : len_(buckets) {
    assert((buckets & (buckets - 1)) == 0);
    table_ = static_cast<Atom<P, Node*>*>(
        P::alloc_bytes(sizeof(Atom<P, Node*>) * len_));
    for (std::uint32_t i = 0; i < len_; ++i) {
      ::new (&table_[i]) Atom<P, Node*>();
      table_[i].init(nullptr);
    }
  }

  ~SeqHashSet() {
    collect_garbage_at_quiescence();
    for (std::uint32_t i = 0; i < len_; ++i) {
      Node* n = table_[i].load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* nx = n->next.load(std::memory_order_relaxed);
        P::template destroy<Node>(n);
        n = nx;
      }
    }
    P::free_bytes(table_, sizeof(Atom<P, Node*>) * len_);
  }

  SeqHashSet(const SeqHashSet&) = delete;
  SeqHashSet& operator=(const SeqHashSet&) = delete;

  bool contains(std::int64_t key) {
    for (Node* n = bucket(key).load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) return true;
    }
    return false;
  }

  /// NOTE: called under TLE, allocation happens inside the critical section
  /// (transaction or lock) — the classic TLE conflict-and-capacity hazard
  /// that PTO's pre-allocation discipline avoids.
  bool insert(std::int64_t key) {
    auto& b = bucket(key);
    for (Node* n = b.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) return false;
    }
    Node* n = P::template make<Node>();
    n->key = key;
    n->next.init(b.load(std::memory_order_relaxed));
    b.store(n, std::memory_order_relaxed);
    return true;
  }

  bool remove(std::int64_t key) {
    auto& b = bucket(key);
    Node* prev = nullptr;
    for (Node* n = b.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) {
        Node* nx = n->next.load(std::memory_order_relaxed);
        if (prev == nullptr) {
          b.store(nx, std::memory_order_relaxed);
        } else {
          prev->next.store(nx, std::memory_order_relaxed);
        }
        // Freeing inside the critical section is unsafe under elision (the
        // free would abort concurrent elided readers, and the memory could
        // be recycled under a lock-path reader). Chain the node into a
        // garbage list instead — safe: TLE critical sections are fully
        // isolated, so no reader holds an unlinked node across one.
        n->next.store(garbage_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
        garbage_.store(n, std::memory_order_relaxed);
        return true;
      }
      prev = n;
    }
    return false;
  }

  /// Drain the garbage chain. Call at quiescence (no operation in flight).
  void collect_garbage_at_quiescence() {
    Node* n = garbage_.load(std::memory_order_relaxed);
    garbage_.store(nullptr, std::memory_order_relaxed);
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      P::template destroy<Node>(n);
      n = nx;
    }
  }

  std::size_t size_slow() {
    std::size_t c = 0;
    for (std::uint32_t i = 0; i < len_; ++i) {
      for (Node* n = table_[i].load(std::memory_order_relaxed); n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        ++c;
      }
    }
    return c;
  }

 private:
  struct Node {
    std::int64_t key;
    Atom<P, Node*> next;
  };

  Atom<P, Node*>& bucket(std::int64_t key) {
    auto z = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    z ^= z >> 29;
    return table_[z & (len_ - 1)];
  }

  std::uint32_t len_;
  Atom<P, Node*>* table_;
  Atom<P, Node*> garbage_{};
};

}  // namespace pto
