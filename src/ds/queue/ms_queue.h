// Michael & Scott lock-free FIFO queue (PODC 1996) — the paper's reference
// [35], cited in §2.3 as a canonical user of double-checking ("implementations
// employ double-checking to ensure a consistent view of multiple memory
// locations"). Included as a further "simple application" of PTO beyond the
// paper's five structures:
//
//   enqueue: the lock-free path reads tail, double-checks it, swings
//            tail->next with a CAS and then the tail pointer with a second
//            CAS (plus the helper CAS when the tail lags). The prefix
//            transaction reads tail once — no double-check, no lagging-tail
//            state — and performs both link and tail swing as plain stores.
//   dequeue: the lock-free path double-checks (head, tail, head->next); the
//            transaction reads them once and swings head with a plain store.
//
// Exercised by abl_list (extension bench) and test_queue.
#pragma once

#include <cstdint>
#include <optional>

#include "core/prefix.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"
#include "telemetry/registry.h"

namespace pto {

template <class P>
class MSQueue {
 public:
  static constexpr PrefixPolicy kDefaultPolicy{4};

  struct Node {
    std::int64_t value;
    Atom<P, Node*> next;
  };

  struct ThreadCtx {
    explicit ThreadCtx(MSQueue& q) : epoch(q.dom_.register_thread()) {}
    typename EpochDomain<P>::Handle epoch;
    PrefixStats enq_stats, deq_stats;
  };

  MSQueue() {
    Node* dummy = P::template make<Node>();
    dummy->value = 0;
    dummy->next.init(nullptr);
    head_.init(dummy);
    tail_.init(dummy);
  }

  ~MSQueue() {
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      P::template destroy<Node>(n);
      n = nx;
    }
  }

  MSQueue(const MSQueue&) = delete;
  MSQueue& operator=(const MSQueue&) = delete;

  ThreadCtx make_ctx() { return ThreadCtx(*this); }

  // -- lock-free baseline ------------------------------------------------------

  void enqueue_lf(ThreadCtx& ctx, std::int64_t v) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* n = make_node(v);
    for (;;) {
      Node* tail = tail_.load();
      Node* next = tail->next.load();
      if (tail != tail_.load()) continue;  // the double-check of §2.3
      if (next != nullptr) {
        // Tail is lagging: help swing it, then retry.
        Node* expect = tail;
        tail_.compare_exchange_strong(expect, next);
        continue;
      }
      Node* expect_null = nullptr;
      if (tail->next.compare_exchange_strong(expect_null, n)) {
        Node* expect = tail;
        tail_.compare_exchange_strong(expect, n);  // may fail: helped
        return;
      }
    }
  }

  std::optional<std::int64_t> dequeue_lf(ThreadCtx& ctx) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    for (;;) {
      Node* head = head_.load();
      Node* tail = tail_.load();
      Node* next = head->next.load();
      if (head != head_.load()) continue;  // double-check
      if (head == tail) {
        if (next == nullptr) return std::nullopt;  // empty
        Node* expect = tail;
        tail_.compare_exchange_strong(expect, next);  // help lagging tail
        continue;
      }
      std::int64_t v = next->value;
      Node* expect = head;
      if (head_.compare_exchange_strong(expect, next)) {
        ctx.epoch.retire(head);
        return v;
      }
    }
  }

  // -- PTO ---------------------------------------------------------------------

  void enqueue_pto(ThreadCtx& ctx, std::int64_t v,
                   PrefixPolicy pol = kDefaultPolicy) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* n = make_node(v);
    bool done = prefix<P>(
        pol,
        [&]() -> bool {
          Node* tail = tail_.load(std::memory_order_relaxed);
          Node* next = tail->next.load(std::memory_order_relaxed);
          if (next != nullptr) {
            // A lagging tail means an enqueue is mid-flight: back off to
            // the helping fallback (§2.4).
            P::template tx_abort<TX_CODE_HELPING>();
          }
          tail->next.store(n, std::memory_order_relaxed);
          tail_.store(n);  // no lagging-tail intermediate state
          return true;
        },
        [&]() -> bool { return false; }, {&ctx.enq_stats, PTO_TELEMETRY_SITE("queue.enqueue")});
    if (!done) enqueue_with_node(ctx, n);
  }

  std::optional<std::int64_t> dequeue_pto(ThreadCtx& ctx,
                                          PrefixPolicy pol = kDefaultPolicy) {
    typename EpochDomain<P>::Guard g(ctx.epoch);
    Node* victim = nullptr;
    std::int64_t value = 0;
    // 1 = dequeued, 2 = empty, 0 = fall back.
    int r = prefix<P>(
        pol,
        [&]() -> int {
          Node* head = head_.load(std::memory_order_relaxed);
          Node* next = head->next.load(std::memory_order_relaxed);
          if (next == nullptr) return 2;
          // Keep the MS invariant tail >= head: if the tail still points at
          // the node we are about to retire, swing it forward in the same
          // transaction (the lock-free path does this with a helper CAS).
          if (tail_.load(std::memory_order_relaxed) == head) {
            tail_.store(next, std::memory_order_relaxed);
          }
          head_.store(next);
          victim = head;
          value = next->value;
          return 1;
        },
        [&]() -> int { return 0; }, {&ctx.deq_stats, PTO_TELEMETRY_SITE("queue.dequeue")});
    if (r == 1) {
      ctx.epoch.retire(victim);
      return value;
    }
    if (r == 2) return std::nullopt;
    return dequeue_lf_unguarded(ctx);
  }

  bool empty() {
    Node* head = head_.load(std::memory_order_relaxed);
    return head->next.load(std::memory_order_relaxed) == nullptr;
  }

  std::size_t size_slow() {
    std::size_t c = 0;
    for (Node* n = head_.load(std::memory_order_relaxed)
                       ->next.load(std::memory_order_relaxed);
         n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
      ++c;
    }
    return c;
  }

 private:
  Node* make_node(std::int64_t v) {
    Node* n = P::template make<Node>();
    n->value = v;
    n->next.init(nullptr);
    return n;
  }

  /// Lock-free enqueue of an already-allocated node (PTO fallback).
  void enqueue_with_node(ThreadCtx& ctx, Node* n) {
    (void)ctx;
    for (;;) {
      Node* tail = tail_.load();
      Node* next = tail->next.load();
      if (tail != tail_.load()) continue;
      if (next != nullptr) {
        Node* expect = tail;
        tail_.compare_exchange_strong(expect, next);
        continue;
      }
#ifdef PTO_SEEDED_BUGS
      // Deliberate defect (PTO_SEEDED_BUGS): publish the link with a blind
      // store instead of the CAS. Two fallback enqueues racing in the
      // load-next/store window both see next == nullptr; the second store
      // overwrites the first thread's already-linked node, silently dropping
      // it (and stranding tail_ on the lost branch, which swallows every
      // later enqueue that lands there). Only surfaces when an explored
      // schedule puts two threads in the fallback window together — the
      // exploration suite must find it as a conservation violation.
      tail->next.store(n);
      Node* expect = tail;
      tail_.compare_exchange_strong(expect, n);
      return;
#else
      Node* expect_null = nullptr;
      if (tail->next.compare_exchange_strong(expect_null, n)) {
        Node* expect = tail;
        tail_.compare_exchange_strong(expect, n);
        return;
      }
#endif
    }
  }

  std::optional<std::int64_t> dequeue_lf_unguarded(ThreadCtx& ctx) {
    for (;;) {
      Node* head = head_.load();
      Node* tail = tail_.load();
      Node* next = head->next.load();
      if (head != head_.load()) continue;
      if (head == tail) {
        if (next == nullptr) return std::nullopt;
        Node* expect = tail;
        tail_.compare_exchange_strong(expect, next);
        continue;
      }
      std::int64_t v = next->value;
      Node* expect = head;
      if (head_.compare_exchange_strong(expect, next)) {
        ctx.epoch.retire(head);
        return v;
      }
    }
  }

  EpochDomain<P> dom_;
  Atom<P, Node*> head_;
  Atom<P, Node*> tail_;
};

}  // namespace pto
