// Umbrella header: the whole PTO library.
//
//   #include "pto.h"
//
// pulls in the prefix-transaction core, both platforms (native + simulated),
// both reclamation schemes, the multi-word CAS substrate, and every data
// structure. Individual headers remain independently includable; prefer them
// in translation units that only need one structure.
#pragma once

#include "core/prefix.h"              // prefix(), PrefixPolicy, PrefixStats
#include "htm/htm.h"                  // native HTM facade (RTM / SoftHTM)
#include "htm/txcode.h"               // TX_STARTED, abort causes
#include "platform/native_platform.h" // NativePlatform
#include "platform/platform.h"        // Platform concept, Atom<P, T>
#include "platform/sim_platform.h"    // SimPlatform
#include "sim/sim.h"                  // the simulated multicore
#include "reclaim/epoch.h"            // EpochDomain
#include "reclaim/hazard.h"           // HazardDomain
#include "kcas/kcas.h"                // MCAS / DCAS / DCSS (+ PTO wrappers)

#include "ds/bst/ellen_bst.h"         // EllenBST: LF, PTO1, PTO2, PTO1+PTO2
#include "ds/hashtable/fset_hash.h"   // FSetHash: CoW, PTO, PTO+Inplace
#include "ds/list/harris_list.h"      // HarrisList: LF, PTO
#include "ds/mindicator/mindicator.h" // Mindicator: LF, PTO, TLE
#include "ds/mound/mound.h"           // Mound: LF, PTO (DCAS-local)
#include "ds/queue/ms_queue.h"        // MSQueue: LF, PTO
#include "ds/skiplist/skiplist.h"     // SkipList: LF, PTO
#include "ds/skiplist/skipqueue.h"    // SkipQueue: LF, PTO
#include "ds/ptoset/pto_array_set.h"  // PTOArraySet: the §5 PTO-first design
#include "ds/tle/tle.h"               // generic TLE + SeqHashSet
