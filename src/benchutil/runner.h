// Simulator bench runner: thread sweeps, trial averaging, and environment
// knobs shared by every figure binary.
//
//   PTO_BENCH_OPS    operations per virtual thread per trial (default 6000)
//   PTO_BENCH_TRIALS trials averaged per point (default 3; the sim is
//                    deterministic, so only the seeds differ between trials)
//   PTO_BENCH_MAXT   maximum thread count in sweeps (default 8, capped at
//                    the simulator limit of 1024 virtual threads)
//   PTO_BENCH_SWEEP  sweep density: "dense" (every count 1..MAXT, default)
//                    or "geom" (1, 2, 4, ... doubling, plus MAXT) — the only
//                    practical shape for MAXT in the hundreds, where a dense
//                    sweep is MAXT simulations per series
//
// With PTO_STATS=json|csv each measured point additionally emits a
// structured record (telemetry/emit.h) carrying the full abort/fallback
// breakdown alongside the throughput mean.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim.h"

namespace pto::bench {

struct RunnerOptions {
  std::uint64_t ops_per_thread = 6'000;
  unsigned trials = 3;  // deterministic sim: seeds differ, variance is tiny
  unsigned max_threads = 8;
  bool geometric_sweep = false;  // PTO_BENCH_SWEEP=geom
  std::uint64_t base_seed = 42;

  /// Apply PTO_BENCH_* environment overrides.
  static RunnerOptions from_env();
};

/// Thread counts for a sweep: 1..max_threads dense, or doubling
/// (1, 2, 4, ..., plus max_threads itself) when geometric_sweep is set.
std::vector<int> sweep_threads(const RunnerOptions& opts);

/// One measured point: run `body(tid, ops)` on `threads` virtual threads for
/// each trial (distinct seeds) and return mean throughput in ops/ms.
/// `make_fixture` runs before each trial (single-threaded, on the host) and
/// returns a callable executed per virtual thread.
///
/// When `bench`/`series` labels are given and PTO_STATS is active, the point
/// also emits a structured telemetry record.
double measure_point(
    const RunnerOptions& opts, unsigned threads, const sim::Config& base_cfg,
    const std::function<std::function<void(unsigned, std::uint64_t)>()>&
        make_fixture,
    const char* bench = nullptr, const char* series = nullptr);

}  // namespace pto::bench
