// Simulator bench runner: thread sweeps, trial averaging, and environment
// knobs shared by every figure binary.
//
//   PTO_BENCH_OPS    operations per virtual thread per trial (default 20000)
//   PTO_BENCH_TRIALS trials averaged per point (default 5, as in the paper)
//   PTO_BENCH_MAXT   maximum thread count in sweeps (default 8)
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim.h"

namespace pto::bench {

struct RunnerOptions {
  std::uint64_t ops_per_thread = 6'000;
  unsigned trials = 3;  // deterministic sim: seeds differ, variance is tiny
  unsigned max_threads = 8;
  std::uint64_t base_seed = 42;

  /// Apply PTO_BENCH_* environment overrides.
  static RunnerOptions from_env();
};

/// Thread counts 1..max_threads.
std::vector<int> sweep_threads(const RunnerOptions& opts);

/// One measured point: run `body(tid, ops)` on `threads` virtual threads for
/// each trial (distinct seeds) and return mean throughput in ops/ms.
/// `make_fixture` runs before each trial (single-threaded, on the host) and
/// returns a callable executed per virtual thread.
double measure_point(
    const RunnerOptions& opts, unsigned threads, const sim::Config& base_cfg,
    const std::function<std::function<void(unsigned, std::uint64_t)>()>&
        make_fixture);

}  // namespace pto::bench
