// Figure/series plumbing for the reproduction benches: each bench binary
// builds a Figure (x = thread count, one Series per algorithm variant),
// prints it as an aligned table, and writes a CSV next to the binary.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pto::bench {

struct Series {
  std::string name;
  std::vector<double> y;
};

struct Figure {
  std::string id;     ///< e.g. "fig2a"
  std::string title;  ///< e.g. "Mindicator Microbenchmark"
  std::string ylabel = "Throughput (ops/ms)";
  std::vector<int> xs;  ///< thread counts
  std::vector<Series> series;

  Series& add_series(std::string name);
  const Series* find(const std::string& name) const;

  /// Aligned human-readable table.
  void print(std::ostream& os) const;
  /// CSV: header "threads,<name>,..." then one row per x.
  void write_csv(const std::string& path) const;

  /// Ratio series[a]/series[b] at thread count x (for shape checks).
  double ratio_at(const std::string& a, const std::string& b, int x) const;
};

/// Prints "  [shape] <label>: <value> (paper: <paper_claim>)" — the per-figure
/// qualitative checks recorded in EXPERIMENTS.md.
void shape_note(std::ostream& os, const std::string& label, double value,
                const std::string& paper_claim);

}  // namespace pto::bench
