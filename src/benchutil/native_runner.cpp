#include "benchutil/native_runner.h"

#include <atomic>
#include <thread>
#include <vector>

#include "htm/htm.h"
#include "metrics/metrics.h"
#include "obs/obs.h"
#include "obs/perf_counters.h"
#include "obs/tsc.h"
#include "telemetry/emit.h"
#include "telemetry/registry.h"

namespace pto::bench {

namespace {

/// One trial: barrier-start `threads` real threads over `body`, return the
/// wall-clock makespan in nanoseconds (start release -> last join).
std::uint64_t run_trial(
    unsigned threads, std::uint64_t ops,
    const std::function<void(unsigned, std::uint64_t)>& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  ts.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
      }
      body(t, ops);
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
  }
  const std::uint64_t t0 = obs::steady_ns();
  go.store(true, std::memory_order_release);
  for (auto& th : ts) th.join();
  return obs::steady_ns() - t0;
}

}  // namespace

double native_measure_point(
    const RunnerOptions& opts, unsigned threads,
    const std::function<std::function<void(unsigned, std::uint64_t)>()>&
        make_fixture,
    const char* bench, const char* series, const SectionRunner& section) {
  // Pin backend selection before any worker thread can race the probe.
  (void)htm::backend();
  const bool emit =
      telemetry::stats_format() != telemetry::StatsFormat::kOff &&
      bench != nullptr;
  PrefixStats reg_before;
  const std::string ts_start = telemetry::iso8601_now();
  if (emit) reg_before = telemetry::registry_totals();
  if (obs::hist_on()) obs::reset_latency();
  const obs::PerfSample perf_before = obs::perf_read();
  // Arm the wall-clock metrics sampler after the obs reset so this point's
  // interval deltas re-baseline at zero samples.
  const std::uint64_t intervals_before = metrics::intervals_emitted();
  metrics::set_point_labels(bench, series, threads);
  metrics::native_point_begin();

  double best = 0.0;
  for (unsigned trial = 0; trial < opts.trials; ++trial) {
    auto body = make_fixture();
    const std::uint64_t ns =
        section ? section([&body, &opts](unsigned tid) {
                    body(tid, opts.ops_per_thread);
                  })
                : run_trial(threads, opts.ops_per_thread, body);
    const double total_ops =
        static_cast<double>(opts.ops_per_thread) * threads;
    const double ops_per_ms = ns == 0 ? 0.0 : total_ops * 1e6 /
                                                  static_cast<double>(ns);
    if (ops_per_ms > best) best = ops_per_ms;
  }
  // Stops the sampler and emits the trailing partial interval, so the sum
  // of this point's interval deltas equals its end-of-run aggregates.
  metrics::native_point_end();

  if (emit) {
    telemetry::BenchPoint pt;
    pt.bench = bench;
    pt.series = series != nullptr ? series : "";
    pt.threads = threads;
    pt.trials = opts.trials;
    pt.ops_per_ms = best;
    pt.sim.ops_completed =
        opts.ops_per_thread * threads * opts.trials;  // summed over trials
    pt.prefix = telemetry::registry_delta(reg_before);
    if (obs::hist_on()) {
      const obs::MergedLatency merged = obs::merged_latency(&pt.lat_sites);
      pt.lat = merged.all;
      pt.lat_fast = merged.fast;
      pt.lat_fallback = merged.fallback;
    }
    pt.perf = obs::perf_delta(perf_before, obs::perf_read());
    pt.ts_start = ts_start;
    pt.ts_end = telemetry::iso8601_now();
    pt.intervals = metrics::intervals_emitted() - intervals_before;
    telemetry::emit_bench_point(pt);
  }
  return best;
}

}  // namespace pto::bench
