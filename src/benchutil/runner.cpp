#include "benchutil/runner.h"

#include <cstdlib>
#include <cstring>

#include "common/warn.h"
#include "explore/explore.h"
#include "metrics/metrics.h"
#include "telemetry/emit.h"
#include "telemetry/prof.h"
#include "telemetry/registry.h"

namespace pto::bench {

namespace {
std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr) return dflt;
  char* end = nullptr;
  auto parsed = std::strtoull(v, &end, 10);
  if (end != v && *end == '\0' && parsed > 0) return parsed;
  // A malformed or zero knob silently reverting to the default makes sweep
  // misconfigurations invisible; warn once per variable.
  warn_once(name,
            "ignoring invalid %s='%s' (want a positive integer); using "
            "default %llu",
            name, v, static_cast<unsigned long long>(dflt));
  return dflt;
}
}  // namespace

RunnerOptions RunnerOptions::from_env() {
  RunnerOptions o;
  o.ops_per_thread = env_u64("PTO_BENCH_OPS", o.ops_per_thread);
  o.trials = static_cast<unsigned>(env_u64("PTO_BENCH_TRIALS", o.trials));
  o.max_threads =
      static_cast<unsigned>(env_u64("PTO_BENCH_MAXT", o.max_threads));
  if (o.max_threads > kMaxThreads) {
    // Passing the clamped value on to sim::run would throw mid-sweep; clamp
    // here with a warning so a fat-fingered sweep still produces data.
    warn_once("env.PTO_BENCH_MAXT.clamp",
              "PTO_BENCH_MAXT=%u exceeds the simulator limit of %u virtual "
              "threads; clamping to %u",
              o.max_threads, kMaxThreads, kMaxThreads);
    o.max_threads = kMaxThreads;
  }
  if (const char* v = std::getenv("PTO_BENCH_SWEEP");
      v != nullptr && *v != '\0') {
    if (std::strcmp(v, "geom") == 0) {
      o.geometric_sweep = true;
    } else if (std::strcmp(v, "dense") != 0) {
      warn_once("env.PTO_BENCH_SWEEP",
                "ignoring invalid PTO_BENCH_SWEEP='%s' (want dense|geom); "
                "using dense",
                v);
    }
  }
  return o;
}

std::vector<int> sweep_threads(const RunnerOptions& opts) {
  std::vector<int> xs;
  if (opts.geometric_sweep) {
    for (unsigned t = 1; t <= opts.max_threads; t *= 2) {
      xs.push_back(static_cast<int>(t));
    }
    if (xs.empty() || xs.back() != static_cast<int>(opts.max_threads)) {
      xs.push_back(static_cast<int>(opts.max_threads));
    }
    return xs;
  }
  for (unsigned t = 1; t <= opts.max_threads; ++t) xs.push_back(static_cast<int>(t));
  return xs;
}

double measure_point(
    const RunnerOptions& opts, unsigned threads, const sim::Config& base_cfg,
    const std::function<std::function<void(unsigned, std::uint64_t)>()>&
        make_fixture,
    const char* bench, const char* series) {
  const bool emit =
      telemetry::stats_format() != telemetry::StatsFormat::kOff &&
      bench != nullptr;
  if (telemetry::prof::on() && bench != nullptr) {
    std::string scope = bench;
    if (series != nullptr && *series != '\0') {
      scope += '/';
      scope += series;
    }
    telemetry::prof::set_scope(scope);
  }
  telemetry::BenchPoint pt;
  PrefixStats reg_before;
  if (emit) {
    reg_before = telemetry::registry_totals();
    pt.ts_start = telemetry::iso8601_now();
  }
  const std::uint64_t intervals_before = metrics::intervals_emitted();
  metrics::set_point_labels(bench, series, threads);
  double sum = 0.0;
  // Resolve the exploration policy once per point: each trial then derives
  // its own schedule seed from the resolved base, the same way workload
  // seeds are derived — multi-trial sweeps under PTO_SCHED=pct/rand stay a
  // pure function of (options, env) while every trial explores a distinct
  // interleaving.
  const explore::Options xbase = explore::resolved(base_cfg.explore);
  for (unsigned trial = 0; trial < opts.trials; ++trial) {
    sim::Config cfg = base_cfg;
    cfg.seed = opts.base_seed + 1000003ull * trial + threads;
    cfg.explore = xbase;
    if (xbase.policy == explore::Policy::kPCT ||
        xbase.policy == explore::Policy::kRandom) {
      cfg.explore.seed =
          explore::derive_seed(xbase.seed, 1000003ull * trial + threads);
    }
    auto body = make_fixture();
    auto res = sim::run(threads, cfg, [&](unsigned tid) {
      body(tid, opts.ops_per_thread);
    });
    sum += res.ops_per_msec();
    if (emit) {
      pt.sim.accumulate(res.totals());
      pt.makespan += res.makespan();
      for (auto c : res.clocks) pt.cpu_cycles += c;
    }
  }
  const double mean = sum / opts.trials;
  if (emit) {
    pt.bench = bench;
    pt.series = series != nullptr ? series : "";
    pt.threads = threads;
    pt.trials = opts.trials;
    pt.ops_per_ms = mean;
    pt.prefix = telemetry::registry_delta(reg_before);
    pt.ts_end = telemetry::iso8601_now();
    pt.intervals = metrics::intervals_emitted() - intervals_before;
    telemetry::emit_bench_point(pt);
  }
  return mean;
}

}  // namespace pto::bench
