#include "benchutil/series.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace pto::bench {

Series& Figure::add_series(std::string name) {
  series.push_back(Series{std::move(name), {}});
  return series.back();
}

const Series* Figure::find(const std::string& name) const {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void Figure::print(std::ostream& os) const {
  os << "== " << id << ": " << title << " (" << ylabel << ") ==\n";
  os << std::left << std::setw(10) << "threads";
  for (const auto& s : series) os << std::right << std::setw(18) << s.name;
  os << "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << std::left << std::setw(10) << xs[i];
    for (const auto& s : series) {
      os << std::right << std::setw(18) << std::fixed << std::setprecision(1)
         << (i < s.y.size() ? s.y[i] : 0.0);
    }
    os << "\n";
  }
  os.flush();
}

void Figure::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return;
  f << "threads";
  for (const auto& s : series) f << "," << s.name;
  f << "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    f << xs[i];
    for (const auto& s : series) {
      f << "," << (i < s.y.size() ? s.y[i] : 0.0);
    }
    f << "\n";
  }
}

double Figure::ratio_at(const std::string& a, const std::string& b,
                        int x) const {
  const Series* sa = find(a);
  const Series* sb = find(b);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == x && sa && sb && i < sa->y.size() && i < sb->y.size() &&
        sb->y[i] != 0.0) {
      return sa->y[i] / sb->y[i];
    }
  }
  throw std::out_of_range("Figure::ratio_at: series or x not found");
}

void shape_note(std::ostream& os, const std::string& label, double value,
                const std::string& paper_claim) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", value);
  os << "  [shape] " << label << ": " << buf << "  (paper: " << paper_claim
     << ")\n";
}

}  // namespace pto::bench
