// Native (std::thread) bench runner: the real-hardware counterpart of
// benchutil/runner.h's simulator sweeps, and the reporting surface for the
// pto::obs stack. Reuses the same RunnerOptions / PTO_BENCH_* knobs.
//
// Differences from the simulator runner, both deliberate:
//   * Throughput is wall-clock (steady_clock around a start-barrier'd
//     parallel section), and the reported figure is the BEST trial, not the
//     mean — native runs share the machine with the OS, and best-of is the
//     standard de-noising for small trial counts (the per-trial spread is
//     visible in the latency histograms instead).
//   * With PTO_OBS=1, per-op latency percentiles (recorded by the fixture
//     through obs::OpTimer) are merged per point and attached to the emitted
//     BenchPoint; with PTO_PERF=1, hardware counters are sampled around the
//     point. Histograms are reset at each point boundary.
#pragma once

#include <functional>

#include "benchutil/runner.h"

namespace pto::bench {

/// Custom parallel-section executor: run body(tid) once on each of the
/// point's threads and return the wall-clock makespan in nanoseconds.
/// Callers with a persistent pool (pto::service::Runtime keeps pinned workers
/// parked between trials) pass one of these instead of the default
/// spawn-per-trial threads.
using SectionRunner =
    std::function<std::uint64_t(const std::function<void(unsigned)>&)>;

/// One measured native point: run `body(tid, ops)` on `threads` real threads
/// per trial, return best-trial throughput in ops/ms. `make_fixture` runs
/// before each trial on the calling thread and returns the per-thread body
/// (which records per-op latency itself via obs::OpTimer when armed).
///
/// When `bench` is given and PTO_STATS is active, emits a structured record
/// with the registry delta, latency summaries, and perf counters.
///
/// `section`, when non-empty, replaces the built-in spawn-and-barrier trial
/// executor; it must run the body on exactly `threads` workers.
double native_measure_point(
    const RunnerOptions& opts, unsigned threads,
    const std::function<std::function<void(unsigned, std::uint64_t)>()>&
        make_fixture,
    const char* bench = nullptr, const char* series = nullptr,
    const SectionRunner& section = {});

}  // namespace pto::bench
