// Zipfian key generator for skewed-workload ablations. Uses the classic
// rejection-inversion-free approximation (Gray et al., SIGMOD'94 "quickly
// generating billion-record synthetic databases"): precomputed harmonic
// normalization + inverse CDF by table lookup on a coarse grid, refined by a
// short scan — fast enough for benchmark inner loops, deterministic given a
// SplitMix64 stream.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pto::bench {

class ZipfGenerator {
 public:
  /// Keys 0..n-1 with P(k) proportional to 1/(k+1)^theta. theta = 0 is
  /// uniform; 0.99 is the YCSB default "zipfian".
  ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    cdf_.reserve(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_.push_back(sum);
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::uint64_t next(SplitMix64& rng) const {
    double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    // Binary search the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<std::uint64_t>(lo);
  }

  std::uint64_t range() const { return n_; }
  double theta() const { return theta_; }

  /// Exact probability of key k under the normalized distribution — the
  /// analytic reference the loadgen chi-square tests compare sampled
  /// frequencies against.
  double pmf(std::uint64_t k) const {
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace pto::bench
