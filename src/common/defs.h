// Basic project-wide definitions: cache-line geometry, thread limits,
// branch hints, and small utilities shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cassert>

namespace pto {

/// Cache-line size assumed by both the native padding helpers and the
/// simulator's line-granular conflict detection.
inline constexpr std::size_t kCacheLine = 64;

/// Maximum number of threads (native) or virtual threads (simulator) that may
/// concurrently use a single data-structure instance. The simulator's per-line
/// conflict tracking uses fixed-capacity ThreadSet bitsets (common/threadset.h)
/// of this many bits; the packed dispatcher keys reserve 10 bits for the tid.
inline constexpr unsigned kMaxThreads = 1024;

/// 64-bit words in a kMaxThreads-wide ThreadSet.
inline constexpr unsigned kThreadWords = (kMaxThreads + 63) / 64;

#if defined(__GNUC__) || defined(__clang__)
#define PTO_LIKELY(x) __builtin_expect(!!(x), 1)
#define PTO_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define PTO_NOINLINE __attribute__((noinline))
#else
#define PTO_LIKELY(x) (x)
#define PTO_UNLIKELY(x) (x)
#define PTO_NOINLINE
#endif

/// Alignment wrapper that gives a value its own cache line, preventing false
/// sharing between per-thread slots.
template <class T>
struct alignas(kCacheLine) CacheAligned {
  T value{};
};

}  // namespace pto
