// Widening/narrowing between arbitrary trivially-copyable values (<= 8 bytes)
// and uint64_t, used by the type-erased memory hooks.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pto {

template <class T>
constexpr void assert_word_like() {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "instrumented atomics require trivially copyable T <= 8 bytes");
}

template <class T>
inline std::uint64_t widen(T v) {
  assert_word_like<T>();
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(T));
  return out;
}

template <class T>
inline T narrow(std::uint64_t v) {
  assert_word_like<T>();
  T out;
  std::memcpy(&out, &v, sizeof(T));
  return out;
}

}  // namespace pto
