// Deterministic, allocation-free PRNGs used by workloads and the simulator.
// std::mt19937 is avoided in hot paths; SplitMix64 is enough for workload
// key selection and scheduler tie-breaking, and keeps runs reproducible.
#pragma once

#include <cstdint>

namespace pto {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator. Used to seed
/// and to generate workload keys. Deterministic for a given seed.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return next() % bound;
  }

  /// Uniform value in [0, 100) — convenient for percentage mixes.
  constexpr unsigned next_percent() {
    return static_cast<unsigned>(next() % 100u);
  }

  constexpr void reseed(std::uint64_t seed) { state_ = seed; }

 private:
  std::uint64_t state_;
};

}  // namespace pto
