// pto::warn_once — one rate-limited diagnostic channel for the whole runtime.
//
// Every subsystem used to hand-roll the same "static bool warned" fprintf
// pattern; this consolidates them. A *key* names a warning class
// ("env.PTO_SIM_STACK_KB", "registry.slot_overflow", ...): the first call
// with a given key formats and prints "[pto] warning: <msg>\n" to stderr,
// later calls with the same key are dropped (the drop count is kept so the
// process-exit line can say how noisy a suppressed class was).
//
// When pto::metrics is armed the message is additionally forwarded — once,
// like the stderr line — to the metrics NDJSON stream as a structured
// {"type":"warning"} event via the registered sink, so warnings land in the
// same time-ordered record stream operators are already watching. The sink
// indirection keeps common/ free of any dependency on metrics/.
//
// Callable from any thread (host or fiber); never allocates on the fast
// (already-warned) path beyond the key lookup, never charges virtual cycles.
#pragma once

#include <cstdint>

namespace pto {

#if defined(__GNUC__) || defined(__clang__)
#define PTO_PRINTF_ATTR(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define PTO_PRINTF_ATTR(fmt_idx, arg_idx)
#endif

/// Print `fmt` (printf-style) to stderr, at most once per `key` for the
/// process lifetime. Returns true when this call actually printed.
bool warn_once(const char* key, const char* fmt, ...) PTO_PRINTF_ATTR(2, 3);

/// Times warn_once(key, ...) was called (including suppressed calls);
/// 0 if never. Tests and the metrics watchdog read this.
std::uint64_t warn_count(const char* key);

/// Structured-event sink: receives (key, formatted message) for each warning
/// that actually printed. Set by pto::metrics at arm time; nullptr disables.
using WarnSink = void (*)(const char* key, const char* msg);
void set_warn_sink(WarnSink sink);

}  // namespace pto
