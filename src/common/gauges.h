// Process-wide instantaneous gauges, readable by pto::metrics and the
// watchdog without creating a dependency from the owning subsystem onto
// metrics/. Gauges are host atomics: bumping one never charges virtual
// cycles, so arming metrics cannot perturb a simulated schedule.
#pragma once

#include <atomic>
#include <cstdint>

namespace pto::gauges {

/// Nodes retired to an epoch-reclamation domain and not yet freed, summed
/// over every EpochDomain in the process (reclaim/epoch.h bumps this on
/// retire and drops it as deferred frees run). The `reclaim_backlog`
/// watchdog rule fires on this.
inline std::atomic<std::int64_t>& reclaim_backlog() {
  static std::atomic<std::int64_t> g{0};
  return g;
}

}  // namespace pto::gauges
