// Build provenance baked in at configure time (src/CMakeLists.txt), so every
// structured bench record is a reproducible artifact: which commit, which
// optimization level, which fiber backend produced it.
#pragma once

namespace pto {

inline const char* build_git_sha() {
#ifdef PTO_GIT_SHA
  return PTO_GIT_SHA;
#else
  return "unknown";
#endif
}

inline const char* build_type() {
#ifdef PTO_BUILD_TYPE
  return PTO_BUILD_TYPE;
#else
  return "unknown";
#endif
}

inline const char* fiber_backend() {
#ifdef PTO_FAST_FIBER
  return "fast_fiber";
#else
  return "ucontext";
#endif
}

}  // namespace pto
