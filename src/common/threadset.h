// Fixed-capacity set of thread ids, the successor of the simulator's single
// uint64_t per-line bitmasks. Storage is always kThreadWords words; every
// operation that must scan takes the *active* word count `nw` (derived from
// the run's thread count), so a run with <= 64 threads executes exactly the
// old single-word sequence — same loads, same branches — which is what keeps
// simulated cycles byte-identical to the pre-ThreadSet simulator.
//
// Iteration order is ascending tid (per-word tzcnt, words low to high),
// matching the old `ctzll / clear-lowest` loops bit for bit.
#pragma once

#include <cstdint>

#include "common/defs.h"

namespace pto {

struct ThreadSet {
  std::uint64_t w[kThreadWords] = {};

  static std::uint64_t bit_of(unsigned tid) {
    return std::uint64_t{1} << (tid & 63);
  }
  static unsigned word_of(unsigned tid) { return tid >> 6; }

  bool test(unsigned tid) const { return (w[word_of(tid)] & bit_of(tid)) != 0; }
  void set(unsigned tid) { w[word_of(tid)] |= bit_of(tid); }
  void clear(unsigned tid) { w[word_of(tid)] &= ~bit_of(tid); }

  /// Zero the first `nw` words (the only ones a run of <= nw*64 threads can
  /// have populated since the last full reset).
  void reset(unsigned nw) {
    for (unsigned i = 0; i < nw; ++i) w[i] = 0;
  }

  /// The old `mask = bit(tid)` exclusive-take: only `tid` remains set.
  void assign_single(unsigned tid, unsigned nw) {
    reset(nw);
    set(tid);
  }

  bool empty(unsigned nw) const {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < nw; ++i) acc |= w[i];
    return acc == 0;
  }

  /// The old `mask & ~bit(tid)` test: any member besides `tid`?
  bool any_other(unsigned tid, unsigned nw) const {
    const unsigned wi = word_of(tid);
    std::uint64_t acc = w[wi] & ~bit_of(tid);
    for (unsigned i = 0; i < nw; ++i) {
      if (i != wi) acc |= w[i];
    }
    return acc != 0;
  }

  unsigned popcount(unsigned nw) const {
    unsigned n = 0;
    for (unsigned i = 0; i < nw; ++i) {
      n += static_cast<unsigned>(__builtin_popcountll(w[i]));
    }
    return n;
  }

  /// Lowest member; undefined when empty (callers assert non-empty).
  unsigned first(unsigned nw) const {
    for (unsigned i = 0; i < nw; ++i) {
      if (w[i] != 0) {
        return i * 64 + static_cast<unsigned>(__builtin_ctzll(w[i]));
      }
    }
    return kMaxThreads;
  }

  /// Members {0, ..., n-1}; words past the span are zeroed up to `nw`.
  void set_first_n(unsigned n, unsigned nw) {
    reset(nw);
    unsigned full = n >> 6;
    for (unsigned i = 0; i < full; ++i) w[i] = ~std::uint64_t{0};
    if ((n & 63) != 0) w[full] = (std::uint64_t{1} << (n & 63)) - 1;
  }

  /// Visit every member in ascending order. The callback must not mutate
  /// this set's membership for tids not yet visited in the current word —
  /// each word is snapshotted before iterating it (the doom() loops rely on
  /// exactly this snapshot-then-doom semantics).
  template <class F>
  void for_each(unsigned nw, F&& f) const {
    for (unsigned i = 0; i < nw; ++i) {
      std::uint64_t m = w[i];
      while (m != 0) {
        f(i * 64 + static_cast<unsigned>(__builtin_ctzll(m)));
        m &= m - 1;
      }
    }
  }

  /// Visit every member except `self`, ascending (the victims loops).
  template <class F>
  void for_each_other(unsigned self, unsigned nw, F&& f) const {
    const unsigned wi = word_of(self);
    for (unsigned i = 0; i < nw; ++i) {
      std::uint64_t m = w[i];
      if (i == wi) m &= ~bit_of(self);
      while (m != 0) {
        f(i * 64 + static_cast<unsigned>(__builtin_ctzll(m)));
        m &= m - 1;
      }
    }
  }
};

}  // namespace pto
