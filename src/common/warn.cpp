#include "common/warn.h"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace pto {

namespace {

struct WarnState {
  std::mutex mu;
  std::map<std::string, std::uint64_t> counts;  ///< key -> call count
  WarnSink sink = nullptr;
};

// Leaked intentionally: warnings can fire from atexit handlers and detached
// threads after static destructors would have run.
WarnState& state() {
  static WarnState* s = new WarnState();
  return *s;
}

}  // namespace

bool warn_once(const char* key, const char* fmt, ...) {
  char buf[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);

  WarnSink sink = nullptr;
  {
    WarnState& st = state();
    std::lock_guard<std::mutex> lk(st.mu);
    if (++st.counts[key] != 1) return false;
    sink = st.sink;
  }
  std::fprintf(stderr, "[pto] warning: %s\n", buf);
  // Sink call happens outside the lock: the metrics sink takes its own lock
  // and must be free to call back into warn_count().
  if (sink != nullptr) sink(key, buf);
  return true;
}

std::uint64_t warn_count(const char* key) {
  WarnState& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  auto it = st.counts.find(key);
  return it == st.counts.end() ? 0 : it->second;
}

void set_warn_sink(WarnSink sink) {
  WarnState& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  st.sink = sink;
}

}  // namespace pto
