// Lock-free multi-word compare-and-swap, after Harris, Fraser & Pratt
// ("A Practical Multi-word Compare-and-Swap Operation", DISC 2002) — the
// paper's substrate for the Mound's DCAS/DCSS operations, and the target of
// the "apply PTO locally to a sub-operation" experiments (Fig 2(b), 5(b)).
//
// Words managed here are 64-bit cells whose *user* values must keep their low
// two bits zero (pointers to >=4-byte-aligned objects, or integers shifted
// left by 2). The low bits tag in-flight descriptors:
//   ..01  RDCSS descriptor (restricted double-compare single-swap)
//   ..10  MCAS descriptor
//
// Algorithm sketch:
//   rdcss(d):   install d into the data word if it holds d->o2 (helping any
//               descriptor found there), then complete(d): if *a1 == o1 swap
//               in n2 else restore o2. The decision is recorded once in
//               d->outcome so all helpers agree.
//   mcas(d):    phase 1 installs d into every word via rdcss with control
//               word = d->status (install only while UNDECIDED); then CAS
//               status UNDECIDED -> SUCCESS/FAILED; phase 2 replaces d with
//               the new (or old) values. Entries are sorted by address for
//               lock-freedom.
//
// Descriptors are recycled through per-thread Pools after an epoch grace
// period (retire_custom), reproducing the Mound's "descriptors are reused"
// behavior: steady-state DCAS costs no allocator traffic.
//
// PTO acceleration (pto_mcas / pto_dcss): a prefix transaction re-reads the
// words; if any holds a descriptor it aborts explicitly (§2.4, avoid
// helping), otherwise it performs the multi-word update with plain stores —
// replacing up to 3k+1 CASes with one transaction.
//
// Concurrency preconditions: callers must hold an epoch Guard for the domain
// passed at construction whenever they may dereference descriptors (all the
// sw paths); PTO fast paths are protected by strong atomicity or by the
// caller's FallbackGuard (see reclaim/epoch.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/prefix.h"
#include "platform/platform.h"
#include "reclaim/epoch.h"
#include "telemetry/registry.h"

namespace pto::kcas {

inline constexpr unsigned kMaxK = 4;

inline constexpr std::uint64_t kTagMask = 3;
inline constexpr std::uint64_t kRdcssTag = 1;
inline constexpr std::uint64_t kMcasTag = 2;

inline bool is_rdcss(std::uint64_t v) { return (v & kTagMask) == kRdcssTag; }
inline bool is_mcas(std::uint64_t v) { return (v & kTagMask) == kMcasTag; }
inline bool is_clean(std::uint64_t v) { return (v & kTagMask) == 0; }

enum McasStatus : std::uint64_t {
  kUndecided = 0,
  kSuccess = 1,
  kFailed = 2,
};

enum RdcssOutcome : std::uint64_t {
  kPending = 0,
  kTook = 1,     ///< control matched; n2 installed
  kRestored = 2  ///< control mismatched; o2 restored
};

template <class P>
using Word = Atom<P, std::uint64_t>;

template <class P>
struct Entry {
  Word<P>* addr;
  std::uint64_t exp;
  std::uint64_t des;
};

template <class P>
struct RdcssDesc {
  Word<P>* a1;  ///< control address (read-only)
  std::uint64_t o1;
  Word<P>* a2;  ///< data address (swapped)
  std::uint64_t o2;
  std::uint64_t n2;
  Atom<P, std::uint64_t> outcome;  ///< first completer's decision wins
};

template <class P>
struct McasDesc {
  Atom<P, std::uint64_t> status;
  unsigned k = 0;
  Entry<P> e[kMaxK];  ///< immutable once the descriptor is published
};

/// Per-thread descriptor cache. Descriptors come back via epoch-deferred
/// recycle, so a pooled descriptor is never still referenced by a helper.
template <class P>
struct Pools {
  std::vector<RdcssDesc<P>*> rdcss;
  std::vector<McasDesc<P>*> mcas;

  ~Pools() {
    for (auto* d : rdcss) P::template destroy<RdcssDesc<P>>(d);
    for (auto* d : mcas) P::template destroy<McasDesc<P>>(d);
  }

  RdcssDesc<P>* get_rdcss() {
    if (rdcss.empty()) return P::template make<RdcssDesc<P>>();
    auto* d = rdcss.back();
    rdcss.pop_back();
    return d;
  }
  McasDesc<P>* get_mcas() {
    if (mcas.empty()) return P::template make<McasDesc<P>>();
    auto* d = mcas.back();
    mcas.pop_back();
    return d;
  }

  static void recycle_rdcss(void* p, void* pool) {
    if (pool == nullptr) {
      P::template destroy<RdcssDesc<P>>(static_cast<RdcssDesc<P>*>(p));
      return;
    }
    static_cast<Pools*>(pool)->rdcss.push_back(static_cast<RdcssDesc<P>*>(p));
  }
  static void recycle_mcas(void* p, void* pool) {
    if (pool == nullptr) {
      P::template destroy<McasDesc<P>>(static_cast<McasDesc<P>*>(p));
      return;
    }
    static_cast<Pools*>(pool)->mcas.push_back(static_cast<McasDesc<P>*>(p));
  }
};

/// Everything a thread needs to run kcas operations: its epoch handle and
/// descriptor pools. Data-structure ThreadCtx types embed one of these.
template <class P>
struct Ctx {
  explicit Ctx(EpochDomain<P>& dom) : epoch(dom.register_thread()) {}
  typename EpochDomain<P>::Handle epoch;
  Pools<P> pools;
};

namespace detail {

template <class P>
std::uint64_t rdcss_tagged(RdcssDesc<P>* d) {
  return reinterpret_cast<std::uint64_t>(d) | kRdcssTag;
}
template <class P>
std::uint64_t mcas_tagged(McasDesc<P>* d) {
  return reinterpret_cast<std::uint64_t>(d) | kMcasTag;
}
template <class P>
RdcssDesc<P>* rdcss_ptr(std::uint64_t v) {
  return reinterpret_cast<RdcssDesc<P>*>(v & ~kTagMask);
}
template <class P>
McasDesc<P>* mcas_ptr(std::uint64_t v) {
  return reinterpret_cast<McasDesc<P>*>(v & ~kTagMask);
}

/// Finish an RDCSS whose descriptor is installed in d->a2. All helpers agree
/// on the decision via d->outcome.
template <class P>
void complete(RdcssDesc<P>* d) {
  std::uint64_t control = d->a1->load(std::memory_order_acquire);
  std::uint64_t decision = (control == d->o1) ? kTook : kRestored;
  std::uint64_t expected = kPending;
  d->outcome.compare_exchange_strong(expected, decision);
  decision = d->outcome.load(std::memory_order_acquire);
  std::uint64_t expect_tag = rdcss_tagged(d);
  d->a2->compare_exchange_strong(expect_tag,
                                 decision == kTook ? d->n2 : d->o2);
}

template <class P>
void help_mcas(Ctx<P>& ctx, McasDesc<P>* d);

/// Run the RDCSS described by (a1,o1,a2,o2,n2) using a pooled descriptor.
/// Returns the clean (or foreign-mcas) value observed in a2: o2 means the
/// RDCSS took effect (check `outcome` for the control comparison result).
template <class P>
std::uint64_t rdcss(Ctx<P>& ctx, Word<P>* a1, std::uint64_t o1, Word<P>* a2,
                    std::uint64_t o2, std::uint64_t n2,
                    std::uint64_t* outcome) {
  RdcssDesc<P>* d = ctx.pools.get_rdcss();
  d->a1 = a1;
  d->o1 = o1;
  d->a2 = a2;
  d->o2 = o2;
  d->n2 = n2;
  d->outcome.store(kPending, std::memory_order_relaxed);
  const std::uint64_t tagged = rdcss_tagged(d);
  for (;;) {
    std::uint64_t expect = o2;
    if (a2->compare_exchange_strong(expect, tagged)) {
      complete(d);
      std::uint64_t out = d->outcome.load(std::memory_order_acquire);
      if (outcome) *outcome = out;
      ctx.epoch.retire_custom(d, &Pools<P>::recycle_rdcss, &ctx.pools);
      return o2;
    }
    if (is_rdcss(expect)) {
      complete(rdcss_ptr<P>(expect));
      continue;
    }
    // Clean mismatch or a foreign MCAS descriptor: the RDCSS did not install.
    if (outcome) *outcome = kRestored;
    ctx.pools.rdcss.push_back(d);  // never published: reuse immediately
    return expect;
  }
}

template <class P>
void help_mcas(Ctx<P>& ctx, McasDesc<P>* d) {
  const std::uint64_t me = mcas_tagged(d);
  if (d->status.load(std::memory_order_acquire) == kUndecided) {
    std::uint64_t desired = kSuccess;
    for (unsigned i = 0; i < d->k && desired == kSuccess; ++i) {
      for (;;) {
        std::uint64_t v = rdcss<P>(ctx, &d->status, kUndecided, d->e[i].addr,
                                   d->e[i].exp, me, nullptr);
        if (v == d->e[i].exp) break;  // installed (or restored post-decision)
        if (is_mcas(v)) {
          if (v == me) break;  // another helper installed for us
          help_mcas(ctx, mcas_ptr<P>(v));
          continue;
        }
        desired = kFailed;  // clean value != expected
        break;
      }
    }
    std::uint64_t expected = kUndecided;
    d->status.compare_exchange_strong(expected, desired);
  }
  const bool succeeded = d->status.load(std::memory_order_acquire) == kSuccess;
  for (unsigned i = 0; i < d->k; ++i) {
    std::uint64_t expect = me;
    d->e[i].addr->compare_exchange_strong(
        expect, succeeded ? d->e[i].des : d->e[i].exp);
  }
}

}  // namespace detail

/// Read a kcas-managed word, helping any in-flight operation to completion
/// so the returned value is always clean. Caller must hold an epoch Guard.
template <class P>
std::uint64_t read(Ctx<P>& ctx, Word<P>& w) {
  for (;;) {
    std::uint64_t v = w.load(std::memory_order_acquire);
    if (PTO_LIKELY(is_clean(v))) return v;
    if (is_rdcss(v)) {
      detail::complete(detail::rdcss_ptr<P>(v));
    } else {
      detail::help_mcas(ctx, detail::mcas_ptr<P>(v));
    }
  }
}

/// Software multi-word CAS over k <= kMaxK entries. Lock-free; helps
/// conflicting operations. Caller must hold an epoch Guard.
template <class P>
bool mcas(Ctx<P>& ctx, const Entry<P>* entries, unsigned k) {
  assert(k >= 1 && k <= kMaxK);
  McasDesc<P>* d = ctx.pools.get_mcas();
  d->status.store(kUndecided, std::memory_order_relaxed);
  d->k = k;
  for (unsigned i = 0; i < k; ++i) {
    assert(is_clean(entries[i].exp) && is_clean(entries[i].des));
    d->e[i] = entries[i];
  }
  std::sort(d->e, d->e + k,
            [](const Entry<P>& a, const Entry<P>& b) { return a.addr < b.addr; });
  detail::help_mcas(ctx, d);
  bool ok = d->status.load(std::memory_order_acquire) == kSuccess;
  ctx.epoch.retire_custom(d, &Pools<P>::recycle_mcas, &ctx.pools);
  return ok;
}

/// Double-compare-single-swap: atomically { if (*control == cexp && *data ==
/// dexp) *data = dnew; }. May fail spuriously when the control word holds an
/// in-flight descriptor; callers re-read and retry (kcas::read helps).
/// Caller must hold an epoch Guard.
template <class P>
bool dcss(Ctx<P>& ctx, Word<P>& control, std::uint64_t cexp, Word<P>& data,
          std::uint64_t dexp, std::uint64_t dnew) {
  assert(is_clean(cexp) && is_clean(dexp) && is_clean(dnew));
  for (;;) {
    std::uint64_t outcome = kRestored;
    std::uint64_t v =
        detail::rdcss<P>(ctx, &control, cexp, &data, dexp, dnew, &outcome);
    if (v == dexp) return outcome == kTook;
    if (is_rdcss(v)) continue;  // already completed inside rdcss(); re-try
    if (is_mcas(v)) {
      detail::help_mcas(ctx, detail::mcas_ptr<P>(v));
      continue;
    }
    return false;  // clean value != dexp
  }
}

/// Convenience two-entry MCAS (the Mound's DCAS). Caller holds a Guard.
template <class P>
bool dcas(Ctx<P>& ctx, Word<P>& w1, std::uint64_t e1, std::uint64_t n1,
          Word<P>& w2, std::uint64_t e2, std::uint64_t n2) {
  Entry<P> e[2] = {{&w1, e1, n1}, {&w2, e2, n2}};
  return mcas<P>(ctx, e, 2);
}

// ---------------------------------------------------------------------------
// PTO acceleration (paper §3.1 "Mounds": apply PTO locally to DCAS/DCSS).
// ---------------------------------------------------------------------------

/// Transactional fast path for MCAS: read all words (abort on any in-flight
/// descriptor rather than helping, §2.4), compare, store. Falls back to the
/// software mcas after `pol.attempts` aborts. Retry default follows the
/// paper's tuned value of 4.
template <class P>
bool pto_mcas(Ctx<P>& ctx, const Entry<P>* entries, unsigned k,
              PrefixPolicy pol = PrefixPolicy(4), PrefixStats* st = nullptr) {
  pol.retry_on_explicit = true;  // descriptors clear quickly; retrying pays
  return prefix<P>(
      pol,
      [&]() -> bool {
        for (unsigned i = 0; i < k; ++i) {
          std::uint64_t v = entries[i].addr->load(std::memory_order_relaxed);
          if (PTO_UNLIKELY(!is_clean(v))) P::template tx_abort<TX_CODE_HELPING>();
          if (v != entries[i].exp) return false;
        }
        for (unsigned i = 0; i < k; ++i) {
          // seq_cst as in the original; the fence is subsumed by the
          // transaction (and charged only in the Fig 5(b) ablation).
          entries[i].addr->store(entries[i].des);
        }
        return true;
      },
      [&]() -> bool { return mcas<P>(ctx, entries, k); }, {st, PTO_TELEMETRY_SITE("kcas.mcas")});
}

template <class P>
bool pto_dcas(Ctx<P>& ctx, Word<P>& w1, std::uint64_t e1, std::uint64_t n1,
              Word<P>& w2, std::uint64_t e2, std::uint64_t n2,
              PrefixPolicy pol = PrefixPolicy(4), PrefixStats* st = nullptr) {
  Entry<P> e[2] = {{&w1, e1, n1}, {&w2, e2, n2}};
  return pto_mcas<P>(ctx, e, 2, pol, st);
}

/// Transactional fast path for DCSS.
template <class P>
bool pto_dcss(Ctx<P>& ctx, Word<P>& control, std::uint64_t cexp,
              Word<P>& data, std::uint64_t dexp, std::uint64_t dnew,
              PrefixPolicy pol = PrefixPolicy(4), PrefixStats* st = nullptr) {
  pol.retry_on_explicit = true;
  return prefix<P>(
      pol,
      [&]() -> bool {
        std::uint64_t c = control.load(std::memory_order_relaxed);
        std::uint64_t d = data.load(std::memory_order_relaxed);
        if (PTO_UNLIKELY(!is_clean(c) || !is_clean(d))) {
          P::template tx_abort<TX_CODE_HELPING>();
        }
        if (c != cexp || d != dexp) return false;
        data.store(dnew);
        return true;
      },
      [&]() -> bool { return dcss<P>(ctx, control, cexp, data, dexp, dnew); },
      {st, PTO_TELEMETRY_SITE("kcas.dcss")});
}

}  // namespace pto::kcas
