// pto::check — deterministic race and opacity checking for simx runs.
//
// PTO's safety argument (paper Theorems 2 & 3) is that eliding fences,
// double-checks, CAS latencies, and allocation inside a prefix transaction is
// sound *because* any conflicting access aborts the transaction. Nothing in
// that argument protects code that runs OUTSIDE a transaction: a fallback
// path that publishes with a relaxed store, or a retry that reuses a value it
// read inside an attempt that was later doomed. Those are exactly the bugs
// the HTM-template literature (Brown; Cai–Wen–Scott NBTC) warns about, and
// simx — which already intercepts every instrumented access with a
// deterministic schedule — is the right substrate to check for them.
//
// Two checkers share one gate (`PTO_CHECK=1|report`, or set_enabled()):
//
//  1. **Vector-clock data-race detector.** Every virtual thread carries a
//     vector clock. Happens-before edges come from the operations that order
//     memory on the modeled machine:
//       - seq_cst fences (including the fence half of a seq_cst store) drain
//         the thread's "store buffer": each plainly-written location becomes
//         acquirable, and fences additionally synchronize with each other
//         through a global fence clock;
//       - CAS / RMW operations are full barriers that release into and
//         acquire from the accessed location;
//       - transactional accesses of a prefix body: the HTM orders a committed
//         transaction against every conflicting access (strong atomicity +
//         requester-wins), so in-tx reads acquire and in-tx writes release
//         regardless of their nominal memory order — this is Theorem 2 as an
//         HB rule, and it is why relaxed accesses inside a prefix body are
//         never reported;
//       - run() start (fork) and completion (join) of the virtual threads.
//     Every load additionally acquires the accessed location's release
//     history (x86-TSO per-location coherence plus dependency ordering: the
//     target ISA never reorders a load before the store it reads from).
//     A **plain** access is a relaxed, non-transactional one. Two concurrent
//     plain accesses to the same address, at least one a write, with no HB
//     path are reported with both sites (prefix-site attribution reuses the
//     StatsHandle span machinery the profiler introduced).
//
//  2. **Opacity / doomed-read checker.** Each transactional read is logged
//     (address, observed value). When a transaction is doomed by a conflict,
//     logged reads that are *invalidated* — their location now holds a
//     different value (the undo rolled back a read-your-own-write, or the
//     aggressor already overwrote it) or they sit on the faulting cache
//     line — poison their observed values (pointer-looking values only).
//     After the abort, using a poisoned value as an address (a load or store
//     whose target equals it) or storing a poisoned value into the shared
//     heap is reported: that value came from a speculation the hardware
//     already declared inconsistent. A later load that *returns* the same
//     value re-validates it (the retry legitimately re-read the pointer), so
//     ordinary retry loops stay silent. Branches on doomed values are not
//     directly observable at this instrumentation level; the harmful
//     outcomes of such branches (a dereference or a store) are what get
//     caught. Poison expires at the operation boundary (sim::op_done).
//
// Like pto::prof, checking is observation-only: no hook charges virtual
// cycles, so a checked run's simulated clocks are byte-identical to an
// unchecked run (pinned by tests/test_check.cpp). All hooks run on the
// single simulator host thread; outside a simulation they are no-ops.
//
//   PTO_CHECK=1        enable; one-line summary per finding at process exit
//   PTO_CHECK=report   enable; full report (stats + capacity table) at exit
//   PTO_CHECK_OUT=path write the exit report to a file (default: stderr)
//   PTO_CHECK_MAX=N    distinct findings kept (default 100)
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pto::telemetry {
class Site;
}  // namespace pto::telemetry

namespace pto::check {

namespace detail {
extern std::atomic<bool> g_on;
}  // namespace detail

/// Cheap gate for every instrumentation point in the simulator.
inline bool on() { return detail::g_on.load(std::memory_order_relaxed); }

/// Programmatic control (tests). Enabling does not clear accumulated
/// findings; call reset() for a clean slate.
void set_enabled(bool on);

/// Drop all findings, shadow state, and per-thread checker state.
void reset();

enum class FindingKind : unsigned {
  kRaceWriteWrite = 0,  ///< two concurrent plain writes
  kRaceReadWrite,       ///< plain write concurrent with an earlier plain read
  kRaceWriteRead,       ///< plain read of a concurrent earlier plain write
  kDoomedAddressUse,    ///< poisoned tx-read value used as an access address
  kDoomedValueStore,    ///< poisoned tx-read value stored to the shared heap
  kOverCapacity,        ///< prefix site that only ever capacity-aborts
};
const char* finding_kind_name(FindingKind k);

struct Finding {
  FindingKind kind;
  std::uintptr_t addr = 0;  ///< faulting address (first occurrence)
  std::uint64_t line = 0;   ///< addr / kCacheLine
  unsigned tid_a = 0;       ///< prior access (races) / victim tx (doomed)
  unsigned tid_b = 0;       ///< current access
  std::string site_a;       ///< attribution of the prior access / tx
  std::string site_b;       ///< attribution of the current access
  std::uint64_t count = 0;  ///< occurrences folded into this finding
};

/// Copy of every distinct finding recorded so far, in discovery order.
std::vector<Finding> findings();
std::uint64_t finding_count();

/// Aggregate checker statistics (reported in `report` mode).
struct Stats {
  std::uint64_t plain_reads = 0;
  std::uint64_t plain_writes = 0;
  std::uint64_t sync_ops = 0;
  std::uint64_t tx_reads_logged = 0;
  std::uint64_t doomed_txs = 0;
  std::uint64_t poisoned_values = 0;
  std::uint64_t revalidated_values = 0;
  std::uint64_t tx_log_overflows = 0;
  std::uint64_t findings_dropped = 0;  ///< beyond PTO_CHECK_MAX
};
Stats stats();

/// Write a findings report. `full` additionally dumps checker statistics and
/// the per-site capacity table (the PTO_CHECK=report exit format).
void report(std::ostream& os, bool full);

/// Honor PTO_CHECK / PTO_CHECK_OUT (the atexit path; callable manually).
void report_if_enabled();

// ---------------------------------------------------------------------------
// Simulator-side hooks. Call only when on(), from the simulation host thread.
// None of these charge virtual cycles. `order` is the C++ memory order of
// the access as a plain unsigned (std::memory_order_relaxed == 0 ...
// std::memory_order_seq_cst == 5).
// ---------------------------------------------------------------------------

void on_run_begin(unsigned nthreads);
void on_run_end();
void on_load(unsigned tid, const void* addr, unsigned size,
             std::uint64_t value, unsigned order, bool in_tx);
void on_store(unsigned tid, void* addr, unsigned size, std::uint64_t value,
              unsigned order, bool in_tx);
/// CAS (wrote == success) and fetch_add (wrote == true). `observed` is the
/// value the primitive read.
void on_rmw(unsigned tid, void* addr, unsigned size, std::uint64_t observed,
            bool wrote, bool in_tx);
void on_fence(unsigned tid);
void on_tx_begin(unsigned tid);
void on_tx_commit(unsigned tid);
/// `victim`'s transaction was doomed by a conflict on `line`
/// (addr / kCacheLine). Called after the undo rollback.
void on_tx_doomed(unsigned victim, std::uintptr_t line);
/// The current thread self-aborted (capacity/duration/explicit/spurious);
/// rset/wset are the tracked footprint sizes at abort.
void on_tx_self_abort(unsigned tid, unsigned cause, std::size_t rset,
                      std::size_t wset);
void on_op_done(unsigned tid);

// ---------------------------------------------------------------------------
// Prefix-side hooks, forwarded by the StatsHandle telemetry hooks in
// telemetry/registry.cpp (same path that feeds pto::prof). No-ops outside a
// simulation.
// ---------------------------------------------------------------------------

void on_site_attempt(const telemetry::Site* site);
void on_site_commit(const telemetry::Site* site);
void on_site_abort(const telemetry::Site* site, unsigned cause);
void on_site_fallback(const telemetry::Site* site);
void on_site_fallback_end(const telemetry::Site* site);

}  // namespace pto::check
