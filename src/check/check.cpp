#include "check/check.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <ostream>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/defs.h"
#include "htm/txcode.h"
#include "sim/sim.h"
#include "telemetry/registry.h"

namespace pto::check {

namespace detail {
std::atomic<bool> g_on{false};
}  // namespace detail

namespace {

constexpr unsigned kNoTid = 0xFFFFFFFFu;
constexpr unsigned kMaxSpans = 32;
constexpr std::size_t kTxLogCap = 4096;
constexpr std::size_t kPoisonCap = 64;
constexpr unsigned kDefaultMaxFindings = 100;
/// Capacity aborts at one site before a zero-commit site counts as a
/// statically-doomed prefix (a handful of retries is normal; a site that
/// *only* capacity-aborts can never fit the HTM).
constexpr std::uint64_t kCapacityAbortThreshold = 8;

/// Vector clock over virtual threads, sized to the run's thread count when
/// the run begins (on_run_begin / ensure_sync). A fixed kMaxThreads-wide
/// array would be 8 KB per clock at kMaxThreads = 1024, and a clock is
/// allocated per release-history shadow entry — dynamic sizing keeps the
/// checker's footprint proportional to the threads actually running.
struct VClock {
  std::vector<std::uint64_t> c;
};

struct SpanRef {
  const telemetry::Site* site = nullptr;
  bool fallback = false;
};

struct TxRead {
  std::uintptr_t addr;
  std::uint64_t value;
  unsigned size;
};

struct PoisonEntry {
  std::uint64_t value;      ///< the pointer-looking doomed-read value
  std::uintptr_t origin;    ///< address the doomed transaction read it from
  unsigned victim_tid;
  unsigned depth;           ///< span depth at doom time (scoping, see below)
  std::string site;         ///< attribution of the doomed transaction
};

struct ReadEntry {
  std::uint64_t clk;
  unsigned tid;
  const telemetry::Site* site;
  bool fallback;
};

struct LastWrite {
  std::uint64_t clk = 0;
  unsigned tid = kNoTid;
  bool plain = false;
  const telemetry::Site* site = nullptr;
  bool fallback = false;
};

struct VarState {
  LastWrite w;
  std::vector<ReadEntry> reads;    ///< plain reads, one slot per thread
  std::unique_ptr<VClock> sync;  ///< release history of this location
  /// Threads with an undrained plain write, one bit per thread (word-array
  /// so tids past 64 don't alias — a single uint64_t indexed by tid & 63
  /// would report missed store-buffer drains as false races).
  std::vector<std::uint64_t> pending_w;
};

bool pending_test(const VarState& vs, unsigned tid) {
  const unsigned w = tid >> 6;
  return w < vs.pending_w.size() &&
         ((vs.pending_w[w] >> (tid & 63)) & 1) != 0;
}

void pending_set(VarState& vs, unsigned tid) {
  const unsigned w = tid >> 6;
  if (w >= vs.pending_w.size()) vs.pending_w.resize(w + 1, 0);
  vs.pending_w[w] |= std::uint64_t{1} << (tid & 63);
}

void pending_clear(VarState& vs, unsigned tid) {
  const unsigned w = tid >> 6;
  if (w < vs.pending_w.size()) {
    vs.pending_w[w] &= ~(std::uint64_t{1} << (tid & 63));
  }
}

struct ThreadState {
  VClock vc;
  std::vector<VarState*> pending;  ///< plainly-written, not yet fenced
  std::vector<TxRead> tx_log;
  bool tx_overflow = false;
  std::vector<PoisonEntry> poison;
  SpanRef spans[kMaxSpans];
  unsigned depth = 0;

  void clear() {
    vc = VClock{};
    pending.clear();
    tx_log.clear();
    tx_overflow = false;
    poison.clear();
    depth = 0;
  }
};

struct SiteCap {
  std::uint64_t commits = 0;
  std::uint64_t capacity_aborts = 0;
  std::size_t max_rset = 0;
  std::size_t max_wset = 0;
};

struct CheckState {
  bool active = false;  ///< inside sim::run with checking enabled
  unsigned nthreads = 0;
  ThreadState threads[kMaxThreads];
  std::unordered_map<std::uintptr_t, VarState> shadow;
  VClock fence_vc;
  Stats st;

  std::vector<Finding> findings;
  std::map<std::tuple<unsigned, std::uint64_t, std::string, std::string>,
           std::size_t>
      index;
  std::map<const telemetry::Site*, SiteCap> site_caps;

  unsigned max_findings = kDefaultMaxFindings;
  bool full_report = false;
  std::string out_path;
  bool report_at_exit = false;

  CheckState() {
    if (const char* v = std::getenv("PTO_CHECK"); v != nullptr && *v != '\0') {
      if (std::strcmp(v, "report") == 0) {
        full_report = true;
      } else if (std::strcmp(v, "1") != 0 && std::strcmp(v, "on") != 0) {
        std::fprintf(stderr,
                     "PTO_CHECK=%s not recognized (1|report); checking on\n",
                     v);
      }
      detail::g_on.store(true, std::memory_order_relaxed);
      report_at_exit = true;
    }
    if (const char* v = std::getenv("PTO_CHECK_OUT");
        v != nullptr && *v != '\0') {
      out_path = v;
    }
    if (const char* v = std::getenv("PTO_CHECK_MAX")) {
      char* end = nullptr;
      auto parsed = std::strtoull(v, &end, 10);
      if (end != v && parsed > 0) max_findings = static_cast<unsigned>(parsed);
    }
  }
};

CheckState& state() {
  static CheckState s;
  return s;
}

const bool g_env_scanned = [] {
  if (state().report_at_exit) {
    std::atexit([] { report_if_enabled(); });
  }
  return true;
}();

void vc_join(VClock& into, const VClock& from, unsigned n) {
  for (unsigned i = 0; i < n; ++i) {
    if (from.c[i] > into.c[i]) into.c[i] = from.c[i];
  }
}

/// Did the event at epoch (tid, clk) happen before the observer clock?
bool epoch_hb(unsigned tid, std::uint64_t clk, const VClock& vc) {
  return clk <= vc.c[tid];
}

bool pointer_like(std::uint64_t v) {
  return v != 0 && (v & 7) == 0 && v >= (1u << 16) &&
         v < (std::uint64_t{1} << 48);
}

std::string span_name(const telemetry::Site* site, bool fallback) {
  if (site == nullptr) return "(none)";
  std::string s = site->name();
  if (fallback) s += "/fallback";
  return s;
}

SpanRef cur_span(const ThreadState& t) {
  return t.depth > 0 ? t.spans[t.depth - 1] : SpanRef{};
}

std::string cur_site_name(const ThreadState& t) {
  SpanRef s = cur_span(t);
  return span_name(s.site, s.fallback);
}

void add_finding(CheckState& S, FindingKind kind, std::uintptr_t addr,
                 unsigned tid_a, unsigned tid_b, std::string site_a,
                 std::string site_b) {
  // Races dedup per (site pair, line) — unsited code would otherwise fold
  // every raced address into one finding. Doomed-value findings dedup per
  // site pair only: one leaky fallback touches many nodes.
  const bool is_race = kind == FindingKind::kRaceWriteWrite ||
                       kind == FindingKind::kRaceReadWrite ||
                       kind == FindingKind::kRaceWriteRead;
  auto key = std::make_tuple(static_cast<unsigned>(kind),
                             is_race ? std::uint64_t{addr / kCacheLine} : 0,
                             site_a, site_b);
  auto it = S.index.find(key);
  if (it != S.index.end()) {
    ++S.findings[it->second].count;
    return;
  }
  if (S.findings.size() >= S.max_findings) {
    ++S.st.findings_dropped;
    return;
  }
  Finding f;
  f.kind = kind;
  f.addr = addr;
  f.line = addr / kCacheLine;
  f.tid_a = tid_a;
  f.tid_b = tid_b;
  f.site_a = std::move(site_a);
  f.site_b = std::move(site_b);
  f.count = 1;
  S.index.emplace(std::move(key), S.findings.size());
  S.findings.push_back(std::move(f));
}

VarState& var_of(CheckState& S, std::uintptr_t a) { return S.shadow[a]; }

void ensure_sync(CheckState& S, VarState& vs) {
  if (!vs.sync) vs.sync = std::make_unique<VClock>();
  if (vs.sync->c.size() < S.nthreads) vs.sync->c.resize(S.nthreads, 0);
}

/// Fence semantics of the modeled machine: the thread's plainly-written
/// locations become acquirable (store-buffer drain).
void drain_pending(CheckState& S, ThreadState& t, unsigned tid) {
  for (VarState* vs : t.pending) {
    ensure_sync(S, *vs);
    vc_join(*vs->sync, t.vc, S.nthreads);
    pending_clear(*vs, tid);
  }
  t.pending.clear();
}

void record_read(VarState& vs, unsigned tid, std::uint64_t clk, SpanRef span) {
  for (ReadEntry& r : vs.reads) {
    if (r.tid == tid) {
      r.clk = clk;
      r.site = span.site;
      r.fallback = span.fallback;
      return;
    }
  }
  vs.reads.push_back(ReadEntry{clk, tid, span.site, span.fallback});
}

/// Doomed-value checks on an access: the address matching a poisoned value's
/// cache line is a stale-pointer dereference; a store *of* a poisoned value
/// publishes speculative garbage. A load that returns a poisoned value
/// re-validates it (the code re-read the pointer from the structure).
void check_poison(CheckState& S, ThreadState& t, unsigned tid,
                  std::uintptr_t addr, std::uint64_t value, bool is_store) {
  // Lock-free structures tag pointers in their low bits (marks, flags) and
  // pack counters/versions into bits 48..63 (canonical user pointers fit in
  // 48 bits), so values compare modulo both: a load returning B|1 — or B
  // with a bumped packed counter, as in FSetHash's bucket words —
  // re-validates poisoned B, and a store of either publishes poisoned B.
  constexpr std::uint64_t kTagMask = 7 | 0xFFFF000000000000ull;
  for (std::size_t i = 0; i < t.poison.size();) {
    PoisonEntry& p = t.poison[i];
    if (addr / kCacheLine == p.value / kCacheLine) {
      if (std::getenv("PTO_CHECK_DEBUG")) {
        std::fprintf(stderr,
                     "[dbg] deref t%u addr=%p poison value=%p origin=%p "
                     "is_store=%d\n",
                     tid, reinterpret_cast<void*>(addr),
                     reinterpret_cast<void*>(p.value),
                     reinterpret_cast<void*>(p.origin), is_store ? 1 : 0);
      }
      add_finding(S, FindingKind::kDoomedAddressUse, addr, p.victim_tid, tid,
                  p.site, cur_site_name(t));
    }
    const bool same_ptr = ((value ^ p.value) & ~kTagMask) == 0;
    if (is_store && same_ptr) {
      add_finding(S, FindingKind::kDoomedValueStore, addr, p.victim_tid, tid,
                  p.site, cur_site_name(t));
    }
    if (!is_store && same_ptr) {
      ++S.st.revalidated_values;
      t.poison.erase(t.poison.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

const char* kKindNames[] = {
    "race-write-write",  "race-read-write",    "race-write-read",
    "doomed-address-use", "doomed-value-store", "over-capacity",
};

/// Findings synthesized at report time: prefix sites whose transactions only
/// ever capacity-abort (the body can statically never fit the HTM).
std::vector<Finding> capacity_findings(const CheckState& S) {
  std::vector<Finding> out;
  for (const auto& [site, cap] : S.site_caps) {
    if (cap.commits == 0 && cap.capacity_aborts >= kCapacityAbortThreshold) {
      Finding f;
      f.kind = FindingKind::kOverCapacity;
      f.site_a = span_name(site, false);
      f.site_b = f.site_a;
      f.count = cap.capacity_aborts;
      f.addr = 0;
      f.line = cap.max_wset;  // footprint, not an address: wlines at abort
      out.push_back(std::move(f));
    }
  }
  return out;
}

}  // namespace

const char* finding_kind_name(FindingKind k) {
  auto i = static_cast<unsigned>(k);
  return i < sizeof(kKindNames) / sizeof(kKindNames[0]) ? kKindNames[i] : "?";
}

void set_enabled(bool on) {
  detail::g_on.store(on, std::memory_order_relaxed);
}

void reset() {
  CheckState& S = state();
  S.active = false;
  S.nthreads = 0;
  for (auto& t : S.threads) t.clear();
  S.shadow.clear();
  S.fence_vc = VClock{};
  S.st = Stats{};
  S.findings.clear();
  S.index.clear();
  S.site_caps.clear();
}

// ---------------------------------------------------------------------------
// Run lifecycle.
// ---------------------------------------------------------------------------

void on_run_begin(unsigned nthreads) {
  CheckState& S = state();
  S.active = true;
  S.nthreads = nthreads;
  // Addresses recycle across runs (the arena resets between measurement
  // points), so shadow state from a previous run would be garbage. Clear the
  // per-thread pointers into it first.
  for (auto& t : S.threads) t.clear();
  S.shadow.clear();
  S.fence_vc.c.assign(nthreads, 0);
  // Fork point: epochs start at 1 so a first-access epoch is never
  // vacuously happened-before a fresh observer clock.
  for (unsigned i = 0; i < nthreads; ++i) {
    S.threads[i].vc.c.assign(nthreads, 0);
    S.threads[i].vc.c[i] = 1;
  }
}

void on_run_end() { state().active = false; }

// ---------------------------------------------------------------------------
// Memory accesses.
// ---------------------------------------------------------------------------

void on_load(unsigned tid, const void* addr, unsigned size,
             std::uint64_t value, unsigned order, bool in_tx) {
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[tid];
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  if (PTO_UNLIKELY(!t.poison.empty())) {
    check_poison(S, t, tid, a, value, /*is_store=*/false);
  }
  VarState& vs = var_of(S, a);
  if (in_tx) {
    // Opacity log; HB-wise a transactional read acquires the location (the
    // HTM orders the committed transaction after every write it observed).
    if (t.tx_log.size() < kTxLogCap) {
      t.tx_log.push_back(TxRead{a, value, size});
      ++S.st.tx_reads_logged;
    } else if (!t.tx_overflow) {
      t.tx_overflow = true;
      ++S.st.tx_log_overflows;
    }
    if (vs.sync) vc_join(t.vc, *vs.sync, S.nthreads);
    return;
  }
  // Every load acquires the location's release history: x86-TSO coherence
  // plus dependency ordering — no real load reorders before the store it
  // reads from.
  if (vs.sync) vc_join(t.vc, *vs.sync, S.nthreads);
  if (order == 0) {  // relaxed: plain read, race-checkable
    ++S.st.plain_reads;
    if (vs.w.tid != kNoTid && vs.w.plain && vs.w.tid != tid &&
        !epoch_hb(vs.w.tid, vs.w.clk, t.vc)) {
      add_finding(S, FindingKind::kRaceWriteRead, a, vs.w.tid, tid,
                  span_name(vs.w.site, vs.w.fallback), cur_site_name(t));
    }
    record_read(vs, tid, t.vc.c[tid], cur_span(t));
  } else {
    ++S.st.sync_ops;
  }
}

void on_store(unsigned tid, void* addr, unsigned size, std::uint64_t value,
              unsigned order, bool in_tx) {
  (void)size;
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[tid];
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  if (PTO_UNLIKELY(!t.poison.empty())) {
    check_poison(S, t, tid, a, value, /*is_store=*/true);
  }
  VarState& vs = var_of(S, a);
  SpanRef span = cur_span(t);
  if (in_tx) {
    // Theorem 2 as an HB rule: an in-tx write is ordered against every
    // conflicting access by the HTM (conflicts doom one side), so it is a
    // release+acquire on the location whatever its nominal order.
    ensure_sync(S, vs);
    vc_join(t.vc, *vs.sync, S.nthreads);
    vc_join(*vs.sync, t.vc, S.nthreads);
    vs.w = LastWrite{t.vc.c[tid], tid, false, span.site, span.fallback};
    ++t.vc.c[tid];
    return;
  }
  if (vs.sync) vc_join(t.vc, *vs.sync, S.nthreads);  // coherence order
  if (order == 0) {  // relaxed: plain write
    ++S.st.plain_writes;
    if (vs.w.tid != kNoTid && vs.w.plain && vs.w.tid != tid &&
        !epoch_hb(vs.w.tid, vs.w.clk, t.vc)) {
      add_finding(S, FindingKind::kRaceWriteWrite, a, vs.w.tid, tid,
                  span_name(vs.w.site, vs.w.fallback), cur_site_name(t));
    }
    for (const ReadEntry& r : vs.reads) {
      if (r.tid != tid && !epoch_hb(r.tid, r.clk, t.vc)) {
        add_finding(S, FindingKind::kRaceReadWrite, a, r.tid, tid,
                    span_name(r.site, r.fallback), cur_site_name(t));
      }
    }
    vs.w = LastWrite{t.vc.c[tid], tid, true, span.site, span.fallback};
    if (!pending_test(vs, tid)) {
      pending_set(vs, tid);
      t.pending.push_back(&vs);
    }
  } else {
    // Ordered store: releases this location immediately (release/seq_cst;
    // the fence half of a seq_cst store additionally drains via on_fence).
    ++S.st.sync_ops;
    ensure_sync(S, vs);
    vc_join(*vs.sync, t.vc, S.nthreads);
    vs.w = LastWrite{t.vc.c[tid], tid, false, span.site, span.fallback};
    ++t.vc.c[tid];
  }
}

void on_rmw(unsigned tid, void* addr, unsigned size, std::uint64_t observed,
            bool wrote, bool in_tx) {
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[tid];
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  if (PTO_UNLIKELY(!t.poison.empty())) {
    check_poison(S, t, tid, a, observed, /*is_store=*/false);
  }
  VarState& vs = var_of(S, a);
  SpanRef span = cur_span(t);
  if (in_tx) {
    // In-tx CAS degenerates to load(+store); log the read for opacity.
    if (t.tx_log.size() < kTxLogCap) {
      t.tx_log.push_back(TxRead{a, observed, size});
      ++S.st.tx_reads_logged;
    } else if (!t.tx_overflow) {
      t.tx_overflow = true;
      ++S.st.tx_log_overflows;
    }
    ensure_sync(S, vs);
    vc_join(t.vc, *vs.sync, S.nthreads);
    if (wrote) {
      vc_join(*vs.sync, t.vc, S.nthreads);
      vs.w = LastWrite{t.vc.c[tid], tid, false, span.site, span.fallback};
      ++t.vc.c[tid];
    }
    return;
  }
  // Non-transactional CAS / RMW: a locked instruction is a full barrier on
  // the modeled machine — drain the store buffer, then acquire+release the
  // location.
  ++S.st.sync_ops;
  drain_pending(S, t, tid);
  ensure_sync(S, vs);
  vc_join(t.vc, *vs.sync, S.nthreads);
  if (wrote) {
    vc_join(*vs.sync, t.vc, S.nthreads);
    vs.w = LastWrite{t.vc.c[tid], tid, false, span.site, span.fallback};
  }
  ++t.vc.c[tid];
}

void on_fence(unsigned tid) {
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[tid];
  drain_pending(S, t, tid);
  vc_join(t.vc, S.fence_vc, S.nthreads);
  vc_join(S.fence_vc, t.vc, S.nthreads);
  ++t.vc.c[tid];
}

// ---------------------------------------------------------------------------
// Transactions.
// ---------------------------------------------------------------------------

void on_tx_begin(unsigned tid) {
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[tid];
  t.tx_log.clear();
  t.tx_overflow = false;
}

void on_tx_commit(unsigned tid) {
  CheckState& S = state();
  if (!S.active) return;
  state().threads[tid].tx_log.clear();
}

void on_tx_doomed(unsigned victim, std::uintptr_t line) {
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[victim];
  ++S.st.doomed_txs;
  // Called after the undo rollback and before the aggressor's own write
  // lands, so a logged value that differs from memory was invalidated by the
  // rollback (read-your-own-write) or an earlier aggressor; the faulting
  // line covers the conflicting value the aggressor is about to replace.
  std::string site = cur_site_name(t);
  for (const TxRead& r : t.tx_log) {
    if (!pointer_like(r.value)) continue;
    std::uint64_t now_val = 0;
    std::memcpy(&now_val, reinterpret_cast<const void*>(r.addr), r.size);
    const bool invalidated =
        now_val != r.value || r.addr / kCacheLine == line;
    if (!invalidated) continue;
    bool dup = false;
    for (const PoisonEntry& p : t.poison) {
      if (p.value == r.value) {
        dup = true;
        break;
      }
    }
    if (dup || t.poison.size() >= kPoisonCap) continue;
    if (std::getenv("PTO_CHECK_DEBUG")) {
      std::fprintf(stderr, "[dbg] poison t%u depth=%u site=%s value=%p\n",
                   victim, t.depth, site.c_str(),
                   reinterpret_cast<void*>(r.value));
    }
    t.poison.push_back(PoisonEntry{r.value, r.addr, victim, t.depth, site});
    ++S.st.poisoned_values;
  }
  t.tx_log.clear();
  t.tx_overflow = false;
}

void on_tx_self_abort(unsigned tid, unsigned cause, std::size_t rset,
                      std::size_t wset) {
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[tid];
  // A self-abort (capacity / duration / explicit / spurious) observed a
  // consistent snapshot: no poisoning, just close the log.
  t.tx_log.clear();
  t.tx_overflow = false;
  if (cause == TX_ABORT_CAPACITY) {
    SiteCap& cap = S.site_caps[cur_span(t).site];
    ++cap.capacity_aborts;
    if (rset > cap.max_rset) cap.max_rset = rset;
    if (wset > cap.max_wset) cap.max_wset = wset;
  }
}

void on_op_done(unsigned tid) {
  CheckState& S = state();
  if (!S.active) return;
  // Operation boundary: values read by this operation's doomed attempts are
  // dead — the next operation re-reads everything it needs.
  S.threads[tid].poison.clear();
}

// ---------------------------------------------------------------------------
// Prefix-site spans (attribution; mirrors pto::prof's span stack).
// ---------------------------------------------------------------------------

namespace {

void push_span(const telemetry::Site* site, bool fallback) {
  if (!sim::active()) return;
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[sim::thread_id() % kMaxThreads];
  if (t.depth >= kMaxSpans) return;
  t.spans[t.depth++] = SpanRef{site, fallback};
}

/// Pop the innermost span matching (site, kind), discarding spans above it —
/// attempts abandoned when an abort longjmp'd through their frames.
///
/// `call_done` marks pops that end the whole prefix() call (a fast-path
/// commit or the fallback returning, never a per-attempt abort): poison from
/// attempts doomed inside that call expires there. The hazard window of a
/// doomed read is the prefix call itself — only its retries and its fallback
/// closure can see the attempt's captured locals; once the call returns, the
/// operation re-derives state from the structure, and values that merely
/// *equal* a stale pointer (a thread-local node cache, a re-inserted key)
/// would be false positives.
void pop_span(const telemetry::Site* site, bool fallback, bool call_done) {
  if (!sim::active()) return;
  CheckState& S = state();
  if (!S.active) return;
  ThreadState& t = S.threads[sim::thread_id() % kMaxThreads];
  for (unsigned i = t.depth; i-- > 0;) {
    if (t.spans[i].site == site && t.spans[i].fallback == fallback) {
      t.depth = i;
      break;
    }
  }
  if (call_done && !t.poison.empty()) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < t.poison.size(); ++i) {
      if (t.poison[i].depth <= t.depth) t.poison[kept++] = t.poison[i];
    }
    t.poison.resize(kept);
  }
}

}  // namespace

void on_site_attempt(const telemetry::Site* site) { push_span(site, false); }

void on_site_commit(const telemetry::Site* site) {
  pop_span(site, false, /*call_done=*/true);
  if (!sim::active()) return;
  CheckState& S = state();
  if (!S.active) return;
  auto it = S.site_caps.find(site);
  if (it != S.site_caps.end()) ++it->second.commits;
  else S.site_caps[site].commits = 1;
}

void on_site_abort(const telemetry::Site* site, unsigned cause) {
  (void)cause;
  pop_span(site, false, /*call_done=*/false);
}

void on_site_fallback(const telemetry::Site* site) { push_span(site, true); }

void on_site_fallback_end(const telemetry::Site* site) {
  pop_span(site, true, /*call_done=*/true);
}

// ---------------------------------------------------------------------------
// Findings and reporting.
// ---------------------------------------------------------------------------

std::vector<Finding> findings() {
  CheckState& S = state();
  std::vector<Finding> out = S.findings;
  for (auto& f : capacity_findings(S)) out.push_back(std::move(f));
  return out;
}

std::uint64_t finding_count() { return findings().size(); }

Stats stats() { return state().st; }

void report(std::ostream& os, bool full) {
  CheckState& S = state();
  std::vector<Finding> all = findings();
  os << "== pto check ==\n";
  os << "pto_check: " << all.size() << " findings\n";
  for (const Finding& f : all) {
    os << "  [" << finding_kind_name(f.kind) << "] ";
    if (f.kind == FindingKind::kOverCapacity) {
      os << "site " << f.site_a << ": " << f.count
         << " capacity aborts, 0 commits (wset " << f.line
         << " lines at abort)";
    } else {
      os << "addr 0x" << std::hex << f.addr << std::dec << " line 0x"
         << std::hex << f.line << std::dec << " t" << f.tid_a << " ("
         << f.site_a << ") vs t" << f.tid_b << " (" << f.site_b << ") x"
         << f.count;
    }
    os << "\n";
  }
  if (S.st.findings_dropped != 0) {
    os << "  (+" << S.st.findings_dropped
       << " occurrences dropped beyond PTO_CHECK_MAX)\n";
  }
  if (full) {
    const Stats& st = S.st;
    os << "stats: plain_reads=" << st.plain_reads
       << " plain_writes=" << st.plain_writes << " sync_ops=" << st.sync_ops
       << " tx_reads_logged=" << st.tx_reads_logged
       << " doomed_txs=" << st.doomed_txs
       << " poisoned=" << st.poisoned_values
       << " revalidated=" << st.revalidated_values
       << " tx_log_overflows=" << st.tx_log_overflows << "\n";
    if (!S.site_caps.empty()) {
      os << "capacity table (site commits capacity_aborts max_rset "
            "max_wset):\n";
      for (const auto& [site, cap] : S.site_caps) {
        os << "  " << span_name(site, false) << " " << cap.commits << " "
           << cap.capacity_aborts << " " << cap.max_rset << " "
           << cap.max_wset << "\n";
      }
    }
  }
  os.flush();
}

void report_if_enabled() {
  CheckState& S = state();
  if (!on()) return;
  if (!S.out_path.empty()) {
    std::ofstream os(S.out_path, std::ios::trunc);
    if (os) {
      report(os, S.full_report);
      return;
    }
    std::fprintf(stderr, "[pto] warning: cannot open PTO_CHECK_OUT=%s\n",
                 S.out_path.c_str());
  }
  report(std::cerr, S.full_report);
}

}  // namespace pto::check
