#include "metrics/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/buildinfo.h"
#include "common/gauges.h"
#include "common/warn.h"
#include "obs/obs.h"
#include "obs/tsc.h"
#include "telemetry/emit.h"
#include "telemetry/prof.h"
#include "telemetry/registry.h"

namespace pto::metrics {

namespace detail {
std::uint64_t g_sim_next_tick = ~std::uint64_t{0};
}  // namespace detail

namespace {

namespace prof = ::pto::telemetry::prof;

/// Rate-style watchdog rules need a few events before a ratio is meaningful;
/// below this many interval events they stay quiet (a 1-op interval with one
/// fallback is not a storm).
constexpr std::uint64_t kWatchMinEvents = 16;

enum class RuleKind { kFallbackRate, kAbortStorm, kReclaimBacklog };

struct Rule {
  RuleKind kind;
  double threshold;
  bool announced = false;  ///< stderr notice printed (first firing only)
};

const char* rule_name(RuleKind k) {
  switch (k) {
    case RuleKind::kFallbackRate: return "fallback_rate";
    case RuleKind::kAbortStorm: return "abort_storm";
    case RuleKind::kReclaimBacklog: return "reclaim_backlog";
  }
  return "?";
}

struct State {
  std::mutex mu;  ///< guards everything below plus emission
  Config cfg;
  std::atomic<bool> armed{false};
  bool file_failed = false;
  std::FILE* out = nullptr;  ///< owned unless == stderr
  std::ostream* test_os = nullptr;
  std::uint64_t seq = 0;
  std::atomic<std::uint64_t> intervals{0};
  std::atomic<unsigned> violations{0};
  std::string bench, series;
  unsigned threads = 0;
  std::vector<Rule> rules;

  // Baselines: cumulative snapshots as of the previous tick. Interval
  // deltas telescope because every source is monotone with storage that
  // survives thread exit; a shrink (explicit reset between points) makes
  // the next delta restart from the post-reset counts.
  std::vector<PrefixStats> site_base;
  obs::RawMerged obs_base;
  bool obs_base_valid = false;
  prof::LedgerTotals prof_base;

  // Wall-clock (native) mode.
  std::chrono::steady_clock::time_point arm_time;
  double last_wall_ms = 0.0;
  bool sampling = false;
  std::thread sampler;
  std::mutex cv_mu;
  std::condition_variable cv;
  bool stop_sampler = false;

  // Virtual-time (simx) mode.
  std::uint64_t tick_cycles = 0;
  std::uint64_t sim_run_id = 0;
  std::uint64_t sim_last_vt = 0;
  bool sim_active = false;
};

// Leaked: records can be emitted from atexit handlers.
State& st() {
  static State* s = new State();
  return *s;
}

// --------------------------------------------------------------------------
// Minimal JSON building into a std::string (one record per call, no
// intermediate ostringstream — ticks can run on small fiber stacks).
// --------------------------------------------------------------------------

void j_u64(std::string& o, std::uint64_t v) {
  char b[24];
  std::snprintf(b, sizeof b, "%llu", static_cast<unsigned long long>(v));
  o += b;
}

void j_i64(std::string& o, std::int64_t v) {
  char b[24];
  std::snprintf(b, sizeof b, "%lld", static_cast<long long>(v));
  o += b;
}

void j_dbl(std::string& o, double v) {
  char b[32];
  std::snprintf(b, sizeof b, "%.6g", v);
  o += b;
}

void j_str(std::string& o, const std::string& v) {
  o += '"';
  for (char c : v) {
    switch (c) {
      case '"': o += "\\\""; break;
      case '\\': o += "\\\\"; break;
      case '\n': o += "\\n"; break;
      case '\t': o += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char b[8];
          std::snprintf(b, sizeof b, "\\u%04x", c);
          o += b;
        } else {
          o += c;
        }
    }
  }
  o += '"';
}

// --------------------------------------------------------------------------
// Output plumbing. mu held by callers.
// --------------------------------------------------------------------------

void out_write(State& s, const std::string& rec) {
  if (s.test_os != nullptr) {
    (*s.test_os) << rec;
    s.test_os->flush();
    return;
  }
  if (s.out == nullptr && !s.file_failed) {
    const std::string& p = s.cfg.out_path;
    const char* path = p.empty() ? "pto_metrics.ndjson" : p.c_str();
    if (std::strcmp(path, "-") == 0) {
      s.out = stderr;
    } else {
      s.out = std::fopen(path, "wb");
      if (s.out == nullptr) {
        // Plain fprintf, not warn_once: the warn sink would re-enter mu.
        s.file_failed = true;
        std::fprintf(stderr,
                     "[pto] warning: cannot open PTO_METRICS_OUT=%s; metrics "
                     "stream disabled\n",
                     path);
      }
    }
  }
  if (s.out != nullptr) {
    std::fwrite(rec.data(), 1, rec.size(), s.out);
    // Flush per record so `pto_top.py -f` and crash post-mortems see the
    // stream tail; ticks are >= 1 ms apart, so the syscall is off any hot
    // path.
    std::fflush(s.out);
  }
}

/// Prometheus label value escaping (backslash, quote, newline).
void prom_label(std::string& o, const std::string& v) {
  for (char c : v) {
    if (c == '\\' || c == '"') o += '\\';
    if (c == '\n') {
      o += "\\n";
      continue;
    }
    o += c;
  }
}

void write_prom(State& s) {
  if (s.cfg.prom_path.empty()) return;
  std::string o;
  o.reserve(2048);
  const auto sites = telemetry::Registry::instance().sites();
  const std::size_t n = std::min(sites.size(), s.site_base.size());
  struct Family {
    const char* name;
    std::uint64_t PrefixStats::* field;
  };
  const Family families[] = {
      {"pto_prefix_attempts_total", &PrefixStats::attempts},
      {"pto_prefix_commits_total", &PrefixStats::commits},
      {"pto_prefix_fallbacks_total", &PrefixStats::fallbacks},
  };
  for (const Family& f : families) {
    o += "# TYPE ";
    o += f.name;
    o += " counter\n";
    for (std::size_t i = 0; i < n; ++i) {
      o += f.name;
      o += "{site=\"";
      prom_label(o, sites[i]->name());
      o += "\"} ";
      j_u64(o, s.site_base[i].*(f.field));
      o += '\n';
    }
  }
  o += "# TYPE pto_prefix_aborts_total counter\n";
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned c = 1; c < kTxCodeCount; ++c) {
      if (s.site_base[i].aborts[c] == 0) continue;
      o += "pto_prefix_aborts_total{site=\"";
      prom_label(o, sites[i]->name());
      o += "\",cause=\"";
      o += tx_code_name(c);
      o += "\"} ";
      j_u64(o, s.site_base[i].aborts[c]);
      o += '\n';
    }
  }
  o += "# TYPE pto_reclaim_backlog gauge\npto_reclaim_backlog ";
  j_i64(o, gauges::reclaim_backlog().load(std::memory_order_relaxed));
  o += "\n# TYPE pto_watch_violations_total counter\n"
       "pto_watch_violations_total ";
  j_u64(o, s.violations.load(std::memory_order_relaxed));
  o += "\n# TYPE pto_metrics_intervals_total counter\n"
       "pto_metrics_intervals_total ";
  j_u64(o, s.intervals.load(std::memory_order_relaxed));
  o += '\n';
  if (s.obs_base_valid) {
    o += "# TYPE pto_op_samples_total counter\npto_op_samples_total ";
    j_u64(o, s.obs_base.all.total());
    o += '\n';
  }
  // Atomic replace so a concurrent scraper never reads a torn file.
  const std::string tmp = s.cfg.prom_path + ".tmp";
  if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
    std::fwrite(o.data(), 1, o.size(), f);
    std::fclose(f);
    std::rename(tmp.c_str(), s.cfg.prom_path.c_str());
  } else if (!s.file_failed) {
    s.file_failed = true;
    std::fprintf(stderr, "[pto] warning: cannot write PTO_METRICS_PROM=%s\n",
                 s.cfg.prom_path.c_str());
  }
}

// --------------------------------------------------------------------------
// Delta collection.
// --------------------------------------------------------------------------

std::uint64_t sub_or_rebase(std::uint64_t cur, std::uint64_t base) {
  // Monotone counter: a shrink means the source was reset, so the events
  // since the reset are simply `cur` — never lose events, never underflow.
  return cur >= base ? cur - base : cur;
}

PrefixStats prefix_delta(const PrefixStats& cur, const PrefixStats& base) {
  PrefixStats d;
  d.attempts = sub_or_rebase(cur.attempts, base.attempts);
  d.commits = sub_or_rebase(cur.commits, base.commits);
  d.fallbacks = sub_or_rebase(cur.fallbacks, base.fallbacks);
  for (unsigned c = 0; c < kTxCodeCount; ++c) {
    d.aborts[c] = sub_or_rebase(cur.aborts[c], base.aborts[c]);
  }
  return d;
}

struct Delta {
  PrefixStats prefix;
  std::vector<std::pair<std::string, PrefixStats>> sites;  ///< nonzero only
  bool has_obs = false;
  obs::HistSummary obs_all;  ///< interval delta, ns (max is cumulative)
  bool has_prof = false;
  prof::LedgerTotals prof;
  std::int64_t reclaim = 0;
};

Delta collect(State& s, bool wall_mode) {
  Delta d;
  const auto sites = telemetry::Registry::instance().sites();
  if (s.site_base.size() < sites.size()) s.site_base.resize(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const PrefixStats cur = sites[i]->snapshot();
    const PrefixStats sd = prefix_delta(cur, s.site_base[i]);
    s.site_base[i] = cur;
    d.prefix.accumulate(sd);
    if (sd.attempts != 0 || sd.commits != 0 || sd.fallbacks != 0 ||
        sd.total_aborts() != 0) {
      d.sites.emplace_back(sites[i]->name(), sd);
    }
  }
  if (wall_mode && obs::hist_on()) {
    const obs::RawMerged cur = obs::merged_raw();
    obs::Histogram delta = cur.all;
    if (s.obs_base_valid && cur.all.total() >= s.obs_base.all.total()) {
      delta.subtract_clamped(s.obs_base.all);
    }
    s.obs_base = cur;
    s.obs_base_valid = true;
    const obs::HistSummary t = delta.summarize();
    d.has_obs = true;
    d.obs_all.samples = t.samples;
    d.obs_all.p50 = obs::ticks_to_ns(t.p50);
    d.obs_all.p90 = obs::ticks_to_ns(t.p90);
    d.obs_all.p99 = obs::ticks_to_ns(t.p99);
    d.obs_all.p999 = obs::ticks_to_ns(t.p999);
    d.obs_all.max = obs::ticks_to_ns(t.max);
  }
  if (!wall_mode && prof::on()) {
    const prof::LedgerTotals cur = prof::ledger_totals();
    prof::LedgerTotals pd;
    for (unsigned c = 0; c < prof::kClassCount; ++c) {
      pd.classed[c] = sub_or_rebase(cur.classed[c], s.prof_base.classed[c]);
    }
    pd.fast_spans = sub_or_rebase(cur.fast_spans, s.prof_base.fast_spans);
    pd.fallback_spans =
        sub_or_rebase(cur.fallback_spans, s.prof_base.fallback_spans);
    pd.retry_waste_cycles = sub_or_rebase(cur.retry_waste_cycles,
                                          s.prof_base.retry_waste_cycles);
    s.prof_base = cur;
    d.has_prof = true;
    d.prof = pd;
  }
  d.reclaim = gauges::reclaim_backlog().load(std::memory_order_relaxed);
  return d;
}

// --------------------------------------------------------------------------
// Record emission. mu held.
// --------------------------------------------------------------------------

void emit_watch(State& s, const Rule& r, double value, bool wall_mode) {
  std::string o;
  o.reserve(192);
  o += "{\"type\":\"watch\",\"schema\":1,\"seq\":";
  j_u64(o, ++s.seq);
  o += ",\"rule\":\"";
  o += rule_name(r.kind);
  o += "\",\"value\":";
  j_dbl(o, value);
  o += ",\"threshold\":";
  j_dbl(o, r.threshold);
  o += ",\"mode\":";
  o += wall_mode ? "\"wall\"" : "\"sim\"";
  if (!s.bench.empty()) {
    o += ",\"bench\":";
    j_str(o, s.bench);
    o += ",\"series\":";
    j_str(o, s.series);
  }
  o += "}\n";
  out_write(s, o);
}

void eval_watch(State& s, const Delta& d, bool wall_mode) {
  for (Rule& r : s.rules) {
    double value = 0.0;
    bool fired = false;
    switch (r.kind) {
      case RuleKind::kFallbackRate: {
        const std::uint64_t done = d.prefix.commits + d.prefix.fallbacks;
        if (done >= kWatchMinEvents) {
          value = static_cast<double>(d.prefix.fallbacks) /
                  static_cast<double>(done);
          fired = value > r.threshold;
        }
        break;
      }
      case RuleKind::kAbortStorm: {
        const std::uint64_t aborts = d.prefix.total_aborts();
        if (aborts >= kWatchMinEvents) {
          value = static_cast<double>(aborts) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, d.prefix.commits));
          fired = value > r.threshold;
        }
        break;
      }
      case RuleKind::kReclaimBacklog: {
        value = static_cast<double>(d.reclaim);
        fired = value > r.threshold;
        break;
      }
    }
    if (!fired) continue;
    s.violations.fetch_add(1, std::memory_order_relaxed);
    emit_watch(s, r, value, wall_mode);
    if (!r.announced) {
      r.announced = true;
      std::fprintf(stderr,
                   "[pto] watch: %s fired (value %.4g, threshold %.4g)\n",
                   rule_name(r.kind), value, r.threshold);
    }
  }
}

void emit_interval(State& s, bool wall_mode, double t0_ms, double t1_ms,
                   std::uint64_t vt0, std::uint64_t vt1) {
  const Delta d = collect(s, wall_mode);
  std::string o;
  o.reserve(1024);
  o += "{\"type\":\"metrics_interval\",\"schema\":1,\"seq\":";
  j_u64(o, ++s.seq);
  o += ",\"mode\":";
  if (wall_mode) {
    o += "\"wall\",\"t0_ms\":";
    j_dbl(o, t0_ms);
    o += ",\"t1_ms\":";
    j_dbl(o, t1_ms);
  } else {
    o += "\"sim\",\"run\":";
    j_u64(o, s.sim_run_id);
    o += ",\"vt0\":";
    j_u64(o, vt0);
    o += ",\"vt1\":";
    j_u64(o, vt1);
  }
  o += ",\"bench\":";
  j_str(o, s.bench);
  o += ",\"series\":";
  j_str(o, s.series);
  o += ",\"threads\":";
  j_u64(o, s.threads);
  o += ",\"prefix\":{\"attempts\":";
  j_u64(o, d.prefix.attempts);
  o += ",\"commits\":";
  j_u64(o, d.prefix.commits);
  o += ",\"fallbacks\":";
  j_u64(o, d.prefix.fallbacks);
  o += ",\"aborts\":{";
  for (unsigned c = 1; c < kTxCodeCount; ++c) {
    if (c != 1) o += ',';
    o += '"';
    o += tx_code_name(c);
    o += "\":";
    j_u64(o, d.prefix.aborts[c]);
  }
  o += "},\"aborts_total\":";
  j_u64(o, d.prefix.total_aborts());
  o += "},\"fallback_rate\":";
  const std::uint64_t done = d.prefix.commits + d.prefix.fallbacks;
  j_dbl(o, done == 0 ? 0.0
                     : static_cast<double>(d.prefix.fallbacks) /
                           static_cast<double>(done));
  o += ",\"sites\":[";
  for (std::size_t i = 0; i < d.sites.size(); ++i) {
    if (i != 0) o += ',';
    o += "{\"site\":";
    j_str(o, d.sites[i].first);
    o += ",\"attempts\":";
    j_u64(o, d.sites[i].second.attempts);
    o += ",\"commits\":";
    j_u64(o, d.sites[i].second.commits);
    o += ",\"fallbacks\":";
    j_u64(o, d.sites[i].second.fallbacks);
    o += ",\"aborts_total\":";
    j_u64(o, d.sites[i].second.total_aborts());
    o += '}';
  }
  o += ']';
  if (d.has_obs) {
    o += ",\"obs\":{\"samples\":";
    j_u64(o, d.obs_all.samples);
    o += ",\"p50_ns\":";
    j_u64(o, d.obs_all.p50);
    o += ",\"p90_ns\":";
    j_u64(o, d.obs_all.p90);
    o += ",\"p99_ns\":";
    j_u64(o, d.obs_all.p99);
    o += ",\"p999_ns\":";
    j_u64(o, d.obs_all.p999);
    o += ",\"max_ns\":";
    j_u64(o, d.obs_all.max);
    o += '}';
  }
  if (d.has_prof) {
    o += ",\"prof\":{\"cycles\":{";
    for (unsigned c = 0; c < prof::kClassCount; ++c) {
      if (c != 0) o += ',';
      o += '"';
      o += prof::cycle_class_name(c);
      o += "\":";
      j_u64(o, d.prof.classed[c]);
    }
    o += "},\"fast_spans\":";
    j_u64(o, d.prof.fast_spans);
    o += ",\"fallback_spans\":";
    j_u64(o, d.prof.fallback_spans);
    o += ",\"retry_waste_cycles\":";
    j_u64(o, d.prof.retry_waste_cycles);
    o += '}';
  }
  o += ",\"reclaim_backlog\":";
  j_i64(o, d.reclaim);
  o += "}\n";
  out_write(s, o);
  s.intervals.fetch_add(1, std::memory_order_relaxed);
  eval_watch(s, d, wall_mode);
  write_prom(s);
}

void emit_meta(State& s) {
  std::string o;
  o.reserve(256);
  o += "{\"type\":\"metrics_meta\",\"schema\":1,\"interval_ms\":";
  j_u64(o, s.cfg.interval_ms);
  o += ",\"git_sha\":";
  j_str(o, build_git_sha());
  o += ",\"build_type\":";
  j_str(o, build_type());
  o += ",\"hostname\":";
  j_str(o, telemetry::host_name());
  o += ",\"started\":";
  j_str(o, telemetry::iso8601_now());
  o += "}\n";
  out_write(s, o);
}

void tick_wall(State& s) {
  const double now_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - s.arm_time)
          .count();
  emit_interval(s, /*wall_mode=*/true, s.last_wall_ms, now_ms, 0, 0);
  s.last_wall_ms = now_ms;
}

void sampler_main() {
  State& s = st();
  std::unique_lock<std::mutex> lk(s.cv_mu);
  const auto period = std::chrono::milliseconds(s.cfg.interval_ms);
  for (;;) {
    if (s.cv.wait_for(lk, period, [&s] { return s.stop_sampler; })) return;
    lk.unlock();
    {
      std::lock_guard<std::mutex> mlk(s.mu);
      tick_wall(s);
    }
    lk.lock();
  }
}

/// Stop and join the sampler thread if running. mu must NOT be held.
void stop_sampler(State& s) {
  if (!s.sampling) return;
  {
    std::lock_guard<std::mutex> lk(s.cv_mu);
    s.stop_sampler = true;
  }
  s.cv.notify_all();
  s.sampler.join();
  s.sampling = false;
}

void metrics_warn_sink(const char* key, const char* msg) {
  State& s = st();
  if (!s.armed.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(s.mu);
  std::string o;
  o.reserve(192);
  o += "{\"type\":\"warning\",\"schema\":1,\"seq\":";
  j_u64(o, ++s.seq);
  o += ",\"key\":";
  j_str(o, key);
  o += ",\"msg\":";
  j_str(o, msg);
  o += "}\n";
  out_write(s, o);
}

// --------------------------------------------------------------------------
// Environment parsing and process-exit hook.
// --------------------------------------------------------------------------

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

std::vector<Rule> parse_watch(const std::string& spec) {
  std::vector<Rule> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    std::string name = tok;
    double thr = 0.0;
    bool has_thr = false;
    if (const std::size_t gt = tok.find('>'); gt != std::string::npos) {
      name = tok.substr(0, gt);
      char* end = nullptr;
      thr = std::strtod(tok.c_str() + gt + 1, &end);
      if (end == tok.c_str() + gt + 1 || *end != '\0') {
        warn_once("env.PTO_WATCH",
                  "ignoring PTO_WATCH rule '%s' with unparsable threshold",
                  tok.c_str());
        continue;
      }
      has_thr = true;
    }
    if (name == "fallback_rate") {
      out.push_back({RuleKind::kFallbackRate, has_thr ? thr : 0.5});
    } else if (name == "abort_storm") {
      out.push_back({RuleKind::kAbortStorm, has_thr ? thr : 4.0});
    } else if (name == "reclaim_backlog") {
      out.push_back({RuleKind::kReclaimBacklog, has_thr ? thr : 100000.0});
    } else {
      warn_once("env.PTO_WATCH",
                "ignoring unknown PTO_WATCH rule '%s' (want fallback_rate | "
                "abort_storm | reclaim_backlog, each with optional >thresh)",
                tok.c_str());
    }
  }
  return out;
}

std::uint64_t parse_interval_env() {
  const char* v = std::getenv("PTO_METRICS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const auto ms = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || ms == 0) {
    warn_once("env.PTO_METRICS",
              "ignoring invalid PTO_METRICS='%s' (want a positive interval "
              "in milliseconds)",
              v);
    return 0;
  }
  return ms;
}

void at_exit_flush() {
  State& s = st();
  stop_sampler(s);
  flush();
  if (s.cfg.strict && s.violations.load(std::memory_order_relaxed) > 0) {
    std::fprintf(stderr,
                 "[pto] metrics: %u watchdog violation(s) with "
                 "PTO_WATCH_STRICT=1; failing the process\n",
                 s.violations.load(std::memory_order_relaxed));
    std::_Exit(9);
  }
}

/// Scan the environment at static init so PTO_METRICS works with no code
/// changes in the armed binary, and register the exit flush *early* so it
/// runs after (atexit is LIFO) the other observability exit dumps.
const bool g_env_armed = [] {
  Config c;
  c.interval_ms = parse_interval_env();
  if (const char* v = std::getenv("PTO_METRICS_OUT"); v != nullptr) {
    c.out_path = v;
  }
  if (const char* v = std::getenv("PTO_METRICS_PROM"); v != nullptr) {
    c.prom_path = v;
  }
  if (const char* v = std::getenv("PTO_WATCH"); v != nullptr) c.watch = v;
  c.strict = env_truthy("PTO_WATCH_STRICT");
  if (!c.watch.empty() && c.interval_ms == 0) {
    warn_once("env.PTO_WATCH",
              "PTO_WATCH set without PTO_METRICS=<ms>; watchdog rules "
              "evaluate on interval snapshots and stay dormant");
  }
  if (c.interval_ms == 0) return false;
  configure(c);
  std::atexit(at_exit_flush);
  return true;
}();

}  // namespace

bool armed() { return st().armed.load(std::memory_order_relaxed); }

void configure(const Config& cfg) {
  State& s = st();
  stop_sampler(s);
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.out != nullptr && s.out != stderr) std::fclose(s.out);
  s.out = nullptr;
  s.file_failed = false;
  s.cfg = cfg;
  s.seq = 0;
  s.intervals.store(0, std::memory_order_relaxed);
  s.violations.store(0, std::memory_order_relaxed);
  s.bench.clear();
  s.series.clear();
  s.threads = 0;
  s.rules = parse_watch(cfg.watch);
  s.site_base.clear();
  s.obs_base = obs::RawMerged{};
  s.obs_base_valid = false;
  s.prof_base = prof::LedgerTotals{};
  s.arm_time = std::chrono::steady_clock::now();
  s.last_wall_ms = 0.0;
  s.stop_sampler = false;
  s.tick_cycles = cfg.interval_ms * kCyclesPerVirtualMs;
  s.sim_run_id = 0;
  s.sim_last_vt = 0;
  s.sim_active = false;
  detail::g_sim_next_tick = ~std::uint64_t{0};
  const bool on = cfg.interval_ms > 0;
  s.armed.store(on, std::memory_order_relaxed);
  set_warn_sink(on ? &metrics_warn_sink : nullptr);
  if (on) {
    // The interval deltas are fed by the telemetry registry; arming metrics
    // without it would stream all-zero counters, so switch it on the same
    // way PTO_STATS/PTO_TELEMETRY would.
    telemetry::set_enabled(true);
    // Baseline every source at arm so the first interval covers
    // [arm, first tick) only, whichever mode runs first.
    const auto sites = telemetry::Registry::instance().sites();
    s.site_base.resize(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      s.site_base[i] = sites[i]->snapshot();
    }
    if (obs::hist_on()) {
      s.obs_base = obs::merged_raw();
      s.obs_base_valid = true;
    }
    if (prof::on()) s.prof_base = prof::ledger_totals();
    emit_meta(s);
  }
}

void set_stream(std::ostream* os) {
  State& s = st();
  std::lock_guard<std::mutex> lk(s.mu);
  s.test_os = os;
}

std::uint64_t intervals_emitted() {
  return st().intervals.load(std::memory_order_relaxed);
}

unsigned watch_violations() {
  return st().violations.load(std::memory_order_relaxed);
}

void set_point_labels(const char* bench, const char* series,
                      unsigned threads) {
  State& s = st();
  if (!armed()) return;
  std::lock_guard<std::mutex> lk(s.mu);
  s.bench = bench != nullptr ? bench : "";
  s.series = series != nullptr ? series : "";
  s.threads = threads;
}

void native_point_begin() {
  State& s = st();
  if (!armed()) return;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    // The runner resets obs latency just before the point; re-baseline so
    // this point's interval deltas start from zero samples.
    if (obs::hist_on()) {
      s.obs_base = obs::merged_raw();
      s.obs_base_valid = true;
    } else {
      s.obs_base_valid = false;
    }
  }
  if (!s.sampling) {
    {
      std::lock_guard<std::mutex> lk(s.cv_mu);
      s.stop_sampler = false;
    }
    s.sampling = true;
    s.sampler = std::thread(sampler_main);
  }
}

void native_point_end() {
  State& s = st();
  if (!armed()) return;
  stop_sampler(s);
  // Trailing partial interval: per-point deltas telescope to the point's
  // end-of-run aggregate (the invariant tests and BenchPoint::intervals
  // both rely on the point being closed out here).
  std::lock_guard<std::mutex> lk(s.mu);
  tick_wall(s);
}

void force_tick() {
  State& s = st();
  if (!armed()) return;
  std::lock_guard<std::mutex> lk(s.mu);
  tick_wall(s);
}

void flush() {
  State& s = st();
  if (!armed()) return;
  std::lock_guard<std::mutex> lk(s.mu);
  std::string o;
  o.reserve(192);
  o += "{\"type\":\"metrics_flush\",\"schema\":1,\"seq\":";
  j_u64(o, ++s.seq);
  o += ",\"intervals\":";
  j_u64(o, s.intervals.load(std::memory_order_relaxed));
  o += ",\"violations\":";
  j_u64(o, s.violations.load(std::memory_order_relaxed));
  o += ",\"ended\":";
  j_str(o, telemetry::iso8601_now());
  o += "}\n";
  out_write(s, o);
  write_prom(s);
}

void sim_run_begin(unsigned nthreads) {
  State& s = st();
  if (!armed()) return;
  std::lock_guard<std::mutex> lk(s.mu);
  ++s.sim_run_id;
  s.sim_last_vt = 0;
  s.sim_active = true;
  // Outside a labeled bench point the thread count is still worth having.
  if (s.bench.empty()) s.threads = nthreads;
  detail::g_sim_next_tick = s.tick_cycles;
}

void sim_run_end(std::uint64_t final_vt) {
  State& s = st();
  if (!armed()) return;
  std::lock_guard<std::mutex> lk(s.mu);
  detail::g_sim_next_tick = ~std::uint64_t{0};
  if (!s.sim_active) return;
  s.sim_active = false;
  // Trailing partial interval closes the run, so per-run interval deltas
  // telescope to the run's aggregate even when the run is shorter than one
  // virtual interval.
  emit_interval(s, /*wall_mode=*/false, 0, 0, s.sim_last_vt, final_vt);
}

namespace detail {

void sim_tick(std::uint64_t vnow) {
  State& s = st();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.sim_active || s.tick_cycles == 0) return;
  // One record per crossing, covering every boundary a large charge may
  // have jumped over: [last, floor(vnow / tick) * tick].
  const std::uint64_t boundary = vnow / s.tick_cycles * s.tick_cycles;
  if (boundary <= s.sim_last_vt) {
    g_sim_next_tick = s.sim_last_vt + s.tick_cycles;
    return;
  }
  emit_interval(s, /*wall_mode=*/false, 0, 0, s.sim_last_vt, boundary);
  s.sim_last_vt = boundary;
  g_sim_next_tick = boundary + s.tick_cycles;
}

}  // namespace detail

}  // namespace pto::metrics
