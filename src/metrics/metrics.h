// pto::metrics — time-resolved metrics streaming, watchdogs, and the data
// feed behind tools/pto_top.py.
//
// Every other observability surface (telemetry registry, pto::obs latency
// histograms, PTO_PROF cycle ledgers) reports end-of-run aggregates. This
// layer samples those same sources *periodically* into time-bucketed deltas
// and streams them as NDJSON, so warm-up, steady state, and contention
// storms are visible as they happen:
//
//   PTO_METRICS=<ms>       arm interval snapshots every <ms> milliseconds —
//                          wall-clock ms on native runs (a background
//                          sampler thread bracketed by the bench runner),
//                          *virtual* ms on simx (1 ms = 3.4e6 virtual
//                          cycles, the paper's 3.4 GHz clock), ticked from
//                          the dispatcher at zero virtual cost: simulated
//                          cycles are byte-identical with metrics on or off.
//   PTO_METRICS_OUT=path   NDJSON destination (default pto_metrics.ndjson;
//                          "-" = stderr)
//   PTO_METRICS_PROM=path  also maintain a Prometheus text-exposition file,
//                          atomically rewritten (tmp + rename) every tick
//   PTO_WATCH=rules        watchdog rule list, e.g.
//                          "fallback_rate>0.5,abort_storm,reclaim_backlog";
//                          firings emit {"type":"watch"} events in-stream
//                          and a rate-limited stderr line
//   PTO_WATCH_STRICT=1     exit nonzero at process end if any rule fired
//                          (CI gate mode)
//
// Delta semantics under thread churn: every sampled source is a monotone
// counter whose storage survives thread exit (registry shards, obs histogram
// blocks, prof ledgers are never freed), so interval deltas telescope —
// the sum of all interval deltas equals the end-of-run aggregate exactly,
// regardless of threads registering or exiting mid-interval. A source that
// shrinks (an explicit reset() between bench points) re-baselines: the delta
// clamps at zero instead of underflowing. tests/test_metrics.cpp pins both
// properties.
//
// Record stream (one JSON object per line; validated by
// tools/check_metrics.py):
//   metrics_meta      once at arm: interval, paths, provenance
//   metrics_interval  one per tick: label + per-source deltas
//   watch             one per watchdog firing
//   warning           pto::warn_once events while armed
//   metrics_flush     once at exit: totals, violation count
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace pto::metrics {

/// 1 virtual millisecond in simulated cycles (the paper's 3.4 GHz i7-4770;
/// keep in sync with RunResult::ops_per_msec()).
inline constexpr std::uint64_t kCyclesPerVirtualMs = 3'400'000;

struct Config {
  std::uint64_t interval_ms = 0;  ///< 0 = off
  std::string out_path;           ///< NDJSON; "-" = stderr; "" = default file
  std::string prom_path;          ///< Prometheus text file; "" = off
  std::string watch;              ///< watchdog rule spec; "" = none
  bool strict = false;            ///< nonzero exit if any rule fired
};

/// True when interval snapshots are armed (PTO_METRICS or configure()).
bool armed();

/// Programmatic arm/re-arm (tests). Call at quiescence: resets sequence
/// numbers, baselines, and violation counts. interval_ms == 0 disarms.
void configure(const Config& cfg);

/// Redirect the NDJSON stream (tests); nullptr restores the configured file.
void set_stream(std::ostream* os);

/// Total metrics_interval records emitted so far (monotone). Bench runners
/// diff this around a point to fill BenchPoint::intervals.
std::uint64_t intervals_emitted();

/// Watchdog rule firings so far.
unsigned watch_violations();

/// Label attached to subsequent interval records; benchutil runners call
/// this per measurement point. Pass nullptr to clear.
void set_point_labels(const char* bench, const char* series,
                      unsigned threads);

// ---------------------------------------------------------------------------
// Native (wall-clock) sampling. The native bench runner brackets each
// measurement point; begin re-baselines (the runner resets obs latency just
// before) and starts the sampler thread, end stops it and emits the trailing
// partial interval so per-point deltas telescope to the point's aggregate.
// ---------------------------------------------------------------------------
void native_point_begin();
void native_point_end();

/// Synchronous wall-mode tick (tests: no sleeping on the sampler cadence).
void force_tick();

/// Flush buffered records and rewrite the Prometheus file now. Called from
/// the process-exit hook; safe to call manually.
void flush();

// ---------------------------------------------------------------------------
// simx virtual-time ticker. sim::run() brackets each simulation;
// Runtime::charge() — the dispatcher's only clock-advancing edge — calls
// sim_maybe_tick with the running thread's clock. The running thread is a
// clock minimum over runnable threads (scheduler invariant), so its clock
// *is* virtual now. Everything a tick does happens in host memory: no
// virtual cycles are charged, no simulated allocation occurs, and the
// schedule is untouched.
// ---------------------------------------------------------------------------
void sim_run_begin(unsigned nthreads);
void sim_run_end(std::uint64_t final_vt);

namespace detail {
/// Next virtual-cycle tick boundary; ~0 whenever metrics is off or no
/// simulation is running, so the charge()-side gate is one compare that
/// never fires.
extern std::uint64_t g_sim_next_tick;
void sim_tick(std::uint64_t vnow);
}  // namespace detail

inline void sim_maybe_tick(std::uint64_t vnow) {
  if (vnow >= detail::g_sim_next_tick) detail::sim_tick(vnow);
}

}  // namespace pto::metrics
