// Epoch-based memory reclamation (3-epoch EBR, Fraser-style), templated on
// Platform so reservation stores and fences are charged by the simulator.
//
// Transactional elision (paper §5, "Optimization on Strengthened
// Invariants"): when the platform's transactions are strongly atomic, a
// Guard constructed inside a transaction reserves nothing — any free() of a
// line the transaction has touched aborts the transaction, so reservation is
// unnecessary. Under SoftHTM (not strongly atomic) this is unsafe; data
// structures therefore take a FallbackGuard *before* entering prefix(), which
// reserves only on such platforms. Guards nest via a per-handle depth count.
//
// Reclamation rule: a node retired at epoch e is freed once the global epoch
// reaches e+2; the epoch only advances when every active reservation equals
// the current epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/defs.h"
#include "common/gauges.h"
#include "platform/platform.h"

namespace pto {

template <class P>
class EpochDomain {
 public:
  class Handle;

  EpochDomain() { global_epoch_.init(2); }
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  ~EpochDomain() {
    for (auto& r : orphans_) r.del(r.p, r.ctx);
    gauges::reclaim_backlog().fetch_sub(
        static_cast<std::int64_t>(orphans_.size()), std::memory_order_relaxed);
  }

  /// Claim a per-thread slot. The Handle must outlive all Guards and retire
  /// calls made through it, and be used by one thread only.
  Handle register_thread() {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      std::uint32_t expect = 0;
      if (slots_[i].claimed.load(std::memory_order_relaxed) == 0 &&
          slots_[i].claimed.compare_exchange_strong(expect, 1)) {
        slots_[i].res.store(kQuiescent, std::memory_order_relaxed);
        // Track the highest slot ever claimed on a *host* atomic (never
        // charged by the simulator) so reservation scans can stop early.
        unsigned hwm = slot_hwm_.load(std::memory_order_relaxed);
        while (hwm < i + 1 &&
               !slot_hwm_.compare_exchange_weak(hwm, i + 1,
                                                std::memory_order_relaxed)) {
        }
        return Handle(this, i);
      }
    }
    // Out of slots: a misconfigured harness; fail loudly.
    assert(false && "EpochDomain: more than kMaxThreads concurrent handles");
    return Handle(this, 0);
  }

  /// RAII reservation. See file comment for the elision rules.
  class Guard {
   public:
    explicit Guard(Handle& h) : h_(&h) {
      if (P::in_tx() && P::strongly_atomic()) {
        mode_ = kTxElided;  // strong atomicity protects the tx for free
        return;
      }
      if (h.depth_++ > 0) {
        mode_ = kNested;  // an outer guard already holds the reservation
        return;
      }
      mode_ = kActive;
      EpochDomain& d = *h.domain_;
      std::uint64_t e = d.global_epoch_.load(std::memory_order_acquire);
      d.slots_[h.slot_].res.store(e, std::memory_order_relaxed);
      P::fence();  // order the reservation before the data accesses
    }
    ~Guard() {
      switch (mode_) {
        case kTxElided:
          break;
        case kNested:
          --h_->depth_;
          break;
        case kActive:
          --h_->depth_;
          // seq_cst, as in conventional EBR: the quiescence announcement
          // must not be reordered before the last data access. Together
          // with the entry fence this is the "two memory fences and two
          // stores" the paper's transactional lookups elide (§4.5).
          h_->domain_->slots_[h_->slot_].res.store(kQuiescent);
          break;
      }
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    enum Mode { kTxElided, kNested, kActive };
    Handle* h_;
    Mode mode_;
  };

  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : domain_(o.domain_), slot_(o.slot_), depth_(o.depth_),
          limbo_(std::move(o.limbo_)) {
      o.domain_ = nullptr;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() {
      if (domain_ == nullptr) return;
      // Park undelivered retirements with the domain; freed at domain
      // destruction (or by other handles' reclaim scans via flush()).
      if (!limbo_.empty()) {
        std::lock_guard<std::mutex> lk(domain_->orphan_mu_);
        for (auto& r : limbo_) {
          r.ctx = nullptr;  // pools may die with this handle: destroy outright
          domain_->orphans_.push_back(r);
        }
      }
      domain_->slots_[slot_].res.store(kQuiescent, std::memory_order_release);
      domain_->slots_[slot_].claimed.store(0, std::memory_order_release);
    }

    /// Schedule *p for deletion once no earlier-epoch guard can hold it.
    template <class T>
    void retire(T* p) {
      limbo_.push_back(
          {p, domain_->global_epoch_.load(std::memory_order_relaxed),
           &deleter<T>, nullptr});
      // Host-side gauge for the metrics watchdog (`reclaim_backlog` rule);
      // a relaxed host atomic, so it never charges virtual cycles.
      gauges::reclaim_backlog().fetch_add(1, std::memory_order_relaxed);
      if (limbo_.size() >= kReclaimBatch) reclaim_some();
    }

    /// Retire with a custom disposer and context (e.g. recycle into a pool).
    /// If this handle dies before the grace period elapses, the entry is
    /// re-disposed with ctx == nullptr, which must mean "destroy outright" —
    /// pools need not outlive the domain.
    void retire_custom(void* p, void (*del)(void*, void*), void* ctx) {
      limbo_.push_back(
          {p, domain_->global_epoch_.load(std::memory_order_relaxed), del,
           ctx});
      gauges::reclaim_backlog().fetch_add(1, std::memory_order_relaxed);
      if (limbo_.size() >= kReclaimBatch) reclaim_some();
    }

    /// Best-effort: advance the epoch and free what is safe. noinline so the
    /// frame is present in sanitizer free-stacks: the TSan suppression for
    /// guard-less optimistic prefix reads (tools/tsan.supp) anchors on this
    /// symbol, and inlining it into retire() would make the match flaky.
    PTO_NOINLINE void reclaim_some() {
      EpochDomain& d = *domain_;
      std::uint64_t g = d.global_epoch_.load(std::memory_order_acquire);
      if (d.all_reservations_at(g)) {
        std::uint64_t expect = g;
        if (d.global_epoch_.compare_exchange_strong(expect, g + 1)) g = g + 1;
      }
      std::size_t kept = 0;
      for (std::size_t i = 0; i < limbo_.size(); ++i) {
        if (limbo_[i].epoch + 2 <= g) {
          limbo_[i].del(limbo_[i].p, limbo_[i].ctx);
        } else {
          limbo_[kept++] = limbo_[i];
        }
      }
      const std::size_t freed = limbo_.size() - kept;
      if (freed != 0) {
        gauges::reclaim_backlog().fetch_sub(
            static_cast<std::int64_t>(freed), std::memory_order_relaxed);
      }
      limbo_.resize(kept);
    }

    std::size_t limbo_size() const { return limbo_.size(); }
    unsigned slot() const { return slot_; }

   private:
    friend class EpochDomain;
    friend class Guard;
    Handle(EpochDomain* d, unsigned slot) : domain_(d), slot_(slot) {}

    EpochDomain* domain_;
    unsigned slot_;
    int depth_ = 0;
    struct Retired {
      void* p;
      std::uint64_t epoch;
      void (*del)(void*, void*);
      void* ctx;
    };
    std::vector<Retired> limbo_;
  };

  /// Testing/teardown aid: with no guards active, repeatedly advance the
  /// epoch so a subsequent reclaim_some() can free everything.
  void advance_epochs(unsigned n = 3) {
    for (unsigned i = 0; i < n; ++i) {
      std::uint64_t g = global_epoch_.load(std::memory_order_acquire);
      if (!all_reservations_at(g)) return;
      std::uint64_t expect = g;
      global_epoch_.compare_exchange_strong(expect, g + 1);
    }
  }

  std::uint64_t current_epoch() {
    return global_epoch_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};
  static constexpr std::size_t kReclaimBatch = 64;
  /// Minimum scan width: 64, the pre-scale-out kMaxThreads, pinned as a
  /// literal so golden simulated cycles at <= 64 threads stay byte-identical.
  static constexpr unsigned kScanFloor = 64;

  template <class T>
  static void deleter(void* q, void*) {
    P::template destroy<T>(static_cast<T*>(q));
  }

  /// Slots the reservation scan must cover. Floored at kScanFloor (the old
  /// kMaxThreads) so runs of <= 64 threads charge exactly the same loads as
  /// before the 1024-thread scale-out; past that, only the claimed
  /// high-water mark — not all 1024 slots — is scanned.
  unsigned scan_bound() const {
    unsigned hwm = slot_hwm_.load(std::memory_order_relaxed);
    return hwm > kScanFloor ? hwm : kScanFloor;
  }

  bool all_reservations_at(std::uint64_t g) {
    const unsigned n = scan_bound();
    for (unsigned i = 0; i < n; ++i) {
      if (slots_[i].claimed.load(std::memory_order_acquire) == 0) continue;
      std::uint64_t r = slots_[i].res.load(std::memory_order_acquire);
      if (r != kQuiescent && r != g) return false;
    }
    return true;
  }

  struct alignas(kCacheLine) Slot {
    Atom<P, std::uint64_t> res;
    Atom<P, std::uint32_t> claimed;
    Slot() { res.init(kQuiescent); claimed.init(0); }
  };

  Atom<P, std::uint64_t> global_epoch_;
  Slot slots_[kMaxThreads];
  /// Highest claimed slot index + 1, monotonic; host atomic (uncharged).
  std::atomic<unsigned> slot_hwm_{0};
  std::mutex orphan_mu_;
  std::vector<typename Handle::Retired> orphans_;
};

}  // namespace pto
