// Hazard-pointer reclamation (Michael, "Hazard Pointers: Safe Memory
// Reclamation for Lock-Free Objects", TPDS 2004 — the paper's reference
// [34]), templated on Platform.
//
// Transactional elision (paper §2.3 / §5): publishing a hazard pointer is a
// store + fence + validating re-read per protected node; removing it is
// another store. Inside a strongly atomic transaction none of that is
// needed — memory the transaction has read cannot be freed under it (a
// racing free aborts the transaction), so `protect` degenerates to a plain
// load. The paper calls this out twice: "intermediate updates to the hazard
// lists ... can be safely eliminated as redundant stores in the prefix
// transaction" (§2.3) and "T need not guard locations via hazard pointers
// during its own operation" (§5). The abl_reclaimers bench quantifies it.
//
// Non-transactional threads keep full protection, and transactional frees
// still respect *their* published hazards (retire/scan ignores nothing).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/defs.h"
#include "platform/platform.h"

namespace pto {

template <class P, unsigned SlotsPerThread = 4>
class HazardDomain {
 public:
  class Handle;

  HazardDomain() = default;
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  ~HazardDomain() {
    // At destruction no thread may hold references; free everything parked.
    for (auto& r : orphans_) r.del(r.p);
  }

  Handle register_thread() {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      std::uint32_t expect = 0;
      if (rows_[i].claimed.load(std::memory_order_relaxed) == 0 &&
          rows_[i].claimed.compare_exchange_strong(expect, 1)) {
        for (auto& s : rows_[i].hp) s.store(0, std::memory_order_relaxed);
        // Host-atomic (uncharged) high-water mark so hazard scans can stop
        // at the claimed prefix instead of walking all kMaxThreads rows.
        unsigned hwm = row_hwm_.load(std::memory_order_relaxed);
        while (hwm < i + 1 &&
               !row_hwm_.compare_exchange_weak(hwm, i + 1,
                                               std::memory_order_relaxed)) {
        }
        return Handle(this, i);
      }
    }
    assert(false && "HazardDomain: out of thread rows");
    return Handle(this, 0);
  }

  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : dom_(o.dom_), row_(o.row_), limbo_(std::move(o.limbo_)) {
      o.dom_ = nullptr;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() {
      if (dom_ == nullptr) return;
      for (unsigned i = 0; i < SlotsPerThread; ++i) clear(i);
      // Try to drain; park the irreducible rest with the domain.
      scan_and_reclaim();
      for (auto& r : limbo_) dom_->orphans_.push_back(r);
      dom_->rows_[row_].claimed.store(0, std::memory_order_release);
    }

    /// Publish slot `i` as protecting the pointee of `src`, with the
    /// validate-retry loop — unless running inside a strongly atomic
    /// transaction, where protection is free (see file comment).
    template <class T>
    T* protect(unsigned i, Atom<P, T*>& src) {
      assert(i < SlotsPerThread);
      if (P::in_tx() && P::strongly_atomic()) {
        return src.load(std::memory_order_relaxed);
      }
      auto& slot = dom_->rows_[row_].hp[i];
      for (;;) {
        T* p = src.load();
        slot.store(reinterpret_cast<std::uintptr_t>(p),
                   std::memory_order_relaxed);
        P::fence();  // publication must precede the validating re-read
        if (src.load() == p) return p;
      }
    }

    /// Publish an already-loaded pointer (caller revalidates reachability).
    void set(unsigned i, const void* p) {
      assert(i < SlotsPerThread);
      if (P::in_tx() && P::strongly_atomic()) return;
      dom_->rows_[row_].hp[i].store(reinterpret_cast<std::uintptr_t>(p));
    }

    void clear(unsigned i) {
      assert(i < SlotsPerThread);
      if (P::in_tx() && P::strongly_atomic()) return;
      dom_->rows_[row_].hp[i].store(0);
    }

    template <class T>
    void retire(T* p) {
      limbo_.push_back({p, &deleter<T>});
      if (limbo_.size() >= kScanThreshold) scan_and_reclaim();
    }

    /// Michael's scan: free every retired node no thread currently hazards.
    void scan_and_reclaim() {
      const unsigned n = dom_->scan_bound();
      std::vector<std::uintptr_t> hazards;
      hazards.reserve(n * SlotsPerThread);
      for (unsigned t = 0; t < n; ++t) {
        if (dom_->rows_[t].claimed.load(std::memory_order_acquire) == 0) {
          continue;
        }
        for (unsigned i = 0; i < SlotsPerThread; ++i) {
          std::uintptr_t h = dom_->rows_[t].hp[i].load();
          if (h != 0) hazards.push_back(h);
        }
      }
      std::sort(hazards.begin(), hazards.end());
      std::size_t kept = 0;
      for (std::size_t i = 0; i < limbo_.size(); ++i) {
        auto addr = reinterpret_cast<std::uintptr_t>(limbo_[i].p);
        if (std::binary_search(hazards.begin(), hazards.end(), addr)) {
          limbo_[kept++] = limbo_[i];
        } else {
          limbo_[i].del(limbo_[i].p);
        }
      }
      limbo_.resize(kept);
    }

    std::size_t limbo_size() const { return limbo_.size(); }
    unsigned row() const { return row_; }

   private:
    friend class HazardDomain;
    Handle(HazardDomain* d, unsigned row) : dom_(d), row_(row) {}

    struct Retired {
      void* p;
      void (*del)(void*);
    };

    HazardDomain* dom_;
    unsigned row_;
    std::vector<Retired> limbo_;
  };

 private:
  /// Minimum scan width: 64, the pre-scale-out kMaxThreads. Pinned literals
  /// (not kMaxThreads, now 1024) so runs of <= 64 threads keep the exact
  /// pre-refactor scan charges and retire cadence — golden cycles depend on
  /// both.
  static constexpr unsigned kScanFloor = 64;
  static constexpr std::size_t kScanThreshold = 2 * kScanFloor;

  /// Rows a scan must cover: the claimed high-water mark, floored at
  /// kScanFloor for <= 64-thread charge identity.
  unsigned scan_bound() const {
    unsigned hwm = row_hwm_.load(std::memory_order_relaxed);
    return hwm > kScanFloor ? hwm : kScanFloor;
  }

  template <class T>
  static void deleter(void* q) {
    P::template destroy<T>(static_cast<T*>(q));
  }

  struct alignas(kCacheLine) Row {
    Atom<P, std::uint32_t> claimed{};
    Atom<P, std::uintptr_t> hp[SlotsPerThread]{};
  };

  Row rows_[kMaxThreads];
  /// Highest claimed row index + 1, monotonic; host atomic (uncharged).
  std::atomic<unsigned> row_hwm_{0};
  std::vector<typename Handle::Retired> orphans_;
};

}  // namespace pto
