// Unified transaction status codes shared by every HTM backend (Intel RTM,
// the software fallback, and the simulator's HTM model).
//
// A `tx_begin` attempt either starts (TX_STARTED) or reports why the previous
// attempt aborted. The nonzero codes double as longjmp payloads for the
// software backends, so TX_STARTED must be 0 (setjmp's direct-return value).
#pragma once

namespace pto {

/// Returned by Platform::tx_begin when the transaction is running.
inline constexpr unsigned TX_STARTED = 0u;

/// Abort causes. Values are stable across backends so PrefixStats histograms
/// are comparable between native and simulated runs.
enum TxAbort : unsigned {
  TX_ABORT_CONFLICT = 1,  ///< data conflict with a concurrent thread
  TX_ABORT_CAPACITY = 2,  ///< read/write set exceeded hardware capacity
  TX_ABORT_EXPLICIT = 3,  ///< tx_abort<code>() executed by the program
  TX_ABORT_DURATION = 4,  ///< transaction ran longer than a scheduler quantum
  TX_ABORT_SPURIOUS = 5,  ///< injected/spontaneous abort (testing, interrupts)
  TX_ABORT_OTHER = 6,     ///< anything else (unsupported instruction, ...)
};

/// Number of distinct status values (for stats arrays indexed by code).
inline constexpr unsigned kTxCodeCount = 7;

/// Human-readable name for a status code.
constexpr const char* tx_code_name(unsigned code) {
  switch (code) {
    case TX_STARTED: return "started";
    case TX_ABORT_CONFLICT: return "conflict";
    case TX_ABORT_CAPACITY: return "capacity";
    case TX_ABORT_EXPLICIT: return "explicit";
    case TX_ABORT_DURATION: return "duration";
    case TX_ABORT_SPURIOUS: return "spurious";
    default: return "other";
  }
}

/// Explicit-abort user payloads. The paper's §2.4 uses explicit aborts when a
/// prefix transaction observes a state that would require helping; we reserve
/// distinct codes so stats can distinguish policy aborts from validation
/// failures.
enum TxUserCode : unsigned char {
  TX_CODE_NONE = 0,
  TX_CODE_HELPING = 1,     ///< observed a concurrent operation's descriptor
  TX_CODE_VALIDATION = 2,  ///< optimistic snapshot no longer valid
  TX_CODE_POLICY = 3,      ///< algorithm chose fallback (capacity hint, ...)
};

}  // namespace pto
