#include "htm/softhtm.h"

#include "htm/htm.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PTO_CPU_RELAX() _mm_pause()
#else
#define PTO_CPU_RELAX() ((void)0)
#endif

namespace pto::softhtm {

namespace {
/// The global NOrec sequence lock. Even = quiescent, odd = a writer (a
/// committing transaction or a non-transactional store) owns shared memory.
alignas(kCacheLine) std::atomic<std::uint64_t> g_clock{0};
thread_local Tx g_tx;
thread_local unsigned char g_last_user_code = TX_CODE_NONE;
}  // namespace

Tx& tls_tx() { return g_tx; }
std::atomic<std::uint64_t>& global_clock() { return g_clock; }
unsigned char last_user_code() { return g_last_user_code; }

namespace detail {

std::uint64_t await_even_clock() {
  for (;;) {
    std::uint64_t c = g_clock.load(std::memory_order_seq_cst);
    if ((c & 1) == 0) return c;
    PTO_CPU_RELAX();
  }
}

std::uint64_t lock_clock() {
  for (;;) {
    std::uint64_t c = g_clock.load(std::memory_order_seq_cst);
    if ((c & 1) == 0 &&
        g_clock.compare_exchange_weak(c, c + 1, std::memory_order_seq_cst)) {
      return c;
    }
    PTO_CPU_RELAX();
  }
}

void unlock_clock(std::uint64_t even_value) {
  g_clock.store(even_value + 2, std::memory_order_seq_cst);
}

void validate_or_abort(Tx& tx) {
  for (;;) {
    std::uint64_t c = await_even_clock();
    bool ok = true;
    for (const LogEntry& e : tx.reads) {
      if (e.rd(e.obj) != e.val) {
        ok = false;
        break;
      }
    }
    if (!ok) abort_tx(TX_ABORT_CONFLICT, TX_CODE_NONE);
    if (g_clock.load(std::memory_order_seq_cst) == c) {
      tx.snapshot = c;
      return;
    }
  }
}

}  // namespace detail

unsigned begin() {
  Tx& tx = g_tx;
  if (tx.active) {
    ++tx.depth;  // flat nesting
    return TX_STARTED;
  }
  tx.reads.clear();
  tx.writes.clear();
  tx.depth = 0;
  tx.user_code = TX_CODE_NONE;
  tx.snapshot = detail::await_even_clock();
  tx.active = true;
  return TX_STARTED;
}

void commit() {
  Tx& tx = g_tx;
  if (tx.depth > 0) {
    --tx.depth;
    return;
  }
  if (tx.writes.empty()) {
    // Read-only transactions are already consistent at `snapshot`.
    tx.active = false;
    tx.reads.clear();
    return;
  }
  auto& clock = global_clock();
  std::uint64_t c = tx.snapshot;
  while (!clock.compare_exchange_strong(c, c + 1, std::memory_order_seq_cst)) {
    // Someone committed since our snapshot: re-validate, then retry from the
    // validated clock value.
    detail::validate_or_abort(tx);
    c = tx.snapshot;
  }
  for (const LogEntry& e : tx.writes) e.wr(e.obj, e.val);
  clock.store(c + 2, std::memory_order_seq_cst);
  tx.active = false;
  tx.reads.clear();
  tx.writes.clear();
}

void abort_tx(unsigned cause, unsigned char user_code) {
  Tx& tx = g_tx;
  g_last_user_code = user_code;
  tx.active = false;
  tx.depth = 0;
  tx.reads.clear();
  tx.writes.clear();
  // The longjmp bypasses htm::tx_begin's abort-return path, so the facade's
  // telemetry site is fed here (writes are buffered, nothing to roll back).
  if (PTO_UNLIKELY(::pto::telemetry::enabled())) {
    ::pto::telemetry::site_abort(htm::detail::native_site(), cause);
  }
  std::longjmp(tx.env, static_cast<int>(cause));
}

}  // namespace pto::softhtm
