// SoftHTM: a software stand-in for best-effort hardware transactional memory,
// used on machines without working Intel TSX.
//
// Design: NOrec-style STM [Dalessandro et al., PPoPP'10] with one global
// versioned sequence lock. Transactional reads are validated by value against
// the global clock; writes are buffered and applied at commit while holding
// the clock (odd = write-back in progress).
//
// Strong atomicity: the paper's PTO technique requires that transactions and
// *non-transactional* lock-free code interoperate. SoftHTM achieves this by
// routing every non-transactional access to shared `std::atomic` objects
// through accessors that respect the same sequence lock: loads are
// seqlock-stable reads, and stores/CAS/RMW briefly acquire the clock. This is
// correct but serializes writers on one cache line, so SoftHTM is a
// *correctness* substrate (tests, portability) — performance claims are only
// made on real RTM or on the simulator, which both provide true strong
// atomicity. Note also that the global lock technically weakens lock-freedom;
// see DESIGN.md §2.
//
// Restrictions (same as real RTM): code inside a transaction must be
// trivially unwindable — aborts longjmp to the checkpoint installed by
// pto::prefix(), skipping destructors.
#pragma once

#include <atomic>
#include <csetjmp>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/defs.h"
#include "htm/txcode.h"

namespace pto::softhtm {

using ReadFn = std::uint64_t (*)(const void*);
using WriteFn = void (*)(void*, std::uint64_t);

/// One logged access. `obj` points at a std::atomic<T>; `rd`/`wr` are the
/// type-erased accessors for that T.
struct LogEntry {
  void* obj;
  std::uint64_t val;
  ReadFn rd;
  WriteFn wr;
};

/// Per-thread transaction descriptor.
struct Tx {
  bool active = false;
  int depth = 0;  ///< flat nesting depth beyond the outermost begin
  std::uint64_t snapshot = 0;
  unsigned char user_code = TX_CODE_NONE;
  std::vector<LogEntry> reads;
  std::vector<LogEntry> writes;
  std::jmp_buf env;  ///< abort checkpoint, armed by pto::prefix()
};

Tx& tls_tx();
std::atomic<std::uint64_t>& global_clock();

/// Begin a transaction (or nest into the active one). Returns TX_STARTED.
/// The caller must have armed tls_tx().env with setjmp *before* calling.
unsigned begin();

/// Commit the innermost begin; the outermost commit validates and writes back.
void commit();

/// Abort the active transaction: roll back buffered state and longjmp to the
/// checkpoint with `cause`.
[[noreturn]] void abort_tx(unsigned cause, unsigned char user_code);

inline bool in_tx() { return tls_tx().active; }

/// User payload of the last explicit abort on this thread.
unsigned char last_user_code();

namespace detail {

template <class T>
constexpr void check_type() {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "SoftHTM atomics require trivially copyable T of <= 8 bytes");
}

template <class T>
std::uint64_t erased_read(const void* p) {
  return ::pto::widen<T>(
      static_cast<const std::atomic<T>*>(p)->load(std::memory_order_seq_cst));
}

template <class T>
void erased_write(void* p, std::uint64_t v) {
  static_cast<std::atomic<T>*>(p)->store(::pto::narrow<T>(v),
                                         std::memory_order_seq_cst);
}

/// Re-validate the read set until the clock is stable; abort on mismatch.
/// On success, tx.snapshot equals the validated clock value.
void validate_or_abort(Tx& tx);

/// Spin until the clock is even (no write-back in progress); returns it.
std::uint64_t await_even_clock();

/// Acquire the clock as a writer lock (even -> odd). Returns the even value.
std::uint64_t lock_clock();

void unlock_clock(std::uint64_t even_value);

}  // namespace detail

// ---------------------------------------------------------------------------
// Transactional accessors
// ---------------------------------------------------------------------------

template <class T>
T tx_load(const std::atomic<T>& a) {
  detail::check_type<T>();
  Tx& tx = tls_tx();
  // Read-own-writes: scan the write buffer newest-first.
  for (auto it = tx.writes.rbegin(); it != tx.writes.rend(); ++it) {
    if (it->obj == const_cast<std::atomic<T>*>(&a)) {
      return ::pto::narrow<T>(it->val);
    }
  }
  auto& clock = global_clock();
  for (;;) {
    T v = a.load(std::memory_order_seq_cst);
    std::uint64_t c = clock.load(std::memory_order_seq_cst);
    if (c == tx.snapshot) {
      tx.reads.push_back({const_cast<std::atomic<T>*>(&a), ::pto::widen(v),
                          &detail::erased_read<T>, nullptr});
      return v;
    }
    detail::validate_or_abort(tx);  // extends snapshot or aborts
  }
}

template <class T>
void tx_store(std::atomic<T>& a, T v) {
  detail::check_type<T>();
  Tx& tx = tls_tx();
  for (auto& e : tx.writes) {
    if (e.obj == &a) {
      e.val = ::pto::widen(v);
      return;
    }
  }
  tx.writes.push_back({&a, ::pto::widen(v), nullptr, &detail::erased_write<T>});
}

// ---------------------------------------------------------------------------
// Strongly-atomic non-transactional accessors
// ---------------------------------------------------------------------------

template <class T>
T nt_load(const std::atomic<T>& a) {
  detail::check_type<T>();
  auto& clock = global_clock();
  for (;;) {
    std::uint64_t c1 = detail::await_even_clock();
    T v = a.load(std::memory_order_seq_cst);
    if (clock.load(std::memory_order_seq_cst) == c1) return v;
  }
}

template <class T>
void nt_store(std::atomic<T>& a, T v) {
  detail::check_type<T>();
  std::uint64_t c = detail::lock_clock();
  a.store(v, std::memory_order_seq_cst);
  detail::unlock_clock(c);
}

template <class T>
bool nt_cas(std::atomic<T>& a, T& expected, T desired) {
  detail::check_type<T>();
  std::uint64_t c = detail::lock_clock();
  bool ok = a.compare_exchange_strong(expected, desired,
                                      std::memory_order_seq_cst);
  detail::unlock_clock(c);
  return ok;
}

template <class T>
T nt_fetch_add(std::atomic<T>& a, T delta) {
  detail::check_type<T>();
  std::uint64_t c = detail::lock_clock();
  T old = a.fetch_add(delta, std::memory_order_seq_cst);
  detail::unlock_clock(c);
  return old;
}

}  // namespace pto::softhtm
