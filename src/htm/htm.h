// Native HTM facade: dispatches to Intel RTM when the CPU supports it and a
// probe transaction commits, otherwise to SoftHTM (htm/softhtm.h).
//
// Backend selection happens once, at first use, and can be forced with the
// environment variable PTO_HTM=rtm|soft. Selection must occur before threads
// start transactions (it is made on first call, which NativePlatform performs
// eagerly).
#pragma once

#include <csetjmp>
#include <cstdint>

#include "htm/rtm_status.h"
#include "htm/softhtm.h"
#include "htm/txcode.h"
#include "telemetry/registry.h"

#if defined(PTO_HAVE_RTM)
#include <immintrin.h>

// rtm_status.h mirrors the ISA-defined bit layout so the decoder is testable
// without TSX; pin the mirror to the intrinsic header's definitions.
static_assert(pto::htm::kRtmExplicit == _XABORT_EXPLICIT);
static_assert(pto::htm::kRtmRetry == _XABORT_RETRY);
static_assert(pto::htm::kRtmConflict == _XABORT_CONFLICT);
static_assert(pto::htm::kRtmCapacity == _XABORT_CAPACITY);
static_assert(pto::htm::kRtmDebug == _XABORT_DEBUG);
static_assert(pto::htm::kRtmNested == _XABORT_NESTED);
#endif

namespace pto::htm {

enum class Backend { kRTM, kSoft };

/// The active backend (probed once; sticky for the process lifetime).
Backend backend();

/// True when transactions are strongly atomic with respect to plain
/// non-transactional accesses (RTM: yes; SoftHTM: only via its nt_* wrappers,
/// and epoch elision is additionally unsafe there — see reclaim/epoch.h).
inline bool strongly_atomic() { return backend() == Backend::kRTM; }

/// Checkpoint for software aborts; pto::prefix() arms it with setjmp before
/// calling tx_begin(). Unused (but harmless) under RTM.
inline std::jmp_buf& checkpoint() { return softhtm::tls_tx().env; }

unsigned char last_user_code();

namespace detail {
Backend probe_backend();

/// Telemetry site for the native facade ("htm.rtm" / "htm.soft"), so native
/// runs report commits and aborts-by-cause through the same registry schema
/// as the simulator. Commits are recorded after tx_end and aborts on the
/// abort return path — never inside a running transaction, where the shard
/// write would join the write set and be rolled back. RTM aborts surface
/// here via tx_begin's status; SoftHTM aborts are recorded by
/// softhtm::abort_tx (the longjmp bypasses tx_begin's return).
telemetry::Site* native_site();
#if defined(PTO_HAVE_RTM)
extern thread_local unsigned char tls_rtm_user_code;
#endif
}  // namespace detail

inline unsigned tx_begin() {
#if defined(PTO_HAVE_RTM)
  if (backend() == Backend::kRTM) {
    unsigned s = _xbegin();
    if (s == _XBEGIN_STARTED) return TX_STARTED;
    if (s & kRtmExplicit) detail::tls_rtm_user_code = rtm_abort_code(s);
    unsigned code = decode_rtm_status(s);
    if (PTO_UNLIKELY(telemetry::enabled())) {
      telemetry::site_abort(detail::native_site(), code);
    }
    return code;
  }
#endif
  return softhtm::begin();
}

inline void tx_end() {
#if defined(PTO_HAVE_RTM)
  if (backend() == Backend::kRTM) {
    _xend();
    // _xtest guards the flat-nested case: only the outermost commit leaves
    // the transaction, and the shard write must stay non-transactional.
    if (_xtest() == 0 && PTO_UNLIKELY(telemetry::enabled())) {
      telemetry::site_commit(detail::native_site());
    }
    return;
  }
#endif
  softhtm::commit();
  if (!softhtm::in_tx() && PTO_UNLIKELY(telemetry::enabled())) {
    telemetry::site_commit(detail::native_site());
  }
}

/// Explicitly abort the running transaction with user payload C.
/// RTM requires the abort code to be an immediate, hence the template.
template <unsigned char C>
[[noreturn]] inline void tx_abort() {
#if defined(PTO_HAVE_RTM)
  if (backend() == Backend::kRTM) {
    _xabort(C);
    __builtin_unreachable();
  }
#endif
  softhtm::abort_tx(TX_ABORT_EXPLICIT, C);
}

inline bool in_tx() {
#if defined(PTO_HAVE_RTM)
  if (backend() == Backend::kRTM) return _xtest() != 0;
#endif
  return softhtm::in_tx();
}

}  // namespace pto::htm
