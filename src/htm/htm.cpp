#include "htm/htm.h"

#include <cstdlib>
#include <cstring>

#if defined(PTO_HAVE_RTM)
#include <cpuid.h>
#endif

namespace pto::htm {

namespace detail {

#if defined(PTO_HAVE_RTM)
thread_local unsigned char tls_rtm_user_code = TX_CODE_NONE;

namespace {
bool cpu_has_rtm() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 11)) != 0;  // CPUID.07H:EBX.RTM
}

/// Some CPUs advertise RTM but always abort (TSX disabled by microcode).
/// Require at least one committed probe transaction before trusting it.
bool rtm_actually_commits() {
  for (int i = 0; i < 16; ++i) {
    unsigned s = _xbegin();
    if (s == _XBEGIN_STARTED) {
      _xend();
      return true;
    }
  }
  return false;
}
}  // namespace
#endif

Backend probe_backend() {
  if (const char* env = std::getenv("PTO_HTM")) {
    if (std::strcmp(env, "soft") == 0) return Backend::kSoft;
#if defined(PTO_HAVE_RTM)
    if (std::strcmp(env, "rtm") == 0) return Backend::kRTM;
#endif
  }
#if defined(PTO_HAVE_RTM)
  if (cpu_has_rtm() && rtm_actually_commits()) return Backend::kRTM;
#endif
  return Backend::kSoft;
}

}  // namespace detail

Backend backend() {
  static const Backend b = detail::probe_backend();
  return b;
}

namespace detail {
telemetry::Site* native_site() {
  static telemetry::Site* const s = telemetry::Registry::instance().intern(
      backend() == Backend::kRTM ? "htm.rtm" : "htm.soft");
  return s;
}
}  // namespace detail

unsigned char last_user_code() {
#if defined(PTO_HAVE_RTM)
  if (backend() == Backend::kRTM) return detail::tls_rtm_user_code;
#endif
  return softhtm::last_user_code();
}

}  // namespace pto::htm
