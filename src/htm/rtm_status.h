// Pure decoding of the Intel RTM abort status word (EAX after _xbegin) onto
// the stable txcode.h taxonomy, so native counters are bucket-for-bucket
// comparable with SoftHTM and simulator runs.
//
// The bit layout is fixed by the ISA (Intel SDM Vol. 1, §16.3.5 "RTM Abort
// Status Definition"), so the constants below are defined unconditionally and
// the whole decoder is testable on machines without TSX; when the RTM backend
// is compiled in, htm.h static_asserts them against <immintrin.h>.
#pragma once

#include "htm/txcode.h"

namespace pto::htm {

/// RTM abort status bits (mirrors _XABORT_* from <immintrin.h>).
inline constexpr unsigned kRtmExplicit = 1u << 0;  ///< _xabort executed
inline constexpr unsigned kRtmRetry = 1u << 1;     ///< may succeed on retry
inline constexpr unsigned kRtmConflict = 1u << 2;  ///< data conflict
inline constexpr unsigned kRtmCapacity = 1u << 3;  ///< buffer overflow
inline constexpr unsigned kRtmDebug = 1u << 4;     ///< debug breakpoint hit
inline constexpr unsigned kRtmNested = 1u << 5;    ///< abort in a nested tx

/// User payload of an explicit abort (valid only when kRtmExplicit is set).
constexpr unsigned char rtm_abort_code(unsigned s) {
  return static_cast<unsigned char>((s >> 24) & 0xffu);
}

/// Map a raw _xbegin status word to a TxAbort bucket.
///
/// Priority order matters because the hardware can set several bits at once
/// (kRtmNested in particular always accompanies the cause bit of the abort
/// that tore down the nest):
///   1. EXPLICIT  — the program asked; the user code says why.
///   2. CAPACITY  — deterministic resource exhaustion; never worth retrying,
///                  must win over an incidental conflict bit.
///   3. CONFLICT  — another thread touched our read/write set.
///   4. DEBUG     — trap inside the transaction; OTHER (tooling artifact).
///   5. RETRY set alone — transient micro-architectural abort (interrupt,
///                  TLB shootdown, ...): the hardware's "spurious" signal,
///                  mapped to TX_ABORT_SPURIOUS like the simulator's injected
///                  faults.
///   6. status 0  — the CPU provides no information (syscall/CPUID/page
///                  fault inside the transaction): OTHER.
constexpr unsigned decode_rtm_status(unsigned s) {
  if (s & kRtmExplicit) return TX_ABORT_EXPLICIT;
  if (s & kRtmCapacity) return TX_ABORT_CAPACITY;
  if (s & kRtmConflict) return TX_ABORT_CONFLICT;
  if (s & kRtmDebug) return TX_ABORT_OTHER;
  if (s & kRtmRetry) return TX_ABORT_SPURIOUS;
  return TX_ABORT_OTHER;
}

}  // namespace pto::htm
