// HDR-style log-linear latency histogram.
//
// Bucket layout: values below 2^kSubBits map one bucket per value; above
// that, each power-of-two tier is split into 2^kSubBits linear sub-buckets,
// giving a fixed relative error of at most one sub-bucket width (~3% with
// kSubBits = 5) across the full uint64 range. The layout is a pure function
// of the value, so histograms recorded by different threads (or processes)
// merge by bucket-wise addition — merging is associative and commutative.
//
// Concurrency contract: record() is single-writer (each thread owns its
// histogram; pto::obs shards per thread and per site). merge()/quantile()
// read plain counters and are meant to run at quiescence — the bench runner
// merges after worker threads join, which is what "lock-free merge at
// emission" means here: no lock is ever taken, because the sharding removes
// the need for one.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace pto::obs {

inline constexpr unsigned kHistSubBits = 5;
inline constexpr unsigned kHistSub = 1u << kHistSubBits;  // 32 sub-buckets
/// Tiers: one linear region (values < kHistSub) + one per exponent 5..63.
inline constexpr unsigned kHistBuckets = kHistSub * (64 - kHistSubBits + 1);

/// Bucket index for a value (log-linear; monotone non-decreasing in v).
constexpr unsigned hist_bucket_index(std::uint64_t v) {
  if (v < kHistSub) return static_cast<unsigned>(v);
  const unsigned top = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned sub =
      static_cast<unsigned>(v >> (top - kHistSubBits)) & (kHistSub - 1);
  return (top - kHistSubBits + 1) * kHistSub + sub;
}

/// Smallest value mapping to bucket `idx`.
constexpr std::uint64_t hist_bucket_lower(unsigned idx) {
  if (idx < kHistSub) return idx;
  const unsigned tier = idx / kHistSub;  // >= 1
  const unsigned top = tier + kHistSubBits - 1;
  const unsigned sub = idx % kHistSub;
  return (1ull << top) + (static_cast<std::uint64_t>(sub) << (top - kHistSubBits));
}

/// Width of bucket `idx` (1 in the linear region, doubling per tier).
constexpr std::uint64_t hist_bucket_width(unsigned idx) {
  if (idx < kHistSub) return 1;
  return 1ull << (idx / kHistSub - 1);
}

/// Quantile summary in the histogram's recording unit.
struct HistSummary {
  std::uint64_t samples = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;
};

class Histogram {
 public:
  Histogram() { reset(); }

  void record(std::uint64_t v) {
    ++counts_[hist_bucket_index(v)];
    ++total_;
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& o) {
    for (unsigned i = 0; i < kHistBuckets; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    if (o.max_ > max_) max_ = o.max_;
  }

  void reset() {
    std::memset(counts_, 0, sizeof counts_);
    total_ = 0;
    max_ = 0;
  }

  /// Turn this histogram into the bucket-wise difference against `earlier`,
  /// an older snapshot of the same recording stream. Buckets clamp at zero
  /// and the total is recomputed from the clamped buckets, so a snapshot
  /// taken while a writer is mid-record (pto::metrics samples without
  /// quiescing) yields a sane near-exact delta instead of underflowing.
  /// max_value() stays cumulative (the interval's own max is not recoverable
  /// from bucket counts).
  void subtract_clamped(const Histogram& earlier) {
    total_ = 0;
    for (unsigned i = 0; i < kHistBuckets; ++i) {
      counts_[i] =
          counts_[i] > earlier.counts_[i] ? counts_[i] - earlier.counts_[i] : 0;
      total_ += counts_[i];
    }
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t max_value() const { return max_; }
  std::uint64_t bucket_count(unsigned idx) const { return counts_[idx]; }

  /// Value at quantile q in [0,1]: the midpoint of the bucket holding the
  /// ceil(q * total)-th sample (rank from 1), so the error against an exact
  /// oracle is bounded by one bucket width. Clamped to max_value(): in the
  /// wide tiers a midpoint can exceed every recorded value (e.g. the max
  /// sits in the lower half of its bucket), and an estimate above the
  /// observed max reads as nonsense in emitted summaries (p999 > max).
  /// 0 when empty.
  std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total_) + 0.9999999);
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kHistBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        const std::uint64_t mid =
            hist_bucket_lower(i) + (hist_bucket_width(i) - 1) / 2;
        return max_ != 0 && mid > max_ ? max_ : mid;
      }
    }
    return max_;  // unreachable: seen reaches total_
  }

  HistSummary summarize() const {
    HistSummary s;
    s.samples = total_;
    if (total_ == 0) return s;
    s.p50 = quantile(0.50);
    s.p90 = quantile(0.90);
    s.p99 = quantile(0.99);
    s.p999 = quantile(0.999);
    s.max = max_;
    return s;
  }

 private:
  std::uint64_t counts_[kHistBuckets];
  std::uint64_t total_;
  std::uint64_t max_;
};

}  // namespace pto::obs
