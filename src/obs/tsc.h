// Cycle-granular timestamps for the native observability stack (pto::obs).
//
// On x86-64 `now_ticks()` is a bare RDTSC (~7 ns, no serialization: op
// latencies here are hundreds of nanoseconds and the histogram buckets absorb
// a few cycles of skid); elsewhere it falls back to steady_clock nanoseconds.
// Tick-to-nanosecond conversion is calibrated ONCE against steady_clock over
// a short spin window, on first use — call sites that never convert (the
// recording hot path stores raw ticks) never pay for calibration.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace pto::obs {

/// steady_clock in nanoseconds (the calibration reference).
std::uint64_t steady_ns();

/// Raw timestamp in ticks (TSC counts on x86, nanoseconds elsewhere).
inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return steady_ns();
#endif
}

/// Calibrated tick frequency in Hz (exactly 1e9 on the fallback clock).
/// First call spins for ~10 ms; the result is cached for the process.
std::uint64_t ticks_per_sec();

/// Convert a tick delta to nanoseconds using the calibrated frequency.
std::uint64_t ticks_to_ns(std::uint64_t ticks);

}  // namespace pto::obs
