// pto::obs — low-overhead observability for NATIVE (non-simx) runs: per-site
// op-latency histograms, the flight recorder (obs/flight.h), and optional
// hardware perf counters (obs/perf_counters.h). Simulated runs ignore every
// knob here: simx latencies are virtual cycles and already exactly observable
// through PTO_PROF/PTO_TRACE.
//
//   PTO_OBS=1          arm per-op latency histograms (native bench runners)
//   PTO_OBS_SAMPLE=<k> time 1 in k ops (rounded to a power of two; default 1
//                      = every op). Percentiles over a uniform subsample are
//                      unbiased for a stationary workload; use k=8..64 when
//                      the two RDTSCs per timed op would be material against
//                      sub-microsecond ops.
//   PTO_FLIGHT=<n>     arm the per-thread flight recorder, ring of n events
//   PTO_PERF=1         sample hardware perf counters around bench points
//
// Recording model: a LatencySite is a named op class ("native_set.insert").
// Each (thread, site) pair owns two private log-linear histograms — one for
// ops whose prefix attempts all committed on the fast path, one for ops that
// took at least one fallback — so the hot path is a single-writer bucket
// increment with no sharing. Merging happens at emission, after worker
// threads have quiesced (bench runners join before reading), by bucket-wise
// summation across threads.
//
// Overhead budget (the native-obs CI job enforces <= 5% end to end): two
// RDTSCs + one branch + one increment per op with PTO_OBS=1, a 16-byte ring
// store per transaction event with PTO_FLIGHT set, nothing at all when off
// (one relaxed bool load behind PTO_UNLIKELY).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/defs.h"
#include "obs/histogram.h"
#include "obs/tsc.h"

namespace pto::obs {

namespace detail {
extern bool g_hist_on;  ///< set once from PTO_OBS before threads start
/// PTO_OBS_SAMPLE - 1 (power of two): an op is timed when
/// (++tls_op_seq & g_sample_mask) == 0. 0 = time every op.
extern std::uint64_t g_sample_mask;
extern thread_local std::uint64_t tls_op_seq;
/// Ops classified fallback when this thread-local moved during the op
/// (bumped by telemetry::site_fallback when histograms are armed).
extern thread_local std::uint64_t tls_fallbacks;
}  // namespace detail

/// True when PTO_OBS armed latency histograms (read-only after startup).
inline bool hist_on() { return detail::g_hist_on; }

/// Test hook: force histograms on/off (not thread-safe; call at quiescence).
void set_hist_on(bool on);

inline void note_fallback() { ++detail::tls_fallbacks; }

/// This thread's fallback count so far. Callers that can't scope an OpTimer
/// around an op (e.g. batched service requests timed from enqueue) sample
/// this before/after to classify the op fast vs fallback.
inline std::uint64_t fallbacks_now() { return detail::tls_fallbacks; }

/// Latency summaries in nanoseconds, split by path taken.
struct LatencySiteSummary {
  std::string site;
  HistSummary fast;      ///< ops fully served by committed prefix attempts
  HistSummary fallback;  ///< ops that executed at least one fallback
};

class LatencySite {
 public:
  explicit LatencySite(std::string name, unsigned id)
      : name_(std::move(name)), id_(id) {}
  LatencySite(const LatencySite&) = delete;
  LatencySite& operator=(const LatencySite&) = delete;

  const std::string& name() const { return name_; }
  unsigned id() const { return id_; }

 private:
  std::string name_;
  unsigned id_;
};

/// Find-or-create a latency site; pointers are stable for process lifetime.
LatencySite* intern_latency_site(std::string_view name);

/// Record one op's latency (ticks) under `site`; single producer per thread.
void record_latency(LatencySite* site, bool fallback, std::uint64_t ticks);

/// Zero every (thread, site) histogram. Call at quiescence (between bench
/// points) so each emitted summary covers exactly one measurement window.
void reset_latency();

/// Merge across threads and convert to nanoseconds. `out_sites` (optional)
/// receives the per-site split; the return value aggregates every site.
/// Call at quiescence.
struct MergedLatency {
  HistSummary all;
  HistSummary fast;
  HistSummary fallback;
};
MergedLatency merged_latency(std::vector<LatencySiteSummary>* out_sites);

/// Bucket-level merge across every (thread, site) block, in raw ticks, with
/// no quantile summarization — the snapshot primitive behind pto::metrics
/// interval deltas (two snapshots subtract bucket-wise). Unlike
/// merged_latency() this is routinely called *without* quiescing: worker
/// threads may be mid-record, so a snapshot can trail the true counts by the
/// in-flight increments; totals are exact at any quiescent point, which is
/// where the sum-of-deltas invariant is asserted.
struct RawMerged {
  Histogram all;
  Histogram fast;
  Histogram fallback;
};
RawMerged merged_raw();

/// Scoped per-op timer: reads the tsc on entry, records on done()/destruction
/// and classifies fast vs fallback by whether tls_fallbacks moved. All no-ops
/// unless hist_on().
class OpTimer {
 public:
  explicit OpTimer(LatencySite* site) : site_(site) {
    if (PTO_UNLIKELY(hist_on()) &&
        (++detail::tls_op_seq & detail::g_sample_mask) == 0) {
      fb0_ = detail::tls_fallbacks;
      t0_ = now_ticks();
      armed_ = true;
    }
  }
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;
  ~OpTimer() { done(); }

  void done() {
    if (!armed_) return;
    armed_ = false;
    const std::uint64_t t1 = now_ticks();
    record_latency(site_, detail::tls_fallbacks != fb0_,
                   t1 > t0_ ? t1 - t0_ : 0);
  }

 private:
  LatencySite* site_;
  std::uint64_t t0_ = 0;
  std::uint64_t fb0_ = 0;
  bool armed_ = false;
};

}  // namespace pto::obs
