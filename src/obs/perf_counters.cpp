#include "obs/perf_counters.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/warn.h"

#if defined(__linux__)
#include <fcntl.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace pto::obs {

#if defined(__linux__)

namespace {

long perf_event_open_sys(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// Parse a sysfs PMU event spec ("event=0xc9,umask=0x1[,...]") into a raw
/// config word. Returns false on unknown keys we cannot fold in.
bool parse_sysfs_event(const char* spec, std::uint64_t* config) {
  std::uint64_t cfg = 0;
  const char* p = spec;
  while (*p != '\0' && *p != '\n') {
    char key[32];
    unsigned long long val = 1;  // a bare flag ("in_tx") means 1
    std::size_t k = 0;
    while (*p != '\0' && *p != '=' && *p != ',' && *p != '\n' &&
           k + 1 < sizeof key) {
      key[k++] = *p++;
    }
    key[k] = '\0';
    if (*p == '=') {
      ++p;
      char* end = nullptr;
      val = std::strtoull(p, &end, 0);
      if (end == p) return false;
      p = end;
    }
    if (std::strcmp(key, "event") == 0) {
      cfg |= val & 0xffu;
    } else if (std::strcmp(key, "umask") == 0) {
      cfg |= (val & 0xffu) << 8;
    } else if (std::strcmp(key, "cmask") == 0) {
      cfg |= (val & 0xffu) << 24;
    } else if (std::strcmp(key, "edge") == 0) {
      cfg |= (val & 0x1u) << 18;
    } else if (std::strcmp(key, "inv") == 0) {
      cfg |= (val & 0x1u) << 23;
    } else {
      return false;  // in_tx/in_tx_cp etc. need bits we don't model
    }
    if (*p == ',') ++p;
  }
  *config = cfg;
  return true;
}

/// Look up a named event under the core PMU's sysfs directory.
bool sysfs_raw_event(const char* name, std::uint64_t* config) {
  char path[256];
  std::snprintf(path, sizeof path,
                "/sys/bus/event_source/devices/cpu/events/%s", name);
  int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  char buf[256];
  ssize_t n = ::read(fd, buf, sizeof buf - 1);
  ::close(fd);
  if (n <= 0) return false;
  buf[n] = '\0';
  return parse_sysfs_event(buf, config);
}

struct Counter {
  int fd = -1;
  std::uint64_t PerfSample::* field = nullptr;
};

struct PerfState {
  bool on = false;
  bool tsx = false;
  Counter counters[7];
  int n = 0;
};

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // inherit: child threads spawned after this open are aggregated into the
  // read() value — which is why counters must open before bench threads.
  attr.inherit = 1;
  return static_cast<int>(
      perf_event_open_sys(&attr, 0, -1, -1, PERF_FLAG_FD_CLOEXEC));
}

PerfState init_state() {
  PerfState st;
  const char* v = std::getenv("PTO_PERF");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0) return st;

  auto add = [&st](int fd, std::uint64_t PerfSample::* field) {
    if (fd < 0) return false;
    st.counters[st.n].fd = fd;
    st.counters[st.n].field = field;
    ++st.n;
    return true;
  };

  bool core_ok = true;
  core_ok &= add(open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
                 &PerfSample::cycles);
  core_ok &= add(open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
                 &PerfSample::instructions);
  core_ok &= add(open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
                 &PerfSample::llc_misses);
  if (!core_ok) {
    warn_once("perf.unavailable",
              "PTO_PERF=1 but perf_event_open is unavailable (%s); hardware "
              "counters disabled",
              std::strerror(errno));
    for (int i = 0; i < st.n; ++i) ::close(st.counters[i].fd);
    return PerfState{};
  }
  st.on = true;

  struct {
    const char* name;
    std::uint64_t PerfSample::* field;
  } tsx_events[] = {
      {"tx-start", &PerfSample::tx_start},
      {"tx-abort", &PerfSample::tx_abort},
      {"tx-capacity", &PerfSample::tx_capacity},
      {"tx-conflict", &PerfSample::tx_conflict},
  };
  bool tsx_ok = true;
  for (const auto& e : tsx_events) {
    std::uint64_t config = 0;
    if (!sysfs_raw_event(e.name, &config) ||
        !add(open_counter(PERF_TYPE_RAW, config), e.field)) {
      tsx_ok = false;
      break;
    }
  }
  st.tsx = tsx_ok;
  if (!tsx_ok) {
    warn_once("perf.no_tsx_events",
              "PTO_PERF=1: TSX PMU events not exposed here; emitting core "
              "counters only");
  }
  return st;
}

PerfState& state() {
  static PerfState st = init_state();
  return st;
}

}  // namespace

bool perf_on() { return state().on; }

PerfSample perf_read() {
  PerfSample s;
  PerfState& st = state();
  if (!st.on) return s;
  s.valid = true;
  s.tsx_valid = st.tsx;
  for (int i = 0; i < st.n; ++i) {
    std::uint64_t v = 0;
    if (::read(st.counters[i].fd, &v, sizeof v) !=
        static_cast<ssize_t>(sizeof v)) {
      continue;  // leave the field at 0; deltas stay consistent
    }
    s.*(st.counters[i].field) = v;
  }
  return s;
}

#else  // !__linux__

bool perf_on() {
  static bool warned = [] {
    const char* v = std::getenv("PTO_PERF");
    if (v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0) {
      warn_once("env.PTO_PERF", "PTO_PERF is Linux-only; ignoring");
    }
    return true;
  }();
  (void)warned;
  return false;
}

PerfSample perf_read() { return {}; }

#endif

PerfSample perf_delta(const PerfSample& before, const PerfSample& after) {
  PerfSample d;
  d.valid = before.valid && after.valid;
  d.tsx_valid = before.tsx_valid && after.tsx_valid;
  if (!d.valid) return d;
  d.cycles = after.cycles - before.cycles;
  d.instructions = after.instructions - before.instructions;
  d.llc_misses = after.llc_misses - before.llc_misses;
  if (d.tsx_valid) {
    d.tx_start = after.tx_start - before.tx_start;
    d.tx_abort = after.tx_abort - before.tx_abort;
    d.tx_capacity = after.tx_capacity - before.tx_capacity;
    d.tx_conflict = after.tx_conflict - before.tx_conflict;
  }
  return d;
}

}  // namespace pto::obs
