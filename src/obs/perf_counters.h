// Optional hardware performance counters around native bench points.
//
//   PTO_PERF=1   sample cycles, instructions, LLC misses, and — when the
//                PMU exposes them (sysfs cpu/events/tx-*) — Intel TSX
//                transaction start/abort/capacity/conflict counts.
//
// Counters are opened once, process-wide, with perf_event_attr.inherit set,
// BEFORE bench worker threads exist, so child threads are aggregated into
// the parent's counts on read. Everything degrades gracefully: if the
// perf_event_open syscall is unavailable (seccomp'd container, paranoid
// sysctl) or an event is unknown, a single warning is printed and the
// corresponding fields are simply omitted from emission. Non-Linux builds
// compile to permanent no-ops.
#pragma once

#include <cstdint>

namespace pto::obs {

/// One sampled window. `valid` covers the core trio; `tsx_valid` the TSX
/// events (often absent even where RTM executes, e.g. in VMs).
struct PerfSample {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  bool tsx_valid = false;
  std::uint64_t tx_start = 0;
  std::uint64_t tx_abort = 0;
  std::uint64_t tx_capacity = 0;
  std::uint64_t tx_conflict = 0;
};

/// True when PTO_PERF=1 and at least one counter opened.
bool perf_on();

/// Snapshot current counter values (monotonic totals since open).
PerfSample perf_read();

/// Difference of two snapshots taken around a measurement window.
PerfSample perf_delta(const PerfSample& before, const PerfSample& after);

}  // namespace pto::obs
