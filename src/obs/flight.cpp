#include "obs/flight.h"

#include "common/warn.h"

#include <atomic>
#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "obs/tsc.h"

namespace pto::obs {

// ---------------------------------------------------------------------------
// FlightRing
// ---------------------------------------------------------------------------

FlightRing::FlightRing(std::uint32_t capacity) {
  std::uint32_t cap = capacity < 64 ? 64 : std::bit_ceil(capacity);
  recs_ = new FlightRec[cap]();
  mask_ = cap - 1;
}

FlightRing::~FlightRing() { delete[] recs_; }

std::uint32_t FlightRing::size() const {
  return head_ < capacity() ? static_cast<std::uint32_t>(head_) : capacity();
}

const FlightRec& FlightRing::at(std::uint32_t i) const {
  const std::uint64_t first = head_ - size();
  return recs_[(first + i) & mask_];
}

// ---------------------------------------------------------------------------
// Process-wide recorder
// ---------------------------------------------------------------------------

namespace {

constexpr unsigned kMaxRings = 256;   // live native threads with rings
constexpr unsigned kMaxSites = 1024;  // telemetry sites in the name table

std::uint32_t env_capacity() {
  const char* v = std::getenv("PTO_FLIGHT");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long n = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0' || n == 0) {
    warn_once("env.PTO_FLIGHT",
              "ignoring invalid PTO_FLIGHT='%s' (want a positive event count)",
              v);
    return 0;
  }
  return static_cast<std::uint32_t>(n);
}

/// Fixed arrays with atomic publication counters: the dump path (which may
/// run inside a fatal-signal handler) walks them without locking.
struct FlightState {
  std::uint32_t ring_capacity = 0;
  std::atomic<unsigned> ring_count{0};
  FlightRing* rings[kMaxRings] = {};
  std::atomic<unsigned> site_count{0};
  const char* site_names[kMaxSites] = {};
};

FlightState g_state;

void install_dump_handlers();

std::uint32_t init_capacity() {
  const std::uint32_t cap = env_capacity();
  if (cap != 0) {
    // Calibrate now: the signal-time dump must not spin for 10 ms.
    ticks_per_sec();
    install_dump_handlers();
  }
  return cap;
}

FlightRing* make_thread_ring() {
  auto* ring = new FlightRing(g_state.ring_capacity);
  unsigned idx = g_state.ring_count.load(std::memory_order_relaxed);
  for (;;) {
    if (idx >= kMaxRings) {
      warn_once("flight.ring_table_full",
                "PTO_FLIGHT ring table full (%u threads); further threads "
                "are not recorded",
                kMaxRings);
      delete ring;
      return nullptr;
    }
    if (g_state.ring_count.compare_exchange_weak(
            idx, idx + 1, std::memory_order_acq_rel)) {
      break;
    }
  }
  g_state.rings[idx] = ring;  // published by the ring_count acq/rel above
  return ring;
}

thread_local FlightRing* tls_ring = nullptr;
thread_local bool tls_ring_failed = false;

// -- dump ------------------------------------------------------------------

/// write(2) the whole buffer; best effort, no retry bookkeeping beyond EINTR.
void write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void put_u32(int fd, std::uint32_t v) { write_all(fd, &v, sizeof v); }
void put_u64(int fd, std::uint64_t v) { write_all(fd, &v, sizeof v); }

std::atomic<bool> g_dumped{false};

void dump_to_fd(int fd) {
  write_all(fd, "PTOFLT01", 8);
  put_u32(fd, 1);  // version
  put_u64(fd, ticks_per_sec());
  const unsigned nsites = g_state.site_count.load(std::memory_order_acquire);
  put_u32(fd, nsites);
  for (unsigned i = 0; i < nsites; ++i) {
    const char* name = g_state.site_names[i];
    if (name == nullptr) name = "";
    const std::uint32_t len = static_cast<std::uint32_t>(std::strlen(name));
    put_u32(fd, len);
    write_all(fd, name, len);
  }
  const unsigned nrings = g_state.ring_count.load(std::memory_order_acquire);
  put_u32(fd, nrings);
  for (unsigned i = 0; i < nrings; ++i) {
    const FlightRing* ring = g_state.rings[i];
    put_u32(fd, i);
    if (ring == nullptr) {  // slot claimed but not yet published
      put_u64(fd, 0);
      put_u32(fd, 0);
      continue;
    }
    put_u64(fd, ring->total_recorded());
    const std::uint32_t n = ring->size();
    put_u32(fd, n);
    // Oldest-first; the ring is contiguous so at most two spans.
    const std::uint64_t first = ring->total_recorded() - n;
    const std::uint32_t start =
        static_cast<std::uint32_t>(first & (ring->capacity() - 1));
    const std::uint32_t tail = ring->capacity() - start;
    const FlightRec* recs = ring->storage();
    if (n <= tail) {
      write_all(fd, recs + start, n * sizeof(FlightRec));
    } else {
      write_all(fd, recs + start, tail * sizeof(FlightRec));
      write_all(fd, recs, (n - tail) * sizeof(FlightRec));
    }
  }
}

void handle_fatal(int sig) {
  flight_dump();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void install_dump_handlers() {
  std::atexit([] { flight_dump(); });
  for (int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    std::signal(sig, handle_fatal);
  }
}

}  // namespace

namespace detail {
bool g_flight_on = [] {
  g_state.ring_capacity = init_capacity();
  return g_state.ring_capacity != 0;
}();
}  // namespace detail

void flight_record(std::uint16_t site, std::uint8_t event,
                   std::uint32_t arg) {
  FlightRing* ring = tls_ring;
  if (ring == nullptr) {
    if (tls_ring_failed) return;
    ring = tls_ring = make_thread_ring();
    if (ring == nullptr) {
      tls_ring_failed = true;
      return;
    }
  }
  ring->push(now_ticks(), site, event, arg);
}

void flight_register_site(unsigned id, const char* name) {
  if (id >= kMaxSites) return;
  g_state.site_names[id] = name;
  // Publish up to and including `id`; ids arrive in order from the registry
  // (intern assigns them sequentially under its lock).
  unsigned cur = g_state.site_count.load(std::memory_order_relaxed);
  while (cur < id + 1 && !g_state.site_count.compare_exchange_weak(
                             cur, id + 1, std::memory_order_release)) {
  }
}

void flight_dump() {
  if (!flight_on()) return;
  if (g_dumped.exchange(true)) return;  // once: atexit after a fatal signal
  const char* path = std::getenv("PTO_FLIGHT_OUT");
  if (path == nullptr || *path == '\0') path = "pto_flight.bin";
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  dump_to_fd(fd);
  ::close(fd);
}

}  // namespace pto::obs
