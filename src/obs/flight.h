// Per-thread lock-free flight recorder for native transaction events.
//
//   PTO_FLIGHT=<events>     arm; fixed ring of <events> records per thread
//                           (rounded up to a power of two, min 64)
//   PTO_FLIGHT_OUT=<path>   dump destination (default pto_flight.bin)
//
// Each thread owns a fixed-size binary ring of 16-byte records
// {tsc, site, event, arg}; recording is a thread-local store plus a counter
// bump — no atomics, no sharing, old records overwritten. Rings are dumped
// at process exit and on fatal signals (SIGSEGV/SIGBUS/SIGABRT/SIGFPE/
// SIGILL), so the last <events> transaction events per thread survive a
// crash for post-mortem timeline reconstruction with tools/pto_flight.py.
//
// Events come from the telemetry hook stream (telemetry/registry.cpp):
// prefix attempt (tx begin), commit, abort (arg = cause code), and
// fallback-acquire. Simulated runs never record (simx already has PTO_TRACE
// with virtual-time fidelity; the hook checks sim::active()).
//
// Dump format (little-endian), parsed by tools/pto_flight.py:
//   magic   8s  "PTOFLT01"
//   u32         version (1)
//   u64         tsc ticks per second (calibrated)
//   u32         site count N
//   N x { u32 len, bytes }   site names, index = site id
//   u32         ring count R
//   R x { u32 thread_index, u64 total_recorded, u32 nrec,
//         nrec x { u64 tsc, u16 site, u8 event, u8 pad, u32 arg } }
//       records oldest-first.
#pragma once

#include <cstdint>

namespace pto::obs {

enum FlightEvent : unsigned char {
  kFlightAttempt = 1,   ///< prefix attempt / tx begin
  kFlightCommit = 2,    ///< fast-path commit
  kFlightAbort = 3,     ///< tx abort; arg = TxAbort cause
  kFlightFallback = 4,  ///< fallback path acquired
};

#pragma pack(push, 1)
struct FlightRec {
  std::uint64_t tsc;
  std::uint16_t site;
  std::uint8_t event;
  std::uint8_t pad;
  std::uint32_t arg;
};
#pragma pack(pop)
static_assert(sizeof(FlightRec) == 16);

/// A single-writer ring. Public so tests can pin the wraparound semantics
/// without arming the process-wide recorder.
class FlightRing {
 public:
  /// Capacity rounded up to a power of two, min 64. Buffer owned.
  explicit FlightRing(std::uint32_t capacity);
  ~FlightRing();
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  void push(std::uint64_t tsc, std::uint16_t site, std::uint8_t event,
            std::uint32_t arg) {
    FlightRec& r = recs_[head_ & mask_];
    r.tsc = tsc;
    r.site = site;
    r.event = event;
    r.pad = 0;
    r.arg = arg;
    ++head_;
  }

  std::uint64_t total_recorded() const { return head_; }
  std::uint32_t capacity() const { return mask_ + 1; }
  /// Records currently held (min(total, capacity)).
  std::uint32_t size() const;
  /// i-th surviving record, oldest first (0 <= i < size()).
  const FlightRec& at(std::uint32_t i) const;
  /// Backing storage (capacity() records), for the dump's two-span write.
  const FlightRec* storage() const { return recs_; }

 private:
  FlightRec* recs_;
  std::uint32_t mask_;
  std::uint64_t head_ = 0;
};

namespace detail {
extern bool g_flight_on;  ///< set once from PTO_FLIGHT before threads start
}  // namespace detail

inline bool flight_on() { return detail::g_flight_on; }

/// Record one event on this thread's ring (creates it on first use).
/// Call only when flight_on(); never records inside a simulation.
void flight_record(std::uint16_t site, std::uint8_t event, std::uint32_t arg);

/// Site-name table for the dump header. Registered eagerly by the telemetry
/// registry at intern time (bounded, lock-free publication) so the fatal-
/// signal dump path never touches a mutex. `name` must outlive the process
/// (telemetry sites are never destroyed).
void flight_register_site(unsigned id, const char* name);

/// Write every ring to PTO_FLIGHT_OUT. Async-signal-safe (open/write only);
/// also installed as the atexit + fatal-signal handler when armed.
void flight_dump();

}  // namespace pto::obs
