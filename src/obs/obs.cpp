#include "obs/obs.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace pto::obs {

namespace detail {

namespace {
bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

std::uint64_t env_sample_mask() {
  const char* v = std::getenv("PTO_OBS_SAMPLE");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long k = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0' || k == 0) {
    std::fprintf(stderr,
                 "[pto] warning: ignoring invalid PTO_OBS_SAMPLE='%s' "
                 "(want a positive sample period)\n",
                 v);
    return 0;
  }
  return std::bit_ceil(static_cast<std::uint64_t>(k)) - 1;
}
}  // namespace

bool g_hist_on = env_truthy("PTO_OBS");
std::uint64_t g_sample_mask = env_sample_mask();
thread_local std::uint64_t tls_op_seq = 0;
thread_local std::uint64_t tls_fallbacks = 0;

}  // namespace detail

void set_hist_on(bool on) { detail::g_hist_on = on; }

namespace {

/// One thread's histograms for one site (fast / fallback split).
struct ThreadSiteHists {
  Histogram fast;
  Histogram fallback;
};

/// Everything obs allocates lives here, under one mutex taken only on cold
/// paths (site intern, first record from a new thread, merge, reset). The
/// hot path touches only the thread-local index below.
struct LatencyState {
  std::mutex mu;
  std::vector<std::unique_ptr<LatencySite>> sites;
  // All (thread, site) histogram blocks ever created, for merge/reset.
  // Never freed: a finished thread's samples must survive until emission.
  std::vector<std::unique_ptr<ThreadSiteHists>> blocks;
  std::vector<unsigned> block_site;  ///< site id per block, parallel array
};

LatencyState& lat_state() {
  static LatencyState* s = new LatencyState();
  return *s;
}

/// Per-thread site-id -> histogram block index (grown on demand).
thread_local std::vector<ThreadSiteHists*> tls_site_hists;

ThreadSiteHists* thread_hists(LatencySite* site) {
  const unsigned id = site->id();
  if (PTO_LIKELY(id < tls_site_hists.size() &&
                 tls_site_hists[id] != nullptr)) {
    return tls_site_hists[id];
  }
  LatencyState& st = lat_state();
  std::lock_guard<std::mutex> lk(st.mu);
  if (id >= tls_site_hists.size()) tls_site_hists.resize(id + 1, nullptr);
  st.blocks.push_back(std::make_unique<ThreadSiteHists>());
  st.block_site.push_back(id);
  tls_site_hists[id] = st.blocks.back().get();
  return tls_site_hists[id];
}

}  // namespace

LatencySite* intern_latency_site(std::string_view name) {
  LatencyState& st = lat_state();
  std::lock_guard<std::mutex> lk(st.mu);
  for (const auto& s : st.sites) {
    if (s->name() == name) return s.get();
  }
  st.sites.push_back(std::make_unique<LatencySite>(
      std::string(name), static_cast<unsigned>(st.sites.size())));
  return st.sites.back().get();
}

void record_latency(LatencySite* site, bool fallback, std::uint64_t ticks) {
  ThreadSiteHists* h = thread_hists(site);
  (fallback ? h->fallback : h->fast).record(ticks);
}

void reset_latency() {
  LatencyState& st = lat_state();
  std::lock_guard<std::mutex> lk(st.mu);
  for (auto& b : st.blocks) {
    b->fast.reset();
    b->fallback.reset();
  }
}

namespace {
HistSummary to_ns(const Histogram& h) {
  HistSummary s = h.summarize();
  s.p50 = ticks_to_ns(s.p50);
  s.p90 = ticks_to_ns(s.p90);
  s.p99 = ticks_to_ns(s.p99);
  s.p999 = ticks_to_ns(s.p999);
  s.max = ticks_to_ns(s.max);
  return s;
}
}  // namespace

RawMerged merged_raw() {
  LatencyState& st = lat_state();
  std::lock_guard<std::mutex> lk(st.mu);
  RawMerged m;
  for (const auto& b : st.blocks) {
    m.fast.merge(b->fast);
    m.fallback.merge(b->fallback);
  }
  m.all.merge(m.fast);
  m.all.merge(m.fallback);
  return m;
}

MergedLatency merged_latency(std::vector<LatencySiteSummary>* out_sites) {
  LatencyState& st = lat_state();
  std::lock_guard<std::mutex> lk(st.mu);
  Histogram all_fast, all_fallback, all;
  std::vector<Histogram> site_fast(st.sites.size());
  std::vector<Histogram> site_fallback(st.sites.size());
  for (std::size_t i = 0; i < st.blocks.size(); ++i) {
    const ThreadSiteHists& b = *st.blocks[i];
    const unsigned id = st.block_site[i];
    site_fast[id].merge(b.fast);
    site_fallback[id].merge(b.fallback);
    all_fast.merge(b.fast);
    all_fallback.merge(b.fallback);
  }
  all.merge(all_fast);
  all.merge(all_fallback);
  if (out_sites != nullptr) {
    out_sites->clear();
    for (std::size_t id = 0; id < st.sites.size(); ++id) {
      if (site_fast[id].total() == 0 && site_fallback[id].total() == 0) {
        continue;
      }
      out_sites->push_back({st.sites[id]->name(), to_ns(site_fast[id]),
                            to_ns(site_fallback[id])});
    }
  }
  return {to_ns(all), to_ns(all_fast), to_ns(all_fallback)};
}

}  // namespace pto::obs
