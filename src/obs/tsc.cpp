#include "obs/tsc.h"

#include <chrono>

namespace pto::obs {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

#if defined(__x86_64__) || defined(__i386__)
std::uint64_t calibrate_hz() {
  // Two (steady_clock, tsc) sample pairs bracketing a ~10 ms spin. Taking
  // the tsc sample immediately after the clock sample on both ends makes the
  // syscall/vdso latency common-mode.
  const std::uint64_t ns0 = steady_ns();
  const std::uint64_t t0 = __rdtsc();
  const std::uint64_t target = ns0 + 10'000'000;  // 10 ms window
  std::uint64_t ns1 = ns0;
  while (ns1 < target) ns1 = steady_ns();
  const std::uint64_t t1 = __rdtsc();
  if (t1 <= t0 || ns1 <= ns0) return 1'000'000'000ull;  // degenerate: 1:1
  const double hz = static_cast<double>(t1 - t0) * 1e9 /
                    static_cast<double>(ns1 - ns0);
  return static_cast<std::uint64_t>(hz);
}
#else
std::uint64_t calibrate_hz() { return 1'000'000'000ull; }
#endif

}  // namespace

std::uint64_t ticks_per_sec() {
  static const std::uint64_t hz = calibrate_hz();
  return hz;
}

std::uint64_t ticks_to_ns(std::uint64_t ticks) {
  const std::uint64_t hz = ticks_per_sec();
  if (hz == 1'000'000'000ull) return ticks;
  // 128-bit intermediate: ticks * 1e9 overflows u64 after ~18 s of cycles.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(ticks) * 1'000'000'000ull) / hz);
}

}  // namespace pto::obs
