// Figure 5(c): fence elimination on the binary search tree.
//
// Improvement over the lock-free BST (write-only 512-key setbench) for
// PTO1+PTO2 with fences retained vs elided inside transactions. Paper
// claim: fences matter, but unlike the Mound a solid improvement remains
// without fence elision — eliminating double-checked reads and descriptor
// allocation carries weight of its own.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/bst/ellen_bst.h"
#include "platform/sim_platform.h"

namespace {

using pto::EllenBST;
using pto::SimPlatform;
namespace pb = pto::bench;

constexpr int kRange = 512;

struct Fixture {
  using Mode = EllenBST<SimPlatform>::Mode;
  explicit Fixture(Mode m) : mode(m) {}
  Mode mode;
  EllenBST<SimPlatform> set;

  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      set.insert(ctx, static_cast<std::int64_t>(rng.next_below(kRange)),
                 Mode::kLockfree);
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      if (pto::sim::rnd() % 2 == 0) {
        set.insert(ctx, k, mode);
      } else {
        set.remove(ctx, k, mode);
      }
      pto::sim::op_done();
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  using Mode = EllenBST<SimPlatform>::Mode;
  pb::Figure fig;
  fig.id = "fig5c";
  fig.title = "Fence Elimination on BST (improvement over lock-free, %)";
  fig.ylabel = "Improvement (%)";
  fig.xs = pb::sweep_threads(opts);

  pb::Figure raw;
  raw.xs = fig.xs;
  pto::sim::Config base;
  pb::run_variant<Fixture>(raw, opts, base, "LF",
                           [] { return new Fixture(Mode::kLockfree); });
  pto::sim::Config fenced = base;
  fenced.fences_in_tx = true;
  pb::run_variant<Fixture>(raw, opts, fenced, "PTO(Fence)",
                           [] { return new Fixture(Mode::kPto12); });
  pb::run_variant<Fixture>(raw, opts, base, "PTO(NoFence)",
                           [] { return new Fixture(Mode::kPto12); });

  const auto* lf = raw.find("LF");
  for (const char* name : {"PTO(Fence)", "PTO(NoFence)"}) {
    auto& s = fig.add_series(name);
    for (std::size_t i = 0; i < raw.xs.size(); ++i) {
      s.y.push_back((raw.find(name)->y[i] / lf->y[i] - 1.0) * 100.0);
    }
  }
  pb::finish(fig, "fig5c.csv");

  pb::shape_note(std::cout, "PTO(Fence) improvement @1T (%)",
                 fig.find("PTO(Fence)")->y.front(),
                 ">0: double-check/allocation elimination alone helps");
  pb::shape_note(std::cout, "PTO(NoFence) - PTO(Fence) @1T (pp)",
                 fig.find("PTO(NoFence)")->y.front() -
                     fig.find("PTO(Fence)")->y.front(),
                 ">0: fences contribute on top");
  return 0;
}
