// Ablation (extension): key skew vs PTO profitability.
//
// The paper's workloads draw keys uniformly. Under Zipfian skew, hot keys
// concentrate conflicts: PTO's aborted transactions waste whole operations
// while the lock-free baseline's failed CASes waste single steps, so PTO's
// edge should shrink (and can invert) as skew grows — the same §4.6
// contention argument that explains the skiplist result, now swept
// parametrically on the PTO1+PTO2 BST at 8 threads.
#include <iostream>

#include "bench_util.h"
#include "benchutil/zipf.h"
#include "common/rng.h"
#include "ds/bst/ellen_bst.h"
#include "platform/sim_platform.h"

namespace {

using pto::EllenBST;
using pto::SimPlatform;
namespace pb = pto::bench;

constexpr int kRange = 512;

double measure(bool use_pto, double theta, const pb::RunnerOptions& opts,
               unsigned threads) {
  using Mode = EllenBST<SimPlatform>::Mode;
  double sum = 0;
  for (unsigned trial = 0; trial < opts.trials; ++trial) {
    pto::sim::Config cfg;
    cfg.seed = 1234 + trial;
    {
      EllenBST<SimPlatform> set;
      pb::ZipfGenerator zipf(kRange, theta);
      {
        auto ctx = set.make_ctx();
        pto::SplitMix64 rng(cfg.seed);
        for (int i = 0; i < kRange / 2; ++i) {
          set.insert(ctx, static_cast<std::int64_t>(rng.next_below(kRange)));
        }
      }
      auto res = pto::sim::run(threads, cfg, [&](unsigned tid) {
        auto ctx = set.make_ctx();
        pto::SplitMix64 rng(cfg.seed * 131 + tid);
        for (std::uint64_t i = 0; i < opts.ops_per_thread; ++i) {
          auto k = static_cast<std::int64_t>(zipf.next(rng));
          Mode m = use_pto ? Mode::kPto12 : Mode::kLockfree;
          if (rng.next_percent() < 50) {
            set.insert(ctx, k, m);
          } else {
            set.remove(ctx, k, m);
          }
          pto::sim::op_done();
        }
      });
      sum += res.ops_per_msec();
    }
    pto::sim::reset_memory();
  }
  return sum / opts.trials;
}

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  const unsigned threads = opts.max_threads;

  pb::Figure fig;
  fig.id = "abl_skew";
  fig.title = "BST PTO/LF speedup vs Zipf skew (" +
              std::to_string(threads) + " threads)";
  fig.ylabel = "PTO/LF throughput ratio";
  fig.xs = {0, 50, 80, 99, 120};  // theta x100

  auto& s = fig.add_series("BST PTO/LF");
  for (int t100 : fig.xs) {
    double theta = t100 / 100.0;
    double lf = measure(false, theta, opts, threads);
    double pto = measure(true, theta, opts, threads);
    s.y.push_back(pto / lf);
  }
  std::cout << "(x axis = Zipf theta x100; 0 = uniform)\n";
  pb::finish(fig, "abl_skew.csv");
  pb::shape_note(std::cout, "speedup at uniform / at theta=1.2",
                 s.y.front() / s.y.back(),
                 ">=1: skew concentrates conflicts and erodes PTO's edge");
  return 0;
}
