// Ablation (extension, paper §5/§7): the PTO-friendly redesign.
//
// PTOArraySet is built the way the paper's conclusion recommends — an
// unencumbered transactional fast path over a deliberately naive nonblocking
// slow path. Compared against the freezable-set hash table (a conventional
// design retrofitted with PTO) on a small hot set, the purpose-built
// structure should win at low thread counts (nothing but plain stores on
// the fast path) but, being one centralized array, every concurrent update
// conflicts — it serializes as threads grow while the hash table's
// per-bucket parallelism scales. This is §5's own precondition made
// visible: the sweet spot exists "if the prefix succeeds with high
// probability", i.e. under low contention.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/hashtable/fset_hash.h"
#include "ds/ptoset/pto_array_set.h"
#include "platform/sim_platform.h"

namespace {

using pto::FSetHash;
using pto::PTOArraySet;
using pto::SimPlatform;
namespace pb = pto::bench;

constexpr int kRange = 32;  // a small hot set (routing/watch lists)

struct ArrayFixture {
  PTOArraySet<SimPlatform, 48> set;
  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      set.insert(ctx, static_cast<std::int64_t>(rng.next_below(kRange)));
    }
  }
  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      auto c = pto::sim::rnd() % 100;
      if (c < 60) {
        set.contains(ctx, k);
      } else if (c < 80) {
        set.insert(ctx, k);
      } else {
        set.remove(ctx, k);
      }
      pto::sim::op_done();
    }
  }
};

struct HashFixture {
  using Mode = FSetHash<SimPlatform>::Mode;
  explicit HashFixture(Mode m) : mode(m) {}
  Mode mode;
  FSetHash<SimPlatform> set;
  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      set.insert(ctx, static_cast<std::int64_t>(rng.next_below(kRange)),
                 Mode::kLockfree);
    }
  }
  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      auto c = pto::sim::rnd() % 100;
      if (c < 60) {
        set.contains(ctx, k, mode);
      } else if (c < 80) {
        set.insert(ctx, k, mode);
      } else {
        set.remove(ctx, k, mode);
      }
      pto::sim::op_done();
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  using Mode = FSetHash<SimPlatform>::Mode;
  pb::Figure fig;
  fig.id = "abl_ptoset";
  fig.title = "Small hot set (range 32, 60% lookups): purpose-built vs "
              "retrofitted";
  fig.xs = pb::sweep_threads(opts);

  pto::sim::Config cfg;
  pb::run_variant<HashFixture>(fig, opts, cfg, "Hash(Lockfree)", [] {
    return new HashFixture(Mode::kLockfree);
  });
  pb::run_variant<HashFixture>(fig, opts, cfg, "Hash(PTO+Inplace)", [] {
    return new HashFixture(Mode::kPtoInplace);
  });
  pb::run_variant<ArrayFixture>(fig, opts, cfg, "PTOArraySet",
                                [] { return new ArrayFixture(); });
  pb::finish(fig, "abl_ptoset.csv");

  pb::shape_note(std::cout, "PTOArraySet/Hash(LF) @1T",
                 fig.ratio_at("PTOArraySet", "Hash(Lockfree)", 1),
                 ">1: the PTO-first design pays (paper §5/§7)");
  pb::shape_note(std::cout, "PTOArraySet/Hash(Inplace) @1T",
                 fig.ratio_at("PTOArraySet", "Hash(PTO+Inplace)", 1),
                 "~1: both run one small transaction per op");
  int maxt = fig.xs.back();
  pb::shape_note(std::cout, "PTOArraySet/Hash(Inplace) @maxT",
                 fig.ratio_at("PTOArraySet", "Hash(PTO+Inplace)", maxt),
                 "<1: a centralized array serializes under contention");
  return 0;
}
