// Figure 3(a–c): logarithmic search data structure microbenchmark
// (setbench, key range 512, lookup ratio 0% / 34% / 100%).
//
// Series: Ellen BST (lock-free vs PTO1+PTO2) and skiplist (lock-free vs
// PTO). Paper claims: the accelerated BST matches the skiplist's scalability
// at lower latency (crossing above it), while skiplist PTO gains ~nothing.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/bst/ellen_bst.h"
#include "ds/skiplist/skiplist.h"
#include "platform/sim_platform.h"

namespace {

using pto::EllenBST;
using pto::SimPlatform;
using pto::SkipList;
namespace pb = pto::bench;

constexpr int kRange = 512;

struct TreeFixture {
  using Mode = EllenBST<SimPlatform>::Mode;
  TreeFixture(Mode m, unsigned lookup_pct) : mode(m), lookup(lookup_pct) {}
  Mode mode;
  unsigned lookup;
  EllenBST<SimPlatform> set;

  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      set.insert(ctx, static_cast<std::int64_t>(rng.next_below(kRange)),
                 Mode::kLockfree);
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      auto c = static_cast<unsigned>(pto::sim::rnd() % 100);
      if (c < lookup) {
        set.contains(ctx, k, mode);
      } else if (c < lookup + (100 - lookup) / 2) {
        set.insert(ctx, k, mode);
      } else {
        set.remove(ctx, k, mode);
      }
      pto::sim::op_done();
    }
  }
};

struct SkipFixture {
  SkipFixture(bool pto, unsigned lookup_pct) : use_pto(pto), lookup(lookup_pct) {}
  bool use_pto;
  unsigned lookup;
  SkipList<SimPlatform> set;

  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      set.insert_lf(ctx, static_cast<std::int64_t>(rng.next_below(kRange)));
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      auto c = static_cast<unsigned>(pto::sim::rnd() % 100);
      if (c < lookup) {
        set.contains(ctx, k);
      } else if (c < lookup + (100 - lookup) / 2) {
        if (use_pto) {
          set.insert_pto(ctx, k);
        } else {
          set.insert_lf(ctx, k);
        }
      } else {
        if (use_pto) {
          set.remove_pto(ctx, k);
        } else {
          set.remove_lf(ctx, k);
        }
      }
      pto::sim::op_done();
    }
  }
};

void run_subfigure(const char* id, unsigned lookup_pct) {
  auto opts = pb::RunnerOptions::from_env();
  pb::Figure fig;
  fig.id = id;
  fig.title = "Set Microbenchmark (Lookup=" + std::to_string(lookup_pct) +
              "% Range=512)";
  fig.xs = pb::sweep_threads(opts);
  using Mode = EllenBST<SimPlatform>::Mode;

  pto::sim::Config cfg;
  pb::run_variant<TreeFixture>(fig, opts, cfg, "Tree(Lockfree)", [=] {
    return new TreeFixture(Mode::kLockfree, lookup_pct);
  });
  pb::run_variant<TreeFixture>(fig, opts, cfg, "Tree(PTO)", [=] {
    return new TreeFixture(Mode::kPto12, lookup_pct);
  });
  pb::run_variant<SkipFixture>(fig, opts, cfg, "Skip(Lockfree)", [=] {
    return new SkipFixture(false, lookup_pct);
  });
  pb::run_variant<SkipFixture>(fig, opts, cfg, "Skip(PTO)", [=] {
    return new SkipFixture(true, lookup_pct);
  });
  pb::finish(fig, std::string(id) + ".csv");

  pb::shape_note(std::cout, "Tree PTO/LF @1T",
                 fig.ratio_at("Tree(PTO)", "Tree(Lockfree)", 1),
                 ">1 (PTO1 dominates at low threads)");
  int maxt = fig.xs.back();
  pb::shape_note(std::cout, "Tree PTO/LF @maxT",
                 fig.ratio_at("Tree(PTO)", "Tree(Lockfree)", maxt),
                 ">1 (PTO2 keeps the win under contention)");
  pb::shape_note(std::cout, "TreePTO/SkipPTO @maxT",
                 fig.ratio_at("Tree(PTO)", "Skip(PTO)", maxt),
                 ">1: accelerated BST outruns the skiplist");
  pb::shape_note(std::cout, "Skip PTO/LF @1T",
                 fig.ratio_at("Skip(PTO)", "Skip(Lockfree)", 1),
                 "~1: skiplist barely improves");
  std::cout << "\n";
}

}  // namespace

int main() {
  run_subfigure("fig3a", 0);
  run_subfigure("fig3b", 34);
  run_subfigure("fig3c", 100);
  return 0;
}
