// Simulator self-benchmark: host wall-clock throughput of the simx hot path
// (instrumented accesses -> charge/yield -> line table -> fiber switches) at
// 1/8/32/64/256/1024 virtual threads. This measures the *simulator*, not a simulated
// data structure: every figure and ablation in the repo executes through this
// path, so host ops/sec here bounds how many scenarios, thread counts, and
// trials a sweep can explore.
//
// Output: a human table on stdout plus BENCH_sim.json (one JSON object with
// one point per thread count), which seeds the repo's perf trajectory.
//
//   PTO_SIM_SPEED_OPS     total benchmark ops across all virtual threads per
//                         point (default 1'000'000)
//   PTO_SIM_SPEED_REPS    wall-clock repetitions per point, best taken
//                         (default 3)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "common/defs.h"
#include "core/prefix.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::Atom;
using pto::CacheAligned;
using pto::SimPlatform;
namespace sim = pto::sim;

constexpr unsigned kCells = 1024;  // one cache line each

std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    auto parsed = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0' && parsed > 0) return parsed;
  }
  return dflt;
}

struct Point {
  unsigned vthreads;
  std::uint64_t total_ops;
  std::uint64_t accesses;      ///< instrumented accesses (loads+stores+CAS+RMW)
  std::uint64_t sim_makespan;  ///< simulated cycles (determinism witness)
  double wall_s;               ///< best-of-reps wall time
  double host_ops_per_sec;
  double host_accesses_per_sec;
};

/// One simulated run: a mixed read/write/tx workload over a shared array,
/// shaped like the figure benches (random cells, op_done, a prefix
/// transaction every 8th op) so the hot-path mix is representative.
sim::RunResult run_once(unsigned vthreads, std::uint64_t ops_per_thread,
                        std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>>& cells) {
  sim::Config cfg;
  cfg.seed = 12345;
  return sim::run(vthreads, cfg, [&](unsigned) {
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      auto a = static_cast<unsigned>(sim::rnd() % kCells);
      auto b = static_cast<unsigned>(sim::rnd() % kCells);
      if (i % 8 == 0) {
        pto::prefix<SimPlatform>(
            1,
            [&] {
              auto v = cells[a].value.load(std::memory_order_relaxed);
              cells[b].value.store(v + 1, std::memory_order_relaxed);
            },
            [&] { cells[b].value.fetch_add(1, std::memory_order_relaxed); });
      } else if (i % 4 == 0) {
        cells[a].value.store(i, std::memory_order_relaxed);
      } else {
        (void)cells[a].value.load(std::memory_order_relaxed);
      }
      sim::op_done();
    }
  });
}

Point measure(unsigned vthreads, std::uint64_t total_ops, unsigned reps) {
  std::uint64_t ops_per_thread = std::max<std::uint64_t>(1, total_ops / vthreads);
  Point p{};
  p.vthreads = vthreads;
  p.total_ops = ops_per_thread * vthreads;
  p.wall_s = 1e300;
  for (unsigned r = 0; r < reps; ++r) {
    sim::reset_memory();
    std::vector<CacheAligned<Atom<SimPlatform, std::uint64_t>>> cells(kCells);
    for (auto& c : cells) c.value.init(0);
    auto t0 = std::chrono::steady_clock::now();
    auto res = run_once(vthreads, ops_per_thread, cells);
    auto t1 = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    auto tot = res.totals();
    p.accesses = tot.loads + tot.stores + tot.cas_ops + tot.rmws;
    p.sim_makespan = res.makespan();
    p.wall_s = std::min(p.wall_s, s);
  }
  p.host_ops_per_sec = static_cast<double>(p.total_ops) / p.wall_s;
  p.host_accesses_per_sec = static_cast<double>(p.accesses) / p.wall_s;
  return p;
}

}  // namespace

int main() {
  const std::uint64_t total_ops = env_u64("PTO_SIM_SPEED_OPS", 1'000'000);
  const unsigned reps =
      static_cast<unsigned>(env_u64("PTO_SIM_SPEED_REPS", 3));
  // 256 and 1024 exercise the multi-word ThreadSet path and the widened
  // dispatcher; the shared-count prefix {1, 8, 32, 64} is what the perf gate
  // compares against historical baselines.
  const unsigned counts[] = {1, 8, 32, 64, 256, 1024};

  std::vector<Point> points;
  std::printf("abl_sim_speed: simx host throughput (%llu ops/point, best of %u)\n",
              static_cast<unsigned long long>(total_ops), reps);
  std::printf("%8s %12s %14s %10s %16s %16s\n", "vthreads", "ops", "accesses",
              "wall_s", "host_ops/s", "host_accesses/s");
  for (unsigned t : counts) {
    Point p = measure(t, total_ops, reps);
    points.push_back(p);
    std::printf("%8u %12llu %14llu %10.4f %16.0f %16.0f\n", p.vthreads,
                static_cast<unsigned long long>(p.total_ops),
                static_cast<unsigned long long>(p.accesses), p.wall_s,
                p.host_ops_per_sec, p.host_accesses_per_sec);
  }

  std::ofstream json("BENCH_sim.json");
  json << "{\"bench\":\"abl_sim_speed\",\"total_ops\":" << total_ops
       << ",\"reps\":" << reps << ",\"fast_fiber\":"
#if PTO_FAST_FIBER
       << "true"
#else
       << "false"
#endif
       << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << (i ? "," : "") << "{\"vthreads\":" << p.vthreads
         << ",\"ops\":" << p.total_ops << ",\"accesses\":" << p.accesses
         << ",\"sim_makespan\":" << p.sim_makespan << ",\"wall_s\":" << p.wall_s
         << ",\"host_ops_per_sec\":" << p.host_ops_per_sec
         << ",\"host_accesses_per_sec\":" << p.host_accesses_per_sec << "}";
  }
  json << "]}\n";
  std::printf("JSON written to BENCH_sim.json\n");
  return 0;
}
