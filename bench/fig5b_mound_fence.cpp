// Figure 5(b): fence elimination on the Mound.
//
// Improvement over the lock-free Mound for PTO with fences retained inside
// transactions ("PTO(Fence)", cfg.fences_in_tx = true) vs elided
// ("PTO(NoFence)"). Paper claim: removing fences was the *sole* source of
// the Mound's improvement, so PTO(Fence) ~ 0% while PTO(NoFence) is clearly
// positive.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/mound/mound.h"
#include "platform/sim_platform.h"

namespace {

using pto::Mound;
using pto::SimPlatform;
namespace pb = pto::bench;

constexpr std::int32_t kKeyRange = 1 << 20;

struct Fixture {
  explicit Fixture(bool pto) : use_pto(pto), q(16) {}
  bool use_pto;
  Mound<SimPlatform> q;

  void prefill(std::uint64_t seed) {
    auto ctx = q.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < 512; ++i) {
      q.insert_lf(ctx, static_cast<std::int32_t>(rng.next_below(kKeyRange)));
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = q.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        auto v = static_cast<std::int32_t>(pto::sim::rnd() % kKeyRange);
        if (use_pto) {
          q.insert_pto(ctx, v);
        } else {
          q.insert_lf(ctx, v);
        }
      } else {
        if (use_pto) {
          q.extract_min_pto(ctx);
        } else {
          q.extract_min_lf(ctx);
        }
      }
      pto::sim::op_done();
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  pb::Figure fig;
  fig.id = "fig5b";
  fig.title = "Fence Elimination on Mound (improvement over lock-free, %)";
  fig.ylabel = "Improvement (%)";
  fig.xs = pb::sweep_threads(opts);

  pb::Figure raw;
  raw.xs = fig.xs;
  pto::sim::Config base;
  pb::run_variant<Fixture>(raw, opts, base, "LF",
                           [] { return new Fixture(false); });
  pto::sim::Config fenced = base;
  fenced.fences_in_tx = true;
  pb::run_variant<Fixture>(raw, opts, fenced, "PTO(Fence)",
                           [] { return new Fixture(true); });
  pb::run_variant<Fixture>(raw, opts, base, "PTO(NoFence)",
                           [] { return new Fixture(true); });

  const auto* lf = raw.find("LF");
  for (const char* name : {"PTO(Fence)", "PTO(NoFence)"}) {
    auto& s = fig.add_series(name);
    for (std::size_t i = 0; i < raw.xs.size(); ++i) {
      s.y.push_back((raw.find(name)->y[i] / lf->y[i] - 1.0) * 100.0);
    }
  }
  pb::finish(fig, "fig5b.csv");

  pb::shape_note(std::cout, "PTO(NoFence) - PTO(Fence) @1T (pp)",
                 fig.find("PTO(NoFence)")->y.front() -
                     fig.find("PTO(Fence)")->y.front(),
                 ">0: fences were the dominant cost");
  return 0;
}
