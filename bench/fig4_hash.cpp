// Figure 4(a–c): hash table microbenchmark
// (setbench, key range 64K, lookup ratio 0% / 80% / 100%).
//
// Series: freezable-set hash table — lock-free CoW, simple PTO (epoch
// elision on lookups), and PTO+Inplace (speculative in-place updates).
// Paper claims: >2x at 8 threads and ~1.8x at one thread for PTO+Inplace on
// the write-only workload (allocation/copy elimination); PTO alone mainly
// helps lookups.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/hashtable/fset_hash.h"
#include "platform/sim_platform.h"

namespace {

using pto::FSetHash;
using pto::SimPlatform;
namespace pb = pto::bench;

constexpr int kRange = 64 * 1024;

struct HashFixture {
  using Mode = FSetHash<SimPlatform>::Mode;
  HashFixture(Mode m, unsigned lookup_pct) : mode(m), lookup(lookup_pct) {}
  Mode mode;
  unsigned lookup;
  FSetHash<SimPlatform> set;

  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      set.insert(ctx, static_cast<std::int64_t>(rng.next_below(kRange)),
                 Mode::kLockfree);
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      auto c = static_cast<unsigned>(pto::sim::rnd() % 100);
      if (c < lookup) {
        set.contains(ctx, k, mode);
      } else if (c < lookup + (100 - lookup) / 2) {
        set.insert(ctx, k, mode);
      } else {
        set.remove(ctx, k, mode);
      }
      pto::sim::op_done();
    }
  }
};

void run_subfigure(const char* id, unsigned lookup_pct) {
  auto opts = pb::RunnerOptions::from_env();
  pb::Figure fig;
  fig.id = id;
  fig.title = "Hash Table Microbenchmark (Lookup=" +
              std::to_string(lookup_pct) + "% Range=64K)";
  fig.xs = pb::sweep_threads(opts);
  using Mode = FSetHash<SimPlatform>::Mode;

  pto::sim::Config cfg;
  pb::run_variant<HashFixture>(fig, opts, cfg, "Hash(Lockfree)", [=] {
    return new HashFixture(Mode::kLockfree, lookup_pct);
  });
  pb::run_variant<HashFixture>(fig, opts, cfg, "Hash(PTO)", [=] {
    return new HashFixture(Mode::kPto, lookup_pct);
  });
  pb::run_variant<HashFixture>(fig, opts, cfg, "Hash(PTO+Inplace)", [=] {
    return new HashFixture(Mode::kPtoInplace, lookup_pct);
  });
  pb::finish(fig, std::string(id) + ".csv");

  int maxt = fig.xs.back();
  pb::shape_note(std::cout, "Inplace/LF @1T",
                 fig.ratio_at("Hash(PTO+Inplace)", "Hash(Lockfree)", 1),
                 lookup_pct == 0 ? "~1.8x on write-only" : ">=1");
  pb::shape_note(std::cout, "Inplace/LF @maxT",
                 fig.ratio_at("Hash(PTO+Inplace)", "Hash(Lockfree)", maxt),
                 lookup_pct == 0 ? ">2x on write-only" : ">=1");
  pb::shape_note(std::cout, "PTO/LF @1T",
                 fig.ratio_at("Hash(PTO)", "Hash(Lockfree)", 1),
                 lookup_pct >= 80 ? ">1: epoch elision on lookups"
                                  : "~1: CoW cost dominates updates");
  std::cout << "\n";
}

}  // namespace

int main() {
  run_subfigure("fig4a", 0);
  run_subfigure("fig4b", 80);
  run_subfigure("fig4c", 100);
  return 0;
}
