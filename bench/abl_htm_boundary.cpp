// Ablation: HTM boundary cost sweep (paper §7, "Future Directions": "we
// hope hardware designers will ... reduce the latency of HTM boundary
// operations. As HTM becomes cheaper, PTO will become even more profitable,
// especially for DCAS replacement").
//
// Sweeps tx_begin+tx_commit from 0 to 4x the calibrated Haswell value and
// reports the Mound(PTO)/Mound(Lockfree) single-thread ratio — DCAS
// replacement being the paper's pointed example.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/mound/mound.h"
#include "platform/sim_platform.h"

namespace {

using pto::Mound;
using pto::SimPlatform;
namespace pb = pto::bench;

double measure(bool use_pto, const pto::sim::Config& cfg,
               const pb::RunnerOptions& opts) {
  double sum = 0;
  for (unsigned t = 0; t < opts.trials; ++t) {
    pto::sim::Config c = cfg;
    c.seed = 7 + t;
    Mound<SimPlatform> q(16);
    {
      auto ctx = q.make_ctx();
      pto::SplitMix64 rng(c.seed);
      for (int i = 0; i < 512; ++i) {
        q.insert_lf(ctx, static_cast<std::int32_t>(rng.next_below(1 << 20)));
      }
    }
    auto res = pto::sim::run(1, c, [&](unsigned) {
      auto ctx = q.make_ctx();
      for (std::uint64_t i = 0; i < opts.ops_per_thread; ++i) {
        if (pto::sim::rnd() % 2 == 0) {
          auto v = static_cast<std::int32_t>(pto::sim::rnd() % (1 << 20));
          if (use_pto) {
            q.insert_pto(ctx, v);
          } else {
            q.insert_lf(ctx, v);
          }
        } else {
          if (use_pto) {
            q.extract_min_pto(ctx);
          } else {
            q.extract_min_lf(ctx);
          }
        }
        pto::sim::op_done();
      }
    });
    sum += res.ops_per_msec();
  }
  pto::sim::reset_memory();
  return sum / opts.trials;
}

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  pb::Figure fig;
  fig.id = "abl_htm_boundary";
  fig.title = "Mound PTO/LF speedup vs HTM boundary cost (1 thread)";
  fig.ylabel = "PTO/LF throughput ratio";
  // x = total boundary cycles (begin + commit).
  fig.xs = {0, 11, 22, 45, 90, 180};

  pto::sim::Config base;
  const double lf = measure(false, base, opts);
  auto& s = fig.add_series("Mound PTO/LF");
  for (int boundary : fig.xs) {
    pto::sim::Config cfg = base;
    cfg.cost.tx_begin = static_cast<std::uint64_t>(boundary) * 5 / 9;
    cfg.cost.tx_commit = static_cast<std::uint64_t>(boundary) * 4 / 9;
    s.y.push_back(measure(true, cfg, opts) / lf);
  }
  std::cout << "(x axis = tx_begin+tx_commit cycles; calibrated default 45)\n";
  pb::finish(fig, "abl_htm_boundary.csv");
  pb::shape_note(std::cout, "speedup at free boundaries / at 4x cost",
                 s.y.front() / s.y.back(),
                 ">1: cheaper HTM boundaries make PTO more profitable");
  return 0;
}
