// Native primitive latencies (google-benchmark, wall clock): CAS vs the HTM
// path used by PTO, and software DCAS vs PTO DCAS. On a machine with working
// RTM these are real hardware-transaction numbers; otherwise SoftHTM.
//
// Single-threaded by design (this box may have one core); the multithreaded
// behaviour is evaluated on the simulator by the fig* binaries.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/prefix.h"
#include "htm/htm.h"
#include "kcas/kcas.h"
#include "platform/native_platform.h"
#include "reclaim/epoch.h"

namespace {

using pto::Atom;
using pto::NativePlatform;
namespace kc = pto::kcas;

void BM_AtomicCAS(benchmark::State& state) {
  Atom<NativePlatform, std::uint64_t> w;
  w.init(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    std::uint64_t expect = v;
    benchmark::DoNotOptimize(w.compare_exchange_strong(expect, v + 4));
    v += 4;
  }
}
BENCHMARK(BM_AtomicCAS);

void BM_SeqCstStore(benchmark::State& state) {
  Atom<NativePlatform, std::uint64_t> w;
  w.init(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    w.store(++v, std::memory_order_seq_cst);
  }
}
BENCHMARK(BM_SeqCstStore);

void BM_TxBeginCommitEmpty(benchmark::State& state) {
  std::uint64_t commits = 0;
  for (auto _ : state) {
    commits += pto::prefix<NativePlatform>(
        4, []() -> int { return 1; }, []() -> int { return 0; });
  }
  state.counters["commit_rate"] =
      benchmark::Counter(static_cast<double>(commits),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TxBeginCommitEmpty);

void BM_TxTwoWordUpdate(benchmark::State& state) {
  Atom<NativePlatform, std::uint64_t> a, b;
  a.init(0);
  b.init(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ++v;
    pto::prefix<NativePlatform>(
        4,
        [&] {
          a.store(v, std::memory_order_relaxed);
          b.store(v, std::memory_order_relaxed);
        },
        [&] {
          a.store(v);
          b.store(v);
        });
  }
}
BENCHMARK(BM_TxTwoWordUpdate);

void BM_SoftwareDcas(benchmark::State& state) {
  pto::EpochDomain<NativePlatform> dom;
  kc::Ctx<NativePlatform> ctx(dom);
  kc::Word<NativePlatform> a, b;
  a.init(0);
  b.init(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    typename pto::EpochDomain<NativePlatform>::Guard g(ctx.epoch);
    benchmark::DoNotOptimize(
        kc::dcas<NativePlatform>(ctx, a, v, v + 4, b, v, v + 4));
    v += 4;
  }
}
BENCHMARK(BM_SoftwareDcas);

void BM_PtoDcas(benchmark::State& state) {
  pto::EpochDomain<NativePlatform> dom;
  kc::Ctx<NativePlatform> ctx(dom);
  kc::Word<NativePlatform> a, b;
  a.init(0);
  b.init(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    typename pto::EpochDomain<NativePlatform>::Guard g(ctx.epoch);
    benchmark::DoNotOptimize(
        kc::pto_dcas<NativePlatform>(ctx, a, v, v + 4, b, v, v + 4));
    v += 4;
  }
}
BENCHMARK(BM_PtoDcas);

}  // namespace

BENCHMARK_MAIN();
