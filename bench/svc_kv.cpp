// Sharded KV service benchmark — the end-to-end native workload: real
// std::threads on the pto::service::Runtime (pinned round-robin over allowed
// CPUs), per-shard skiplist or hashtable instances behind the ShardedKV
// router, zipf/uniform/hotset key popularity from the deterministic load
// generator, closed- or open-loop issue.
//
// Two series per run: the PTO-accelerated ops and the plain lock-free
// baseline, both over the same shard/workload geometry so the series labels
// carry the full configuration ("skip/pto sh=4 z=0.99"). Throughput is
// best-of-trials wall clock; with PTO_OBS=1 each BenchPoint carries
// p50/p90/p99/p999 per-op latency split fast/fallback (open-loop latency is
// measured from the op's *scheduled* Poisson arrival, so queueing delay is
// included — no coordinated omission).
//
// Configuration: PTO_BENCH_* (threads sweep, ops, trials — benchutil/runner)
// plus PTO_SVC_* (shards, structure, batch, key popularity, mix, open-loop
// rate — service/loadgen.h documents the full list).
//
// Output: figure table on stdout, svc_kv.csv, BENCH_svc.json (one point per
// series x thread count; tools/check_svc_speed.py gates CI on it), and
// schema-v2 BenchPoints on PTO_STATS.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/native_runner.h"
#include "benchutil/series.h"
#include "obs/obs.h"
#include "obs/tsc.h"
#include "platform/native_platform.h"
#include "service/loadgen.h"
#include "service/runtime.h"
#include "service/shard.h"

namespace {

using pto::NativePlatform;
namespace pb = pto::bench;
namespace svc = pto::service;

struct PointRec {
  std::string series;
  unsigned threads;
  double ops_per_sec;
};

/// Build the per-trial fixture for one measured point. Op streams and
/// open-loop arrival gaps are drawn once per point, outside every timed
/// section — stream generation (zipf inverse-CDF lookups) must not pollute
/// the measured service path.
template <class A>
std::function<std::function<void(unsigned, std::uint64_t)>()> fixture(
    const svc::ServiceOptions& so, A adapter, const svc::SvcSites& sites,
    unsigned threads, std::uint64_t ops_per_thread) {
  using KV = svc::ShardedKV<NativePlatform, A>;

  auto streams = std::make_shared<std::vector<std::vector<svc::Op>>>(threads);
  auto gaps =
      std::make_shared<std::vector<std::vector<std::uint64_t>>>();  // ticks
  const svc::OpStream os(so.workload);
  for (unsigned t = 0; t < threads; ++t) {
    os.fill(t, ops_per_thread, (*streams)[t]);
  }
  const bool openloop = so.workload.openloop_rate > 0.0;
  if (openloop) {
    const double ticks_per_ns =
        static_cast<double>(pto::obs::ticks_per_sec()) * 1e-9;
    gaps->resize(threads);
    std::vector<std::uint64_t> ns_gaps;
    for (unsigned t = 0; t < threads; ++t) {
      ns_gaps.clear();
      os.fill_arrivals_ns(t, ops_per_thread, ns_gaps);
      (*gaps)[t].reserve(ns_gaps.size());
      for (const std::uint64_t g : ns_gaps) {
        (*gaps)[t].push_back(
            static_cast<std::uint64_t>(static_cast<double>(g) * ticks_per_ns));
      }
    }
  }

  return [so, adapter, sites, streams, gaps, openloop] {
    auto kv = std::make_shared<KV>(so.shards, adapter);
    {
      // Prefill half the keyspace (even keys) so gets hit ~50% and the
      // del/put churn keeps the size stationary.
      auto c = kv->make_client();
      for (std::uint64_t k = 0; k < so.workload.keyspace; k += 2) {
        c.put(static_cast<std::int64_t>(k));
      }
    }
    return [kv, so, sites, streams, gaps, openloop](unsigned tid,
                                                    std::uint64_t ops) {
      const std::vector<svc::Op>& st = (*streams)[tid];
      if (so.batch > 0) {
        svc::BatchingClient<KV> bc(*kv, so.batch, &sites);
        for (std::uint64_t i = 0; i < ops; ++i) bc.exec(st[i % st.size()]);
        bc.flush_all();
      } else if (openloop) {
        auto client = kv->make_client();
        const std::vector<std::uint64_t>& g = (*gaps)[tid];
        std::uint64_t sched = pto::obs::now_ticks();
        for (std::uint64_t i = 0; i < ops; ++i) {
          const svc::Op& op = st[i % st.size()];
          sched += g[i % g.size()];
          while (pto::obs::now_ticks() < sched) {
          }
          const std::uint64_t fb0 = pto::obs::fallbacks_now();
          client.exec(op);
          if (pto::obs::hist_on()) {
            const std::uint64_t t1 = pto::obs::now_ticks();
            pto::obs::record_latency(sites.of(op.kind),
                                     pto::obs::fallbacks_now() != fb0,
                                     t1 > sched ? t1 - sched : 0);
          }
        }
      } else {
        auto client = kv->make_client();
        for (std::uint64_t i = 0; i < ops; ++i) {
          const svc::Op& op = st[i % st.size()];
          pto::obs::OpTimer t(sites.of(op.kind));
          client.exec(op);
        }
      }
    };
  };
}

}  // namespace

int main() {
  const pb::RunnerOptions opts = pb::RunnerOptions::from_env();
  const svc::ServiceOptions so = svc::ServiceOptions::from_env();
  // Calibrate the tick clock before any timed section (first call spins).
  (void)pto::obs::ticks_per_sec();
  const svc::SvcSites sites = svc::SvcSites::intern();

  pb::Figure fig;
  fig.id = "svc_kv";
  fig.title = "Sharded KV service (real threads, wall-clock)";
  fig.xs = pb::sweep_threads(opts);

  char geo[96];
  if (so.workload.dist == svc::Dist::kZipf) {
    std::snprintf(geo, sizeof(geo), " sh=%u z=%.2f", so.shards,
                  so.workload.theta);
  } else {
    std::snprintf(geo, sizeof(geo), " sh=%u %s", so.shards,
                  svc::dist_name(so.workload.dist));
  }

  std::vector<PointRec> recs;
  const struct {
    const char* tag;
    bool pto;
  } series[] = {{"/pto", true}, {"/lf", false}};
  for (const auto& s : series) {
    const std::string name =
        std::string(svc::structure_name(so.structure)) + s.tag + geo;
    pb::Series& out = fig.add_series(name);
    for (const int threads : fig.xs) {
      const auto nthreads = static_cast<unsigned>(threads);
      svc::Runtime rt({nthreads, so.pin});
      const pb::SectionRunner section =
          [&rt](const std::function<void(unsigned)>& body) {
            return rt.run(body);
          };
      double ops_per_ms = 0.0;
      if (so.structure == svc::Structure::kSkiplist) {
        ops_per_ms = pb::native_measure_point(
            opts, nthreads,
            fixture(so, svc::SkipAdapter<NativePlatform>{s.pto}, sites,
                    nthreads, opts.ops_per_thread),
            fig.id.c_str(), name.c_str(), section);
      } else {
        using Mode = pto::FSetHash<NativePlatform>::Mode;
        ops_per_ms = pb::native_measure_point(
            opts, nthreads,
            fixture(so,
                    svc::HashAdapter<NativePlatform>{s.pto ? Mode::kPto
                                                           : Mode::kLockfree},
                    sites, nthreads, opts.ops_per_thread),
            fig.id.c_str(), name.c_str(), section);
      }
      out.y.push_back(ops_per_ms);
      recs.push_back({name, nthreads, ops_per_ms * 1000.0});
      std::cerr << "  " << name << " t=" << threads << " done\r" << std::flush;
    }
    std::cerr << "                                                  \r";
  }

  fig.print(std::cout);
  fig.write_csv("svc_kv.csv");

  std::ofstream json("BENCH_svc.json");
  json << "{\"bench\":\"svc_kv\",\"shards\":" << so.shards << ",\"struct\":\""
       << svc::structure_name(so.structure) << "\",\"dist\":\""
       << svc::dist_name(so.workload.dist) << "\",\"theta\":"
       << so.workload.theta << ",\"batch\":" << so.batch
       << ",\"openloop_rate\":" << so.workload.openloop_rate << ",\"points\":[";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const PointRec& r = recs[i];
    json << (i ? "," : "") << "{\"series\":\"" << r.series
         << "\",\"threads\":" << r.threads << ",\"shards\":" << so.shards
         << ",\"ops_per_sec\":" << r.ops_per_sec << "}";
  }
  json << "]}\n";
  std::cout << "CSV written to svc_kv.csv; JSON written to BENCH_svc.json\n";
  return 0;
}
