// Figure 2(a): Mindicator microbenchmark (mbench).
//
// Paper setup: 64-leaf binary tree, default left-to-right thread->leaf
// mapping; each thread repeatedly arrives with a random value and departs.
// Series: lock-free baseline, PTO (3 retries), TLE (coarse lock + elision).
//
// Paper claims reproduced here (EXPERIMENTS.md "fig2a"):
//   - at 1 thread, PTO latency is close to TLE (both beat lock-free);
//   - TLE scales poorly (locking fallback);
//   - PTO scales like the lock-free code and overtakes it beyond 4 threads.
#include <iostream>

#include "bench_util.h"
#include "ds/mindicator/mindicator.h"
#include "platform/sim_platform.h"

namespace {

using pto::Mindicator;
using pto::SimPlatform;
namespace pb = pto::bench;

enum class Variant { kLf, kPto, kTle };

struct Fixture {
  explicit Fixture(Variant v) : variant(v), mind(64) {}
  Variant variant;
  Mindicator<SimPlatform> mind;

  void prefill(std::uint64_t) {}

  void thread_body(unsigned tid, std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; i += 2) {
      auto v = static_cast<std::int32_t>(pto::sim::rnd() % 1'000'000);
      switch (variant) {
        case Variant::kLf:
          mind.arrive_lf(tid, v);
          mind.depart_lf(tid);
          break;
        case Variant::kPto:
          mind.arrive_pto(tid, v);
          mind.depart_pto(tid);
          break;
        case Variant::kTle:
          mind.arrive_tle(tid, v);
          mind.depart_tle(tid);
          break;
      }
      pto::sim::op_done(2);
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  pb::Figure fig;
  fig.id = "fig2a";
  fig.title = "Mindicator Microbenchmark (mbench, 64 leaves)";
  fig.xs = pb::sweep_threads(opts);

  pto::sim::Config cfg;
  pb::run_variant<Fixture>(fig, opts, cfg, "Mindicator(Lockfree)",
                           [] { return new Fixture(Variant::kLf); });
  pb::run_variant<Fixture>(fig, opts, cfg, "Mindicator(PTO)",
                           [] { return new Fixture(Variant::kPto); });
  pb::run_variant<Fixture>(fig, opts, cfg, "Mindicator(TLE)",
                           [] { return new Fixture(Variant::kTle); });
  pb::finish(fig, "fig2a.csv");

  pb::shape_note(std::cout, "PTO/LF @1T",
                 fig.ratio_at("Mindicator(PTO)", "Mindicator(Lockfree)", 1),
                 ">1: PTO cuts single-thread latency");
  pb::shape_note(std::cout, "PTO/TLE @1T",
                 fig.ratio_at("Mindicator(PTO)", "Mindicator(TLE)", 1),
                 "~1: PTO near-optimal at one thread");
  int maxt = fig.xs.back();
  pb::shape_note(std::cout, "PTO/LF @maxT",
                 fig.ratio_at("Mindicator(PTO)", "Mindicator(Lockfree)", maxt),
                 ">=1: PTO scales at least as well as lock-free");
  pb::shape_note(std::cout, "PTO/TLE @maxT",
                 fig.ratio_at("Mindicator(PTO)", "Mindicator(TLE)", maxt),
                 ">>1: TLE collapses under contention");
  return 0;
}
