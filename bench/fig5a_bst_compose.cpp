// Figure 5(a): composition of PTO on the binary search tree.
//
// Improvement over the lock-free baseline (percent) for PTO1, PTO2, and the
// hierarchical composition PTO1+PTO2, on the write-only 512-key setbench.
//
// Paper claims: PTO1 gives ~75%+ at low thread counts but decays under
// contention (big read sets conflict); PTO2 is weaker at 1 thread (search
// overhead remains) but grows with concurrency (smaller contention window);
// PTO1+PTO2 tracks the better of the two everywhere.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/bst/ellen_bst.h"
#include "platform/sim_platform.h"

namespace {

using pto::EllenBST;
using pto::SimPlatform;
namespace pb = pto::bench;

constexpr int kRange = 512;

struct Fixture {
  using Mode = EllenBST<SimPlatform>::Mode;
  explicit Fixture(Mode m) : mode(m) {}
  Mode mode;
  EllenBST<SimPlatform> set;

  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      set.insert(ctx, static_cast<std::int64_t>(rng.next_below(kRange)),
                 Mode::kLockfree);
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      if (pto::sim::rnd() % 2 == 0) {
        set.insert(ctx, k, mode);
      } else {
        set.remove(ctx, k, mode);
      }
      pto::sim::op_done();
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  using Mode = EllenBST<SimPlatform>::Mode;
  pb::Figure fig;
  fig.id = "fig5a";
  fig.title = "BST PTO Composition (improvement over lock-free, %)";
  fig.ylabel = "Improvement (%)";
  fig.xs = pb::sweep_threads(opts);

  pb::Figure raw;
  raw.id = "fig5a-raw";
  raw.title = "raw throughput";
  raw.xs = fig.xs;
  pto::sim::Config cfg;
  pb::run_variant<Fixture>(raw, opts, cfg, "LF",
                           [] { return new Fixture(Mode::kLockfree); });
  pb::run_variant<Fixture>(raw, opts, cfg, "PTO1",
                           [] { return new Fixture(Mode::kPto1); });
  pb::run_variant<Fixture>(raw, opts, cfg, "PTO2",
                           [] { return new Fixture(Mode::kPto2); });
  pb::run_variant<Fixture>(raw, opts, cfg, "PTO1+PTO2",
                           [] { return new Fixture(Mode::kPto12); });

  const auto* lf = raw.find("LF");
  for (const char* name : {"PTO1", "PTO2", "PTO1+PTO2"}) {
    auto& s = fig.add_series(name);
    const auto* v = raw.find(name);
    for (std::size_t i = 0; i < raw.xs.size(); ++i) {
      s.y.push_back((v->y[i] / lf->y[i] - 1.0) * 100.0);
    }
  }
  pb::finish(fig, "fig5a.csv");

  pb::shape_note(std::cout, "PTO1 improvement @1T (%)",
                 fig.find("PTO1")->y.front(), "~75% at low thread counts");
  pb::shape_note(std::cout, "PTO2 improvement @1T (%)",
                 fig.find("PTO2")->y.front(), "smaller than PTO1 at 1T");
  pb::shape_note(
      std::cout, "PTO1+PTO2 vs max(PTO1,PTO2) @maxT (%)",
      fig.find("PTO1+PTO2")->y.back() -
          std::max(fig.find("PTO1")->y.back(), fig.find("PTO2")->y.back()),
      "~0: composition tracks the better component");
  return 0;
}
