// Ablation: prefix-transaction retry thresholds.
//
// The paper reports tuned retry budgets — Mindicator 3 (§3.1), Mound
// DCAS/DCSS 4 (§4.2), BST 2 attempts of PTO1 then 16 of PTO2 (§4.4). This
// bench sweeps the budget at 8 threads and prints where the knee sits, so
// the tuned constants can be checked against the simulator.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/bst/ellen_bst.h"
#include "ds/mindicator/mindicator.h"
#include "platform/sim_platform.h"

namespace {

using pto::EllenBST;
using pto::Mindicator;
using pto::PrefixPolicy;
using pto::SimPlatform;
namespace pb = pto::bench;

struct MindFixture {
  explicit MindFixture(int retries) : pol(retries), mind(64) {}
  PrefixPolicy pol;
  Mindicator<SimPlatform> mind;
  void prefill(std::uint64_t) {}
  void thread_body(unsigned tid, std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; i += 2) {
      auto v = static_cast<std::int32_t>(pto::sim::rnd() % 1'000'000);
      mind.arrive_pto(tid, v, nullptr, pol);
      mind.depart_pto(tid, nullptr, pol);
      pto::sim::op_done(2);
    }
  }
};

struct BstFixture {
  explicit BstFixture(int retries) : pol(retries) {
    // Sweep the PTO1 budget; keep the PTO2 stage at the paper's 16.
    set.set_policies(pol, PrefixPolicy(16));
  }
  PrefixPolicy pol;
  EllenBST<SimPlatform> set;
  void prefill(std::uint64_t seed) {
    auto ctx = set.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < 256; ++i) {
      set.insert(ctx, static_cast<std::int64_t>(rng.next_below(512)));
    }
  }
  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = set.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % 512);
      // PTO1 with a swept retry budget, falling back to lock-free.
      if (pto::sim::rnd() % 2 == 0) {
        set.insert(ctx, k, EllenBST<SimPlatform>::Mode::kPto12);
      } else {
        set.remove(ctx, k, EllenBST<SimPlatform>::Mode::kPto12);
      }
      pto::sim::op_done();
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  const unsigned threads = opts.max_threads;

  pb::Figure fig;
  fig.id = "abl_retry";
  fig.title = "Retry-budget sweep at " + std::to_string(threads) +
              " threads (ops/ms)";
  fig.xs = {1, 2, 3, 4, 6, 8, 12, 16};

  auto& mind_series = fig.add_series("Mindicator(PTO)");
  pto::sim::Config cfg;
  for (int retries : fig.xs) {
    double sum = 0;
    for (unsigned t = 0; t < opts.trials; ++t) {
      cfg.seed = 91 + t;
      {
        MindFixture f(retries);
        auto res = pto::sim::run(threads, cfg, [&](unsigned tid) {
          f.thread_body(tid, opts.ops_per_thread);
        });
        sum += res.ops_per_msec();
      }  // the fixture must die before its arena is reset
      pto::sim::reset_memory();
    }
    mind_series.y.push_back(sum / opts.trials);
  }

  auto& bst_series = fig.add_series("BST(PTO1+PTO2)");
  for (int retries : fig.xs) {
    double sum = 0;
    for (unsigned t = 0; t < opts.trials; ++t) {
      cfg.seed = 77 + t;
      auto* f = new BstFixture(retries);
      f->prefill(cfg.seed);
      auto res = pto::sim::run(threads, cfg, [&](unsigned tid) {
        f->thread_body(tid, opts.ops_per_thread);
      });
      sum += res.ops_per_msec();
      delete f;
      pto::sim::reset_memory();
    }
    bst_series.y.push_back(sum / opts.trials);
  }

  std::cout << "(x axis = retry budget, not threads)\n";
  pb::finish(fig, "abl_retry.csv");
  return 0;
}
