// Native (std::thread) set microbenchmark — the driving workload for the
// pto::obs observability stack and the CI overhead/abort-attribution gates.
//
// Runs the skiplist on REAL threads over the native HTM facade (RTM when the
// probe commits, SoftHTM otherwise; force with PTO_HTM=soft|rtm). Two series:
// the PTO-accelerated ops and the plain lock-free fallback ops, mixed
// 25% insert / 25% remove / 50% contains over a PTO_BENCH_RANGE-key range
// (default 512).
//
// Observability knobs (see README):
//   PTO_OBS=1      per-op latency histograms -> p50/p90/p99/p999 in PTO_STATS
//   PTO_OBS_SAMPLE=k   time 1 in k ops (cheaper; percentiles stay unbiased)
//   PTO_FLIGHT=n   per-thread flight ring, dumped to PTO_FLIGHT_OUT on exit
//   PTO_PERF=1     hardware counters (cycles/instructions/LLC, TSX if exposed)
//   PTO_STATS=json|csv   structured BenchPoint per measured point (schema v2)
//
// Unlike the fig* binaries this measures wall-clock time on whatever cores
// the host gives us, so absolute numbers are machine-dependent; the emitted
// records carry everything needed to compare runs (provenance + percentiles).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "benchutil/native_runner.h"
#include "benchutil/series.h"
#include "common/rng.h"
#include "ds/skiplist/skiplist.h"
#include "obs/obs.h"
#include "platform/native_platform.h"

namespace {

using pto::NativePlatform;
using pto::SkipList;
namespace pb = pto::bench;

/// Key range (PTO_BENCH_RANGE, default 512). Larger ranges mean taller
/// skiplists and longer ops — the obs-overhead CI gate uses a large range so
/// the fixed per-op instrumentation cost is measured against realistic work,
/// not a toy 10-node traversal.
int range_from_env() {
  const char* v = std::getenv("PTO_BENCH_RANGE");
  if (v == nullptr || *v == '\0') return 512;
  const long n = std::strtol(v, nullptr, 10);
  return n > 1 ? static_cast<int>(n) : 512;
}

int g_range = 512;

std::function<std::function<void(unsigned, std::uint64_t)>()> fixture(
    bool pto_path) {
  // Latency sites: one per op class, shared by both series (the series label
  // in the emitted record disambiguates).
  pto::obs::LatencySite* ins = pto::obs::intern_latency_site("native_set.insert");
  pto::obs::LatencySite* rem = pto::obs::intern_latency_site("native_set.remove");
  pto::obs::LatencySite* look =
      pto::obs::intern_latency_site("native_set.contains");
  return [pto_path, ins, rem, look] {
    auto set = std::make_shared<SkipList<NativePlatform>>();
    {
      auto ctx = set->make_ctx();
      pto::SplitMix64 prefill(0xF1F1);
      for (int i = 0; i < g_range / 2; ++i) {
        set->insert_lf(ctx, static_cast<std::int64_t>(
                                prefill.next_below(static_cast<std::uint64_t>(g_range))));
      }
    }
    return [set, pto_path, ins, rem, look](unsigned tid, std::uint64_t ops) {
      auto ctx = set->make_ctx();
      pto::SplitMix64 rng(0x9E37 + tid * 7919ull);
      for (std::uint64_t i = 0; i < ops; ++i) {
        const auto k = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(g_range)));
        switch (rng.next() & 3) {
          case 0: {
            pto::obs::OpTimer t(ins);
            if (pto_path) {
              set->insert_pto(ctx, k);
            } else {
              set->insert_lf(ctx, k);
            }
            break;
          }
          case 1: {
            pto::obs::OpTimer t(rem);
            if (pto_path) {
              set->remove_pto(ctx, k);
            } else {
              set->remove_lf(ctx, k);
            }
            break;
          }
          default: {
            pto::obs::OpTimer t(look);
            set->contains(ctx, k);
            break;
          }
        }
      }
    };
  };
}

}  // namespace

int main() {
  const pb::RunnerOptions opts = pb::RunnerOptions::from_env();
  g_range = range_from_env();
  pb::Figure fig;
  fig.id = "native_set";
  fig.title = "Native skiplist (real threads, wall-clock)";
  fig.xs = pb::sweep_threads(opts);

  struct {
    const char* name;
    bool pto;
  } series[] = {{"Skip(PTO)", true}, {"Skip(LF)", false}};
  for (const auto& s : series) {
    pb::Series& out = fig.add_series(s.name);
    for (int threads : fig.xs) {
      out.y.push_back(pb::native_measure_point(
          opts, static_cast<unsigned>(threads), fixture(s.pto), fig.id.c_str(),
          s.name));
      std::cerr << "  " << s.name << " t=" << threads << " done\r"
                << std::flush;
    }
    std::cerr << "                                        \r";
  }

  fig.print(std::cout);
  fig.write_csv("native_set.csv");
  std::cout << "CSV written to native_set.csv\n";
  return 0;
}
