// Ablation (extension beyond the paper's figures): PTO on the two classic
// "simple" nonblocking structures the paper cites but does not evaluate —
// the Harris linked list [14] and the Michael-Scott queue [35] — plus the
// generic TLE wrapper as the lock-based comparison point.
//
// Expected shapes, by the paper's §4.6 criteria ("What Makes PTO Fast?"):
// both structures are already streamlined in the ASCY sense — one or two
// CASes per update, no descriptors, no copy-on-write, no redundant stores —
// so PTO has little to eliminate and we expect ~parity at one thread and a
// deficit under contention (wasted aborts), the same verdict the paper
// reaches for the skiplist. The useful wins that remain are epoch elision
// on lookups and the mark+unlink fusion on removes. TLE contrasts as the
// lock baseline: comparable at one thread, flat under contention.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/list/harris_list.h"
#include "ds/queue/ms_queue.h"
#include "ds/tle/tle.h"
#include "platform/sim_platform.h"

namespace {

using pto::HarrisList;
using pto::MSQueue;
using pto::SeqHashSet;
using pto::SimPlatform;
using pto::TLE;
namespace pb = pto::bench;

constexpr int kRange = 64;

struct ListFixture {
  enum class V { kLf, kPto, kTle };
  explicit ListFixture(V v) : variant(v), tle(256) {}
  V variant;
  HarrisList<SimPlatform> list;
  TLE<SimPlatform, SeqHashSet<SimPlatform>> tle;

  void prefill(std::uint64_t seed) {
    auto ctx = list.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      auto k = static_cast<std::int64_t>(rng.next_below(kRange));
      list.insert_lf(ctx, k);
      tle.unsafe_seq().insert(k);
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = list.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      auto c = pto::sim::rnd() % 100;
      switch (variant) {
        case V::kLf:
          if (c < 34) {
            list.contains_lf(ctx, k);
          } else if (c < 67) {
            list.insert_lf(ctx, k);
          } else {
            list.remove_lf(ctx, k);
          }
          break;
        case V::kPto:
          if (c < 34) {
            list.contains_pto(ctx, k);
          } else if (c < 67) {
            list.insert_pto(ctx, k);
          } else {
            list.remove_pto(ctx, k);
          }
          break;
        case V::kTle:
          if (c < 34) {
            tle.execute([&](auto& s) { return s.contains(k); });
          } else if (c < 67) {
            tle.execute([&](auto& s) { return s.insert(k); });
          } else {
            tle.execute([&](auto& s) { return s.remove(k); });
          }
          break;
      }
      pto::sim::op_done();
    }
  }
};

struct QueueFixture {
  explicit QueueFixture(bool pto) : use_pto(pto) {}
  bool use_pto;
  MSQueue<SimPlatform> q;

  void prefill(std::uint64_t seed) {
    auto ctx = q.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < 128; ++i) {
      q.enqueue_lf(ctx, static_cast<std::int64_t>(rng.next()));
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = q.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        if (use_pto) {
          q.enqueue_pto(ctx, static_cast<std::int64_t>(i));
        } else {
          q.enqueue_lf(ctx, static_cast<std::int64_t>(i));
        }
      } else {
        if (use_pto) {
          q.dequeue_pto(ctx);
        } else {
          q.dequeue_lf(ctx);
        }
      }
      pto::sim::op_done();
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();

  pb::Figure lfig;
  lfig.id = "abl_list";
  lfig.title = "Harris list set (34/33/33 mix, range 64)";
  lfig.xs = pb::sweep_threads(opts);
  pto::sim::Config cfg;
  pb::run_variant<ListFixture>(lfig, opts, cfg, "List(Lockfree)", [] {
    return new ListFixture(ListFixture::V::kLf);
  });
  pb::run_variant<ListFixture>(lfig, opts, cfg, "List(PTO)", [] {
    return new ListFixture(ListFixture::V::kPto);
  });
  pb::run_variant<ListFixture>(lfig, opts, cfg, "HashTLE", [] {
    return new ListFixture(ListFixture::V::kTle);
  });
  pb::finish(lfig, "abl_list.csv");
  pb::shape_note(std::cout, "List PTO/LF @1T",
                 lfig.ratio_at("List(PTO)", "List(Lockfree)", 1),
                 "~1: ASCY-compliant structure, little to eliminate (4.6)");
  int maxt = lfig.xs.back();
  pb::shape_note(std::cout, "List PTO/LF @maxT",
                 lfig.ratio_at("List(PTO)", "List(Lockfree)", maxt),
                 "<=1: aborts cost more than the tx saves");
  pb::shape_note(std::cout, "ListPTO/HashTLE @maxT",
                 lfig.ratio_at("List(PTO)", "HashTLE", maxt),
                 "TLE's global lock limits its scaling");

  pb::Figure qfig;
  qfig.id = "abl_queue";
  qfig.title = "Michael-Scott queue (50/50 enqueue/dequeue)";
  qfig.xs = pb::sweep_threads(opts);
  pb::run_variant<QueueFixture>(qfig, opts, cfg, "MSQueue(Lockfree)",
                                [] { return new QueueFixture(false); });
  pb::run_variant<QueueFixture>(qfig, opts, cfg, "MSQueue(PTO)",
                                [] { return new QueueFixture(true); });
  pb::finish(qfig, "abl_queue.csv");
  pb::shape_note(std::cout, "Queue PTO/LF @1T",
                 qfig.ratio_at("MSQueue(PTO)", "MSQueue(Lockfree)", 1),
                 "~1: 2 CASes vs tx boundary break even (4.6)");
  return 0;
}
