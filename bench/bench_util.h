// Shared driving code for the figure-reproduction binaries.
//
// Every figure binary sweeps thread counts 1..8 (paper hardware: i7-4770,
// 8 hardware threads) on the simulated multicore, averages PTO_BENCH_TRIALS
// trials per point (paper: 5 trials), prints the figure as a table, writes a
// CSV next to the binary, and emits [shape] lines comparing the measured
// ratios with the paper's qualitative claims (recorded in EXPERIMENTS.md).
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "benchutil/runner.h"
#include "benchutil/series.h"
#include "metrics/metrics.h"
#include "sim/sim.h"
#include "telemetry/emit.h"
#include "telemetry/prof.h"
#include "telemetry/registry.h"

namespace pto::bench {

/// One variant of one benchmark: fresh structure per trial, sequential
/// prefill on the host, measured multi-threaded simulation, teardown +
/// arena reset.
///
/// `factory()` allocates a fixture; the fixture must provide:
///   void prefill(std::uint64_t seed);
///   void thread_body(unsigned tid, std::uint64_t ops);  // calls op_done
struct VariantResult {
  std::vector<double> ops_per_ms;  // indexed by xs
};

template <class Fixture>
void run_variant(Figure& fig, const RunnerOptions& opts,
                 const sim::Config& base_cfg, const std::string& name,
                 const std::function<Fixture*()>& factory) {
  Series& s = fig.add_series(name);
  // With PTO_STATS set, each point also emits a structured record carrying
  // the full abort/fallback breakdown; otherwise output is unchanged.
  const bool emit =
      telemetry::stats_format() != telemetry::StatsFormat::kOff;
  // With PTO_PROF set, the profiler accumulates this variant into its own
  // scope so the end-of-run report answers "where did the speedup come from"
  // per series.
  if (telemetry::prof::on()) {
    telemetry::prof::set_scope(fig.id + "/" + name);
  }
  for (int threads : fig.xs) {
    double sum = 0.0;
    telemetry::BenchPoint pt;
    PrefixStats reg_before;
    if (emit) {
      reg_before = telemetry::registry_totals();
      pt.ts_start = telemetry::iso8601_now();
    }
    const std::uint64_t intervals_before = metrics::intervals_emitted();
    metrics::set_point_labels(fig.id.c_str(), name.c_str(),
                              static_cast<unsigned>(threads));
    for (unsigned trial = 0; trial < opts.trials; ++trial) {
      sim::Config cfg = base_cfg;
      cfg.seed = opts.base_seed + 7919ull * trial + 131ull * threads;
      Fixture* f = factory();
      f->prefill(cfg.seed ^ 0xABCDEF);
      auto res = sim::run(static_cast<unsigned>(threads), cfg,
                          [&](unsigned tid) {
                            f->thread_body(tid, opts.ops_per_thread);
                          });
      sum += res.ops_per_msec();
      if (emit) {
        pt.sim.accumulate(res.totals());
        pt.makespan += res.makespan();
        for (auto c : res.clocks) pt.cpu_cycles += c;
      }
      delete f;
      sim::reset_memory();
    }
    s.y.push_back(sum / opts.trials);
    if (emit) {
      pt.bench = fig.id;
      pt.series = name;
      pt.threads = static_cast<unsigned>(threads);
      pt.trials = opts.trials;
      pt.ops_per_ms = s.y.back();
      pt.prefix = telemetry::registry_delta(reg_before);
      pt.ts_end = telemetry::iso8601_now();
      pt.intervals = metrics::intervals_emitted() - intervals_before;
      telemetry::emit_bench_point(pt);
    }
    std::cerr << "  " << name << " t=" << threads << " done\r" << std::flush;
  }
  std::cerr << "                                        \r";
}

inline void finish(Figure& fig, const std::string& csv_name) {
  fig.print(std::cout);
  fig.write_csv(csv_name);
  std::cout << "CSV written to " << csv_name << "\n";
}

}  // namespace pto::bench
