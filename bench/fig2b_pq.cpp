// Figure 2(b): priority-queue microbenchmark (pqbench).
//
// Even mix of insert and extractMin with random keys, on the Mound (whose
// DCAS/DCSS sub-operations are PTO-accelerated, retry=4) and the SkipQueue
// (Lotan–Shavit over the lock-free skiplist).
//
// Paper claims: Mound(PTO) beats Mound(Lockfree) — the DCAS latency is the
// win; SkipQ(PTO) is roughly equal to SkipQ(Lockfree) (traversal misses
// dominate and pops conflict at the head).
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/mound/mound.h"
#include "ds/skiplist/skipqueue.h"
#include "platform/sim_platform.h"

namespace {

using pto::Mound;
using pto::SimPlatform;
using pto::SkipQueue;
namespace pb = pto::bench;

constexpr int kPrefill = 512;
constexpr std::int32_t kKeyRange = 1 << 20;

struct MoundFixture {
  explicit MoundFixture(bool pto) : use_pto(pto), q(16) {}
  bool use_pto;
  Mound<SimPlatform> q;

  void prefill(std::uint64_t seed) {
    auto ctx = q.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kPrefill; ++i) {
      q.insert_lf(ctx, static_cast<std::int32_t>(rng.next_below(kKeyRange)));
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = q.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        auto v = static_cast<std::int32_t>(pto::sim::rnd() % kKeyRange);
        if (use_pto) {
          q.insert_pto(ctx, v);
        } else {
          q.insert_lf(ctx, v);
        }
      } else {
        if (use_pto) {
          q.extract_min_pto(ctx);
        } else {
          q.extract_min_lf(ctx);
        }
      }
      pto::sim::op_done();
    }
  }
};

struct SkipQFixture {
  explicit SkipQFixture(bool pto) : use_pto(pto) {}
  bool use_pto;
  SkipQueue<SimPlatform> q;

  void prefill(std::uint64_t seed) {
    auto ctx = q.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kPrefill; ++i) {
      q.push_lf(ctx, static_cast<std::int32_t>(rng.next_below(kKeyRange)));
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = q.make_ctx();
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        auto v = static_cast<std::int32_t>(pto::sim::rnd() % kKeyRange);
        if (use_pto) {
          q.push_pto(ctx, v);
        } else {
          q.push_lf(ctx, v);
        }
      } else {
        if (use_pto) {
          q.pop_min_pto(ctx);
        } else {
          q.pop_min_lf(ctx);
        }
      }
      pto::sim::op_done();
    }
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  pb::Figure fig;
  fig.id = "fig2b";
  fig.title = "Priority Queue Microbenchmark (pqbench, 50/50 push/pop)";
  fig.xs = pb::sweep_threads(opts);

  pto::sim::Config cfg;
  pb::run_variant<MoundFixture>(fig, opts, cfg, "Mound(Lockfree)",
                                [] { return new MoundFixture(false); });
  pb::run_variant<MoundFixture>(fig, opts, cfg, "Mound(PTO)",
                                [] { return new MoundFixture(true); });
  pb::run_variant<SkipQFixture>(fig, opts, cfg, "SkipQ(Lockfree)",
                                [] { return new SkipQFixture(false); });
  pb::run_variant<SkipQFixture>(fig, opts, cfg, "SkipQ(PTO)",
                                [] { return new SkipQFixture(true); });
  pb::finish(fig, "fig2b.csv");

  pb::shape_note(std::cout, "Mound PTO/LF @1T",
                 fig.ratio_at("Mound(PTO)", "Mound(Lockfree)", 1),
                 ">1: DCAS latency removed");
  int maxt = fig.xs.back();
  pb::shape_note(std::cout, "Mound PTO/LF @maxT",
                 fig.ratio_at("Mound(PTO)", "Mound(Lockfree)", maxt),
                 ">=1 at all thread counts");
  pb::shape_note(std::cout, "SkipQ PTO/LF @1T",
                 fig.ratio_at("SkipQ(PTO)", "SkipQ(Lockfree)", 1),
                 "~1: no benefit, traversal dominates");
  return 0;
}
