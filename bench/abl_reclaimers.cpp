// Ablation: memory-reclamation overhead and its transactional elision
// (paper §2.3 "intermediate updates to the hazard lists ... can be safely
// eliminated", §5 "hardware transactions do not need to update memory
// management epochs ... epochs can again be a significant cost [for
// read-only operations], due to their introduction of memory fences").
//
// Workload: lookup-only sweeps over the Harris list at several list lengths,
// comparing per-lookup cost under (a) epoch guards, (b) hazard pointers on
// every traversed node, (c) a prefix transaction that elides either scheme.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "ds/list/harris_list.h"
#include "platform/sim_platform.h"
#include "reclaim/hazard.h"

namespace {

using pto::HarrisList;
using pto::HazardDomain;
using pto::SimPlatform;
namespace pb = pto::bench;

constexpr int kRange = 64;

enum class Scheme { kEpoch, kHazard, kPto };

struct Fixture {
  explicit Fixture(Scheme s) : scheme(s) {}
  Scheme scheme;
  HarrisList<SimPlatform> list;
  HazardDomain<SimPlatform> hp;

  void prefill(std::uint64_t seed) {
    auto ctx = list.make_ctx();
    pto::SplitMix64 rng(seed);
    for (int i = 0; i < kRange / 2; ++i) {
      list.insert_lf(ctx, static_cast<std::int64_t>(rng.next_below(kRange)));
    }
  }

  void thread_body(unsigned, std::uint64_t ops) {
    auto ctx = list.make_ctx();
    auto h = hp.register_thread();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(pto::sim::rnd() % kRange);
      switch (scheme) {
        case Scheme::kEpoch:
          list.contains_lf(ctx, k);
          break;
        case Scheme::kPto:
          list.contains_pto(ctx, k);
          break;
        case Scheme::kHazard:
          // Hand-over-hand hazards along the traversal (Michael's pattern
          // for Harris lists): slot 0/1 alternate pred/curr. We model the
          // publication cost; structural safety in this bench comes from
          // the list being lookup-only.
          hazard_lookup(h, k);
          break;
      }
      pto::sim::op_done();
    }
  }

  bool hazard_lookup(typename HazardDomain<SimPlatform>::Handle& h,
                     std::int64_t key) {
    // Traverse with alternating hazard slots (publication + fence each hop).
    // Uses the list's public node layout via contains_lf semantics; we
    // emulate the per-node protection cost with set() on each visited node.
    auto ctx = list.make_ctx();
    // Count the nodes we'd protect: one set() + fence per hop.
    bool found = false;
    {
      // Re-walk with explicit per-hop hazard cost.
      int hops = 0;
      found = list.contains_lf(ctx, key);
      hops = 1 + static_cast<int>(key / 2);  // expected position in range/2 list
      for (int i = 0; i < hops; ++i) {
        h.set(i & 1, &ctx);  // publication store
        SimPlatform::fence();  // the validating fence Michael requires
      }
      h.clear(0);
      h.clear(1);
    }
    return found;
  }
};

}  // namespace

int main() {
  auto opts = pb::RunnerOptions::from_env();
  pb::Figure fig;
  fig.id = "abl_reclaimers";
  fig.title = "Lookup-only Harris list: reclamation scheme overhead";
  fig.xs = pb::sweep_threads(opts);

  pto::sim::Config cfg;
  pb::run_variant<Fixture>(fig, opts, cfg, "Epoch",
                           [] { return new Fixture(Scheme::kEpoch); });
  pb::run_variant<Fixture>(fig, opts, cfg, "HazardPtr",
                           [] { return new Fixture(Scheme::kHazard); });
  pb::run_variant<Fixture>(fig, opts, cfg, "PTO(elided)",
                           [] { return new Fixture(Scheme::kPto); });
  pb::finish(fig, "abl_reclaimers.csv");

  pb::shape_note(std::cout, "PTO/Epoch @1T",
                 fig.ratio_at("PTO(elided)", "Epoch", 1),
                 ">1: epoch enter/exit fences elided (paper §5)");
  pb::shape_note(std::cout, "PTO/HazardPtr @1T",
                 fig.ratio_at("PTO(elided)", "HazardPtr", 1),
                 ">>1: per-node hazard publication is far costlier");
  return 0;
}
