# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_mindicator[1]_include.cmake")
include("/root/repo/build/tests/test_kcas[1]_include.cmake")
include("/root/repo/build/tests/test_skiplist[1]_include.cmake")
include("/root/repo/build/tests/test_bst[1]_include.cmake")
include("/root/repo/build/tests/test_hashtable[1]_include.cmake")
include("/root/repo/build/tests/test_mound[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_epoch[1]_include.cmake")
include("/root/repo/build/tests/test_softhtm[1]_include.cmake")
include("/root/repo/build/tests/test_prefix[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_list[1]_include.cmake")
include("/root/repo/build/tests/test_queue[1]_include.cmake")
include("/root/repo/build/tests/test_hazard[1]_include.cmake")
include("/root/repo/build/tests/test_tle[1]_include.cmake")
include("/root/repo/build/tests/test_linearizability[1]_include.cmake")
include("/root/repo/build/tests/test_native_stress[1]_include.cmake")
include("/root/repo/build/tests/test_ptoset[1]_include.cmake")
include("/root/repo/build/tests/test_pq_ordering[1]_include.cmake")
