file(REMOVE_RECURSE
  "CMakeFiles/test_native_stress.dir/test_native_stress.cpp.o"
  "CMakeFiles/test_native_stress.dir/test_native_stress.cpp.o.d"
  "test_native_stress"
  "test_native_stress.pdb"
  "test_native_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_native_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
