# Empty dependencies file for test_native_stress.
# This may be replaced when dependencies are built.
