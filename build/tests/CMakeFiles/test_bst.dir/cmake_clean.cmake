file(REMOVE_RECURSE
  "CMakeFiles/test_bst.dir/test_bst.cpp.o"
  "CMakeFiles/test_bst.dir/test_bst.cpp.o.d"
  "test_bst"
  "test_bst.pdb"
  "test_bst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
