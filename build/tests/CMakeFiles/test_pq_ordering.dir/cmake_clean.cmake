file(REMOVE_RECURSE
  "CMakeFiles/test_pq_ordering.dir/test_pq_ordering.cpp.o"
  "CMakeFiles/test_pq_ordering.dir/test_pq_ordering.cpp.o.d"
  "test_pq_ordering"
  "test_pq_ordering.pdb"
  "test_pq_ordering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pq_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
