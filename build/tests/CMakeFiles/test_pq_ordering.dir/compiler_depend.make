# Empty compiler generated dependencies file for test_pq_ordering.
# This may be replaced when dependencies are built.
