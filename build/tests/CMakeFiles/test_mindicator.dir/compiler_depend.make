# Empty compiler generated dependencies file for test_mindicator.
# This may be replaced when dependencies are built.
