file(REMOVE_RECURSE
  "CMakeFiles/test_mindicator.dir/test_mindicator.cpp.o"
  "CMakeFiles/test_mindicator.dir/test_mindicator.cpp.o.d"
  "test_mindicator"
  "test_mindicator.pdb"
  "test_mindicator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mindicator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
