file(REMOVE_RECURSE
  "CMakeFiles/test_mound.dir/test_mound.cpp.o"
  "CMakeFiles/test_mound.dir/test_mound.cpp.o.d"
  "test_mound"
  "test_mound.pdb"
  "test_mound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
