# Empty compiler generated dependencies file for test_mound.
# This may be replaced when dependencies are built.
