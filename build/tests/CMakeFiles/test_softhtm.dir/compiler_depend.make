# Empty compiler generated dependencies file for test_softhtm.
# This may be replaced when dependencies are built.
