file(REMOVE_RECURSE
  "CMakeFiles/test_softhtm.dir/test_softhtm.cpp.o"
  "CMakeFiles/test_softhtm.dir/test_softhtm.cpp.o.d"
  "test_softhtm"
  "test_softhtm.pdb"
  "test_softhtm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softhtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
