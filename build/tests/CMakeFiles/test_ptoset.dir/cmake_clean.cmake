file(REMOVE_RECURSE
  "CMakeFiles/test_ptoset.dir/test_ptoset.cpp.o"
  "CMakeFiles/test_ptoset.dir/test_ptoset.cpp.o.d"
  "test_ptoset"
  "test_ptoset.pdb"
  "test_ptoset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptoset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
