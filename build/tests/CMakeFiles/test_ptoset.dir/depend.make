# Empty dependencies file for test_ptoset.
# This may be replaced when dependencies are built.
