file(REMOVE_RECURSE
  "CMakeFiles/test_kcas.dir/test_kcas.cpp.o"
  "CMakeFiles/test_kcas.dir/test_kcas.cpp.o.d"
  "test_kcas"
  "test_kcas.pdb"
  "test_kcas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
