file(REMOVE_RECURSE
  "CMakeFiles/test_list.dir/test_list.cpp.o"
  "CMakeFiles/test_list.dir/test_list.cpp.o.d"
  "test_list"
  "test_list.pdb"
  "test_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
