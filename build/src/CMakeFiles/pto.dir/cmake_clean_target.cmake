file(REMOVE_RECURSE
  "libpto.a"
)
