# Empty dependencies file for pto.
# This may be replaced when dependencies are built.
