
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchutil/runner.cpp" "src/CMakeFiles/pto.dir/benchutil/runner.cpp.o" "gcc" "src/CMakeFiles/pto.dir/benchutil/runner.cpp.o.d"
  "/root/repo/src/benchutil/series.cpp" "src/CMakeFiles/pto.dir/benchutil/series.cpp.o" "gcc" "src/CMakeFiles/pto.dir/benchutil/series.cpp.o.d"
  "/root/repo/src/htm/htm.cpp" "src/CMakeFiles/pto.dir/htm/htm.cpp.o" "gcc" "src/CMakeFiles/pto.dir/htm/htm.cpp.o.d"
  "/root/repo/src/htm/softhtm.cpp" "src/CMakeFiles/pto.dir/htm/softhtm.cpp.o" "gcc" "src/CMakeFiles/pto.dir/htm/softhtm.cpp.o.d"
  "/root/repo/src/platform/native_platform.cpp" "src/CMakeFiles/pto.dir/platform/native_platform.cpp.o" "gcc" "src/CMakeFiles/pto.dir/platform/native_platform.cpp.o.d"
  "/root/repo/src/sim/allocator.cpp" "src/CMakeFiles/pto.dir/sim/allocator.cpp.o" "gcc" "src/CMakeFiles/pto.dir/sim/allocator.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/pto.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/pto.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/htm_model.cpp" "src/CMakeFiles/pto.dir/sim/htm_model.cpp.o" "gcc" "src/CMakeFiles/pto.dir/sim/htm_model.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/pto.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/pto.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/runtime.cpp" "src/CMakeFiles/pto.dir/sim/runtime.cpp.o" "gcc" "src/CMakeFiles/pto.dir/sim/runtime.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/pto.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/pto.dir/sim/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
