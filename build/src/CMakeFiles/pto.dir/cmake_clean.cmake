file(REMOVE_RECURSE
  "CMakeFiles/pto.dir/benchutil/runner.cpp.o"
  "CMakeFiles/pto.dir/benchutil/runner.cpp.o.d"
  "CMakeFiles/pto.dir/benchutil/series.cpp.o"
  "CMakeFiles/pto.dir/benchutil/series.cpp.o.d"
  "CMakeFiles/pto.dir/htm/htm.cpp.o"
  "CMakeFiles/pto.dir/htm/htm.cpp.o.d"
  "CMakeFiles/pto.dir/htm/softhtm.cpp.o"
  "CMakeFiles/pto.dir/htm/softhtm.cpp.o.d"
  "CMakeFiles/pto.dir/platform/native_platform.cpp.o"
  "CMakeFiles/pto.dir/platform/native_platform.cpp.o.d"
  "CMakeFiles/pto.dir/sim/allocator.cpp.o"
  "CMakeFiles/pto.dir/sim/allocator.cpp.o.d"
  "CMakeFiles/pto.dir/sim/fiber.cpp.o"
  "CMakeFiles/pto.dir/sim/fiber.cpp.o.d"
  "CMakeFiles/pto.dir/sim/htm_model.cpp.o"
  "CMakeFiles/pto.dir/sim/htm_model.cpp.o.d"
  "CMakeFiles/pto.dir/sim/memory.cpp.o"
  "CMakeFiles/pto.dir/sim/memory.cpp.o.d"
  "CMakeFiles/pto.dir/sim/runtime.cpp.o"
  "CMakeFiles/pto.dir/sim/runtime.cpp.o.d"
  "CMakeFiles/pto.dir/sim/scheduler.cpp.o"
  "CMakeFiles/pto.dir/sim/scheduler.cpp.o.d"
  "libpto.a"
  "libpto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
