# Empty dependencies file for job_scheduler.
# This may be replaced when dependencies are built.
