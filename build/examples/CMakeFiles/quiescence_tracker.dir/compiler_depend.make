# Empty compiler generated dependencies file for quiescence_tracker.
# This may be replaced when dependencies are built.
