file(REMOVE_RECURSE
  "CMakeFiles/quiescence_tracker.dir/quiescence_tracker.cpp.o"
  "CMakeFiles/quiescence_tracker.dir/quiescence_tracker.cpp.o.d"
  "quiescence_tracker"
  "quiescence_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quiescence_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
