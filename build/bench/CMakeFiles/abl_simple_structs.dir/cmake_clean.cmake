file(REMOVE_RECURSE
  "CMakeFiles/abl_simple_structs.dir/abl_simple_structs.cpp.o"
  "CMakeFiles/abl_simple_structs.dir/abl_simple_structs.cpp.o.d"
  "abl_simple_structs"
  "abl_simple_structs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_simple_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
