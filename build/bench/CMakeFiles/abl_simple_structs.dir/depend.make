# Empty dependencies file for abl_simple_structs.
# This may be replaced when dependencies are built.
