# Empty compiler generated dependencies file for fig5c_bst_fence.
# This may be replaced when dependencies are built.
