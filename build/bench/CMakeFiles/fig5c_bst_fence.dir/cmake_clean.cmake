file(REMOVE_RECURSE
  "CMakeFiles/fig5c_bst_fence.dir/fig5c_bst_fence.cpp.o"
  "CMakeFiles/fig5c_bst_fence.dir/fig5c_bst_fence.cpp.o.d"
  "fig5c_bst_fence"
  "fig5c_bst_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_bst_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
