file(REMOVE_RECURSE
  "CMakeFiles/abl_ptoset.dir/abl_ptoset.cpp.o"
  "CMakeFiles/abl_ptoset.dir/abl_ptoset.cpp.o.d"
  "abl_ptoset"
  "abl_ptoset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ptoset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
