# Empty dependencies file for abl_ptoset.
# This may be replaced when dependencies are built.
