file(REMOVE_RECURSE
  "CMakeFiles/abl_primitives.dir/abl_primitives.cpp.o"
  "CMakeFiles/abl_primitives.dir/abl_primitives.cpp.o.d"
  "abl_primitives"
  "abl_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
