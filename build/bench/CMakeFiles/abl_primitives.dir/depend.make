# Empty dependencies file for abl_primitives.
# This may be replaced when dependencies are built.
