file(REMOVE_RECURSE
  "CMakeFiles/abl_skew.dir/abl_skew.cpp.o"
  "CMakeFiles/abl_skew.dir/abl_skew.cpp.o.d"
  "abl_skew"
  "abl_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
