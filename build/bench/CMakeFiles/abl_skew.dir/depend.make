# Empty dependencies file for abl_skew.
# This may be replaced when dependencies are built.
