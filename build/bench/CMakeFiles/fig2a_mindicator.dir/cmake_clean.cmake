file(REMOVE_RECURSE
  "CMakeFiles/fig2a_mindicator.dir/fig2a_mindicator.cpp.o"
  "CMakeFiles/fig2a_mindicator.dir/fig2a_mindicator.cpp.o.d"
  "fig2a_mindicator"
  "fig2a_mindicator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_mindicator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
