# Empty dependencies file for fig2a_mindicator.
# This may be replaced when dependencies are built.
