# Empty compiler generated dependencies file for abl_retry_tuning.
# This may be replaced when dependencies are built.
