file(REMOVE_RECURSE
  "CMakeFiles/abl_retry_tuning.dir/abl_retry_tuning.cpp.o"
  "CMakeFiles/abl_retry_tuning.dir/abl_retry_tuning.cpp.o.d"
  "abl_retry_tuning"
  "abl_retry_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_retry_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
