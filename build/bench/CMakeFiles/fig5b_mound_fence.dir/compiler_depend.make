# Empty compiler generated dependencies file for fig5b_mound_fence.
# This may be replaced when dependencies are built.
