file(REMOVE_RECURSE
  "CMakeFiles/fig5b_mound_fence.dir/fig5b_mound_fence.cpp.o"
  "CMakeFiles/fig5b_mound_fence.dir/fig5b_mound_fence.cpp.o.d"
  "fig5b_mound_fence"
  "fig5b_mound_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_mound_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
