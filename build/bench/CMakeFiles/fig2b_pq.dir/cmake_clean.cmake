file(REMOVE_RECURSE
  "CMakeFiles/fig2b_pq.dir/fig2b_pq.cpp.o"
  "CMakeFiles/fig2b_pq.dir/fig2b_pq.cpp.o.d"
  "fig2b_pq"
  "fig2b_pq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
