# Empty compiler generated dependencies file for fig2b_pq.
# This may be replaced when dependencies are built.
