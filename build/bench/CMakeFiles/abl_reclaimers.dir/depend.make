# Empty dependencies file for abl_reclaimers.
# This may be replaced when dependencies are built.
