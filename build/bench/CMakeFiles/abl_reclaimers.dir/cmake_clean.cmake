file(REMOVE_RECURSE
  "CMakeFiles/abl_reclaimers.dir/abl_reclaimers.cpp.o"
  "CMakeFiles/abl_reclaimers.dir/abl_reclaimers.cpp.o.d"
  "abl_reclaimers"
  "abl_reclaimers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reclaimers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
