file(REMOVE_RECURSE
  "CMakeFiles/abl_htm_boundary.dir/abl_htm_boundary.cpp.o"
  "CMakeFiles/abl_htm_boundary.dir/abl_htm_boundary.cpp.o.d"
  "abl_htm_boundary"
  "abl_htm_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_htm_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
