# Empty dependencies file for abl_htm_boundary.
# This may be replaced when dependencies are built.
