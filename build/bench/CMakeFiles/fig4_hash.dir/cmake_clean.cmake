file(REMOVE_RECURSE
  "CMakeFiles/fig4_hash.dir/fig4_hash.cpp.o"
  "CMakeFiles/fig4_hash.dir/fig4_hash.cpp.o.d"
  "fig4_hash"
  "fig4_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
