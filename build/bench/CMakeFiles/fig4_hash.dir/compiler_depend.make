# Empty compiler generated dependencies file for fig4_hash.
# This may be replaced when dependencies are built.
