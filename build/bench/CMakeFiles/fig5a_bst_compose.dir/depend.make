# Empty dependencies file for fig5a_bst_compose.
# This may be replaced when dependencies are built.
