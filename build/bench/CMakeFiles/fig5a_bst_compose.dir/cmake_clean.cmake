file(REMOVE_RECURSE
  "CMakeFiles/fig5a_bst_compose.dir/fig5a_bst_compose.cpp.o"
  "CMakeFiles/fig5a_bst_compose.dir/fig5a_bst_compose.cpp.o.d"
  "fig5a_bst_compose"
  "fig5a_bst_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_bst_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
