// Quickstart: the PTO library in five minutes.
//
// Build:  cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
//
// This example runs on the *native* platform: if your CPU has working Intel
// TSX (RTM), prefix transactions execute in hardware; otherwise the SoftHTM
// fallback is used transparently. It shows:
//   1. the prefix() combinator on its own (a multi-word atomic update),
//   2. a PTO-accelerated data structure (the Ellen BST),
//   3. reading the per-thread statistics PTO collects.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/prefix.h"
#include "ds/bst/ellen_bst.h"
#include "htm/htm.h"
#include "platform/native_platform.h"

using pto::Atom;
using pto::NativePlatform;

int main() {
  std::printf("HTM backend: %s\n",
              pto::htm::backend() == pto::htm::Backend::kRTM
                  ? "Intel RTM (hardware transactions)"
                  : "SoftHTM (software fallback)");

  // --- 1. prefix(): atomically move "money" between two accounts ----------
  Atom<NativePlatform, long> checking, savings;
  checking.init(1000);
  savings.init(0);
  pto::PrefixStats transfer_stats;
  for (int i = 0; i < 100; ++i) {
    pto::prefix<NativePlatform>(
        /*attempts=*/4,
        [&] {  // fast path: one hardware transaction, plain accesses
          long c = checking.load(std::memory_order_relaxed);
          long s = savings.load(std::memory_order_relaxed);
          checking.store(c - 10, std::memory_order_relaxed);
          savings.store(s + 10, std::memory_order_relaxed);
        },
        [&] {  // fallback: your lock-free (here: sloppy but serial) code
          checking.fetch_add(-10);
          savings.fetch_add(10);
        },
        &transfer_stats);
  }
  std::printf("transfer: checking=%ld savings=%ld  (tx commits=%llu, "
              "fallbacks=%llu)\n",
              checking.load(), savings.load(),
              static_cast<unsigned long long>(transfer_stats.commits),
              static_cast<unsigned long long>(transfer_stats.fallbacks));

  // --- 2. a PTO-accelerated nonblocking set --------------------------------
  pto::EllenBST<NativePlatform> set;
  using Mode = pto::EllenBST<NativePlatform>::Mode;

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&set, t] {
      auto ctx = set.make_ctx();  // one per thread: epoch handle + stats
      for (int i = 0; i < 10'000; ++i) {
        long k = (t * 10'000 + i) % 4096;
        // PTO1+PTO2: whole-operation transaction, then update-phase
        // transaction, then the original Ellen et al. lock-free algorithm.
        if (i % 3 == 0) {
          set.remove(ctx, k, Mode::kPto12);
        } else {
          set.insert(ctx, k, Mode::kPto12);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  auto ctx = set.make_ctx();
  std::printf("set size after 40k mixed ops: %zu (invariants: %s)\n",
              set.size_slow(), set.check_invariants() ? "ok" : "BROKEN");

  // --- 3. lookups: the fast path costs one transaction, no epoch fences ----
  int hits = 0;
  for (long k = 0; k < 4096; ++k) {
    hits += set.contains(ctx, k, Mode::kPto12);
  }
  std::printf("lookup sweep: %d present, lookup tx commits=%llu\n", hits,
              static_cast<unsigned long long>(ctx.lookup_stats.commits));
  return 0;
}
