// Example: a connection/session directory on the PTO-accelerated hash table.
//
// Scenario (the paper's §4.5 workload shape): a server tracks live session
// ids in a resizable nonblocking hash table. Lookups vastly outnumber
// updates; with PTO, lookups run as single hardware transactions that skip
// the epoch-reclamation fences, and session churn uses the speculative
// in-place update path instead of copy-on-write — the paper's 2x win.
//
// Runs on the simulator; prints the allocation counts that explain the win.
#include <cstdio>

#include "ds/hashtable/fset_hash.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

using pto::FSetHash;
using pto::SimPlatform;
using Mode = FSetHash<SimPlatform>::Mode;

namespace {

constexpr unsigned kThreads = 6;
constexpr int kSessionSpace = 16'384;
constexpr int kOpsPerThread = 5000;

pto::sim::ThreadStats run_server(FSetHash<SimPlatform>& dir, Mode mode,
                                 std::uint64_t seed) {
  pto::sim::Config cfg;
  cfg.seed = seed;
  auto res = pto::sim::run(kThreads, cfg, [&](unsigned) {
    auto ctx = dir.make_ctx();
    for (int i = 0; i < kOpsPerThread; ++i) {
      auto sid = static_cast<std::int64_t>(pto::sim::rnd() % kSessionSpace);
      auto dice = pto::sim::rnd() % 100;
      if (dice < 80) {
        dir.contains(ctx, sid, mode);  // route a packet: is session live?
      } else if (dice < 90) {
        dir.insert(ctx, sid, mode);  // session connect
      } else {
        dir.remove(ctx, sid, mode);  // session disconnect
      }
      pto::sim::op_done();
    }
  });
  return res.totals();
}

}  // namespace

int main() {
  std::printf("session directory: %u threads, 80%% lookups / 20%% churn\n\n",
              kThreads);

  for (Mode mode : {Mode::kLockfree, Mode::kPto, Mode::kPtoInplace}) {
    {
      FSetHash<SimPlatform> dir;
      {
        auto ctx = dir.make_ctx();
        for (int s = 0; s < kSessionSpace / 2; ++s) {
          dir.insert(ctx, s * 2, Mode::kLockfree);
        }
      }
      auto t = run_server(dir, mode, 42);
      const char* name = mode == Mode::kLockfree       ? "lock-free (CoW) "
                         : mode == Mode::kPto          ? "PTO             "
                                                       : "PTO + in-place  ";
      // ops_completed identical across modes; compare by allocations+fences.
      std::printf("%s  allocations=%7llu  fences=%7llu  tx commits=%7llu\n",
                  name, static_cast<unsigned long long>(t.allocs),
                  static_cast<unsigned long long>(t.fences),
                  static_cast<unsigned long long>(t.tx_commits));
    }  // the directory must be destroyed before the arena is reset
    pto::sim::reset_memory();
  }
  std::printf("\nPTO removes the lookup fences (epoch elision); the in-place"
              "\nvariant removes the copy-on-write allocations as well.\n");
  return 0;
}
