// Example: a priority job scheduler built on the PTO-accelerated Mound.
//
// Scenario (the paper's motivation for priority queues): worker threads pull
// the most urgent job while producers submit jobs with deadlines. The Mound's
// DCAS/DCSS sub-operations run as prefix transactions — the "local PTO"
// pattern from §3.1 — falling back to the software multi-word CAS under
// contention, so progress is never blocked.
//
// Runs on the deterministic simulator so the output is reproducible anywhere
// (and so you can see abort/commit statistics without TSX hardware).
#include <cstdio>
#include <vector>

#include "ds/mound/mound.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

using pto::Mound;
using pto::SimPlatform;

namespace {

constexpr unsigned kProducers = 3;
constexpr unsigned kWorkers = 5;
constexpr int kJobsPerProducer = 2000;

struct Tally {
  int executed = 0;
  std::int32_t last_deadline = -1;
  int inversions = 0;  // times a job ran after a later-deadline job
};

}  // namespace

int main() {
  Mound<SimPlatform> queue(16);
  std::vector<Tally> tallies(kWorkers);
  pto::sim::Config cfg;
  cfg.seed = 2026;

  auto res = pto::sim::run(kProducers + kWorkers, cfg, [&](unsigned tid) {
    auto ctx = queue.make_ctx();
    if (tid < kProducers) {
      // Producer: submit jobs with pseudo-random deadlines.
      for (int i = 0; i < kJobsPerProducer; ++i) {
        auto deadline = static_cast<std::int32_t>(pto::sim::rnd() % 100'000);
        queue.insert_pto(ctx, deadline);
        pto::sim::op_done();
      }
    } else {
      // Worker: drain the most urgent job; spin briefly when empty.
      Tally& t = tallies[tid - kProducers];
      int idle = 0;
      while (idle < 2000) {
        auto job = queue.extract_min_pto(ctx);
        if (!job.has_value()) {
          ++idle;
          pto::sim::cpu_pause();
          continue;
        }
        idle = 0;
        ++t.executed;
        // Deadlines per worker should be mostly nondecreasing; small
        // inversions are inherent to concurrent pops.
        if (*job < t.last_deadline) ++t.inversions;
        t.last_deadline = *job;
        pto::sim::op_done();
      }
    }
  });

  int total = 0, inversions = 0;
  for (auto& t : tallies) {
    total += t.executed;
    inversions += t.inversions;
  }
  std::printf("jobs submitted: %d, executed: %d, left in queue: %zu\n",
              kProducers * kJobsPerProducer, total, queue.size_slow());
  std::printf("per-worker deadline inversions: %d (small = near-priority "
              "order)\n", inversions);
  auto s = res.totals();
  std::printf("virtual time: %.2f ms; tx commits: %llu, aborts: %llu\n",
              static_cast<double>(res.makespan()) / 3.4e6,
              static_cast<unsigned long long>(s.tx_commits),
              static_cast<unsigned long long>(s.total_aborts()));
  bool ok = total + static_cast<int>(queue.size_slow()) ==
            kProducers * kJobsPerProducer;
  std::printf("conservation check: %s\n", ok ? "ok" : "BROKEN");
  return ok ? 0 : 1;
}
