// Example: a limit-order book built from two PTO-accelerated skiplists.
//
// Scenario: bids and asks are price-ordered sets; matching pops the best ask
// (minimum) against incoming market buys, while limit orders insert at their
// price level. This is the search-structure workload of the paper's Fig 3
// wearing production clothes: ordered traversal, point inserts/removes, and
// a hot minimum.
//
// Uses SkipQueue for the ask side (pop-min = best ask) and the skiplist set
// for the bid side (price levels). Deterministic on the simulator.
#include <cstdio>
#include <vector>

#include "ds/skiplist/skiplist.h"
#include "ds/skiplist/skipqueue.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

using pto::SimPlatform;
using pto::SkipList;
using pto::SkipQueue;

namespace {

constexpr unsigned kMakers = 3;   // post limit asks
constexpr unsigned kTakers = 3;   // lift best asks
constexpr unsigned kBidders = 2;  // maintain bid levels
constexpr int kOrders = 2500;

}  // namespace

int main() {
  SkipQueue<SimPlatform> asks;              // min = best (lowest) ask
  SkipList<SimPlatform> bid_levels;         // distinct bid price levels
  std::vector<long> taker_fills(kTakers, 0);
  std::vector<long> taker_cost(kTakers, 0);

  pto::sim::Config cfg;
  cfg.seed = 99;
  auto res = pto::sim::run(kMakers + kTakers + kBidders, cfg,
                           [&](unsigned tid) {
    if (tid < kMakers) {
      auto ctx = asks.make_ctx();
      for (int i = 0; i < kOrders; ++i) {
        // Post an ask between 100.00 and 110.00 (prices in cents).
        auto px = static_cast<std::int32_t>(10'000 + pto::sim::rnd() % 1000);
        asks.push_pto(ctx, px);
        pto::sim::op_done();
      }
    } else if (tid < kMakers + kTakers) {
      auto ctx = asks.make_ctx();
      unsigned me = tid - kMakers;
      int misses = 0;
      while (misses < 2000) {
        auto best = asks.pop_min_pto(ctx);
        if (!best.has_value()) {
          ++misses;
          pto::sim::cpu_pause();
          continue;
        }
        misses = 0;
        ++taker_fills[me];
        taker_cost[me] += *best;
        pto::sim::op_done();
      }
    } else {
      auto ctx = bid_levels.make_ctx();
      for (int i = 0; i < kOrders; ++i) {
        auto px = static_cast<std::int64_t>(9'000 + pto::sim::rnd() % 1000);
        if (pto::sim::rnd() % 3 == 0) {
          bid_levels.remove_pto(ctx, px);
        } else {
          bid_levels.insert_pto(ctx, px);
        }
        pto::sim::op_done();
      }
    }
  });

  long fills = 0, notional = 0;
  for (unsigned t = 0; t < kTakers; ++t) {
    fills += taker_fills[t];
    notional += taker_cost[t];
  }
  std::size_t resting = asks.size_slow();
  std::printf("asks posted: %d, filled: %ld, resting: %zu\n",
              kMakers * kOrders, fills, resting);
  std::printf("avg fill price: %.2f (asks uniform in [100.00,110.00])\n",
              fills ? static_cast<double>(notional) / fills / 100.0 : 0.0);
  std::printf("bid levels resting: %zu (book consistent: %s)\n",
              bid_levels.size_slow(),
              bid_levels.check_invariants() ? "yes" : "NO");
  auto s = res.totals();
  std::printf("tx commits: %llu, aborts: %llu, virtual time: %.2f ms\n",
              static_cast<unsigned long long>(s.tx_commits),
              static_cast<unsigned long long>(s.total_aborts()),
              static_cast<double>(res.makespan()) / 3.4e6);
  bool conserved = fills + static_cast<long>(resting) ==
                   static_cast<long>(kMakers) * kOrders;
  std::printf("order conservation: %s\n", conserved ? "ok" : "BROKEN");
  return conserved ? 0 : 1;
}
