// Example: a quiescence / watermark tracker built on the Mindicator — the
// data structure's original purpose (Liu, Luchangco & Spear, ICDCS 2013).
//
// Scenario: worker threads process a stream of timestamped batches. A
// background reclaimer may only recycle resources older than the *minimum
// in-flight timestamp*. Each worker announces its batch timestamp with
// arrive() and withdraws with depart(); query() gives the safe watermark in
// one load. PTO makes arrive/depart a single short hardware transaction.
#include <cstdio>
#include <vector>

#include "ds/mindicator/mindicator.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

using pto::Mindicator;
using pto::SimPlatform;

namespace {

constexpr unsigned kWorkers = 8;
constexpr int kBatches = 3000;

}  // namespace

int main() {
  Mindicator<SimPlatform> inflight(64);
  // Global virtual "clock" of dispatched batches.
  pto::Atom<SimPlatform, std::int32_t> next_stamp;
  next_stamp.init(0);
  // Highest watermark the reclaimer observed, and violations (watermark
  // exceeding a still-in-flight stamp would be a use-after-free bug in a
  // real system).
  std::vector<std::int32_t> watermark_log;
  long violations = 0;

  pto::sim::Config cfg;
  cfg.seed = 7;
  pto::sim::run(kWorkers + 1, cfg, [&](unsigned tid) {
    if (tid == kWorkers) {
      // Reclaimer: poll the watermark. Individual samples may transiently
      // regress (quiescent consistency); the *running minimum over a scan
      // interval* is the safe reclamation bound, and that bound must only
      // move forward between reclamation rounds.
      std::int32_t last = -1;
      for (int i = 0; i < kBatches; ++i) {
        std::int32_t wm = inflight.query();
        if (wm != Mindicator<SimPlatform>::kEmpty) {
          if (wm < last) ++violations;  // counted, expected, handled below
          last = wm > last ? wm : last;
          watermark_log.push_back(wm);
        }
        pto::sim::cpu_pause();
      }
      return;
    }
    for (int i = 0; i < kBatches; ++i) {
      std::int32_t stamp = next_stamp.fetch_add(1);
      inflight.arrive_pto(tid, stamp);  // announce: batch `stamp` in flight
      // ... process the batch (simulated work) ...
      for (int w = 0; w < 5; ++w) pto::sim::cpu_pause();
      inflight.depart_pto(tid);  // done: stop holding the watermark back
      pto::sim::op_done();
    }
  });

  std::printf("dispatched %d batches across %u workers\n",
              kWorkers * kBatches, kWorkers);
  std::printf("reclaimer sampled the watermark %zu times\n",
              watermark_log.size());
  std::printf("final state: %s (query=%s)\n",
              inflight.query() == Mindicator<SimPlatform>::kEmpty
                  ? "quiescent"
                  : "STUCK",
              inflight.query() == Mindicator<SimPlatform>::kEmpty
                  ? "empty"
                  : "value");
  std::printf("transient watermark regressions (expected under quiescent "
              "consistency;\na reclaimer uses the interval minimum): %ld\n",
              violations);
  return inflight.query() == Mindicator<SimPlatform>::kEmpty ? 0 : 1;
}
