// Structured bench emission (telemetry/emit.cpp): CSV header discipline,
// RFC 4180 field escaping for hostile series names, and json/csv round-trip
// of the per-cause abort buckets.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "htm/txcode.h"
#include "json_util.h"
#include "telemetry/emit.h"

namespace {

namespace telemetry = pto::telemetry;
using telemetry::BenchPoint;
using telemetry::StatsFormat;

/// RAII: route emission into a stringstream, restore defaults afterwards.
struct Capture {
  std::ostringstream os;
  explicit Capture(StatsFormat f) {
    telemetry::set_stats_stream(&os);
    telemetry::set_stats_format(f);
  }
  ~Capture() {
    telemetry::set_stats_format(StatsFormat::kOff);
    telemetry::set_stats_stream(nullptr);
  }
};

BenchPoint sample_point() {
  BenchPoint p;
  p.bench = "fig3a";
  p.series = "Tree(PTO)";
  p.threads = 4;
  p.trials = 5;
  p.ops_per_ms = 123.5;
  p.makespan = 1000;
  p.cpu_cycles = 4000;
  p.sim.ops_completed = 2048;
  p.sim.tx_started = 900;
  p.sim.tx_commits = 800;
  for (unsigned c = 0; c < pto::kTxCodeCount; ++c) p.sim.tx_aborts[c] = 0;
  p.sim.tx_aborts[pto::TX_ABORT_CONFLICT] = 61;
  p.sim.tx_aborts[pto::TX_ABORT_CAPACITY] = 7;
  p.sim.tx_aborts[pto::TX_ABORT_EXPLICIT] = 3;
  return p;
}

/// sample_point plus the v2 observability payload (percentiles, per-cause
/// prefix buckets, perf counters).
BenchPoint obs_point() {
  BenchPoint p = sample_point();
  p.prefix.attempts = 500;
  p.prefix.commits = 450;
  p.prefix.fallbacks = 50;
  p.prefix.aborts[pto::TX_ABORT_CONFLICT] = 40;
  p.prefix.aborts[pto::TX_ABORT_SPURIOUS] = 9;
  p.prefix.aborts[pto::TX_ABORT_OTHER] = 1;
  p.lat = {2048, 400, 700, 1500, 6000, 21000};
  p.lat_fast = {2000, 390, 650, 1200, 5000, 18000};
  p.lat_fallback = {48, 2500, 5000, 9000, 15000, 21000};
  p.lat_sites.push_back({"set.insert", p.lat_fast, p.lat_fallback});
  p.perf.valid = true;
  p.perf.cycles = 1000000;
  p.perf.instructions = 2500000;
  p.perf.llc_misses = 3200;
  return p;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

/// Quote-aware CSV row splitter (RFC 4180): commas inside quoted fields do
/// not split; doubled quotes inside quoted fields unescape to one quote.
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

int field_index(const std::vector<std::string>& header,
                const std::string& name) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

TEST(Emit, CsvHeaderEmittedOnce) {
  Capture cap(StatsFormat::kCsv);
  BenchPoint p = sample_point();
  telemetry::emit_bench_point(p);
  p.threads = 8;
  telemetry::emit_bench_point(p);
  telemetry::emit_bench_point(p);
  auto lines = split_lines(cap.os.str());
  ASSERT_EQ(lines.size(), 4u);  // 1 header + 3 data rows
  EXPECT_EQ(lines[0].rfind("bench,series,", 0), 0u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].rfind("bench,", 0), 0u) << "repeated header at " << i;
  }
  // Every data row splits into exactly as many fields as the header.
  auto header = split_csv(lines[0]);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(split_csv(lines[i]).size(), header.size()) << "row " << i;
  }
}

TEST(Emit, CsvHeaderResetsWithFormat) {
  std::string first, second;
  {
    Capture cap(StatsFormat::kCsv);
    telemetry::emit_bench_point(sample_point());
    first = cap.os.str();
  }
  {
    Capture cap(StatsFormat::kCsv);
    telemetry::emit_bench_point(sample_point());
    second = cap.os.str();
  }
  // A fresh format selection re-emits the header (new file, new header).
  EXPECT_EQ(first, second);
  EXPECT_EQ(split_lines(second).size(), 2u);
}

TEST(Emit, CsvEscapesHostileSeriesNames) {
  Capture cap(StatsFormat::kCsv);
  BenchPoint p = sample_point();
  p.bench = "fig5,b";
  p.series = "Skip(PTO, \"fast\")";
  telemetry::emit_bench_point(p);
  auto lines = split_lines(cap.os.str());
  ASSERT_EQ(lines.size(), 2u);
  auto header = split_csv(lines[0]);
  auto row = split_csv(lines[1]);
  ASSERT_EQ(row.size(), header.size());
  // The embedded comma and quotes survive the round-trip un-mangled and
  // do not shift later columns.
  EXPECT_EQ(row[static_cast<std::size_t>(field_index(header, "bench"))],
            "fig5,b");
  EXPECT_EQ(row[static_cast<std::size_t>(field_index(header, "series"))],
            "Skip(PTO, \"fast\")");
  EXPECT_EQ(row[static_cast<std::size_t>(field_index(header, "threads"))],
            "4");
}

TEST(Emit, JsonCsvAbortBucketsRoundTrip) {
  BenchPoint p = sample_point();

  std::string json_text;
  {
    Capture cap(StatsFormat::kJson);
    telemetry::emit_bench_point(p);
    json_text = cap.os.str();
  }
  testjson::Value v;
  ASSERT_TRUE(testjson::parse(json_text, &v)) << json_text;
  const testjson::Value* aborts = v.find("aborts");
  ASSERT_NE(aborts, nullptr);

  std::string csv_text;
  {
    Capture cap(StatsFormat::kCsv);
    telemetry::emit_bench_point(p);
    csv_text = cap.os.str();
  }
  auto lines = split_lines(csv_text);
  ASSERT_EQ(lines.size(), 2u);
  auto header = split_csv(lines[0]);
  auto row = split_csv(lines[1]);
  ASSERT_EQ(row.size(), header.size());

  // Each per-cause bucket appears in both formats with the value we put in.
  std::uint64_t json_total = 0;
  for (unsigned c = 0; c < pto::kTxCodeCount; ++c) {
    const char* name = pto::tx_code_name(c);
    const testjson::Value* jv = aborts->find(name);
    ASSERT_NE(jv, nullptr) << name;
    ASSERT_TRUE(jv->is_num());
    const auto want = p.sim.tx_aborts[c];
    EXPECT_EQ(static_cast<std::uint64_t>(jv->num()), want) << name;
    const int col = field_index(header, std::string("aborts_") + name);
    ASSERT_GE(col, 0) << name;
    EXPECT_EQ(row[static_cast<std::size_t>(col)], std::to_string(want))
        << name;
    json_total += static_cast<std::uint64_t>(jv->num());
  }
  const testjson::Value* total = v.find("abort_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(total->num()), json_total);
  EXPECT_EQ(json_total, 71u);

  // Provenance fields are present and non-empty in both formats.
  for (const char* key : {"git_sha", "build_type", "fiber_backend"}) {
    const testjson::Value* jv = v.find(key);
    ASSERT_NE(jv, nullptr) << key;
    EXPECT_TRUE(jv->is_str()) << key;
    const int col = field_index(header, key);
    ASSERT_GE(col, 0) << key;
    EXPECT_FALSE(row[static_cast<std::size_t>(col)].empty()) << key;
  }
}

TEST(Emit, SchemaVersionPresentInBothFormats) {
  {
    Capture cap(StatsFormat::kJson);
    telemetry::emit_bench_point(sample_point());
    testjson::Value v;
    ASSERT_TRUE(testjson::parse(cap.os.str(), &v));
    const testjson::Value* sv = v.find("schema_version");
    ASSERT_NE(sv, nullptr);
    ASSERT_TRUE(sv->is_num());
    EXPECT_EQ(static_cast<unsigned>(sv->num()), telemetry::kStatsSchemaVersion);
    EXPECT_EQ(static_cast<unsigned>(sv->num()), 2u);
  }
  {
    Capture cap(StatsFormat::kCsv);
    telemetry::emit_bench_point(sample_point());
    auto lines = split_lines(cap.os.str());
    ASSERT_EQ(lines.size(), 2u);
    auto header = split_csv(lines[0]);
    auto row = split_csv(lines[1]);
    const int col = field_index(header, "schema_version");
    ASSERT_GE(col, 0);
    EXPECT_EQ(row[static_cast<std::size_t>(col)], "2");
  }
}

TEST(Emit, LatencyPercentilesRoundTrip) {
  const BenchPoint p = obs_point();

  std::string json_text;
  {
    Capture cap(StatsFormat::kJson);
    telemetry::emit_bench_point(p);
    json_text = cap.os.str();
  }
  testjson::Value v;
  ASSERT_TRUE(testjson::parse(json_text, &v)) << json_text;
  const testjson::Value* lat = v.find("latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(lat->find("samples")->num()), 2048u);
  EXPECT_EQ(static_cast<std::uint64_t>(lat->find("p50_ns")->num()), 400u);
  EXPECT_EQ(static_cast<std::uint64_t>(lat->find("p999_ns")->num()), 6000u);
  const testjson::Value* fast = lat->find("fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(fast->find("p99_ns")->num()), 1200u);
  const testjson::Value* fb = lat->find("fallback");
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(fb->find("max_ns")->num()), 21000u);

  std::string csv_text;
  {
    Capture cap(StatsFormat::kCsv);
    telemetry::emit_bench_point(p);
    csv_text = cap.os.str();
  }
  auto lines = split_lines(csv_text);
  ASSERT_EQ(lines.size(), 2u);
  auto header = split_csv(lines[0]);
  auto row = split_csv(lines[1]);
  ASSERT_EQ(row.size(), header.size());
  struct {
    const char* col;
    std::uint64_t want;
  } cells[] = {
      {"lat_samples", 2048},         {"lat_p50_ns", 400},
      {"lat_p90_ns", 700},           {"lat_p99_ns", 1500},
      {"lat_p999_ns", 6000},         {"lat_max_ns", 21000},
      {"lat_fast_p99_ns", 1200},     {"lat_fallback_p50_ns", 2500},
      {"lat_fallback_max_ns", 21000},
  };
  for (const auto& c : cells) {
    const int col = field_index(header, c.col);
    ASSERT_GE(col, 0) << c.col;
    EXPECT_EQ(row[static_cast<std::size_t>(col)], std::to_string(c.want))
        << c.col;
  }
}

TEST(Emit, PrefixAbortBucketsRoundTrip) {
  const BenchPoint p = obs_point();
  Capture cap(StatsFormat::kJson);
  telemetry::emit_bench_point(p);
  testjson::Value v;
  ASSERT_TRUE(testjson::parse(cap.os.str(), &v));
  const testjson::Value* pa = v.find("prefix_aborts");
  ASSERT_NE(pa, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(pa->find("conflict")->num()), 40u);
  EXPECT_EQ(static_cast<std::uint64_t>(pa->find("spurious")->num()), 9u);
  EXPECT_EQ(static_cast<std::uint64_t>(pa->find("other")->num()), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(pa->find("capacity")->num()), 0u);
  EXPECT_EQ(pa->find("started"), nullptr)
      << "started is not an abort cause and must not emit a bucket";
}

TEST(Emit, PerfFieldsOmittedWhenInvalid) {
  // JSON: no "perf" object at all when counters were unavailable.
  {
    Capture cap(StatsFormat::kJson);
    telemetry::emit_bench_point(sample_point());
    testjson::Value v;
    ASSERT_TRUE(testjson::parse(cap.os.str(), &v));
    EXPECT_EQ(v.find("perf"), nullptr);
  }
  // JSON: present (core counters, no tsx) when valid.
  {
    Capture cap(StatsFormat::kJson);
    telemetry::emit_bench_point(obs_point());
    testjson::Value v;
    ASSERT_TRUE(testjson::parse(cap.os.str(), &v));
    const testjson::Value* perf = v.find("perf");
    ASSERT_NE(perf, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(perf->find("cycles")->num()),
              1000000u);
    EXPECT_EQ(perf->find("tx_start"), nullptr)
        << "tsx fields must be absent when the PMU lacks them";
  }
  // CSV: cells stay EMPTY (not zero) when invalid, and alignment holds.
  {
    Capture cap(StatsFormat::kCsv);
    telemetry::emit_bench_point(sample_point());
    auto lines = split_lines(cap.os.str());
    auto header = split_csv(lines[0]);
    auto row = split_csv(lines[1]);
    ASSERT_EQ(row.size(), header.size());
    for (const char* name : {"perf_cycles", "perf_llc_misses",
                             "perf_tx_conflict"}) {
      const int col = field_index(header, name);
      ASSERT_GE(col, 0) << name;
      EXPECT_TRUE(row[static_cast<std::size_t>(col)].empty()) << name;
    }
  }
}

TEST(Emit, HostileNamesDoNotShiftV2Columns) {
  Capture cap(StatsFormat::kCsv);
  BenchPoint p = obs_point();
  p.bench = "native,set\n2";
  p.series = "Skip(\"PTO\", v2)";
  telemetry::emit_bench_point(p);
  const std::string text = cap.os.str();
  // The embedded newline is quoted, so the logical row spans two physical
  // lines; split on the header boundary instead.
  const auto nl = text.find('\n');
  ASSERT_NE(nl, std::string::npos);
  auto header = split_csv(text.substr(0, nl));
  std::string row_text = text.substr(nl + 1);
  if (!row_text.empty() && row_text.back() == '\n') row_text.pop_back();
  auto row = split_csv(row_text);
  ASSERT_EQ(row.size(), header.size());
  EXPECT_EQ(row[static_cast<std::size_t>(field_index(header, "bench"))],
            "native,set\n2");
  const int col = field_index(header, "lat_p50_ns");
  ASSERT_GE(col, 0);
  EXPECT_EQ(row[static_cast<std::size_t>(col)], "400");
}

TEST(Emit, ProvenanceTimestampsRoundTrip) {
  BenchPoint p = sample_point();
  p.ts_start = "2026-08-07T12:00:00.000Z";
  p.ts_end = "2026-08-07T12:00:01.500Z";
  p.hostname = "bench-host-1";
  p.intervals = 17;

  {
    Capture cap(StatsFormat::kJson);
    telemetry::emit_bench_point(p);
    testjson::Value v;
    ASSERT_TRUE(testjson::parse(cap.os.str(), &v));
    EXPECT_EQ(v.find("ts_start")->str(), "2026-08-07T12:00:00.000Z");
    EXPECT_EQ(v.find("ts_end")->str(), "2026-08-07T12:00:01.500Z");
    EXPECT_EQ(v.find("hostname")->str(), "bench-host-1");
    EXPECT_EQ(static_cast<std::uint64_t>(v.find("intervals")->num()), 17u);
    // The additions are backward-compatible: schema_version stays 2.
    EXPECT_EQ(static_cast<unsigned>(v.find("schema_version")->num()), 2u);
  }
  {
    Capture cap(StatsFormat::kCsv);
    telemetry::emit_bench_point(p);
    auto lines = split_lines(cap.os.str());
    ASSERT_EQ(lines.size(), 2u);
    auto header = split_csv(lines[0]);
    auto row = split_csv(lines[1]);
    ASSERT_EQ(row.size(), header.size());
    struct {
      const char* col;
      const char* want;
    } cells[] = {
        {"ts_start", "2026-08-07T12:00:00.000Z"},
        {"ts_end", "2026-08-07T12:00:01.500Z"},
        {"hostname", "bench-host-1"},
        {"intervals", "17"},
    };
    for (const auto& c : cells) {
      const int col = field_index(header, c.col);
      ASSERT_GE(col, 0) << c.col;
      EXPECT_EQ(row[static_cast<std::size_t>(col)], c.want) << c.col;
    }
  }
}

TEST(Emit, ProvenanceDefaultsFilledAtEmitTime) {
  // A point the runner never stamped still emits usable provenance: both
  // timestamps default to "now" and hostname to the machine name.
  Capture cap(StatsFormat::kJson);
  telemetry::emit_bench_point(sample_point());
  testjson::Value v;
  ASSERT_TRUE(testjson::parse(cap.os.str(), &v));
  const std::string ts = v.find("ts_start")->str();
  EXPECT_EQ(ts.size(), 24u) << ts;  // 2026-08-07T12:00:00.000Z
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
  EXPECT_FALSE(v.find("ts_end")->str().empty());
  EXPECT_FALSE(v.find("hostname")->str().empty());
  EXPECT_EQ(static_cast<std::uint64_t>(v.find("intervals")->num()), 0u);
}

}  // namespace
