// Property-based differential tests: every src/ds structure against an STL
// oracle, swept across explored schedules (rr / pct / rand) with HTM fault
// injection. Two tiers:
//
//   1. Exact differential — a single simulated thread runs a seeded random
//      op sequence and every result must equal the oracle's
//      (std::set / std::deque / std::priority_queue). Fault injection makes
//      the PTO fast paths abort and re-converge through their fallbacks;
//      the results must not change.
//   2. Concurrent conservation — threads run a partitioned workload under
//      adversarial schedules; afterwards global invariants must hold
//      (all-present/all-absent for sets, multiset + per-producer FIFO
//      conservation for the queue, multiset + sorted drain for the PQs,
//      exact min for the mindicator).
//
// Every failure prints the seed and the one-line replay token; the op log
// of the failing case is dumped for tier 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ds/bst/ellen_bst.h"
#include "ds/hashtable/fset_hash.h"
#include "ds/list/harris_list.h"
#include "ds/mindicator/mindicator.h"
#include "ds/mound/mound.h"
#include "ds/ptoset/pto_array_set.h"
#include "ds/queue/ms_queue.h"
#include "ds/skiplist/skiplist.h"
#include "ds/skiplist/skipqueue.h"
#include "ds/tle/tle.h"
#include "explore/explore.h"
#include "explore_util.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "sim_util.h"

namespace {

using pto::SimPlatform;
namespace sim = pto::sim;
namespace xp = pto::explore;
namespace tu = pto::testutil;

/// The schedule sweep every differential case runs under: the default rr
/// schedule plus pct/rand seeds with mild fault injection.
std::vector<xp::Options> full_sweep(std::uint64_t base_seed) {
  std::vector<xp::Options> all;
  xp::Options rr;
  rr.policy = xp::Policy::kRR;
  all.push_back(rr);
  auto adv = tu::sweep_policies(base_seed, tu::explore_seeds(), 0.02);
  all.insert(all.end(), adv.begin(), adv.end());
  return all;
}

// ---------------------------------------------------------------------------
// Tier 1: exact single-thread differential vs STL oracles
// ---------------------------------------------------------------------------

struct OpLogEntry {
  char kind;  // 'c'ontains / 'i'nsert / 'r'emove / 'e'nq / 'd'eq / 'x'tract
  std::int64_t key;
  std::int64_t got, want;
};

std::string dump_log(const std::vector<OpLogEntry>& log) {
  std::ostringstream os;
  os << "op log (last " << log.size() << "):";
  for (const auto& e : log) {
    os << "\n  " << e.kind << "(" << e.key << ") got=" << e.got
       << " want=" << e.want;
  }
  return os.str();
}

/// Run `ops` random set ops single-threaded under schedule options `x`,
/// checking each result against std::set. Returns true on success; on
/// mismatch `log` holds the trailing op window ending at the bad op.
template <class DoOp>
bool set_differential_x(int ops, int range, std::uint64_t seed,
                        const xp::Options& x, DoOp&& do_op,
                        std::vector<OpLogEntry>& log) {
  std::set<std::int64_t> oracle;
  bool ok = true;
  sim::Config cfg;
  cfg.seed = seed;
  cfg.explore = x;
  auto res = sim::run(1, cfg, [&](unsigned) {
    for (int i = 0; i < ops && ok; ++i) {
      auto k = static_cast<std::int64_t>(sim::rnd() % range);
      auto c = static_cast<unsigned>(sim::rnd() % 100);
      char kind = c < 30 ? 'c' : c < 65 ? 'i' : 'r';
      bool got = do_op(kind, k);
      bool want = kind == 'c'   ? oracle.count(k) == 1
                  : kind == 'i' ? oracle.insert(k).second
                                : oracle.erase(k) == 1;
      log.push_back({kind, k, got, want});
      if (log.size() > 16) log.erase(log.begin());
      if (got != want) ok = false;
    }
  });
  if (res.uaf_count != 0) ok = false;
  if (ok) log.clear();
  return ok;
}

/// Sweep one set structure (fresh instance per schedule) through the full
/// policy sweep.
template <class MakeDoOp>
void sweep_set_differential(const char* what, MakeDoOp&& make) {
  const std::uint64_t seed = tu::test_seed(101);
  for (const xp::Options& x : full_sweep(seed)) {
    PTO_TRACE_EXPLORE(x);
    std::vector<OpLogEntry> log;
    auto do_op = make();  // fresh structure + ctx per schedule
    bool ok = set_differential_x(400, 48, seed, x, *do_op, log);
    EXPECT_TRUE(ok) << tu::note_failure(
        x, std::string(what) + " diverged from std::set (seed " +
               std::to_string(seed) + ")\n" + dump_log(log));
    if (!ok) return;
  }
}

// The make() helpers return a unique_ptr to a callable owning its structure
// so the fixture outlives the sim::run that uses it.

TEST(DiffSet, SkiplistLF) {
  sweep_set_differential("skiplist(lf)", [] {
    struct F {
      pto::SkipList<SimPlatform> s;
      pto::SkipList<SimPlatform>::ThreadCtx ctx = s.make_ctx();
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'   ? s.contains(ctx, k)
               : kind == 'i' ? s.insert_lf(ctx, k)
                             : s.remove_lf(ctx, k);
      }
    };
    return std::make_unique<F>();
  });
}

TEST(DiffSet, SkiplistPTO) {
  sweep_set_differential("skiplist(pto)", [] {
    struct F {
      pto::SkipList<SimPlatform> s;
      pto::SkipList<SimPlatform>::ThreadCtx ctx = s.make_ctx();
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'   ? s.contains(ctx, k)
               : kind == 'i' ? s.insert_pto(ctx, k)
                             : s.remove_pto(ctx, k);
      }
    };
    return std::make_unique<F>();
  });
}

TEST(DiffSet, HarrisListLF) {
  sweep_set_differential("harris_list(lf)", [] {
    struct F {
      pto::HarrisList<SimPlatform> s;
      pto::HarrisList<SimPlatform>::ThreadCtx ctx = s.make_ctx();
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'   ? s.contains_lf(ctx, k)
               : kind == 'i' ? s.insert_lf(ctx, k)
                             : s.remove_lf(ctx, k);
      }
    };
    return std::make_unique<F>();
  });
}

TEST(DiffSet, HarrisListPTO) {
  sweep_set_differential("harris_list(pto)", [] {
    struct F {
      pto::HarrisList<SimPlatform> s;
      pto::HarrisList<SimPlatform>::ThreadCtx ctx = s.make_ctx();
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'   ? s.contains_pto(ctx, k)
               : kind == 'i' ? s.insert_pto(ctx, k)
                             : s.remove_pto(ctx, k);
      }
    };
    return std::make_unique<F>();
  });
}

class DiffBst : public ::testing::TestWithParam<int> {};

TEST_P(DiffBst, MatchesStdSet) {
  auto mode = static_cast<pto::EllenBST<SimPlatform>::Mode>(GetParam());
  sweep_set_differential("ellen_bst", [mode] {
    struct F {
      pto::EllenBST<SimPlatform> s;
      pto::EllenBST<SimPlatform>::ThreadCtx ctx = s.make_ctx();
      pto::EllenBST<SimPlatform>::Mode mode;
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'   ? s.contains(ctx, k, mode)
               : kind == 'i' ? s.insert(ctx, k, mode)
                             : s.remove(ctx, k, mode);
      }
    };
    auto f = std::make_unique<F>();
    f->mode = mode;
    return f;
  });
}

std::string bst_mode_name(const ::testing::TestParamInfo<int>& info) {
  const char* n[] = {"lf", "pto1", "pto2", "pto12"};
  return n[info.param];
}

INSTANTIATE_TEST_SUITE_P(Modes, DiffBst, ::testing::Values(0, 1, 2, 3),
                         bst_mode_name);

class DiffHash : public ::testing::TestWithParam<int> {};

TEST_P(DiffHash, MatchesStdSet) {
  auto mode = static_cast<pto::FSetHash<SimPlatform>::Mode>(GetParam());
  sweep_set_differential("fset_hash", [mode] {
    struct F {
      pto::FSetHash<SimPlatform> s;
      pto::FSetHash<SimPlatform>::ThreadCtx ctx = s.make_ctx();
      pto::FSetHash<SimPlatform>::Mode mode;
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'   ? s.contains(ctx, k, mode)
               : kind == 'i' ? s.insert(ctx, k, mode)
                             : s.remove(ctx, k, mode);
      }
    };
    auto f = std::make_unique<F>();
    f->mode = mode;
    return f;
  });
}

std::string hash_mode_name(const ::testing::TestParamInfo<int>& info) {
  const char* n[] = {"lf", "pto", "inplace"};
  return n[info.param];
}

INSTANTIATE_TEST_SUITE_P(Modes, DiffHash, ::testing::Values(0, 1, 2),
                         hash_mode_name);

TEST(DiffSet, PTOArraySet) {
  sweep_set_differential("pto_array_set", [] {
    struct F {
      pto::PTOArraySet<SimPlatform, 64> s;
      pto::PTOArraySet<SimPlatform, 64>::ThreadCtx ctx = s.make_ctx();
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'   ? s.contains(ctx, k)
               : kind == 'i' ? s.insert(ctx, k)
                             : s.remove(ctx, k);
      }
    };
    return std::make_unique<F>();
  });
}

TEST(DiffSet, TleHashSet) {
  sweep_set_differential("tle(seq_hash_set)", [] {
    struct F {
      pto::TLE<SimPlatform, pto::SeqHashSet<SimPlatform>> t{256};
      bool operator()(char kind, std::int64_t k) {
        return kind == 'c'
                   ? t.execute([&](auto& s) { return s.contains(k); })
               : kind == 'i' ? t.execute([&](auto& s) { return s.insert(k); })
                             : t.execute([&](auto& s) { return s.remove(k); });
      }
    };
    return std::make_unique<F>();
  });
}

/// FIFO queue vs std::deque, single thread, full sweep.
TEST(DiffQueue, MSQueueMatchesDeque) {
  const std::uint64_t seed = tu::test_seed(103);
  for (const xp::Options& x : full_sweep(seed)) {
    for (bool pto_mode : {false, true}) {
      PTO_TRACE_EXPLORE(x);
      SCOPED_TRACE(pto_mode ? "pto" : "lf");
      pto::MSQueue<SimPlatform> q;
      auto ctx = q.make_ctx();
      std::deque<std::int64_t> oracle;
      std::vector<OpLogEntry> log;
      bool ok = true;
      sim::Config cfg;
      cfg.seed = seed;
      cfg.explore = x;
      sim::run(1, cfg, [&](unsigned) {
        for (int i = 0; i < 400 && ok; ++i) {
          auto v = static_cast<std::int64_t>(sim::rnd() % 1000);
          if (sim::rnd() % 2 == 0) {
            if (pto_mode) {
              q.enqueue_pto(ctx, v);
            } else {
              q.enqueue_lf(ctx, v);
            }
            oracle.push_back(v);
            log.push_back({'e', v, v, v});
          } else {
            auto got = pto_mode ? q.dequeue_pto(ctx) : q.dequeue_lf(ctx);
            std::optional<std::int64_t> want;
            if (!oracle.empty()) {
              want = oracle.front();
              oracle.pop_front();
            }
            log.push_back({'d', 0, got.value_or(-1), want.value_or(-1)});
            if (got != want) ok = false;
          }
          if (log.size() > 16) log.erase(log.begin());
        }
      });
      ASSERT_TRUE(ok) << tu::note_failure(
          x, std::string("ms_queue(") + (pto_mode ? "pto" : "lf") +
                 ") diverged from std::deque\n" + dump_log(log));
    }
  }
}

/// Min-PQs vs std::priority_queue (min-heap), single thread, full sweep.
template <class Push, class Pop>
void pq_differential(const char* what, const xp::Options& x,
                     std::uint64_t seed, Push&& push, Pop&& pop) {
  std::priority_queue<std::int32_t, std::vector<std::int32_t>,
                      std::greater<>> oracle;
  std::vector<OpLogEntry> log;
  bool ok = true;
  sim::Config cfg;
  cfg.seed = seed;
  cfg.explore = x;
  sim::run(1, cfg, [&](unsigned) {
    for (int i = 0; i < 300 && ok; ++i) {
      auto v = static_cast<std::int32_t>(sim::rnd() % 1000);
      if (sim::rnd() % 2 == 0) {
        push(v);
        oracle.push(v);
        log.push_back({'i', v, v, v});
      } else {
        std::optional<std::int32_t> got = pop();
        std::optional<std::int32_t> want;
        if (!oracle.empty()) {
          want = oracle.top();
          oracle.pop();
        }
        log.push_back({'x', 0, got.value_or(-1), want.value_or(-1)});
        if (got != want) ok = false;
      }
      if (log.size() > 16) log.erase(log.begin());
    }
  });
  ASSERT_TRUE(ok) << tu::note_failure(
      x, std::string(what) + " diverged from std::priority_queue\n" +
             dump_log(log));
}

TEST(DiffPQ, MoundMatchesPriorityQueue) {
  const std::uint64_t seed = tu::test_seed(107);
  for (const xp::Options& x : full_sweep(seed)) {
    for (bool pto_mode : {false, true}) {
      PTO_TRACE_EXPLORE(x);
      SCOPED_TRACE(pto_mode ? "pto" : "lf");
      pto::Mound<SimPlatform> m(10);
      auto ctx = m.make_ctx();
      pq_differential(
          "mound", x, seed,
          [&](std::int32_t v) {
            pto_mode ? m.insert_pto(ctx, v) : m.insert_lf(ctx, v);
          },
          [&] {
            return pto_mode ? m.extract_min_pto(ctx) : m.extract_min_lf(ctx);
          });
    }
  }
}

TEST(DiffPQ, SkipQueueMatchesPriorityQueue) {
  const std::uint64_t seed = tu::test_seed(109);
  for (const xp::Options& x : full_sweep(seed)) {
    for (bool pto_mode : {false, true}) {
      PTO_TRACE_EXPLORE(x);
      SCOPED_TRACE(pto_mode ? "pto" : "lf");
      pto::SkipQueue<SimPlatform> q;
      auto ctx = q.make_ctx();
      pq_differential(
          "skipqueue", x, seed,
          [&](std::int32_t v) {
            pto_mode ? q.push_pto(ctx, v) : q.push_lf(ctx, v);
          },
          [&] { return pto_mode ? q.pop_min_pto(ctx) : q.pop_min_lf(ctx); });
    }
  }
}

// ---------------------------------------------------------------------------
// Tier 2: concurrent conservation under adversarial schedules
// ---------------------------------------------------------------------------

/// Sets: each thread owns a disjoint key range; after a concurrent insert
/// phase every key must be present, after a concurrent remove phase none.
template <class MakeOps>
void concurrent_set_conservation(const char* what, MakeOps&& make) {
  constexpr unsigned kThreads = 4;
  constexpr std::int64_t kPerThread = 24;
  for (const xp::Options& x : full_sweep(tu::test_seed(211))) {
    PTO_TRACE_EXPLORE(x);
    auto ops = make(kThreads);  // owns structure + per-thread ctxs
    tu::SimBarrier bar(kThreads);
    std::vector<int> present_failures(kThreads, 0),
        absent_failures(kThreads, 0);
    sim::Config cfg;
    cfg.seed = tu::test_seed(211);
    cfg.explore = x;
    auto res = sim::run(kThreads, cfg, [&](unsigned tid) {
      std::int64_t lo = static_cast<std::int64_t>(tid) * kPerThread;
      for (std::int64_t k = lo; k < lo + kPerThread; ++k) {
        ops->insert(tid, k);
      }
      bar.wait();
      // Every key — mine and everyone else's — must now be present.
      for (std::int64_t k = 0; k < kThreads * kPerThread; ++k) {
        if (!ops->contains(tid, k)) ++present_failures[tid];
      }
      bar.wait();
      for (std::int64_t k = lo; k < lo + kPerThread; ++k) {
        ops->remove(tid, k);
      }
      bar.wait();
      for (std::int64_t k = 0; k < kThreads * kPerThread; ++k) {
        if (ops->contains(tid, k)) ++absent_failures[tid];
      }
    });
    ASSERT_EQ(res.uaf_count, 0u) << tu::note_failure(x, what);
    for (unsigned t = 0; t < kThreads; ++t) {
      EXPECT_EQ(present_failures[t], 0) << tu::note_failure(
          x, std::string(what) + ": keys missing after insert phase");
      EXPECT_EQ(absent_failures[t], 0) << tu::note_failure(
          x, std::string(what) + ": keys alive after remove phase");
    }
  }
}

TEST(DiffConcurrent, SkiplistConservation) {
  concurrent_set_conservation("skiplist(pto)", [](unsigned threads) {
    struct Ops {
      pto::SkipList<SimPlatform> s;
      std::vector<pto::SkipList<SimPlatform>::ThreadCtx> ctxs;
      void insert(unsigned t, std::int64_t k) { s.insert_pto(ctxs[t], k); }
      void remove(unsigned t, std::int64_t k) { s.remove_pto(ctxs[t], k); }
      bool contains(unsigned t, std::int64_t k) {
        return s.contains(ctxs[t], k);
      }
    };
    auto o = std::make_unique<Ops>();
    for (unsigned t = 0; t < threads; ++t) o->ctxs.push_back(o->s.make_ctx());
    return o;
  });
}

TEST(DiffConcurrent, BstConservation) {
  concurrent_set_conservation("ellen_bst(pto12)", [](unsigned threads) {
    struct Ops {
      pto::EllenBST<SimPlatform> s;
      std::vector<pto::EllenBST<SimPlatform>::ThreadCtx> ctxs;
      using Mode = pto::EllenBST<SimPlatform>::Mode;
      void insert(unsigned t, std::int64_t k) {
        s.insert(ctxs[t], k, static_cast<Mode>(3));
      }
      void remove(unsigned t, std::int64_t k) {
        s.remove(ctxs[t], k, static_cast<Mode>(3));
      }
      bool contains(unsigned t, std::int64_t k) {
        return s.contains(ctxs[t], k, static_cast<Mode>(3));
      }
    };
    auto o = std::make_unique<Ops>();
    for (unsigned t = 0; t < threads; ++t) o->ctxs.push_back(o->s.make_ctx());
    return o;
  });
}

TEST(DiffConcurrent, HashConservation) {
  concurrent_set_conservation("fset_hash(pto)", [](unsigned threads) {
    struct Ops {
      pto::FSetHash<SimPlatform> s;
      std::vector<pto::FSetHash<SimPlatform>::ThreadCtx> ctxs;
      using Mode = pto::FSetHash<SimPlatform>::Mode;
      void insert(unsigned t, std::int64_t k) {
        s.insert(ctxs[t], k, Mode::kPto);
      }
      void remove(unsigned t, std::int64_t k) {
        s.remove(ctxs[t], k, Mode::kPto);
      }
      bool contains(unsigned t, std::int64_t k) {
        return s.contains(ctxs[t], k, Mode::kPto);
      }
    };
    auto o = std::make_unique<Ops>();
    for (unsigned t = 0; t < threads; ++t) o->ctxs.push_back(o->s.make_ctx());
    return o;
  });
}

/// Queue: producers enqueue tagged values; consumers + final drain must see
/// exactly the enqueued multiset, in per-producer FIFO order.
TEST(DiffConcurrent, MSQueueConservation) {
  constexpr unsigned kThreads = 4;  // 2 producers, 2 consumers
  constexpr int kPerProducer = 60;
  for (const xp::Options& x : full_sweep(tu::test_seed(223))) {
    PTO_TRACE_EXPLORE(x);
    pto::MSQueue<SimPlatform> q;
    std::vector<pto::MSQueue<SimPlatform>::ThreadCtx> ctxs;
    for (unsigned t = 0; t < kThreads; ++t) ctxs.push_back(q.make_ctx());
    std::vector<std::vector<std::int64_t>> popped(kThreads);
    sim::Config cfg;
    cfg.seed = tu::test_seed(223);
    cfg.explore = x;
    auto res = sim::run(kThreads, cfg, [&](unsigned tid) {
      if (tid < 2) {
        for (int i = 0; i < kPerProducer; ++i) {
          q.enqueue_pto(ctxs[tid], static_cast<std::int64_t>(tid) * 10000 + i);
        }
      } else {
        for (int i = 0; i < kPerProducer; ++i) {
          if (auto v = q.dequeue_pto(ctxs[tid])) {
            popped[tid].push_back(*v);
          }
        }
      }
    });
    ASSERT_EQ(res.uaf_count, 0u) << tu::note_failure(x, "ms_queue uaf");
    // Host-side drain of the remainder (outside any simulation the queue
    // degenerates to raw accesses, which is fine single-threaded).
    sim::run(1, cfg, [&](unsigned) {
      while (auto v = q.dequeue_lf(ctxs[0])) popped[0].push_back(*v);
    });
    std::vector<std::int64_t> all;
    for (auto& p : popped) all.insert(all.end(), p.begin(), p.end());
    std::vector<std::int64_t> want;
    for (std::int64_t t = 0; t < 2; ++t) {
      for (int i = 0; i < kPerProducer; ++i) want.push_back(t * 10000 + i);
    }
    std::vector<std::int64_t> got = all;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << tu::note_failure(
        x, "ms_queue lost or duplicated elements");
    // Per-producer FIFO: within each consumer's stream (and the drain),
    // values from one producer must appear in increasing order.
    for (unsigned t = 0; t < kThreads; ++t) {
      std::int64_t last[2] = {-1, -1};
      for (std::int64_t v : popped[t]) {
        auto p = static_cast<std::size_t>(v / 10000);
        EXPECT_LT(last[p], v) << tu::note_failure(
            x, "ms_queue per-producer FIFO violated");
        last[p] = v;
      }
    }
  }
}

/// PQs: concurrent push of distinct values, then a single-thread drain must
/// be sorted and conserve the multiset.
template <class MakePQ>
void concurrent_pq_conservation(const char* what, MakePQ&& make) {
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 40;
  for (const xp::Options& x : full_sweep(tu::test_seed(227))) {
    PTO_TRACE_EXPLORE(x);
    auto pq = make(kThreads);
    tu::SimBarrier bar(kThreads);
    std::vector<std::int32_t> drained;
    sim::Config cfg;
    cfg.seed = tu::test_seed(227);
    cfg.explore = x;
    auto res = sim::run(kThreads, cfg, [&](unsigned tid) {
      for (int i = 0; i < kPerThread; ++i) {
        pq->push(tid, static_cast<std::int32_t>(tid) * 10000 + i);
      }
      bar.wait();
      if (tid == 0) {
        while (auto v = pq->pop(0)) drained.push_back(*v);
      }
    });
    ASSERT_EQ(res.uaf_count, 0u) << tu::note_failure(x, what);
    EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()))
        << tu::note_failure(x, std::string(what) + " drain not sorted");
    std::vector<std::int32_t> got = drained;
    std::sort(got.begin(), got.end());
    std::vector<std::int32_t> want;
    for (std::int32_t t = 0; t < static_cast<std::int32_t>(kThreads); ++t) {
      for (int i = 0; i < kPerThread; ++i) want.push_back(t * 10000 + i);
    }
    EXPECT_EQ(got, want) << tu::note_failure(
        x, std::string(what) + " lost or duplicated elements");
  }
}

TEST(DiffConcurrent, MoundConservation) {
  concurrent_pq_conservation("mound(pto)", [](unsigned threads) {
    struct PQ {
      pto::Mound<SimPlatform> m{12};
      std::vector<pto::Mound<SimPlatform>::ThreadCtx> ctxs;
      void push(unsigned t, std::int32_t v) { m.insert_pto(ctxs[t], v); }
      std::optional<std::int32_t> pop(unsigned t) {
        return m.extract_min_pto(ctxs[t]);
      }
    };
    auto pq = std::make_unique<PQ>();
    for (unsigned t = 0; t < threads; ++t) pq->ctxs.push_back(pq->m.make_ctx());
    return pq;
  });
}

TEST(DiffConcurrent, SkipQueueConservation) {
  concurrent_pq_conservation("skipqueue(pto)", [](unsigned threads) {
    struct PQ {
      pto::SkipQueue<SimPlatform> q;
      std::vector<pto::SkipQueue<SimPlatform>::ThreadCtx> ctxs;
      void push(unsigned t, std::int32_t v) { q.push_pto(ctxs[t], v); }
      std::optional<std::int32_t> pop(unsigned t) {
        return q.pop_min_pto(ctxs[t]);
      }
    };
    auto pq = std::make_unique<PQ>();
    for (unsigned t = 0; t < threads; ++t) pq->ctxs.push_back(pq->q.make_ctx());
    return pq;
  });
}

/// Mindicator: after all threads arrive and meet at a barrier, query() must
/// be the exact minimum; after all depart, kEmpty.
TEST(DiffConcurrent, MindicatorExactMin) {
  constexpr unsigned kThreads = 4;
  for (const xp::Options& x : full_sweep(tu::test_seed(229))) {
    PTO_TRACE_EXPLORE(x);
    pto::Mindicator<SimPlatform> m(16);
    tu::SimBarrier bar(kThreads);
    std::vector<std::int32_t> vals(kThreads);
    std::vector<int> min_failures(kThreads, 0), empty_failures(kThreads, 0);
    sim::Config cfg;
    cfg.seed = tu::test_seed(229);
    cfg.explore = x;
    sim::run(kThreads, cfg, [&](unsigned tid) {
      vals[tid] = static_cast<std::int32_t>(sim::rnd() % 1000);
      m.arrive_pto(tid, vals[tid]);
      bar.wait();
      std::int32_t want = *std::min_element(vals.begin(), vals.end());
      if (m.query() != want) ++min_failures[tid];
      bar.wait();
      m.depart_pto(tid);
      bar.wait();
      if (m.query() != pto::Mindicator<SimPlatform>::kEmpty) {
        ++empty_failures[tid];
      }
    });
    for (unsigned t = 0; t < kThreads; ++t) {
      EXPECT_EQ(min_failures[t], 0) << tu::note_failure(
          x, "mindicator query != exact min at quiescence");
      EXPECT_EQ(empty_failures[t], 0) << tu::note_failure(
          x, "mindicator not empty after all departed");
    }
  }
}

}  // namespace
