// Real-thread stress on the native platform. On this machine the RTM probe
// usually succeeds, so these exercise genuine hardware transactions racing
// genuine lock-free fallbacks (with OS preemption forcing aborts); under
// PTO_HTM=soft the same tests exercise SoftHTM's strongly-atomic accessors.
// Kept short: correctness smoke under real concurrency, not benchmarks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <set>

#include "common/rng.h"

#include "ds/bst/ellen_bst.h"
#include "ds/hashtable/fset_hash.h"
#include "ds/list/harris_list.h"
#include "ds/mindicator/mindicator.h"
#include "ds/mound/mound.h"
#include "ds/queue/ms_queue.h"
#include "ds/skiplist/skiplist.h"
#include "platform/native_platform.h"
#include "service/loadgen.h"
#include "service/shard.h"

namespace {

using pto::NativePlatform;

constexpr unsigned kThreads = 4;
constexpr int kOps = 4000;

TEST(NativeStress, BstPerKeyConsistency) {
  pto::EllenBST<NativePlatform> set;
  using Mode = pto::EllenBST<NativePlatform>::Mode;
  constexpr int kRange = 64;
  std::vector<std::vector<int>> net(kThreads, std::vector<int>(kRange, 0));
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = set.make_ctx();
      auto mode = static_cast<Mode>(t % 4);
      pto::SplitMix64 rng(t + 1);
      for (int i = 0; i < kOps; ++i) {
        auto k = static_cast<std::int64_t>(rng.next_below(kRange));
        if (rng.next() % 2 == 0) {
          if (set.insert(ctx, k, mode)) ++net[t][static_cast<std::size_t>(k)];
        } else {
          if (set.remove(ctx, k, mode)) --net[t][static_cast<std::size_t>(k)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto ctx = set.make_ctx();
  for (int k = 0; k < kRange; ++k) {
    int total = 0;
    for (auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(set.contains(ctx, k), total == 1) << "key " << k;
  }
  EXPECT_TRUE(set.check_invariants());
}

TEST(NativeStress, SkiplistPerKeyConsistency) {
  pto::SkipList<NativePlatform> set;
  constexpr int kRange = 64;
  std::vector<std::vector<int>> net(kThreads, std::vector<int>(kRange, 0));
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = set.make_ctx();
      pto::SplitMix64 rng(t + 11);
      for (int i = 0; i < kOps; ++i) {
        auto k = static_cast<std::int64_t>(rng.next_below(kRange));
        bool use_pto = (t % 2) == 0;
        if (rng.next() % 2 == 0) {
          bool ok = use_pto ? set.insert_pto(ctx, k) : set.insert_lf(ctx, k);
          if (ok) ++net[t][static_cast<std::size_t>(k)];
        } else {
          bool ok = use_pto ? set.remove_pto(ctx, k) : set.remove_lf(ctx, k);
          if (ok) --net[t][static_cast<std::size_t>(k)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto ctx = set.make_ctx();
  for (int k = 0; k < kRange; ++k) {
    int total = 0;
    for (auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(set.contains(ctx, k), total == 1) << "key " << k;
  }
  EXPECT_TRUE(set.check_invariants());
}

TEST(NativeStress, HashPerKeyConsistency) {
  pto::FSetHash<NativePlatform> set;
  using Mode = pto::FSetHash<NativePlatform>::Mode;
  constexpr int kRange = 256;
  std::vector<std::vector<int>> net(kThreads, std::vector<int>(kRange, 0));
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = set.make_ctx();
      // In-place mode mixes only with itself (lookup double-check rule).
      auto mode = Mode::kPtoInplace;
      pto::SplitMix64 rng(t + 21);
      for (int i = 0; i < kOps; ++i) {
        auto k = static_cast<std::int64_t>(rng.next_below(kRange));
        if (rng.next() % 2 == 0) {
          if (set.insert(ctx, k, mode)) ++net[t][static_cast<std::size_t>(k)];
        } else {
          if (set.remove(ctx, k, mode)) --net[t][static_cast<std::size_t>(k)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto ctx = set.make_ctx();
  for (int k = 0; k < kRange; ++k) {
    int total = 0;
    for (auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(set.contains(ctx, k, Mode::kPtoInplace), total == 1);
  }
  EXPECT_TRUE(set.check_invariants());
}

TEST(NativeStress, MoundValueConservation) {
  pto::Mound<NativePlatform> q(14);
  std::vector<std::multiset<std::int32_t>> pushed(kThreads), popped(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = q.make_ctx();
      pto::SplitMix64 rng(t + 31);
      for (int i = 0; i < kOps / 2; ++i) {
        if (rng.next() % 2 == 0) {
          auto v = static_cast<std::int32_t>(rng.next_below(100000));
          if (t % 2 == 0) {
            q.insert_lf(ctx, v);
          } else {
            q.insert_pto(ctx, v);
          }
          pushed[t].insert(v);
        } else {
          auto got = (t % 2 == 0) ? q.extract_min_lf(ctx)
                                  : q.extract_min_pto(ctx);
          if (got.has_value()) popped[t].insert(*got);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::multiset<std::int32_t> all_pushed, all_popped;
  for (unsigned t = 0; t < kThreads; ++t) {
    all_pushed.insert(pushed[t].begin(), pushed[t].end());
    all_popped.insert(popped[t].begin(), popped[t].end());
  }
  auto ctx = q.make_ctx();
  while (auto got = q.extract_min_lf(ctx)) all_popped.insert(*got);
  EXPECT_EQ(all_pushed, all_popped);
}

TEST(NativeStress, QueueConservation) {
  pto::MSQueue<NativePlatform> q;
  std::atomic<long> enqueued{0}, dequeued{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = q.make_ctx();
      pto::SplitMix64 rng(t + 41);
      for (int i = 0; i < kOps; ++i) {
        if (rng.next() % 2 == 0) {
          if (t % 2 == 0) {
            q.enqueue_lf(ctx, i);
          } else {
            q.enqueue_pto(ctx, i);
          }
          enqueued.fetch_add(1);
        } else {
          auto got = (t % 2 == 0) ? q.dequeue_lf(ctx) : q.dequeue_pto(ctx);
          if (got.has_value()) dequeued.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(q.size_slow(),
            static_cast<std::size_t>(enqueued.load() - dequeued.load()));
}

TEST(NativeStress, MindicatorQuiesces) {
  pto::Mindicator<NativePlatform> m(64);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      pto::SplitMix64 rng(t + 51);
      for (int i = 0; i < kOps; ++i) {
        auto v = static_cast<std::int32_t>(rng.next_below(1000000));
        m.arrive_pto(t, v);
        m.depart_pto(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.query(), pto::Mindicator<NativePlatform>::kEmpty);
  EXPECT_TRUE(m.check_invariants());
}

TEST(NativeStress, ShardRouterChurnOversubscribed) {
  // The service shard router under deliberately hostile thread geometry:
  // 2x hardware_concurrency workers (forced OS preemption inside prefix
  // transactions) and client-session churn mid-run — each worker destroys
  // its Client halfway (releasing its per-shard epoch slots) and continues
  // through a fresh one, as a connection-oriented service would on
  // reconnect. Zero lost ops: per-thread per-key net counters must agree
  // with final membership, and aggregate puts-dels with the router size.
  namespace svc = pto::service;
  using KV = svc::ShardedKV<NativePlatform, svc::SkipAdapter<NativePlatform>>;
  KV kv(4, svc::SkipAdapter<NativePlatform>{true});

  constexpr std::uint64_t kKeys = 128;
  const unsigned nthreads =
      std::max(4u, 2 * std::thread::hardware_concurrency());
  svc::WorkloadSpec spec;
  spec.keyspace = kKeys;
  spec.theta = 0.9;
  spec.get_pct = 20;  // update-heavy
  spec.put_pct = 40;
  spec.seed = 0x57CE55;
  const svc::OpStream stream(spec);

  std::vector<std::vector<int>> net(nthreads, std::vector<int>(kKeys, 0));
  std::vector<std::uint64_t> puts_ok(nthreads, 0), dels_ok(nthreads, 0);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<pto::service::Op> ops;
      stream.fill(t, kOps, ops);
      // Two client sessions per worker: churn in the middle of the stream.
      for (int session = 0; session < 2; ++session) {
        auto client = kv.make_client();
        const std::size_t lo = session == 0 ? 0 : ops.size() / 2;
        const std::size_t hi = session == 0 ? ops.size() / 2 : ops.size();
        for (std::size_t i = lo; i < hi; ++i) {
          const auto k = static_cast<std::size_t>(ops[i].key);
          switch (ops[i].kind) {
            case svc::OpKind::kGet: client.get(ops[i].key); break;
            case svc::OpKind::kPut: net[t][k] += client.put(ops[i].key); break;
            case svc::OpKind::kDel: net[t][k] -= client.del(ops[i].key); break;
          }
        }
        puts_ok[t] += client.puts_ok;
        dels_ok[t] += client.dels_ok;
      }
    });
  }
  for (auto& th : threads) th.join();

  auto check = kv.make_client();
  std::size_t expect_size = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    int total = 0;
    for (const auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(check.get(static_cast<std::int64_t>(k)), total == 1)
        << "key " << k;
    expect_size += static_cast<std::size_t>(total);
  }
  std::uint64_t puts = 0, dels = 0;
  for (unsigned t = 0; t < nthreads; ++t) {
    puts += puts_ok[t];
    dels += dels_ok[t];
  }
  EXPECT_EQ(kv.size_slow(), expect_size);
  EXPECT_EQ(kv.size_slow(), static_cast<std::size_t>(puts - dels));
  EXPECT_TRUE(kv.check_invariants());
}

TEST(NativeStress, ListPerKeyConsistency) {
  pto::HarrisList<NativePlatform> set;
  constexpr int kRange = 48;
  std::vector<std::vector<int>> net(kThreads, std::vector<int>(kRange, 0));
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = set.make_ctx();
      pto::SplitMix64 rng(t + 61);
      for (int i = 0; i < kOps; ++i) {
        auto k = static_cast<std::int64_t>(rng.next_below(kRange));
        bool use_pto = (t % 2) == 0;
        if (rng.next() % 2 == 0) {
          bool ok = use_pto ? set.insert_pto(ctx, k) : set.insert_lf(ctx, k);
          if (ok) ++net[t][static_cast<std::size_t>(k)];
        } else {
          bool ok = use_pto ? set.remove_pto(ctx, k) : set.remove_lf(ctx, k);
          if (ok) --net[t][static_cast<std::size_t>(k)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto ctx = set.make_ctx();
  for (int k = 0; k < kRange; ++k) {
    int total = 0;
    for (auto& v : net) total += v[static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1) << "key " << k;
    ASSERT_EQ(set.contains_lf(ctx, k), total == 1) << "key " << k;
  }
  EXPECT_TRUE(set.check_invariants());
}

}  // namespace
