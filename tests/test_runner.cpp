// RunnerOptions environment parsing: valid overrides apply, malformed or
// zero values fall back to defaults with a (once-per-variable) stderr
// warning so sweep misconfigurations are not invisible.
#include <gtest/gtest.h>

#include <cstdlib>

#include "benchutil/runner.h"

namespace {

using pto::bench::RunnerOptions;

class RunnerEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("PTO_BENCH_OPS");
    unsetenv("PTO_BENCH_TRIALS");
    unsetenv("PTO_BENCH_MAXT");
    unsetenv("PTO_BENCH_SWEEP");
  }
};

TEST_F(RunnerEnv, ValidOverridesApply) {
  setenv("PTO_BENCH_OPS", "1234", 1);
  setenv("PTO_BENCH_TRIALS", "7", 1);
  setenv("PTO_BENCH_MAXT", "16", 1);
  RunnerOptions o = RunnerOptions::from_env();
  EXPECT_EQ(o.ops_per_thread, 1234u);
  EXPECT_EQ(o.trials, 7u);
  EXPECT_EQ(o.max_threads, 16u);
}

TEST_F(RunnerEnv, MalformedValueWarnsAndKeepsDefault) {
  const RunnerOptions defaults;
  setenv("PTO_BENCH_OPS", "not-a-number", 1);
  ::testing::internal::CaptureStderr();
  RunnerOptions o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.ops_per_thread, defaults.ops_per_thread);
  EXPECT_NE(err.find("PTO_BENCH_OPS"), std::string::npos) << err;
  EXPECT_NE(err.find("not-a-number"), std::string::npos) << err;
  // Warned once per variable: a second parse of the same bad value is quiet.
  ::testing::internal::CaptureStderr();
  (void)RunnerOptions::from_env();
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(RunnerEnv, ZeroAndTrailingJunkRejected) {
  const RunnerOptions defaults;
  setenv("PTO_BENCH_TRIALS", "0", 1);
  setenv("PTO_BENCH_MAXT", "12abc", 1);
  ::testing::internal::CaptureStderr();
  RunnerOptions o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.trials, defaults.trials);
  EXPECT_EQ(o.max_threads, defaults.max_threads);
  EXPECT_NE(err.find("PTO_BENCH_TRIALS"), std::string::npos) << err;
  EXPECT_NE(err.find("PTO_BENCH_MAXT"), std::string::npos) << err;
}

TEST_F(RunnerEnv, GeometricSweepDoublesAndIncludesMax) {
  setenv("PTO_BENCH_MAXT", "48", 1);
  setenv("PTO_BENCH_SWEEP", "geom", 1);
  RunnerOptions o = RunnerOptions::from_env();
  EXPECT_TRUE(o.geometric_sweep);
  EXPECT_EQ(pto::bench::sweep_threads(o),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 48}));
  // A power-of-two max is not duplicated.
  setenv("PTO_BENCH_MAXT", "64", 1);
  o = RunnerOptions::from_env();
  EXPECT_EQ(pto::bench::sweep_threads(o),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 64}));
  // Unknown sweep shape warns and stays dense.
  setenv("PTO_BENCH_SWEEP", "cubic", 1);
  ::testing::internal::CaptureStderr();
  o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(o.geometric_sweep);
  EXPECT_NE(err.find("PTO_BENCH_SWEEP"), std::string::npos) << err;
}

TEST_F(RunnerEnv, MaxThreadsAboveSimulatorLimitClampsWithWarning) {
  setenv("PTO_BENCH_MAXT", "4096", 1);
  ::testing::internal::CaptureStderr();
  RunnerOptions o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.max_threads, pto::kMaxThreads);
  EXPECT_NE(err.find("PTO_BENCH_MAXT"), std::string::npos) << err;
  EXPECT_NE(err.find("clamping"), std::string::npos) << err;
  // The simulator limit itself is accepted silently.
  setenv("PTO_BENCH_MAXT", "1024", 1);
  ::testing::internal::CaptureStderr();
  o = RunnerOptions::from_env();
  err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.max_threads, 1024u);
  EXPECT_EQ(err.find("clamping"), std::string::npos) << err;
}

}  // namespace
