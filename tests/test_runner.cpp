// RunnerOptions / ServiceOptions environment parsing: valid overrides apply,
// malformed or zero values fall back to defaults with a (once-per-variable)
// stderr warning so sweep misconfigurations are not invisible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "benchutil/runner.h"
#include "service/loadgen.h"

namespace {

using pto::bench::RunnerOptions;
using pto::service::ServiceOptions;

class RunnerEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("PTO_BENCH_OPS");
    unsetenv("PTO_BENCH_TRIALS");
    unsetenv("PTO_BENCH_MAXT");
    unsetenv("PTO_BENCH_SWEEP");
  }
};

TEST_F(RunnerEnv, ValidOverridesApply) {
  setenv("PTO_BENCH_OPS", "1234", 1);
  setenv("PTO_BENCH_TRIALS", "7", 1);
  setenv("PTO_BENCH_MAXT", "16", 1);
  RunnerOptions o = RunnerOptions::from_env();
  EXPECT_EQ(o.ops_per_thread, 1234u);
  EXPECT_EQ(o.trials, 7u);
  EXPECT_EQ(o.max_threads, 16u);
}

TEST_F(RunnerEnv, MalformedValueWarnsAndKeepsDefault) {
  const RunnerOptions defaults;
  setenv("PTO_BENCH_OPS", "not-a-number", 1);
  ::testing::internal::CaptureStderr();
  RunnerOptions o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.ops_per_thread, defaults.ops_per_thread);
  EXPECT_NE(err.find("PTO_BENCH_OPS"), std::string::npos) << err;
  EXPECT_NE(err.find("not-a-number"), std::string::npos) << err;
  // Warned once per variable: a second parse of the same bad value is quiet.
  ::testing::internal::CaptureStderr();
  (void)RunnerOptions::from_env();
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(RunnerEnv, ZeroAndTrailingJunkRejected) {
  const RunnerOptions defaults;
  setenv("PTO_BENCH_TRIALS", "0", 1);
  setenv("PTO_BENCH_MAXT", "12abc", 1);
  ::testing::internal::CaptureStderr();
  RunnerOptions o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.trials, defaults.trials);
  EXPECT_EQ(o.max_threads, defaults.max_threads);
  EXPECT_NE(err.find("PTO_BENCH_TRIALS"), std::string::npos) << err;
  EXPECT_NE(err.find("PTO_BENCH_MAXT"), std::string::npos) << err;
}

TEST_F(RunnerEnv, GeometricSweepDoublesAndIncludesMax) {
  setenv("PTO_BENCH_MAXT", "48", 1);
  setenv("PTO_BENCH_SWEEP", "geom", 1);
  RunnerOptions o = RunnerOptions::from_env();
  EXPECT_TRUE(o.geometric_sweep);
  EXPECT_EQ(pto::bench::sweep_threads(o),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 48}));
  // A power-of-two max is not duplicated.
  setenv("PTO_BENCH_MAXT", "64", 1);
  o = RunnerOptions::from_env();
  EXPECT_EQ(pto::bench::sweep_threads(o),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 64}));
  // Unknown sweep shape warns and stays dense.
  setenv("PTO_BENCH_SWEEP", "cubic", 1);
  ::testing::internal::CaptureStderr();
  o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(o.geometric_sweep);
  EXPECT_NE(err.find("PTO_BENCH_SWEEP"), std::string::npos) << err;
}

class ServiceEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("PTO_SVC_SHARDS");
    unsetenv("PTO_SVC_STRUCT");
    unsetenv("PTO_SVC_BATCH");
    unsetenv("PTO_SVC_PIN");
    unsetenv("PTO_SVC_KEYS");
    unsetenv("PTO_SVC_DIST");
    unsetenv("PTO_SVC_SKEW");
    unsetenv("PTO_SVC_READPCT");
    unsetenv("PTO_SVC_PUTPCT");
    unsetenv("PTO_SVC_OPENLOOP");
    unsetenv("PTO_SVC_SEED");
  }
};

TEST_F(ServiceEnv, ValidOverridesApply) {
  setenv("PTO_SVC_SHARDS", "8", 1);
  setenv("PTO_SVC_STRUCT", "hash", 1);
  setenv("PTO_SVC_BATCH", "16", 1);
  setenv("PTO_SVC_PIN", "0", 1);
  setenv("PTO_SVC_KEYS", "4096", 1);
  setenv("PTO_SVC_DIST", "hotset", 1);
  setenv("PTO_SVC_SKEW", "0.5", 1);
  setenv("PTO_SVC_READPCT", "80", 1);
  setenv("PTO_SVC_PUTPCT", "15", 1);
  setenv("PTO_SVC_OPENLOOP", "250000", 1);
  setenv("PTO_SVC_SEED", "9", 1);
  const ServiceOptions o = ServiceOptions::from_env();
  EXPECT_EQ(o.shards, 8u);
  EXPECT_EQ(o.structure, pto::service::Structure::kHash);
  EXPECT_EQ(o.batch, 16u);
  EXPECT_FALSE(o.pin);
  EXPECT_EQ(o.workload.keyspace, 4096u);
  EXPECT_EQ(o.workload.dist, pto::service::Dist::kHotset);
  EXPECT_DOUBLE_EQ(o.workload.theta, 0.5);
  EXPECT_EQ(o.workload.get_pct, 80u);
  EXPECT_EQ(o.workload.put_pct, 15u);
  EXPECT_DOUBLE_EQ(o.workload.openloop_rate, 250000.0);
  EXPECT_EQ(o.workload.seed, 9u);
}

TEST_F(ServiceEnv, MalformedValuesWarnOnceAndKeepDefaults) {
  const ServiceOptions defaults;
  setenv("PTO_SVC_SHARDS", "zero-ish", 1);
  setenv("PTO_SVC_STRUCT", "btree", 1);
  setenv("PTO_SVC_SKEW", "1.7", 1);  // past the theta<1 normalization limit
  ::testing::internal::CaptureStderr();
  const ServiceOptions o = ServiceOptions::from_env();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.shards, defaults.shards);
  EXPECT_EQ(o.structure, defaults.structure);
  EXPECT_DOUBLE_EQ(o.workload.theta, defaults.workload.theta);
  EXPECT_NE(err.find("PTO_SVC_SHARDS"), std::string::npos) << err;
  EXPECT_NE(err.find("PTO_SVC_STRUCT"), std::string::npos) << err;
  EXPECT_NE(err.find("PTO_SVC_SKEW"), std::string::npos) << err;
  // warn_once: the same bad values re-parsed stay quiet.
  ::testing::internal::CaptureStderr();
  (void)ServiceOptions::from_env();
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(ServiceEnv, MixExceedingHundredPercentWarnsAndResets) {
  setenv("PTO_SVC_READPCT", "90", 1);
  setenv("PTO_SVC_PUTPCT", "40", 1);
  ::testing::internal::CaptureStderr();
  const ServiceOptions o = ServiceOptions::from_env();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.workload.get_pct, 50u);
  EXPECT_EQ(o.workload.put_pct, 25u);
  EXPECT_NE(err.find("exceed 100"), std::string::npos) << err;
}

TEST_F(ServiceEnv, BatchZeroIsValidAndSilent) {
  setenv("PTO_SVC_BATCH", "0", 1);
  ::testing::internal::CaptureStderr();
  const ServiceOptions o = ServiceOptions::from_env();
  EXPECT_EQ(o.batch, 0u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(ServiceEnv, TinyKeyspaceClampsWithWarning) {
  setenv("PTO_SVC_KEYS", "1", 1);
  ::testing::internal::CaptureStderr();
  const ServiceOptions o = ServiceOptions::from_env();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.workload.keyspace, 2u);
  EXPECT_NE(err.find("PTO_SVC_KEYS"), std::string::npos) << err;
}

TEST_F(RunnerEnv, MaxThreadsAboveSimulatorLimitClampsWithWarning) {
  setenv("PTO_BENCH_MAXT", "4096", 1);
  ::testing::internal::CaptureStderr();
  RunnerOptions o = RunnerOptions::from_env();
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.max_threads, pto::kMaxThreads);
  EXPECT_NE(err.find("PTO_BENCH_MAXT"), std::string::npos) << err;
  EXPECT_NE(err.find("clamping"), std::string::npos) << err;
  // The simulator limit itself is accepted silently.
  setenv("PTO_BENCH_MAXT", "1024", 1);
  ::testing::internal::CaptureStderr();
  o = RunnerOptions::from_env();
  err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.max_threads, 1024u);
  EXPECT_EQ(err.find("clamping"), std::string::npos) << err;
}

}  // namespace
