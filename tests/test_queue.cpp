// Michael-Scott queue: FIFO semantics, value conservation under concurrency,
// the lagging-tail protocol, and PTO equivalence.
#include <gtest/gtest.h>

#include <deque>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ds/queue/ms_queue.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::MSQueue;
using pto::SimPlatform;

enum class Mode { kLf, kPto };
const char* mode_name(Mode m) { return m == Mode::kLf ? "lf" : "pto"; }

template <class P>
void enq(MSQueue<P>& q, typename MSQueue<P>::ThreadCtx& c, Mode m,
         std::int64_t v) {
  if (m == Mode::kLf) {
    q.enqueue_lf(c, v);
  } else {
    q.enqueue_pto(c, v);
  }
}

template <class P>
std::optional<std::int64_t> deq(MSQueue<P>& q,
                                typename MSQueue<P>::ThreadCtx& c, Mode m) {
  return m == Mode::kLf ? q.dequeue_lf(c) : q.dequeue_pto(c);
}

class QueueSequential : public ::testing::TestWithParam<Mode> {};

TEST_P(QueueSequential, FifoOrder) {
  Mode m = GetParam();
  MSQueue<SimPlatform> q;
  auto ctx = q.make_ctx();
  std::deque<std::int64_t> model;
  pto::SplitMix64 rng(3 + static_cast<int>(m));
  for (int step = 0; step < 3000; ++step) {
    if (model.empty() || rng.next_percent() < 55) {
      auto v = static_cast<std::int64_t>(rng.next());
      enq(q, ctx, m, v);
      model.push_back(v);
    } else {
      auto got = deq(q, ctx, m);
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(*got, model.front());
      model.pop_front();
    }
  }
  EXPECT_EQ(q.size_slow(), model.size());
  while (!model.empty()) {
    auto got = deq(q, ctx, m);
    ASSERT_EQ(*got, model.front());
    model.pop_front();
  }
  EXPECT_FALSE(deq(q, ctx, m).has_value());
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, QueueSequential,
                         ::testing::Values(Mode::kLf, Mode::kPto),
                         [](const auto& i) { return mode_name(i.param); });

class QueueConcurrent
    : public ::testing::TestWithParam<std::tuple<Mode, int, int>> {};

// Producers enqueue tagged values; consumers dequeue. Checks: conservation
// (every enqueued value dequeued exactly once) and per-producer FIFO (the
// subsequence from one producer is dequeued in its enqueue order).
TEST_P(QueueConcurrent, ConservationAndPerProducerFifo) {
  auto [mode, threads, seed] = GetParam();
  const auto n = static_cast<unsigned>(threads);
  MSQueue<SimPlatform> q;
  std::vector<std::vector<std::int64_t>> popped(n);
  std::vector<int> enq_count(n, 0);
  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto res = pto::sim::run(n, cfg, [&](unsigned tid) {
    auto ctx = q.make_ctx();
    for (int i = 0; i < 250; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        // Tag: high bits producer id, low bits sequence.
        auto v = (static_cast<std::int64_t>(tid) << 32) | enq_count[tid]++;
        enq(q, ctx, mode, v);
      } else if (auto got = deq(q, ctx, mode)) {
        popped[tid].push_back(*got);
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);

  // Drain the remainder.
  auto ctx = q.make_ctx();
  std::vector<std::int64_t> all;
  for (auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  while (auto got = q.dequeue_lf(ctx)) all.push_back(*got);

  std::size_t expected = 0;
  for (unsigned t = 0; t < n; ++t) {
    expected += static_cast<std::size_t>(enq_count[t]);
  }
  ASSERT_EQ(all.size(), expected);
  std::sort(all.begin(), all.end());
  ASSERT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "a value was dequeued twice";

  // Per-producer FIFO within each consumer's stream.
  for (unsigned c = 0; c < n; ++c) {
    std::vector<std::int64_t> last(n, -1);
    for (auto v : popped[c]) {
      auto prod = static_cast<unsigned>(v >> 32);
      auto seq = v & 0xFFFFFFFF;
      ASSERT_GT(seq, last[prod]) << "per-producer order violated";
      last[prod] = seq;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueConcurrent,
    ::testing::Combine(::testing::Values(Mode::kLf, Mode::kPto),
                       ::testing::Values(2, 4, 8), ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Queue, MixedModesInteroperate) {
  MSQueue<SimPlatform> q;
  pto::sim::Config cfg;
  cfg.seed = 23;
  std::vector<int> enq_totals(4, 0), deq_totals(4, 0);
  auto res = pto::sim::run(4, cfg, [&](unsigned tid) {
    auto ctx = q.make_ctx();
    Mode m = tid % 2 == 0 ? Mode::kLf : Mode::kPto;
    for (int i = 0; i < 300; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        enq(q, ctx, m, tid);
        ++enq_totals[tid];
      } else if (deq(q, ctx, m).has_value()) {
        ++deq_totals[tid];
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  int enqueued = 0, dequeued = 0;
  for (int t = 0; t < 4; ++t) {
    enqueued += enq_totals[t];
    dequeued += deq_totals[t];
  }
  EXPECT_EQ(q.size_slow(), static_cast<std::size_t>(enqueued - dequeued));
}

TEST(Queue, PtoFastPathEliminatesCas) {
  MSQueue<SimPlatform> q;
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    auto ctx = q.make_ctx();
    for (int i = 0; i < 200; ++i) q.enqueue_pto(ctx, i);
    for (int i = 0; i < 200; ++i) q.dequeue_pto(ctx);
    EXPECT_EQ(ctx.enq_stats.commits, 200u);
    EXPECT_EQ(ctx.deq_stats.commits, 200u);
  });
  EXPECT_LE(res.totals().cas_ops, 8u);  // epoch bookkeeping only
}

TEST(Queue, FailureInjectionFallsBack) {
  MSQueue<SimPlatform> q;
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::sim::run(2, cfg, [&](unsigned tid) {
    auto ctx = q.make_ctx();
    for (int i = 0; i < 200; ++i) {
      if (i % 2 == 0) {
        q.enqueue_pto(ctx, tid * 1000 + i);
      } else {
        q.dequeue_pto(ctx);
      }
    }
    EXPECT_EQ(ctx.enq_stats.commits, 0u);
  });
  // Drain cleanly.
  auto ctx = q.make_ctx();
  while (q.dequeue_lf(ctx).has_value()) {
  }
  EXPECT_TRUE(q.empty());
}

TEST(Queue, NativePlatform) {
  MSQueue<pto::NativePlatform> q;
  auto ctx = q.make_ctx();
  for (int i = 0; i < 500; ++i) q.enqueue_pto(ctx, i);
  for (int i = 0; i < 500; ++i) {
    auto got = q.dequeue_pto(ctx);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, i);
  }
  EXPECT_FALSE(q.dequeue_pto(ctx).has_value());
}

}  // namespace
