// Generic test drivers for set-like structures (skiplist, BST, hash table).
//
// An Adapter wraps one data structure and exposes:
//   using Mode = ...;               // algorithm variant selector
//   using Ctx = ...;                // per-thread context
//   Ctx make_ctx();
//   bool insert(Ctx&, Mode, std::int64_t key);
//   bool remove(Ctx&, Mode, std::int64_t key);
//   bool contains(Ctx&, Mode, std::int64_t key);
//   bool check_invariants();        // quiescent structural checks
//   std::size_t size_slow();
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "sim/sim.h"

namespace pto::testutil {

/// Random insert/remove/lookup sequence checked against std::set, run
/// outside any simulation (host mode: hooks degrade to raw accesses).
template <class Adapter>
void sequential_model_check(Adapter& a, typename Adapter::Mode mode,
                            int range, int steps, std::uint64_t seed) {
  auto ctx = a.make_ctx();
  std::set<std::int64_t> model;
  SplitMix64 rng(seed);
  for (int i = 0; i < steps; ++i) {
    std::int64_t k = static_cast<std::int64_t>(rng.next_below(range));
    unsigned action = rng.next_percent();
    if (action < 40) {
      ASSERT_EQ(a.insert(ctx, mode, k), model.insert(k).second)
          << "step " << i << " insert " << k;
    } else if (action < 80) {
      ASSERT_EQ(a.remove(ctx, mode, k), model.erase(k) == 1)
          << "step " << i << " remove " << k;
    } else {
      ASSERT_EQ(a.contains(ctx, mode, k), model.count(k) == 1)
          << "step " << i << " contains " << k;
    }
  }
  EXPECT_EQ(a.size_slow(), model.size());
  EXPECT_TRUE(a.check_invariants());
  for (std::int64_t k = 0; k < range; ++k) {
    ASSERT_EQ(a.contains(ctx, mode, k), model.count(k) == 1) << "final " << k;
  }
}

/// Deterministic concurrent run on the simulator. Correctness criterion:
/// per key, successful inserts and removes must strictly alternate (starting
/// with an insert), so sum(ins_ok - rem_ok) is 0 or 1 and must equal the
/// key's final membership. Any atomicity violation (lost update, double
/// insert) breaks this.
template <class Adapter>
void concurrent_consistency(Adapter& a, typename Adapter::Mode mode,
                            unsigned threads, int range, int ops,
                            std::uint64_t seed, unsigned lookup_pct = 20) {
  std::vector<std::vector<int>> net(threads, std::vector<int>(range, 0));
  sim::Config cfg;
  cfg.seed = seed;
  auto res = sim::run(threads, cfg, [&](unsigned tid) {
    auto ctx = a.make_ctx();
    for (int i = 0; i < ops; ++i) {
      auto k = static_cast<std::int64_t>(sim::rnd() % range);
      unsigned action = static_cast<unsigned>(sim::rnd() % 100);
      if (action < lookup_pct) {
        (void)a.contains(ctx, mode, k);
      } else if (action < lookup_pct + (100 - lookup_pct) / 2) {
        if (a.insert(ctx, mode, k)) ++net[tid][static_cast<std::size_t>(k)];
      } else {
        if (a.remove(ctx, mode, k)) --net[tid][static_cast<std::size_t>(k)];
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u) << "use-after-free detected";

  auto ctx = a.make_ctx();
  std::size_t present = 0;
  for (int k = 0; k < range; ++k) {
    int total = 0;
    for (unsigned t = 0; t < threads; ++t) total += net[t][static_cast<std::size_t>(k)];
    ASSERT_TRUE(total == 0 || total == 1)
        << "key " << k << " net " << total
        << ": successful ops did not alternate";
    bool in = a.contains(ctx, mode, static_cast<std::int64_t>(k));
    ASSERT_EQ(in, total == 1) << "key " << k;
    present += static_cast<std::size_t>(total);
  }
  EXPECT_EQ(a.size_slow(), present);
  EXPECT_TRUE(a.check_invariants());
}

}  // namespace pto::testutil
