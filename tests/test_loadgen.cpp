// Statistical and determinism tests for the service load generator
// (src/service/loadgen.h). The samplers are pure functions of
// (WorkloadSpec, tid), so every test here is exactly reproducible: the zipf
// chi-square uses a fixed seed and a bound far enough above the dof that a
// correct sampler fails with negligible probability, while an off-by-one in
// the CDF table or a biased uniform draw blows through it immediately.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "benchutil/zipf.h"
#include "common/rng.h"
#include "service/loadgen.h"

namespace {

namespace svc = pto::service;
using svc::Dist;
using svc::Op;
using svc::OpKind;
using svc::WorkloadSpec;

/// Chi-square statistic of `counts` against expected probabilities `pmf`.
double chi_square(const std::vector<std::uint64_t>& counts,
                  const std::vector<double>& pmf, std::uint64_t total) {
  double chi2 = 0.0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const double expect = pmf[k] * static_cast<double>(total);
    const double diff = static_cast<double>(counts[k]) - expect;
    chi2 += diff * diff / expect;
  }
  return chi2;
}

/// dof + 6*sqrt(2*dof): ~6 sigma above the chi-square mean, so a correct
/// sampler essentially never trips it while gross bias always does.
double chi_square_bound(std::size_t bins) {
  const double dof = static_cast<double>(bins - 1);
  return dof + 6.0 * std::sqrt(2.0 * dof);
}

TEST(Loadgen, ZipfMatchesAnalyticPmf) {
  constexpr std::uint64_t kKeys = 64;
  constexpr std::uint64_t kSamples = 200000;
  WorkloadSpec spec;
  spec.keyspace = kKeys;
  spec.dist = Dist::kZipf;
  spec.theta = 0.99;
  spec.seed = 7;
  svc::KeySampler sampler(spec);
  pto::bench::ZipfGenerator ref(kKeys, spec.theta);

  std::vector<double> pmf(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) pmf[k] = ref.pmf(k);

  std::vector<std::uint64_t> counts(kKeys, 0);
  pto::SplitMix64 rng(svc::derive_stream_seed(spec.seed, 0));
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    const std::int64_t k = sampler.next(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(static_cast<std::uint64_t>(k), kKeys);
    ++counts[static_cast<std::size_t>(k)];
  }
  const double chi2 = chi_square(counts, pmf, kSamples);
  EXPECT_LT(chi2, chi_square_bound(kKeys)) << "zipf sampler diverges from the "
                                              "analytic distribution";
  // The mode of a zipfian is key 0 by construction; sanity-check the skew
  // actually materialized (uniform would put ~1/64 ~ 1.6% on key 0; theta
  // 0.99 puts ~18% there).
  EXPECT_GT(counts[0], kSamples / 10);
}

TEST(Loadgen, UniformMatchesFlatPmf) {
  constexpr std::uint64_t kKeys = 64;
  constexpr std::uint64_t kSamples = 200000;
  WorkloadSpec spec;
  spec.keyspace = kKeys;
  spec.dist = Dist::kUniform;
  spec.seed = 11;
  svc::KeySampler sampler(spec);

  std::vector<double> pmf(kKeys, 1.0 / static_cast<double>(kKeys));
  std::vector<std::uint64_t> counts(kKeys, 0);
  pto::SplitMix64 rng(svc::derive_stream_seed(spec.seed, 0));
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(sampler.next(rng))];
  }
  EXPECT_LT(chi_square(counts, pmf, kSamples), chi_square_bound(kKeys));
}

TEST(Loadgen, StreamsAreDeterministic) {
  WorkloadSpec spec;
  spec.keyspace = 1024;
  spec.theta = 0.8;
  spec.seed = 1234;
  svc::OpStream a(spec);
  svc::OpStream b(spec);

  std::vector<Op> ops_a, ops_b;
  a.fill(3, 5000, ops_a);
  b.fill(3, 5000, ops_b);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (std::size_t i = 0; i < ops_a.size(); ++i) {
    ASSERT_EQ(ops_a[i].kind, ops_b[i].kind) << "op " << i;
    ASSERT_EQ(ops_a[i].key, ops_b[i].key) << "op " << i;
  }
}

TEST(Loadgen, StreamsIndependentOfThreadCount) {
  // Thread 2's stream is a pure function of (seed, tid): generating it alone
  // or alongside other threads' streams must give identical bytes. This is
  // what makes a 4-thread native run and a 16-thread simx replay comparable.
  WorkloadSpec spec;
  spec.seed = 99;
  svc::OpStream s(spec);
  std::vector<Op> alone, with_others;
  s.fill(2, 2000, alone);
  for (unsigned tid = 0; tid < 8; ++tid) {
    std::vector<Op> scratch;
    s.fill(tid, 2000, tid == 2 ? with_others : scratch);
  }
  ASSERT_EQ(alone.size(), with_others.size());
  for (std::size_t i = 0; i < alone.size(); ++i) {
    ASSERT_EQ(alone[i].key, with_others[i].key) << "op " << i;
    ASSERT_EQ(alone[i].kind, with_others[i].kind) << "op " << i;
  }
}

TEST(Loadgen, DistinctTidsGetDistinctStreams) {
  WorkloadSpec spec;
  svc::OpStream s(spec);
  std::vector<Op> t0, t1;
  s.fill(0, 1000, t0);
  s.fill(1, 1000, t1);
  std::size_t same = 0;
  for (std::size_t i = 0; i < t0.size(); ++i) {
    same += t0[i].key == t1[i].key && t0[i].kind == t1[i].kind;
  }
  EXPECT_LT(same, t0.size() / 2) << "per-tid streams look identical";
  EXPECT_NE(svc::derive_stream_seed(42, 0), svc::derive_stream_seed(42, 1));
  EXPECT_NE(svc::derive_stream_seed(42, 0, 0),
            svc::derive_stream_seed(42, 0, 0x0A11));
}

TEST(Loadgen, OpMixMatchesConfiguredPercentages) {
  WorkloadSpec spec;
  spec.get_pct = 70;
  spec.put_pct = 20;
  spec.seed = 5;
  svc::OpStream s(spec);
  std::vector<Op> ops;
  constexpr std::uint64_t kN = 100000;
  s.fill(0, kN, ops);
  std::uint64_t gets = 0, puts = 0, dels = 0;
  for (const Op& op : ops) {
    gets += op.kind == OpKind::kGet;
    puts += op.kind == OpKind::kPut;
    dels += op.kind == OpKind::kDel;
  }
  // Binomial sd at n=100k is ~0.15%; 1% slack is ~6 sigma.
  EXPECT_NEAR(static_cast<double>(gets) / kN, 0.70, 0.01);
  EXPECT_NEAR(static_cast<double>(puts) / kN, 0.20, 0.01);
  EXPECT_NEAR(static_cast<double>(dels) / kN, 0.10, 0.01);
}

TEST(Loadgen, OpenLoopArrivalsHaveConfiguredMean) {
  WorkloadSpec spec;
  spec.openloop_rate = 1e6;  // 1M ops/sec -> mean gap 1000 ns
  spec.seed = 17;
  svc::OpStream s(spec);
  std::vector<std::uint64_t> gaps;
  constexpr std::uint64_t kN = 200000;
  s.fill_arrivals_ns(0, kN, gaps);
  ASSERT_EQ(gaps.size(), kN);
  double sum = 0.0;
  for (const std::uint64_t g : gaps) sum += static_cast<double>(g);
  const double mean = sum / static_cast<double>(kN);
  // Exponential sd equals the mean, so the sample-mean sd is
  // 1000/sqrt(200k) ~ 2.2 ns; 3% slack is generous.
  EXPECT_NEAR(mean, 1000.0, 30.0);

  // Determinism and independence from the key stream.
  std::vector<std::uint64_t> again;
  s.fill_arrivals_ns(0, kN, again);
  EXPECT_EQ(gaps, again);
}

TEST(Loadgen, ClosedLoopArrivalsAreZero) {
  WorkloadSpec spec;  // openloop_rate defaults to 0 = closed loop
  svc::OpStream s(spec);
  std::vector<std::uint64_t> gaps;
  s.fill_arrivals_ns(0, 100, gaps);
  for (const std::uint64_t g : gaps) EXPECT_EQ(g, 0u);
}

TEST(Loadgen, HotsetTouchesExactlyConfiguredFraction) {
  WorkloadSpec spec;
  spec.keyspace = 1000;
  spec.dist = Dist::kHotset;
  spec.hot_fraction = 0.02;  // 20 hot keys
  spec.hot_prob = 0.9;
  spec.seed = 23;
  svc::KeySampler sampler(spec);
  ASSERT_EQ(sampler.hot_keys(), 20u);

  pto::SplitMix64 rng(svc::derive_stream_seed(spec.seed, 0));
  constexpr std::uint64_t kN = 100000;
  std::uint64_t hot_hits = 0;
  std::vector<bool> seen(spec.keyspace, false);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const std::int64_t k = sampler.next(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(static_cast<std::uint64_t>(k), spec.keyspace);
    seen[static_cast<std::size_t>(k)] = true;
    hot_hits += static_cast<std::uint64_t>(k) < sampler.hot_keys();
  }
  // Measured hot probability tracks the knob (binomial sd ~ 0.1%).
  EXPECT_NEAR(static_cast<double>(hot_hits) / kN, 0.9, 0.01);
  // The hot set is exactly keys [0, 20): with 90k hits over 20 keys every
  // hot key is touched; cold keys each get ~10 hits so all appear too, but
  // the *identity* of the hot range is the property that matters for tests
  // that pin contention to specific shards.
  for (std::uint64_t k = 0; k < sampler.hot_keys(); ++k) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(k)]) << "hot key " << k;
  }
}

TEST(Loadgen, HotsetDegenerateFractionsClamp) {
  WorkloadSpec spec;
  spec.keyspace = 10;
  spec.dist = Dist::kHotset;
  spec.hot_fraction = 1e-9;  // rounds up to 1 key
  svc::KeySampler tiny(spec);
  EXPECT_EQ(tiny.hot_keys(), 1u);

  spec.hot_fraction = 1.0;  // whole keyspace hot: cold draw must not divide by 0
  svc::KeySampler all(spec);
  EXPECT_EQ(all.hot_keys(), 10u);
  pto::SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t k = all.next(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 10);
  }
}

}  // namespace
