// Mound priority queue: sequential ordering against std::priority_queue,
// concurrent value conservation, heap invariants at quiescence, and the
// local-PTO (DCAS/DCSS) acceleration paths.
#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ds/mound/mound.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"

namespace {

using pto::Mound;
using pto::SimPlatform;

enum class Mode { kLf, kPto };
const char* mode_name(Mode m) { return m == Mode::kLf ? "lf" : "pto"; }

template <class P>
void push(Mound<P>& m, typename Mound<P>::ThreadCtx& c, Mode mode,
          std::int32_t v) {
  if (mode == Mode::kLf) {
    m.insert_lf(c, v);
  } else {
    m.insert_pto(c, v);
  }
}

template <class P>
std::optional<std::int32_t> pop(Mound<P>& m, typename Mound<P>::ThreadCtx& c,
                                Mode mode) {
  return mode == Mode::kLf ? m.extract_min_lf(c) : m.extract_min_pto(c);
}

class MoundSequential : public ::testing::TestWithParam<Mode> {};

TEST_P(MoundSequential, PopsInSortedOrder) {
  Mode mode = GetParam();
  Mound<SimPlatform> m(10);
  auto ctx = m.make_ctx();
  pto::SplitMix64 rng(17);
  std::multiset<std::int32_t> model;
  for (int i = 0; i < 400; ++i) {
    auto v = static_cast<std::int32_t>(rng.next_below(10000));
    push(m, ctx, mode, v);
    model.insert(v);
  }
  EXPECT_EQ(m.size_slow(), model.size());
  EXPECT_TRUE(m.check_invariants());
  while (!model.empty()) {
    auto got = pop(m, ctx, mode);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, *model.begin());
    model.erase(model.begin());
  }
  EXPECT_FALSE(pop(m, ctx, mode).has_value());
}

TEST_P(MoundSequential, InterleavedPushPop) {
  Mode mode = GetParam();
  Mound<SimPlatform> m(10);
  auto ctx = m.make_ctx();
  pto::SplitMix64 rng(23);
  std::multiset<std::int32_t> model;
  for (int i = 0; i < 2000; ++i) {
    if (model.empty() || rng.next_percent() < 55) {
      auto v = static_cast<std::int32_t>(rng.next_below(1000));
      push(m, ctx, mode, v);
      model.insert(v);
    } else {
      auto got = pop(m, ctx, mode);
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(*got, *model.begin());
      model.erase(model.begin());
    }
  }
  EXPECT_EQ(m.size_slow(), model.size());
  EXPECT_TRUE(m.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Modes, MoundSequential,
                         ::testing::Values(Mode::kLf, Mode::kPto),
                         [](const auto& i) { return mode_name(i.param); });

class MoundConcurrent
    : public ::testing::TestWithParam<std::tuple<Mode, int, int>> {};

TEST_P(MoundConcurrent, ValueConservation) {
  auto [mode, threads, seed] = GetParam();
  const auto n = static_cast<unsigned>(threads);
  Mound<SimPlatform> m(12);
  std::vector<std::multiset<std::int32_t>> pushed(n), popped(n);
  pto::sim::Config cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto res = pto::sim::run(n, cfg, [&](unsigned tid) {
    auto ctx = m.make_ctx();
    for (int i = 0; i < 200; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        auto v = static_cast<std::int32_t>(pto::sim::rnd() % 5000);
        push(m, ctx, mode, v);
        pushed[tid].insert(v);
      } else {
        auto got = pop(m, ctx, mode);
        if (got.has_value()) popped[tid].insert(*got);
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);

  std::multiset<std::int32_t> all_pushed, all_popped;
  for (unsigned t = 0; t < n; ++t) {
    all_pushed.insert(pushed[t].begin(), pushed[t].end());
    all_popped.insert(popped[t].begin(), popped[t].end());
  }
  auto ctx = m.make_ctx();
  while (auto got = m.extract_min_lf(ctx)) all_popped.insert(*got);
  EXPECT_EQ(all_pushed, all_popped);
  EXPECT_EQ(m.size_slow(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MoundConcurrent,
    ::testing::Combine(::testing::Values(Mode::kLf, Mode::kPto),
                       ::testing::Values(2, 4, 8), ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Mound, MixedLfAndPtoThreads) {
  Mound<SimPlatform> m(12);
  std::vector<std::multiset<std::int32_t>> pushed(6), popped(6);
  pto::sim::Config cfg;
  cfg.seed = 31;
  auto res = pto::sim::run(6, cfg, [&](unsigned tid) {
    auto ctx = m.make_ctx();
    Mode mode = tid % 2 == 0 ? Mode::kLf : Mode::kPto;
    for (int i = 0; i < 150; ++i) {
      if (pto::sim::rnd() % 2 == 0) {
        auto v = static_cast<std::int32_t>(pto::sim::rnd() % 1000);
        push(m, ctx, mode, v);
        pushed[tid].insert(v);
      } else if (auto got = pop(m, ctx, mode)) {
        popped[tid].insert(*got);
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  std::multiset<std::int32_t> all_pushed, all_popped;
  for (unsigned t = 0; t < 6; ++t) {
    all_pushed.insert(pushed[t].begin(), pushed[t].end());
    all_popped.insert(popped[t].begin(), popped[t].end());
  }
  auto ctx = m.make_ctx();
  while (auto got = m.extract_min_lf(ctx)) all_popped.insert(*got);
  EXPECT_EQ(all_pushed, all_popped);
}

TEST(Mound, PtoReplacesCasesWithTransactions) {
  // The PTO variant's DCAS/DCSS fast paths should eliminate most CAS
  // traffic relative to the software descriptors.
  auto measure = [](Mode mode) {
    Mound<SimPlatform> m(10);
    auto res = pto::sim::run(1, {}, [&](unsigned) {
      auto ctx = m.make_ctx();
      for (int i = 0; i < 300; ++i) {
        push(m, ctx, mode, static_cast<std::int32_t>(pto::sim::rnd() % 1000));
      }
      for (int i = 0; i < 300; ++i) pop(m, ctx, mode);
    });
    return res.totals().cas_ops;
  };
  auto lf_cas = measure(Mode::kLf);
  auto pto_cas = measure(Mode::kPto);
  EXPECT_LT(pto_cas, lf_cas / 2);
}

TEST(Mound, GrowsWhenLeavesAreSmall) {
  Mound<SimPlatform> m(8);
  auto ctx = m.make_ctx();
  // Insert descending values: each new minimum forces upward placement;
  // ascending inserts force leaf probes to fail and the mound to deepen.
  for (std::int32_t v = 0; v < 500; ++v) m.insert_lf(ctx, v);
  EXPECT_EQ(m.size_slow(), 500u);
  std::int32_t last = -1;
  while (auto got = m.extract_min_lf(ctx)) {
    ASSERT_GT(*got, last);
    last = *got;
  }
  EXPECT_EQ(last, 499);
}

TEST(Mound, FailureInjectionFallsBack) {
  Mound<SimPlatform> m(10);
  pto::sim::Config cfg;
  cfg.htm.spurious_abort_prob = 1.0;
  pto::sim::run(2, cfg, [&](unsigned) {
    auto ctx = m.make_ctx();
    for (int i = 0; i < 150; ++i) {
      m.insert_pto(ctx, static_cast<std::int32_t>(pto::sim::rnd() % 100));
      m.extract_min_pto(ctx);
    }
    EXPECT_EQ(ctx.dcas_stats.commits, 0u);
  });
  EXPECT_TRUE(m.check_invariants());
}

TEST(Mound, NativePlatform) {
  Mound<pto::NativePlatform> m(10);
  auto ctx = m.make_ctx();
  pto::SplitMix64 rng(3);
  std::multiset<std::int32_t> model;
  for (int i = 0; i < 300; ++i) {
    auto v = static_cast<std::int32_t>(rng.next_below(500));
    m.insert_pto(ctx, v);
    model.insert(v);
  }
  while (!model.empty()) {
    auto got = m.extract_min_pto(ctx);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, *model.begin());
    model.erase(model.begin());
  }
}

}  // namespace
