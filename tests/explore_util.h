// Shared helpers for seeded / explored tests.
//
//   PTO_TEST_SEED=N      overrides the base seed of every seeded test (each
//                        test derives its per-case seeds from the base, so
//                        one variable steers the whole suite onto a new
//                        deterministic path — the flake-sweep and nightly
//                        jobs rotate it)
//   PTO_EXPLORE_SEEDS=N  how many explored schedules per (structure, policy)
//                        sweep (default 4; CI smoke uses 8, nightly 512)
//   PTO_REPLAY_TOKENS=f  append the replay token of every failing explored
//                        case to file f (nightly uploads it as an artifact)
//
// Every failing seeded case prints its seed and, for explored runs, the
// one-line `PTO_SCHED=...` replay token that reproduces it byte-identically.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "explore/explore.h"
#include "sim/sim.h"

namespace pto::testutil {

inline std::uint64_t env_u64_or(const char* name, std::uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  auto parsed = std::strtoull(v, &end, 10);
  return (end != v && *end == '\0') ? parsed : dflt;
}

/// Base seed for a seeded test: the hard-coded default unless PTO_TEST_SEED
/// overrides it.
inline std::uint64_t test_seed(std::uint64_t dflt) {
  return env_u64_or("PTO_TEST_SEED", dflt);
}

/// Explored schedules per sweep (PTO_EXPLORE_SEEDS).
inline unsigned explore_seeds(unsigned dflt = 4) {
  return static_cast<unsigned>(env_u64_or("PTO_EXPLORE_SEEDS", dflt));
}

/// Record a failing explored case: append its replay token to
/// PTO_REPLAY_TOKENS (when set) and return the human-readable line for the
/// assertion message.
inline std::string note_failure(const explore::Options& xopts,
                                const std::string& what) {
  std::string line = what + "  [replay: " + explore::token(xopts) + "]";
  if (const char* path = std::getenv("PTO_REPLAY_TOKENS");
      path != nullptr && *path != '\0') {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }
  return line;
}

/// SCOPED_TRACE payload for a seeded test case: names the seed and how to
/// pin it from the environment.
#define PTO_TRACE_SEED(seed)                                              \
  SCOPED_TRACE(::testing::Message()                                       \
               << "seed=" << (seed)                                       \
               << " (rerun with PTO_TEST_SEED=" << (seed) << ")")

/// SCOPED_TRACE payload for an explored run: the replay token reproduces
/// the schedule (and injected faults) byte-identically.
#define PTO_TRACE_EXPLORE(xopts)                                          \
  SCOPED_TRACE(::testing::Message()                                       \
               << "replay token: " << ::pto::explore::token(xopts))

/// The standard sweep of adversarial policies for an explored test: for
/// seed index i of n, yields pct and rand options (both with HTM fault
/// injection when `fault_rate` > 0).
inline std::vector<explore::Options> sweep_policies(std::uint64_t base_seed,
                                                    unsigned nseeds,
                                                    double fault_rate = 0.0) {
  std::vector<explore::Options> all;
  for (unsigned i = 0; i < nseeds; ++i) {
    std::uint64_t s = explore::derive_seed(base_seed, i);
    for (auto pol : {explore::Policy::kPCT, explore::Policy::kRandom}) {
      explore::Options o;
      o.policy = pol;
      o.seed = s;
      if (fault_rate > 0.0) {
        o.fault_seed = explore::derive_seed(s, 0xFA17ull);
        o.fault_rate = fault_rate;
      }
      all.push_back(o);
    }
  }
  return all;
}

}  // namespace pto::testutil
