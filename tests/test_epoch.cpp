// Epoch-based reclamation: grace periods, guard nesting, transactional
// elision, handle lifecycle, and custom disposers.
#include <gtest/gtest.h>

#include "core/prefix.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "reclaim/epoch.h"
#include "sim/sim.h"
#include "sim_util.h"

namespace {

using pto::Atom;
using pto::EpochDomain;
using pto::SimPlatform;

struct Node {
  Atom<SimPlatform, int> v;
};

TEST(Epoch, NoReclaimWhileGuardFromRetireEpochActive) {
  // A node retired while a guard holds a reference must survive until that
  // guard exits, even across many retire batches by the other thread.
  EpochDomain<SimPlatform> dom;
  auto* shared = SimPlatform::make<Node>();
  shared->v.init(1);
  Atom<SimPlatform, std::uintptr_t> published;
  published.init(reinterpret_cast<std::uintptr_t>(shared));

  pto::testutil::SimBarrier bar(2);
  auto res = pto::sim::run(2, {}, [&](unsigned tid) {
    auto h = dom.register_thread();
    if (tid == 0) {
      typename EpochDomain<SimPlatform>::Guard g(h);
      auto* n = reinterpret_cast<Node*>(published.load());
      bar.wait();  // the pointer is acquired before the unlink happens
      // Linger: the reclaimer must not free `n` under us.
      for (int i = 0; i < 3000; ++i) {
        ASSERT_EQ(n->v.load(std::memory_order_relaxed), 1);
        pto::sim::cpu_pause();
      }
    } else {
      bar.wait();
      // Unlink and retire the shared node, then churn hundreds of others.
      published.store(0);
      h.retire(reinterpret_cast<Node*>(
          reinterpret_cast<void*>(shared)));
      for (int i = 0; i < 500; ++i) {
        auto* n = SimPlatform::make<Node>();
        n->v.init(i);
        h.retire(n);
      }
      h.reclaim_some();
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
}

TEST(Epoch, ReclaimsAfterQuiescence) {
  EpochDomain<SimPlatform> dom;
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    auto h = dom.register_thread();
    for (int i = 0; i < 300; ++i) {
      auto* n = SimPlatform::make<Node>();
      n->v.init(i);
      {
        typename EpochDomain<SimPlatform>::Guard g(h);
      }
      h.retire(n);
    }
    dom.advance_epochs();
    h.reclaim_some();
    EXPECT_LT(h.limbo_size(), 300u);
  });
  EXPECT_GT(res.totals().frees, 0u);
}

TEST(Epoch, GuardsNestViaDepthCount) {
  EpochDomain<SimPlatform> dom;
  pto::sim::run(1, {}, [&](unsigned) {
    auto h = dom.register_thread();
    std::uint64_t e0 = dom.current_epoch();
    {
      typename EpochDomain<SimPlatform>::Guard outer(h);
      {
        typename EpochDomain<SimPlatform>::Guard inner(h);
      }
      // Inner guard exit must NOT clear the reservation: a guard at epoch
      // e permits one advance (to e+1) but pins the epoch there — reaching
      // e+2 would allow freeing what `outer` may still reference.
      dom.advance_epochs(3);
      EXPECT_LE(dom.current_epoch(), e0 + 1);
    }
    dom.advance_epochs(3);
    EXPECT_GE(dom.current_epoch(), e0 + 2);
  });
}

TEST(Epoch, GuardElidedInsideTransaction) {
  // Inside a (strongly atomic) transaction the guard reserves nothing:
  // no reservation stores, no fences.
  EpochDomain<SimPlatform> dom;
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    auto h = dom.register_thread();
    for (int i = 0; i < 100; ++i) {
      pto::prefix<SimPlatform>(
          1,
          [&] {
            typename EpochDomain<SimPlatform>::Guard g(h);
            // The guard is elided: the epoch can still advance.
          },
          [&] {});
    }
  });
  EXPECT_EQ(res.totals().fences, 0u);
}

TEST(Epoch, RetireCustomRunsDisposerWithContext) {
  EpochDomain<SimPlatform> dom;
  static int disposed_with_ctx;
  disposed_with_ctx = 0;
  int ctx_obj = 0;
  pto::sim::run(1, {}, [&](unsigned) {
    auto h = dom.register_thread();
    auto* n = SimPlatform::make<Node>();
    h.retire_custom(
        n,
        [](void* p, void* c) {
          if (c != nullptr) ++disposed_with_ctx;
          SimPlatform::destroy(static_cast<Node*>(p));
        },
        &ctx_obj);
    dom.advance_epochs();
    h.reclaim_some();
  });
  EXPECT_EQ(disposed_with_ctx, 1);
}

TEST(Epoch, OrphanedRetiresFreedAtDomainDestruction) {
  static int freed;
  freed = 0;
  {
    EpochDomain<SimPlatform> dom;
    pto::sim::run(1, {}, [&](unsigned) {
      auto h = dom.register_thread();
      auto* n = SimPlatform::make<Node>();
      h.retire_custom(
          n,
          [](void* p, void*) {
            ++freed;
            SimPlatform::destroy(static_cast<Node*>(p));
          },
          nullptr);
      // handle dies here with the node still in limbo
    });
    EXPECT_EQ(freed, 0);
  }
  EXPECT_EQ(freed, 1);
}

TEST(Epoch, SlotReuseAfterHandleDeath) {
  EpochDomain<SimPlatform> dom;
  unsigned first_slot;
  {
    auto h = dom.register_thread();
    first_slot = h.slot();
  }
  auto h2 = dom.register_thread();
  EXPECT_EQ(h2.slot(), first_slot);
}

TEST(Epoch, NativePlatformBasics) {
  EpochDomain<pto::NativePlatform> dom;
  auto h = dom.register_thread();
  for (int i = 0; i < 200; ++i) {
    auto* n = pto::NativePlatform::make<Atom<pto::NativePlatform, int>>();
    n->init(i);
    {
      typename EpochDomain<pto::NativePlatform>::Guard g(h);
    }
    h.retire(n);
  }
  dom.advance_epochs();
  h.reclaim_some();
  EXPECT_LT(h.limbo_size(), 200u);
}

}  // namespace
