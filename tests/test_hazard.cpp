// Hazard-pointer reclamation: protection semantics, scan-based reclaim,
// transactional elision (§2.3/§5), and a deterministic use-after-free hunt.
#include <gtest/gtest.h>

#include "core/prefix.h"
#include "platform/native_platform.h"
#include "platform/sim_platform.h"
#include "reclaim/hazard.h"
#include "sim/sim.h"
#include "sim_util.h"

namespace {

using pto::Atom;
using pto::HazardDomain;
using pto::SimPlatform;

struct Node {
  Atom<SimPlatform, int> v;
};

TEST(Hazard, ProtectedNodeSurvivesScans) {
  HazardDomain<SimPlatform> dom;
  auto* shared = SimPlatform::make<Node>();
  shared->v.init(1);
  Atom<SimPlatform, Node*> src;
  src.init(shared);
  pto::testutil::SimBarrier bar(2);

  auto res = pto::sim::run(2, {}, [&](unsigned tid) {
    auto h = dom.register_thread();
    if (tid == 0) {
      Node* n = h.protect(0, src);
      bar.wait();
      for (int i = 0; i < 3000; ++i) {
        ASSERT_EQ(n->v.load(std::memory_order_relaxed), 1);
        pto::sim::cpu_pause();
      }
      h.clear(0);
    } else {
      bar.wait();
      src.store(nullptr);
      h.retire(shared);
      // Churn way past the scan threshold: `shared` must survive scans
      // because thread 0's hazard slot points at it.
      for (int i = 0; i < 400; ++i) {
        auto* n = SimPlatform::make<Node>();
        n->v.init(i);
        h.retire(n);
      }
      h.scan_and_reclaim();
      // `shared` survives every scan that ran while thread 0's hazard was
      // published — proven by thread 0's in-loop asserts and uaf_count; by
      // this point thread 0 may already have released it.
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
}

TEST(Hazard, UnprotectedNodesReclaimed) {
  HazardDomain<SimPlatform> dom;
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    auto h = dom.register_thread();
    for (int i = 0; i < 300; ++i) {
      auto* n = SimPlatform::make<Node>();
      n->v.init(i);
      h.retire(n);
    }
    h.scan_and_reclaim();
    EXPECT_EQ(h.limbo_size(), 0u);
  });
  EXPECT_EQ(res.totals().frees, 300u);
}

TEST(Hazard, ProtectValidatesAgainstConcurrentSwap) {
  // protect() must never return a pointer that was unlinked before the
  // hazard was visible: model the window by swapping src mid-run.
  HazardDomain<SimPlatform> dom;
  auto* a = SimPlatform::make<Node>();
  a->v.init(1);
  auto* b = SimPlatform::make<Node>();
  b->v.init(2);
  Atom<SimPlatform, Node*> src;
  src.init(a);
  auto res = pto::sim::run(2, {}, [&](unsigned tid) {
    auto h = dom.register_thread();
    if (tid == 0) {
      for (int i = 0; i < 200; ++i) {
        Node* n = h.protect(0, src);
        int v = n->v.load(std::memory_order_relaxed);
        ASSERT_TRUE(v == 1 || v == 2);
        h.clear(0);
      }
    } else {
      for (int i = 0; i < 100; ++i) {
        Node* cur = src.load();
        src.store(cur == a ? b : a);
        pto::sim::cpu_pause();
      }
    }
  });
  EXPECT_EQ(res.uaf_count, 0u);
  SimPlatform::destroy(a);
  SimPlatform::destroy(b);
}

TEST(Hazard, ElidedInsideTransactions) {
  // Inside a strongly atomic transaction protect() is a plain load: no
  // hazard stores, no fences — the paper's §2.3 redundant-store elimination.
  HazardDomain<SimPlatform> dom;
  auto* n = SimPlatform::make<Node>();
  n->v.init(7);
  Atom<SimPlatform, Node*> src;
  src.init(n);
  auto res = pto::sim::run(1, {}, [&](unsigned) {
    auto h = dom.register_thread();
    for (int i = 0; i < 100; ++i) {
      int v = pto::prefix<SimPlatform>(
          1,
          [&]() -> int {
            Node* p = h.protect(0, src);
            int x = p->v.load(std::memory_order_relaxed);
            h.clear(0);
            return x;
          },
          [&]() -> int {
            Node* p = h.protect(0, src);
            int x = p->v.load();
            h.clear(0);
            return x;
          });
      ASSERT_EQ(v, 7);
    }
  });
  // All 100 publication fences elided; the residue is the handle
  // destructor clearing its 4 slots with seq_cst stores.
  EXPECT_LE(res.totals().fences, 4u);
  SimPlatform::destroy(n);
}

TEST(Hazard, TransactionStillAbortedByFree) {
  // Even without a published hazard, a transaction is safe: freeing a line
  // it read dooms it (strong atomicity) — the §5 argument for elision.
  HazardDomain<SimPlatform> dom;
  auto* n = SimPlatform::make<Node>();
  n->v.init(5);
  pto::PrefixStats st;
  auto res = pto::sim::run(2, {}, [&](unsigned tid) {
    auto h = dom.register_thread();
    if (tid == 0) {
      Atom<SimPlatform, Node*> local;
      local.init(n);
      pto::prefix<SimPlatform>(
          1,
          [&]() -> int {
            Node* p = h.protect(0, local);  // elided: no hazard published
            int v = p->v.load(std::memory_order_relaxed);
            // Hold the transaction open long enough for the other thread's
            // retire + full-table scan (the scan walks all hazard rows).
            for (int i = 0; i < 2000; ++i) SimPlatform::pause();
            return v;
          },
          [&]() -> int { return -1; }, &st);
    } else {
      for (int i = 0; i < 50; ++i) SimPlatform::pause();
      h.retire(n);
      h.scan_and_reclaim();  // frees n: no hazards point at it
    }
  });
  EXPECT_EQ(st.aborts[pto::TX_ABORT_CONFLICT], 1u);
  EXPECT_EQ(res.uaf_count, 0u);
}

TEST(Hazard, RowReuseAfterHandleDeath) {
  HazardDomain<SimPlatform> dom;
  unsigned row;
  {
    auto h = dom.register_thread();
    row = h.row();
  }
  auto h2 = dom.register_thread();
  EXPECT_EQ(h2.row(), row);
}

TEST(Hazard, NativePlatformBasics) {
  HazardDomain<pto::NativePlatform> dom;
  auto h = dom.register_thread();
  using NNode = pto::Atom<pto::NativePlatform, int>;
  Atom<pto::NativePlatform, NNode*> src;
  auto* n = pto::NativePlatform::make<NNode>();
  n->init(9);
  src.init(n);
  NNode* p = h.protect(0, src);
  EXPECT_EQ(p->load(), 9);
  h.clear(0);
  h.retire(n);
  h.scan_and_reclaim();
  EXPECT_EQ(h.limbo_size(), 0u);
}

}  // namespace
