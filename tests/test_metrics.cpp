// pto::metrics interval streaming: zero virtual cost on simx, the
// sum-of-interval-deltas == end-of-run-aggregate invariant for every sampled
// source (telemetry counters, obs histograms under thread churn, prof cycle
// ledgers), reset re-basing, watchdog rules, and warn_once forwarding.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/warn.h"
#include "core/prefix.h"
#include "json_util.h"
#include "metrics/metrics.h"
#include "obs/obs.h"
#include "platform/platform.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "telemetry/prof.h"
#include "telemetry/registry.h"

namespace {

namespace metrics = pto::metrics;
namespace telemetry = pto::telemetry;
namespace obs = pto::obs;
namespace prof = pto::telemetry::prof;
namespace sim = pto::sim;
using pto::SimPlatform;

/// RAII: arm metrics into a stringstream, disarm + restore on destruction.
struct Capture {
  std::ostringstream os;
  explicit Capture(metrics::Config cfg) {
    metrics::set_stream(&os);
    metrics::configure(cfg);
  }
  ~Capture() {
    metrics::configure({});  // interval 0: disarm
    metrics::set_stream(nullptr);
  }
  std::vector<testjson::Value> records() const {
    std::vector<testjson::Value> out;
    std::istringstream is(os.str());
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      testjson::Value v;
      EXPECT_TRUE(testjson::parse(line, &v)) << line;
      out.push_back(std::move(v));
    }
    return out;
  }
};

std::uint64_t u64(const testjson::Value& v, const char* key) {
  const testjson::Value* f = v.find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key;
  return f != nullptr ? static_cast<std::uint64_t>(f->num()) : 0;
}

bool is_type(const testjson::Value& v, const char* t) {
  const testjson::Value* f = v.find("type");
  return f != nullptr && f->is_str() && f->str() == t;
}

/// Shared-counter prefix workload: every op runs the real tx path through an
/// interned telemetry site, then charges `weight` bench-op units so virtual
/// clocks climb fast enough to cross 1-virtual-ms tick boundaries.
sim::RunResult tx_workload(telemetry::Site* site, unsigned nthreads, int ops,
                           std::uint64_t seed, std::uint64_t weight = 50) {
  sim::reset_memory();
  pto::Atom<SimPlatform, std::uint64_t> acc;
  acc.init(0);
  sim::Config cfg;
  cfg.seed = seed;
  return sim::run(nthreads, cfg, [&](unsigned tid) {
    for (int i = 0; i < ops; ++i) {
      pto::prefix<SimPlatform>(
          2,
          [&] {
            acc.store(acc.load(std::memory_order_relaxed) + tid + 1,
                      std::memory_order_relaxed);
          },
          [&] { acc.fetch_add(tid + 1); }, pto::StatsHandle(site));
      sim::op_done(weight);
    }
  });
}

TEST(Metrics, SimVirtualClocksIdenticalArmedVsOff) {
  telemetry::Site* site =
      telemetry::Registry::instance().intern("metrics.zerocost");
  auto clocks = [&] { return tx_workload(site, 4, 3000, 42).clocks; };

  ASSERT_FALSE(metrics::armed());
  const std::vector<std::uint64_t> off = clocks();

  std::vector<std::uint64_t> on;
  std::uint64_t ticks = 0;
  {
    metrics::Config cfg;
    cfg.interval_ms = 1;
    Capture cap(cfg);
    on = clocks();
    ticks = metrics::intervals_emitted();
  }
  // The instrumented run must have actually ticked (otherwise this test
  // proves nothing) and every virtual clock must be byte-identical.
  EXPECT_GE(ticks, 2u) << "workload too short to cross a 1-virtual-ms tick";
  EXPECT_EQ(off, on);
}

TEST(Metrics, SimSumOfIntervalDeltasEqualsAggregate) {
  telemetry::Site* site =
      telemetry::Registry::instance().intern("metrics.telescope");
  metrics::Config cfg;
  cfg.interval_ms = 1;
  Capture cap(cfg);

  const pto::PrefixStats before = telemetry::registry_totals();
  tx_workload(site, 2, 4000, 7);
  const pto::PrefixStats delta = telemetry::registry_delta(before);
  ASSERT_GT(delta.attempts, 0u);

  std::uint64_t attempts = 0, commits = 0, fallbacks = 0, aborts = 0;
  std::uint64_t site_attempts = 0;
  std::uint64_t prev_vt1 = 0;
  unsigned intervals = 0;
  for (const auto& r : cap.records()) {
    if (!is_type(r, "metrics_interval")) continue;
    ++intervals;
    // Sim intervals tile virtual time within the run.
    EXPECT_EQ(u64(r, "vt0"), prev_vt1);
    EXPECT_GE(u64(r, "vt1"), u64(r, "vt0"));
    prev_vt1 = u64(r, "vt1");
    const testjson::Value* p = r.find("prefix");
    ASSERT_NE(p, nullptr);
    attempts += u64(*p, "attempts");
    commits += u64(*p, "commits");
    fallbacks += u64(*p, "fallbacks");
    aborts += u64(*p, "aborts_total");
    const testjson::Value* sites = r.find("sites");
    ASSERT_NE(sites, nullptr);
    for (const auto& s : sites->array()) {
      if (s.find("site")->str() == "metrics.telescope") {
        site_attempts += u64(s, "attempts");
      }
    }
  }
  // Boundary tick(s) plus the trailing partial emitted by sim_run_end.
  EXPECT_GE(intervals, 2u);
  EXPECT_EQ(attempts, delta.attempts);
  EXPECT_EQ(commits, delta.commits);
  EXPECT_EQ(fallbacks, delta.fallbacks);
  EXPECT_EQ(aborts, delta.total_aborts());
  // The per-site breakdown telescopes too, not just the rollup.
  EXPECT_EQ(site_attempts, delta.attempts);
}

TEST(Metrics, SumOfDeltasSurvivesRegistryReset) {
  telemetry::Site* site =
      telemetry::Registry::instance().intern("metrics.rebase");
  metrics::Config cfg;
  cfg.interval_ms = 1;
  Capture cap(cfg);

  tx_workload(site, 2, 2500, 11);
  const std::uint64_t run1 = site->snapshot().attempts;
  ASSERT_GT(run1, 0u);
  // An explicit reset shrinks every counter; the next delta must re-base
  // (count events since the reset) instead of underflowing.
  telemetry::Registry::instance().reset_all();
  tx_workload(site, 2, 2500, 13);
  const std::uint64_t run2 = site->snapshot().attempts;
  ASSERT_GT(run2, 0u);

  std::uint64_t summed = 0;
  for (const auto& r : cap.records()) {
    if (!is_type(r, "metrics_interval")) continue;
    const testjson::Value* sites = r.find("sites");
    for (const auto& s : sites->array()) {
      if (s.find("site")->str() == "metrics.rebase") {
        const std::uint64_t a = u64(s, "attempts");
        // No underflow artifact: one interval can never exceed the total.
        EXPECT_LE(a, run1 + run2);
        summed += a;
      }
    }
  }
  EXPECT_EQ(summed, run1 + run2);
}

TEST(Metrics, WallObsSampleTotalsTelescopeUnderThreadChurn) {
  obs::set_hist_on(true);
  obs::reset_latency();
  obs::LatencySite* site = obs::intern_latency_site("metrics.churn");

  metrics::Config cfg;
  cfg.interval_ms = 100000;  // sampler never self-ticks; forced ticks only
  Capture cap(cfg);
  metrics::set_point_labels("churn_bench", "s1", 3);
  metrics::native_point_begin();

  auto record_n = [&](unsigned nthreads, int per_thread) {
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < nthreads; ++t) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < per_thread; ++i) {
          obs::record_latency(site, i % 4 == 0, 100 + t);
        }
      });
    }
    for (auto& th : ts) th.join();
  };

  // Phase 1: three threads record, exit (their histogram blocks survive),
  // tick at quiescence. Phase 2: two *new* threads, then the point closes
  // with the trailing tick.
  record_n(3, 500);
  metrics::force_tick();
  record_n(2, 300);
  metrics::native_point_end();

  std::uint64_t samples = 0;
  double prev_t1 = 0.0;
  unsigned with_obs = 0;
  for (const auto& r : cap.records()) {
    if (!is_type(r, "metrics_interval")) continue;
    EXPECT_EQ(r.find("mode")->str(), "wall");
    EXPECT_DOUBLE_EQ(r.find("t0_ms")->num(), prev_t1);
    prev_t1 = r.find("t1_ms")->num();
    EXPECT_EQ(r.find("bench")->str(), "churn_bench");
    const testjson::Value* o = r.find("obs");
    ASSERT_NE(o, nullptr);
    ++with_obs;
    samples += u64(*o, "samples");
  }
  EXPECT_GE(with_obs, 2u);
  EXPECT_EQ(samples, 3u * 500 + 2u * 300);

  obs::set_hist_on(false);
  obs::reset_latency();
}

TEST(Metrics, SimProfLedgerCyclesTelescope) {
  prof::set_enabled(true);
  telemetry::Site* site =
      telemetry::Registry::instance().intern("metrics.profledger");
  {
    metrics::Config cfg;
    cfg.interval_ms = 1;
    Capture cap(cfg);

    const prof::LedgerTotals before = prof::ledger_totals();
    tx_workload(site, 2, 3000, 23);
    const prof::LedgerTotals after = prof::ledger_totals();
    ASSERT_GT(after.total_cycles(), before.total_cycles());

    std::uint64_t cycles = 0, fast_spans = 0;
    unsigned with_prof = 0;
    for (const auto& r : cap.records()) {
      if (!is_type(r, "metrics_interval")) continue;
      const testjson::Value* p = r.find("prof");
      ASSERT_NE(p, nullptr);
      ++with_prof;
      fast_spans += u64(*p, "fast_spans");
      const testjson::Value* cl = p->find("cycles");
      ASSERT_NE(cl, nullptr);
      for (const auto& [name, v] : cl->object()) {
        cycles += static_cast<std::uint64_t>(v.num());
      }
    }
    EXPECT_GE(with_prof, 2u);
    EXPECT_EQ(cycles, after.total_cycles() - before.total_cycles());
    EXPECT_EQ(fast_spans, after.fast_spans - before.fast_spans);
  }
  prof::set_enabled(false);
}

TEST(Metrics, WatchdogFallbackRateFiresInStream) {
  telemetry::Site* site =
      telemetry::Registry::instance().intern("metrics.watchdog");
  metrics::Config cfg;
  cfg.interval_ms = 1;
  cfg.watch = "fallback_rate>0.25,abort_storm";
  Capture cap(cfg);
  EXPECT_EQ(metrics::watch_violations(), 0u);

  sim::reset_memory();
  sim::Config scfg;
  scfg.seed = 5;
  sim::run(2, scfg, [&](unsigned) {
    // Zero prefix attempts: every op is a fallback, rate 1.0 > 0.25.
    for (int i = 0; i < 32; ++i) {
      pto::prefix<SimPlatform>(0, [] {}, [] {}, pto::StatsHandle(site));
      sim::op_done();
    }
  });

  EXPECT_GE(metrics::watch_violations(), 1u);
  bool saw_watch = false;
  for (const auto& r : cap.records()) {
    if (!is_type(r, "watch")) continue;
    saw_watch = true;
    EXPECT_EQ(r.find("rule")->str(), "fallback_rate");
    EXPECT_GT(r.find("value")->num(), 0.25);
  }
  EXPECT_TRUE(saw_watch);
}

TEST(Metrics, WarnOnceForwardsToStreamOnce) {
  metrics::Config cfg;
  cfg.interval_ms = 1;
  Capture cap(cfg);

  EXPECT_TRUE(pto::warn_once("test.metrics.forward", "weight %d kg", 12));
  EXPECT_FALSE(pto::warn_once("test.metrics.forward", "weight %d kg", 13));
  EXPECT_EQ(pto::warn_count("test.metrics.forward"), 2u);

  unsigned warnings = 0;
  for (const auto& r : cap.records()) {
    if (!is_type(r, "warning")) continue;
    if (r.find("key")->str() != "test.metrics.forward") continue;
    ++warnings;
    EXPECT_EQ(r.find("msg")->str(), "weight 12 kg");
  }
  EXPECT_EQ(warnings, 1u);
}

TEST(Metrics, FlushEmitsTrailerWithCounts) {
  telemetry::Site* site =
      telemetry::Registry::instance().intern("metrics.flushcount");
  metrics::Config cfg;
  cfg.interval_ms = 1;
  Capture cap(cfg);
  tx_workload(site, 1, 2000, 3);
  metrics::flush();

  const auto recs = cap.records();
  ASSERT_FALSE(recs.empty());
  ASSERT_TRUE(is_type(recs.front(), "metrics_meta"));
  const auto& last = recs.back();
  ASSERT_TRUE(is_type(last, "metrics_flush"));
  EXPECT_EQ(u64(last, "intervals"), metrics::intervals_emitted());
  // seq is contiguous across every record type.
  std::uint64_t seq = 0;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(u64(recs[i], "seq"), ++seq);
  }
}

TEST(Metrics, DisarmedIsInert) {
  ASSERT_FALSE(metrics::armed());
  const std::uint64_t before = metrics::intervals_emitted();
  telemetry::Site* site =
      telemetry::Registry::instance().intern("metrics.inert");
  tx_workload(site, 2, 2000, 9);
  EXPECT_EQ(metrics::intervals_emitted(), before);
  EXPECT_EQ(metrics::detail::g_sim_next_tick, ~std::uint64_t{0});
}

}  // namespace
