// pto::telemetry — registry interning, thread-sharded accumulation from
// simulated and host threads, snapshot determinism, and the PTO_TRACE
// Chrome-trace golden file.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prefix.h"
#include "json_util.h"
#include "platform/sim_platform.h"
#include "sim/sim.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace {

using pto::PrefixStats;
using pto::SimPlatform;
using pto::StatsHandle;
namespace sim = pto::sim;
namespace tel = pto::telemetry;

PrefixStats contended_run(tel::Site* site, std::uint64_t seed) {
  // Pristine simulated memory per run, like the benches between trials —
  // leftover cache-model state would make identical seeds diverge.
  sim::reset_memory();
  sim::Config cfg;
  cfg.seed = seed;
  pto::Atom<SimPlatform, std::uint64_t> counter;
  counter.init(0);
  PrefixStats local;
  sim::run(4, cfg, [&](unsigned) {
    for (int i = 0; i < 200; ++i) {
      pto::prefix<SimPlatform>(
          2,
          [&] {
            auto v = counter.load(std::memory_order_relaxed);
            counter.store(v + 1, std::memory_order_relaxed);
          },
          [&] { counter.fetch_add(1, std::memory_order_seq_cst); },
          StatsHandle{&local, site});
    }
  });
  return local;
}

TEST(TelemetryRegistry, InternIsStableAndCached) {
  tel::Site* a = tel::Registry::instance().intern("test.intern.a");
  tel::Site* b = tel::Registry::instance().intern("test.intern.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, tel::Registry::instance().intern("test.intern.a"));
  EXPECT_EQ(a->name(), "test.intern.a");
  // The macro caches per call site and agrees with a direct intern.
  auto once = [] { return PTO_TELEMETRY_SITE("test.intern.a"); };
  EXPECT_EQ(once(), once());
  EXPECT_EQ(once(), a);
}

TEST(TelemetryRegistry, ConcurrentHostRegistrationIsSafe) {
  // Many host threads intern overlapping names; every thread must see the
  // same stable pointer per name.
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  std::vector<std::vector<tel::Site*>> seen(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t, &seen] {
      for (int n = 0; n < kNames; ++n) {
        std::string name = "test.reg." + std::to_string(n);
        seen[t].push_back(tel::Registry::instance().intern(name));
      }
    });
  }
  for (auto& th : ts) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  std::set<tel::Site*> distinct(seen[0].begin(), seen[0].end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kNames));
}

TEST(TelemetryRegistry, SimThreadsAccumulateIntoShards) {
  tel::set_enabled(true);
  tel::Site* site = tel::Registry::instance().intern("test.accum");
  site->reset();
  PrefixStats local = contended_run(site, /*seed=*/7);
  PrefixStats snap = site->snapshot();
  // The site (sharded, relaxed atomics) must agree exactly with the
  // single PrefixStats that every simulated thread also updated.
  EXPECT_EQ(snap.attempts, local.attempts);
  EXPECT_EQ(snap.commits, local.commits);
  EXPECT_EQ(snap.fallbacks, local.fallbacks);
  for (unsigned c = 0; c < pto::kTxCodeCount; ++c) {
    EXPECT_EQ(snap.aborts[c], local.aborts[c]) << "cause " << c;
  }
  // 4 threads x 200 ops each completed exactly once, via commit or fallback.
  EXPECT_EQ(snap.commits + snap.fallbacks, 800u);
  EXPECT_GE(snap.attempts, 800u);
}

TEST(TelemetryRegistry, DisabledSitesRecordNothing) {
  tel::set_enabled(true);
  tel::Site* site = tel::Registry::instance().intern("test.gated");
  site->reset();
  tel::set_enabled(false);
  PrefixStats local = contended_run(site, /*seed=*/11);
  PrefixStats snap = site->snapshot();
  EXPECT_EQ(snap.attempts, 0u);
  EXPECT_EQ(snap.commits, 0u);
  EXPECT_EQ(snap.fallbacks, 0u);
  // The exact per-thread stats are unaffected by the gate.
  EXPECT_EQ(local.commits + local.fallbacks, 800u);
  tel::set_enabled(true);
}

TEST(TelemetryRegistry, SnapshotDeterministicAcrossIdenticalSeeds) {
  tel::set_enabled(true);
  tel::Site* site = tel::Registry::instance().intern("test.determinism");
  site->reset();
  contended_run(site, /*seed=*/1234);
  PrefixStats first = site->snapshot();
  site->reset();
  contended_run(site, /*seed=*/1234);
  PrefixStats second = site->snapshot();
  EXPECT_EQ(first.attempts, second.attempts);
  EXPECT_EQ(first.commits, second.commits);
  EXPECT_EQ(first.fallbacks, second.fallbacks);
  for (unsigned c = 0; c < pto::kTxCodeCount; ++c) {
    EXPECT_EQ(first.aborts[c], second.aborts[c]) << "cause " << c;
  }
  // The workload is contended enough to exercise the abort path at all.
  EXPECT_GT(first.total_aborts(), 0u);
}

TEST(TelemetryRegistry, TotalsAndDeltaSumSites) {
  tel::set_enabled(true);
  tel::Site* site = tel::Registry::instance().intern("test.delta");
  site->reset();
  PrefixStats before = tel::registry_totals();
  PrefixStats local = contended_run(site, /*seed=*/99);
  PrefixStats delta = tel::registry_delta(before);
  EXPECT_EQ(delta.attempts, local.attempts);
  EXPECT_EQ(delta.commits, local.commits);
  EXPECT_EQ(delta.fallbacks, local.fallbacks);
}

TEST(TelemetryTrace, ChromeTraceGoldenFile) {
  const char* path = "pto_trace_test.json";
  std::remove(path);
  tel::trace_set_capacity(1 << 14);
  tel::trace_set_path(path);
  tel::set_enabled(true);
  tel::Site* site = tel::Registry::instance().intern("test.trace");
  contended_run(site, /*seed=*/5);  // sim::run flushes the trace on exit
  tel::trace_set_path(nullptr);     // disable + drop buffered events

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written";
  std::stringstream buf;
  buf << in.rdbuf();

  testjson::Value root;
  ASSERT_TRUE(testjson::parse(buf.str(), &root))
      << "trace is not valid JSON";
  ASSERT_TRUE(root.is_object());

  const testjson::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());

  const testjson::Value* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->find("cycles_per_us"), nullptr);
  EXPECT_EQ(other->find("cycles_per_us")->num(), 3400.0);

  unsigned tx_events = 0, abort_events = 0;
  for (const testjson::Value& e : events->array()) {
    ASSERT_TRUE(e.is_object());
    const testjson::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_str());
    // Every event needs pid/tid; non-metadata events also need a timestamp.
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
    if (ph->str() != "M") EXPECT_NE(e.find("ts"), nullptr);
    if (ph->str() == "X") {
      ++tx_events;
      EXPECT_NE(e.find("dur"), nullptr);
      const testjson::Value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const testjson::Value* outcome = args->find("outcome");
      ASSERT_NE(outcome, nullptr);
      if (outcome->str() == "abort") {
        ++abort_events;
        const testjson::Value* cause = args->find("cause");
        ASSERT_NE(cause, nullptr) << "abort event without cause label";
        EXPECT_FALSE(cause->str().empty());
      }
    }
  }
  EXPECT_GT(tx_events, 0u) << "no transaction events recorded";
  EXPECT_GT(abort_events, 0u) << "contended run recorded no aborts";
  std::remove(path);
}

}  // namespace
