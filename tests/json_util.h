// Minimal JSON reader for test assertions (telemetry records, trace files).
// Recursive descent over the full JSON grammar; no external dependency, no
// error recovery — parse() either consumes the whole input or fails. Objects
// preserve insertion order and allow duplicate keys (find returns the first),
// which is all the tests need.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace testjson {

struct Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
      nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_num() const { return std::holds_alternative<double>(v); }
  bool is_str() const { return std::holds_alternative<std::string>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_object() const { return std::holds_alternative<Object>(v); }

  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  const Array& array() const { return std::get<Array>(v); }
  const Object& object() const { return std::get<Object>(v); }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, val] : object()) {
      if (k == key) return &val;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  bool parse(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool lit(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case 'n': out->v = nullptr; return lit("null");
      case 't': out->v = true; return lit("true");
      case 'f': out->v = false; return lit("false");
      case '"': return parse_string(out);
      case '[': return parse_array(out);
      case '{': return parse_object(out);
      default: return parse_number(out);
    }
  }

  bool parse_number(Value* out) {
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    double d = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    out->v = d;
    return true;
  }

  bool parse_string(Value* out) {
    std::string r;
    if (!parse_raw_string(&r)) return false;
    out->v = std::move(r);
    return true;
  }

  bool parse_raw_string(std::string* out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u':
          // The tests only check structure; a placeholder keeps the parse.
          if (pos_ + 4 > s_.size()) return false;
          pos_ += 4;
          out->push_back('?');
          break;
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_array(Value* out) {
    if (!eat('[')) return false;
    Array a;
    skip_ws();
    if (eat(']')) {
      out->v = std::move(a);
      return true;
    }
    for (;;) {
      Value v;
      if (!parse_value(&v)) return false;
      a.push_back(std::move(v));
      skip_ws();
      if (eat(']')) break;
      if (!eat(',')) return false;
    }
    out->v = std::move(a);
    return true;
  }

  bool parse_object(Value* out) {
    if (!eat('{')) return false;
    Object o;
    skip_ws();
    if (eat('}')) {
      out->v = std::move(o);
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_raw_string(&key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      Value v;
      if (!parse_value(&v)) return false;
      o.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) break;
      if (!eat(',')) return false;
    }
    out->v = std::move(o);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline bool parse(std::string_view s, Value* out) {
  return Parser(s).parse(out);
}

}  // namespace testjson
