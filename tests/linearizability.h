// A linearizability checker for set histories recorded on the simulator.
//
// The simulator gives every operation real-time bounds on one global virtual
// clock (invocation and response instants), so a recorded concurrent history
// is checkable offline: the structure is linearizable on this history iff
// there exists a total order of the operations that (a) respects real-time
// precedence (A before B whenever A.ret < B.inv) and (b) is a legal
// sequential set execution producing exactly the recorded results.
//
// For sets, operations on distinct keys commute and their results are
// independent, so the history decomposes per key and each sub-history is
// checked against a single-bool automaton (present/absent) — the classic
// Wing & Gong search with memoization on (completed-mask, state), kept
// tractable by the decomposition (sub-histories of <= 64 operations).
#pragma once

#include <cstdint>
#include <map>
#include <algorithm>
#include <unordered_set>
#include <vector>

#include "sim/sim.h"

namespace pto::testutil {

enum class SetOpKind : std::uint8_t { kContains, kInsert, kRemove };

struct SetOp {
  SetOpKind kind;
  std::int64_t key;
  bool result;
  std::uint64_t inv;  ///< virtual time at invocation
  std::uint64_t ret;  ///< virtual time at response
};

namespace detail {

struct KeyOp {
  SetOpKind kind;
  bool result;
  std::uint64_t inv, ret;
};

/// DFS with memoization over (mask of linearized ops, current presence).
/// Returns true iff some real-time-respecting order explains the results.
class KeyChecker {
 public:
  explicit KeyChecker(std::vector<KeyOp> ops) : ops_(std::move(ops)) {}

  bool check() {
    if (ops_.size() > 64) return false;  // caller must keep histories small
    return dfs(0, false);
  }

  std::uint64_t states_visited() const { return seen_.size(); }

 private:
  bool dfs(std::uint64_t done_mask, bool present) {
    if (done_mask == (std::uint64_t{1} << ops_.size()) - 1) return true;
    std::uint64_t memo_key = (done_mask << 1) | (present ? 1 : 0);
    if (!seen_.insert(memo_key).second) return false;

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      // Real-time order: i may linearize next only if no other pending op
      // completed strictly before i was invoked.
      bool minimal = true;
      for (std::size_t j = 0; j < ops_.size(); ++j) {
        if (j == i || (done_mask & (std::uint64_t{1} << j))) continue;
        if (ops_[j].ret < ops_[i].inv) {
          minimal = false;
          break;
        }
      }
      if (!minimal) continue;

      bool next_present = present;
      if (!legal(ops_[i], present, &next_present)) continue;
      if (dfs(done_mask | (std::uint64_t{1} << i), next_present)) return true;
    }
    return false;
  }

  static bool legal(const KeyOp& op, bool present, bool* next) {
    switch (op.kind) {
      case SetOpKind::kContains:
        *next = present;
        return op.result == present;
      case SetOpKind::kInsert:
        if (op.result) {
          if (present) return false;
          *next = true;
          return true;
        }
        *next = present;
        return present;  // failed insert implies the key was present
      case SetOpKind::kRemove:
        if (op.result) {
          if (!present) return false;
          *next = false;
          return true;
        }
        *next = present;
        return !present;  // failed remove implies the key was absent
    }
    return false;
  }

  std::vector<KeyOp> ops_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace detail

struct LinCheckResult {
  bool linearizable = true;
  std::int64_t failing_key = 0;
  std::size_t keys_checked = 0;
  std::size_t largest_subhistory = 0;
};

/// Check a recorded set history, per key. The structure must start empty.
inline LinCheckResult check_set_linearizability(
    const std::vector<SetOp>& history) {
  std::map<std::int64_t, std::vector<detail::KeyOp>> by_key;
  for (const SetOp& op : history) {
    by_key[op.key].push_back({op.kind, op.result, op.inv, op.ret});
  }
  LinCheckResult r;
  r.keys_checked = by_key.size();
  for (auto& [key, ops] : by_key) {
    r.largest_subhistory = std::max(r.largest_subhistory, ops.size());
    detail::KeyChecker checker(std::move(ops));
    if (!checker.check()) {
      r.linearizable = false;
      r.failing_key = key;
      return r;
    }
  }
  return r;
}

/// Per-thread history recorder (plain memory: fibers are host-serialized).
class HistoryRecorder {
 public:
  explicit HistoryRecorder(unsigned threads) : per_thread_(threads) {}

  /// Wraps one operation: records inv/ret around fn().
  template <class Fn>
  bool record(unsigned tid, SetOpKind kind, std::int64_t key, Fn&& fn) {
    std::uint64_t inv = sim::now();
    bool result = fn();
    std::uint64_t ret = sim::now();
    per_thread_[tid].push_back({kind, key, result, inv, ret});
    return result;
  }

  std::vector<SetOp> merged() const {
    std::vector<SetOp> all;
    for (const auto& v : per_thread_) {
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  }

 private:
  std::vector<std::vector<SetOp>> per_thread_;
};

}  // namespace pto::testutil
