// Linearizability checkers for histories recorded on the simulator.
//
// The simulator serializes every instrumented event on one host thread, so
// sim::global_seq() — strictly increasing per call — gives every operation
// exact real-time bounds (invocation and response instants) under ANY
// scheduling policy, including the adversarial pct/rand explorers whose
// per-thread virtual clocks no longer order observable events. A recorded
// concurrent history is then checkable offline: the structure is
// linearizable on this history iff there exists a total order of the
// operations that (a) respects real-time precedence (A before B whenever
// A.ret < B.inv) and (b) is a legal sequential execution producing exactly
// the recorded results — the classic Wing & Gong search, with memoization
// on (completed-mask, sequential state).
//
// Two checkers:
//  - Sets decompose per key (operations on distinct keys commute), each
//    sub-history checked against a single-bool automaton — tractable for
//    sub-histories of <= 64 operations.
//  - check_history<Spec> runs the same search against an arbitrary
//    sequential specification (QueueSpec, MinPQSpec below) for structures
//    whose operations do not commute; callers keep whole histories small
//    (<= 64 ops) and values distinct.
#pragma once

#include <cstdint>
#include <map>
#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/sim.h"

namespace pto::testutil {

enum class SetOpKind : std::uint8_t { kContains, kInsert, kRemove };

struct SetOp {
  SetOpKind kind;
  std::int64_t key;
  bool result;
  std::uint64_t inv;  ///< virtual time at invocation
  std::uint64_t ret;  ///< virtual time at response
};

namespace detail {

struct KeyOp {
  SetOpKind kind;
  bool result;
  std::uint64_t inv, ret;
};

/// DFS with memoization over (mask of linearized ops, current presence).
/// Returns true iff some real-time-respecting order explains the results.
class KeyChecker {
 public:
  explicit KeyChecker(std::vector<KeyOp> ops) : ops_(std::move(ops)) {}

  bool check() {
    if (ops_.size() > 64) return false;  // caller must keep histories small
    return dfs(0, false);
  }

  std::uint64_t states_visited() const { return seen_.size(); }

 private:
  bool dfs(std::uint64_t done_mask, bool present) {
    if (done_mask == (std::uint64_t{1} << ops_.size()) - 1) return true;
    std::uint64_t memo_key = (done_mask << 1) | (present ? 1 : 0);
    if (!seen_.insert(memo_key).second) return false;

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      // Real-time order: i may linearize next only if no other pending op
      // completed strictly before i was invoked.
      bool minimal = true;
      for (std::size_t j = 0; j < ops_.size(); ++j) {
        if (j == i || (done_mask & (std::uint64_t{1} << j))) continue;
        if (ops_[j].ret < ops_[i].inv) {
          minimal = false;
          break;
        }
      }
      if (!minimal) continue;

      bool next_present = present;
      if (!legal(ops_[i], present, &next_present)) continue;
      if (dfs(done_mask | (std::uint64_t{1} << i), next_present)) return true;
    }
    return false;
  }

  static bool legal(const KeyOp& op, bool present, bool* next) {
    switch (op.kind) {
      case SetOpKind::kContains:
        *next = present;
        return op.result == present;
      case SetOpKind::kInsert:
        if (op.result) {
          if (present) return false;
          *next = true;
          return true;
        }
        *next = present;
        return present;  // failed insert implies the key was present
      case SetOpKind::kRemove:
        if (op.result) {
          if (!present) return false;
          *next = false;
          return true;
        }
        *next = present;
        return !present;  // failed remove implies the key was absent
    }
    return false;
  }

  std::vector<KeyOp> ops_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace detail

struct LinCheckResult {
  bool linearizable = true;
  std::int64_t failing_key = 0;
  std::size_t keys_checked = 0;
  std::size_t largest_subhistory = 0;
};

/// Check a recorded set history, per key. The structure must start empty.
inline LinCheckResult check_set_linearizability(
    const std::vector<SetOp>& history) {
  std::map<std::int64_t, std::vector<detail::KeyOp>> by_key;
  for (const SetOp& op : history) {
    by_key[op.key].push_back({op.kind, op.result, op.inv, op.ret});
  }
  LinCheckResult r;
  r.keys_checked = by_key.size();
  for (auto& [key, ops] : by_key) {
    r.largest_subhistory = std::max(r.largest_subhistory, ops.size());
    detail::KeyChecker checker(std::move(ops));
    if (!checker.check()) {
      r.linearizable = false;
      r.failing_key = key;
      return r;
    }
  }
  return r;
}

/// Per-thread history recorder (plain memory: fibers are host-serialized).
class HistoryRecorder {
 public:
  explicit HistoryRecorder(unsigned threads) : per_thread_(threads) {}

  /// Wraps one operation: records inv/ret around fn(). Timestamps come from
  /// sim::global_seq(), not the per-thread virtual clock — under adversarial
  /// schedules a deprioritized thread's clock lags arbitrarily, which would
  /// fabricate real-time precedences that never happened.
  template <class Fn>
  bool record(unsigned tid, SetOpKind kind, std::int64_t key, Fn&& fn) {
    std::uint64_t inv = sim::global_seq();
    bool result = fn();
    std::uint64_t ret = sim::global_seq();
    per_thread_[tid].push_back({kind, key, result, inv, ret});
    return result;
  }

  std::vector<SetOp> merged() const {
    std::vector<SetOp> all;
    for (const auto& v : per_thread_) {
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  }

 private:
  std::vector<std::vector<SetOp>> per_thread_;
};

// ---------------------------------------------------------------------------
// Generic Wing–Gong checker against a sequential specification.
//
// A Spec provides:
//   struct Op { ... };                       // one invocation + its result
//   using State = ...;                       // copyable sequential state
//   static State initial();
//   static bool apply(State&, const Op&);    // legal here? (mutates on yes)
//   static std::string key(const State&);    // canonical form for memoization
//
// Histories must stay <= 64 operations (mask is one word) and — for the
// queue/PQ specs below — use pairwise-distinct values, which keeps the
// reachable state set small enough for the memoized DFS.
// ---------------------------------------------------------------------------

template <class Spec>
struct TimedOp {
  typename Spec::Op op;
  std::uint64_t inv = 0;  ///< sim::global_seq() at invocation
  std::uint64_t ret = 0;  ///< sim::global_seq() at response
};

/// Record one operation into `out`: fn() performs it and returns the
/// fully-filled Spec::Op (kind, arguments, observed result).
template <class Spec, class Fn>
void record_timed(std::vector<TimedOp<Spec>>& out, Fn&& fn) {
  TimedOp<Spec> t;
  t.inv = sim::global_seq();
  t.op = fn();
  t.ret = sim::global_seq();
  out.push_back(std::move(t));
}

template <class Spec>
class SpecChecker {
 public:
  explicit SpecChecker(std::vector<TimedOp<Spec>> ops) : ops_(std::move(ops)) {}

  bool check() {
    if (ops_.size() > 64) return false;  // caller must keep histories small
    if (ops_.empty()) return true;
    typename Spec::State s = Spec::initial();
    return dfs(0, s);
  }

  std::size_t states_visited() const { return seen_.size(); }

 private:
  bool dfs(std::uint64_t done_mask, const typename Spec::State& state) {
    if (done_mask == (std::uint64_t{1} << ops_.size()) - 1) return true;
    if (!seen_.insert({done_mask, Spec::key(state)}).second) return false;

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      // Real-time order: i may linearize next only if no other pending op
      // completed strictly before i was invoked.
      bool minimal = true;
      for (std::size_t j = 0; j < ops_.size(); ++j) {
        if (j == i || (done_mask & (std::uint64_t{1} << j))) continue;
        if (ops_[j].ret < ops_[i].inv) {
          minimal = false;
          break;
        }
      }
      if (!minimal) continue;

      typename Spec::State next = state;
      if (!Spec::apply(next, ops_[i].op)) continue;
      if (dfs(done_mask | (std::uint64_t{1} << i), next)) return true;
    }
    return false;
  }

  std::vector<TimedOp<Spec>> ops_;
  std::set<std::pair<std::uint64_t, std::string>> seen_;
};

template <class Spec>
bool check_history(std::vector<TimedOp<Spec>> ops,
                   std::size_t* states_visited = nullptr) {
  SpecChecker<Spec> c(std::move(ops));
  bool ok = c.check();
  if (states_visited != nullptr) *states_visited = c.states_visited();
  return ok;
}

namespace detail {
inline std::string i64_vec_key(const std::vector<std::int64_t>& xs) {
  std::string k;
  k.reserve(xs.size() * 8);
  for (std::int64_t x : xs) {
    k.append(reinterpret_cast<const char*>(&x), sizeof(x));
  }
  return k;
}
}  // namespace detail

/// FIFO queue: enqueue(v) / dequeue() -> optional value.
struct QueueSpec {
  struct Op {
    bool is_enqueue = false;
    std::int64_t value = 0;              ///< argument (enq) or result (deq)
    bool dequeued_empty = false;         ///< deq observed an empty queue
  };
  using State = std::vector<std::int64_t>;  ///< front at index 0

  static State initial() { return {}; }

  static bool apply(State& s, const Op& op) {
    if (op.is_enqueue) {
      s.push_back(op.value);
      return true;
    }
    if (op.dequeued_empty) return s.empty();
    if (s.empty() || s.front() != op.value) return false;
    s.erase(s.begin());
    return true;
  }

  static std::string key(const State& s) { return detail::i64_vec_key(s); }

  static Op enq(std::int64_t v) { return {true, v, false}; }
  static Op deq(std::optional<std::int64_t> v) {
    return {false, v.value_or(0), !v.has_value()};
  }
};

/// Min-priority queue: insert(v) / extract_min() -> optional value.
struct MinPQSpec {
  struct Op {
    bool is_insert = false;
    std::int64_t value = 0;              ///< argument (insert) or result
    bool extracted_empty = false;        ///< extract observed an empty PQ
  };
  using State = std::vector<std::int64_t>;  ///< kept sorted ascending

  static State initial() { return {}; }

  static bool apply(State& s, const Op& op) {
    if (op.is_insert) {
      s.insert(std::upper_bound(s.begin(), s.end(), op.value), op.value);
      return true;
    }
    if (op.extracted_empty) return s.empty();
    if (s.empty() || s.front() != op.value) return false;
    s.erase(s.begin());
    return true;
  }

  static std::string key(const State& s) { return detail::i64_vec_key(s); }

  static Op insert(std::int64_t v) { return {true, v, false}; }
  static Op extract(std::optional<std::int64_t> v) {
    return {false, v.value_or(0), !v.has_value()};
  }
};

}  // namespace pto::testutil
